//! # cned — A Contextual Normalised Edit Distance
//!
//! A reproduction of *"A Contextual Normalised Edit Distance"* (Colin
//! de la Higuera & Luisa Micó, ICDE 2008), grown into a metric-space
//! search engine: every distance of the paper, five interchangeable
//! nearest-neighbour backends behind one object-safe trait, and a
//! sharded serving layer.
//!
//! ## Quickstart: the [`Database`] facade
//!
//! The paper's machinery is generic in the metric — the same search
//! structures serve `d_E`, `d_C`, `d_YB`, … unchanged. The facade
//! crosses the two axes declaratively and returns a [`Database`] that
//! owns its metric:
//!
//! ```
//! use cned::{Backend, Database, Metric};
//!
//! let words: Vec<Vec<u8>> = ["casa", "cosa", "masa", "taza"]
//!     .iter()
//!     .map(|w| w.as_bytes().to_vec())
//!     .collect();
//! let db = Database::builder(words)
//!     .metric(Metric::Contextual { bounded: true })
//!     .backend(Backend::Laesa { pivots: 2 })
//!     .build()
//!     .unwrap();
//!
//! // Nearest neighbour, k-NN and range search share one surface.
//! let (nearest, stats) = db.nn(b"cusa").unwrap();
//! assert!(nearest.unwrap().distance > 0.0);
//! assert!(stats.distance_computations <= 4);
//! let (within, _) = db.range(b"casa", 0.5).unwrap();
//! assert!(!within.is_empty());
//! ```
//!
//! Add `.shards(4)` to serve the same queries from a sharded LAESA
//! index with cross-shard bound propagation, or drop to the layer
//! crates directly:
//!
//! * [`core`] — every distance in the paper: Levenshtein `d_E`, the
//!   contextual metric `d_C` (exact Algorithm 1) and its fast heuristic
//!   `d_C,h`, Marzal–Vidal `d_MV`, Yujian–Bo `d_YB`, and the
//!   non-metric normalisations `d_max`/`d_min`/`d_sum`.
//! * [`search`] — the [`search::MetricIndex`] trait and its backends
//!   (linear scan, LAESA, AESA, vp-tree) with distance-computation
//!   counting, typed errors and batch pipelines.
//! * [`serve`] — serving layer: multi-shard LAESA with cross-shard
//!   bound propagation and rebalancing, the session/ticket front-end
//!   ([`Database::session`]), and the TCP wire protocol
//!   ([`Database::serve`] / [`Client`]), all generic over the trait.
//! * [`plan`] — the decision layer: [`Backend::Auto`] planning from a
//!   seeded distance sample (backend, pivot count, shard split — with
//!   an inspectable [`Plan`] report), and the exact hot-query result
//!   cache behind [`DatabaseBuilder::cache`].
//! * [`datasets`] — synthetic stand-ins for the paper's three
//!   benchmarks: a Spanish-like dictionary, DNA gene sequences, and
//!   handwritten-digit contour chain codes.
//! * [`stats`] — distance histograms and intrinsic dimensionality.
//! * [`classify`] — 1-NN / k-NN classification over `&dyn MetricIndex`.
//!
//! ```
//! use cned::prelude::*;
//!
//! // Paper, Example 4: d_C(ababa, baab) = 8/15.
//! let d = contextual_distance(b"ababa", b"baab");
//! assert!((d - 8.0 / 15.0).abs() < 1e-12);
//! ```
//!
//! ## Migrating from the pre-trait API (0.1)
//!
//! The old per-backend query methods remain as `#[deprecated]`
//! forwarders for one release. Old call → new call:
//!
//! | 0.1 (deprecated) | replacement |
//! |---|---|
//! | `linear_nn(&db, q, &d)` | `LinearIndex::new(db)` + `MetricIndex::nn(q, &d, &opts)` |
//! | `linear_knn(&db, q, &d, k)` | `MetricIndex::knn` with `QueryOptions::new().k(k)` |
//! | `linear_nn_batch` / `linear_knn_batch` | `MetricIndex::nn_batch` / `knn_batch` |
//! | `Laesa::build(db, piv, &d)` (panics) | `Laesa::try_build(db, piv, &d)?` |
//! | `laesa.nn(q, &d)` | `MetricIndex::nn(&laesa, q, &d, &opts)` |
//! | `laesa.nn_limited(q, &d, p)` | `QueryOptions::new().pivot_budget(p)` |
//! | `laesa.knn(q, &d, k)` | `MetricIndex::knn` with `QueryOptions::new().k(k)` |
//! | `laesa.nn_batch` / `laesa.knn_batch` | `MetricIndex::nn_batch` / `knn_batch` |
//! | `aesa.nn(q, &d)` / `aesa.nn_batch` | `MetricIndex::nn` / `nn_batch` |
//! | `vptree.nn(q, &d)` | `MetricIndex::nn` |
//! | `ShardedIndex::build(db, cfg, &d)` | `ShardedIndex::try_build(db, cfg, &d)?` |
//! | `sharded.nn` / `.knn` / `.nn_batch` / `.knn_batch` | the `MetricIndex` equivalents |
//! | `NnClassifier::new(train, labels, SearchBackend::…, &d)` | build an index, then `NnClassifier::new(Box::new(index), labels)?` (the `SearchBackend` enum is gone) |
//! | `KnnClassifier::new` / `with_laesa` / `with_sharded` | build an index, then `KnnClassifier::new(Box::new(index), labels, k)?` |
//! | — | **new:** `MetricIndex::range` / `Database::range` / `Request::Range` |
//!
//! Or skip the per-crate types entirely and use [`Database::builder`].
//! The facade (and everything answering queries) reports failure as
//! [`SearchError`] — empty databases, invalid radii and bad pivot sets
//! are values, not panics.

pub use cned_classify as classify;
pub use cned_core as core;
pub use cned_datasets as datasets;
pub use cned_plan as plan;
pub use cned_search as search;
pub use cned_serve as serve;
pub use cned_stats as stats;
pub use cned_store as store;

mod database;

pub use cned_plan::{CacheConfig, CacheStats, Plan, PlanConfig};
pub use cned_search::{
    InsertableIndex, MetricIndex, Neighbour, QueryOptions, SearchError, SearchStats,
};
pub use cned_serve::{
    Client, ClientError, Request, RequestId, Response, ResponseBody, ServerConfig, SessionConfig,
    Ticket,
};
pub use database::{
    Backend, Database, DatabaseBuilder, DatabaseSession, Metric, ReplicaHandle, ServerHandle,
};

/// One-stop imports for examples and quick scripts.
pub mod prelude {
    pub use crate::{
        Backend, Client, Database, Metric, MetricIndex, QueryOptions, Request, ResponseBody,
        SearchError,
    };
    pub use cned_core::prelude::*;
}
