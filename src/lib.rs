//! # cned — A Contextual Normalised Edit Distance
//!
//! Facade crate re-exporting the full workspace: a reproduction of
//! *"A Contextual Normalised Edit Distance"* (Colin de la Higuera &
//! Luisa Micó, ICDE 2008).
//!
//! * [`core`] — every distance in the paper: Levenshtein `d_E`, the
//!   contextual metric `d_C` (exact Algorithm 1) and its fast heuristic
//!   `d_C,h`, Marzal–Vidal `d_MV`, Yujian–Bo `d_YB`, and the
//!   non-metric normalisations `d_max`/`d_min`/`d_sum`.
//! * [`search`] — LAESA / AESA / linear-scan nearest-neighbour search
//!   with distance-computation counting.
//! * [`serve`] — sharded serving layer: multi-shard LAESA with
//!   cross-shard bound propagation and a batch query pipeline.
//! * [`datasets`] — synthetic stand-ins for the paper's three
//!   benchmarks: a Spanish-like dictionary, DNA gene sequences, and
//!   handwritten-digit contour chain codes.
//! * [`stats`] — distance histograms and intrinsic dimensionality.
//! * [`classify`] — 1-NN classification and error rates.
//!
//! ```
//! use cned::prelude::*;
//!
//! // Paper, Example 4: d_C(ababa, baab) = 8/15.
//! let d = contextual_distance(b"ababa", b"baab");
//! assert!((d - 8.0 / 15.0).abs() < 1e-12);
//! ```

pub use cned_classify as classify;
pub use cned_core as core;
pub use cned_datasets as datasets;
pub use cned_search as search;
pub use cned_serve as serve;
pub use cned_stats as stats;

/// One-stop imports for examples and quick scripts.
pub mod prelude {
    pub use cned_core::prelude::*;
}
