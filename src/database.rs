//! [`Database`] — the one-stop entry point of the workspace.
//!
//! The paper's machinery has two independent axes: *which distance*
//! (`d_E`, `d_C`, `d_YB`, …) and *which search structure* (linear
//! scan, LAESA, AESA, vp-tree, sharded LAESA). The builder crosses
//! them declaratively and hands back a [`Database`] that **owns** the
//! metric — ending the "pass the same `&dist` to every call or get
//! garbage" footgun of the raw index types, whose pivot tables and
//! matrices silently produce wrong answers when queried through a
//! different distance than they were built with.
//!
//! ```
//! use cned::{Backend, Database, Metric};
//!
//! let words: Vec<Vec<u8>> = ["casa", "cosa", "masa", "taza", "cesta"]
//!     .iter()
//!     .map(|w| w.as_bytes().to_vec())
//!     .collect();
//! let db = Database::builder(words)
//!     .metric(Metric::Contextual { bounded: true })
//!     .backend(Backend::Laesa { pivots: 2 })
//!     .build()
//!     .unwrap();
//! let (nearest, _) = db.nn(b"cesa").unwrap();
//! assert!(nearest.is_some());
//! // Range search: everything within a radius, canonically ordered.
//! let (hits, _) = db.range(b"casa", 0.4).unwrap();
//! assert!(!hits.is_empty());
//! ```

use cned_core::contextual::exact::Contextual;
use cned_core::contextual::heuristic::ContextualHeuristic;
use cned_core::levenshtein::Levenshtein;
use cned_core::metric::{Distance, Unpruned};
use cned_core::normalized::marzal_vidal::MarzalVidal;
use cned_core::normalized::simple::{MaxNorm, MinNorm, SumNorm};
use cned_core::normalized::yujian_bo::YujianBo;
use cned_core::Symbol;
use cned_search::pivots::select_pivots_max_sum;
use cned_search::{
    Aesa, Laesa, LinearIndex, MetricIndex, Neighbour, QueryOptions, SearchError, SearchStats,
    VpTree,
};
use cned_serve::wire::WireSymbol;
use cned_serve::{
    Request, ServeSession, Server, ServerConfig, SessionConfig, ShardConfig, ShardedIndex, Ticket,
};
use std::sync::Arc;

/// Every distance of the paper, selectable by name.
///
/// `Contextual { bounded }` chooses between the band-pruned bounded
/// engine (`true`, the production path) and the full-evaluation
/// [`Unpruned`] baseline (`false`) — results are identical, only the
/// work per comparison changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Plain Levenshtein `d_E` (bit-parallel Myers engine).
    Levenshtein,
    /// The paper's contextual metric `d_C` (Algorithm 1).
    Contextual {
        /// Route comparisons through the bounded engine's admissible
        /// gates and banded DP (`true`), or always evaluate the full
        /// cubic DP (`false`).
        bounded: bool,
    },
    /// The quadratic-time contextual heuristic `d_C,h` (not a metric).
    ContextualHeuristic,
    /// Marzal–Vidal normalised edit distance `d_MV`.
    MarzalVidal,
    /// Yujian–Bo normalised metric `d_YB`.
    YujianBo,
    /// `d_E / max(|x|,|y|)` — not a metric.
    MaxNorm,
    /// `d_E / min(|x|,|y|)` — not a metric.
    MinNorm,
    /// `d_E / (|x|+|y|)` — not a metric.
    SumNorm,
}

impl Metric {
    /// Instantiate the distance for symbol type `S`.
    ///
    /// Shared ownership (`Arc`) because a [`Database`] may hand its
    /// metric to a serving session or network server whose worker
    /// threads outlive any one call.
    pub fn build<S: Symbol>(self) -> Arc<dyn Distance<S>> {
        match self {
            Metric::Levenshtein => Arc::new(Levenshtein),
            Metric::Contextual { bounded: true } => Arc::new(Contextual),
            Metric::Contextual { bounded: false } => Arc::new(Unpruned(Contextual)),
            Metric::ContextualHeuristic => Arc::new(ContextualHeuristic),
            Metric::MarzalVidal => Arc::new(MarzalVidal),
            Metric::YujianBo => Arc::new(YujianBo),
            Metric::MaxNorm => Arc::new(MaxNorm),
            Metric::MinNorm => Arc::new(MinNorm),
            Metric::SumNorm => Arc::new(SumNorm),
        }
    }
}

/// Which search structure answers the queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Exhaustive scan — no preprocessing, `n` computations per query,
    /// correct for any distance (metric or not).
    Linear,
    /// LAESA with this many greedy max-sum pivots (clamped to the
    /// database size). With `.shards(k)`, each shard gets this many
    /// pivots.
    Laesa {
        /// Number of base prototypes (pivots).
        pivots: usize,
    },
    /// AESA: the full pairwise matrix — fewest query computations,
    /// quadratic preprocessing.
    Aesa,
    /// A vantage-point tree.
    VpTree,
}

/// Builder for [`Database`]; see the module docs for the flow.
pub struct DatabaseBuilder<S: Symbol + 'static> {
    items: Vec<Vec<S>>,
    metric: Arc<dyn Distance<S>>,
    backend: Backend,
    shards: usize,
    compact_threshold: usize,
}

impl<S: Symbol + 'static> DatabaseBuilder<S> {
    /// Select a named paper metric (default: [`Metric::Levenshtein`]).
    pub fn metric(mut self, metric: Metric) -> DatabaseBuilder<S> {
        self.metric = metric.build();
        self
    }

    /// Use a custom [`Distance`] implementation instead of a named
    /// paper metric. Triangle-inequality backends (everything but
    /// [`Backend::Linear`]) return exact results only when it is a
    /// true metric.
    pub fn custom_metric(mut self, metric: Box<dyn Distance<S>>) -> DatabaseBuilder<S> {
        self.metric = Arc::from(metric);
        self
    }

    /// Select the search backend (default: [`Backend::Linear`]).
    pub fn backend(mut self, backend: Backend) -> DatabaseBuilder<S> {
        self.backend = backend;
        self
    }

    /// Split the database into `shards` LAESA shards served with
    /// cross-shard bound propagation (`cned-serve`). Only meaningful
    /// with [`Backend::Laesa`]; any other backend is rejected at
    /// [`DatabaseBuilder::build`] time. `shards <= 1` keeps a single
    /// index.
    pub fn shards(mut self, shards: usize) -> DatabaseBuilder<S> {
        self.shards = shards;
        self
    }

    /// Delta-shard size that triggers compaction in the sharded
    /// backend (default: the `cned-serve` default).
    pub fn compact_threshold(mut self, threshold: usize) -> DatabaseBuilder<S> {
        self.compact_threshold = threshold;
        self
    }

    /// Build the index and pair it with the metric.
    pub fn build(self) -> Result<Database<S>, SearchError> {
        let DatabaseBuilder {
            items,
            metric,
            backend,
            shards,
            compact_threshold,
        } = self;
        let index: Box<dyn MetricIndex<S>> = if shards > 1 {
            let Backend::Laesa { pivots } = backend else {
                return Err(SearchError::UnsupportedConfig {
                    reason: "sharding is only available for the LAESA backend",
                });
            };
            let config = ShardConfig {
                shards,
                pivots_per_shard: pivots,
                compact_threshold,
                ..ShardConfig::default()
            };
            Box::new(ShardedIndex::try_build(items, config, &*metric)?)
        } else {
            match backend {
                Backend::Linear => Box::new(LinearIndex::new(items)),
                Backend::Laesa { pivots } => {
                    let selected = select_pivots_max_sum(&items, pivots, 0, &*metric);
                    Box::new(Laesa::try_build(items, selected, &*metric)?)
                }
                Backend::Aesa => Box::new(Aesa::build(items, &*metric)),
                Backend::VpTree => Box::new(VpTree::build(items, &*metric)),
            }
        };
        Ok(Database { metric, index })
    }
}

/// A metric-space database: an index paired with the [`Distance`] it
/// was built over. All queries go through the owned metric, so index
/// and metric can never drift apart.
pub struct Database<S: Symbol + 'static> {
    metric: Arc<dyn Distance<S>>,
    index: Box<dyn MetricIndex<S>>,
}

impl<S: Symbol + 'static> Database<S> {
    /// Start building a database over `items`. Defaults:
    /// [`Metric::Levenshtein`], [`Backend::Linear`], no sharding.
    pub fn builder(items: Vec<Vec<S>>) -> DatabaseBuilder<S> {
        DatabaseBuilder {
            items,
            metric: Metric::Levenshtein.build(),
            backend: Backend::Linear,
            shards: 1,
            compact_threshold: ShardConfig::default().compact_threshold,
        }
    }

    /// The owned metric.
    pub fn metric(&self) -> &dyn Distance<S> {
        &*self.metric
    }

    /// The underlying index as a trait object — e.g. to hand to a
    /// `cned_classify` classifier or a serving pipeline.
    pub fn index(&self) -> &dyn MetricIndex<S> {
        &*self.index
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the database holds no items.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The item at index `i` (result indices address this).
    pub fn item(&self, i: usize) -> Option<&[S]> {
        self.index.item(i)
    }

    /// Nearest neighbour of `query`.
    pub fn nn(&self, query: &[S]) -> Result<(Option<Neighbour>, SearchStats), SearchError> {
        self.nn_with(query, &QueryOptions::new())
    }

    /// Nearest neighbour with explicit [`QueryOptions`] (radius seed,
    /// pivot budget, stats sink, …).
    pub fn nn_with(
        &self,
        query: &[S],
        opts: &QueryOptions,
    ) -> Result<(Option<Neighbour>, SearchStats), SearchError> {
        self.index.nn(query, &*self.metric, opts)
    }

    /// The `k` nearest neighbours of `query`, canonically ordered.
    pub fn knn(&self, query: &[S], k: usize) -> Result<(Vec<Neighbour>, SearchStats), SearchError> {
        self.knn_with(query, &QueryOptions::new().k(k))
    }

    /// k-NN with explicit [`QueryOptions`].
    pub fn knn_with(
        &self,
        query: &[S],
        opts: &QueryOptions,
    ) -> Result<(Vec<Neighbour>, SearchStats), SearchError> {
        self.index.knn(query, &*self.metric, opts)
    }

    /// Every item within `radius` (inclusive) of `query`, canonically
    /// ordered.
    pub fn range(
        &self,
        query: &[S],
        radius: f64,
    ) -> Result<(Vec<Neighbour>, SearchStats), SearchError> {
        self.range_with(query, &QueryOptions::new().radius(radius))
    }

    /// Range search with explicit [`QueryOptions`].
    pub fn range_with(
        &self,
        query: &[S],
        opts: &QueryOptions,
    ) -> Result<(Vec<Neighbour>, SearchStats), SearchError> {
        self.index.range(query, &*self.metric, opts)
    }

    /// Nearest neighbour for a batch of queries, parallelised across
    /// queries.
    pub fn nn_batch(
        &self,
        queries: &[Vec<S>],
    ) -> Result<Vec<(Option<Neighbour>, SearchStats)>, SearchError> {
        self.index
            .nn_batch(queries, &*self.metric, &QueryOptions::new())
    }

    /// k-NN for a batch of queries, parallelised across queries.
    pub fn knn_batch(
        &self,
        queries: &[Vec<S>],
        k: usize,
    ) -> Result<Vec<(Vec<Neighbour>, SearchStats)>, SearchError> {
        self.index
            .knn_batch(queries, &*self.metric, &QueryOptions::new().k(k))
    }

    /// Turn the database into a live serving session: non-blocking
    /// [`DatabaseSession::submit`] with per-request [`Ticket`]s,
    /// bounded admission, and in-order/insert-barrier semantics — the
    /// in-process face of the serving API (the network face is
    /// [`Database::serve`]).
    ///
    /// The session owns the database while it runs;
    /// [`DatabaseSession::shutdown`] drains in-flight work and hands
    /// the [`Database`] back. Inserts require an insertable backend
    /// ([`Backend::Linear`] or a sharded build); on any other backend
    /// they answer with a typed failure.
    pub fn session(self) -> DatabaseSession<S> {
        self.session_with(SessionConfig::default())
    }

    /// [`Database::session`] with explicit knobs (admission depth).
    pub fn session_with(self, config: SessionConfig) -> DatabaseSession<S> {
        DatabaseSession {
            metric: Arc::clone(&self.metric),
            session: ServeSession::spawn_with(self.index, Arc::clone(&self.metric), config),
        }
    }
}

impl<S: WireSymbol + 'static> Database<S> {
    /// Serve the database over TCP with the `cned-serve` wire
    /// protocol (length-prefixed binary frames; see
    /// [`cned::serve::wire`](cned_serve::wire)). Bind to port 0 for
    /// an ephemeral port and read it back with
    /// [`ServerHandle::local_addr`]; connect with
    /// [`cned::serve::Client`](cned_serve::Client).
    ///
    /// All connections share one session — one admission queue, one
    /// scheduler, insert barriers across clients.
    /// [`ServerHandle::shutdown`] drains connections and in-flight
    /// work, then hands the [`Database`] back.
    pub fn serve(self, addr: impl std::net::ToSocketAddrs) -> std::io::Result<ServerHandle<S>> {
        self.serve_with(addr, ServerConfig::default())
    }

    /// [`Database::serve`] with explicit knobs.
    pub fn serve_with(
        self,
        addr: impl std::net::ToSocketAddrs,
        config: ServerConfig,
    ) -> std::io::Result<ServerHandle<S>> {
        Ok(ServerHandle {
            metric: Arc::clone(&self.metric),
            server: Server::bind_with(addr, self.index, Arc::clone(&self.metric), config)?,
        })
    }
}

/// A [`Database`] being served in-process through the session/ticket
/// API (see [`Database::session`]).
pub struct DatabaseSession<S: Symbol + 'static> {
    metric: Arc<dyn Distance<S>>,
    session: ServeSession<S, Box<dyn MetricIndex<S>>>,
}

impl<S: Symbol + 'static> DatabaseSession<S> {
    /// Enqueue a request; the [`Ticket`] yields its tagged response.
    /// Refuses with [`SearchError::Overloaded`] past the admission
    /// depth.
    pub fn submit(&self, request: Request<S>) -> Result<Ticket, SearchError> {
        self.session.submit(request)
    }

    /// Requests accepted but not yet being answered.
    pub fn pending(&self) -> usize {
        self.session.pending()
    }

    /// Drain in-flight work and reassemble the [`Database`].
    pub fn shutdown(self) -> Database<S> {
        let DatabaseSession { metric, session } = self;
        Database {
            index: session.shutdown(),
            metric,
        }
    }
}

/// A [`Database`] being served over TCP (see [`Database::serve`]).
pub struct ServerHandle<S: WireSymbol + 'static> {
    metric: Arc<dyn Distance<S>>,
    server: Server<S, Box<dyn MetricIndex<S>>>,
}

impl<S: WireSymbol + 'static> ServerHandle<S> {
    /// The bound address (with the real port when bound to port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.server.local_addr()
    }

    /// The shared serving session, for co-serving in-process
    /// submissions next to network clients.
    pub fn session(&self) -> &ServeSession<S, Box<dyn MetricIndex<S>>> {
        self.server.session()
    }

    /// Stop accepting, drain connections and in-flight work, and
    /// reassemble the [`Database`].
    pub fn shutdown(self) -> Database<S> {
        let ServerHandle { metric, server } = self;
        Database {
            index: server.shutdown(),
            metric,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words() -> Vec<Vec<u8>> {
        ["casa", "cosa", "masa", "taza", "cesta", "pasta"]
            .iter()
            .map(|w| w.as_bytes().to_vec())
            .collect()
    }

    #[test]
    fn every_backend_answers_identically_through_the_facade() {
        let backends = [
            Backend::Linear,
            Backend::Laesa { pivots: 3 },
            Backend::Aesa,
            Backend::VpTree,
        ];
        let reference = Database::builder(words()).build().unwrap();
        for backend in backends {
            let db = Database::builder(words()).backend(backend).build().unwrap();
            assert_eq!(db.len(), 6);
            for q in [&b"casa"[..], b"pesto", b"maza"] {
                let (r_nn, _) = reference.nn(q).unwrap();
                let (b_nn, _) = db.nn(q).unwrap();
                let (r_nn, b_nn) = (r_nn.unwrap(), b_nn.unwrap());
                assert_eq!(
                    (r_nn.index, r_nn.distance.to_bits()),
                    (b_nn.index, b_nn.distance.to_bits()),
                    "{backend:?} query {q:?}"
                );
                let (r_range, _) = reference.range(q, 2.0).unwrap();
                let (b_range, _) = db.range(q, 2.0).unwrap();
                let as_key = |ns: &[Neighbour]| -> Vec<(usize, u64)> {
                    ns.iter().map(|n| (n.index, n.distance.to_bits())).collect()
                };
                assert_eq!(
                    as_key(&r_range),
                    as_key(&b_range),
                    "{backend:?} query {q:?}"
                );
            }
        }
    }

    #[test]
    fn sharded_builder_path_works_and_owns_the_metric() {
        let db = Database::builder(words())
            .metric(Metric::Contextual { bounded: true })
            .backend(Backend::Laesa { pivots: 2 })
            .shards(3)
            .build()
            .unwrap();
        assert_eq!(db.index().backend_name(), "sharded");
        let (nn, _) = db.nn(b"casa").unwrap();
        let nn = nn.unwrap();
        assert_eq!(nn.index, 0);
        assert_eq!(nn.distance, 0.0);
        assert_eq!(db.item(nn.index), Some(&b"casa"[..]));
        assert_eq!(db.metric().name(), "d_C");
        // Batches flow through the same surface.
        let queries = words();
        let batch = db.nn_batch(&queries).unwrap();
        assert_eq!(batch.len(), queries.len());
        for (i, (nb, _)) in batch.iter().enumerate() {
            assert_eq!(nb.unwrap().index, i, "member query finds itself");
        }
    }

    #[test]
    fn sharding_non_laesa_backends_is_a_typed_error() {
        let err = Database::builder(words())
            .backend(Backend::VpTree)
            .shards(4)
            .build()
            .err()
            .expect("sharded vp-tree must be rejected");
        assert!(matches!(err, SearchError::UnsupportedConfig { .. }));
    }

    #[test]
    fn unbounded_contextual_matches_bounded_results() {
        let fast = Database::builder(words())
            .metric(Metric::Contextual { bounded: true })
            .build()
            .unwrap();
        let slow = Database::builder(words())
            .metric(Metric::Contextual { bounded: false })
            .build()
            .unwrap();
        for q in [&b"casa"[..], b"past", b"zzz"] {
            let (f, _) = fast.nn(q).unwrap();
            let (s, _) = slow.nn(q).unwrap();
            let (f, s) = (f.unwrap(), s.unwrap());
            assert_eq!(
                (f.index, f.distance.to_bits()),
                (s.index, s.distance.to_bits())
            );
        }
    }

    #[test]
    fn custom_metrics_plug_in() {
        struct LengthDiff;
        impl Distance<u8> for LengthDiff {
            fn distance(&self, a: &[u8], b: &[u8]) -> f64 {
                (a.len() as f64 - b.len() as f64).abs()
            }
            fn name(&self) -> &'static str {
                "len-diff"
            }
            fn is_metric(&self) -> bool {
                false // pseudo-metric: identity fails
            }
        }
        let db = Database::builder(words())
            .custom_metric(Box::new(LengthDiff))
            .build()
            .unwrap();
        let (nn, _) = db.nn(b"xxxx").unwrap();
        assert_eq!(nn.unwrap().distance, 0.0);
    }

    #[test]
    fn empty_database_is_a_typed_error_at_query_time() {
        let db = Database::builder(Vec::<Vec<u8>>::new()).build().unwrap();
        assert!(db.is_empty());
        assert_eq!(db.nn(b"x").unwrap_err(), SearchError::EmptyDatabase);
        assert_eq!(db.range(b"x", 1.0).unwrap_err(), SearchError::EmptyDatabase);
    }

    #[test]
    fn facade_session_serves_tickets_and_returns_the_database() {
        use cned_serve::ResponseBody;
        let db = Database::builder(words())
            .backend(Backend::Laesa { pivots: 2 })
            .shards(2)
            .build()
            .unwrap();
        let n = db.len();
        let session = db.session();
        let t_nn = session
            .submit(Request::Nn {
                query: b"casa".to_vec(),
            })
            .unwrap();
        let t_ins = session
            .submit(Request::Insert {
                item: b"nueva".to_vec(),
            })
            .unwrap();
        let t_after = session
            .submit(Request::Nn {
                query: b"nueva".to_vec(),
            })
            .unwrap();
        let ResponseBody::Nn {
            neighbour: Some(nb),
            ..
        } = t_nn.wait().body
        else {
            panic!("expected Nn");
        };
        assert_eq!((nb.index, nb.distance), (0, 0.0));
        assert_eq!(t_ins.wait().body, ResponseBody::Inserted { index: n });
        let ResponseBody::Nn {
            neighbour: Some(nb),
            ..
        } = t_after.wait().body
        else {
            panic!("expected Nn");
        };
        assert_eq!((nb.index, nb.distance), (n, 0.0), "insert is a barrier");
        // The session hands the database back, insert included.
        let db = session.shutdown();
        assert_eq!(db.len(), n + 1);
        assert_eq!(db.item(n), Some(&b"nueva"[..]));
        assert_eq!(db.metric().name(), "d_E");
    }

    #[test]
    fn facade_serve_loopback_matches_in_process_answers() {
        use cned_serve::Client;
        let db = Database::builder(words()).build().unwrap();
        let n = db.len();
        // In-process expectations first; then the same database goes
        // behind the wire.
        let (e_nn, e_stats) = db.nn(b"cesa").unwrap();
        let (e_range, _) = db.range(b"casa", 1.0).unwrap();
        let handle = db.serve("127.0.0.1:0").expect("ephemeral loopback bind");
        let mut client: Client<u8> = Client::connect(handle.local_addr()).unwrap();
        let (nn, stats) = client.nn(b"cesa").unwrap();
        assert_eq!(
            nn.map(|v| (v.index, v.distance.to_bits())),
            e_nn.map(|v| (v.index, v.distance.to_bits())),
            "loopback NN is bit-identical to the in-process answer"
        );
        assert_eq!(stats, e_stats);
        let (hits, _) = client.range(b"casa", 1.0).unwrap();
        let key = |ns: &[Neighbour]| -> Vec<(usize, u64)> {
            ns.iter().map(|v| (v.index, v.distance.to_bits())).collect()
        };
        assert_eq!(key(&hits), key(&e_range));
        // Inserts flow over the wire into the served index…
        assert_eq!(client.insert(b"cesa").unwrap(), n);
        let (nn, _) = client.nn(b"cesa").unwrap();
        assert_eq!(nn.map(|v| (v.index, v.distance)), Some((n, 0.0)));
        drop(client);
        // …and drain back into the reassembled database.
        let db = handle.shutdown();
        assert_eq!(db.len(), n + 1);
        let (nn, _) = db.nn(b"cesa").unwrap();
        assert_eq!(nn.map(|v| (v.index, v.distance)), Some((n, 0.0)));
    }
}
