//! [`Database`] — the one-stop entry point of the workspace.
//!
//! The paper's machinery has two independent axes: *which distance*
//! (`d_E`, `d_C`, `d_YB`, …) and *which search structure* (linear
//! scan, LAESA, AESA, vp-tree, sharded LAESA). The builder crosses
//! them declaratively and hands back a [`Database`] that **owns** the
//! metric — ending the "pass the same `&dist` to every call or get
//! garbage" footgun of the raw index types, whose pivot tables and
//! matrices silently produce wrong answers when queried through a
//! different distance than they were built with.
//!
//! ```
//! use cned::{Backend, Database, Metric};
//!
//! let words: Vec<Vec<u8>> = ["casa", "cosa", "masa", "taza", "cesta"]
//!     .iter()
//!     .map(|w| w.as_bytes().to_vec())
//!     .collect();
//! let db = Database::builder(words)
//!     .metric(Metric::Contextual { bounded: true })
//!     .backend(Backend::Laesa { pivots: 2 })
//!     .build()
//!     .unwrap();
//! let (nearest, _) = db.nn(b"cesa").unwrap();
//! assert!(nearest.is_some());
//! // Range search: everything within a radius, canonically ordered.
//! let (hits, _) = db.range(b"casa", 0.4).unwrap();
//! assert!(!hits.is_empty());
//! ```

use cned_core::contextual::exact::Contextual;
use cned_core::contextual::heuristic::ContextualHeuristic;
use cned_core::levenshtein::Levenshtein;
use cned_core::metric::{Distance, Unpruned};
use cned_core::normalized::marzal_vidal::MarzalVidal;
use cned_core::normalized::simple::{MaxNorm, MinNorm, SumNorm};
use cned_core::normalized::yujian_bo::YujianBo;
use cned_core::Symbol;
use cned_search::pivots::select_pivots_max_sum;
use cned_search::{
    Aesa, Laesa, LinearIndex, MetricIndex, Neighbour, QueryOptions, SearchError, SearchStats,
    VpTree,
};
use cned_serve::server::ReplicaHub;
use cned_serve::wire::{self, ReplicaFrame, WireSymbol};
use cned_serve::{
    Request, RequestId, ResponseBody, ServeSession, Server, ServerConfig, SessionConfig,
    SessionHandle, ShardConfig, ShardedIndex, Ticket,
};
use cned_store::{
    data_dir_initialised, decode_snapshot, encode_snapshot, read_snapshot_meta, write_atomic,
    Durable, IndexView, SNAPSHOT_FILE, WAL_FILE,
};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Every distance of the paper, selectable by name.
///
/// `Contextual { bounded }` chooses between the band-pruned bounded
/// engine (`true`, the production path) and the full-evaluation
/// [`Unpruned`] baseline (`false`) — results are identical, only the
/// work per comparison changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Plain Levenshtein `d_E` (bit-parallel Myers engine).
    Levenshtein,
    /// The paper's contextual metric `d_C` (Algorithm 1).
    Contextual {
        /// Route comparisons through the bounded engine's admissible
        /// gates and banded DP (`true`), or always evaluate the full
        /// cubic DP (`false`).
        bounded: bool,
    },
    /// The quadratic-time contextual heuristic `d_C,h` (not a metric).
    ContextualHeuristic,
    /// Marzal–Vidal normalised edit distance `d_MV`.
    MarzalVidal,
    /// Yujian–Bo normalised metric `d_YB`.
    YujianBo,
    /// `d_E / max(|x|,|y|)` — not a metric.
    MaxNorm,
    /// `d_E / min(|x|,|y|)` — not a metric.
    MinNorm,
    /// `d_E / (|x|+|y|)` — not a metric.
    SumNorm,
}

impl Metric {
    /// The stable `(code, flag)` pair identifying this metric in
    /// snapshot files (`cned-store`'s META record). Codes are
    /// append-only: existing codes never change meaning.
    pub fn codes(self) -> (u8, u8) {
        match self {
            Metric::Levenshtein => (1, 0),
            Metric::Contextual { bounded } => (2, u8::from(bounded)),
            Metric::ContextualHeuristic => (3, 0),
            Metric::MarzalVidal => (4, 0),
            Metric::YujianBo => (5, 0),
            Metric::MaxNorm => (6, 0),
            Metric::MinNorm => (7, 0),
            Metric::SumNorm => (8, 0),
        }
    }

    /// Inverse of [`Metric::codes`]; `None` for codes this build does
    /// not know (a snapshot from a newer build).
    pub fn from_codes(code: u8, flag: u8) -> Option<Metric> {
        Some(match (code, flag) {
            (1, 0) => Metric::Levenshtein,
            (2, f @ (0 | 1)) => Metric::Contextual { bounded: f == 1 },
            (3, 0) => Metric::ContextualHeuristic,
            (4, 0) => Metric::MarzalVidal,
            (5, 0) => Metric::YujianBo,
            (6, 0) => Metric::MaxNorm,
            (7, 0) => Metric::MinNorm,
            (8, 0) => Metric::SumNorm,
            _ => return None,
        })
    }

    /// Instantiate the distance for symbol type `S`.
    ///
    /// Shared ownership (`Arc`) because a [`Database`] may hand its
    /// metric to a serving session or network server whose worker
    /// threads outlive any one call.
    pub fn build<S: Symbol>(self) -> Arc<dyn Distance<S>> {
        match self {
            Metric::Levenshtein => Arc::new(Levenshtein),
            Metric::Contextual { bounded: true } => Arc::new(Contextual),
            Metric::Contextual { bounded: false } => Arc::new(Unpruned(Contextual)),
            Metric::ContextualHeuristic => Arc::new(ContextualHeuristic),
            Metric::MarzalVidal => Arc::new(MarzalVidal),
            Metric::YujianBo => Arc::new(YujianBo),
            Metric::MaxNorm => Arc::new(MaxNorm),
            Metric::MinNorm => Arc::new(MinNorm),
            Metric::SumNorm => Arc::new(SumNorm),
        }
    }
}

/// Which search structure answers the queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Exhaustive scan — no preprocessing, `n` computations per query,
    /// correct for any distance (metric or not).
    Linear,
    /// LAESA with this many greedy max-sum pivots (clamped to the
    /// database size). With `.shards(k)`, each shard gets this many
    /// pivots.
    Laesa {
        /// Number of base prototypes (pivots).
        pivots: usize,
    },
    /// AESA: the full pairwise matrix — fewest query computations,
    /// quadratic preprocessing.
    Aesa,
    /// A vantage-point tree.
    VpTree,
}

/// Builder for [`Database`]; see the module docs for the flow.
pub struct DatabaseBuilder<S: Symbol + 'static> {
    items: Vec<Vec<S>>,
    metric: Arc<dyn Distance<S>>,
    metric_tag: Option<Metric>,
    backend: Backend,
    shards: usize,
    compact_threshold: usize,
}

impl<S: Symbol + 'static> DatabaseBuilder<S> {
    /// Select a named paper metric (default: [`Metric::Levenshtein`]).
    pub fn metric(mut self, metric: Metric) -> DatabaseBuilder<S> {
        self.metric = metric.build();
        self.metric_tag = Some(metric);
        self
    }

    /// Use a custom [`Distance`] implementation instead of a named
    /// paper metric. Triangle-inequality backends (everything but
    /// [`Backend::Linear`]) return exact results only when it is a
    /// true metric.
    ///
    /// Custom metrics have no stable identity to write into a
    /// snapshot, so a database built this way cannot be persisted
    /// ([`Database::save`] and data-dir serving refuse typed).
    pub fn custom_metric(mut self, metric: Box<dyn Distance<S>>) -> DatabaseBuilder<S> {
        self.metric = Arc::from(metric);
        self.metric_tag = None;
        self
    }

    /// Select the search backend (default: [`Backend::Linear`]).
    pub fn backend(mut self, backend: Backend) -> DatabaseBuilder<S> {
        self.backend = backend;
        self
    }

    /// Split the database into `shards` LAESA shards served with
    /// cross-shard bound propagation (`cned-serve`). Only meaningful
    /// with [`Backend::Laesa`]; any other backend is rejected at
    /// [`DatabaseBuilder::build`] time. `shards <= 1` keeps a single
    /// index.
    pub fn shards(mut self, shards: usize) -> DatabaseBuilder<S> {
        self.shards = shards;
        self
    }

    /// Delta-shard size that triggers compaction in the sharded
    /// backend (default: the `cned-serve` default).
    pub fn compact_threshold(mut self, threshold: usize) -> DatabaseBuilder<S> {
        self.compact_threshold = threshold;
        self
    }

    /// Build the index and pair it with the metric.
    pub fn build(self) -> Result<Database<S>, SearchError> {
        let DatabaseBuilder {
            items,
            metric,
            metric_tag,
            backend,
            shards,
            compact_threshold,
        } = self;
        let index: Box<dyn MetricIndex<S>> = if shards > 1 {
            let Backend::Laesa { pivots } = backend else {
                return Err(SearchError::UnsupportedConfig {
                    reason: "sharding is only available for the LAESA backend",
                });
            };
            let config = ShardConfig {
                shards,
                pivots_per_shard: pivots,
                compact_threshold,
                ..ShardConfig::default()
            };
            Box::new(ShardedIndex::try_build(items, config, &*metric)?)
        } else {
            match backend {
                Backend::Linear => Box::new(LinearIndex::new(items)),
                Backend::Laesa { pivots } => {
                    let selected = select_pivots_max_sum(&items, pivots, 0, &*metric);
                    Box::new(Laesa::try_build(items, selected, &*metric)?)
                }
                Backend::Aesa => Box::new(Aesa::build(items, &*metric)),
                Backend::VpTree => Box::new(VpTree::build(items, &*metric)),
            }
        };
        Ok(Database {
            metric,
            metric_tag,
            index,
        })
    }
}

/// A metric-space database: an index paired with the [`Distance`] it
/// was built over. All queries go through the owned metric, so index
/// and metric can never drift apart.
pub struct Database<S: Symbol + 'static> {
    metric: Arc<dyn Distance<S>>,
    /// The named metric behind `metric`, when there is one — the
    /// persistable identity. `None` for custom metrics.
    metric_tag: Option<Metric>,
    index: Box<dyn MetricIndex<S>>,
}

impl<S: Symbol + 'static> Database<S> {
    /// Start building a database over `items`. Defaults:
    /// [`Metric::Levenshtein`], [`Backend::Linear`], no sharding.
    pub fn builder(items: Vec<Vec<S>>) -> DatabaseBuilder<S> {
        DatabaseBuilder {
            items,
            metric: Metric::Levenshtein.build(),
            metric_tag: Some(Metric::Levenshtein),
            backend: Backend::Linear,
            shards: 1,
            compact_threshold: ShardConfig::default().compact_threshold,
        }
    }

    /// The owned metric.
    pub fn metric(&self) -> &dyn Distance<S> {
        &*self.metric
    }

    /// The underlying index as a trait object — e.g. to hand to a
    /// `cned_classify` classifier or a serving pipeline.
    pub fn index(&self) -> &dyn MetricIndex<S> {
        &*self.index
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the database holds no items.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The item at index `i` (result indices address this).
    pub fn item(&self, i: usize) -> Option<&[S]> {
        self.index.item(i)
    }

    /// Nearest neighbour of `query`.
    pub fn nn(&self, query: &[S]) -> Result<(Option<Neighbour>, SearchStats), SearchError> {
        self.nn_with(query, &QueryOptions::new())
    }

    /// Nearest neighbour with explicit [`QueryOptions`] (radius seed,
    /// pivot budget, stats sink, …).
    pub fn nn_with(
        &self,
        query: &[S],
        opts: &QueryOptions,
    ) -> Result<(Option<Neighbour>, SearchStats), SearchError> {
        self.index.nn(query, &*self.metric, opts)
    }

    /// The `k` nearest neighbours of `query`, canonically ordered.
    pub fn knn(&self, query: &[S], k: usize) -> Result<(Vec<Neighbour>, SearchStats), SearchError> {
        self.knn_with(query, &QueryOptions::new().k(k))
    }

    /// k-NN with explicit [`QueryOptions`].
    pub fn knn_with(
        &self,
        query: &[S],
        opts: &QueryOptions,
    ) -> Result<(Vec<Neighbour>, SearchStats), SearchError> {
        self.index.knn(query, &*self.metric, opts)
    }

    /// Every item within `radius` (inclusive) of `query`, canonically
    /// ordered.
    pub fn range(
        &self,
        query: &[S],
        radius: f64,
    ) -> Result<(Vec<Neighbour>, SearchStats), SearchError> {
        self.range_with(query, &QueryOptions::new().radius(radius))
    }

    /// Range search with explicit [`QueryOptions`].
    pub fn range_with(
        &self,
        query: &[S],
        opts: &QueryOptions,
    ) -> Result<(Vec<Neighbour>, SearchStats), SearchError> {
        self.index.range(query, &*self.metric, opts)
    }

    /// Nearest neighbour for a batch of queries, parallelised across
    /// queries.
    pub fn nn_batch(
        &self,
        queries: &[Vec<S>],
    ) -> Result<Vec<(Option<Neighbour>, SearchStats)>, SearchError> {
        self.index
            .nn_batch(queries, &*self.metric, &QueryOptions::new())
    }

    /// k-NN for a batch of queries, parallelised across queries.
    pub fn knn_batch(
        &self,
        queries: &[Vec<S>],
        k: usize,
    ) -> Result<Vec<(Vec<Neighbour>, SearchStats)>, SearchError> {
        self.index
            .knn_batch(queries, &*self.metric, &QueryOptions::new().k(k))
    }

    /// Turn the database into a live serving session: non-blocking
    /// [`DatabaseSession::submit`] with per-request [`Ticket`]s,
    /// bounded admission, and in-order/insert-barrier semantics — the
    /// in-process face of the serving API (the network face is
    /// [`Database::serve`]).
    ///
    /// The session owns the database while it runs;
    /// [`DatabaseSession::shutdown`] drains in-flight work and hands
    /// the [`Database`] back. Inserts require an insertable backend
    /// ([`Backend::Linear`] or a sharded build); on any other backend
    /// they answer with a typed failure.
    pub fn session(self) -> DatabaseSession<S> {
        self.session_with(SessionConfig::default())
    }

    /// [`Database::session`] with explicit knobs (admission depth).
    pub fn session_with(self, config: SessionConfig) -> DatabaseSession<S> {
        DatabaseSession {
            metric: Arc::clone(&self.metric),
            metric_tag: self.metric_tag,
            session: ServeSession::spawn_with(self.index, Arc::clone(&self.metric), config),
        }
    }
}

impl<S: WireSymbol + 'static> Database<S> {
    /// Serve the database over TCP with the `cned-serve` wire
    /// protocol (length-prefixed binary frames; see
    /// [`cned::serve::wire`](cned_serve::wire)). Bind to port 0 for
    /// an ephemeral port and read it back with
    /// [`ServerHandle::local_addr`]; connect with
    /// [`cned::serve::Client`](cned_serve::Client).
    ///
    /// All connections share one session — one admission queue, one
    /// scheduler, insert barriers across clients.
    /// [`ServerHandle::shutdown`] drains connections and in-flight
    /// work, then hands the [`Database`] back.
    pub fn serve(self, addr: impl std::net::ToSocketAddrs) -> std::io::Result<ServerHandle<S>> {
        self.serve_with(addr, ServerConfig::default())
    }

    /// [`Database::serve`] with explicit knobs.
    ///
    /// With [`ServerConfig::data_dir`] set, the server is **durable**:
    ///
    /// * a dir already holding a snapshot wins — it is recovered
    ///   (snapshot + WAL replay) and served, and the database passed
    ///   here is discarded, so a kill → restart loop converges on the
    ///   persisted state rather than the seed;
    /// * a fresh dir is initialised from this database's contents;
    /// * every accepted insert is WAL-logged and fsynced **before**
    ///   its ticket resolves, and a snapshot is taken every
    ///   [`ServerConfig::snapshot_every`] inserts and at shutdown;
    /// * replicas may register (see [`Database::replica`]) and are fed
    ///   the snapshot, the log tail, and live inserts.
    pub fn serve_with(
        self,
        addr: impl std::net::ToSocketAddrs,
        config: ServerConfig,
    ) -> std::io::Result<ServerHandle<S>> {
        let Some(dir) = config.data_dir.clone() else {
            return Ok(ServerHandle {
                metric: Arc::clone(&self.metric),
                metric_tag: self.metric_tag,
                server: Server::bind_with(addr, self.index, Arc::clone(&self.metric), config)?,
            });
        };
        let (durable, metric, metric_tag) = if data_dir_initialised(&dir) {
            // Disk wins: the persisted state (metric included) is the
            // authority; `self`'s contents are discarded.
            let (durable, tag, dist) = recover_dir::<S>(&dir, config.snapshot_every)?;
            (durable, dist, Some(tag))
        } else {
            let tag = self.metric_tag.ok_or_else(|| {
                invalid_input("custom metrics cannot be persisted; build with a named Metric")
            })?;
            let view = IndexView::of(&*self.index).ok_or_else(|| {
                invalid_input("only the linear, laesa and sharded backends can be persisted")
            })?;
            // Encode-then-decode to obtain the owned StoredIndex the
            // durable wrapper needs from the borrowed trait object.
            let bytes = encode_snapshot(tag.codes(), &view);
            let (_, owned) = decode_snapshot::<S>(&bytes).map_err(invalid_data)?;
            let durable = Durable::create(&dir, tag.codes(), owned, config.snapshot_every)
                .map_err(invalid_data)?;
            (durable, Arc::clone(&self.metric), Some(tag))
        };
        let hub: Arc<dyn ReplicaHub<S>> = Arc::new(durable.hub());
        let index: Box<dyn MetricIndex<S>> = Box::new(durable);
        Ok(ServerHandle {
            metric: Arc::clone(&metric),
            metric_tag,
            server: Server::bind_replicated(addr, index, metric, config, Some(hub))?,
        })
    }

    /// Persist the database to `path` as one self-contained snapshot
    /// file (`cned-store` format): items, metric identity, and the
    /// full index structure. [`Database::load`] restores it without
    /// rebuilding, answering bit-identically — `SearchStats` included.
    ///
    /// Requires a named [`Metric`] and a persistable backend
    /// ([`Backend::Linear`], [`Backend::Laesa`], or a sharded build);
    /// anything else refuses with a typed error.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), SearchError> {
        let tag = self.metric_tag.ok_or(SearchError::UnsupportedConfig {
            reason: "custom metrics cannot be persisted; build with a named Metric",
        })?;
        let view = IndexView::of(&*self.index).ok_or(SearchError::UnsupportedConfig {
            reason: "only the linear, laesa and sharded backends can be persisted",
        })?;
        let bytes = encode_snapshot(tag.codes(), &view);
        write_atomic(path.as_ref(), &bytes).map_err(SearchError::from)
    }

    /// Load a database saved by [`Database::save`] (or a server data
    /// dir's snapshot file). The index is decoded, not rebuilt: no
    /// pivot selection, no distance computations.
    pub fn load(path: impl AsRef<Path>) -> Result<Database<S>, SearchError> {
        let bytes = std::fs::read(path.as_ref()).map_err(|e| SearchError::Persistence {
            reason: format!("read snapshot: {e}"),
        })?;
        let (meta, index) = decode_snapshot::<S>(&bytes)?;
        let tag = Metric::from_codes(meta.metric_code, meta.metric_flag).ok_or_else(|| {
            SearchError::Persistence {
                reason: format!(
                    "snapshot uses unknown metric code ({}, {})",
                    meta.metric_code, meta.metric_flag
                ),
            }
        })?;
        Ok(Database {
            metric: tag.build(),
            metric_tag: Some(tag),
            index: match index {
                cned_store::StoredIndex::Linear(i) => Box::new(i),
                cned_store::StoredIndex::Laesa(i) => Box::new(i),
                cned_store::StoredIndex::Sharded(i) => Box::new(i),
            },
        })
    }

    /// Start a **replica** of a durable primary started with
    /// [`Database::serve_with`] + [`ServerConfig::data_dir`].
    ///
    /// The replica recovers whatever `dir` already holds, registers
    /// with the primary declaring how many items it has, catches up
    /// (full snapshot transfer for a fresh/behind replica, log tail
    /// otherwise), then serves **reads** on `addr` while a background
    /// applier streams the primary's subsequent inserts into the local
    /// index — each one WAL-logged locally, so a restarted replica
    /// resumes from its own disk and fetches only the tail it missed.
    /// Inserts sent to the replica by clients answer with a typed
    /// read-only failure.
    pub fn replica(
        primary: impl std::net::ToSocketAddrs,
        dir: impl Into<PathBuf>,
        addr: impl std::net::ToSocketAddrs,
        config: ServerConfig,
    ) -> std::io::Result<ReplicaHandle<S>> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let local = if data_dir_initialised(&dir) {
            Some(recover_dir::<S>(&dir, config.snapshot_every)?)
        } else {
            None
        };
        let have = local
            .as_ref()
            .map_or(0, |(d, _, _)| MetricIndex::len(d) as u64);

        // Register with the primary and drain the catch-up payload.
        let mut stream = std::net::TcpStream::connect(primary)?;
        let mut buf = Vec::new();
        wire::encode_sync_request(RequestId(0), have, &mut buf);
        wire::write_frame(&mut stream, &buf).map_err(wire_io)?;
        let mut acc = cned_store::SyncAccumulator::<S>::new();
        loop {
            if wire::read_frame(&mut stream, &mut buf)
                .map_err(wire_io)?
                .is_none()
            {
                return Err(invalid_data("primary closed the connection mid-sync"));
            }
            match wire::decode_replica_frame::<S>(&buf).map_err(wire_io)? {
                ReplicaFrame::SyncChunk {
                    mode, done, chunk, ..
                } => {
                    acc.push(mode, &chunk).map_err(invalid_data)?;
                    if done {
                        break;
                    }
                }
                ReplicaFrame::Response(resp) => {
                    return Err(invalid_data(format!(
                        "primary refused replica registration: {:?}",
                        resp.body
                    )));
                }
                ReplicaFrame::Insert { .. } => {
                    return Err(invalid_data(
                        "insert frame before the sync stream completed",
                    ));
                }
            }
        }
        let outcome = acc.finish();

        let (mut durable, tag, dist) = match (outcome.snapshot, local) {
            (Some(snap), local) => {
                // Full transfer: the primary's snapshot replaces local
                // state wholesale. Validate before installing, and
                // drop the stale WAL so recovery cannot replay old
                // entries on top of the new base.
                decode_snapshot::<S>(&snap).map_err(invalid_data)?;
                drop(local);
                write_atomic(&dir.join(SNAPSHOT_FILE), &snap).map_err(invalid_data)?;
                let _ = std::fs::remove_file(dir.join(WAL_FILE));
                recover_dir::<S>(&dir, config.snapshot_every)?
            }
            (None, Some(local)) => local,
            (None, None) => {
                return Err(invalid_data("primary sent no snapshot to an empty replica"))
            }
        };

        // Apply the log tail; overlap with local state is expected
        // (dedupe by sequence number), a gap is a protocol violation.
        for (seq, item) in outcome.items {
            let len = MetricIndex::len(&durable) as u64;
            if seq < len {
                continue;
            }
            if seq > len {
                return Err(invalid_data(format!(
                    "sync gap: tail starts at {seq}, replica holds {len} items"
                )));
            }
            durable.insert(item, &*dist).map_err(invalid_data)?;
        }

        let applied = Arc::new(AtomicU64::new(MetricIndex::len(&durable) as u64));
        let hub: Arc<dyn ReplicaHub<S>> = Arc::new(durable.hub());
        let index: Box<dyn MetricIndex<S>> = Box::new(durable);
        let server = Server::bind_replicated(
            addr,
            index,
            Arc::clone(&dist),
            config.read_only(true),
            Some(hub),
        )?;
        let feed = stream.try_clone()?;
        let applier = {
            let session = server.session().handle();
            let applied = Arc::clone(&applied);
            std::thread::Builder::new()
                .name("cned-replica-apply".into())
                .spawn(move || apply_stream::<S>(stream, session, applied))
                .expect("spawning the replica applier thread")
        };
        Ok(ReplicaHandle {
            metric: dist,
            metric_tag: Some(tag),
            server: Some(server),
            feed,
            applier: Some(applier),
            applied,
        })
    }
}

/// What `recover_dir` hands back: the recovered durable index plus the
/// metric identity (named tag and built distance) the snapshot recorded.
type Recovered<S> = (Durable<S>, Metric, Arc<dyn Distance<S>>);

/// Recover a data dir: map the snapshot's metric codes to the named
/// [`Metric`], then let `cned-store` replay snapshot + WAL.
fn recover_dir<S: WireSymbol + 'static>(
    dir: &Path,
    snapshot_every: u64,
) -> std::io::Result<Recovered<S>> {
    let bytes = std::fs::read(dir.join(SNAPSHOT_FILE))?;
    let meta = read_snapshot_meta::<S>(&bytes).map_err(invalid_data)?;
    let tag = Metric::from_codes(meta.metric_code, meta.metric_flag).ok_or_else(|| {
        invalid_data(format!(
            "snapshot uses unknown metric code ({}, {})",
            meta.metric_code, meta.metric_flag
        ))
    })?;
    let dist = tag.build::<S>();
    let (durable, _) = Durable::recover(dir, &*dist, snapshot_every).map_err(invalid_data)?;
    Ok((durable, tag, dist))
}

/// The replica's applier loop: stream `RESP_REPL_INSERT` frames from
/// the primary into the local session, deduping by sequence number.
/// Exits on connection loss, session shutdown, or any protocol
/// violation — the replica then simply stops advancing (and a restart
/// re-syncs from the primary).
fn apply_stream<S: WireSymbol + 'static>(
    mut stream: std::net::TcpStream,
    session: SessionHandle<S>,
    applied: Arc<AtomicU64>,
) {
    let mut buf = Vec::new();
    loop {
        match wire::read_frame(&mut stream, &mut buf) {
            Ok(Some(())) => {}
            Ok(None) | Err(_) => return,
        }
        let Ok(frame) = wire::decode_replica_frame::<S>(&buf) else {
            return;
        };
        let ReplicaFrame::Insert { seq, item } = frame else {
            // Stray response frames (e.g. a late error) are ignored.
            continue;
        };
        let have = applied.load(Ordering::Acquire);
        if seq < have {
            continue; // overlap with the catch-up payload
        }
        if seq > have {
            return; // gap — never apply out of order
        }
        // Submit through the session so the insert takes the same
        // barrier path as any other; retry briefly on backpressure.
        let ticket = loop {
            match session.submit(Request::Insert { item: item.clone() }) {
                Ok(t) => break t,
                Err(SearchError::Overloaded { .. }) => {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                Err(_) => return, // shutting down
            }
        };
        match ticket.wait().body {
            ResponseBody::Inserted { index } if index as u64 == seq => {
                applied.store(seq + 1, Ordering::Release);
            }
            _ => return,
        }
    }
}

fn invalid_data(e: impl std::fmt::Display) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
}

fn invalid_input(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidInput, msg)
}

fn wire_io(e: cned_serve::WireError) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
}

/// A [`Database`] being served in-process through the session/ticket
/// API (see [`Database::session`]).
pub struct DatabaseSession<S: Symbol + 'static> {
    metric: Arc<dyn Distance<S>>,
    metric_tag: Option<Metric>,
    session: ServeSession<S, Box<dyn MetricIndex<S>>>,
}

impl<S: Symbol + 'static> DatabaseSession<S> {
    /// Enqueue a request; the [`Ticket`] yields its tagged response.
    /// Refuses with [`SearchError::Overloaded`] past the admission
    /// depth.
    pub fn submit(&self, request: Request<S>) -> Result<Ticket, SearchError> {
        self.session.submit(request)
    }

    /// Requests accepted but not yet being answered.
    pub fn pending(&self) -> usize {
        self.session.pending()
    }

    /// Drain in-flight work and reassemble the [`Database`].
    pub fn shutdown(self) -> Database<S> {
        let DatabaseSession {
            metric,
            metric_tag,
            session,
        } = self;
        Database {
            index: session.shutdown(),
            metric,
            metric_tag,
        }
    }
}

/// A [`Database`] being served over TCP (see [`Database::serve`]).
pub struct ServerHandle<S: WireSymbol + 'static> {
    metric: Arc<dyn Distance<S>>,
    metric_tag: Option<Metric>,
    server: Server<S, Box<dyn MetricIndex<S>>>,
}

impl<S: WireSymbol + 'static> ServerHandle<S> {
    /// The bound address (with the real port when bound to port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.server.local_addr()
    }

    /// The shared serving session, for co-serving in-process
    /// submissions next to network clients.
    pub fn session(&self) -> &ServeSession<S, Box<dyn MetricIndex<S>>> {
        self.server.session()
    }

    /// Stop accepting, drain connections and in-flight work, and
    /// reassemble the [`Database`]. When the server was started with a
    /// data dir, the returned index is still the durable wrapper: its
    /// drop (or the next snapshot) persists any WAL tail.
    pub fn shutdown(self) -> Database<S> {
        let ServerHandle {
            metric,
            metric_tag,
            server,
        } = self;
        Database {
            index: server.shutdown(),
            metric,
            metric_tag,
        }
    }
}

/// A running replica (see [`Database::replica`]): a read-only server
/// over a locally durable copy of the primary, plus the applier thread
/// streaming the primary's inserts into it.
pub struct ReplicaHandle<S: WireSymbol + 'static> {
    metric: Arc<dyn Distance<S>>,
    metric_tag: Option<Metric>,
    server: Option<Server<S, Box<dyn MetricIndex<S>>>>,
    /// Our clone of the primary connection; shutting it down unblocks
    /// the applier's blocking read.
    feed: std::net::TcpStream,
    applier: Option<std::thread::JoinHandle<()>>,
    applied: Arc<AtomicU64>,
}

impl<S: WireSymbol + 'static> ReplicaHandle<S> {
    /// The replica's bound serving address.
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.server
            .as_ref()
            .expect("server present until shutdown")
            .local_addr()
    }

    /// Items the replica holds (base + applied stream), i.e. the
    /// sequence number the next streamed insert must carry. Poll this
    /// to await catch-up with the primary.
    pub fn applied(&self) -> u64 {
        self.applied.load(Ordering::Acquire)
    }

    /// Disconnect from the primary, drain the read-only server, and
    /// hand back the replica's [`Database`] (still durable: its drop
    /// persists any WAL tail into the data dir).
    pub fn shutdown(mut self) -> Database<S> {
        self.stop_feed();
        let server = self.server.take().expect("server present until shutdown");
        let metric = Arc::clone(&self.metric);
        let metric_tag = self.metric_tag;
        drop(self);
        Database {
            metric,
            metric_tag,
            index: server.shutdown(),
        }
    }

    fn stop_feed(&mut self) {
        let _ = self.feed.shutdown(std::net::Shutdown::Both);
        if let Some(handle) = self.applier.take() {
            let _ = handle.join();
        }
    }
}

impl<S: WireSymbol + 'static> Drop for ReplicaHandle<S> {
    fn drop(&mut self) {
        self.stop_feed();
        // The server (if still held) cleans up its own threads.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words() -> Vec<Vec<u8>> {
        ["casa", "cosa", "masa", "taza", "cesta", "pasta"]
            .iter()
            .map(|w| w.as_bytes().to_vec())
            .collect()
    }

    #[test]
    fn every_backend_answers_identically_through_the_facade() {
        let backends = [
            Backend::Linear,
            Backend::Laesa { pivots: 3 },
            Backend::Aesa,
            Backend::VpTree,
        ];
        let reference = Database::builder(words()).build().unwrap();
        for backend in backends {
            let db = Database::builder(words()).backend(backend).build().unwrap();
            assert_eq!(db.len(), 6);
            for q in [&b"casa"[..], b"pesto", b"maza"] {
                let (r_nn, _) = reference.nn(q).unwrap();
                let (b_nn, _) = db.nn(q).unwrap();
                let (r_nn, b_nn) = (r_nn.unwrap(), b_nn.unwrap());
                assert_eq!(
                    (r_nn.index, r_nn.distance.to_bits()),
                    (b_nn.index, b_nn.distance.to_bits()),
                    "{backend:?} query {q:?}"
                );
                let (r_range, _) = reference.range(q, 2.0).unwrap();
                let (b_range, _) = db.range(q, 2.0).unwrap();
                let as_key = |ns: &[Neighbour]| -> Vec<(usize, u64)> {
                    ns.iter().map(|n| (n.index, n.distance.to_bits())).collect()
                };
                assert_eq!(
                    as_key(&r_range),
                    as_key(&b_range),
                    "{backend:?} query {q:?}"
                );
            }
        }
    }

    #[test]
    fn sharded_builder_path_works_and_owns_the_metric() {
        let db = Database::builder(words())
            .metric(Metric::Contextual { bounded: true })
            .backend(Backend::Laesa { pivots: 2 })
            .shards(3)
            .build()
            .unwrap();
        assert_eq!(db.index().backend_name(), "sharded");
        let (nn, _) = db.nn(b"casa").unwrap();
        let nn = nn.unwrap();
        assert_eq!(nn.index, 0);
        assert_eq!(nn.distance, 0.0);
        assert_eq!(db.item(nn.index), Some(&b"casa"[..]));
        assert_eq!(db.metric().name(), "d_C");
        // Batches flow through the same surface.
        let queries = words();
        let batch = db.nn_batch(&queries).unwrap();
        assert_eq!(batch.len(), queries.len());
        for (i, (nb, _)) in batch.iter().enumerate() {
            assert_eq!(nb.unwrap().index, i, "member query finds itself");
        }
    }

    #[test]
    fn sharding_non_laesa_backends_is_a_typed_error() {
        let err = Database::builder(words())
            .backend(Backend::VpTree)
            .shards(4)
            .build()
            .err()
            .expect("sharded vp-tree must be rejected");
        assert!(matches!(err, SearchError::UnsupportedConfig { .. }));
    }

    #[test]
    fn unbounded_contextual_matches_bounded_results() {
        let fast = Database::builder(words())
            .metric(Metric::Contextual { bounded: true })
            .build()
            .unwrap();
        let slow = Database::builder(words())
            .metric(Metric::Contextual { bounded: false })
            .build()
            .unwrap();
        for q in [&b"casa"[..], b"past", b"zzz"] {
            let (f, _) = fast.nn(q).unwrap();
            let (s, _) = slow.nn(q).unwrap();
            let (f, s) = (f.unwrap(), s.unwrap());
            assert_eq!(
                (f.index, f.distance.to_bits()),
                (s.index, s.distance.to_bits())
            );
        }
    }

    #[test]
    fn custom_metrics_plug_in() {
        struct LengthDiff;
        impl Distance<u8> for LengthDiff {
            fn distance(&self, a: &[u8], b: &[u8]) -> f64 {
                (a.len() as f64 - b.len() as f64).abs()
            }
            fn name(&self) -> &'static str {
                "len-diff"
            }
            fn is_metric(&self) -> bool {
                false // pseudo-metric: identity fails
            }
        }
        let db = Database::builder(words())
            .custom_metric(Box::new(LengthDiff))
            .build()
            .unwrap();
        let (nn, _) = db.nn(b"xxxx").unwrap();
        assert_eq!(nn.unwrap().distance, 0.0);
    }

    #[test]
    fn empty_database_is_a_typed_error_at_query_time() {
        let db = Database::builder(Vec::<Vec<u8>>::new()).build().unwrap();
        assert!(db.is_empty());
        assert_eq!(db.nn(b"x").unwrap_err(), SearchError::EmptyDatabase);
        assert_eq!(db.range(b"x", 1.0).unwrap_err(), SearchError::EmptyDatabase);
    }

    #[test]
    fn facade_session_serves_tickets_and_returns_the_database() {
        use cned_serve::ResponseBody;
        let db = Database::builder(words())
            .backend(Backend::Laesa { pivots: 2 })
            .shards(2)
            .build()
            .unwrap();
        let n = db.len();
        let session = db.session();
        let t_nn = session
            .submit(Request::Nn {
                query: b"casa".to_vec(),
            })
            .unwrap();
        let t_ins = session
            .submit(Request::Insert {
                item: b"nueva".to_vec(),
            })
            .unwrap();
        let t_after = session
            .submit(Request::Nn {
                query: b"nueva".to_vec(),
            })
            .unwrap();
        let ResponseBody::Nn {
            neighbour: Some(nb),
            ..
        } = t_nn.wait().body
        else {
            panic!("expected Nn");
        };
        assert_eq!((nb.index, nb.distance), (0, 0.0));
        assert_eq!(t_ins.wait().body, ResponseBody::Inserted { index: n });
        let ResponseBody::Nn {
            neighbour: Some(nb),
            ..
        } = t_after.wait().body
        else {
            panic!("expected Nn");
        };
        assert_eq!((nb.index, nb.distance), (n, 0.0), "insert is a barrier");
        // The session hands the database back, insert included.
        let db = session.shutdown();
        assert_eq!(db.len(), n + 1);
        assert_eq!(db.item(n), Some(&b"nueva"[..]));
        assert_eq!(db.metric().name(), "d_E");
    }

    #[test]
    fn facade_serve_loopback_matches_in_process_answers() {
        use cned_serve::Client;
        let db = Database::builder(words()).build().unwrap();
        let n = db.len();
        // In-process expectations first; then the same database goes
        // behind the wire.
        let (e_nn, e_stats) = db.nn(b"cesa").unwrap();
        let (e_range, _) = db.range(b"casa", 1.0).unwrap();
        let handle = db.serve("127.0.0.1:0").expect("ephemeral loopback bind");
        let mut client: Client<u8> = Client::connect(handle.local_addr()).unwrap();
        let (nn, stats) = client.nn(b"cesa").unwrap();
        assert_eq!(
            nn.map(|v| (v.index, v.distance.to_bits())),
            e_nn.map(|v| (v.index, v.distance.to_bits())),
            "loopback NN is bit-identical to the in-process answer"
        );
        assert_eq!(stats, e_stats);
        let (hits, _) = client.range(b"casa", 1.0).unwrap();
        let key = |ns: &[Neighbour]| -> Vec<(usize, u64)> {
            ns.iter().map(|v| (v.index, v.distance.to_bits())).collect()
        };
        assert_eq!(key(&hits), key(&e_range));
        // Inserts flow over the wire into the served index…
        assert_eq!(client.insert(b"cesa").unwrap(), n);
        let (nn, _) = client.nn(b"cesa").unwrap();
        assert_eq!(nn.map(|v| (v.index, v.distance)), Some((n, 0.0)));
        drop(client);
        // …and drain back into the reassembled database.
        let db = handle.shutdown();
        assert_eq!(db.len(), n + 1);
        let (nn, _) = db.nn(b"cesa").unwrap();
        assert_eq!(nn.map(|v| (v.index, v.distance)), Some((n, 0.0)));
    }
}
