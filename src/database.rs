//! [`Database`] — the one-stop entry point of the workspace.
//!
//! The paper's machinery has two independent axes: *which distance*
//! (`d_E`, `d_C`, `d_YB`, …) and *which search structure* (linear
//! scan, LAESA, AESA, vp-tree, sharded LAESA). The builder crosses
//! them declaratively and hands back a [`Database`] that **owns** the
//! metric — ending the "pass the same `&dist` to every call or get
//! garbage" footgun of the raw index types, whose pivot tables and
//! matrices silently produce wrong answers when queried through a
//! different distance than they were built with.
//!
//! ```
//! use cned::{Backend, Database, Metric};
//!
//! let words: Vec<Vec<u8>> = ["casa", "cosa", "masa", "taza", "cesta"]
//!     .iter()
//!     .map(|w| w.as_bytes().to_vec())
//!     .collect();
//! let db = Database::builder(words)
//!     .metric(Metric::Contextual { bounded: true })
//!     .backend(Backend::Laesa { pivots: 2 })
//!     .build()
//!     .unwrap();
//! let (nearest, _) = db.nn(b"cesa").unwrap();
//! assert!(nearest.is_some());
//! // Range search: everything within a radius, canonically ordered.
//! let (hits, _) = db.range(b"casa", 0.4).unwrap();
//! assert!(!hits.is_empty());
//! ```

use cned_core::contextual::exact::Contextual;
use cned_core::contextual::heuristic::ContextualHeuristic;
use cned_core::levenshtein::Levenshtein;
use cned_core::metric::{Distance, Unpruned};
use cned_core::normalized::marzal_vidal::MarzalVidal;
use cned_core::normalized::simple::{MaxNorm, MinNorm, SumNorm};
use cned_core::normalized::yujian_bo::YujianBo;
use cned_core::Symbol;
use cned_plan::{
    CacheConfig, CacheHandle, CacheStats, CachedIndex, Plan, PlanConfig, PlannedBackend,
};
use cned_search::pivots::select_pivots_max_sum;
use cned_search::{
    Aesa, Laesa, LinearIndex, MetricIndex, Neighbour, QueryOptions, SearchError, SearchStats,
    VpTree,
};
use cned_serve::server::ReplicaHub;
use cned_serve::wire::{self, ReplicaFrame, WireSymbol};
use cned_serve::{
    Request, RequestId, ResponseBody, ServeSession, Server, ServerConfig, SessionConfig,
    SessionHandle, ShardConfig, ShardedIndex, Ticket,
};
use cned_store::{
    data_dir_initialised, decode_snapshot, decode_snapshot_plan, encode_snapshot_with,
    read_snapshot_meta, write_atomic, Durable, IndexView, SNAPSHOT_FILE, WAL_FILE,
};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Every distance of the paper, selectable by name.
///
/// `Contextual { bounded }` chooses between the band-pruned bounded
/// engine (`true`, the production path) and the full-evaluation
/// [`Unpruned`] baseline (`false`) — results are identical, only the
/// work per comparison changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Plain Levenshtein `d_E` (bit-parallel Myers engine).
    Levenshtein,
    /// The paper's contextual metric `d_C` (Algorithm 1).
    Contextual {
        /// Route comparisons through the bounded engine's admissible
        /// gates and banded DP (`true`), or always evaluate the full
        /// cubic DP (`false`).
        bounded: bool,
    },
    /// The quadratic-time contextual heuristic `d_C,h` (not a metric).
    ContextualHeuristic,
    /// Marzal–Vidal normalised edit distance `d_MV`.
    MarzalVidal,
    /// Yujian–Bo normalised metric `d_YB`.
    YujianBo,
    /// `d_E / max(|x|,|y|)` — not a metric.
    MaxNorm,
    /// `d_E / min(|x|,|y|)` — not a metric.
    MinNorm,
    /// `d_E / (|x|+|y|)` — not a metric.
    SumNorm,
}

impl Metric {
    /// The stable `(code, flag)` pair identifying this metric in
    /// snapshot files (`cned-store`'s META record). Codes are
    /// append-only: existing codes never change meaning.
    pub fn codes(self) -> (u8, u8) {
        match self {
            Metric::Levenshtein => (1, 0),
            Metric::Contextual { bounded } => (2, u8::from(bounded)),
            Metric::ContextualHeuristic => (3, 0),
            Metric::MarzalVidal => (4, 0),
            Metric::YujianBo => (5, 0),
            Metric::MaxNorm => (6, 0),
            Metric::MinNorm => (7, 0),
            Metric::SumNorm => (8, 0),
        }
    }

    /// Inverse of [`Metric::codes`]; `None` for codes this build does
    /// not know (a snapshot from a newer build).
    pub fn from_codes(code: u8, flag: u8) -> Option<Metric> {
        Some(match (code, flag) {
            (1, 0) => Metric::Levenshtein,
            (2, f @ (0 | 1)) => Metric::Contextual { bounded: f == 1 },
            (3, 0) => Metric::ContextualHeuristic,
            (4, 0) => Metric::MarzalVidal,
            (5, 0) => Metric::YujianBo,
            (6, 0) => Metric::MaxNorm,
            (7, 0) => Metric::MinNorm,
            (8, 0) => Metric::SumNorm,
            _ => return None,
        })
    }

    /// Instantiate the distance for symbol type `S`.
    ///
    /// Shared ownership (`Arc`) because a [`Database`] may hand its
    /// metric to a serving session or network server whose worker
    /// threads outlive any one call.
    pub fn build<S: Symbol>(self) -> Arc<dyn Distance<S>> {
        match self {
            Metric::Levenshtein => Arc::new(Levenshtein),
            Metric::Contextual { bounded: true } => Arc::new(Contextual),
            Metric::Contextual { bounded: false } => Arc::new(Unpruned(Contextual)),
            Metric::ContextualHeuristic => Arc::new(ContextualHeuristic),
            Metric::MarzalVidal => Arc::new(MarzalVidal),
            Metric::YujianBo => Arc::new(YujianBo),
            Metric::MaxNorm => Arc::new(MaxNorm),
            Metric::MinNorm => Arc::new(MinNorm),
            Metric::SumNorm => Arc::new(SumNorm),
        }
    }
}

/// Which search structure answers the queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Exhaustive scan — no preprocessing, `n` computations per query,
    /// correct for any distance (metric or not).
    Linear,
    /// LAESA with this many greedy max-sum pivots (clamped to the
    /// database size). With `.shards(k)`, each shard gets this many
    /// pivots.
    Laesa {
        /// Number of base prototypes (pivots).
        pivots: usize,
    },
    /// AESA: the full pairwise matrix — fewest query computations,
    /// quadratic preprocessing.
    Aesa,
    /// A vantage-point tree.
    VpTree,
    /// Measure, then choose: a seeded distance sample over the corpus
    /// prices the linear scan, LAESA (over a pivot ladder) and the
    /// vp-tree in distance evaluations per query, and the cheapest
    /// structure wins — shard split included (explicit
    /// [`DatabaseBuilder::shards`] is ignored; the plan decides).
    /// Non-metric distances always resolve to [`Backend::Linear`],
    /// because triangle-inequality pruning would be inadmissible. The
    /// decision is recorded as a [`Plan`] ([`Database::plan`]) and
    /// persisted in snapshots, so a warm restart reports the same
    /// choice it serves. Tune the sampling with
    /// [`DatabaseBuilder::plan_config`].
    Auto,
}

/// Constructor closure that wraps an index with a [`CachedIndex`].
///
/// Captured at the [`DatabaseBuilder::cache`] call site — the only
/// place `S: Hash` is provable — so `build()`, `vacuum()` and the
/// durable serving paths stay generic over plain [`Symbol`].
type CacheWrap<S> = Arc<
    dyn Fn(Box<dyn MetricIndex<S>>, CacheConfig) -> (Box<dyn MetricIndex<S>>, CacheHandle)
        + Send
        + Sync,
>;

/// Builder for [`Database`]; see the module docs for the flow.
pub struct DatabaseBuilder<S: Symbol + 'static> {
    items: Vec<Vec<S>>,
    metric: Arc<dyn Distance<S>>,
    metric_tag: Option<Metric>,
    backend: Backend,
    shards: usize,
    compact_threshold: usize,
    plan_config: PlanConfig,
    cache: Option<(CacheConfig, CacheWrap<S>)>,
}

impl<S: Symbol + 'static> DatabaseBuilder<S> {
    /// Select a named paper metric (default: [`Metric::Levenshtein`]).
    pub fn metric(mut self, metric: Metric) -> DatabaseBuilder<S> {
        self.metric = metric.build();
        self.metric_tag = Some(metric);
        self
    }

    /// Use a custom [`Distance`] implementation instead of a named
    /// paper metric. Triangle-inequality backends (everything but
    /// [`Backend::Linear`]) return exact results only when it is a
    /// true metric.
    ///
    /// Custom metrics have no stable identity to write into a
    /// snapshot, so a database built this way cannot be persisted
    /// ([`Database::save`] and data-dir serving refuse typed).
    pub fn custom_metric(mut self, metric: Box<dyn Distance<S>>) -> DatabaseBuilder<S> {
        self.metric = Arc::from(metric);
        self.metric_tag = None;
        self
    }

    /// Select the search backend (default: [`Backend::Linear`]).
    pub fn backend(mut self, backend: Backend) -> DatabaseBuilder<S> {
        self.backend = backend;
        self
    }

    /// Split the database into `shards` LAESA shards served with
    /// cross-shard bound propagation (`cned-serve`). Only meaningful
    /// with [`Backend::Laesa`]; any other backend is rejected at
    /// [`DatabaseBuilder::build`] time. `shards <= 1` keeps a single
    /// index.
    pub fn shards(mut self, shards: usize) -> DatabaseBuilder<S> {
        self.shards = shards;
        self
    }

    /// Delta-shard size that triggers compaction in the sharded
    /// backend (default: the `cned-serve` default).
    pub fn compact_threshold(mut self, threshold: usize) -> DatabaseBuilder<S> {
        self.compact_threshold = threshold;
        self
    }

    /// Tuning knobs for [`Backend::Auto`] planning (sample size, pivot
    /// ladder ceiling, shard target, seed). No effect on explicit
    /// backends.
    pub fn plan_config(mut self, config: PlanConfig) -> DatabaseBuilder<S> {
        self.plan_config = config;
        self
    }

    /// Put an exact hot-query result cache in front of the index, with
    /// the default [`CacheConfig`] — see [`cned_plan::cache`] for the
    /// semantics. Answers (statistics included) stay bit-identical;
    /// repeated queries replay from the cache and near-duplicate
    /// queries get an admissible radius seed. The cache follows the
    /// database into sessions and served deployments, and every
    /// insert/delete barrier flushes it, so a stale answer is never
    /// served. Inspect with [`Database::cache_stats`].
    pub fn cache(self) -> DatabaseBuilder<S>
    where
        S: std::hash::Hash,
    {
        self.cache_with(CacheConfig::default())
    }

    /// [`DatabaseBuilder::cache`] with explicit knobs.
    pub fn cache_with(mut self, config: CacheConfig) -> DatabaseBuilder<S>
    where
        S: std::hash::Hash,
    {
        let wrap: CacheWrap<S> = Arc::new(|index, cfg| {
            let cached = CachedIndex::new(index, cfg);
            let handle = cached.handle();
            (Box::new(cached) as Box<dyn MetricIndex<S>>, handle)
        });
        self.cache = Some((config, wrap));
        self
    }

    /// Build the index and pair it with the metric.
    pub fn build(self) -> Result<Database<S>, SearchError> {
        let DatabaseBuilder {
            items,
            metric,
            metric_tag,
            backend,
            shards,
            compact_threshold,
            plan_config,
            cache,
        } = self;
        let (backend, shards, plan) = match backend {
            Backend::Auto => {
                let plan = cned_plan::plan(&items, &*metric, &plan_config);
                let resolved = match plan.backend {
                    PlannedBackend::Linear => Backend::Linear,
                    PlannedBackend::Laesa { pivots } => Backend::Laesa { pivots },
                    PlannedBackend::VpTree => Backend::VpTree,
                };
                (resolved, plan.shards.max(1), Some(plan))
            }
            explicit => (explicit, shards, None),
        };
        let index: Box<dyn MetricIndex<S>> = if shards > 1 {
            let Backend::Laesa { pivots } = backend else {
                return Err(SearchError::UnsupportedConfig {
                    reason: "sharding is only available for the LAESA backend",
                });
            };
            let config = ShardConfig {
                shards,
                pivots_per_shard: pivots,
                compact_threshold,
                ..ShardConfig::default()
            };
            Box::new(ShardedIndex::try_build(items, config, &*metric)?)
        } else {
            match backend {
                Backend::Linear => Box::new(LinearIndex::new(items)),
                Backend::Laesa { pivots } => {
                    let selected = select_pivots_max_sum(&items, pivots, 0, &*metric);
                    Box::new(Laesa::try_build(items, selected, &*metric)?)
                }
                Backend::Aesa => Box::new(Aesa::build(items, &*metric)),
                Backend::VpTree => Box::new(VpTree::build(items, &*metric)),
                Backend::Auto => unreachable!("Auto resolved to a concrete backend above"),
            }
        };
        let (index, cache_wrap, cache) = match cache {
            Some((config, wrap)) => {
                let (wrapped, handle) = wrap(index, config.clone());
                (wrapped, Some((config, wrap)), Some(handle))
            }
            None => (index, None, None),
        };
        Ok(Database {
            metric,
            metric_tag,
            index,
            plan,
            plan_config,
            cache_wrap,
            cache,
        })
    }
}

/// A metric-space database: an index paired with the [`Distance`] it
/// was built over. All queries go through the owned metric, so index
/// and metric can never drift apart.
pub struct Database<S: Symbol + 'static> {
    metric: Arc<dyn Distance<S>>,
    /// The named metric behind `metric`, when there is one — the
    /// persistable identity. `None` for custom metrics.
    metric_tag: Option<Metric>,
    index: Box<dyn MetricIndex<S>>,
    /// The planner's decision record, under [`Backend::Auto`] or
    /// recovered from a snapshot that persisted one.
    plan: Option<Plan>,
    plan_config: PlanConfig,
    /// Cache config + re-wrap constructor, kept so serving paths and
    /// vacuum rebuilds can re-apply the cache around a new index.
    cache_wrap: Option<(CacheConfig, CacheWrap<S>)>,
    /// Counter view of the active cache, if one is configured.
    cache: Option<CacheHandle>,
}

/// Everything a [`Database`] carries besides the index — split off so
/// session/server/replica handles can hold it while the index is away
/// serving, and reassemble the database on shutdown.
struct DatabaseParts<S: Symbol + 'static> {
    metric: Arc<dyn Distance<S>>,
    metric_tag: Option<Metric>,
    plan: Option<Plan>,
    plan_config: PlanConfig,
    cache_wrap: Option<(CacheConfig, CacheWrap<S>)>,
    cache: Option<CacheHandle>,
}

impl<S: Symbol + 'static> Database<S> {
    /// Start building a database over `items`. Defaults:
    /// [`Metric::Levenshtein`], [`Backend::Linear`], no sharding, no
    /// cache.
    pub fn builder(items: Vec<Vec<S>>) -> DatabaseBuilder<S> {
        DatabaseBuilder {
            items,
            metric: Metric::Levenshtein.build(),
            metric_tag: Some(Metric::Levenshtein),
            backend: Backend::Linear,
            shards: 1,
            compact_threshold: ShardConfig::default().compact_threshold,
            plan_config: PlanConfig::default(),
            cache: None,
        }
    }

    fn into_parts(self) -> (DatabaseParts<S>, Box<dyn MetricIndex<S>>) {
        let Database {
            metric,
            metric_tag,
            index,
            plan,
            plan_config,
            cache_wrap,
            cache,
        } = self;
        (
            DatabaseParts {
                metric,
                metric_tag,
                plan,
                plan_config,
                cache_wrap,
                cache,
            },
            index,
        )
    }

    fn from_parts(parts: DatabaseParts<S>, index: Box<dyn MetricIndex<S>>) -> Database<S> {
        let DatabaseParts {
            metric,
            metric_tag,
            plan,
            plan_config,
            cache_wrap,
            cache,
        } = parts;
        Database {
            metric,
            metric_tag,
            index,
            plan,
            plan_config,
            cache_wrap,
            cache,
        }
    }

    /// The owned metric.
    pub fn metric(&self) -> &dyn Distance<S> {
        &*self.metric
    }

    /// The underlying index as a trait object — e.g. to hand to a
    /// `cned_classify` classifier or a serving pipeline.
    pub fn index(&self) -> &dyn MetricIndex<S> {
        &*self.index
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the database holds no items.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The item at index `i` (result indices address this).
    pub fn item(&self, i: usize) -> Option<&[S]> {
        self.index.item(i)
    }

    /// Append `item`, returning its assigned index. Requires an
    /// insertable backend ([`Backend::Linear`] or a sharded build);
    /// anything else refuses with a typed error. The in-process
    /// counterpart of submitting [`Request::Insert`] to a session —
    /// and, like it, a barrier that flushes any configured cache.
    pub fn insert(&mut self, item: Vec<S>) -> Result<usize, SearchError> {
        let metric = Arc::clone(&self.metric);
        self.index
            .as_insertable()
            .ok_or(SearchError::UnsupportedConfig {
                reason: "this backend does not support inserts",
            })?
            .insert(item, &*metric)
    }

    /// Tombstone item `i`: it stops appearing in any query answer but
    /// keeps its slot, so surviving indices never shift. Returns
    /// whether the item was live (`false` for an index already
    /// deleted); an out-of-range index is a typed error. Requires a
    /// backend with delete support ([`Backend::Linear`],
    /// [`Backend::Laesa`], or a sharded build).
    pub fn delete(&mut self, index: usize) -> Result<bool, SearchError> {
        self.index.delete(index)
    }

    /// Number of tombstoned (logically deleted) items still occupying
    /// slots. [`Database::len`] counts them; queries never return them.
    pub fn deleted(&self) -> usize {
        self.index.deleted()
    }

    /// Whether item `i` is tombstoned ([`Database::delete`]). `false`
    /// for live items and out-of-range indices.
    pub fn is_deleted(&self, i: usize) -> bool {
        self.index.is_deleted(i)
    }

    /// The planner's decision record, when this database was built
    /// with [`Backend::Auto`] (or recovered from a snapshot carrying
    /// one); `None` for explicit backends. [`Plan::report`] renders it
    /// for humans.
    pub fn plan(&self) -> Option<&Plan> {
        self.plan.as_ref()
    }

    /// Hot-query cache counters, when a cache is configured
    /// ([`DatabaseBuilder::cache`]); `None` otherwise.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(CacheHandle::stats)
    }

    /// Physically drop tombstoned items: rebuild the same kind of
    /// index (metric, backend shape, shard split, cache) over the
    /// surviving items only. Survivors are **renumbered** to
    /// `0..live` in their original order — the one operation that
    /// invalidates previously returned result indices, which is why it
    /// is explicit. Afterwards, answers are bit-identical to a fresh
    /// build over the surviving corpus. A database built with
    /// [`Backend::Auto`] re-plans for the surviving corpus.
    pub fn vacuum(self) -> Result<Database<S>, SearchError> {
        let shape = if self.plan.is_some() {
            (Backend::Auto, 1)
        } else {
            backend_shape(&*self.index)?
        };
        let survivors: Vec<Vec<S>> = (0..self.index.len())
            .filter(|&i| !self.index.is_deleted(i))
            .filter_map(|i| self.index.item(i).map(<[S]>::to_vec))
            .collect();
        let (parts, _) = self.into_parts();
        let mut builder = Database::builder(survivors)
            .backend(shape.0)
            .shards(shape.1)
            .plan_config(parts.plan_config);
        builder.metric = Arc::clone(&parts.metric);
        builder.metric_tag = parts.metric_tag;
        builder.cache = parts.cache_wrap;
        builder.build()
    }

    /// Nearest neighbour of `query`.
    pub fn nn(&self, query: &[S]) -> Result<(Option<Neighbour>, SearchStats), SearchError> {
        self.nn_with(query, &QueryOptions::new())
    }

    /// Nearest neighbour with explicit [`QueryOptions`] (radius seed,
    /// pivot budget, stats sink, …).
    pub fn nn_with(
        &self,
        query: &[S],
        opts: &QueryOptions,
    ) -> Result<(Option<Neighbour>, SearchStats), SearchError> {
        self.index.nn(query, &*self.metric, opts)
    }

    /// The `k` nearest neighbours of `query`, canonically ordered.
    pub fn knn(&self, query: &[S], k: usize) -> Result<(Vec<Neighbour>, SearchStats), SearchError> {
        self.knn_with(query, &QueryOptions::new().k(k))
    }

    /// k-NN with explicit [`QueryOptions`].
    pub fn knn_with(
        &self,
        query: &[S],
        opts: &QueryOptions,
    ) -> Result<(Vec<Neighbour>, SearchStats), SearchError> {
        self.index.knn(query, &*self.metric, opts)
    }

    /// Every item within `radius` (inclusive) of `query`, canonically
    /// ordered.
    pub fn range(
        &self,
        query: &[S],
        radius: f64,
    ) -> Result<(Vec<Neighbour>, SearchStats), SearchError> {
        self.range_with(query, &QueryOptions::new().radius(radius))
    }

    /// Range search with explicit [`QueryOptions`].
    pub fn range_with(
        &self,
        query: &[S],
        opts: &QueryOptions,
    ) -> Result<(Vec<Neighbour>, SearchStats), SearchError> {
        self.index.range(query, &*self.metric, opts)
    }

    /// Nearest neighbour for a batch of queries, parallelised across
    /// queries.
    pub fn nn_batch(
        &self,
        queries: &[Vec<S>],
    ) -> Result<Vec<(Option<Neighbour>, SearchStats)>, SearchError> {
        self.index
            .nn_batch(queries, &*self.metric, &QueryOptions::new())
    }

    /// k-NN for a batch of queries, parallelised across queries.
    pub fn knn_batch(
        &self,
        queries: &[Vec<S>],
        k: usize,
    ) -> Result<Vec<(Vec<Neighbour>, SearchStats)>, SearchError> {
        self.index
            .knn_batch(queries, &*self.metric, &QueryOptions::new().k(k))
    }

    /// Turn the database into a live serving session: non-blocking
    /// [`DatabaseSession::submit`] with per-request [`Ticket`]s,
    /// bounded admission, and in-order/insert-barrier semantics — the
    /// in-process face of the serving API (the network face is
    /// [`Database::serve`]).
    ///
    /// The session owns the database while it runs;
    /// [`DatabaseSession::shutdown`] drains in-flight work and hands
    /// the [`Database`] back. Inserts require an insertable backend
    /// ([`Backend::Linear`] or a sharded build); on any other backend
    /// they answer with a typed failure.
    pub fn session(self) -> DatabaseSession<S> {
        self.session_with(SessionConfig::default())
    }

    /// [`Database::session`] with explicit knobs (admission depth).
    pub fn session_with(self, config: SessionConfig) -> DatabaseSession<S> {
        let (parts, index) = self.into_parts();
        let metric = Arc::clone(&parts.metric);
        DatabaseSession {
            parts,
            session: ServeSession::spawn_with(index, metric, config),
        }
    }
}

/// Recover the concrete backend shape (for a [`Database::vacuum`]
/// rebuild) from a running index, via the persistence downcast for
/// the parameterised backends and the backend label for the rest.
fn backend_shape<S: Symbol + 'static>(
    index: &dyn MetricIndex<S>,
) -> Result<(Backend, usize), SearchError> {
    if let Some(any) = index.as_any() {
        if let Some(laesa) = any.downcast_ref::<Laesa<S>>() {
            return Ok((
                Backend::Laesa {
                    pivots: laesa.pivots().len(),
                },
                1,
            ));
        }
        if let Some(sharded) = any.downcast_ref::<ShardedIndex<S>>() {
            let config = sharded.config();
            return Ok((
                Backend::Laesa {
                    pivots: config.pivots_per_shard,
                },
                config.shards,
            ));
        }
    }
    match index.backend_name() {
        "linear" => Ok((Backend::Linear, 1)),
        "aesa" => Ok((Backend::Aesa, 1)),
        "vptree" => Ok((Backend::VpTree, 1)),
        _ => Err(SearchError::UnsupportedConfig {
            reason: "cannot infer a rebuild shape for this backend",
        }),
    }
}

impl<S: WireSymbol + 'static> Database<S> {
    /// Serve the database over TCP with the `cned-serve` wire
    /// protocol (length-prefixed binary frames; see
    /// [`cned::serve::wire`](cned_serve::wire)). Bind to port 0 for
    /// an ephemeral port and read it back with
    /// [`ServerHandle::local_addr`]; connect with
    /// [`cned::serve::Client`](cned_serve::Client).
    ///
    /// All connections share one session — one admission queue, one
    /// scheduler, insert barriers across clients.
    /// [`ServerHandle::shutdown`] drains connections and in-flight
    /// work, then hands the [`Database`] back.
    pub fn serve(self, addr: impl std::net::ToSocketAddrs) -> std::io::Result<ServerHandle<S>> {
        self.serve_with(addr, ServerConfig::default())
    }

    /// [`Database::serve`] with explicit knobs.
    ///
    /// With [`ServerConfig::data_dir`] set, the server is **durable**:
    ///
    /// * a dir already holding a snapshot wins — it is recovered
    ///   (snapshot + WAL replay) and served, and the database passed
    ///   here is discarded, so a kill → restart loop converges on the
    ///   persisted state rather than the seed;
    /// * a fresh dir is initialised from this database's contents;
    /// * every accepted insert is WAL-logged and fsynced **before**
    ///   its ticket resolves, and a snapshot is taken every
    ///   [`ServerConfig::snapshot_every`] inserts and at shutdown;
    /// * replicas may register (see [`Database::replica`]) and are fed
    ///   the snapshot, the log tail, and live inserts.
    pub fn serve_with(
        self,
        addr: impl std::net::ToSocketAddrs,
        config: ServerConfig,
    ) -> std::io::Result<ServerHandle<S>> {
        let Some(dir) = config.data_dir.clone() else {
            let (parts, index) = self.into_parts();
            let metric = Arc::clone(&parts.metric);
            return Ok(ServerHandle {
                server: Server::bind_with(addr, index, metric, config)?,
                parts,
            });
        };
        let (mut parts, index) = self.into_parts();
        let durable = if data_dir_initialised(&dir) {
            // Disk wins: the persisted state (metric and plan
            // included) is the authority; `self`'s contents are
            // discarded.
            let (durable, tag, dist) = recover_dir::<S>(&dir, config.snapshot_every)?;
            parts.metric = dist;
            parts.metric_tag = Some(tag);
            parts.plan = durable.plan().and_then(|b| Plan::from_bytes(b).ok());
            durable
        } else {
            let tag = parts.metric_tag.ok_or_else(|| {
                invalid_input("custom metrics cannot be persisted; build with a named Metric")
            })?;
            let view = IndexView::of(&*index).ok_or_else(|| {
                invalid_input("only the linear, laesa and sharded backends can be persisted")
            })?;
            let plan_bytes = parts.plan.as_ref().map(Plan::to_bytes);
            // Encode-then-decode to obtain the owned StoredIndex the
            // durable wrapper needs from the borrowed trait object.
            let bytes = encode_snapshot_with(tag.codes(), &view, plan_bytes.as_deref());
            let (_, owned) = decode_snapshot::<S>(&bytes).map_err(invalid_data)?;
            let mut durable = Durable::create(&dir, tag.codes(), owned, config.snapshot_every)
                .map_err(invalid_data)?;
            if plan_bytes.is_some() {
                // Re-snapshot so the plan is on disk from the first
                // restart, not only after the first checkpoint.
                durable.set_plan(plan_bytes);
                durable.snapshot().map_err(invalid_data)?;
            }
            durable
        };
        let hub: Arc<dyn ReplicaHub<S>> = Arc::new(durable.hub());
        let mut served: Box<dyn MetricIndex<S>> = Box::new(durable);
        // Re-apply the hot-query cache around the durable wrapper; the
        // one built around the in-memory index was discarded with it.
        parts.cache = None;
        if let Some((cache_config, wrap)) = &parts.cache_wrap {
            let (wrapped, handle) = wrap(served, cache_config.clone());
            served = wrapped;
            parts.cache = Some(handle);
        }
        let metric = Arc::clone(&parts.metric);
        Ok(ServerHandle {
            server: Server::bind_replicated(addr, served, metric, config, Some(hub))?,
            parts,
        })
    }

    /// Persist the database to `path` as one self-contained snapshot
    /// file (`cned-store` format): items, metric identity, and the
    /// full index structure. [`Database::load`] restores it without
    /// rebuilding, answering bit-identically — `SearchStats` included.
    ///
    /// Requires a named [`Metric`] and a persistable backend
    /// ([`Backend::Linear`], [`Backend::Laesa`], or a sharded build);
    /// anything else refuses with a typed error.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), SearchError> {
        let tag = self.metric_tag.ok_or(SearchError::UnsupportedConfig {
            reason: "custom metrics cannot be persisted; build with a named Metric",
        })?;
        let view = IndexView::of(&*self.index).ok_or(SearchError::UnsupportedConfig {
            reason: "only the linear, laesa and sharded backends can be persisted",
        })?;
        let plan_bytes = self.plan.as_ref().map(Plan::to_bytes);
        let bytes = encode_snapshot_with(tag.codes(), &view, plan_bytes.as_deref());
        write_atomic(path.as_ref(), &bytes).map_err(SearchError::from)
    }

    /// Load a database saved by [`Database::save`] (or a server data
    /// dir's snapshot file). The index is decoded, not rebuilt: no
    /// pivot selection, no distance computations.
    pub fn load(path: impl AsRef<Path>) -> Result<Database<S>, SearchError> {
        let bytes = std::fs::read(path.as_ref()).map_err(|e| SearchError::Persistence {
            reason: format!("read snapshot: {e}"),
        })?;
        let (meta, index, plan_bytes) = decode_snapshot_plan::<S>(&bytes)?;
        let tag = Metric::from_codes(meta.metric_code, meta.metric_flag).ok_or_else(|| {
            SearchError::Persistence {
                reason: format!(
                    "snapshot uses unknown metric code ({}, {})",
                    meta.metric_code, meta.metric_flag
                ),
            }
        })?;
        Ok(Database {
            metric: tag.build(),
            metric_tag: Some(tag),
            index: match index {
                cned_store::StoredIndex::Linear(i) => Box::new(i),
                cned_store::StoredIndex::Laesa(i) => Box::new(i),
                cned_store::StoredIndex::Sharded(i) => Box::new(i),
            },
            // A plan from a newer build (unknown version) degrades to
            // "no plan" rather than refusing the whole snapshot.
            plan: plan_bytes.as_deref().and_then(|b| Plan::from_bytes(b).ok()),
            plan_config: PlanConfig::default(),
            cache_wrap: None,
            cache: None,
        })
    }

    /// Start a **replica** of a durable primary started with
    /// [`Database::serve_with`] + [`ServerConfig::data_dir`].
    ///
    /// The replica recovers whatever `dir` already holds, registers
    /// with the primary declaring how many items it has, catches up
    /// (full snapshot transfer for a fresh/behind replica, log tail
    /// otherwise), then serves **reads** on `addr` while a background
    /// applier streams the primary's subsequent inserts into the local
    /// index — each one WAL-logged locally, so a restarted replica
    /// resumes from its own disk and fetches only the tail it missed.
    /// Inserts sent to the replica by clients answer with a typed
    /// read-only failure.
    pub fn replica(
        primary: impl std::net::ToSocketAddrs,
        dir: impl Into<PathBuf>,
        addr: impl std::net::ToSocketAddrs,
        config: ServerConfig,
    ) -> std::io::Result<ReplicaHandle<S>> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let local = if data_dir_initialised(&dir) {
            Some(recover_dir::<S>(&dir, config.snapshot_every)?)
        } else {
            None
        };
        let have = local
            .as_ref()
            .map_or(0, |(d, _, _)| MetricIndex::len(d) as u64);

        // Register with the primary and drain the catch-up payload.
        let mut stream = std::net::TcpStream::connect(primary)?;
        let mut buf = Vec::new();
        wire::encode_sync_request(RequestId(0), have, &mut buf);
        wire::write_frame(&mut stream, &buf).map_err(wire_io)?;
        let mut acc = cned_store::SyncAccumulator::<S>::new();
        loop {
            if wire::read_frame(&mut stream, &mut buf)
                .map_err(wire_io)?
                .is_none()
            {
                return Err(invalid_data("primary closed the connection mid-sync"));
            }
            match wire::decode_replica_frame::<S>(&buf).map_err(wire_io)? {
                ReplicaFrame::SyncChunk {
                    mode, done, chunk, ..
                } => {
                    acc.push(mode, &chunk).map_err(invalid_data)?;
                    if done {
                        break;
                    }
                }
                ReplicaFrame::Response(resp) => {
                    return Err(invalid_data(format!(
                        "primary refused replica registration: {:?}",
                        resp.body
                    )));
                }
                ReplicaFrame::Insert { .. } | ReplicaFrame::Delete { .. } => {
                    return Err(invalid_data("write frame before the sync stream completed"));
                }
            }
        }
        let outcome = acc.finish();

        let (mut durable, tag, dist) = match (outcome.snapshot, local) {
            (Some(snap), local) => {
                // Full transfer: the primary's snapshot replaces local
                // state wholesale. Validate before installing, and
                // drop the stale WAL so recovery cannot replay old
                // entries on top of the new base.
                decode_snapshot::<S>(&snap).map_err(invalid_data)?;
                drop(local);
                write_atomic(&dir.join(SNAPSHOT_FILE), &snap).map_err(invalid_data)?;
                let _ = std::fs::remove_file(dir.join(WAL_FILE));
                recover_dir::<S>(&dir, config.snapshot_every)?
            }
            (None, Some(local)) => local,
            (None, None) => {
                return Err(invalid_data("primary sent no snapshot to an empty replica"))
            }
        };

        // Apply the log tail; overlap with local state is expected
        // (inserts dedupe by sequence number, deletes are idempotent),
        // a gap is a protocol violation.
        for op in outcome.items {
            match op {
                cned_store::WalOp::Insert { seq, item } => {
                    let len = MetricIndex::len(&durable) as u64;
                    if seq < len {
                        continue;
                    }
                    if seq > len {
                        return Err(invalid_data(format!(
                            "sync gap: tail starts at {seq}, replica holds {len} items"
                        )));
                    }
                    durable.insert(item, &*dist).map_err(invalid_data)?;
                }
                cned_store::WalOp::Delete { index } => {
                    let index = usize::try_from(index)
                        .map_err(|_| invalid_data("delete index exceeds the address space"))?;
                    if index >= MetricIndex::len(&durable) {
                        return Err(invalid_data(format!(
                            "sync delete targets index {index} past the replica's items"
                        )));
                    }
                    durable.delete(index).map_err(invalid_data)?;
                }
            }
        }

        let applied = Arc::new(AtomicU64::new(MetricIndex::len(&durable) as u64));
        let plan = durable.plan().and_then(|b| Plan::from_bytes(b).ok());
        let hub: Arc<dyn ReplicaHub<S>> = Arc::new(durable.hub());
        let index: Box<dyn MetricIndex<S>> = Box::new(durable);
        let server = Server::bind_replicated(
            addr,
            index,
            Arc::clone(&dist),
            config.read_only(true),
            Some(hub),
        )?;
        let feed = stream.try_clone()?;
        let applier = {
            let session = server.session().handle();
            let applied = Arc::clone(&applied);
            std::thread::Builder::new()
                .name("cned-replica-apply".into())
                .spawn(move || apply_stream::<S>(stream, session, applied))
                .expect("spawning the replica applier thread")
        };
        Ok(ReplicaHandle {
            parts: Some(DatabaseParts {
                metric: dist,
                metric_tag: Some(tag),
                plan,
                plan_config: PlanConfig::default(),
                cache_wrap: None,
                cache: None,
            }),
            server: Some(server),
            feed,
            applier: Some(applier),
            applied,
        })
    }
}

/// What `recover_dir` hands back: the recovered durable index plus the
/// metric identity (named tag and built distance) the snapshot recorded.
type Recovered<S> = (Durable<S>, Metric, Arc<dyn Distance<S>>);

/// Recover a data dir: map the snapshot's metric codes to the named
/// [`Metric`], then let `cned-store` replay snapshot + WAL.
fn recover_dir<S: WireSymbol + 'static>(
    dir: &Path,
    snapshot_every: u64,
) -> std::io::Result<Recovered<S>> {
    let bytes = std::fs::read(dir.join(SNAPSHOT_FILE))?;
    let meta = read_snapshot_meta::<S>(&bytes).map_err(invalid_data)?;
    let tag = Metric::from_codes(meta.metric_code, meta.metric_flag).ok_or_else(|| {
        invalid_data(format!(
            "snapshot uses unknown metric code ({}, {})",
            meta.metric_code, meta.metric_flag
        ))
    })?;
    let dist = tag.build::<S>();
    let (durable, _) = Durable::recover(dir, &*dist, snapshot_every).map_err(invalid_data)?;
    Ok((durable, tag, dist))
}

/// The replica's applier loop: stream `RESP_REPL_INSERT` and
/// `RESP_REPL_DELETE` frames from the primary into the local session,
/// deduping inserts by sequence number (deletes are idempotent).
/// Exits on connection loss, session shutdown, or any protocol
/// violation — the replica then simply stops advancing (and a restart
/// re-syncs from the primary).
fn apply_stream<S: WireSymbol + 'static>(
    mut stream: std::net::TcpStream,
    session: SessionHandle<S>,
    applied: Arc<AtomicU64>,
) {
    let mut buf = Vec::new();
    loop {
        match wire::read_frame(&mut stream, &mut buf) {
            Ok(Some(())) => {}
            Ok(None) | Err(_) => return,
        }
        let Ok(frame) = wire::decode_replica_frame::<S>(&buf) else {
            return;
        };
        let request = match frame {
            ReplicaFrame::Insert { seq, item } => {
                let have = applied.load(Ordering::Acquire);
                if seq < have {
                    continue; // overlap with the catch-up payload
                }
                if seq > have {
                    return; // gap — never apply out of order
                }
                Request::Insert { item }
            }
            ReplicaFrame::Delete { index } => {
                // The primary publishes a delete only after the insert
                // it targets, and the stream is ordered, so the target
                // must already be here. Past-the-end means we lost sync.
                if index >= applied.load(Ordering::Acquire) {
                    return;
                }
                Request::Delete {
                    index: index as usize,
                }
            }
            _ => continue, // stray response frames (e.g. a late error)
        };
        // Submit through the session so the write takes the same
        // barrier path as any other; retry briefly on backpressure.
        let ticket = loop {
            match session.submit(request.clone()) {
                Ok(t) => break t,
                Err(SearchError::Overloaded { .. }) => {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                Err(_) => return, // shutting down
            }
        };
        match (&request, ticket.wait().body) {
            (Request::Insert { .. }, ResponseBody::Inserted { index }) => {
                let seq = index as u64;
                if seq != applied.load(Ordering::Acquire) {
                    return;
                }
                applied.store(seq + 1, Ordering::Release);
            }
            // `existed: false` is fine — the delete may already have
            // arrived folded into the catch-up payload.
            (Request::Delete { .. }, ResponseBody::Deleted { .. }) => {}
            _ => return,
        }
    }
}

fn invalid_data(e: impl std::fmt::Display) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
}

fn invalid_input(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidInput, msg)
}

fn wire_io(e: cned_serve::WireError) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
}

/// A [`Database`] being served in-process through the session/ticket
/// API (see [`Database::session`]).
pub struct DatabaseSession<S: Symbol + 'static> {
    parts: DatabaseParts<S>,
    session: ServeSession<S, Box<dyn MetricIndex<S>>>,
}

impl<S: Symbol + 'static> DatabaseSession<S> {
    /// Enqueue a request; the [`Ticket`] yields its tagged response.
    /// Refuses with [`SearchError::Overloaded`] past the admission
    /// depth.
    pub fn submit(&self, request: Request<S>) -> Result<Ticket, SearchError> {
        self.session.submit(request)
    }

    /// Requests accepted but not yet being answered.
    pub fn pending(&self) -> usize {
        self.session.pending()
    }

    /// Hot-query cache counters, when the database was built with a
    /// cache ([`DatabaseBuilder::cache`]).
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.parts.cache.as_ref().map(CacheHandle::stats)
    }

    /// Drain in-flight work and reassemble the [`Database`].
    pub fn shutdown(self) -> Database<S> {
        let DatabaseSession { parts, session } = self;
        Database::from_parts(parts, session.shutdown())
    }
}

/// A [`Database`] being served over TCP (see [`Database::serve`]).
pub struct ServerHandle<S: WireSymbol + 'static> {
    parts: DatabaseParts<S>,
    server: Server<S, Box<dyn MetricIndex<S>>>,
}

impl<S: WireSymbol + 'static> ServerHandle<S> {
    /// The bound address (with the real port when bound to port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.server.local_addr()
    }

    /// The shared serving session, for co-serving in-process
    /// submissions next to network clients.
    pub fn session(&self) -> &ServeSession<S, Box<dyn MetricIndex<S>>> {
        self.server.session()
    }

    /// The planner's decision record behind this server, when there is
    /// one (built with [`Backend::Auto`] or recovered from a snapshot
    /// carrying a plan).
    pub fn plan(&self) -> Option<&Plan> {
        self.parts.plan.as_ref()
    }

    /// Hot-query cache counters for the serving index, when the
    /// database was built with a cache ([`DatabaseBuilder::cache`]).
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.parts.cache.as_ref().map(CacheHandle::stats)
    }

    /// Stop accepting, drain connections and in-flight work, and
    /// reassemble the [`Database`]. When the server was started with a
    /// data dir, the returned index is still the durable wrapper
    /// (under the cache, when one is configured): its drop (or the
    /// next snapshot) persists any WAL tail.
    pub fn shutdown(self) -> Database<S> {
        let ServerHandle { parts, server } = self;
        Database::from_parts(parts, server.shutdown())
    }
}

/// A running replica (see [`Database::replica`]): a read-only server
/// over a locally durable copy of the primary, plus the applier thread
/// streaming the primary's inserts into it.
pub struct ReplicaHandle<S: WireSymbol + 'static> {
    parts: Option<DatabaseParts<S>>,
    server: Option<Server<S, Box<dyn MetricIndex<S>>>>,
    /// Our clone of the primary connection; shutting it down unblocks
    /// the applier's blocking read.
    feed: std::net::TcpStream,
    applier: Option<std::thread::JoinHandle<()>>,
    applied: Arc<AtomicU64>,
}

impl<S: WireSymbol + 'static> ReplicaHandle<S> {
    /// The replica's bound serving address.
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.server
            .as_ref()
            .expect("server present until shutdown")
            .local_addr()
    }

    /// Items the replica holds (base + applied stream), i.e. the
    /// sequence number the next streamed insert must carry. Poll this
    /// to await catch-up with the primary.
    pub fn applied(&self) -> u64 {
        self.applied.load(Ordering::Acquire)
    }

    /// Disconnect from the primary, drain the read-only server, and
    /// hand back the replica's [`Database`] (still durable: its drop
    /// persists any WAL tail into the data dir).
    pub fn shutdown(mut self) -> Database<S> {
        self.stop_feed();
        let server = self.server.take().expect("server present until shutdown");
        let parts = self.parts.take().expect("parts present until shutdown");
        drop(self);
        Database::from_parts(parts, server.shutdown())
    }

    fn stop_feed(&mut self) {
        let _ = self.feed.shutdown(std::net::Shutdown::Both);
        if let Some(handle) = self.applier.take() {
            let _ = handle.join();
        }
    }
}

impl<S: WireSymbol + 'static> Drop for ReplicaHandle<S> {
    fn drop(&mut self) {
        self.stop_feed();
        // The server (if still held) cleans up its own threads.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words() -> Vec<Vec<u8>> {
        ["casa", "cosa", "masa", "taza", "cesta", "pasta"]
            .iter()
            .map(|w| w.as_bytes().to_vec())
            .collect()
    }

    #[test]
    fn every_backend_answers_identically_through_the_facade() {
        let backends = [
            Backend::Linear,
            Backend::Laesa { pivots: 3 },
            Backend::Aesa,
            Backend::VpTree,
        ];
        let reference = Database::builder(words()).build().unwrap();
        for backend in backends {
            let db = Database::builder(words()).backend(backend).build().unwrap();
            assert_eq!(db.len(), 6);
            for q in [&b"casa"[..], b"pesto", b"maza"] {
                let (r_nn, _) = reference.nn(q).unwrap();
                let (b_nn, _) = db.nn(q).unwrap();
                let (r_nn, b_nn) = (r_nn.unwrap(), b_nn.unwrap());
                assert_eq!(
                    (r_nn.index, r_nn.distance.to_bits()),
                    (b_nn.index, b_nn.distance.to_bits()),
                    "{backend:?} query {q:?}"
                );
                let (r_range, _) = reference.range(q, 2.0).unwrap();
                let (b_range, _) = db.range(q, 2.0).unwrap();
                let as_key = |ns: &[Neighbour]| -> Vec<(usize, u64)> {
                    ns.iter().map(|n| (n.index, n.distance.to_bits())).collect()
                };
                assert_eq!(
                    as_key(&r_range),
                    as_key(&b_range),
                    "{backend:?} query {q:?}"
                );
            }
        }
    }

    #[test]
    fn sharded_builder_path_works_and_owns_the_metric() {
        let db = Database::builder(words())
            .metric(Metric::Contextual { bounded: true })
            .backend(Backend::Laesa { pivots: 2 })
            .shards(3)
            .build()
            .unwrap();
        assert_eq!(db.index().backend_name(), "sharded");
        let (nn, _) = db.nn(b"casa").unwrap();
        let nn = nn.unwrap();
        assert_eq!(nn.index, 0);
        assert_eq!(nn.distance, 0.0);
        assert_eq!(db.item(nn.index), Some(&b"casa"[..]));
        assert_eq!(db.metric().name(), "d_C");
        // Batches flow through the same surface.
        let queries = words();
        let batch = db.nn_batch(&queries).unwrap();
        assert_eq!(batch.len(), queries.len());
        for (i, (nb, _)) in batch.iter().enumerate() {
            assert_eq!(nb.unwrap().index, i, "member query finds itself");
        }
    }

    #[test]
    fn sharding_non_laesa_backends_is_a_typed_error() {
        let err = Database::builder(words())
            .backend(Backend::VpTree)
            .shards(4)
            .build()
            .err()
            .expect("sharded vp-tree must be rejected");
        assert!(matches!(err, SearchError::UnsupportedConfig { .. }));
    }

    #[test]
    fn unbounded_contextual_matches_bounded_results() {
        let fast = Database::builder(words())
            .metric(Metric::Contextual { bounded: true })
            .build()
            .unwrap();
        let slow = Database::builder(words())
            .metric(Metric::Contextual { bounded: false })
            .build()
            .unwrap();
        for q in [&b"casa"[..], b"past", b"zzz"] {
            let (f, _) = fast.nn(q).unwrap();
            let (s, _) = slow.nn(q).unwrap();
            let (f, s) = (f.unwrap(), s.unwrap());
            assert_eq!(
                (f.index, f.distance.to_bits()),
                (s.index, s.distance.to_bits())
            );
        }
    }

    #[test]
    fn custom_metrics_plug_in() {
        struct LengthDiff;
        impl Distance<u8> for LengthDiff {
            fn distance(&self, a: &[u8], b: &[u8]) -> f64 {
                (a.len() as f64 - b.len() as f64).abs()
            }
            fn name(&self) -> &'static str {
                "len-diff"
            }
            fn is_metric(&self) -> bool {
                false // pseudo-metric: identity fails
            }
        }
        let db = Database::builder(words())
            .custom_metric(Box::new(LengthDiff))
            .build()
            .unwrap();
        let (nn, _) = db.nn(b"xxxx").unwrap();
        assert_eq!(nn.unwrap().distance, 0.0);
    }

    #[test]
    fn empty_database_is_a_typed_error_at_query_time() {
        let db = Database::builder(Vec::<Vec<u8>>::new()).build().unwrap();
        assert!(db.is_empty());
        assert_eq!(db.nn(b"x").unwrap_err(), SearchError::EmptyDatabase);
        assert_eq!(db.range(b"x", 1.0).unwrap_err(), SearchError::EmptyDatabase);
    }

    /// A corpus large enough for the planner to sample (clustered, so
    /// pruning backends win) — `i` perturbs a handful of base words.
    fn clustered(n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| {
                let mut w = [&b"casa"[..], b"cosa", b"masa", b"taza"][i % 4].to_vec();
                w.push(b'a' + (i % 26) as u8);
                if i % 3 == 0 {
                    w.push(b'a' + (i / 26 % 26) as u8);
                }
                w
            })
            .collect()
    }

    #[test]
    fn auto_backend_records_a_plan_and_matches_its_concrete_twin() {
        let auto = Database::builder(clustered(300))
            .backend(Backend::Auto)
            .build()
            .unwrap();
        let plan = auto.plan().expect("Auto records a plan").clone();
        let twin = Database::builder(clustered(300))
            .backend(match plan.backend {
                PlannedBackend::Linear => Backend::Linear,
                PlannedBackend::Laesa { pivots } => Backend::Laesa { pivots },
                PlannedBackend::VpTree => Backend::VpTree,
            })
            .shards(plan.shards.max(1))
            .build()
            .unwrap();
        for q in [&b"casaq"[..], b"tazaxx", b"zzzz"] {
            let (a, sa) = auto.nn(q).unwrap();
            let (t, st) = twin.nn(q).unwrap();
            let (a, t) = (a.unwrap(), t.unwrap());
            assert_eq!(
                (a.index, a.distance.to_bits()),
                (t.index, t.distance.to_bits())
            );
            assert_eq!(sa, st, "identical structure, identical work");
        }
        assert!(plan.report().contains("backend"), "report names the choice");
    }

    #[test]
    fn auto_forces_linear_for_non_metric_distances() {
        let db = Database::builder(clustered(300))
            .metric(Metric::MaxNorm)
            .backend(Backend::Auto)
            .build()
            .unwrap();
        assert_eq!(db.plan().unwrap().backend, PlannedBackend::Linear);
        assert_eq!(db.index().backend_name(), "linear");
    }

    #[test]
    fn cached_facade_replays_hits_and_flushes_on_delete() {
        let mut db = Database::builder(words()).cache().build().unwrap();
        let (first, s1) = db.nn(b"cesa").unwrap();
        let (again, s2) = db.nn(b"cesa").unwrap();
        assert_eq!(
            (first.unwrap().index, first.unwrap().distance.to_bits()),
            (again.unwrap().index, again.unwrap().distance.to_bits())
        );
        assert_eq!(s1, s2, "a hit replays the stored statistics too");
        let stats = db.cache_stats().expect("cache configured");
        assert_eq!((stats.hits, stats.misses), (1, 1));
        // The delete barrier flushes: the dead item vanishes from the
        // recomputed answer instead of being replayed stale.
        let dead = first.unwrap().index;
        assert!(db.delete(dead).unwrap());
        let (after, _) = db.nn(b"cesa").unwrap();
        assert_ne!(after.unwrap().index, dead, "no stale cached answer");
        assert!(db.cache_stats().unwrap().invalidations >= 1);
    }

    #[test]
    fn vacuum_matches_a_fresh_build_of_the_survivors() {
        let mut db = Database::builder(words())
            .backend(Backend::Laesa { pivots: 2 })
            .build()
            .unwrap();
        assert!(db.delete(1).unwrap());
        assert!(db.delete(4).unwrap());
        assert!(db.is_deleted(1) && !db.is_deleted(0));
        let survivors: Vec<Vec<u8>> = words()
            .into_iter()
            .enumerate()
            .filter(|(i, _)| *i != 1 && *i != 4)
            .map(|(_, w)| w)
            .collect();
        let vacuumed = db.vacuum().unwrap();
        assert_eq!((vacuumed.len(), vacuumed.deleted()), (4, 0));
        let fresh = Database::builder(survivors)
            .backend(Backend::Laesa { pivots: 2 })
            .build()
            .unwrap();
        for q in [&b"casa"[..], b"cesa", b"pasta"] {
            let (v, sv) = vacuumed.nn(q).unwrap();
            let (f, sf) = fresh.nn(q).unwrap();
            let (v, f) = (v.unwrap(), f.unwrap());
            assert_eq!(
                (v.index, v.distance.to_bits()),
                (f.index, f.distance.to_bits())
            );
            assert_eq!(sv, sf, "vacuum is indistinguishable from a fresh build");
        }
    }

    #[test]
    fn auto_plan_survives_save_and_load() {
        let path = std::env::temp_dir().join(format!("cned-planload-{}.cned", std::process::id()));
        let db = Database::builder(clustered(300))
            .backend(Backend::Auto)
            .build()
            .unwrap();
        let saved_plan = db.plan().expect("Auto records a plan").clone();
        db.save(&path).unwrap();
        let loaded = Database::<u8>::load(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(
            loaded.plan(),
            Some(&saved_plan),
            "warm restart reports the decision it serves"
        );
        let (a, sa) = db.nn(b"casaq").unwrap();
        let (b, sb) = loaded.nn(b"casaq").unwrap();
        let (a, b) = (a.unwrap(), b.unwrap());
        assert_eq!(
            (a.index, a.distance.to_bits()),
            (b.index, b.distance.to_bits())
        );
        assert_eq!(sa, sb);
    }

    #[test]
    fn facade_session_serves_tickets_and_returns_the_database() {
        use cned_serve::ResponseBody;
        let db = Database::builder(words())
            .backend(Backend::Laesa { pivots: 2 })
            .shards(2)
            .build()
            .unwrap();
        let n = db.len();
        let session = db.session();
        let t_nn = session
            .submit(Request::Nn {
                query: b"casa".to_vec(),
            })
            .unwrap();
        let t_ins = session
            .submit(Request::Insert {
                item: b"nueva".to_vec(),
            })
            .unwrap();
        let t_after = session
            .submit(Request::Nn {
                query: b"nueva".to_vec(),
            })
            .unwrap();
        let ResponseBody::Nn {
            neighbour: Some(nb),
            ..
        } = t_nn.wait().body
        else {
            panic!("expected Nn");
        };
        assert_eq!((nb.index, nb.distance), (0, 0.0));
        assert_eq!(t_ins.wait().body, ResponseBody::Inserted { index: n });
        let ResponseBody::Nn {
            neighbour: Some(nb),
            ..
        } = t_after.wait().body
        else {
            panic!("expected Nn");
        };
        assert_eq!((nb.index, nb.distance), (n, 0.0), "insert is a barrier");
        // The session hands the database back, insert included.
        let db = session.shutdown();
        assert_eq!(db.len(), n + 1);
        assert_eq!(db.item(n), Some(&b"nueva"[..]));
        assert_eq!(db.metric().name(), "d_E");
    }

    #[test]
    fn facade_serve_loopback_matches_in_process_answers() {
        use cned_serve::Client;
        let db = Database::builder(words()).build().unwrap();
        let n = db.len();
        // In-process expectations first; then the same database goes
        // behind the wire.
        let (e_nn, e_stats) = db.nn(b"cesa").unwrap();
        let (e_range, _) = db.range(b"casa", 1.0).unwrap();
        let handle = db.serve("127.0.0.1:0").expect("ephemeral loopback bind");
        let mut client: Client<u8> = Client::connect(handle.local_addr()).unwrap();
        let (nn, stats) = client.nn(b"cesa").unwrap();
        assert_eq!(
            nn.map(|v| (v.index, v.distance.to_bits())),
            e_nn.map(|v| (v.index, v.distance.to_bits())),
            "loopback NN is bit-identical to the in-process answer"
        );
        assert_eq!(stats, e_stats);
        let (hits, _) = client.range(b"casa", 1.0).unwrap();
        let key = |ns: &[Neighbour]| -> Vec<(usize, u64)> {
            ns.iter().map(|v| (v.index, v.distance.to_bits())).collect()
        };
        assert_eq!(key(&hits), key(&e_range));
        // Inserts flow over the wire into the served index…
        assert_eq!(client.insert(b"cesa").unwrap(), n);
        let (nn, _) = client.nn(b"cesa").unwrap();
        assert_eq!(nn.map(|v| (v.index, v.distance)), Some((n, 0.0)));
        drop(client);
        // …and drain back into the reassembled database.
        let db = handle.shutdown();
        assert_eq!(db.len(), n + 1);
        let (nn, _) = db.nn(b"cesa").unwrap();
        assert_eq!(nn.map(|v| (v.index, v.distance)), Some((n, 0.0)));
    }
}
