//! # cned-core
//!
//! Core algorithms for **"A Contextual Normalised Edit Distance"**
//! (Colin de la Higuera & Luisa Micó, ICDE 2008).
//!
//! The paper proposes normalising the Levenshtein distance *locally*:
//! each elementary edit operation `u → v` is charged `1 / max(|u|, |v|)`
//! — the length of the string the operation acts on — instead of a flat
//! cost of 1. The resulting *contextual edit distance* `d_C`:
//!
//! * is a metric (paper, Theorem 1), unlike the simple normalisations
//!   `d_E/(|x|+|y|)`, `d_E/max(|x|,|y|)` and `d_E/min(|x|,|y|)`;
//! * is computable exactly in `O(|x|·|y|·(|x|+|y|))` time by an
//!   extension of the Wagner–Fischer dynamic program
//!   ([`contextual::exact`], the paper's Algorithm 1);
//! * admits an `O(|x|·|y|)` heuristic `d_C,h` that returns the exact
//!   value in the vast majority of cases and never underestimates it
//!   ([`contextual::heuristic`]).
//!
//! This crate also implements, from scratch, every distance the paper
//! compares against:
//!
//! | distance | module | metric? |
//! |----------|--------|---------|
//! | Levenshtein `d_E` | [`levenshtein`] | yes |
//! | contextual `d_C` (exact) | [`contextual::exact`] | yes |
//! | contextual heuristic `d_C,h` | [`contextual::heuristic`] | no (upper bound of a metric) |
//! | Marzal–Vidal `d_MV` | [`normalized::marzal_vidal`] | open for unit costs |
//! | Yujian–Bo `d_YB` | [`normalized::yujian_bo`] | yes |
//! | `d_max`, `d_min`, `d_sum` | [`normalized::simple`] | **no** (counterexamples in paper §2.2) |
//!
//! plus a generalised (weighted) edit distance substrate
//! ([`generalized`]), exact rational arithmetic for float-free
//! verification ([`ratio`]), and a brute-force Dijkstra oracle over
//! string space ([`brute`]).
//!
//! `d_E` itself is served by a three-engine stack — the scalar
//! two-row reference, Myers' 64×-word-parallel bit-vector kernel
//! ([`myers`], with a per-query `Peq` cache for batch search), and a
//! banded bounded variant — selected automatically; see
//! [`levenshtein`] for the strategy and [`metric::Distance`] for the
//! `distance_bounded` / `prepare` hooks search structures build on.
//! The cubic `d_C` DP has the same prepared/bounded architecture:
//! [`contextual::bounded`] gates candidates on cheap admissible lower
//! bounds (length, per-`k` weight, bit-parallel `d_E`) and band-prunes
//! the surviving DPs, so metric-space search over `d_C` rejects most
//! comparisons without paying the cubic cost.
//!
//! ## Quickstart
//!
//! ```
//! use cned_core::prelude::*;
//!
//! let x = b"ababa";
//! let y = b"baab";
//!
//! // Plain Levenshtein.
//! assert_eq!(levenshtein(x, y), 3);
//!
//! // Exact contextual distance (paper, Example 4): 8/15.
//! let d = contextual_distance(x, y);
//! assert!((d - 8.0 / 15.0).abs() < 1e-12);
//!
//! // The fast heuristic never underestimates the exact value.
//! let h = contextual_heuristic(x, y);
//! assert!(h >= d - 1e-12);
//! ```

// The AVX2 kernels are the only unsafe in the workspace; every
// unsafe *operation* inside them must sit in an explicit, SAFETY-
// commented block (cned-lint audits the comments).
#![deny(unsafe_op_in_unsafe_fn)]

pub mod brute;
pub mod contextual;
pub mod generalized;
pub mod lanes;
pub mod levenshtein;
pub mod metric;
pub mod myers;
pub mod normalized;
pub mod ops;
pub mod ratio;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::contextual::bounded::{
        contextual_bounded, ContextualScratch, PreparedContextual,
    };
    pub use crate::contextual::exact::{contextual_distance, Contextual, ContextualAlignment};
    pub use crate::contextual::heuristic::{contextual_heuristic, ContextualHeuristic};
    pub use crate::contextual::weight::{contextual_path_weight, PathShape};
    pub use crate::lanes::{Backend, LANES};
    pub use crate::levenshtein::{levenshtein, levenshtein_bounded, wagner_fischer, Levenshtein};
    pub use crate::metric::{Distance, DistanceKind, PreparedQuery, Unpruned};
    pub use crate::myers::{myers, myers_bounded, MyersPattern};
    pub use crate::normalized::marzal_vidal::{marzal_vidal, MarzalVidal};
    pub use crate::normalized::simple::{d_max, d_min, d_sum, MaxNorm, MinNorm, SumNorm};
    pub use crate::normalized::yujian_bo::{yujian_bo, YujianBo};
    pub use crate::ops::{apply_script, EditOp};
    pub use crate::Symbol;
}

/// Bound satisfied by every type usable as a string symbol.
///
/// The blanket implementation means any `Copy + Eq + Debug` type that
/// is thread-safe works: `u8` (dictionary words, Freeman chain codes),
/// `char`, enum nucleotides, `u32` codepoints, … The `Send + Sync`
/// requirement (trivially met by all of those) is what lets index
/// construction and batch search fan out across cores without extra
/// bounds at every call site; `'static` (equally trivial for plain
/// value types) is what lets persistence downcast an index behind
/// `dyn Any` and serving sessions own items across threads.
pub trait Symbol: Copy + Eq + core::fmt::Debug + Send + Sync + 'static {}

impl<T: Copy + Eq + core::fmt::Debug + Send + Sync + 'static> Symbol for T {}
