//! Elementary edit operations and edit scripts.
//!
//! The paper (Definition 2) uses three correction rules over strings in
//! `Σ*`: single-symbol deletion (`uav → uv`), insertion (`uv → uav`)
//! and substitution (`uav → ubv`). An *edit script* is a sequence of
//! such operations; applying a script to `x` step by step produces a
//! rewriting path `x = w₀ → w₁ → … → w_k = y`.
//!
//! Positions in an [`EditOp`] refer to the string *the operation is
//! applied to*, so a script must be applied in order; positions are not
//! relative to the original `x`.

use crate::Symbol;

/// A single elementary edit operation.
///
/// `pos` is an index into the string the operation is applied to:
/// * `Delete { pos }` removes the symbol at `pos`;
/// * `Insert { pos, sym }` inserts `sym` *before* index `pos`
///   (so `pos == len` appends);
/// * `Substitute { pos, sym }` replaces the symbol at `pos` by `sym`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EditOp<S: Symbol> {
    /// Remove the symbol at `pos`.
    Delete { pos: usize },
    /// Insert `sym` before index `pos`.
    Insert { pos: usize, sym: S },
    /// Replace the symbol at `pos` with `sym`.
    Substitute { pos: usize, sym: S },
}

impl<S: Symbol> EditOp<S> {
    /// Unit (Levenshtein) cost of the operation: always 1.
    #[inline]
    pub fn unit_cost(&self) -> usize {
        1
    }

    /// Contextual cost of applying this operation to a string of length
    /// `len` (paper, Section 3): `1/max(|u|,|v|)` where `u → v`.
    ///
    /// * substitution on `u`: result has the same length, cost `1/len`;
    /// * deletion from `u`: `|u| > |v|`, cost `1/len`;
    /// * insertion into `u`: `|v| = |u|+1`, cost `1/(len+1)`.
    ///
    /// # Panics
    /// Panics if the operation cannot apply to a string of length `len`
    /// (e.g. a deletion from the empty string), mirroring the paper's
    /// requirement `uv ≠ λ`.
    #[inline]
    pub fn contextual_cost(&self, len: usize) -> f64 {
        match self {
            EditOp::Delete { .. } | EditOp::Substitute { .. } => {
                assert!(len > 0, "cannot delete/substitute on the empty string");
                1.0 / len as f64
            }
            EditOp::Insert { .. } => 1.0 / (len as f64 + 1.0),
        }
    }

    /// Length of the string after applying this operation to a string
    /// of length `len`.
    #[inline]
    pub fn result_len(&self, len: usize) -> usize {
        match self {
            EditOp::Delete { .. } => len - 1,
            EditOp::Insert { .. } => len + 1,
            EditOp::Substitute { .. } => len,
        }
    }

    /// Apply the operation to `s`, returning the rewritten string.
    ///
    /// # Panics
    /// Panics when `pos` is out of bounds for the operation.
    pub fn apply(&self, s: &[S]) -> Vec<S> {
        let mut out = Vec::with_capacity(s.len() + 1);
        match *self {
            EditOp::Delete { pos } => {
                assert!(pos < s.len(), "delete position {pos} out of bounds");
                out.extend_from_slice(&s[..pos]);
                out.extend_from_slice(&s[pos + 1..]);
            }
            EditOp::Insert { pos, sym } => {
                assert!(pos <= s.len(), "insert position {pos} out of bounds");
                out.extend_from_slice(&s[..pos]);
                out.push(sym);
                out.extend_from_slice(&s[pos..]);
            }
            EditOp::Substitute { pos, sym } => {
                assert!(pos < s.len(), "substitute position {pos} out of bounds");
                out.extend_from_slice(s);
                out[pos] = sym;
            }
        }
        out
    }
}

/// Apply a whole edit script to `x`, returning the final string.
///
/// Equivalent to folding [`EditOp::apply`] over the script.
pub fn apply_script<S: Symbol>(x: &[S], script: &[EditOp<S>]) -> Vec<S> {
    let mut cur = x.to_vec();
    for op in script {
        cur = op.apply(&cur);
    }
    cur
}

/// Total unit (Levenshtein) weight of a script: its length.
#[inline]
pub fn script_unit_weight<S: Symbol>(script: &[EditOp<S>]) -> usize {
    script.len()
}

/// Total contextual weight of a script applied starting from a string
/// of length `start_len` — the quantity `d_C(π)` of Definition 4.
///
/// This walks the path, charging each operation by the length of the
/// string it acts on, and is the reference used by tests to validate
/// the dynamic-programming algorithms.
pub fn script_contextual_weight<S: Symbol>(start_len: usize, script: &[EditOp<S>]) -> f64 {
    let mut len = start_len;
    let mut total = 0.0;
    for op in script {
        total += op.contextual_cost(len);
        len = op.result_len(len);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delete_removes_symbol() {
        let op = EditOp::Delete { pos: 1 };
        assert_eq!(op.apply(b"abc"), b"ac");
    }

    #[test]
    fn insert_at_front_middle_end() {
        assert_eq!(EditOp::Insert { pos: 0, sym: b'x' }.apply(b"ab"), b"xab");
        assert_eq!(EditOp::Insert { pos: 1, sym: b'x' }.apply(b"ab"), b"axb");
        assert_eq!(EditOp::Insert { pos: 2, sym: b'x' }.apply(b"ab"), b"abx");
    }

    #[test]
    fn substitute_replaces_in_place() {
        let op = EditOp::Substitute { pos: 2, sym: b'z' };
        assert_eq!(op.apply(b"abc"), b"abz");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn delete_out_of_bounds_panics() {
        EditOp::<u8>::Delete { pos: 3 }.apply(b"abc");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn insert_past_end_panics() {
        EditOp::Insert { pos: 4, sym: b'x' }.apply(b"abc");
    }

    #[test]
    fn apply_script_example_1_from_paper() {
        // Paper Example 1: abaa → aab via deletion of 'b' and
        // substitution of the last 'a' by 'b'.
        let script = [
            EditOp::Delete { pos: 1 },
            EditOp::Substitute { pos: 2, sym: b'b' },
        ];
        assert_eq!(apply_script(b"abaa", &script), b"aab");
        assert_eq!(script_unit_weight(&script), 2);
    }

    #[test]
    fn contextual_cost_of_substitution_and_deletion_is_one_over_len() {
        let sub = EditOp::Substitute { pos: 0, sym: b'z' };
        let del = EditOp::<u8>::Delete { pos: 0 };
        assert_eq!(sub.contextual_cost(5), 1.0 / 5.0);
        assert_eq!(del.contextual_cost(5), 1.0 / 5.0);
    }

    #[test]
    fn contextual_cost_of_insertion_is_one_over_len_plus_one() {
        let ins = EditOp::Insert { pos: 0, sym: b'z' };
        assert_eq!(ins.contextual_cost(5), 1.0 / 6.0);
        // Inserting into the empty string costs 1 (max(0, 1) = 1).
        assert_eq!(ins.contextual_cost(0), 1.0);
    }

    #[test]
    #[should_panic(expected = "empty string")]
    fn contextual_cost_of_deletion_from_empty_panics() {
        EditOp::<u8>::Delete { pos: 0 }.contextual_cost(0);
    }

    #[test]
    fn script_contextual_weight_example_4_first_path() {
        // Paper Example 4, first path:
        // ababa →d abaa →d baa →i baab, weight 1/5 + 1/4 + 1/4 = 7/10.
        let script = [
            EditOp::Delete { pos: 3 },            // ababa(5) -> abaa, cost 1/5
            EditOp::Delete { pos: 0 },            // abaa(4) -> baa, cost 1/4
            EditOp::Insert { pos: 3, sym: b'b' }, // baa(3) -> baab, cost 1/4
        ];
        assert_eq!(apply_script(b"ababa", &script), b"baab");
        let w = script_contextual_weight(5, &script);
        assert!((w - 0.7).abs() < 1e-12, "weight was {w}");
    }

    #[test]
    fn script_contextual_weight_example_4_second_path() {
        // Paper Example 4, alternative path:
        // ababa →i ababab →d babab →d baab, weight 1/6 + 1/6 + ... the
        // paper states the total optimum is 8/15 = 1/6 + 1/5 + 1/5.
        // (An insertion to length 6 costs 1/6; the two deletions act on
        // strings of length 6 and 5: 1/6 + 1/5; total 1/6+1/6+1/5 for
        // this particular path = 0.5333... = 8/15.)
        let script = [
            EditOp::Insert { pos: 5, sym: b'b' }, // ababa(5) -> ababab, cost 1/6
            EditOp::Delete { pos: 0 },            // ababab(6) -> babab, cost 1/6
            EditOp::Delete { pos: 2 },            // babab(5) -> baab,  cost 1/5
        ];
        assert_eq!(apply_script(b"ababa", &script), b"baab");
        let w = script_contextual_weight(5, &script);
        assert!((w - 8.0 / 15.0).abs() < 1e-12, "weight was {w}");
    }

    #[test]
    fn result_len_tracks_length_changes() {
        assert_eq!(EditOp::<u8>::Delete { pos: 0 }.result_len(4), 3);
        assert_eq!(EditOp::Insert { pos: 0, sym: b'a' }.result_len(4), 5);
        assert_eq!(EditOp::Substitute { pos: 0, sym: b'a' }.result_len(4), 4);
    }
}
