//! The Levenshtein (edit) distance `d_E` and its variants.
//!
//! This is the substrate of every normalisation in the paper: the
//! smallest number `k` of single-symbol insertions, deletions and
//! substitutions rewriting `x` into `y` (paper Definition 2, computed
//! with the classic Wagner–Fischer dynamic program \[7\]).
//!
//! Provided variants:
//! * [`levenshtein`] — two-row `O(|x|·|y|)` time, `O(min(|x|,|y|))`
//!   space; the workhorse;
//! * [`levenshtein_bounded`] — early-exit version returning `None`
//!   when the distance exceeds a bound (Ukkonen banding), used by
//!   search structures that only need "is it closer than my current
//!   best";
//! * [`levenshtein_matrix`] / [`edit_script`] — full-table version with
//!   optimal edit-script recovery.

use crate::metric::Distance;
use crate::ops::EditOp;
use crate::Symbol;

/// Levenshtein distance between `x` and `y`.
///
/// Two-row dynamic program: `O(|x|·|y|)` time, `O(min(|x|,|y|))` space.
///
/// ```
/// use cned_core::levenshtein::levenshtein;
/// assert_eq!(levenshtein(b"abaa", b"aab"), 2); // paper, Example 1
/// ```
pub fn levenshtein<S: Symbol>(x: &[S], y: &[S]) -> usize {
    // Iterate over the shorter string in the inner loop's row buffer.
    let (short, long) = if x.len() <= y.len() { (x, y) } else { (y, x) };
    if short.is_empty() {
        return long.len();
    }

    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut cur: Vec<usize> = vec![0; short.len() + 1];

    for (i, &ls) in long.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &ss) in short.iter().enumerate() {
            let sub = prev[j] + usize::from(ls != ss);
            let del = prev[j + 1] + 1;
            let ins = cur[j] + 1;
            cur[j + 1] = sub.min(del).min(ins);
        }
        core::mem::swap(&mut prev, &mut cur);
    }
    prev[short.len()]
}

/// Levenshtein distance, abandoning early when it provably exceeds
/// `bound`; returns `None` in that case.
///
/// Only cells within the diagonal band of half-width `bound` can hold a
/// value ≤ `bound`, so the program visits `O(bound · min(|x|,|y|))`
/// cells. Useful in nearest-neighbour search where most comparisons
/// lose against the current best.
///
/// ```
/// use cned_core::levenshtein::levenshtein_bounded;
/// assert_eq!(levenshtein_bounded(b"kitten", b"sitting", 3), Some(3));
/// assert_eq!(levenshtein_bounded(b"kitten", b"sitting", 2), None);
/// ```
pub fn levenshtein_bounded<S: Symbol>(x: &[S], y: &[S], bound: usize) -> Option<usize> {
    let (short, long) = if x.len() <= y.len() { (x, y) } else { (y, x) };
    let (n, m) = (long.len(), short.len());
    // Length difference is a lower bound on the distance.
    if n - m > bound {
        return None;
    }
    if m == 0 {
        return Some(n);
    }

    const INF: usize = usize::MAX / 2;
    let mut prev: Vec<usize> = (0..=m).map(|j| if j <= bound { j } else { INF }).collect();
    let mut cur: Vec<usize> = vec![INF; m + 1];

    for (i, &ls) in long.iter().enumerate() {
        // Band: |(i+1) - j| <= bound  =>  j in [i+1-bound, i+1+bound].
        let lo = (i + 1).saturating_sub(bound);
        let hi = m.min(i + 1 + bound);
        if lo > hi {
            return None;
        }
        cur[0] = if i < bound { i + 1 } else { INF };
        // The `cur` buffer still holds row i-1 (two swaps ago): clear
        // the cell just left of the band so the insertion source for
        // j = lo reads INF, not a stale value.
        if lo >= 2 {
            cur[lo - 1] = INF;
        }
        let mut row_min = cur[0];
        for j in lo.max(1)..=hi {
            let ss = short[j - 1];
            let sub = prev[j - 1].saturating_add(usize::from(ls != ss));
            let del = prev[j].saturating_add(1);
            let ins = cur[j - 1].saturating_add(1);
            cur[j] = sub.min(del).min(ins);
            row_min = row_min.min(cur[j]);
        }
        // Clear the cell just right of the band: the next row's
        // deletion source at j = hi+1 would otherwise read a stale
        // value from two rows back.
        if hi < m {
            cur[hi + 1] = INF;
        }
        if row_min > bound {
            return None;
        }
        core::mem::swap(&mut prev, &mut cur);
    }
    let d = prev[m];
    (d <= bound).then_some(d)
}

/// Full `(|x|+1) × (|y|+1)` Levenshtein dynamic-programming matrix.
///
/// `matrix[i][j]` is the distance between the prefixes `x[..i]` and
/// `y[..j]`; `matrix[|x|][|y|]` is the distance. Kept around for
/// edit-script recovery and for teaching/diagnostic output.
pub fn levenshtein_matrix<S: Symbol>(x: &[S], y: &[S]) -> Vec<Vec<usize>> {
    let (n, m) = (x.len(), y.len());
    let mut d = vec![vec![0usize; m + 1]; n + 1];
    for (i, row) in d.iter_mut().enumerate() {
        row[0] = i;
    }
    for (j, cell) in d[0].iter_mut().enumerate() {
        *cell = j;
    }
    for i in 1..=n {
        for j in 1..=m {
            let sub = d[i - 1][j - 1] + usize::from(x[i - 1] != y[j - 1]);
            let del = d[i - 1][j] + 1;
            let ins = d[i][j - 1] + 1;
            d[i][j] = sub.min(del).min(ins);
        }
    }
    d
}

/// Recover one optimal edit script transforming `x` into `y`.
///
/// The script is expressed left-to-right and can be replayed with
/// [`crate::ops::apply_script`]; its length equals
/// [`levenshtein`]`(x, y)`.
///
/// Tie-breaking prefers substitution, then deletion, then insertion,
/// which yields the conventional alignment-order script.
pub fn edit_script<S: Symbol>(x: &[S], y: &[S]) -> Vec<EditOp<S>> {
    let d = levenshtein_matrix(x, y);
    let (mut i, mut j) = (x.len(), y.len());
    // Collect alignment columns in reverse, then convert to a
    // left-to-right applicable script.
    let mut rev: Vec<EditOp<S>> = Vec::new();
    while i > 0 || j > 0 {
        if i > 0 && j > 0 && x[i - 1] == y[j - 1] && d[i][j] == d[i - 1][j - 1] {
            i -= 1;
            j -= 1;
        } else if i > 0 && j > 0 && d[i][j] == d[i - 1][j - 1] + 1 {
            rev.push(EditOp::Substitute {
                pos: i - 1,
                sym: y[j - 1],
            });
            i -= 1;
            j -= 1;
        } else if i > 0 && d[i][j] == d[i - 1][j] + 1 {
            rev.push(EditOp::Delete { pos: i - 1 });
            i -= 1;
        } else {
            debug_assert!(j > 0 && d[i][j] == d[i][j - 1] + 1);
            rev.push(EditOp::Insert {
                pos: i,
                sym: y[j - 1],
            });
            j -= 1;
        }
    }
    // Positions were recorded against the original `x` during a
    // right-to-left walk. Applying the ops in exactly this order
    // (rightmost first) keeps every position valid: an operation never
    // shifts indices to its left.
    rev
}

/// `d_E` as a [`Distance`] implementation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Levenshtein;

impl<S: Symbol> Distance<S> for Levenshtein {
    fn distance(&self, a: &[S], b: &[S]) -> f64 {
        levenshtein(a, b) as f64
    }

    fn name(&self) -> &'static str {
        "d_E"
    }

    fn is_metric(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::apply_script;

    #[test]
    fn identical_strings_have_distance_zero() {
        assert_eq!(levenshtein(b"hello", b"hello"), 0);
        assert_eq!(levenshtein::<u8>(b"", b""), 0);
    }

    #[test]
    fn empty_vs_nonempty_is_length() {
        assert_eq!(levenshtein(b"", b"abc"), 3);
        assert_eq!(levenshtein(b"abcd", b""), 4);
    }

    #[test]
    fn paper_example_1() {
        assert_eq!(levenshtein(b"abaa", b"aab"), 2);
    }

    #[test]
    fn paper_example_2_upper_bound() {
        // d_E(abaa, baab) <= 3 via the internal path in Example 2; the
        // actual distance is 2 (delete leading 'a', append 'b').
        assert_eq!(levenshtein(b"abaa", b"baab"), 2);
    }

    #[test]
    fn classic_kitten_sitting() {
        assert_eq!(levenshtein(b"kitten", b"sitting"), 3);
    }

    #[test]
    fn symmetric_on_assorted_pairs() {
        let pairs: [(&[u8], &[u8]); 4] = [
            (b"abc", b"cba"),
            (b"", b"xyz"),
            (b"aaaa", b"aa"),
            (b"spanish", b"dictionary"),
        ];
        for (a, b) in pairs {
            assert_eq!(levenshtein(a, b), levenshtein(b, a));
        }
    }

    #[test]
    fn works_on_non_byte_symbols() {
        let a = [1u32, 2, 3, 4];
        let b = [1u32, 3, 4, 5];
        assert_eq!(levenshtein(&a, &b), 2);
    }

    #[test]
    fn bounded_matches_unbounded_when_within() {
        let cases: [(&[u8], &[u8]); 5] = [
            (b"kitten", b"sitting"),
            (b"abaa", b"aab"),
            (b"", b"abc"),
            (b"same", b"same"),
            (b"abcdef", b"ghijkl"),
        ];
        for (a, b) in cases {
            let d = levenshtein(a, b);
            assert_eq!(levenshtein_bounded(a, b, d), Some(d), "{a:?} vs {b:?}");
            assert_eq!(levenshtein_bounded(a, b, d + 2), Some(d));
            if d > 0 {
                assert_eq!(levenshtein_bounded(a, b, d - 1), None);
            }
        }
    }

    #[test]
    fn bounded_zero_bound_detects_equality() {
        assert_eq!(levenshtein_bounded(b"abc", b"abc", 0), Some(0));
        assert_eq!(levenshtein_bounded(b"abc", b"abd", 0), None);
    }

    #[test]
    fn matrix_corner_equals_distance() {
        let m = levenshtein_matrix(b"abaa", b"baab");
        assert_eq!(m[4][4], levenshtein(b"abaa", b"baab"));
        assert_eq!(m[0][0], 0);
        assert_eq!(m[4][0], 4);
        assert_eq!(m[0][4], 4);
    }

    #[test]
    fn edit_script_replays_to_target() {
        let cases: [(&[u8], &[u8]); 6] = [
            (b"abaa", b"aab"),
            (b"kitten", b"sitting"),
            (b"", b"abc"),
            (b"abc", b""),
            (b"ababa", b"baab"),
            (b"identical", b"identical"),
        ];
        for (a, b) in cases {
            let script = edit_script(a, b);
            assert_eq!(script.len(), levenshtein(a, b), "{a:?} vs {b:?}");
            assert_eq!(apply_script(a, &script), b, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn distance_trait_impl_agrees() {
        let d = Levenshtein;
        assert_eq!(Distance::<u8>::distance(&d, b"abaa", b"aab"), 2.0);
        assert_eq!(Distance::<u8>::name(&d), "d_E");
        assert!(Distance::<u8>::is_metric(&d));
    }
}
