//! The Levenshtein (edit) distance `d_E` and its variants.
//!
//! This is the substrate of every normalisation in the paper: the
//! smallest number `k` of single-symbol insertions, deletions and
//! substitutions rewriting `x` into `y` (paper Definition 2).
//!
//! ## Engine selection
//!
//! Three engines compute `d_E`, each optimal in a different regime:
//!
//! * **two-row scalar** ([`wagner_fischer`]) — the classic
//!   Wagner–Fischer dynamic program \[7\]: `O(|x|·|y|)` time,
//!   `O(min(|x|,|y|))` space. Fastest for very short strings, where
//!   the bit-parallel setup cost dominates; also the readable
//!   reference every other engine is property-tested against.
//! * **bit-parallel** ([`crate::myers`]) — Myers' 1999 bit-vector
//!   algorithm: one DP column packed into `⌈m/64⌉` machine words,
//!   ~64 cells advanced per word operation. The throughput workhorse
//!   for everything beyond toy lengths, and — via
//!   [`crate::myers::MyersPattern`] — the batch engine that
//!   precomputes per-query symbol bitmaps once and reuses them across
//!   a whole database scan.
//! * **banded scalar** ([`levenshtein_bounded`]) — Ukkonen's
//!   diagonal band: visits only `O(bound · min(|x|,|y|))` cells, so a
//!   *small* explicit bound beats even the bit-parallel engine on
//!   long strings; with a large or absent bound prefer
//!   [`crate::myers::myers_bounded`], which costs one extra counter
//!   per column over plain `myers`.
//!
//! The public entry points dispatch: [`levenshtein`] picks two-row
//! below [`MYERS_CUTOFF`] and bit-parallel above;
//! [`Levenshtein`]'s [`Distance`] implementation additionally routes
//! `distance_bounded` through the bit-parallel bounded kernel and
//! `prepare` through the pattern-bitmap cache, which is what the
//! search structures in `cned-search` call.
//!
//! Also provided: [`levenshtein_matrix`] / [`edit_script`] — the full
//! `O(|x|·|y|)`-space table with optimal edit-script recovery.

use crate::metric::{Distance, PreparedQuery};
use crate::myers::{myers, myers_bounded, MyersPattern};
use crate::ops::EditOp;
use crate::Symbol;

/// Shorter-string length at or below which [`levenshtein`] uses the
/// two-row scalar engine instead of the bit-parallel one.
///
/// Below this the Myers setup (allocating and filling the `Peq`
/// bitmaps) costs more than the whole scalar DP. The crossover,
/// measured with the `myers_vs_wagner_fischer` bench on a 4-symbol
/// alphabet, sits near length 3 (by length 8 the bit-parallel engine
/// already wins 2×); a small margin is kept for wider alphabets,
/// whose `Peq` construction costs slightly more.
pub const MYERS_CUTOFF: usize = 4;

/// Levenshtein distance between `x` and `y`.
///
/// Dispatches between the scalar and bit-parallel engines (see the
/// module docs); `O(|x|·|y| / 64)` time beyond [`MYERS_CUTOFF`].
///
/// ```
/// use cned_core::levenshtein::levenshtein;
/// assert_eq!(levenshtein(b"abaa", b"aab"), 2); // paper, Example 1
/// ```
pub fn levenshtein<S: Symbol>(x: &[S], y: &[S]) -> usize {
    if x.len().min(y.len()) <= MYERS_CUTOFF {
        wagner_fischer(x, y)
    } else {
        myers(x, y)
    }
}

/// Levenshtein distance by the classic two-row Wagner–Fischer dynamic
/// program: `O(|x|·|y|)` time, `O(min(|x|,|y|))` space.
///
/// This is the scalar reference engine: always correct, never fastest
/// beyond toy lengths. [`levenshtein`] dispatches to it only below
/// [`MYERS_CUTOFF`]; the property suite cross-checks the bit-parallel
/// engine against it on every run.
pub fn wagner_fischer<S: Symbol>(x: &[S], y: &[S]) -> usize {
    // Iterate over the shorter string in the inner loop's row buffer.
    let (short, long) = if x.len() <= y.len() { (x, y) } else { (y, x) };
    if short.is_empty() {
        return long.len();
    }

    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut cur: Vec<usize> = vec![0; short.len() + 1];

    for (i, &ls) in long.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &ss) in short.iter().enumerate() {
            let sub = prev[j] + usize::from(ls != ss);
            let del = prev[j + 1] + 1;
            let ins = cur[j] + 1;
            cur[j + 1] = sub.min(del).min(ins);
        }
        core::mem::swap(&mut prev, &mut cur);
    }
    prev[short.len()]
}

/// Levenshtein distance, abandoning early when it provably exceeds
/// `bound`; returns `None` in that case.
///
/// Only cells within the diagonal band of half-width `bound` can hold a
/// value ≤ `bound`, so the program visits `O(bound · min(|x|,|y|))`
/// cells. Useful in nearest-neighbour search where most comparisons
/// lose against the current best.
///
/// ```
/// use cned_core::levenshtein::levenshtein_bounded;
/// assert_eq!(levenshtein_bounded(b"kitten", b"sitting", 3), Some(3));
/// assert_eq!(levenshtein_bounded(b"kitten", b"sitting", 2), None);
/// ```
pub fn levenshtein_bounded<S: Symbol>(x: &[S], y: &[S], bound: usize) -> Option<usize> {
    let (short, long) = if x.len() <= y.len() { (x, y) } else { (y, x) };
    let (n, m) = (long.len(), short.len());
    // Length difference is a lower bound on the distance. The ordering
    // above guarantees `n >= m`; `saturating_sub` keeps the check
    // correct even if that invariant is ever disturbed.
    if n.saturating_sub(m) > bound {
        return None;
    }
    // A bound at or above the longer length can never bite (d_E <=
    // max(|x|, |y|)): skip the banding entirely — this also keeps the
    // `i + 1 + bound` band arithmetic below safely away from overflow
    // for huge bounds.
    if bound >= n {
        return Some(levenshtein(x, y));
    }
    if m == 0 {
        return Some(n);
    }

    const INF: usize = usize::MAX / 2;
    let mut prev: Vec<usize> = (0..=m).map(|j| if j <= bound { j } else { INF }).collect();
    let mut cur: Vec<usize> = vec![INF; m + 1];

    for (i, &ls) in long.iter().enumerate() {
        // Band: |(i+1) - j| <= bound  =>  j in [i+1-bound, i+1+bound].
        let lo = (i + 1).saturating_sub(bound);
        let hi = m.min(i + 1 + bound);
        if lo > hi {
            return None;
        }
        cur[0] = if i < bound { i + 1 } else { INF };
        // The `cur` buffer still holds row i-1 (two swaps ago): clear
        // the cell just left of the band so the insertion source for
        // j = lo reads INF, not a stale value.
        if lo >= 2 {
            cur[lo - 1] = INF;
        }
        let mut row_min = cur[0];
        for j in lo.max(1)..=hi {
            let ss = short[j - 1];
            let sub = prev[j - 1].saturating_add(usize::from(ls != ss));
            let del = prev[j].saturating_add(1);
            let ins = cur[j - 1].saturating_add(1);
            cur[j] = sub.min(del).min(ins);
            row_min = row_min.min(cur[j]);
        }
        // Clear the cell just right of the band: the next row's
        // deletion source at j = hi+1 would otherwise read a stale
        // value from two rows back.
        if hi < m {
            cur[hi + 1] = INF;
        }
        if row_min > bound {
            return None;
        }
        core::mem::swap(&mut prev, &mut cur);
    }
    let d = prev[m];
    (d <= bound).then_some(d)
}

/// Full `(|x|+1) × (|y|+1)` Levenshtein dynamic-programming matrix.
///
/// `matrix[i][j]` is the distance between the prefixes `x[..i]` and
/// `y[..j]`; `matrix[|x|][|y|]` is the distance. Kept around for
/// edit-script recovery and for teaching/diagnostic output.
pub fn levenshtein_matrix<S: Symbol>(x: &[S], y: &[S]) -> Vec<Vec<usize>> {
    let (n, m) = (x.len(), y.len());
    let mut d = vec![vec![0usize; m + 1]; n + 1];
    for (i, row) in d.iter_mut().enumerate() {
        row[0] = i;
    }
    for (j, cell) in d[0].iter_mut().enumerate() {
        *cell = j;
    }
    for i in 1..=n {
        for j in 1..=m {
            let sub = d[i - 1][j - 1] + usize::from(x[i - 1] != y[j - 1]);
            let del = d[i - 1][j] + 1;
            let ins = d[i][j - 1] + 1;
            d[i][j] = sub.min(del).min(ins);
        }
    }
    d
}

/// Recover one optimal edit script transforming `x` into `y`.
///
/// The script is expressed left-to-right and can be replayed with
/// [`crate::ops::apply_script`]; its length equals
/// [`levenshtein`]`(x, y)`.
///
/// Tie-breaking prefers substitution, then deletion, then insertion,
/// which yields the conventional alignment-order script.
pub fn edit_script<S: Symbol>(x: &[S], y: &[S]) -> Vec<EditOp<S>> {
    let d = levenshtein_matrix(x, y);
    let (mut i, mut j) = (x.len(), y.len());
    // Collect alignment columns in reverse, then convert to a
    // left-to-right applicable script.
    let mut rev: Vec<EditOp<S>> = Vec::new();
    while i > 0 || j > 0 {
        if i > 0 && j > 0 && x[i - 1] == y[j - 1] && d[i][j] == d[i - 1][j - 1] {
            i -= 1;
            j -= 1;
        } else if i > 0 && j > 0 && d[i][j] == d[i - 1][j - 1] + 1 {
            rev.push(EditOp::Substitute {
                pos: i - 1,
                sym: y[j - 1],
            });
            i -= 1;
            j -= 1;
        } else if i > 0 && d[i][j] == d[i - 1][j] + 1 {
            rev.push(EditOp::Delete { pos: i - 1 });
            i -= 1;
        } else {
            debug_assert!(j > 0 && d[i][j] == d[i][j - 1] + 1);
            rev.push(EditOp::Insert {
                pos: i,
                sym: y[j - 1],
            });
            j -= 1;
        }
    }
    // Positions were recorded against the original `x` during a
    // right-to-left walk. Applying the ops in exactly this order
    // (rightmost first) keeps every position valid: an operation never
    // shifts indices to its left.
    rev
}

/// `d_E` as a [`Distance`] implementation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Levenshtein;

/// Convert a [`Distance::distance_bounded`]-style `f64` budget into an
/// integer edit-distance bound; `None` when no distance can satisfy
/// it (negative budget). Shared by the trait and prepared-query paths
/// so their semantics cannot diverge.
fn int_bound(bound: f64) -> Option<usize> {
    if bound < 0.0 {
        return None;
    }
    Some(if bound >= usize::MAX as f64 {
        usize::MAX
    } else {
        bound.floor() as usize
    })
}

impl<S: Symbol> Distance<S> for Levenshtein {
    fn distance(&self, a: &[S], b: &[S]) -> f64 {
        levenshtein(a, b) as f64
    }

    fn distance_bounded(&self, a: &[S], b: &[S], bound: f64) -> Option<f64> {
        let bound = int_bound(bound)?;
        let engine_result = if a.len().min(b.len()) <= MYERS_CUTOFF {
            levenshtein_bounded(a, b, bound)
        } else {
            myers_bounded(a, b, bound)
        };
        engine_result.map(|d| d as f64)
    }

    fn prepare<'q>(&'q self, query: &'q [S]) -> Box<dyn PreparedQuery<S> + 'q> {
        Box::new(MyersPattern::new(query))
    }

    fn name(&self) -> &'static str {
        "d_E"
    }

    fn is_metric(&self) -> bool {
        true
    }
}

impl<S: Symbol> PreparedQuery<S> for MyersPattern<S> {
    fn distance_to(&self, target: &[S]) -> f64 {
        self.distance(target) as f64
    }

    fn distance_to_bounded(&self, target: &[S], bound: f64) -> Option<f64> {
        let bound = int_bound(bound)?;
        self.distance_bounded(target, bound).map(|d| d as f64)
    }

    // Batch hooks: route through the lane kernels. Integer distances
    // convert to f64 exactly, so these are bit-identical to the serial
    // defaults.

    fn distance_to_batch(&self, targets: &[&[S]], out: &mut [f64]) {
        assert_eq!(targets.len(), out.len(), "distance_to_batch size mismatch");
        let mut chunk = [0usize; crate::lanes::LANES];
        for (group, slots) in targets
            .chunks(crate::lanes::LANES)
            .zip(out.chunks_mut(crate::lanes::LANES))
        {
            self.distance_batch(group, &mut chunk[..group.len()]);
            for (slot, &d) in slots.iter_mut().zip(chunk.iter()) {
                *slot = d as f64;
            }
        }
    }

    fn distance_to_batch_bounded(&self, targets: &[&[S]], bound: f64, out: &mut [Option<f64>]) {
        assert_eq!(
            targets.len(),
            out.len(),
            "distance_to_batch_bounded size mismatch"
        );
        let Some(bound) = int_bound(bound) else {
            out.fill(None);
            return;
        };
        let mut chunk = [None; crate::lanes::LANES];
        for (group, slots) in targets
            .chunks(crate::lanes::LANES)
            .zip(out.chunks_mut(crate::lanes::LANES))
        {
            self.distance_batch_bounded(group, bound, &mut chunk[..group.len()]);
            for (slot, &d) in slots.iter_mut().zip(chunk.iter()) {
                *slot = d.map(|d| d as f64);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::apply_script;

    #[test]
    fn identical_strings_have_distance_zero() {
        assert_eq!(levenshtein(b"hello", b"hello"), 0);
        assert_eq!(levenshtein::<u8>(b"", b""), 0);
    }

    #[test]
    fn empty_vs_nonempty_is_length() {
        assert_eq!(levenshtein(b"", b"abc"), 3);
        assert_eq!(levenshtein(b"abcd", b""), 4);
    }

    #[test]
    fn paper_example_1() {
        assert_eq!(levenshtein(b"abaa", b"aab"), 2);
    }

    #[test]
    fn paper_example_2_upper_bound() {
        // d_E(abaa, baab) <= 3 via the internal path in Example 2; the
        // actual distance is 2 (delete leading 'a', append 'b').
        assert_eq!(levenshtein(b"abaa", b"baab"), 2);
    }

    #[test]
    fn classic_kitten_sitting() {
        assert_eq!(levenshtein(b"kitten", b"sitting"), 3);
    }

    #[test]
    fn symmetric_on_assorted_pairs() {
        let pairs: [(&[u8], &[u8]); 4] = [
            (b"abc", b"cba"),
            (b"", b"xyz"),
            (b"aaaa", b"aa"),
            (b"spanish", b"dictionary"),
        ];
        for (a, b) in pairs {
            assert_eq!(levenshtein(a, b), levenshtein(b, a));
        }
    }

    #[test]
    fn works_on_non_byte_symbols() {
        let a = [1u32, 2, 3, 4];
        let b = [1u32, 3, 4, 5];
        assert_eq!(levenshtein(&a, &b), 2);
    }

    #[test]
    fn bounded_matches_unbounded_when_within() {
        let cases: [(&[u8], &[u8]); 5] = [
            (b"kitten", b"sitting"),
            (b"abaa", b"aab"),
            (b"", b"abc"),
            (b"same", b"same"),
            (b"abcdef", b"ghijkl"),
        ];
        for (a, b) in cases {
            let d = levenshtein(a, b);
            assert_eq!(levenshtein_bounded(a, b, d), Some(d), "{a:?} vs {b:?}");
            assert_eq!(levenshtein_bounded(a, b, d + 2), Some(d));
            if d > 0 {
                assert_eq!(levenshtein_bounded(a, b, d - 1), None);
            }
        }
    }

    #[test]
    fn bounded_zero_bound_detects_equality() {
        assert_eq!(levenshtein_bounded(b"abc", b"abc", 0), Some(0));
        assert_eq!(levenshtein_bounded(b"abc", b"abd", 0), None);
    }

    #[test]
    fn bounded_huge_bound_takes_fast_path() {
        // bound >= max(|x|, |y|) short-circuits to the unbounded
        // engine; usize::MAX must not overflow the band arithmetic.
        assert_eq!(
            levenshtein_bounded(b"kitten", b"sitting", usize::MAX),
            Some(3)
        );
        assert_eq!(levenshtein_bounded(b"kitten", b"sitting", 7), Some(3));
        assert_eq!(levenshtein_bounded(b"", b"abc", usize::MAX), Some(3));
    }

    #[test]
    fn bounded_band_edges_are_cleared_between_rows() {
        // Regression: `cur` still holds row i-1 (two swaps ago), so the
        // cells just outside the band must be reset to INF or the band
        // reads stale values. These inputs have band width exactly 1
        // and force both the left-edge (`lo - 1`) and right-edge
        // (`hi + 1`) clears to matter: any stale read shifts the
        // result or the early-exit decision.
        for len in [4usize, 8, 16, 33, 64] {
            let x: Vec<u8> = (0..len).map(|i| (i % 3) as u8).collect();
            let mut y = x.clone();
            y.rotate_left(1); // distance <= 2, band stays tight
            let d = wagner_fischer(&x, &y);
            for bound in [1usize, 2, 3] {
                let expect = (d <= bound).then_some(d);
                assert_eq!(
                    levenshtein_bounded(&x, &y, bound),
                    expect,
                    "len {len} bound {bound}"
                );
            }
        }
        // The historical failure shape: long strings, small bound,
        // distance just above the bound — stale band-edge cells used
        // to let a path "tunnel" outside the band.
        let x: Vec<u8> = (0..120).map(|i| (i % 2) as u8).collect();
        let mut y = x.clone();
        y[3] = 7;
        y[60] = 7;
        y[110] = 7;
        assert_eq!(wagner_fischer(&x, &y), 3);
        assert_eq!(levenshtein_bounded(&x, &y, 2), None);
        assert_eq!(levenshtein_bounded(&x, &y, 3), Some(3));
    }

    #[test]
    fn dispatcher_agrees_with_scalar_reference_across_cutoff() {
        for len in [MYERS_CUTOFF - 1, MYERS_CUTOFF, MYERS_CUTOFF + 1, 100] {
            let x: Vec<u8> = (0..len).map(|i| (i % 5) as u8).collect();
            let y: Vec<u8> = (0..len + 3).map(|i| (i % 4) as u8).collect();
            assert_eq!(levenshtein(&x, &y), wagner_fischer(&x, &y), "len {len}");
        }
    }

    #[test]
    fn matrix_corner_equals_distance() {
        let m = levenshtein_matrix(b"abaa", b"baab");
        assert_eq!(m[4][4], levenshtein(b"abaa", b"baab"));
        assert_eq!(m[0][0], 0);
        assert_eq!(m[4][0], 4);
        assert_eq!(m[0][4], 4);
    }

    #[test]
    fn edit_script_replays_to_target() {
        let cases: [(&[u8], &[u8]); 6] = [
            (b"abaa", b"aab"),
            (b"kitten", b"sitting"),
            (b"", b"abc"),
            (b"abc", b""),
            (b"ababa", b"baab"),
            (b"identical", b"identical"),
        ];
        for (a, b) in cases {
            let script = edit_script(a, b);
            assert_eq!(script.len(), levenshtein(a, b), "{a:?} vs {b:?}");
            assert_eq!(apply_script(a, &script), b, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn distance_trait_impl_agrees() {
        let d = Levenshtein;
        assert_eq!(Distance::<u8>::distance(&d, b"abaa", b"aab"), 2.0);
        assert_eq!(Distance::<u8>::name(&d), "d_E");
        assert!(Distance::<u8>::is_metric(&d));
    }

    #[test]
    fn distance_bounded_trait_matches_plain_distance() {
        let d = Levenshtein;
        let pairs: [(&[u8], &[u8]); 4] = [
            (b"kitten", b"sitting"),
            (b"abaa", b"aab"),
            (b"", b"abc"),
            (
                b"longer-than-the-cutoff-string-aaaa",
                b"longer-than-the-cutoff-string-bbbb",
            ),
        ];
        for (a, b) in pairs {
            let full = d.distance(a, b);
            assert_eq!(d.distance_bounded(a, b, full), Some(full));
            assert_eq!(d.distance_bounded(a, b, f64::INFINITY), Some(full));
            if full > 0.0 {
                assert_eq!(d.distance_bounded(a, b, full - 1.0), None);
            }
            assert_eq!(d.distance_bounded(a, b, -1.0), None);
        }
    }

    #[test]
    fn prepared_query_matches_plain_distance() {
        let d = Levenshtein;
        let query = b"electroencephalography";
        let prepared = Distance::<u8>::prepare(&d, query);
        let targets: [&[u8]; 4] = [b"electro", b"encephalogram", b"", b"electroencephalography"];
        for t in targets {
            let full = d.distance(query, t);
            assert_eq!(prepared.distance_to(t), full);
            assert_eq!(prepared.distance_to_bounded(t, full), Some(full));
            if full > 0.0 {
                assert_eq!(prepared.distance_to_bounded(t, full - 1.0), None);
            }
        }
    }
}
