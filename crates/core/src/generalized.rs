//! Generalised (weighted) edit distance — and why the *naive*
//! contextual generalisation fails (paper §5).
//!
//! The generalised edit distance assigns context-independent weights to
//! operations: `w_sub(a, b)`, `w_ins(b)`, `w_del(a)`. Both Marzal–Vidal
//! and Yujian–Bo extend to this setting (paper §2.2); the contextual
//! distance does not extend naively: dividing each weighted operation
//! by the current string length lets a path **insert cheap dummy
//! symbols to inflate the string, perform the expensive substitutions
//! at a discount, and delete the dummies again** — so inserted symbols
//! no longer need to survive into `y`, Proposition 1 (internality)
//! breaks, and the alignment DP no longer computes the true infimum.
//! [`naive_contextual_generalized_is_broken`] exhibits a concrete
//! witness used by the test suite and example binaries.

use crate::metric::Distance;
use crate::Symbol;

/// Operation weights for the generalised edit distance.
///
/// Weights must be non-negative; for the distance to behave like one,
/// substitution weights should be symmetric with zero diagonal.
pub trait CostModel<S: Symbol>: Send + Sync {
    /// Weight of substituting `a` by `b`. Must be `0` when `a == b`.
    fn substitute(&self, a: S, b: S) -> f64;
    /// Weight of inserting `b`.
    fn insert(&self, b: S) -> f64;
    /// Weight of deleting `a`.
    fn delete(&self, a: S) -> f64;
}

/// The unit-cost model: every operation weighs 1 — recovering the plain
/// Levenshtein distance.
#[derive(Debug, Clone, Copy, Default)]
pub struct UnitCosts;

impl<S: Symbol> CostModel<S> for UnitCosts {
    fn substitute(&self, a: S, b: S) -> f64 {
        if a == b {
            0.0
        } else {
            1.0
        }
    }
    fn insert(&self, _: S) -> f64 {
        1.0
    }
    fn delete(&self, _: S) -> f64 {
        1.0
    }
}

/// A dense per-symbol-pair cost table over a `u8` alphabet of size `k`
/// (symbols `0..k`), the common case for experiment alphabets
/// (nucleotides, Freeman directions).
#[derive(Debug, Clone)]
pub struct TableCosts {
    k: usize,
    sub: Vec<f64>,
    ins: Vec<f64>,
    del: Vec<f64>,
}

impl TableCosts {
    /// Uniform table: substitutions cost `sub`, insertions `ins`,
    /// deletions `del`, over an alphabet of `k` symbols.
    pub fn uniform(k: usize, sub: f64, ins: f64, del: f64) -> TableCosts {
        assert!(k > 0, "alphabet must be non-empty");
        assert!(
            sub >= 0.0 && ins >= 0.0 && del >= 0.0,
            "weights must be non-negative"
        );
        let mut t = TableCosts {
            k,
            sub: vec![sub; k * k],
            ins: vec![ins; k],
            del: vec![del; k],
        };
        for a in 0..k {
            t.sub[a * k + a] = 0.0;
        }
        t
    }

    /// Set the substitution weight for the unordered pair `{a, b}`.
    pub fn set_substitution(&mut self, a: u8, b: u8, w: f64) -> &mut Self {
        assert!(w >= 0.0);
        assert!(a != b, "diagonal substitution weight is fixed at 0");
        self.sub[a as usize * self.k + b as usize] = w;
        self.sub[b as usize * self.k + a as usize] = w;
        self
    }

    /// Set the insertion and deletion weight of symbol `a`.
    pub fn set_indel(&mut self, a: u8, ins: f64, del: f64) -> &mut Self {
        assert!(ins >= 0.0 && del >= 0.0);
        self.ins[a as usize] = ins;
        self.del[a as usize] = del;
        self
    }

    /// Alphabet size.
    pub fn alphabet(&self) -> usize {
        self.k
    }
}

impl CostModel<u8> for TableCosts {
    fn substitute(&self, a: u8, b: u8) -> f64 {
        self.sub[a as usize * self.k + b as usize]
    }
    fn insert(&self, b: u8) -> f64 {
        self.ins[b as usize]
    }
    fn delete(&self, a: u8) -> f64 {
        self.del[a as usize]
    }
}

/// Generalised edit distance under `costs`: minimum total weight of an
/// alignment of `x` and `y`. Two-row DP, `O(|x|·|y|)`.
pub fn generalized_edit_distance<S: Symbol, C: CostModel<S>>(x: &[S], y: &[S], costs: &C) -> f64 {
    let (n, m) = (x.len(), y.len());
    let mut prev: Vec<f64> = Vec::with_capacity(m + 1);
    prev.push(0.0);
    for j in 1..=m {
        let w = prev[j - 1] + costs.insert(y[j - 1]);
        prev.push(w);
    }
    let mut cur = vec![0.0f64; m + 1];

    for i in 1..=n {
        cur[0] = prev[0] + costs.delete(x[i - 1]);
        for j in 1..=m {
            let sub = prev[j - 1] + costs.substitute(x[i - 1], y[j - 1]);
            let del = prev[j] + costs.delete(x[i - 1]);
            let ins = cur[j - 1] + costs.insert(y[j - 1]);
            cur[j] = sub.min(del).min(ins);
        }
        core::mem::swap(&mut prev, &mut cur);
    }
    prev[m]
}

/// Generalised Yujian–Bo-style normalisation of the weighted distance
/// (their 2007 construction): `2·GED / (W_del(x) + W_ins(y) + GED)`
/// where `W_del(x)` is the cost of deleting all of `x` and `W_ins(y)`
/// of inserting all of `y`.
pub fn generalized_yujian_bo<S: Symbol, C: CostModel<S>>(x: &[S], y: &[S], costs: &C) -> f64 {
    let ged = generalized_edit_distance(x, y, costs);
    if ged == 0.0 {
        return 0.0;
    }
    let wx: f64 = x.iter().map(|&a| costs.delete(a)).sum();
    let wy: f64 = y.iter().map(|&b| costs.insert(b)).sum();
    2.0 * ged / (wx + wy + ged)
}

/// The *naive* contextual generalisation: run the internal-path DP of
/// Algorithm 1 but charge `w_op / context_length` instead of
/// `1 / context_length`.
///
/// **This is not a distance** — kept public (under a shouting name) so
/// tests and the `metric_counterexamples` example can demonstrate the
/// paper's §5 point: a non-internal path through cheap dummy symbols
/// can undercut every internal path, so this DP does not compute the
/// infimum over all rewriting paths, and the infimum itself collapses
/// as dummy insertions get cheaper.
pub fn naive_contextual_generalized<C: CostModel<u8>>(x: &[u8], y: &[u8], costs: &C) -> f64 {
    // Internal canonical paths only: choose ni insertions (of y
    // symbols), nd deletions (of x symbols), substitutions for the
    // rest, charged contextually in Lemma 1 order. For simplicity we
    // reuse the unit-cost DP to enumerate feasible (k, ni) and charge
    // average op weights — enough to expose the failure mode without
    // pretending to be a real algorithm.
    //
    // Weight of the canonical internal path for shape (ni, ns, nd):
    //   insertions at lengths |x|+1 .. |x|+ni, each w̄_ins / length
    //   substitutions at length |x|+ni, each w̄_sub / length
    //   deletions at lengths |y|+nd .. |y|+1, each w̄_del / length
    // with w̄ the mean weight over the symbols actually touched — we
    // use uniform weights in the witness, so the mean is exact there.
    let w_ins = if y.is_empty() {
        0.0
    } else {
        y.iter().map(|&b| costs.insert(b)).sum::<f64>() / y.len() as f64
    };
    let w_del = if x.is_empty() {
        0.0
    } else {
        x.iter().map(|&a| costs.delete(a)).sum::<f64>() / x.len() as f64
    };
    let w_sub = {
        // Mean off-diagonal substitution weight across touched pairs.
        let mut total = 0.0;
        let mut cnt = 0usize;
        for &a in x {
            for &b in y {
                if a != b {
                    total += costs.substitute(a, b);
                    cnt += 1;
                }
            }
        }
        if cnt == 0 {
            0.0
        } else {
            total / cnt as f64
        }
    };

    let table = crate::contextual::exact::ContextualTable::new(x, y);
    let mut best = f64::INFINITY;
    for p in table.profile() {
        let s = p.shape;
        let peak = s.peak_len();
        let mut w = 0.0;
        for l in (s.x_len + 1)..=peak {
            w += w_ins / l as f64;
        }
        if s.substitutions > 0 {
            w += s.substitutions as f64 * w_sub / peak as f64;
        }
        for l in (s.y_len + 1)..=(s.y_len + s.deletions) {
            w += w_del / l as f64;
        }
        best = best.min(w);
    }
    if best.is_finite() {
        best
    } else {
        0.0
    }
}

/// Weight of the §5 exploit path for the naive contextual
/// generalisation: insert `pad` copies of a dummy symbol (insertion
/// weight `w_dummy`), substitute every position of `x` into `y` at the
/// inflated length, then delete the dummies.
///
/// As `pad → ∞` with `w_dummy` small, this weight drops **below** the
/// best internal-path weight, demonstrating that internality
/// (Proposition 1) fails for generalised costs.
pub fn dummy_exploit_weight(
    x_len: usize,
    subs: usize,
    w_sub: f64,
    w_dummy: f64,
    pad: usize,
) -> f64 {
    let mut w = 0.0;
    // Insert `pad` dummies: lengths x_len+1 ..= x_len+pad.
    for l in (x_len + 1)..=(x_len + pad) {
        w += w_dummy / l as f64;
    }
    // Perform the expensive substitutions at the inflated length.
    w += subs as f64 * w_sub / (x_len + pad) as f64;
    // Delete the dummies again: lengths x_len+pad ..= x_len+1.
    for l in (x_len + 1)..=(x_len + pad) {
        w += w_dummy / l as f64;
    }
    w
}

/// Returns a witness `(internal_best, exploit)` with
/// `exploit < internal_best`, proving the naive generalisation broken.
///
/// Witness: `x = "aa…a"`, `y = "bb…b"` (length `n`), substitutions
/// weigh 10, dummy symbol `c` inserts/deletes for 0.01.
pub fn naive_contextual_generalized_is_broken(n: usize, pad: usize) -> (f64, f64) {
    assert!(n > 0);
    let mut costs = TableCosts::uniform(3, 10.0, 1.0, 1.0);
    costs.set_indel(2, 0.01, 0.01); // symbol 2 = cheap dummy 'c'
    let x = vec![0u8; n];
    let y = vec![1u8; n];
    let internal = naive_contextual_generalized(&x, &y, &costs);
    let exploit = dummy_exploit_weight(n, n, 10.0, 0.01, pad);
    (internal, exploit)
}

/// The generalised edit distance as a [`Distance`] over `u8`, wrapping
/// a [`TableCosts`].
pub struct GeneralizedEditDistance {
    costs: TableCosts,
}

impl GeneralizedEditDistance {
    /// Wrap a cost table.
    pub fn new(costs: TableCosts) -> GeneralizedEditDistance {
        GeneralizedEditDistance { costs }
    }
}

impl Distance<u8> for GeneralizedEditDistance {
    fn distance(&self, a: &[u8], b: &[u8]) -> f64 {
        generalized_edit_distance(a, b, &self.costs)
    }

    fn name(&self) -> &'static str {
        "GED"
    }

    fn is_metric(&self) -> bool {
        // Metric iff the cost table is symmetric with zero diagonal and
        // satisfies its own triangle inequalities; TableCosts enforces
        // symmetry and the zero diagonal but not op-level triangles,
        // so report false conservatively.
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levenshtein::levenshtein;

    #[test]
    fn unit_costs_recover_levenshtein() {
        let pairs: [(&[u8], &[u8]); 5] = [
            (b"kitten", b"sitting"),
            (b"abaa", b"aab"),
            (b"", b"abc"),
            (b"abc", b""),
            (b"same", b"same"),
        ];
        for (a, b) in pairs {
            let g = generalized_edit_distance(a, b, &UnitCosts);
            assert_eq!(g, levenshtein(a, b) as f64, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn cheap_substitution_changes_the_optimum() {
        // Alphabet {0,1}: substituting 0<->1 costs 0.2, indels cost 1.
        let costs = TableCosts::uniform(2, 0.2, 1.0, 1.0);
        let x = [0u8, 0, 0];
        let y = [1u8, 1, 1];
        // Three cheap substitutions: 0.6, versus 6.0 all-indel.
        let g = generalized_edit_distance(&x, &y, &costs);
        assert!((g - 0.6).abs() < 1e-12);
    }

    #[test]
    fn expensive_substitution_prefers_indel() {
        let costs = TableCosts::uniform(2, 5.0, 1.0, 1.0);
        let x = [0u8];
        let y = [1u8];
        // delete + insert = 2 < substitute = 5.
        let g = generalized_edit_distance(&x, &y, &costs);
        assert!((g - 2.0).abs() < 1e-12);
    }

    #[test]
    fn asymmetric_indel_weights_respected() {
        let mut costs = TableCosts::uniform(2, 1.0, 1.0, 1.0);
        costs.set_indel(0, 0.5, 2.0); // symbol 0: cheap insert, dear delete
        let g_del = generalized_edit_distance(&[0u8], &[], &costs);
        let g_ins = generalized_edit_distance(&[], &[0u8], &costs);
        assert_eq!(g_del, 2.0);
        assert_eq!(g_ins, 0.5);
    }

    #[test]
    fn generalized_yb_zero_iff_zero_ged() {
        let costs = TableCosts::uniform(2, 1.0, 1.0, 1.0);
        assert_eq!(generalized_yujian_bo(&[0u8, 1], &[0u8, 1], &costs), 0.0);
        assert!(generalized_yujian_bo(&[0u8], &[1u8], &costs) > 0.0);
    }

    #[test]
    fn generalized_yb_unit_costs_match_plain_yb() {
        use crate::normalized::yujian_bo::yujian_bo;
        let pairs: [(&[u8], &[u8]); 3] = [(b"ab", b"ba"), (b"kitten", b"sitting"), (b"", b"xy")];
        for (a, b) in pairs {
            let g = generalized_yujian_bo(a, b, &UnitCosts);
            let p = yujian_bo(a, b);
            assert!((g - p).abs() < 1e-12);
        }
    }

    #[test]
    fn paper_section5_dummy_exploit_beats_internal_paths() {
        // The core §5 claim: with expensive substitutions and a cheap
        // dummy symbol, padding makes the non-internal path cheaper
        // than every internal path.
        let (internal, exploit) = naive_contextual_generalized_is_broken(4, 60);
        assert!(
            exploit < internal,
            "exploit {exploit} should undercut internal optimum {internal}"
        );
    }

    #[test]
    fn dummy_exploit_weight_decreases_with_padding_then_settles() {
        // More padding keeps reducing the substitution term while the
        // dummy round-trips add ~2·w_dummy·ln factor — for small
        // w_dummy the curve is decreasing over a long prefix.
        let w10 = dummy_exploit_weight(4, 4, 10.0, 0.01, 10);
        let w50 = dummy_exploit_weight(4, 4, 10.0, 0.01, 50);
        assert!(w50 < w10);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weights_rejected() {
        TableCosts::uniform(2, -1.0, 1.0, 1.0);
    }

    #[test]
    fn table_costs_accessors() {
        let mut t = TableCosts::uniform(4, 2.0, 1.0, 1.5);
        t.set_substitution(1, 3, 0.25);
        assert_eq!(t.substitute(1, 3), 0.25);
        assert_eq!(t.substitute(3, 1), 0.25);
        assert_eq!(t.substitute(2, 2), 0.0);
        assert_eq!(t.insert(0), 1.0);
        assert_eq!(t.delete(0), 1.5);
        assert_eq!(t.alphabet(), 4);
    }
}
