//! Brute-force oracles: shortest rewriting paths found by explicit
//! search over string space.
//!
//! These are deliberately naive — exponential-state Dijkstra/BFS over
//! actual strings — and exist purely to validate the dynamic programs
//! on small inputs with **zero shared code**: they know nothing about
//! internality (Proposition 1), canonical operation order (Lemma 1) or
//! the closed weight formula; they just explore `u → v` rewriting steps
//! and accumulate exact rational costs.
//!
//! State-space bound: by the paper's Theorem 1 (point 1), optimal paths
//! never visit strings longer than `|x| + |y|`, so the search is
//! complete once capped at that length.
//!
//! Alphabet: for unit costs, inserting or substituting a symbol that
//! occurs in neither `x` nor `y` can always be replaced by a target
//! symbol without changing any cost, so restricting to
//! `symbols(x) ∪ symbols(y)` preserves the optimum.

use crate::ratio::Ratio;
use crate::Symbol;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};
use std::hash::Hash;

/// Collect the working alphabet for the oracle searches.
fn alphabet<S: Symbol + Hash>(x: &[S], y: &[S]) -> Vec<S> {
    let mut set: HashSet<S> = HashSet::with_capacity(x.len() + y.len());
    let mut out = Vec::new();
    for &s in x.iter().chain(y) {
        if set.insert(s) {
            out.push(s);
        }
    }
    out
}

/// All strings reachable from `s` in one elementary operation, capped
/// at `max_len`, paired with the exact contextual cost of the step.
fn neighbours<S: Symbol + Hash>(s: &[S], sigma: &[S], max_len: usize) -> Vec<(Vec<S>, Ratio)> {
    let mut out = Vec::new();
    let n = s.len();
    // Deletions: cost 1/n.
    if n > 0 {
        let c = Ratio::recip_of(n as i128);
        for pos in 0..n {
            let mut t = Vec::with_capacity(n - 1);
            t.extend_from_slice(&s[..pos]);
            t.extend_from_slice(&s[pos + 1..]);
            out.push((t, c));
        }
    }
    // Substitutions: cost 1/n.
    if n > 0 {
        let c = Ratio::recip_of(n as i128);
        for pos in 0..n {
            for &a in sigma {
                if a != s[pos] {
                    let mut t = s.to_vec();
                    t[pos] = a;
                    out.push((t, c));
                }
            }
        }
    }
    // Insertions: cost 1/(n+1).
    if n < max_len {
        let c = Ratio::recip_of(n as i128 + 1);
        for pos in 0..=n {
            for &a in sigma {
                let mut t = Vec::with_capacity(n + 1);
                t.extend_from_slice(&s[..pos]);
                t.push(a);
                t.extend_from_slice(&s[pos..]);
                out.push((t, c));
            }
        }
    }
    out
}

/// Exact contextual distance by Dijkstra over string space, as a
/// rational number. Exponential — intended for `|x| + |y| ≲ 8` in
/// tests.
pub fn brute_contextual_exact<S: Symbol + Hash + Ord>(x: &[S], y: &[S]) -> Ratio {
    if x == y {
        return Ratio::ZERO;
    }
    let sigma = alphabet(x, y);
    let max_len = x.len() + y.len();
    let target: Vec<S> = y.to_vec();

    let mut dist: HashMap<Vec<S>, Ratio> = HashMap::new();
    let mut heap: BinaryHeap<(Reverse<Ratio>, Vec<S>)> = BinaryHeap::new();
    dist.insert(x.to_vec(), Ratio::ZERO);
    heap.push((Reverse(Ratio::ZERO), x.to_vec()));

    while let Some((Reverse(d), s)) = heap.pop() {
        if let Some(&best) = dist.get(&s) {
            if d > best {
                continue; // stale heap entry
            }
        }
        if s == target {
            return d;
        }
        for (t, c) in neighbours(&s, &sigma, max_len) {
            let nd = d + c;
            match dist.get(&t) {
                Some(&old) if old <= nd => {}
                _ => {
                    dist.insert(t.clone(), nd);
                    heap.push((Reverse(nd), t));
                }
            }
        }
    }
    unreachable!("target is always reachable (delete all + insert all)")
}

/// Exact contextual distance by brute force, as `f64`.
pub fn brute_contextual<S: Symbol + Hash + Ord>(x: &[S], y: &[S]) -> f64 {
    brute_contextual_exact(x, y).to_f64()
}

/// **Generalised contextual distance by Dijkstra** — the sound (if
/// exponential) reference for the paper's §5 open problem.
///
/// Charges `w_op(symbols) / max(|u|, |v|)` per step, searching over
/// *all* rewriting paths through strings of length at most `max_len`
/// over `symbols(x) ∪ symbols(y) ∪ extra_symbols`. Unlike the naive
/// internal-path DP ([`crate::generalized::naive_contextual_generalized`])
/// this explores non-internal paths, so it witnesses the dummy-symbol
/// exploit: pass the cheap dummy via `extra_symbols` and a larger
/// `max_len`, and the returned value drops below every internal path.
///
/// With [`crate::generalized::UnitCosts`], `extra_symbols = []` and
/// `max_len = |x| + |y|` this coincides with the (unit) contextual
/// distance — asserted by tests.
///
/// Note: for generalised costs the infimum over unbounded path
/// lengths may require intermediate strings *longer* than
/// `|x| + |y|`; `max_len` is the caller's truncation of that search,
/// so the result is an upper bound of the true infimum that is exact
/// once `max_len` covers the optimal padding.
pub fn brute_contextual_generalized<C: crate::generalized::CostModel<u8>>(
    x: &[u8],
    y: &[u8],
    costs: &C,
    extra_symbols: &[u8],
    max_len: usize,
) -> f64 {
    if x == y {
        return 0.0;
    }
    let mut sigma = alphabet(x, y);
    for &s in extra_symbols {
        if !sigma.contains(&s) {
            sigma.push(s);
        }
    }
    let max_len = max_len.max(x.len()).max(y.len());
    let target: Vec<u8> = y.to_vec();

    // f64 priorities ordered via total_cmp (no NaNs are produced:
    // weights are finite non-negative and lengths >= 1 at every op).
    #[derive(PartialEq)]
    struct P(f64);
    impl Eq for P {}
    impl PartialOrd for P {
        // lint:allow(float-compare) — forwards to Ord::cmp, which is
        // total_cmp: this impl is total, never NaN-dependent.
        fn partial_cmp(&self, other: &P) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for P {
        fn cmp(&self, other: &P) -> std::cmp::Ordering {
            self.0.total_cmp(&other.0)
        }
    }

    let mut dist: HashMap<Vec<u8>, f64> = HashMap::new();
    let mut heap: BinaryHeap<(Reverse<P>, Vec<u8>)> = BinaryHeap::new();
    dist.insert(x.to_vec(), 0.0);
    heap.push((Reverse(P(0.0)), x.to_vec()));

    while let Some((Reverse(P(d)), s)) = heap.pop() {
        if let Some(&best) = dist.get(&s) {
            if d > best {
                continue;
            }
        }
        if s == target {
            return d;
        }
        let n = s.len();
        let push = |t: Vec<u8>,
                    c: f64,
                    dist: &mut HashMap<Vec<u8>, f64>,
                    heap: &mut BinaryHeap<(Reverse<P>, Vec<u8>)>| {
            let nd = d + c;
            match dist.get(&t) {
                Some(&old) if old <= nd => {}
                _ => {
                    dist.insert(t.clone(), nd);
                    heap.push((Reverse(P(nd)), t));
                }
            }
        };
        // Deletions and substitutions: divide by |u| = n.
        if n > 0 {
            for pos in 0..n {
                let mut t = Vec::with_capacity(n - 1);
                t.extend_from_slice(&s[..pos]);
                t.extend_from_slice(&s[pos + 1..]);
                push(t, costs.delete(s[pos]) / n as f64, &mut dist, &mut heap);
                for &a in &sigma {
                    if a != s[pos] {
                        let mut t = s.to_vec();
                        t[pos] = a;
                        push(
                            t,
                            costs.substitute(s[pos], a) / n as f64,
                            &mut dist,
                            &mut heap,
                        );
                    }
                }
            }
        }
        // Insertions: divide by |v| = n + 1.
        if n < max_len {
            for pos in 0..=n {
                for &a in &sigma {
                    let mut t = Vec::with_capacity(n + 1);
                    t.extend_from_slice(&s[..pos]);
                    t.push(a);
                    t.extend_from_slice(&s[pos..]);
                    push(t, costs.insert(a) / (n as f64 + 1.0), &mut dist, &mut heap);
                }
            }
        }
    }
    unreachable!("target is always reachable (delete all + insert all)")
}

/// Levenshtein distance by BFS over string space (unit costs, so BFS
/// layers are exact). Exponential — tests only.
pub fn brute_levenshtein<S: Symbol + Hash>(x: &[S], y: &[S]) -> usize {
    if x == y {
        return 0;
    }
    let sigma = alphabet(x, y);
    let max_len = x.len() + y.len();
    let target: Vec<S> = y.to_vec();

    let mut seen: HashSet<Vec<S>> = HashSet::new();
    let mut queue: VecDeque<(Vec<S>, usize)> = VecDeque::new();
    seen.insert(x.to_vec());
    queue.push_back((x.to_vec(), 0));

    while let Some((s, d)) = queue.pop_front() {
        for (t, _) in neighbours(&s, &sigma, max_len) {
            if t == target {
                return d + 1;
            }
            if seen.insert(t.clone()) {
                queue.push_back((t, d + 1));
            }
        }
    }
    unreachable!("target is always reachable")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contextual::exact::contextual_distance;
    use crate::levenshtein::levenshtein;

    #[test]
    fn brute_levenshtein_matches_dp_on_tiny_strings() {
        let words: [&[u8]; 6] = [b"", b"a", b"ab", b"ba", b"aab", b"bb"];
        for &a in &words {
            for &b in &words {
                assert_eq!(brute_levenshtein(a, b), levenshtein(a, b), "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn brute_contextual_matches_dp_on_tiny_strings() {
        let words: [&[u8]; 6] = [b"", b"a", b"ab", b"ba", b"aab", b"abb"];
        for &a in &words {
            for &b in &words {
                let brute = brute_contextual(a, b);
                let dp = contextual_distance(a, b);
                assert!(
                    (brute - dp).abs() < 1e-12,
                    "{a:?} vs {b:?}: brute {brute} dp {dp}"
                );
            }
        }
    }

    #[test]
    fn brute_contextual_example_4_exact_rational() {
        let d = brute_contextual_exact(b"ababa", b"baab");
        assert_eq!(d, Ratio::new(8, 15));
    }

    #[test]
    fn brute_contextual_zero_iff_equal() {
        assert!(brute_contextual_exact(b"ab", b"ab").is_zero());
        assert!(!brute_contextual_exact(b"ab", b"ba").is_zero());
    }

    #[test]
    fn generalized_brute_with_unit_costs_matches_contextual_dp() {
        use crate::generalized::UnitCosts;
        let words: [&[u8]; 5] = [b"", b"a", b"ab", b"ba", b"abb"];
        for &a in &words {
            for &b in &words {
                let brute = brute_contextual_generalized(a, b, &UnitCosts, &[], a.len() + b.len());
                let dp = contextual_distance(a, b);
                assert!(
                    (brute - dp).abs() < 1e-12,
                    "{a:?} vs {b:?}: {brute} vs {dp}"
                );
            }
        }
    }

    #[test]
    fn generalized_brute_finds_the_dummy_exploit() {
        // §5: substitutions cost 10, dummy symbol 2 inserts/deletes
        // for 0.01. Dijkstra (which explores non-internal paths) must
        // beat the best internal path once allowed to pad.
        use crate::generalized::{naive_contextual_generalized, TableCosts};
        let mut costs = TableCosts::uniform(3, 10.0, 1.0, 1.0);
        costs.set_indel(2, 0.01, 0.01);
        let x = [0u8, 0];
        let y = [1u8, 1];
        let internal = naive_contextual_generalized(&x, &y, &costs);
        // Cap the search at length 12 (pad 10) to keep it fast.
        let dijkstra = brute_contextual_generalized(&x, &y, &costs, &[2], 12);
        assert!(
            dijkstra < internal - 1e-9,
            "dijkstra {dijkstra} should beat internal {internal}"
        );
        // And more padding can only help (monotone in max_len).
        let tighter = brute_contextual_generalized(&x, &y, &costs, &[2], 8);
        assert!(dijkstra <= tighter + 1e-12);
    }

    #[test]
    fn neighbours_respect_length_cap() {
        let sigma = [b'a', b'b'];
        let ns = neighbours(b"ab", &sigma, 2);
        assert!(ns.iter().all(|(t, _)| t.len() <= 2));
        // With cap 3, insertions appear.
        let ns3 = neighbours(b"ab", &sigma, 3);
        assert!(ns3.iter().any(|(t, _)| t.len() == 3));
    }
}
