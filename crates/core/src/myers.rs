//! Myers' bit-parallel Levenshtein engine.
//!
//! Myers (J. ACM 46(3), 1999) observed that one column of the
//! Wagner–Fischer dynamic program can be encoded in two bit-vectors —
//! the positions where the value increases (`Pv`) or decreases (`Mv`)
//! going down the column, every other position being flat — and that
//! the transition to the next column is a constant number of word-wide
//! boolean operations plus one addition whose carry chain performs the
//! column's min-propagation. The result is a **64× word-parallel**
//! edit-distance kernel:
//!
//! * [`myers`] — drop-in equivalent of
//!   [`crate::levenshtein::levenshtein`]: single-word fast path when
//!   the pattern fits in 64 bits, blocked multi-word version beyond
//!   (Hyyrö's block formulation, the same recurrence edlib and
//!   Hyyrö's own implementations use);
//! * [`myers_bounded`] — early-exit variant equivalent to
//!   [`crate::levenshtein::levenshtein_bounded`]: abandons as soon as
//!   the running score provably cannot return below the bound;
//! * [`MyersPattern`] — the batch-search workhorse: precomputes the
//!   pattern's symbol bitmaps (`Peq`) **once per query string** and
//!   reuses them against every database string, which removes the
//!   dominant per-pair setup cost from LAESA/AESA/linear scans.
//!
//! Symbols are generic ([`crate::Symbol`] only requires `Copy + Eq`),
//! so `Peq` is stored per *distinct symbol of the pattern* and looked
//! up by linear scan — the paper's alphabets (ASCII letters, 4
//! nucleotides, 8 Freeman directions) are small enough that this
//! beats hashing, and symbols absent from the pattern short-circuit
//! to an all-zero row.

use crate::Symbol;

const WORD: usize = 64;

/// Per-symbol match bitmaps (`Peq`) of a fixed pattern string.
///
/// `masks[k * words + w]` has bit `i` set iff
/// `pattern[w * 64 + i] == alphabet[k]`.
#[derive(Debug, Clone)]
pub struct PatternBits<S> {
    len: usize,
    words: usize,
    alphabet: Vec<S>,
    masks: Vec<u64>,
}

impl<S: Symbol> PatternBits<S> {
    /// Precompute the bitmaps for `pattern`.
    pub fn new(pattern: &[S]) -> PatternBits<S> {
        let words = pattern.len().div_ceil(WORD).max(1);
        let mut alphabet: Vec<S> = Vec::new();
        let mut masks: Vec<u64> = Vec::new();
        for (i, &s) in pattern.iter().enumerate() {
            let k = match alphabet.iter().position(|&a| a == s) {
                Some(k) => k,
                None => {
                    alphabet.push(s);
                    masks.resize(masks.len() + words, 0);
                    alphabet.len() - 1
                }
            };
            masks[k * words + i / WORD] |= 1u64 << (i % WORD);
        }
        PatternBits {
            len: pattern.len(),
            words,
            alphabet,
            masks,
        }
    }

    /// Pattern length in symbols.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the pattern is the empty string.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of 64-bit words per bitmap row.
    pub fn words(&self) -> usize {
        self.words
    }

    /// The bitmap row for `s`, or `None` when `s` does not occur in
    /// the pattern (an all-zero row).
    #[inline]
    fn row(&self, s: S) -> Option<&[u64]> {
        self.alphabet
            .iter()
            .position(|&a| a == s)
            .map(|k| &self.masks[k * self.words..(k + 1) * self.words])
    }

    /// First bitmap word for `s` (single-word fast path).
    #[inline]
    fn word0(&self, s: S) -> u64 {
        match self.alphabet.iter().position(|&a| a == s) {
            Some(k) => self.masks[k * self.words],
            None => 0,
        }
    }
}

/// One Myers column transition for a 64-row block.
///
/// `hin`/`hout` are the horizontal deltas entering the block's bottom
/// row and leaving its top row (each −1, 0 or +1). Returns
/// `(hout, ph, mh)` with `ph`/`mh` the **pre-shift** horizontal delta
/// masks, whose bit `i` describes row `i + 1` of the block — the
/// caller reads the score delta of a partial final block from them.
#[inline]
fn advance_block(pv: &mut u64, mv: &mut u64, eq: u64, hin: i32) -> (i32, u64, u64) {
    let hin_neg = u64::from(hin < 0);
    let mut eq = eq;
    let xv = eq | *mv;
    eq |= hin_neg;
    let xh = (((eq & *pv).wrapping_add(*pv)) ^ *pv) | eq;
    let ph = *mv | !(xh | *pv);
    let mh = *pv & xh;
    let hout = ((ph >> (WORD - 1)) & 1) as i32 - ((mh >> (WORD - 1)) & 1) as i32;
    let ph_shift = (ph << 1) | u64::from(hin > 0);
    let mh_shift = (mh << 1) | hin_neg;
    *pv = mh_shift | !(xv | ph_shift);
    *mv = ph_shift & xv;
    (hout, ph, mh)
}

/// Single-word kernel: pattern length `1..=64`.
fn run_single<S: Symbol>(bits: &PatternBits<S>, text: &[S]) -> usize {
    let m = bits.len;
    debug_assert!((1..=WORD).contains(&m));
    let hbit = 1u64 << (m - 1);
    let mut pv = !0u64;
    let mut mv = 0u64;
    let mut score = m;
    for &c in text {
        let eq = bits.word0(c);
        let xv = eq | mv;
        let xh = (((eq & pv).wrapping_add(pv)) ^ pv) | eq;
        let ph = mv | !(xh | pv);
        let mh = pv & xh;
        if ph & hbit != 0 {
            score += 1;
        } else if mh & hbit != 0 {
            score -= 1;
        }
        let ph = (ph << 1) | 1;
        let mh = mh << 1;
        pv = mh | !(xv | ph);
        mv = ph & xv;
    }
    score
}

/// Blocked kernel: any pattern length, `⌈m/64⌉` words per column.
///
/// With `bound = Some(b)`, abandons and returns `None` as soon as the
/// score cannot come back to `b` within the remaining columns (the
/// score changes by at most 1 per column).
///
/// The column vectors live in caller-supplied scratch so a prepared
/// pattern streaming against a whole database (every pivot row of a
/// LAESA query, every candidate of a linear scan) allocates them
/// once, not per pair.
fn run_blocked<S: Symbol>(
    bits: &PatternBits<S>,
    text: &[S],
    bound: Option<usize>,
    scratch: &mut BlockScratch,
) -> Option<usize> {
    let m = bits.len;
    let blocks = bits.words;
    let last = blocks - 1;
    let hbit_shift = (m - 1) % WORD;
    let BlockScratch { pv, mv } = scratch;
    pv.clear();
    pv.resize(blocks, !0u64);
    mv.clear();
    mv.resize(blocks, 0u64);
    let mut score = m;
    for (j, &c) in text.iter().enumerate() {
        let row = bits.row(c);
        let mut hin = 1i32;
        for b in 0..blocks {
            let eq = row.map_or(0, |r| r[b]);
            let (hout, ph, mh) = advance_block(&mut pv[b], &mut mv[b], eq, hin);
            if b == last {
                score += ((ph >> hbit_shift) & 1) as usize;
                score -= ((mh >> hbit_shift) & 1) as usize;
            }
            hin = hout;
        }
        if let Some(b) = bound {
            let remaining = text.len() - (j + 1);
            if score > b + remaining {
                return None;
            }
        }
    }
    match bound {
        Some(b) if score > b => None,
        _ => Some(score),
    }
}

/// Reusable column vectors of the blocked kernel.
#[derive(Debug, Clone, Default)]
struct BlockScratch {
    pv: Vec<u64>,
    mv: Vec<u64>,
}

/// A query string prepared for repeated Myers comparisons.
///
/// Build once per query, then compare against a whole database: the
/// `Peq` bitmaps are computed a single time, which is where batch
/// search wins over calling [`myers`] per pair. For patterns beyond
/// one machine word the blocked kernel's column vectors are also kept
/// as per-pattern scratch (behind a `RefCell`, so `MyersPattern` is
/// `Send` but deliberately not `Sync` in effect — one pattern per
/// worker, the same contract as every
/// [`crate::metric::PreparedQuery`]), making a whole scan
/// allocation-free after the first comparison.
///
/// ```
/// use cned_core::myers::MyersPattern;
///
/// let query = MyersPattern::new(b"kitten");
/// assert_eq!(query.distance(b"sitting"), 3);
/// assert_eq!(query.distance_bounded(b"sitting", 3), Some(3));
/// assert_eq!(query.distance_bounded(b"sitting", 2), None);
/// ```
#[derive(Debug, Clone)]
pub struct MyersPattern<S> {
    bits: PatternBits<S>,
    scratch: core::cell::RefCell<BlockScratch>,
}

impl<S: Symbol> MyersPattern<S> {
    /// Precompute the bitmaps for `query`.
    pub fn new(query: &[S]) -> MyersPattern<S> {
        MyersPattern {
            bits: PatternBits::new(query),
            scratch: core::cell::RefCell::new(BlockScratch::default()),
        }
    }

    /// Length of the prepared query.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the prepared query is the empty string.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Levenshtein distance between the prepared query and `text`.
    pub fn distance(&self, text: &[S]) -> usize {
        let m = self.bits.len;
        if m == 0 {
            return text.len();
        }
        if text.is_empty() {
            return m;
        }
        if self.bits.words == 1 {
            run_single(&self.bits, text)
        } else {
            run_blocked(&self.bits, text, None, &mut self.scratch.borrow_mut())
                .expect("unbounded run always completes")
        }
    }

    /// Bounded distance: `Some(d)` iff `d <= bound`.
    pub fn distance_bounded(&self, text: &[S], bound: usize) -> Option<usize> {
        let m = self.bits.len;
        let n = text.len();
        if n.abs_diff(m) > bound {
            return None;
        }
        if bound >= n.max(m) {
            // The bound can never bite: run unbounded (also dodges any
            // `bound + remaining` overflow for huge bounds).
            return Some(self.distance(text));
        }
        if m == 0 {
            return Some(n); // n <= bound via the length check above
        }
        run_blocked(
            &self.bits,
            text,
            Some(bound),
            &mut self.scratch.borrow_mut(),
        )
    }
}

/// Levenshtein distance via the bit-parallel engine.
///
/// Picks the shorter string as the pattern so the column height (and
/// word count) is minimal. Equivalent to
/// [`crate::levenshtein::levenshtein`] on every input.
///
/// ```
/// use cned_core::myers::myers;
/// assert_eq!(myers(b"abaa", b"aab"), 2);
/// assert_eq!(myers(b"kitten", b"sitting"), 3);
/// ```
pub fn myers<S: Symbol>(x: &[S], y: &[S]) -> usize {
    let (short, long) = if x.len() <= y.len() { (x, y) } else { (y, x) };
    if short.is_empty() {
        return long.len();
    }
    MyersPattern::new(short).distance(long)
}

/// Bounded Levenshtein distance via the bit-parallel engine:
/// `Some(d)` iff `d <= bound`. Equivalent to
/// [`crate::levenshtein::levenshtein_bounded`] on every input.
pub fn myers_bounded<S: Symbol>(x: &[S], y: &[S], bound: usize) -> Option<usize> {
    let (short, long) = if x.len() <= y.len() { (x, y) } else { (y, x) };
    if long.len() - short.len() > bound {
        return None;
    }
    if short.is_empty() {
        return Some(long.len());
    }
    MyersPattern::new(short).distance_bounded(long, bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levenshtein::{levenshtein_bounded, wagner_fischer};

    #[test]
    fn agrees_on_classic_pairs() {
        let cases: [(&[u8], &[u8]); 7] = [
            (b"kitten", b"sitting"),
            (b"abaa", b"aab"),
            (b"abaa", b"baab"),
            (b"", b"abc"),
            (b"abc", b""),
            (b"same", b"same"),
            (b"abcdef", b"ghijkl"),
        ];
        for (a, b) in cases {
            assert_eq!(myers(a, b), wagner_fischer(a, b), "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn single_word_boundary_lengths() {
        // Exercise pattern lengths 63, 64, 65 — the word boundary.
        for m in [1usize, 2, 63, 64, 65, 127, 128, 129, 200] {
            let x: Vec<u8> = (0..m).map(|i| (i % 7) as u8).collect();
            let y: Vec<u8> = (0..m + 13).map(|i| (i % 5) as u8).collect();
            assert_eq!(myers(&x, &y), wagner_fischer(&x, &y), "m = {m}");
        }
    }

    #[test]
    fn deep_match_run_crosses_block_carries() {
        // Long identical prefixes/suffixes stress the inter-block
        // horizontal carries.
        let x: Vec<u8> = std::iter::repeat_n(b'a', 180).collect();
        let mut y = x.clone();
        y[70] = b'b';
        y.insert(130, b'c');
        assert_eq!(myers(&x, &y), 2);
        assert_eq!(myers(&x, &x), 0);
    }

    #[test]
    fn bounded_agrees_with_scalar_banded() {
        let x: Vec<u8> = (0..150).map(|i| (i % 4) as u8).collect();
        let y: Vec<u8> = (0..140).map(|i| ((i + 1) % 4) as u8).collect();
        let d = wagner_fischer(&x, &y);
        for bound in [0, 1, d.saturating_sub(1), d, d + 1, d + 50, usize::MAX] {
            assert_eq!(
                myers_bounded(&x, &y, bound),
                levenshtein_bounded(&x, &y, bound),
                "bound {bound}"
            );
        }
    }

    #[test]
    fn bounded_empty_and_tiny() {
        assert_eq!(myers_bounded(b"", b"abc", 2), None);
        assert_eq!(myers_bounded(b"", b"abc", 3), Some(3));
        assert_eq!(myers_bounded(b"a", b"a", 0), Some(0));
        assert_eq!(myers_bounded(b"a", b"b", 0), None);
        assert_eq!(myers_bounded::<u8>(b"", b"", 0), Some(0));
    }

    #[test]
    fn pattern_reuse_matches_one_shot() {
        let query = b"abracadabra";
        let prepared = MyersPattern::new(query);
        let db: [&[u8]; 5] = [b"abracadabra", b"cadabra", b"abrakadabra", b"", b"xyz"];
        for item in db {
            assert_eq!(prepared.distance(item), wagner_fischer(query, item));
            let d = wagner_fischer(query, item);
            assert_eq!(prepared.distance_bounded(item, d), Some(d));
            if d > 0 {
                assert_eq!(prepared.distance_bounded(item, d - 1), None);
            }
        }
    }

    #[test]
    fn non_byte_symbols_work() {
        let x: Vec<u32> = (0..100).collect();
        let y: Vec<u32> = (0..100).map(|i| i * 2).collect();
        assert_eq!(myers(&x, &y), wagner_fischer(&x, &y));
    }

    #[test]
    fn symbols_absent_from_pattern_mismatch_everywhere() {
        let x = vec![1u8; 70];
        let y = vec![2u8; 70];
        assert_eq!(myers(&x, &y), 70);
    }
}
