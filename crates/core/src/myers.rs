//! Myers' bit-parallel Levenshtein engine.
//!
//! Myers (J. ACM 46(3), 1999) observed that one column of the
//! Wagner–Fischer dynamic program can be encoded in two bit-vectors —
//! the positions where the value increases (`Pv`) or decreases (`Mv`)
//! going down the column, every other position being flat — and that
//! the transition to the next column is a constant number of word-wide
//! boolean operations plus one addition whose carry chain performs the
//! column's min-propagation. The result is a **64× word-parallel**
//! edit-distance kernel:
//!
//! * [`myers`] — drop-in equivalent of
//!   [`crate::levenshtein::levenshtein`]: single-word fast path when
//!   the pattern fits in 64 bits, blocked multi-word version beyond
//!   (Hyyrö's block formulation, the same recurrence edlib and
//!   Hyyrö's own implementations use);
//! * [`myers_bounded`] — early-exit variant equivalent to
//!   [`crate::levenshtein::levenshtein_bounded`]: abandons as soon as
//!   the running score provably cannot return below the bound;
//! * [`MyersPattern`] — the batch-search workhorse: precomputes the
//!   pattern's symbol bitmaps (`Peq`) **once per query string** and
//!   reuses them against every database string, which removes the
//!   dominant per-pair setup cost from LAESA/AESA/linear scans.
//!
//! Symbols are generic ([`crate::Symbol`] only requires `Copy + Eq`),
//! so `Peq` is stored per *distinct symbol of the pattern* and looked
//! up by linear scan — the paper's alphabets (ASCII letters, 4
//! nucleotides, 8 Freeman directions) are small enough that this
//! beats hashing, and symbols absent from the pattern short-circuit
//! to an all-zero row.

use crate::Symbol;

const WORD: usize = 64;

/// Per-symbol match bitmaps (`Peq`) of a fixed pattern string.
///
/// `masks[k * words + w]` has bit `i` set iff
/// `pattern[w * 64 + i] == alphabet[k]`.
#[derive(Debug, Clone)]
pub struct PatternBits<S> {
    len: usize,
    words: usize,
    alphabet: Vec<S>,
    masks: Vec<u64>,
    /// O(1) symbol → alphabet-id table for single-byte symbol types
    /// (256 entries, `u32::MAX` = absent); empty for wider types,
    /// which fall back to the linear alphabet scan. Every per-column
    /// `Eq` lookup funnels through this — the linear scan is the
    /// dominant cost of short-string scans otherwise.
    byte_ids: Vec<u32>,
    /// One-load `Eq` table for single-byte symbols:
    /// `byte_masks[b * words + w]` is bitmap word `w` of byte `b`,
    /// all-zero when the byte is absent from the pattern. Collapses
    /// the byte → id → mask double indirection of
    /// [`PatternBits::word0`] / [`PatternBits::row`] into a single
    /// dependent load, and makes absent symbols a plain zero row
    /// instead of an `Option` branch — the `Eq` fill is the serial
    /// part of every lane sweep, so it sits on the critical path of
    /// the whole batch layer. Empty for wider symbol types.
    byte_masks: Vec<u64>,
}

/// Read the byte of a single-byte symbol. Sound only when
/// `size_of::<S>() == 1` (checked by every caller): a `Copy` value of
/// size 1 has no padding. For such types `Eq` is assumed to coincide
/// with byte identity (true for `u8` and fieldless `repr(u8)` enums,
/// the supported 1-byte symbol shapes).
#[inline]
fn symbol_byte<S: Symbol>(s: S) -> usize {
    debug_assert_eq!(core::mem::size_of::<S>(), 1);
    // SAFETY: every caller checks size_of::<S>() == 1 first; a Copy
    // value of size 1 has no padding, so reading its single byte
    // through a u8 pointer reads initialised memory.
    (unsafe { *core::ptr::from_ref(&s).cast::<u8>() }) as usize
}

impl<S: Symbol> PatternBits<S> {
    /// Precompute the bitmaps for `pattern`.
    pub fn new(pattern: &[S]) -> PatternBits<S> {
        let words = pattern.len().div_ceil(WORD).max(1);
        let mut alphabet: Vec<S> = Vec::new();
        let mut masks: Vec<u64> = Vec::new();
        for (i, &s) in pattern.iter().enumerate() {
            let k = match alphabet.iter().position(|&a| a == s) {
                Some(k) => k,
                None => {
                    alphabet.push(s);
                    masks.resize(masks.len() + words, 0);
                    alphabet.len() - 1
                }
            };
            masks[k * words + i / WORD] |= 1u64 << (i % WORD);
        }
        let byte_ids = if core::mem::size_of::<S>() == 1 {
            let mut table = vec![u32::MAX; 256];
            for (k, &a) in alphabet.iter().enumerate() {
                table[symbol_byte(a)] = k as u32;
            }
            table
        } else {
            Vec::new()
        };
        let byte_masks = if byte_ids.is_empty() {
            Vec::new()
        } else {
            let mut table = vec![0u64; 256 * words];
            for (b, &id) in byte_ids.iter().enumerate() {
                if id != u32::MAX {
                    let k = id as usize;
                    table[b * words..(b + 1) * words]
                        .copy_from_slice(&masks[k * words..(k + 1) * words]);
                }
            }
            table
        };
        PatternBits {
            len: pattern.len(),
            words,
            alphabet,
            masks,
            byte_ids,
            byte_masks,
        }
    }

    /// Alphabet index of `s`, or `None` when it does not occur in the
    /// pattern.
    #[inline]
    fn id_of(&self, s: S) -> Option<usize> {
        if self.byte_ids.is_empty() {
            self.alphabet.iter().position(|&a| a == s)
        } else {
            let id = self.byte_ids[symbol_byte(s)];
            (id != u32::MAX).then_some(id as usize)
        }
    }

    /// Pattern length in symbols.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the pattern is the empty string.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of 64-bit words per bitmap row.
    pub fn words(&self) -> usize {
        self.words
    }

    /// The bitmap row for `s`, or `None` when `s` does not occur in
    /// the pattern (an all-zero row).
    #[inline]
    fn row(&self, s: S) -> Option<&[u64]> {
        self.id_of(s)
            .map(|k| &self.masks[k * self.words..(k + 1) * self.words])
    }

    /// First bitmap word for `s` (single-word fast path).
    #[inline]
    fn word0(&self, s: S) -> u64 {
        if let Some(table) = self.byte_table() {
            return table[symbol_byte(s)];
        }
        match self.id_of(s) {
            Some(k) => self.masks[k * self.words],
            None => 0,
        }
    }

    /// The one-load byte → `Eq` table, when this pattern qualifies
    /// (single word, single-byte symbols).
    #[inline]
    fn byte_table(&self) -> Option<&[u64; 256]> {
        self.byte_masks.as_slice().try_into().ok()
    }

    /// The byte → `Eq` row table (`256 × words`, zero rows for absent
    /// bytes), when symbols are single-byte.
    #[inline]
    fn byte_rows(&self) -> Option<&[u64]> {
        (!self.byte_masks.is_empty()).then_some(self.byte_masks.as_slice())
    }

    /// Alphabet index of `s` as a `u64` id, or
    /// [`crate::lanes::NO_SYMBOL`] when `s` does not occur in the
    /// pattern. Two symbols are equal iff their ids are equal (the
    /// sentinel only ever labels *target* symbols, and a pattern
    /// symbol always has a real id), which is what lets the lane
    /// kernels compare generic symbols as plain integers.
    #[inline]
    pub(crate) fn symbol_id(&self, s: S) -> u64 {
        match self.id_of(s) {
            Some(k) => k as u64,
            None => crate::lanes::NO_SYMBOL,
        }
    }
}

/// One Myers column transition for a 64-row block.
///
/// `hin`/`hout` are the horizontal deltas entering the block's bottom
/// row and leaving its top row (each −1, 0 or +1). Returns
/// `(hout, ph, mh)` with `ph`/`mh` the **pre-shift** horizontal delta
/// masks, whose bit `i` describes row `i + 1` of the block — the
/// caller reads the score delta of a partial final block from them.
#[inline]
fn advance_block(pv: &mut u64, mv: &mut u64, eq: u64, hin: i32) -> (i32, u64, u64) {
    let hin_neg = u64::from(hin < 0);
    let mut eq = eq;
    let xv = eq | *mv;
    eq |= hin_neg;
    let xh = (((eq & *pv).wrapping_add(*pv)) ^ *pv) | eq;
    let ph = *mv | !(xh | *pv);
    let mh = *pv & xh;
    let hout = ((ph >> (WORD - 1)) & 1) as i32 - ((mh >> (WORD - 1)) & 1) as i32;
    let ph_shift = (ph << 1) | u64::from(hin > 0);
    let mh_shift = (mh << 1) | hin_neg;
    *pv = mh_shift | !(xv | ph_shift);
    *mv = ph_shift & xv;
    (hout, ph, mh)
}

/// Single-word kernel: pattern length `1..=64`.
fn run_single<S: Symbol>(bits: &PatternBits<S>, text: &[S]) -> usize {
    let m = bits.len;
    debug_assert!((1..=WORD).contains(&m));
    let hbit = 1u64 << (m - 1);
    let mut pv = !0u64;
    let mut mv = 0u64;
    let mut score = m;
    #[inline(always)]
    fn step(eq: u64, pv: &mut u64, mv: &mut u64, score: &mut usize, hbit: u64) {
        let xv = eq | *mv;
        let xh = (((eq & *pv).wrapping_add(*pv)) ^ *pv) | eq;
        let ph = *mv | !(xh | *pv);
        let mh = *pv & xh;
        if ph & hbit != 0 {
            *score += 1;
        } else if mh & hbit != 0 {
            *score -= 1;
        }
        let ph = (ph << 1) | 1;
        let mh = mh << 1;
        *pv = mh | !(xv | ph);
        *mv = ph & xv;
    }
    // Hoist the `Eq` lookup mode out of the column loop.
    if let Some(table) = bits.byte_table() {
        for &c in text {
            step(table[symbol_byte(c)], &mut pv, &mut mv, &mut score, hbit);
        }
    } else {
        for &c in text {
            step(bits.word0(c), &mut pv, &mut mv, &mut score, hbit);
        }
    }
    score
}

/// Blocked kernel: any pattern length, `⌈m/64⌉` words per column.
///
/// With `bound = Some(b)`, abandons and returns `None` as soon as the
/// score cannot come back to `b` within the remaining columns (the
/// score changes by at most 1 per column).
///
/// The column vectors live in caller-supplied scratch so a prepared
/// pattern streaming against a whole database (every pivot row of a
/// LAESA query, every candidate of a linear scan) allocates them
/// once, not per pair.
fn run_blocked<S: Symbol>(
    bits: &PatternBits<S>,
    text: &[S],
    bound: Option<usize>,
    scratch: &mut BlockScratch,
) -> Option<usize> {
    let m = bits.len;
    let blocks = bits.words;
    let last = blocks - 1;
    let hbit_shift = (m - 1) % WORD;
    let BlockScratch { pv, mv } = scratch;
    pv.clear();
    pv.resize(blocks, !0u64);
    mv.clear();
    mv.resize(blocks, 0u64);
    let mut score = m;
    for (j, &c) in text.iter().enumerate() {
        let row = bits.row(c);
        let mut hin = 1i32;
        for b in 0..blocks {
            let eq = row.map_or(0, |r| r[b]);
            let (hout, ph, mh) = advance_block(&mut pv[b], &mut mv[b], eq, hin);
            if b == last {
                score += ((ph >> hbit_shift) & 1) as usize;
                score -= ((mh >> hbit_shift) & 1) as usize;
            }
            hin = hout;
        }
        if let Some(b) = bound {
            let remaining = text.len() - (j + 1);
            if score > b + remaining {
                return None;
            }
        }
    }
    match bound {
        Some(b) if score > b => None,
        _ => Some(score),
    }
}

/// Reusable column vectors of the blocked kernel.
#[derive(Debug, Clone, Default)]
struct BlockScratch {
    pv: Vec<u64>,
    mv: Vec<u64>,
}

/// A query string prepared for repeated Myers comparisons.
///
/// Build once per query, then compare against a whole database: the
/// `Peq` bitmaps are computed a single time, which is where batch
/// search wins over calling [`myers`] per pair. For patterns beyond
/// one machine word the blocked kernel's column vectors are also kept
/// as per-pattern scratch (behind a `RefCell`, so `MyersPattern` is
/// `Send` but deliberately not `Sync` in effect — one pattern per
/// worker, the same contract as every
/// [`crate::metric::PreparedQuery`]), making a whole scan
/// allocation-free after the first comparison.
///
/// ```
/// use cned_core::myers::MyersPattern;
///
/// let query = MyersPattern::new(b"kitten");
/// assert_eq!(query.distance(b"sitting"), 3);
/// assert_eq!(query.distance_bounded(b"sitting", 3), Some(3));
/// assert_eq!(query.distance_bounded(b"sitting", 2), None);
/// ```
#[derive(Debug, Clone)]
pub struct MyersPattern<S> {
    bits: PatternBits<S>,
    scratch: core::cell::RefCell<BlockScratch>,
    lanes: core::cell::RefCell<crate::lanes::LaneScratch>,
}

impl<S: Symbol> MyersPattern<S> {
    /// Precompute the bitmaps for `query`.
    pub fn new(query: &[S]) -> MyersPattern<S> {
        MyersPattern {
            bits: PatternBits::new(query),
            scratch: core::cell::RefCell::new(BlockScratch::default()),
            lanes: core::cell::RefCell::new(crate::lanes::LaneScratch::default()),
        }
    }

    /// The pattern's per-symbol bitmaps / alphabet ids (lane kernels
    /// and the `d_C,h` prepared batch reuse them).
    #[inline]
    pub(crate) fn bits(&self) -> &PatternBits<S> {
        &self.bits
    }

    /// Length of the prepared query.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the prepared query is the empty string.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Levenshtein distance between the prepared query and `text`.
    pub fn distance(&self, text: &[S]) -> usize {
        let m = self.bits.len;
        if m == 0 {
            return text.len();
        }
        if text.is_empty() {
            return m;
        }
        if self.bits.words == 1 {
            run_single(&self.bits, text)
        } else {
            run_blocked(&self.bits, text, None, &mut self.scratch.borrow_mut())
                .expect("unbounded run always completes")
        }
    }

    /// Bounded distance: `Some(d)` iff `d <= bound`.
    pub fn distance_bounded(&self, text: &[S], bound: usize) -> Option<usize> {
        let m = self.bits.len;
        let n = text.len();
        if n.abs_diff(m) > bound {
            return None;
        }
        if bound >= n.max(m) {
            // The bound can never bite: run unbounded (also dodges any
            // `bound + remaining` overflow for huge bounds).
            return Some(self.distance(text));
        }
        if m == 0 {
            return Some(n); // n <= bound via the length check above
        }
        run_blocked(
            &self.bits,
            text,
            Some(bound),
            &mut self.scratch.borrow_mut(),
        )
    }

    /// Distance to each of `targets` (`out.len() == targets.len()`),
    /// scored up to [`crate::lanes::LANES`] targets per kernel sweep
    /// on the process-wide [`Backend`](crate::lanes::Backend).
    /// Bit-identical to calling [`MyersPattern::distance`] per target.
    pub fn distance_batch(&self, targets: &[&[S]], out: &mut [usize]) {
        self.distance_batch_with(crate::lanes::Backend::active(), targets, out);
    }

    /// [`MyersPattern::distance_batch`] with an explicit backend
    /// (tests and benches pin each code path through this).
    pub fn distance_batch_with(
        &self,
        backend: crate::lanes::Backend,
        targets: &[&[S]],
        out: &mut [usize],
    ) {
        use crate::lanes::{Backend, LANES};
        assert_eq!(targets.len(), out.len(), "distance_batch size mismatch");
        let m = self.bits.len;
        if backend == Backend::Scalar || m == 0 {
            for (target, slot) in targets.iter().zip(out.iter_mut()) {
                *slot = self.distance(target);
            }
            return;
        }
        let scratch = &mut *self.lanes.borrow_mut();
        let crate::lanes::LaneScratch {
            cols,
            a,
            b,
            order,
            counts,
        } = scratch;
        crate::lanes::length_order(order, counts, targets);
        for chunk in order.chunks(LANES) {
            let mut group: [&[S]; LANES] = [&[]; LANES];
            let mut lens = [0usize; LANES];
            for (l, &i) in chunk.iter().enumerate() {
                group[l] = targets[i as usize];
                lens[l] = group[l].len();
            }
            let mut scores = [m as i64; LANES];
            self.lane_group(
                backend,
                &group[..chunk.len()],
                &lens,
                None,
                cols,
                a,
                b,
                &mut scores,
            );
            for (l, &i) in chunk.iter().enumerate() {
                out[i as usize] = scores[l] as usize;
            }
        }
    }

    /// Bounded distance to each of `targets` under one shared `bound`:
    /// `out[i] = Some(d)` iff `d <= bound`, exactly as
    /// [`MyersPattern::distance_bounded`] returns per target. Lanes
    /// retire early once provably over the bound, mirroring the scalar
    /// early exit.
    pub fn distance_batch_bounded(
        &self,
        targets: &[&[S]],
        bound: usize,
        out: &mut [Option<usize>],
    ) {
        self.distance_batch_bounded_with(crate::lanes::Backend::active(), targets, bound, out);
    }

    /// [`MyersPattern::distance_batch_bounded`] with an explicit
    /// backend.
    pub fn distance_batch_bounded_with(
        &self,
        backend: crate::lanes::Backend,
        targets: &[&[S]],
        bound: usize,
        out: &mut [Option<usize>],
    ) {
        use crate::lanes::{Backend, LANES};
        assert_eq!(
            targets.len(),
            out.len(),
            "distance_batch_bounded size mismatch"
        );
        let m = self.bits.len;
        if backend == Backend::Scalar || m == 0 {
            for (target, slot) in targets.iter().zip(out.iter_mut()) {
                *slot = self.distance_bounded(target, bound);
            }
            return;
        }
        let scratch = &mut *self.lanes.borrow_mut();
        let crate::lanes::LaneScratch {
            cols,
            a,
            b,
            order,
            counts,
        } = scratch;
        crate::lanes::length_order(order, counts, targets);
        for chunk in order.chunks(LANES) {
            let mut group: [&[S]; LANES] = [&[]; LANES];
            let mut lens = [0usize; LANES];
            let mut skip = [false; LANES];
            let mut bounds = [0i64; LANES];
            for (l, &i) in chunk.iter().enumerate() {
                let target = targets[i as usize];
                let n = target.len();
                if n.abs_diff(m) > bound {
                    // Same length gate as the scalar path: the lane
                    // never enters the kernel (a frozen empty lane
                    // would report `m`, which could leak under a large
                    // bound, so it is masked out below).
                    skip[l] = true;
                } else {
                    group[l] = target;
                    lens[l] = n;
                    // Clamped so the limit arithmetic cannot overflow
                    // on huge bounds; a clamp at `m + n + 1` can never
                    // retire a lane (the score is at most `m + j`), so
                    // bounded results stay exact.
                    bounds[l] = bound.min(m + n + 1) as i64;
                }
            }
            let mut scores = [m as i64; LANES];
            self.lane_group(
                backend,
                &group[..chunk.len()],
                &lens,
                Some(&bounds),
                cols,
                a,
                b,
                &mut scores,
            );
            for (l, &i) in chunk.iter().enumerate() {
                let d = scores[l] as usize;
                out[i as usize] = (!skip[l] && d <= bound).then_some(d);
            }
        }
    }

    /// Fill the lane-interleaved `Eq` columns for one group of up to
    /// [`crate::lanes::LANES`] targets and run the matching kernel.
    /// Unused lanes keep `lens == 0` and freeze immediately.
    #[allow(clippy::too_many_arguments)]
    fn lane_group(
        &self,
        backend: crate::lanes::Backend,
        group: &[&[S]],
        lens: &[usize; crate::lanes::LANES],
        bounds: Option<&[i64; crate::lanes::LANES]>,
        cols: &mut Vec<u64>,
        a: &mut Vec<u64>,
        b: &mut Vec<u64>,
        scores: &mut [i64; crate::lanes::LANES],
    ) {
        use crate::lanes::LANES;
        let m = self.bits.len;
        let blocks = self.bits.words;
        let max_len = lens.iter().copied().max().unwrap_or(0);
        if max_len == 0 {
            return; // every lane is empty (or skipped): scores stay m
        }
        if blocks == 1 {
            // Grow-only: stale cells past a lane's length are masked
            // inside the kernels (`eq & act`), and every active cell
            // is written below, so no zeroing pass is needed.
            if cols.len() < max_len * LANES {
                cols.resize(max_len * LANES, 0);
            }
            // Strided iterators instead of `cols[j * LANES + l]`: the
            // zip bounds the loop, so the fill is branch- and
            // check-free (it is the serial fraction of the sweep).
            if let Some(table) = self.bits.byte_table() {
                for (l, target) in group.iter().enumerate() {
                    for (slot, &c) in cols[l..].iter_mut().step_by(LANES).zip(&target[..lens[l]]) {
                        *slot = table[symbol_byte(c)];
                    }
                }
            } else {
                for (l, target) in group.iter().enumerate() {
                    for (slot, &c) in cols[l..].iter_mut().step_by(LANES).zip(&target[..lens[l]]) {
                        *slot = self.bits.word0(c);
                    }
                }
            }
            match bounds {
                None => crate::lanes::myers_word(backend, cols, lens, m, scores),
                Some(bounds) => {
                    crate::lanes::myers_word_bounded(backend, cols, lens, m, bounds, scores)
                }
            }
        } else if let Some(rows) = self.bits.byte_rows() {
            // Byte symbols: absent bytes map to an all-zero row in the
            // table, so every active cell is written unconditionally —
            // grow-only scratch, no zeroing pass (stale cells past a
            // lane's length are masked by `eq & act` in the kernel).
            if cols.len() < max_len * blocks * LANES {
                cols.resize(max_len * blocks * LANES, 0);
            }
            for (l, target) in group.iter().enumerate() {
                for (j, &c) in target[..lens[l]].iter().enumerate() {
                    let row = &rows[symbol_byte(c) * blocks..(symbol_byte(c) + 1) * blocks];
                    let base = j * blocks * LANES + l;
                    for (bi, &w) in row.iter().enumerate() {
                        cols[base + bi * LANES] = w;
                    }
                }
            }
            crate::lanes::myers_blocked(backend, cols, blocks, lens, m, bounds, a, b, scores);
        } else {
            // Wide symbols: the `Option` fill skips absent-symbol
            // writes, so the scratch must be zeroed each group.
            cols.clear();
            cols.resize(max_len * blocks * LANES, 0);
            for (l, target) in group.iter().enumerate() {
                for (j, &c) in target[..lens[l]].iter().enumerate() {
                    if let Some(row) = self.bits.row(c) {
                        let base = j * blocks * LANES + l;
                        for (bi, &w) in row.iter().enumerate() {
                            cols[base + bi * LANES] = w;
                        }
                    }
                }
            }
            crate::lanes::myers_blocked(backend, cols, blocks, lens, m, bounds, a, b, scores);
        }
    }
}

/// Levenshtein distance via the bit-parallel engine.
///
/// Picks the shorter string as the pattern so the column height (and
/// word count) is minimal. Equivalent to
/// [`crate::levenshtein::levenshtein`] on every input.
///
/// ```
/// use cned_core::myers::myers;
/// assert_eq!(myers(b"abaa", b"aab"), 2);
/// assert_eq!(myers(b"kitten", b"sitting"), 3);
/// ```
pub fn myers<S: Symbol>(x: &[S], y: &[S]) -> usize {
    let (short, long) = if x.len() <= y.len() { (x, y) } else { (y, x) };
    if short.is_empty() {
        return long.len();
    }
    MyersPattern::new(short).distance(long)
}

/// Bounded Levenshtein distance via the bit-parallel engine:
/// `Some(d)` iff `d <= bound`. Equivalent to
/// [`crate::levenshtein::levenshtein_bounded`] on every input.
pub fn myers_bounded<S: Symbol>(x: &[S], y: &[S], bound: usize) -> Option<usize> {
    let (short, long) = if x.len() <= y.len() { (x, y) } else { (y, x) };
    if long.len() - short.len() > bound {
        return None;
    }
    if short.is_empty() {
        return Some(long.len());
    }
    MyersPattern::new(short).distance_bounded(long, bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levenshtein::{levenshtein_bounded, wagner_fischer};

    #[test]
    fn agrees_on_classic_pairs() {
        let cases: [(&[u8], &[u8]); 7] = [
            (b"kitten", b"sitting"),
            (b"abaa", b"aab"),
            (b"abaa", b"baab"),
            (b"", b"abc"),
            (b"abc", b""),
            (b"same", b"same"),
            (b"abcdef", b"ghijkl"),
        ];
        for (a, b) in cases {
            assert_eq!(myers(a, b), wagner_fischer(a, b), "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn single_word_boundary_lengths() {
        // Exercise pattern lengths 63, 64, 65 — the word boundary.
        for m in [1usize, 2, 63, 64, 65, 127, 128, 129, 200] {
            let x: Vec<u8> = (0..m).map(|i| (i % 7) as u8).collect();
            let y: Vec<u8> = (0..m + 13).map(|i| (i % 5) as u8).collect();
            assert_eq!(myers(&x, &y), wagner_fischer(&x, &y), "m = {m}");
        }
    }

    #[test]
    fn deep_match_run_crosses_block_carries() {
        // Long identical prefixes/suffixes stress the inter-block
        // horizontal carries.
        let x: Vec<u8> = std::iter::repeat_n(b'a', 180).collect();
        let mut y = x.clone();
        y[70] = b'b';
        y.insert(130, b'c');
        assert_eq!(myers(&x, &y), 2);
        assert_eq!(myers(&x, &x), 0);
    }

    #[test]
    fn bounded_agrees_with_scalar_banded() {
        let x: Vec<u8> = (0..150).map(|i| (i % 4) as u8).collect();
        let y: Vec<u8> = (0..140).map(|i| ((i + 1) % 4) as u8).collect();
        let d = wagner_fischer(&x, &y);
        for bound in [0, 1, d.saturating_sub(1), d, d + 1, d + 50, usize::MAX] {
            assert_eq!(
                myers_bounded(&x, &y, bound),
                levenshtein_bounded(&x, &y, bound),
                "bound {bound}"
            );
        }
    }

    #[test]
    fn bounded_empty_and_tiny() {
        assert_eq!(myers_bounded(b"", b"abc", 2), None);
        assert_eq!(myers_bounded(b"", b"abc", 3), Some(3));
        assert_eq!(myers_bounded(b"a", b"a", 0), Some(0));
        assert_eq!(myers_bounded(b"a", b"b", 0), None);
        assert_eq!(myers_bounded::<u8>(b"", b"", 0), Some(0));
    }

    #[test]
    fn pattern_reuse_matches_one_shot() {
        let query = b"abracadabra";
        let prepared = MyersPattern::new(query);
        let db: [&[u8]; 5] = [b"abracadabra", b"cadabra", b"abrakadabra", b"", b"xyz"];
        for item in db {
            assert_eq!(prepared.distance(item), wagner_fischer(query, item));
            let d = wagner_fischer(query, item);
            assert_eq!(prepared.distance_bounded(item, d), Some(d));
            if d > 0 {
                assert_eq!(prepared.distance_bounded(item, d - 1), None);
            }
        }
    }

    #[test]
    fn non_byte_symbols_work() {
        let x: Vec<u32> = (0..100).collect();
        let y: Vec<u32> = (0..100).map(|i| i * 2).collect();
        assert_eq!(myers(&x, &y), wagner_fischer(&x, &y));
    }

    #[test]
    fn symbols_absent_from_pattern_mismatch_everywhere() {
        let x = vec![1u8; 70];
        let y = vec![2u8; 70];
        assert_eq!(myers(&x, &y), 70);
    }
}
