//! The Marzal–Vidal normalised edit distance `d_MV` (1993, ref \[4\]).
//!
//! `d_MV(x, y) = min over editing paths π of  dE(π) / lE(π)`
//!
//! where `dE(π)` is the total weight of the path and `lE(π)` the number
//! of *steps* of the corresponding marked (internal) path — matches
//! included. Unlike the post-hoc normalisations, the ratio is optimised
//! over paths, so a long path with a few errors can beat a short path
//! with the same number of errors.
//!
//! Computation: the classic length-indexed dynamic program. Let
//! `w[i][j][L]` be the minimum weight of an alignment of `x[..i]` and
//! `y[..j]` using exactly `L` steps, where every step (match,
//! substitution, insertion, deletion) advances the alignment by one.
//! Feasible `L` range over `max(i, j) ..= i + j`, so the program costs
//! `O(|x|·|y|·(|x|+|y|))` time — the same shape as the contextual
//! Algorithm 1 — implemented here with two rolling rows
//! (`O(|y|·(|x|+|y|))` space).
//!
//! Marzal & Vidal showed `d_MV` is not a metric for general cost
//! functions; whether it is one for unit costs is, per the paper,
//! still open. We therefore conservatively report
//! [`Distance::is_metric`]` = false`.

use crate::metric::Distance;
use crate::Symbol;

const INF: u32 = u32::MAX / 2;

/// Marzal–Vidal normalised edit distance with unit costs.
///
/// Returns 0 for two empty strings (no path, conventionally zero).
///
/// ```
/// use cned_core::normalized::marzal_vidal::marzal_vidal;
/// // One error in an alignment of length 3 (aba vs ab can be aligned
/// // in 3 steps: two matches + one deletion): 1/3.
/// let d = marzal_vidal(b"aba", b"ab");
/// assert!((d - 1.0 / 3.0).abs() < 1e-12);
/// ```
pub fn marzal_vidal<S: Symbol>(x: &[S], y: &[S]) -> f64 {
    let (n, m) = (x.len(), y.len());
    if n == 0 && m == 0 {
        return 0.0;
    }
    let lw = n + m + 1; // entries for L = 0..=n+m per cell

    let mut prev = vec![INF; (m + 1) * lw];
    let mut cur = vec![INF; (m + 1) * lw];

    // Row 0: aligning λ with y[..j] takes exactly j insertions.
    for j in 0..=m {
        prev[j * lw + j] = j as u32;
    }

    for i in 1..=n {
        cur.fill(INF);
        // Column 0: i deletions, L = i.
        cur[i] = i as u32;
        for j in 1..=m {
            let (cur_left, cur_cell) = cur.split_at_mut(j * lw);
            let cell = &mut cur_cell[..lw];
            let left = &cur_left[(j - 1) * lw..j * lw];
            let diag = &prev[(j - 1) * lw..j * lw];
            let up = &prev[j * lw..(j + 1) * lw];

            let sub_cost = u32::from(x[i - 1] != y[j - 1]);
            for l in 1..lw {
                let via_diag = diag[l - 1].saturating_add(sub_cost);
                let via_del = up[l - 1].saturating_add(1);
                let via_ins = left[l - 1].saturating_add(1);
                cell[l] = via_diag.min(via_del).min(via_ins);
            }
        }
        core::mem::swap(&mut prev, &mut cur);
    }

    let profile = &prev[m * lw..(m + 1) * lw];
    let mut best = f64::INFINITY;
    for (l, &w) in profile.iter().enumerate().skip(1) {
        if w < INF {
            let ratio = w as f64 / l as f64;
            if ratio < best {
                best = ratio;
            }
        }
    }
    // x == y == λ handled above; any other pair has a feasible L >= 1.
    debug_assert!(best.is_finite());
    best
}

/// Generalised Marzal–Vidal distance: minimum over alignments of
/// (total weighted cost) / (alignment length), with per-symbol
/// operation weights — the extension the paper credits to \[4\]
/// ("Yujian and Bo's method (and Marzal and Vidal's) extends to the
/// case where the distance is generalised", §2.2).
///
/// Same length-indexed DP as [`marzal_vidal`] with an `f64` weight
/// table. Reduces to the unit-cost version under
/// [`crate::generalized::UnitCosts`] (asserted by tests).
pub fn marzal_vidal_generalized<S: Symbol, C: crate::generalized::CostModel<S>>(
    x: &[S],
    y: &[S],
    costs: &C,
) -> f64 {
    let (n, m) = (x.len(), y.len());
    if n == 0 && m == 0 {
        return 0.0;
    }
    let lw = n + m + 1;
    const FINF: f64 = f64::INFINITY;

    let mut prev = vec![FINF; (m + 1) * lw];
    let mut cur = vec![FINF; (m + 1) * lw];

    prev[0] = 0.0;
    let mut acc = 0.0;
    for j in 1..=m {
        acc += costs.insert(y[j - 1]);
        prev[j * lw + j] = acc;
    }

    let mut del_acc = 0.0;
    for i in 1..=n {
        cur.fill(FINF);
        del_acc += costs.delete(x[i - 1]);
        cur[i] = del_acc;
        for j in 1..=m {
            let (cur_left, cur_cell) = cur.split_at_mut(j * lw);
            let cell = &mut cur_cell[..lw];
            let left = &cur_left[(j - 1) * lw..j * lw];
            let diag = &prev[(j - 1) * lw..j * lw];
            let up = &prev[j * lw..(j + 1) * lw];

            let sub_cost = costs.substitute(x[i - 1], y[j - 1]);
            let del_cost = costs.delete(x[i - 1]);
            let ins_cost = costs.insert(y[j - 1]);
            for l in 1..lw {
                let best = (diag[l - 1] + sub_cost)
                    .min(up[l - 1] + del_cost)
                    .min(left[l - 1] + ins_cost);
                cell[l] = best;
            }
        }
        core::mem::swap(&mut prev, &mut cur);
    }

    let profile = &prev[m * lw..(m + 1) * lw];
    let mut best = FINF;
    for (l, &w) in profile.iter().enumerate().skip(1) {
        if w.is_finite() {
            best = best.min(w / l as f64);
        }
    }
    debug_assert!(best.is_finite());
    best
}

/// `d_MV` as a [`Distance`] implementation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MarzalVidal;

impl<S: Symbol> Distance<S> for MarzalVidal {
    fn distance(&self, a: &[S], b: &[S]) -> f64 {
        marzal_vidal(a, b)
    }

    fn name(&self) -> &'static str {
        "d_MV"
    }

    fn is_metric(&self) -> bool {
        // Not a metric for generalised costs; open for unit costs
        // (paper §2.2) — report false conservatively.
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levenshtein::levenshtein;

    #[test]
    fn zero_iff_equal() {
        assert_eq!(marzal_vidal(b"abc", b"abc"), 0.0);
        assert_eq!(marzal_vidal::<u8>(b"", b""), 0.0);
        assert!(marzal_vidal(b"abc", b"abd") > 0.0);
    }

    #[test]
    fn empty_vs_nonempty_is_one() {
        // Only paths: |y| insertions in |y| steps — ratio 1.
        assert_eq!(marzal_vidal(b"", b"abc"), 1.0);
        assert_eq!(marzal_vidal(b"abcd", b""), 1.0);
    }

    #[test]
    fn single_error_normalised_by_alignment_length() {
        // kitten vs sitting: d_E = 3, best alignment length 7
        // (6 matches/subs + 1 insertion): 3/7.
        let d = marzal_vidal(b"kitten", b"sitting");
        assert!((d - 3.0 / 7.0).abs() < 1e-12, "got {d}");
    }

    #[test]
    fn prefers_longer_paths_when_ratio_improves() {
        // ab vs ba: the 2-step path (two substitutions) has ratio
        // 2/2 = 1; the 3-step path (delete a, match b, insert a) has
        // ratio 2/3 < 1. d_MV must find 2/3.
        let d = marzal_vidal(b"ab", b"ba");
        assert!((d - 2.0 / 3.0).abs() < 1e-12, "got {d}");
    }

    #[test]
    fn bounded_by_one_and_nonnegative() {
        let words: [&[u8]; 6] = [b"a", b"ab", b"ba", b"abcabc", b"", b"zzzz"];
        for &a in &words {
            for &b in &words {
                let d = marzal_vidal(a, b);
                assert!((0.0..=1.0 + 1e-12).contains(&d), "{a:?} vs {b:?}: {d}");
            }
        }
    }

    #[test]
    fn upper_bounded_by_levenshtein_over_max_len() {
        // d_MV <= d_E / max(|x|,|y|) is FALSE in general (the minimal
        // alignment has length >= max(|x|,|y|) but d_MV minimises the
        // ratio, so d_MV <= d_E/max always holds — the d_E-optimal path
        // aligned in max-or-more steps is itself a candidate).
        let words: [&[u8]; 5] = [b"ab", b"aba", b"ba", b"abcabc", b"z"];
        for &a in &words {
            for &b in &words {
                if a.is_empty() && b.is_empty() {
                    continue;
                }
                let dmv = marzal_vidal(a, b);
                let bound = levenshtein(a, b) as f64 / a.len().max(b.len()).max(1) as f64;
                assert!(dmv <= bound + 1e-12, "{a:?} vs {b:?}: {dmv} > {bound}");
            }
        }
    }

    #[test]
    fn symmetric() {
        let words: [&[u8]; 5] = [b"ab", b"aba", b"ba", b"abcabc", b""];
        for &a in &words {
            for &b in &words {
                assert!((marzal_vidal(a, b) - marzal_vidal(b, a)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn paper_dsum_relation() {
        // Marzal & Vidal proved d_MV(x,y) <= 2·d_sum(x,y); spot-check.
        let words: [&[u8]; 4] = [b"ab", b"aba", b"ba", b"abab"];
        for &a in &words {
            for &b in &words {
                if a.is_empty() && b.is_empty() {
                    continue;
                }
                let lhs = marzal_vidal(a, b);
                let rhs = 2.0 * levenshtein(a, b) as f64 / (a.len() + b.len()).max(1) as f64;
                assert!(lhs <= rhs + 1e-12);
            }
        }
    }

    #[test]
    fn distance_trait_impl() {
        let d = MarzalVidal;
        assert_eq!(Distance::<u8>::name(&d), "d_MV");
        assert!(!Distance::<u8>::is_metric(&d));
    }

    #[test]
    fn generalized_with_unit_costs_matches_plain() {
        use crate::generalized::UnitCosts;
        let pairs: [(&[u8], &[u8]); 6] = [
            (b"kitten", b"sitting"),
            (b"ab", b"ba"),
            (b"aba", b"ab"),
            (b"", b"abc"),
            (b"abc", b""),
            (b"same", b"same"),
        ];
        for (a, b) in pairs {
            let g = marzal_vidal_generalized(a, b, &UnitCosts);
            let p = marzal_vidal(a, b);
            assert!((g - p).abs() < 1e-12, "{a:?} vs {b:?}: {g} vs {p}");
        }
    }

    #[test]
    fn generalized_weights_steer_the_optimal_alignment() {
        use crate::generalized::TableCosts;
        // Cheap substitutions: the 2-step all-substitution alignment
        // of ab/ba costs 0.4/2 = 0.2; the 3-step del+match+ins path
        // costs 2.0/3 ≈ 0.67. Unit costs prefer the 3-step path
        // (2/3 < 2/2); cheap substitutions flip the preference.
        let costs = TableCosts::uniform(2, 0.2, 1.0, 1.0);
        let x = [0u8, 1];
        let y = [1u8, 0];
        let g = marzal_vidal_generalized(&x, &y, &costs);
        assert!((g - 0.2).abs() < 1e-12, "got {g}");
    }

    #[test]
    fn generalized_is_zero_iff_equal() {
        use crate::generalized::TableCosts;
        let costs = TableCosts::uniform(3, 2.0, 0.5, 0.5);
        assert_eq!(marzal_vidal_generalized(&[0u8, 1], &[0u8, 1], &costs), 0.0);
        assert!(marzal_vidal_generalized(&[0u8], &[1u8], &costs) > 0.0);
    }
}
