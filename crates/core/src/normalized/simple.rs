//! Simple length normalisations of the edit distance — and why they
//! fail to be metrics (paper §2.2).
//!
//! Each divides `d_E(x, y)` by a symmetric function of the lengths:
//!
//! * `d_sum = d_E/(|x|+|y|)` — triangle inequality fails on
//!   `x = ab, y = aba, z = ba`: `d_sum(ab, aba) + d_sum(aba, ba) =
//!   1/5 + 1/5 < 2/4 = d_sum(ab, ba)`;
//! * `d_max = d_E/max(|x|,|y|)` — same witness triple;
//! * `d_min = d_E/min(|x|,|y|)` — witness `x = b, y = ba, z = aa`.
//!
//! They remain useful as *similarity scores*: Table 2 shows `d_max`
//! actually achieves the best classification error on the handwritten
//! digits — but a non-metric cannot drive AESA/LAESA elimination
//! soundly, which is the contextual distance's selling point.

use crate::levenshtein::levenshtein;
use crate::metric::Distance;
use crate::Symbol;

/// `d_E(x,y) / (|x|+|y|)`, with `d(λ, λ) = 0`.
pub fn d_sum<S: Symbol>(x: &[S], y: &[S]) -> f64 {
    let denom = x.len() + y.len();
    if denom == 0 {
        return 0.0;
    }
    levenshtein(x, y) as f64 / denom as f64
}

/// `d_E(x,y) / max(|x|,|y|)`, with `d(λ, λ) = 0`.
pub fn d_max<S: Symbol>(x: &[S], y: &[S]) -> f64 {
    let denom = x.len().max(y.len());
    if denom == 0 {
        return 0.0;
    }
    levenshtein(x, y) as f64 / denom as f64
}

/// `d_E(x,y) / min(|x|,|y|)`.
///
/// When exactly one string is empty the minimum length is zero; we
/// follow the convention `d_min = |other|` (the limit of dividing by
/// 1), keeping the function total. Both empty gives 0.
pub fn d_min<S: Symbol>(x: &[S], y: &[S]) -> f64 {
    let denom = x.len().min(y.len());
    if denom == 0 {
        return levenshtein(x, y) as f64;
    }
    levenshtein(x, y) as f64 / denom as f64
}

macro_rules! simple_norm {
    ($(#[$doc:meta])* $name:ident, $func:path, $label:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
        pub struct $name;

        impl<S: Symbol> Distance<S> for $name {
            fn distance(&self, a: &[S], b: &[S]) -> f64 {
                $func(a, b)
            }
            fn name(&self) -> &'static str {
                $label
            }
            fn is_metric(&self) -> bool {
                false
            }
        }
    };
}

simple_norm!(
    /// `d_max = d_E/max(|x|,|y|)` as a [`Distance`]. **Not a metric.**
    MaxNorm,
    d_max,
    "d_max"
);
simple_norm!(
    /// `d_min = d_E/min(|x|,|y|)` as a [`Distance`]. **Not a metric.**
    MinNorm,
    d_min,
    "d_min"
);
simple_norm!(
    /// `d_sum = d_E/(|x|+|y|)` as a [`Distance`]. **Not a metric.**
    SumNorm,
    d_sum,
    "d_sum"
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::{check_triangle, MetricViolation};

    #[test]
    fn values_on_simple_pairs() {
        assert_eq!(d_sum(b"ab", b"aba"), 1.0 / 5.0);
        assert_eq!(d_sum(b"ab", b"ba"), 2.0 / 4.0);
        assert_eq!(d_max(b"ab", b"aba"), 1.0 / 3.0);
        assert_eq!(d_min(b"ab", b"aba"), 1.0 / 2.0);
    }

    #[test]
    fn empty_conventions() {
        assert_eq!(d_sum::<u8>(b"", b""), 0.0);
        assert_eq!(d_max::<u8>(b"", b""), 0.0);
        assert_eq!(d_min::<u8>(b"", b""), 0.0);
        assert_eq!(d_sum(b"", b"abc"), 1.0);
        assert_eq!(d_max(b"", b"abc"), 1.0);
        assert_eq!(d_min(b"", b"abc"), 3.0);
    }

    #[test]
    fn paper_counterexample_dsum_triangle_violation() {
        // Paper §2.2: d_sum(ab, aba) + d_sum(aba, ba) = 1/5 + 1/5
        // < 2/4 = d_sum(ab, ba).
        let lhs = d_sum(b"ab", b"aba") + d_sum(b"aba", b"ba");
        let rhs = d_sum(b"ab", b"ba");
        assert!(
            rhs > lhs,
            "expected triangle violation: {rhs} should exceed {lhs}"
        );
    }

    #[test]
    fn paper_counterexample_dmax_triangle_violation() {
        // Same witness triple works for d_max (paper §2.2):
        // 1/3 + 1/3 vs 2/2 = 1.
        let lhs = d_max(b"ab", b"aba") + d_max(b"aba", b"ba");
        let rhs = d_max(b"ab", b"ba");
        assert!(rhs > lhs, "{rhs} vs {lhs}");
    }

    #[test]
    fn paper_counterexample_dmin_triangle_violation() {
        // Paper §2.2 witness for d_min: x = b, y = ba, z = aa.
        // d_min(b, ba) = 1/1, d_min(ba, aa) = 1/2... check the actual
        // violation numerically.
        let lhs = d_min(b"b", b"ba") + d_min(b"ba", b"aa");
        let rhs = d_min(b"b", b"aa");
        assert!(rhs > lhs, "{rhs} vs {lhs}");
    }

    #[test]
    fn check_triangle_finds_the_violations() {
        let sample: Vec<Vec<u8>> = [&b"ab"[..], b"aba", b"ba"]
            .iter()
            .map(|w| w.to_vec())
            .collect();
        assert!(matches!(
            check_triangle(&SumNorm, &sample),
            Some(MetricViolation::Triangle { .. })
        ));
        assert!(matches!(
            check_triangle(&MaxNorm, &sample),
            Some(MetricViolation::Triangle { .. })
        ));
        let sample2: Vec<Vec<u8>> = [&b"b"[..], b"ba", b"aa"]
            .iter()
            .map(|w| w.to_vec())
            .collect();
        assert!(matches!(
            check_triangle(&MinNorm, &sample2),
            Some(MetricViolation::Triangle { .. })
        ));
    }

    #[test]
    fn all_simple_norms_are_symmetric_and_zero_on_equal() {
        let words: [&[u8]; 4] = [b"ab", b"aba", b"", b"zz"];
        for &a in &words {
            for &b in &words {
                for f in [d_sum::<u8>, d_max::<u8>, d_min::<u8>] {
                    assert_eq!(f(a, b), f(b, a));
                    if a == b {
                        assert_eq!(f(a, b), 0.0);
                    }
                }
            }
        }
    }

    #[test]
    fn ranges_are_bounded() {
        // d_max and d_sum are <= 1; d_sum <= 1/2 actually when both
        // non-empty? No: d_E <= max(|x|,|y|), so d_sum <= max/(sum)
        // <= 1 and d_max <= 1.
        let words: [&[u8]; 5] = [b"a", b"bbbb", b"abab", b"zzzzzzz", b"q"];
        for &a in &words {
            for &b in &words {
                assert!(d_max(a, b) <= 1.0 + 1e-12);
                assert!(d_sum(a, b) <= 1.0 + 1e-12);
            }
        }
    }
}
