//! The Yujian–Bo normalised Levenshtein metric `d_YB` (2007, ref \[8\]).
//!
//! `d_YB(x, y) = 2·d_E(x, y) / (|x| + |y| + d_E(x, y))`
//!
//! A closed formula on top of the plain edit distance — `O(|x|·|y|)`
//! total — and a genuine **metric** (proved by Yujian & Bo). Its values
//! live in `[0, 1]`.
//!
//! The contextual paper's criticism (§2.2): rewriting it as
//! `d_YB = 2 − 2(|x|+|y|)/(|x|+|y|+d_E)` shows the edit distance only
//! enters through the ratio `d_E/(|x|+|y|)`, so for very different
//! strings the value saturates near 2/3·…·1 and discriminates poorly —
//! visible as the tall concentrated histogram of Figure 2 and the
//! highest intrinsic dimensionality in Table 1.

use crate::levenshtein::levenshtein;
use crate::metric::Distance;
use crate::Symbol;

/// Yujian–Bo normalised distance.
///
/// ```
/// use cned_core::normalized::yujian_bo::yujian_bo;
/// // d_E(ab, ba) = 2: d_YB = 2·2/(2+2+2) = 2/3.
/// assert!((yujian_bo(b"ab", b"ba") - 2.0 / 3.0).abs() < 1e-12);
/// ```
pub fn yujian_bo<S: Symbol>(x: &[S], y: &[S]) -> f64 {
    let d = levenshtein(x, y);
    if d == 0 {
        return 0.0; // also covers |x| = |y| = 0
    }
    2.0 * d as f64 / (x.len() + y.len() + d) as f64
}

/// `d_YB` computed from an already-known edit distance — used by
/// experiment drivers that evaluate several normalisations of the same
/// pair without recomputing `d_E`.
#[inline]
pub fn yujian_bo_from_parts(x_len: usize, y_len: usize, d_e: usize) -> f64 {
    if d_e == 0 {
        return 0.0;
    }
    2.0 * d_e as f64 / (x_len + y_len + d_e) as f64
}

/// `d_YB` as a [`Distance`] implementation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct YujianBo;

impl<S: Symbol> Distance<S> for YujianBo {
    fn distance(&self, a: &[S], b: &[S]) -> f64 {
        yujian_bo(a, b)
    }

    fn name(&self) -> &'static str {
        "d_YB"
    }

    fn is_metric(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::check_metric_axioms;

    #[test]
    fn zero_iff_equal() {
        assert_eq!(yujian_bo(b"same", b"same"), 0.0);
        assert_eq!(yujian_bo::<u8>(b"", b""), 0.0);
        assert!(yujian_bo(b"a", b"b") > 0.0);
    }

    #[test]
    fn totally_different_strings_saturate_at_one() {
        // Disjoint alphabets, equal length n: d_E = n,
        // d_YB = 2n/(3n) = 2/3.
        assert!((yujian_bo(b"aaaa", b"bbbb") - 2.0 / 3.0).abs() < 1e-12);
        // Empty vs non-empty: d_E = |y|, d_YB = 2|y|/(2|y|) = 1.
        assert_eq!(yujian_bo(b"", b"abc"), 1.0);
    }

    #[test]
    fn bounded_by_unit_interval() {
        let words: [&[u8]; 6] = [b"", b"a", b"ab", b"ba", b"abba", b"zzzz"];
        for &a in &words {
            for &b in &words {
                let d = yujian_bo(a, b);
                assert!((0.0..=1.0).contains(&d), "{a:?} vs {b:?}: {d}");
            }
        }
    }

    #[test]
    fn rewriting_identity_holds() {
        // d_YB = 2 - 2(|x|+|y|)/(|x|+|y|+d_E) for d_E > 0 (paper §2.2).
        let pairs: [(&[u8], &[u8]); 3] = [(b"ab", b"ba"), (b"kitten", b"sitting"), (b"", b"xyz")];
        for (a, b) in pairs {
            let d_e = crate::levenshtein::levenshtein(a, b) as f64;
            let s = (a.len() + b.len()) as f64;
            let direct = yujian_bo(a, b);
            let rewritten = 2.0 - 2.0 * s / (s + d_e);
            assert!((direct - rewritten).abs() < 1e-12);
        }
    }

    #[test]
    fn metric_axioms_hold_on_sample() {
        let sample: Vec<Vec<u8>> = [
            &b"ab"[..],
            b"aba",
            b"ba",
            b"b",
            b"aa",
            b"",
            b"abab",
            b"baba",
            b"aabb",
        ]
        .iter()
        .map(|w| w.to_vec())
        .collect();
        assert_eq!(check_metric_axioms(&YujianBo, &sample), None);
    }

    #[test]
    fn from_parts_agrees() {
        let a = b"kitten";
        let b = b"sitting";
        let d_e = crate::levenshtein::levenshtein(a, b);
        assert_eq!(yujian_bo(a, b), yujian_bo_from_parts(a.len(), b.len(), d_e));
    }

    #[test]
    fn distance_trait_impl() {
        let d = YujianBo;
        assert_eq!(Distance::<u8>::name(&d), "d_YB");
        assert!(Distance::<u8>::is_metric(&d));
    }
}
