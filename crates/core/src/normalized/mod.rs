//! The normalised edit distances the paper compares against (§2.2).
//!
//! * [`simple`] — divide `d_E` by `|x|+|y|`, `max(|x|,|y|)` or
//!   `min(|x|,|y|)`. Cheap, intuitive, and **not metrics**: the module
//!   carries the paper's explicit triangle-inequality counterexamples.
//! * [`marzal_vidal`] — the 1993 normalised edit distance `d_MV`:
//!   minimum over editing paths of (path weight)/(path length). A real
//!   optimisation over paths, quadratic-space cubic-time; not known to
//!   be a metric even with unit costs.
//! * [`yujian_bo`] — the 2007 normalised metric
//!   `d_YB = 2·d_E/(|x|+|y|+d_E)`: a closed formula on top of `d_E`
//!   that *is* a metric, but whose value saturates for very different
//!   strings (the paper's rewriting `d_YB = 2 − 2(|x|+|y|)/(|x|+|y|+d_E)`
//!   makes the insensitivity visible).

pub mod marzal_vidal;
pub mod simple;
pub mod yujian_bo;
