//! Closed-form weight of a canonical (insertions-first) contextual
//! path, and the harmonic sums it is built from.
//!
//! By Lemma 1, the cheapest path from `x` to `y` among those using
//! exactly `k` operations — `n_i` insertions, `n_s` substitutions and
//! `n_d` deletions — performs the insertions first (growing `x` to
//! length `|x| + n_i`), then the substitutions on that longest string,
//! then the deletions (shrinking to `|y|`). Its weight is
//!
//! ```text
//!      |x|+n_i            n_s        |y|+n_d
//!        Σ     1/i   +  ────────  +    Σ     1/i
//!     i=|x|+1           |x|+n_i     i=|y|+1
//! ```
//!
//! with `n_d = |x| − |y| + n_i` and `n_s = k − n_i − n_d` (Algorithm 1,
//! closing loop). Both DP variants ([`super::exact`],
//! [`super::heuristic`]) reduce to evaluating this formula over
//! feasible `(k, n_i)` pairs.

use crate::ratio::{harmonic_segment_exact, Ratio};

/// Harmonic segment `Σ_{i=a+1}^{b} 1/i` in `f64` (zero when `b <= a`).
///
/// Lengths in this crate are small enough (≤ a few thousand) that a
/// direct summation is both exact-enough and fast; summing from the
/// large end down adds the small terms first which keeps the error
/// comfortably below 1e-14 for the ranges we use.
#[inline]
pub fn harmonic_segment(a: usize, b: usize) -> f64 {
    let mut total = 0.0;
    let mut i = b;
    while i > a {
        total += 1.0 / i as f64;
        i -= 1;
    }
    total
}

/// The shape of a canonical contextual path between strings of lengths
/// `x_len` and `y_len`: how many insertions, substitutions and
/// deletions it performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PathShape {
    /// Source string length `|x|`.
    pub x_len: usize,
    /// Target string length `|y|`.
    pub y_len: usize,
    /// Number of insertions `n_i`.
    pub insertions: usize,
    /// Number of substitutions `n_s`.
    pub substitutions: usize,
    /// Number of deletions `n_d`.
    pub deletions: usize,
}

impl PathShape {
    /// Build the shape implied by Algorithm 1's closing loop from the
    /// path length `k` and the insertion count `n_i`.
    ///
    /// Returns `None` when `(k, n_i)` is infeasible for the given
    /// lengths, i.e. when the implied deletion or substitution count
    /// would be negative or the parity/length bookkeeping cannot hold.
    pub fn from_k_ni(x_len: usize, y_len: usize, k: usize, ni: usize) -> Option<PathShape> {
        // n_d = |x| - |y| + n_i must be >= 0 ...
        let nd = (x_len + ni).checked_sub(y_len)?;
        // ... and n_s = k - n_i - n_d must be >= 0.
        let ns = k.checked_sub(ni + nd)?;
        Some(PathShape {
            x_len,
            y_len,
            insertions: ni,
            substitutions: ns,
            deletions: nd,
        })
    }

    /// Total number of (cost-bearing) operations `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.insertions + self.substitutions + self.deletions
    }

    /// Length of the longest intermediate string, `|x| + n_i`.
    #[inline]
    pub fn peak_len(&self) -> usize {
        self.x_len + self.insertions
    }

    /// Contextual weight of the canonical path with this shape.
    ///
    /// # Panics
    /// Panics (debug) if the shape is inconsistent, i.e.
    /// `x_len + insertions - deletions != y_len`.
    pub fn weight(&self) -> f64 {
        debug_assert_eq!(
            self.x_len + self.insertions - self.deletions,
            self.y_len,
            "inconsistent path shape {self:?}"
        );
        let peak = self.peak_len();
        let mut w = harmonic_segment(self.x_len, peak);
        if self.substitutions > 0 {
            // A substitution requires a non-empty string; peak >= 1
            // whenever n_s >= 1 on a feasible path.
            w += self.substitutions as f64 / peak as f64;
        }
        w += harmonic_segment(self.y_len, self.y_len + self.deletions);
        w
    }

    /// Exact rational version of [`PathShape::weight`], used by tests
    /// to validate float evaluation and by the brute-force oracle.
    pub fn weight_exact(&self) -> Ratio {
        debug_assert_eq!(self.x_len + self.insertions - self.deletions, self.y_len);
        let peak = self.peak_len();
        let mut w = harmonic_segment_exact(self.x_len, peak);
        if self.substitutions > 0 {
            w += Ratio::new(self.substitutions as i128, peak as i128);
        }
        w += harmonic_segment_exact(self.y_len, self.y_len + self.deletions);
        w
    }
}

/// Weight of the canonical contextual path determined by `(k, n_i)`,
/// or `None` when infeasible. Convenience wrapper over [`PathShape`].
#[inline]
pub fn contextual_path_weight(x_len: usize, y_len: usize, k: usize, ni: usize) -> Option<f64> {
    PathShape::from_k_ni(x_len, y_len, k, ni).map(|s| s.weight())
}

/// Hard upper bound on the contextual distance between strings of
/// lengths `n` and `m`: the weight of the trivial path that deletes
/// all of `x` then inserts all of `y`.
///
/// Useful as an initial "best" in searches and as a sanity bound in
/// tests. (It is *not* tight: longer paths through long intermediate
/// strings are often cheaper, which is the whole point of `d_C`.)
pub fn trivial_path_weight(n: usize, m: usize) -> f64 {
    // Delete n symbols from lengths n..1, then insert m symbols
    // reaching lengths 1..m: H(n) + H(m).
    harmonic_segment(0, n) + harmonic_segment(0, m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmonic_segment_basic_values() {
        assert_eq!(harmonic_segment(0, 0), 0.0);
        assert_eq!(harmonic_segment(3, 3), 0.0);
        assert_eq!(harmonic_segment(5, 3), 0.0);
        assert!((harmonic_segment(0, 1) - 1.0).abs() < 1e-15);
        assert!((harmonic_segment(0, 4) - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-15);
        assert!((harmonic_segment(5, 7) - (1.0 / 6.0 + 1.0 / 7.0)).abs() < 1e-15);
    }

    #[test]
    fn harmonic_segment_agrees_with_exact() {
        for a in 0..30 {
            for b in a..40 {
                let f = harmonic_segment(a, b);
                let e = harmonic_segment_exact(a, b).to_f64();
                assert!((f - e).abs() < 1e-13, "H({a}..{b}] float {f} exact {e}");
            }
        }
    }

    #[test]
    fn shape_from_k_ni_rejects_infeasible() {
        // |x|=2, |y|=5: need at least 3 insertions.
        assert_eq!(PathShape::from_k_ni(2, 5, 3, 2), None);
        // k too small for the implied nd+ni.
        assert_eq!(PathShape::from_k_ni(5, 2, 2, 0), None);
        // Feasible: pure deletions.
        let s = PathShape::from_k_ni(5, 2, 3, 0).unwrap();
        assert_eq!(s.deletions, 3);
        assert_eq!(s.substitutions, 0);
    }

    #[test]
    fn example_4_optimal_shape_weight_is_8_15ths() {
        // ababa -> baab: k = 3 with 1 insertion, 0 substitutions,
        // 2 deletions gives the optimal 8/15.
        let s = PathShape::from_k_ni(5, 4, 3, 1).unwrap();
        assert_eq!(s.insertions, 1);
        assert_eq!(s.deletions, 2);
        assert_eq!(s.substitutions, 0);
        assert!((s.weight() - 8.0 / 15.0).abs() < 1e-12);
        assert_eq!(s.weight_exact(), crate::ratio::Ratio::new(8, 15));
    }

    #[test]
    fn example_4_suboptimal_shape_weight_is_7_10ths() {
        // k = 3 with 1 insertion after two deletions is canonicalised
        // to insertions-first; the 7/10 path of Example 4 corresponds
        // to shape (ni=1, ns=0, nd=2) *walked deletions-first*, which
        // Lemma 1 tells us is never cheaper. The deletions-first walk
        // costs 1/5 + 1/4 + 1/4 = 7/10 > 8/15.
        let deletions_first = 1.0 / 5.0 + 1.0 / 4.0 + 1.0 / 4.0;
        let canonical = PathShape::from_k_ni(5, 4, 3, 1).unwrap().weight();
        assert!(canonical < deletions_first);
    }

    #[test]
    fn substitution_only_shape() {
        // Same lengths, k substitutions: weight = k / n.
        let s = PathShape::from_k_ni(6, 6, 2, 0).unwrap();
        assert_eq!(s.substitutions, 2);
        assert!((s.weight() - 2.0 / 6.0).abs() < 1e-15);
    }

    #[test]
    fn pure_insertion_shape_is_harmonic_segment() {
        // λ -> y of length 3: 1 + 1/2 + 1/3.
        let s = PathShape::from_k_ni(0, 3, 3, 3).unwrap();
        assert!((s.weight() - (1.0 + 0.5 + 1.0 / 3.0)).abs() < 1e-15);
    }

    #[test]
    fn pure_deletion_shape_is_harmonic_segment() {
        // x of length 3 -> λ: deleting at lengths 3, 2, 1.
        let s = PathShape::from_k_ni(3, 0, 3, 0).unwrap();
        assert!((s.weight() - (1.0 / 3.0 + 0.5 + 1.0)).abs() < 1e-15);
    }

    #[test]
    fn empty_to_empty_zero_ops() {
        let s = PathShape::from_k_ni(0, 0, 0, 0).unwrap();
        assert_eq!(s.weight(), 0.0);
        assert!(s.weight_exact().is_zero());
    }

    #[test]
    fn weight_decreases_with_more_insertions_at_fixed_k() {
        // The analytic argument behind Lemma 1 / Algorithm 1's "max
        // insertions" choice: for fixed k, weight is non-increasing in
        // n_i. Check numerically over a grid.
        for n in 1..10usize {
            for m in 1..10usize {
                let kmin = n.abs_diff(m);
                for k in kmin..=(n + m) {
                    let mut prev: Option<f64> = None;
                    for ni in 0..=k {
                        if let Some(w) = contextual_path_weight(n, m, k, ni) {
                            if let Some(p) = prev {
                                assert!(
                                    w <= p + 1e-12,
                                    "weight increased with ni: n={n} m={m} k={k} ni={ni}"
                                );
                            }
                            prev = Some(w);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn trivial_path_weight_upper_bounds_some_shapes() {
        let t = trivial_path_weight(4, 3);
        // delete-all/insert-all is itself the shape (ni=3, ns=0, nd=4)
        // walked insertions-first, which is cheaper or equal.
        let s = PathShape::from_k_ni(4, 3, 7, 3).unwrap();
        assert!(s.weight() <= t + 1e-12);
    }

    #[test]
    fn float_weight_matches_exact_weight_on_grid() {
        for n in 0..8usize {
            for m in 0..8usize {
                for k in 0..=(n + m) {
                    for ni in 0..=k {
                        if let Some(s) = PathShape::from_k_ni(n, m, k, ni) {
                            let f = s.weight();
                            let e = s.weight_exact().to_f64();
                            assert!((f - e).abs() < 1e-12, "{s:?}: {f} vs {e}");
                        }
                    }
                }
            }
        }
    }
}
