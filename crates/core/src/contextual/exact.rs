//! Exact computation of the contextual distance — the paper's
//! **Algorithm 1**.
//!
//! For every prefix pair `(x[..i], y[..j])` and every path length `k`,
//! the dynamic program tracks `ni[i][j][k]`: the **maximum number of
//! insertions** on an internal path of exactly `k` cost-bearing
//! operations from `x[..i]` to `y[..j]` (`−∞` when no such path
//! exists). By Lemma 1, for a fixed `k` the cheapest canonical path
//! uses as many insertions as possible, so the distance is
//!
//! ```text
//! d_C(x, y) = min over feasible k of
//!             weight(PathShape::from_k_ni(|x|, |y|, k, ni[|x|][|y|][k]))
//! ```
//!
//! Complexity: `O(|x|·|y|·(|x|+|y|))` time. Two space variants:
//!
//! * [`contextual_distance`] — rolling two-row table,
//!   `O(|y|·(|x|+|y|))` space (the "quadratic space" variant the paper
//!   mentions can "easily be deduced by standard techniques");
//! * [`ContextualTable`] — full 3-D table kept for inspection: the
//!   feasible `(k, n_i)` profile and the optimal alignment shape,
//!   useful for diagnostics, teaching and tests.

use crate::contextual::bounded::{contextual_bounded, PreparedContextual};
use crate::contextual::kernel::{advance_cell, NEG};
use crate::contextual::weight::PathShape;
use crate::metric::{Distance, PreparedQuery};
use crate::Symbol;

/// Result of an exact contextual-distance computation: the optimal
/// path length, its shape, and its weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContextualAlignment {
    /// Number of cost-bearing operations on the optimal path.
    pub k: usize,
    /// Insertion/substitution/deletion counts of the optimal canonical
    /// path (Lemma 1 order: insertions, then substitutions, then
    /// deletions).
    pub shape: PathShape,
    /// The distance `d_C(x, y)`.
    pub weight: f64,
}

/// Exact contextual distance `d_C(x, y)` (Algorithm 1, rolling rows).
///
/// ```
/// use cned_core::contextual::exact::contextual_distance;
/// // Paper, Example 4: d_C(ababa, baab) = 8/15.
/// let d = contextual_distance(b"ababa", b"baab");
/// assert!((d - 8.0 / 15.0).abs() < 1e-12);
/// ```
pub fn contextual_distance<S: Symbol>(x: &[S], y: &[S]) -> f64 {
    contextual_alignment(x, y).weight
}

/// Exact contextual distance together with the optimal path shape,
/// using the rolling two-row table.
pub fn contextual_alignment<S: Symbol>(x: &[S], y: &[S]) -> ContextualAlignment {
    let (n, m) = (x.len(), y.len());
    if n == 0 && m == 0 {
        return ContextualAlignment {
            k: 0,
            shape: PathShape::from_k_ni(0, 0, 0, 0).expect("empty shape"),
            weight: 0.0,
        };
    }
    let kw = n + m + 1; // row stride per j-cell: entries for k = 0..=n+m

    // prev = row i-1, cur = row i; each row holds (m+1) cells of kw
    // i32 entries, contiguous in k for cache-friendly inner loops.
    let mut prev = vec![NEG; (m + 1) * kw];
    let mut cur = vec![NEG; (m + 1) * kw];

    // Row 0: ni[0][j][j] = j (insert everything).
    for j in 0..=m {
        prev[j * kw + j] = j as i32;
    }

    for i in 1..=n {
        cur.fill(NEG);
        // Column 0: ni[i][0][i] = 0 (delete everything).
        cur[i] = 0;
        for j in 1..=m {
            let (cur_left, cur_cell) = cur.split_at_mut(j * kw);
            let cell = &mut cur_cell[..kw];
            let left = &cur_left[(j - 1) * kw..j * kw];
            let diag = &prev[(j - 1) * kw..j * kw];
            let up = &prev[j * kw..(j + 1) * kw];
            advance_cell(cell, diag, up, left, x[i - 1] == y[j - 1], kw - 1);
        }
        core::mem::swap(&mut prev, &mut cur);
    }

    best_over_k(n, m, &prev[m * kw..(m + 1) * kw])
}

/// Scan the final cell's `k`-profile and take the cheapest feasible
/// canonical path (the closing loop of Algorithm 1).
fn best_over_k(n: usize, m: usize, profile: &[i32]) -> ContextualAlignment {
    let mut best: Option<ContextualAlignment> = None;
    for (k, &ni) in profile.iter().enumerate() {
        if ni < 0 {
            continue;
        }
        let shape = PathShape::from_k_ni(n, m, k, ni as usize)
            .expect("DP produced an infeasible (k, ni) pair");
        let weight = shape.weight();
        if best.is_none_or(|b| weight < b.weight) {
            best = Some(ContextualAlignment { k, shape, weight });
        }
    }
    best.expect("at least one feasible path always exists")
}

/// Full 3-D `ni` table of Algorithm 1, retained for inspection.
///
/// `O(|x|·|y|·(|x|+|y|))` space — use [`contextual_distance`] unless
/// you need per-`k` diagnostics. The table answers: for a path of
/// exactly `k` operations between the full strings (or any prefix
/// pair), how many insertions can it contain at most?
pub struct ContextualTable {
    n: usize,
    m: usize,
    kw: usize,
    table: Vec<i32>,
}

impl ContextualTable {
    /// Run Algorithm 1 keeping the whole table.
    pub fn new<S: Symbol>(x: &[S], y: &[S]) -> ContextualTable {
        let (n, m) = (x.len(), y.len());
        let kw = n + m + 1;
        let mut table = vec![NEG; (n + 1) * (m + 1) * kw];
        let idx = |i: usize, j: usize| (i * (m + 1) + j) * kw;

        table[idx(0, 0)] = 0;
        for j in 1..=m {
            table[idx(0, j) + j] = j as i32;
        }
        for i in 1..=n {
            table[idx(i, 0) + i] = 0;
        }
        for i in 1..=n {
            for j in 1..=m {
                let (head, tail) = table.split_at_mut(idx(i, j));
                let cell = &mut tail[..kw];
                let diag = &head[idx(i - 1, j - 1)..idx(i - 1, j - 1) + kw];
                let up = &head[idx(i - 1, j)..idx(i - 1, j) + kw];
                let left = &head[idx(i, j - 1)..idx(i, j - 1) + kw];
                advance_cell(cell, diag, up, left, x[i - 1] == y[j - 1], kw - 1);
            }
        }
        ContextualTable { n, m, kw, table }
    }

    /// Maximum number of insertions over internal paths of exactly `k`
    /// operations from `x[..i]` to `y[..j]`; `None` when no such path
    /// exists.
    pub fn max_insertions(&self, i: usize, j: usize, k: usize) -> Option<usize> {
        assert!(
            i <= self.n && j <= self.m && k < self.kw,
            "index out of range"
        );
        let v = self.table[(i * (self.m + 1) + j) * self.kw + k];
        (v >= 0).then_some(v as usize)
    }

    /// The feasible `(k, n_i, weight)` profile of the full strings —
    /// one entry per path length with at least one internal path.
    pub fn profile(&self) -> Vec<ContextualAlignment> {
        let base = (self.n * (self.m + 1) + self.m) * self.kw;
        (0..self.kw)
            .filter_map(|k| {
                let ni = self.table[base + k];
                (ni >= 0).then(|| {
                    let shape = PathShape::from_k_ni(self.n, self.m, k, ni as usize)
                        .expect("DP produced an infeasible (k, ni) pair");
                    ContextualAlignment {
                        k,
                        shape,
                        weight: shape.weight(),
                    }
                })
            })
            .collect()
    }

    /// The optimal alignment (minimum weight over the profile).
    pub fn best(&self) -> ContextualAlignment {
        if self.n == 0 && self.m == 0 {
            return ContextualAlignment {
                k: 0,
                shape: PathShape::from_k_ni(0, 0, 0, 0).expect("empty shape"),
                weight: 0.0,
            };
        }
        let base = (self.n * (self.m + 1) + self.m) * self.kw;
        best_over_k(self.n, self.m, &self.table[base..base + self.kw])
    }

    /// The distance `d_C(x, y)`.
    pub fn distance(&self) -> f64 {
        self.best().weight
    }

    /// Smallest feasible `k` — this equals the Levenshtein distance
    /// `d_E(x, y)`, a structural fact the tests exploit.
    pub fn min_feasible_k(&self) -> usize {
        let base = (self.n * (self.m + 1) + self.m) * self.kw;
        (0..self.kw)
            .find(|&k| self.table[base + k] >= 0)
            .expect("some k is always feasible")
    }
}

/// `d_C` as a [`Distance`] implementation (exact Algorithm 1).
///
/// The throughput hooks route through the band-pruned engine of
/// [`super::bounded`]: `distance_bounded` rejects most over-budget
/// candidates from cheap lower bounds (length, per-`k` weight,
/// bit-parallel `d_E`) before the cubic DP, and `prepare` caches the
/// query's Myers `Peq` bitmaps plus reusable DP scratch for whole
/// database scans. Search structures in `cned-search` therefore prune
/// `d_C` exactly as they do `d_E`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Contextual;

impl<S: Symbol> Distance<S> for Contextual {
    fn distance(&self, a: &[S], b: &[S]) -> f64 {
        contextual_distance(a, b)
    }

    fn distance_bounded(&self, a: &[S], b: &[S], bound: f64) -> Option<f64> {
        contextual_bounded(a, b, bound)
    }

    fn prepare<'q>(&'q self, query: &'q [S]) -> Box<dyn PreparedQuery<S> + 'q> {
        Box::new(PreparedContextual::new(query))
    }

    fn name(&self) -> &'static str {
        "d_C"
    }

    fn is_metric(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levenshtein::levenshtein;

    #[test]
    fn identical_strings_have_zero_distance() {
        assert_eq!(contextual_distance(b"abcabc", b"abcabc"), 0.0);
        assert_eq!(contextual_distance::<u8>(b"", b""), 0.0);
    }

    #[test]
    fn paper_example_4() {
        let d = contextual_distance(b"ababa", b"baab");
        assert!((d - 8.0 / 15.0).abs() < 1e-12, "got {d}");
    }

    #[test]
    fn paper_example_4_alignment_shape() {
        let a = contextual_alignment(b"ababa", b"baab");
        assert_eq!(a.k, 3);
        assert_eq!(a.shape.insertions, 1);
        assert_eq!(a.shape.substitutions, 0);
        assert_eq!(a.shape.deletions, 2);
    }

    #[test]
    fn empty_to_string_is_harmonic() {
        // λ -> abc: insertions at growing lengths 1, 2, 3.
        let d = contextual_distance(b"", b"abc");
        assert!((d - (1.0 + 0.5 + 1.0 / 3.0)).abs() < 1e-12);
        // abc -> λ: deletions at shrinking lengths 3, 2, 1 (same sum).
        let d2 = contextual_distance(b"abc", b"");
        assert!((d - d2).abs() < 1e-15);
    }

    #[test]
    fn single_substitution_cost() {
        // abc -> abd: one substitution on a string of length 3 = 1/3...
        // unless a longer path is cheaper; here 1/3 is optimal since
        // insert+delete costs 1/4 + 1/4 = 1/2 > 1/3.
        let d = contextual_distance(b"abc", b"abd");
        assert!((d - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn substitution_on_short_string_prefers_growth() {
        // a -> b: direct substitution costs 1. Insert then delete:
        // 1/2 + 1/2 = 1. No improvement — verify d = 1 exactly and the
        // algorithm doesn't undercut it.
        let d = contextual_distance(b"a", b"b");
        assert!((d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn distance_is_symmetric_on_samples() {
        let words: [&[u8]; 6] = [b"ab", b"aba", b"ba", b"contexto", b"context", b""];
        for &a in &words {
            for &b in &words {
                let dab = contextual_distance(a, b);
                let dba = contextual_distance(b, a);
                assert!((dab - dba).abs() < 1e-12, "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn min_feasible_k_is_levenshtein() {
        let pairs: [(&[u8], &[u8]); 5] = [
            (b"ababa", b"baab"),
            (b"abaa", b"aab"),
            (b"kitten", b"sitting"),
            (b"", b"abc"),
            (b"same", b"same"),
        ];
        for (a, b) in pairs {
            let t = ContextualTable::new(a, b);
            assert_eq!(t.min_feasible_k(), levenshtein(a, b), "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn table_and_rolling_agree() {
        let pairs: [(&[u8], &[u8]); 6] = [
            (b"ababa", b"baab"),
            (b"abaa", b"aab"),
            (b"kitten", b"sitting"),
            (b"", b"abc"),
            (b"aaaa", b"bbbb"),
            (b"abcabcabc", b"cbacba"),
        ];
        for (a, b) in pairs {
            let t = ContextualTable::new(a, b).distance();
            let r = contextual_distance(a, b);
            assert!((t - r).abs() < 1e-12, "{a:?} vs {b:?}: {t} vs {r}");
        }
    }

    #[test]
    fn profile_k_values_have_matching_parity() {
        // Internal path lengths k between fixed strings all share the
        // parity of d_E plus steps of... in fact k can vary by 1 (swap
        // a substitution for insert+delete), so feasible k form a
        // contiguous-ish set. Just check the profile is sorted, starts
        // at d_E, and all weights are positive.
        let t = ContextualTable::new(b"abaa", b"baab");
        let prof = t.profile();
        assert_eq!(prof.first().unwrap().k, levenshtein(b"abaa", b"baab"));
        for w in prof.windows(2) {
            assert!(w[0].k < w[1].k);
        }
        for p in &prof {
            assert!(p.weight > 0.0);
        }
    }

    #[test]
    fn max_insertions_bounds() {
        let t = ContextualTable::new(b"abaa", b"baab");
        // ni can never exceed |y| for internal paths.
        for k in 0..=(4 + 4) {
            if let Some(ni) = t.max_insertions(4, 4, k) {
                assert!(ni <= 4);
            }
        }
        // k = 0 is infeasible for distinct strings.
        assert_eq!(t.max_insertions(4, 4, 0), None);
    }

    #[test]
    fn longer_k_can_be_cheaper_than_levenshtein_k() {
        // The essence of the contextual distance: ababa -> baab has
        // d_E = 3 but also longer internal paths; Example 4's optimum
        // already uses k = 3. Construct a case where the optimum uses
        // k > d_E: substitutions on a short string are expensive, so
        // grow the string first when possible. x = "ab", y = "ba":
        // d_E = 2 (two substitutions, weight 2/2 = 1.0). The
        // alternative k = 4 path (2 ins + 2 del, e.g. via "bab")
        // costs 1/3 + 1/4 + 1/4 + 1/3 = 7/6 — worse. A case that
        // genuinely flips is harder to craft by hand, so assert the
        // invariant instead: the chosen k is argmin over the profile.
        let t = ContextualTable::new(b"ab", b"ba");
        let best = t.best();
        for p in t.profile() {
            assert!(best.weight <= p.weight + 1e-15);
        }
    }

    #[test]
    fn distance_trait_impl() {
        let d = Contextual;
        let v = Distance::<u8>::distance(&d, b"ababa", b"baab");
        assert!((v - 8.0 / 15.0).abs() < 1e-12);
        assert_eq!(Distance::<u8>::name(&d), "d_C");
        assert!(Distance::<u8>::is_metric(&d));
    }

    #[test]
    fn distance_trait_bounded_and_prepared_hooks() {
        let d = Contextual;
        let full = Distance::<u8>::distance(&d, b"ababa", b"baab");
        assert_eq!(d.distance_bounded(b"ababa", b"baab", full), Some(full));
        assert_eq!(d.distance_bounded(b"ababa", b"baab", full - 1e-6), None);
        let prepared = Distance::<u8>::prepare(&d, b"ababa");
        assert_eq!(prepared.distance_to(b"baab"), full);
        assert_eq!(prepared.distance_to_bounded(b"baab", full), Some(full));
        assert_eq!(prepared.distance_to_bounded(b"baab", 0.1), None);
    }

    #[test]
    fn neg_sentinel_survives_extreme_length_skew() {
        // Long-vs-short pairs drive the longest k loops in the kernel,
        // where the infeasibility sentinel is repeatedly incremented;
        // the saturating arithmetic must keep it pinned at -∞ while the
        // feasible entries stay exact. Here y is a prefix of x, so the
        // optimum is the pure-deletion path of weight H(|y|, |x|) —
        // also the closed-form per-k lower bound at k = |x| - |y|,
        // confirming both sides of the bookkeeping.
        let n = 2000usize;
        let x: Vec<u8> = (0..n).map(|i| (i % 3) as u8).collect();
        let y: Vec<u8> = vec![0, 1, 2];
        let a = contextual_alignment(&x, &y);
        let expect = crate::contextual::weight::harmonic_segment(y.len(), n);
        assert!((a.weight - expect).abs() < 1e-9, "got {}", a.weight);
        assert_eq!(a.k, n - y.len());
        assert_eq!(a.shape.insertions, 0);
        assert_eq!(a.shape.deletions, n - y.len());
        let rev = contextual_distance(&y, &x);
        assert!((rev - expect).abs() < 1e-9);
    }

    #[test]
    fn one_sided_empty_table() {
        let t = ContextualTable::new(b"", b"ab");
        assert!((t.distance() - 1.5).abs() < 1e-12);
        let t2 = ContextualTable::new(b"ab", b"");
        assert!((t2.distance() - 1.5).abs() < 1e-12);
    }
}
