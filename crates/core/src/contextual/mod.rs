//! The contextual normalised edit distance `d_C` — the paper's
//! contribution (Section 3).
//!
//! Each elementary operation `u → v` is charged `1 / max(|u|, |v|)`:
//! a substitution or deletion applied to a string of length `L` costs
//! `1/L`; an insertion producing a string of length `L+1` costs
//! `1/(L+1)`. The distance is the cheapest total over all rewriting
//! paths from `x` to `y`, and is a metric (Theorem 1).
//!
//! Three structural results make the computation tractable:
//!
//! 1. **Lemma 1** — among paths with a fixed number `k` of operations,
//!    one of minimal contextual weight performs all insertions first,
//!    then all substitutions, then all deletions (long intermediate
//!    strings make every subsequent operation cheaper). The weight of
//!    such a canonical path is a closed formula over
//!    `(|x|, |y|, k, n_i)` — see [`weight`].
//! 2. **Proposition 1** — only *internal* paths matter (every inserted
//!    symbol survives into `y`, every deleted symbol came from `x`), so
//!    the optimum is reachable by a Wagner–Fischer-style alignment DP.
//! 3. **Algorithm 1** — for each prefix pair and each path length `k`,
//!    track the maximum possible number of insertions `ni[i][j][k]`;
//!    the distance is the minimum of the closed formula over `k`.
//!    See [`exact`]. The `O(|x|·|y|)` heuristic that only examines the
//!    minimal feasible `k` per cell is in [`heuristic`]. Both share
//!    the cell-transition kernel in `kernel`.
//!
//! ## Bounded evaluation and why its pruning is admissible
//!
//! Nearest-neighbour search only needs `d_C(x, y)` when it beats a
//! budget; [`bounded`] answers exactly that question, usually without
//! running the cubic DP. Every prune rests on three invariants:
//!
//! * **The per-`k` weight bound is admissible by Lemma 1.** Among
//!   canonical paths of fixed length `k`, the closed-form weight is
//!   non-increasing in the insertion count `n_i` (each extra insertion
//!   raises the peak length, and every harmonic term only shrinks —
//!   the same monotonicity that lets Algorithm 1 track only the
//!   *maximum* `n_i` per cell). Evaluating the formula at the maximal
//!   feasible `n_i = min(|y|, ⌊(k − |x| + |y|)/2⌋)` therefore lower
//!   bounds every length-`k` path. Past the feasible band the bound
//!   grows with `k` (each `+2` step adds two fresh harmonic terms and
//!   only shrinks the substitution term), so a budget rules out every
//!   `k` beyond some ceiling `k_max` — the DP's third dimension never
//!   needs to extend past it.
//! * **`d_E` floors the path length by Proposition 1.** Only internal
//!   paths matter, and any internal path performs at least
//!   `d_E(x, y)` operations, so a bit-parallel
//!   [`crate::myers::myers_bounded`]`(x, y, k_max)` rejecting proves
//!   every feasible `k` exceeds `k_max` — candidate eliminated for
//!   the cost of an `O(|x|·|y|/64)` scan.
//! * **The corridor band preserves every within-budget path.** A path
//!   through prefix pair `(i, j)` uses at least `|i − j|` operations
//!   before it and `|(|x|−i) − (|y|−j)|` after it, so cells with
//!   `|i−j| + |(|x|−i)−(|y|−j)| > k_max` (and, per cell, `k` entries
//!   whose suffix cannot fit) only host paths already over budget.
//!   The same argument row-wise — every path crosses every row —
//!   justifies abandoning the whole computation when no frontier cell
//!   can complete below the budget.

pub mod bounded;
pub mod exact;
pub mod heuristic;
pub(crate) mod kernel;
pub mod weight;
