//! The contextual normalised edit distance `d_C` — the paper's
//! contribution (Section 3).
//!
//! Each elementary operation `u → v` is charged `1 / max(|u|, |v|)`:
//! a substitution or deletion applied to a string of length `L` costs
//! `1/L`; an insertion producing a string of length `L+1` costs
//! `1/(L+1)`. The distance is the cheapest total over all rewriting
//! paths from `x` to `y`, and is a metric (Theorem 1).
//!
//! Three structural results make the computation tractable:
//!
//! 1. **Lemma 1** — among paths with a fixed number `k` of operations,
//!    one of minimal contextual weight performs all insertions first,
//!    then all substitutions, then all deletions (long intermediate
//!    strings make every subsequent operation cheaper). The weight of
//!    such a canonical path is a closed formula over
//!    `(|x|, |y|, k, n_i)` — see [`weight`].
//! 2. **Proposition 1** — only *internal* paths matter (every inserted
//!    symbol survives into `y`, every deleted symbol came from `x`), so
//!    the optimum is reachable by a Wagner–Fischer-style alignment DP.
//! 3. **Algorithm 1** — for each prefix pair and each path length `k`,
//!    track the maximum possible number of insertions `ni[i][j][k]`;
//!    the distance is the minimum of the closed formula over `k`.
//!    See [`exact`]. The `O(|x|·|y|)` heuristic that only examines the
//!    minimal feasible `k` per cell is in [`heuristic`].

pub mod exact;
pub mod heuristic;
pub mod weight;
