//! Bounded evaluation of the contextual distance: Algorithm 1 with an
//! early-exit budget, the `d_C` counterpart of
//! [`crate::myers::myers_bounded`].
//!
//! Nearest-neighbour search rarely needs the exact value of a
//! distance — it needs to know whether the candidate can beat the
//! current best. For `d_E` that insight (PR 1) made mixed workloads
//! 15–29× faster; this module extends it to the cubic contextual DP,
//! which ROADMAP identified as the dominant cost of every mixed
//! workload since.
//!
//! [`contextual_bounded`]`(x, y, bound)` returns `Some(d_C(x, y))` iff
//! the distance is at most `bound`, and `None` otherwise — usually
//! *without* running the cubic DP at all. Three admissible gates run
//! first, cheapest to most expensive:
//!
//! 1. **length gate** — any path between lengths `n` and `m` performs
//!    at least `|n − m|` insertions (or deletions) at string lengths at
//!    most `max(n, m)`, so `d_C ≥ H(min) − H(max)` segment
//!    `Σ_{i=min+1}^{max} 1/i`;
//! 2. **per-`k` weight gate** — for every path length `k` the
//!    closed-form weight with the *maximum* feasible insertion count is
//!    a lower bound on any length-`k` path (Lemma 1: weight is
//!    non-increasing in `n_i` at fixed `k`). The largest `k` whose
//!    bound fits the budget caps the DP's third dimension (`k_max`);
//!    if no `k` fits, the candidate is rejected outright;
//! 3. **bit-parallel `d_E` gate** — every internal path has
//!    `k ≥ d_E(x, y)` (Proposition 1), so
//!    [`myers_bounded`]`(x, y, k_max)` rejecting means every feasible
//!    path length exceeds `k_max`, hence every weight exceeds `bound`.
//!
//! Only survivors run the DP, and that DP is itself pruned: the `k`
//! dimension stops at `k_max`, columns are banded to the diagonal
//! corridor `|i−j| + |(n−i)−(m−j)| ≤ k_max`, each cell caps its `k`
//! loop by the operations its suffix still requires, and whole rows
//! abandon the computation when the best weight completable from the
//! row frontier already exceeds the budget.
//!
//! [`ContextualScratch`] keeps the row buffers and harmonic tables
//! alive across calls; [`PreparedContextual`] adds the per-query
//! [`MyersPattern`] so a whole database scan pays the `Peq`
//! construction once — this is what
//! [`crate::metric::Distance::prepare`] returns for
//! [`super::exact::Contextual`] and what every index in `cned-search`
//! therefore drives.

use core::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::contextual::kernel::{advance_cell, NEG};
use crate::contextual::weight::PathShape;
use crate::metric::PreparedQuery;
use crate::myers::{myers_bounded, MyersPattern};
use crate::Symbol;

/// Slack added to every *pruning* comparison, so float noise in the
/// prefix-summed harmonic tables can only cause a little extra work,
/// never a wrong rejection. The final answer is still the exact DP
/// value compared strictly against `bound`.
pub const PRUNE_EPS: f64 = 1e-9;

static DP_RUNS: AtomicU64 = AtomicU64::new(0);
static GATE_REJECTIONS: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of bounded evaluations that actually ran the
/// (pruned) DP. Monotone, relaxed ordering — meant for benchmarks and
/// experiments to difference around a workload, not for control flow.
pub fn dp_runs() -> u64 {
    DP_RUNS.load(Ordering::Relaxed)
}

/// Process-wide count of bounded evaluations rejected by the cheap
/// gates (length / per-`k` weight / bit-parallel `d_E`) without
/// touching the DP. See [`dp_runs`].
pub fn gate_rejections() -> u64 {
    GATE_REJECTIONS.load(Ordering::Relaxed)
}

/// Reusable state for bounded contextual evaluations: DP row buffers,
/// the harmonic prefix table and the per-`k` bound table. Keeping one
/// of these per query (or per worker) removes every per-call
/// allocation from the hot path.
#[derive(Debug, Default)]
pub struct ContextualScratch {
    /// `harmonic[t] = Σ_{i=1}^{t} 1/i` (so `harmonic[0] = 0`).
    harmonic: Vec<f64>,
    /// Per-`k` weight lower bounds; transformed in place into suffix
    /// minima before the DP runs.
    kbound: Vec<f64>,
    prev: Vec<i32>,
    cur: Vec<i32>,
}

impl ContextualScratch {
    /// An empty scratch; buffers grow on first use and are reused.
    pub fn new() -> ContextualScratch {
        ContextualScratch::default()
    }

    /// Bounded contextual distance: `Some(d_C(x, y))` iff it is at
    /// most `bound`. One-shot `d_E` gate via [`myers_bounded`]; use
    /// [`PreparedContextual`] to amortise the pattern bitmaps over a
    /// database scan.
    pub fn distance_bounded<S: Symbol>(&mut self, x: &[S], y: &[S], bound: f64) -> Option<f64> {
        self.run(x, y, bound, |k_max| myers_bounded(x, y, k_max))
    }

    fn ensure_harmonic(&mut self, upto: usize) {
        if self.harmonic.is_empty() {
            self.harmonic.push(0.0);
        }
        while self.harmonic.len() <= upto {
            let t = self.harmonic.len();
            self.harmonic.push(self.harmonic[t - 1] + 1.0 / t as f64);
        }
    }

    /// Harmonic segment `Σ_{i=a+1}^{b} 1/i` from the prefix table.
    #[inline]
    fn h(&self, a: usize, b: usize) -> f64 {
        self.harmonic[b] - self.harmonic[a]
    }

    /// Lower bound on the weight of any internal path of exactly `k`
    /// operations between lengths `n` and `m` (`∞` when no such path
    /// shape exists). Admissible by Lemma 1: at fixed `k` the weight
    /// is non-increasing in the insertion count, so the shape with the
    /// maximum feasible `n_i = min(m, ⌊(k − n + m)/2⌋)` is cheapest.
    fn k_lower_bound(&self, n: usize, m: usize, k: usize) -> f64 {
        if k < n.abs_diff(m) || k > n + m {
            return f64::INFINITY;
        }
        let ni = ((k + m - n) / 2).min(m);
        let nd = n + ni - m;
        let ns = k - ni - nd;
        let peak = n + ni;
        let mut w = self.h(n, peak) + self.h(m, m + nd);
        if ns > 0 {
            w += ns as f64 / peak as f64;
        }
        w
    }

    /// Largest admissible path length for `(n, m, bound)`: the maximal
    /// `k` whose per-`k` lower bound fits the budget. Fills
    /// `self.kbound` with the per-`k` bounds as a side effect. `None`
    /// when no path length can fit — the candidate is rejected without
    /// looking at a single symbol.
    fn k_ceiling(&mut self, n: usize, m: usize, bound: f64) -> Option<usize> {
        self.ensure_harmonic(n + m);
        // Length gate first: the cheapest feasible k is |n - m|, whose
        // bound is exactly the harmonic segment between the lengths.
        if self.h(n.min(m), n.max(m)) > bound + PRUNE_EPS {
            return None;
        }
        self.kbound.clear();
        self.kbound.resize(n + m + 1, f64::INFINITY);
        let mut k_max = None;
        for k in n.abs_diff(m)..=n + m {
            let w = self.k_lower_bound(n, m, k);
            self.kbound[k] = w;
            if w <= bound + PRUNE_EPS {
                k_max = Some(k);
            }
        }
        k_max
    }

    /// Shared driver: gates, then the pruned DP. `gate(k_max)` must
    /// return `Some(d_E(x, y))` iff `d_E(x, y) <= k_max` (one-shot
    /// [`myers_bounded`] or a prepared [`MyersPattern`]).
    fn run<S: Symbol>(
        &mut self,
        x: &[S],
        y: &[S],
        bound: f64,
        gate: impl FnOnce(usize) -> Option<usize>,
    ) -> Option<f64> {
        if x == y {
            return (0.0 <= bound).then_some(0.0);
        }
        let Some(k_max) = self.k_ceiling(x.len(), y.len(), bound) else {
            GATE_REJECTIONS.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        // An infinite budget (the exact-evaluation path index builds
        // and pivot distances take) can never be rejected — skip the
        // d_E pass, it would be dead work.
        if bound.is_finite() {
            let Some(de) = gate(k_max) else {
                // d_E > k_max: every feasible path length is ruled out.
                GATE_REJECTIONS.fetch_add(1, Ordering::Relaxed);
                return None;
            };
            // No further admissibility check is useful here: k_max is
            // itself admissible by construction and de <= k_max, so
            // the surviving k range always contains it.
            debug_assert!(de <= k_max);
        }
        DP_RUNS.fetch_add(1, Ordering::Relaxed);
        self.pruned_dp(x, y, bound, k_max)
    }

    /// The band-pruned Algorithm 1 over `k <= k_max`. Caller has
    /// established that at least one admissible `k` exists.
    fn pruned_dp<S: Symbol>(&mut self, x: &[S], y: &[S], bound: f64, k_max: usize) -> Option<f64> {
        let (n, m) = (x.len(), y.len());
        let kw = k_max + 1;
        // Band geometry: with t = i - j and D = n - m, a completed path
        // through (i, j) needs at least |t| + |D - t| operations, which
        // equals |D| + 2·dist(t, [min(0,D), max(0,D)]). Cells farther
        // than s = (k_max - |D|)/2 from the skew corridor can never
        // finish within k_max.
        let d_pos = n.saturating_sub(m); // max(0, D)
        let d_neg = m.saturating_sub(n); // max(0, -D)
        let s = (k_max - n.abs_diff(m)) / 2;

        // Suffix minima of the per-k bounds over [0, k_max]; the entry
        // at k_max + 1 is the "cannot complete" sentinel.
        self.kbound.truncate(kw);
        self.kbound.push(f64::INFINITY);
        for k in (0..kw).rev() {
            if self.kbound[k + 1] < self.kbound[k] {
                self.kbound[k] = self.kbound[k + 1];
            }
        }

        self.prev.clear();
        self.prev.resize((m + 1) * kw, NEG);
        self.cur.clear();
        self.cur.resize((m + 1) * kw, NEG);

        // Row 0: ni[0][j][j] = j (insert everything), within the band.
        let hi0 = (s + d_neg).min(m);
        for j in 0..=hi0 {
            self.prev[j * kw + j] = j as i32;
        }

        for i in 1..=n {
            let lo = i.saturating_sub(d_pos + s);
            let hi = (i + d_neg + s).min(m);
            debug_assert!(lo <= hi, "band cannot be empty inside the corridor");

            // Clear the stale band neighbourhood: `cur` still holds row
            // i-2, and both this row's left-read at lo-1 and the next
            // row's up/diag reads one past hi must see NEG, not junk.
            let clr_lo = lo.saturating_sub(1);
            let clr_hi = (hi + 1).min(m);
            self.cur[clr_lo * kw..(clr_hi + 1) * kw].fill(NEG);

            if lo == 0 {
                // Column 0: ni[i][0][i] = 0 (delete everything) — kept
                // only if the cell's suffix still fits the budget.
                let gap = (n - i).abs_diff(m);
                if gap <= k_max && i <= k_max - gap {
                    self.cur[i] = 0;
                }
            }

            let xi = x[i - 1];
            for j in lo.max(1)..=hi {
                // Within the band, gap <= k_max (see geometry above).
                let kcap = k_max - (n - i).abs_diff(m - j);
                let (cur_left, cur_cell) = self.cur.split_at_mut(j * kw);
                let cell = &mut cur_cell[..kw];
                let left = &cur_left[(j - 1) * kw..j * kw];
                let diag = &self.prev[(j - 1) * kw..j * kw];
                let up = &self.prev[j * kw..(j + 1) * kw];
                advance_cell(cell, diag, up, left, xi == y[j - 1], kcap);
            }

            // Row frontier early-exit: every x-prefix row lies on every
            // path, so if no cell of this row can complete below the
            // budget, no path can. (Skipped for infinite budgets, where
            // the check could never fire and would only tax the row.)
            if bound.is_finite() && i < n {
                let mut frontier = f64::INFINITY;
                for j in lo..=hi {
                    let cell = &self.cur[j * kw..(j + 1) * kw];
                    if let Some(k_min) = cell.iter().position(|&v| v >= 0) {
                        let gap = (n - i).abs_diff(m - j);
                        let lb = self.kbound[(k_min + gap).min(kw)];
                        if lb < frontier {
                            frontier = lb;
                        }
                    }
                }
                if frontier > bound + PRUNE_EPS {
                    return None;
                }
            }
            core::mem::swap(&mut self.prev, &mut self.cur);
        }

        // Closing loop of Algorithm 1 over the surviving k range; uses
        // PathShape::weight (the same arithmetic as the exact DP) so a
        // within-bound answer is bit-identical to contextual_distance.
        let profile = &self.prev[m * kw..(m + 1) * kw];
        let mut best = f64::INFINITY;
        for (k, &ni) in profile.iter().enumerate() {
            if ni < 0 {
                continue;
            }
            let shape = PathShape::from_k_ni(n, m, k, ni as usize)
                .expect("DP produced an infeasible (k, ni) pair");
            let w = shape.weight();
            if w < best {
                best = w;
            }
        }
        (best <= bound).then_some(best)
    }
}

/// Bounded contextual distance `d_C` with a fresh scratch:
/// `Some(d_C(x, y))` iff `d_C(x, y) <= bound`, `None` otherwise.
///
/// ```
/// use cned_core::contextual::bounded::contextual_bounded;
/// // Paper, Example 4: d_C(ababa, baab) = 8/15.
/// assert_eq!(contextual_bounded(b"ababa", b"baab", 0.5), None);
/// let d = contextual_bounded(b"ababa", b"baab", 0.6).unwrap();
/// assert!((d - 8.0 / 15.0).abs() < 1e-12);
/// ```
pub fn contextual_bounded<S: Symbol>(x: &[S], y: &[S], bound: f64) -> Option<f64> {
    ContextualScratch::new().distance_bounded(x, y, bound)
}

/// A query prepared for repeated bounded `d_C` comparisons: the Myers
/// `Peq` bitmaps for the `d_E` gate are built once, and the DP scratch
/// is reused across every target.
///
/// This is what [`crate::metric::Distance::prepare`] returns for
/// [`super::exact::Contextual`]; the search structures in `cned-search`
/// route all database comparisons through it.
pub struct PreparedContextual<'q, S: Symbol> {
    query: &'q [S],
    pattern: MyersPattern<S>,
    scratch: RefCell<ContextualScratch>,
}

impl<'q, S: Symbol> PreparedContextual<'q, S> {
    /// Prepare `query` for comparisons against many strings.
    pub fn new(query: &'q [S]) -> PreparedContextual<'q, S> {
        PreparedContextual {
            query,
            pattern: MyersPattern::new(query),
            scratch: RefCell::new(ContextualScratch::new()),
        }
    }
}

impl<S: Symbol> PreparedQuery<S> for PreparedContextual<'_, S> {
    fn distance_to(&self, target: &[S]) -> f64 {
        self.distance_to_bounded(target, f64::INFINITY)
            .expect("an infinite bound always admits the distance")
    }

    fn distance_to_bounded(&self, target: &[S], bound: f64) -> Option<f64> {
        self.scratch
            .borrow_mut()
            .run(self.query, target, bound, |k| {
                self.pattern.distance_bounded(target, k)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contextual::exact::contextual_distance;
    use crate::contextual::weight::trivial_path_weight;

    fn corpus() -> Vec<Vec<u8>> {
        [
            &b""[..],
            b"a",
            b"b",
            b"ab",
            b"ba",
            b"ababa",
            b"baab",
            b"abaa",
            b"aab",
            b"kitten",
            b"sitting",
            b"aaaa",
            b"bbbb",
            b"abcabcabc",
            b"cbacba",
            b"aaaaaaaaaaaaaaaa",
        ]
        .iter()
        .map(|w| w.to_vec())
        .collect()
    }

    #[test]
    fn infinite_bound_equals_exact_bitwise() {
        for x in corpus() {
            for y in corpus() {
                let exact = contextual_distance(&x, &y);
                let bounded = contextual_bounded(&x, &y, f64::INFINITY);
                assert_eq!(bounded, Some(exact), "{x:?} vs {y:?}");
            }
        }
    }

    #[test]
    fn bound_at_exact_value_accepts_and_below_rejects() {
        for x in corpus() {
            for y in corpus() {
                let d = contextual_distance(&x, &y);
                assert_eq!(contextual_bounded(&x, &y, d), Some(d), "{x:?} vs {y:?}");
                if d > 0.0 {
                    assert_eq!(
                        contextual_bounded(&x, &y, d * 0.999 - 1e-6),
                        None,
                        "{x:?} vs {y:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn sweep_of_bounds_is_consistent() {
        let words = corpus();
        for x in &words {
            for y in &words {
                let d = contextual_distance(x, y);
                let top = trivial_path_weight(x.len(), y.len()) + 0.5;
                let mut b = 0.0;
                while b < top {
                    match contextual_bounded(x, y, b) {
                        Some(v) => {
                            assert!((v - d).abs() < 1e-12, "{x:?} vs {y:?} at {b}");
                            assert!(v <= b);
                        }
                        None => assert!(d > b, "{x:?} vs {y:?}: rejected at {b} but d = {d}"),
                    }
                    b += 0.17;
                }
            }
        }
    }

    #[test]
    fn negative_bound_rejects_everything() {
        assert_eq!(contextual_bounded(b"abc", b"abc", -1.0), None);
        assert_eq!(contextual_bounded(b"abc", b"abd", -1.0), None);
        assert_eq!(contextual_bounded::<u8>(b"", b"", -0.5), None);
    }

    #[test]
    fn zero_bound_detects_equality_only() {
        assert_eq!(contextual_bounded(b"abc", b"abc", 0.0), Some(0.0));
        assert_eq!(contextual_bounded::<u8>(b"", b"", 0.0), Some(0.0));
        assert_eq!(contextual_bounded(b"abc", b"abd", 0.0), None);
    }

    #[test]
    fn empty_versus_long_is_gated_cheaply() {
        // λ -> abc costs 1 + 1/2 + 1/3; any bound below that rejects
        // via the length gate. (Gate/DP counters are process-global, so
        // this asserts through the rejection counter, which can only
        // grow concurrently — never shrink.)
        let gates_before = gate_rejections();
        assert_eq!(contextual_bounded(b"", b"abc", 1.0), None);
        assert!(
            gate_rejections() > gates_before,
            "a sub-harmonic bound must be rejected by the gates"
        );
        let d = contextual_bounded(b"", b"abc", 2.0).unwrap();
        assert!((d - (1.0 + 0.5 + 1.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn scratch_reuse_matches_fresh_runs() {
        let mut scratch = ContextualScratch::new();
        let words = corpus();
        for x in &words {
            for y in &words {
                let d = contextual_distance(x, y);
                assert_eq!(scratch.distance_bounded(x, y, f64::INFINITY), Some(d));
                assert_eq!(scratch.distance_bounded(x, y, d / 2.0), {
                    if d <= d / 2.0 {
                        Some(d)
                    } else {
                        None
                    }
                });
            }
        }
    }

    #[test]
    fn prepared_query_matches_one_shot() {
        let words = corpus();
        for q in &words {
            let prepared = PreparedContextual::new(q);
            for t in &words {
                let d = contextual_distance(q, t);
                assert_eq!(prepared.distance_to(t), d, "{q:?} vs {t:?}");
                assert_eq!(prepared.distance_to_bounded(t, d), Some(d));
                if d > 0.0 {
                    assert_eq!(prepared.distance_to_bounded(t, d * 0.999 - 1e-6), None);
                }
            }
        }
    }

    #[test]
    fn tight_bound_skips_most_dps_on_a_scan() {
        // A dictionary-like scan with a tight budget: the gates must
        // reject the bulk of candidates before the cubic DP.
        let db: Vec<Vec<u8>> = (0..200u32)
            .map(|i| {
                let len = 6 + (i % 7) as usize;
                (0..len)
                    .map(|j| b'a' + ((i + j as u32 * 7) % 4) as u8)
                    .collect()
            })
            .collect();
        let query: Vec<u8> = b"abcdabcd".to_vec();
        let prepared = PreparedContextual::new(&query);
        let dp_before = dp_runs();
        let gate_before = gate_rejections();
        let mut hits = 0;
        for t in &db {
            if prepared.distance_to_bounded(t, 0.35).is_some() {
                hits += 1;
            }
        }
        let dps = dp_runs() - dp_before;
        let gated = gate_rejections() - gate_before;
        assert!(hits <= dps, "every hit runs the DP");
        assert!(
            gated >= db.len() as u64 / 2,
            "gates should reject most of the scan: {gated} of {}",
            db.len()
        );
        // Correctness of the survivors against the exact DP.
        for t in &db {
            let d = contextual_distance(&query, t);
            let b = prepared.distance_to_bounded(t, 0.35);
            if d <= 0.35 {
                assert_eq!(b, Some(d));
            } else {
                assert_eq!(b, None);
            }
        }
    }

    #[test]
    fn extreme_length_skew_stays_exact() {
        // Long-vs-short pairs drive long k loops through the saturating
        // sentinel arithmetic and the band clamping.
        let x: Vec<u8> = (0..1200).map(|i| (i % 5) as u8).collect();
        let y: Vec<u8> = vec![1, 2, 3];
        let d = contextual_distance(&x, &y);
        assert_eq!(contextual_bounded(&x, &y, f64::INFINITY), Some(d));
        assert_eq!(contextual_bounded(&x, &y, d), Some(d));
        assert_eq!(contextual_bounded(&x, &y, d - 1e-6), None);
        let d_rev = contextual_distance(&y, &x);
        assert!((d - d_rev).abs() < 1e-9);
    }
}
