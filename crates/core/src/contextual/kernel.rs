//! The shared cell-transition kernel of Algorithm 1.
//!
//! Both DP variants — the exact rolling/table programs in [`super::exact`]
//! and the band-pruned engine in [`super::bounded`] — advance the same
//! per-cell `k`-profile recurrence over `ni[i][j][k]`, the maximum
//! insertion count of an internal path of exactly `k` operations
//! between the prefixes `x[..i]` and `y[..j]`:
//!
//! ```text
//! ni[i][j][k] = max( ni[i-1][j-1][k]        if x[i-1] == y[j-1]  (free match)
//!              ,     ni[i-1][j-1][k-1]      otherwise            (substitution)
//!              ,     ni[i-1][j][k-1]                             (deletion)
//!              ,     ni[i][j-1][k-1] + 1 )                       (insertion)
//! ```
//!
//! Keeping this transition in one place means the bounded engine's
//! pruning can never drift from the exact semantics — both compile the
//! identical inner loop, the bounded variant merely caps the `k` range
//! per cell.

/// Sentinel for −∞ in the `ni` tables. `i32::MIN / 4` keeps both
/// `max(sentinel, …)` and `sentinel + 1` far below any real count; the
/// transition uses [`i32::saturating_add`] regardless, so even a
/// pathological chain of `+1`s over astronomically long inputs can
/// drift the sentinel towards zero but never wrap it around.
pub(crate) const NEG: i32 = i32::MIN / 4;

/// Advance one DP cell: fill `cell[0..=kcap]` from the `diag`/`up`/
/// `left` neighbour profiles. Entries beyond `kcap` are left untouched
/// (the exact programs pass `kcap = kw - 1`; the bounded engine passes
/// the per-cell ceiling and guarantees the tail is already `NEG`).
#[inline]
pub(crate) fn advance_cell(
    cell: &mut [i32],
    diag: &[i32],
    up: &[i32],
    left: &[i32],
    matches: bool,
    kcap: usize,
) {
    let end = kcap + 1;
    if matches {
        // Free match: same k, inherited insertions.
        cell[..end].copy_from_slice(&diag[..end]);
    } else {
        // Substitution: k-1 from the diagonal.
        cell[0] = NEG;
        cell[1..end].copy_from_slice(&diag[..end - 1]);
    }
    for k in 1..end {
        // Deletion from above (k-1), insertion from the left (k-1, one
        // more insertion). Saturating: the insertion increment must not
        // creep an "infeasible" sentinel towards feasibility, however
        // long the loop runs.
        let cand = up[k - 1].max(left[k - 1].saturating_add(1));
        if cand > cell[k] {
            cell[k] = cand;
        }
    }
}
