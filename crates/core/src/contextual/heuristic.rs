//! The fast heuristic `d_C,h` (paper, Section 4.1).
//!
//! Algorithm 1 is cubic because every cell tracks the insertion count
//! for *every* path length `k`. Experimentally the minimum of the
//! closing formula is "very often" attained at `k = d_E(x, y)`, so the
//! heuristic keeps, per cell, only the **minimal feasible `k`** (which
//! is exactly the Levenshtein distance of the prefixes) together with
//! the **maximum insertion count among minimal-`k` paths**, and
//! evaluates the closed formula once. This costs `O(|x|·|y|)` — the
//! same as a plain edit-distance computation, roughly twice the
//! constant factor.
//!
//! Properties (asserted by the test suite):
//! * `d_C,h(x, y) ≥ d_C(x, y)` always — the heuristic evaluates the
//!   weight of one *feasible* canonical path, so it can only
//!   overestimate;
//! * `d_C,h(x, y) = d_C(x, y)` in the vast majority of cases (the
//!   paper reports ≈90 % over its benchmarks, with deviations between
//!   0.008 and 0.03 — reproduced by experiment E2);
//! * `d_C,h` is symmetric and zero exactly on equal strings, but the
//!   triangle inequality is only inherited approximately — use `d_C`
//!   when a guaranteed metric is required.

use crate::contextual::bounded::PRUNE_EPS;
use crate::contextual::weight::{harmonic_segment, PathShape};
use crate::lanes::{Backend, LANES};
use crate::metric::{Distance, PreparedQuery};
use crate::myers::MyersPattern;
use crate::Symbol;

/// Per-cell state: minimal feasible path length (`= d_E` of the
/// prefixes) and the maximum insertion count among those paths.
#[derive(Debug, Clone, Copy)]
struct Cell {
    k: u32,
    ni: u32,
}

/// Fast heuristic contextual distance `d_C,h(x, y)`.
///
/// ```
/// use cned_core::contextual::{exact::contextual_distance,
///                             heuristic::contextual_heuristic};
/// let (x, y) = (b"ababa".as_slice(), b"baab".as_slice());
/// let h = contextual_heuristic(x, y);
/// let d = contextual_distance(x, y);
/// assert!(h >= d - 1e-12); // never underestimates
/// ```
pub fn contextual_heuristic<S: Symbol>(x: &[S], y: &[S]) -> f64 {
    contextual_heuristic_with(x, y, &mut HeuristicScratch::default())
}

/// Reusable DP rows for [`heuristic_k_ni_with`]: a prepared query
/// streaming against a whole database (every pivot and candidate of a
/// LAESA scan) allocates the rows once instead of twice per pair.
#[derive(Debug, Clone, Default)]
struct HeuristicScratch {
    prev: Vec<Cell>,
    cur: Vec<Cell>,
}

/// [`contextual_heuristic`] evaluating through caller-owned scratch.
fn contextual_heuristic_with<S: Symbol>(x: &[S], y: &[S], scratch: &mut HeuristicScratch) -> f64 {
    let (k, ni) = heuristic_k_ni_with(x, y, scratch);
    PathShape::from_k_ni(x.len(), y.len(), k, ni)
        .expect("minimal-k cell is always feasible")
        .weight()
}

/// The `(k, n_i)` pair the heuristic evaluates: `k = d_E(x, y)` and the
/// maximum insertion count among internal paths of that length.
///
/// Exposed so experiments can compare it against the exact optimum's
/// `(k, n_i)` (experiment E2, heuristic-agreement).
pub fn heuristic_k_ni<S: Symbol>(x: &[S], y: &[S]) -> (usize, usize) {
    heuristic_k_ni_with(x, y, &mut HeuristicScratch::default())
}

/// [`heuristic_k_ni`] over reusable row buffers.
fn heuristic_k_ni_with<S: Symbol>(
    x: &[S],
    y: &[S],
    scratch: &mut HeuristicScratch,
) -> (usize, usize) {
    let (n, m) = (x.len(), y.len());
    if m == 0 {
        return (n, 0);
    }
    if n == 0 {
        return (m, m);
    }

    // prev/cur are rows over j = 0..=m.
    let HeuristicScratch { prev, cur } = scratch;
    prev.clear();
    prev.extend((0..=m as u32).map(|j| Cell { k: j, ni: j }));
    cur.clear();
    cur.resize(m + 1, Cell { k: 0, ni: 0 });

    for i in 1..=n {
        cur[0] = Cell { k: i as u32, ni: 0 };
        for j in 1..=m {
            let diag = prev[j - 1];
            let up = prev[j];
            let left = cur[j - 1];

            // Candidate (k, ni) triples; pick min k, then max ni.
            let diag_cand = if x[i - 1] == y[j - 1] {
                diag // free match
            } else {
                Cell {
                    k: diag.k + 1,
                    ni: diag.ni,
                } // substitution
            };
            let del_cand = Cell {
                k: up.k + 1,
                ni: up.ni,
            };
            let ins_cand = Cell {
                k: left.k + 1,
                ni: left.ni + 1,
            };

            let mut best = diag_cand;
            for cand in [del_cand, ins_cand] {
                if cand.k < best.k || (cand.k == best.k && cand.ni > best.ni) {
                    best = cand;
                }
            }
            cur[j] = best;
        }
        core::mem::swap(prev, cur);
    }
    let last = prev[m];
    (last.k as usize, last.ni as usize)
}

/// Lower bound on `d_C,h` between lengths `n` and `m` given
/// `k = d_E`: the heuristic prices the canonical shape at the minimal
/// feasible path length, and at fixed `k` that weight is minimised by
/// the maximal insertion count (Lemma 1), which this evaluates.
fn heuristic_lower_bound(n: usize, m: usize, de: usize) -> f64 {
    debug_assert!(de >= n.abs_diff(m), "d_E is at least the length gap");
    let ni = ((de + m - n) / 2).min(m);
    PathShape::from_k_ni(n, m, de, ni)
        .expect("minimal-k shape with maximal insertions is feasible")
        .weight()
}

/// Shared gate-then-evaluate driver behind both the one-shot and the
/// prepared bounded paths (one gate sequence, so the two can never
/// silently diverge — the same principle as `forward_distance_impl!`):
/// equality fast path → harmonic length bound → per-`k` bound at
/// `k = d_E` (`de` supplied lazily: full bit-parallel computation or a
/// prepared pattern) → full `O(n·m)` heuristic DP (`eval` supplied by
/// the caller so the prepared path can route it through its reusable
/// scratch).
fn gated_heuristic<S: Symbol>(
    x: &[S],
    y: &[S],
    bound: f64,
    de: impl FnOnce() -> usize,
    eval: impl FnOnce() -> f64,
) -> Option<f64> {
    if x == y {
        return (0.0 <= bound).then_some(0.0);
    }
    // An infinite budget cannot be rejected — the gates (and their
    // d_E pass) would be dead work, as in the exact engine's `run`.
    if bound.is_finite() {
        let (n, m) = (x.len(), y.len());
        // d_C,h >= d_C >= the harmonic segment between the lengths.
        if harmonic_segment(n.min(m), n.max(m)) > bound + PRUNE_EPS {
            return None;
        }
        // d_C,h is the weight at k = d_E, never below the per-k bound.
        if heuristic_lower_bound(n, m, de()) > bound + PRUNE_EPS {
            return None;
        }
    }
    let h = eval();
    (h <= bound).then_some(h)
}

/// `d_C,h` as a [`Distance`] implementation.
///
/// Reported as *not* a metric: it is an upper bound of the metric
/// `d_C` that coincides with it most of the time, which is why the
/// paper still uses it inside LAESA (and why Table 2 shows identical
/// error rates for `d_C` and `d_C,h`).
///
/// `distance_bounded` front-runs the `O(|x|·|y|)` cell DP with the
/// same admissible gates as the exact engine: the length bound
/// (`d_C,h ≥ d_C ≥ H` segment between the lengths) and the per-`k`
/// bound at `k = d_E` (computed bit-parallel), which the heuristic's
/// value can never undercut. `prepare` caches the Myers `Peq` bitmaps
/// driving that gate across a database scan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ContextualHeuristic;

impl<S: Symbol> Distance<S> for ContextualHeuristic {
    fn distance(&self, a: &[S], b: &[S]) -> f64 {
        contextual_heuristic(a, b)
    }

    fn distance_bounded(&self, a: &[S], b: &[S], bound: f64) -> Option<f64> {
        gated_heuristic(
            a,
            b,
            bound,
            || crate::levenshtein::levenshtein(a, b),
            || contextual_heuristic(a, b),
        )
    }

    fn prepare<'q>(&'q self, query: &'q [S]) -> Box<dyn PreparedQuery<S> + 'q> {
        Box::new(PreparedHeuristic::new(query))
    }

    fn name(&self) -> &'static str {
        "d_C,h"
    }

    fn is_metric(&self) -> bool {
        false
    }
}

/// A query prepared for repeated `d_C,h` comparisons: the Myers `Peq`
/// bitmaps behind the `d_E` gate are built once per query, the query's
/// symbols are pre-mapped to alphabet ids for the lane DP, and the
/// heuristic DP's row buffers are reused across every comparison —
/// streaming a prepared query against a whole pivot set or database
/// stops allocating after the first pair.
///
/// Public (rather than only reachable through
/// [`ContextualHeuristic::prepare`]) so the lane-kernel agreement
/// tests and benches can pin an explicit [`Backend`] via the
/// `*_batch_with` entry points.
pub struct PreparedHeuristic<'q, S: Symbol> {
    query: &'q [S],
    pattern: MyersPattern<S>,
    scratch: core::cell::RefCell<HeuristicScratch>,
    /// Query symbols as pattern-alphabet ids (every query symbol has a
    /// real id by construction).
    xids: Vec<u64>,
    /// Lane scratch: `cols` holds the interleaved target-symbol ids,
    /// `a`/`b` the two packed DP rows.
    lanes: core::cell::RefCell<crate::lanes::LaneScratch>,
}

impl<'q, S: Symbol> PreparedHeuristic<'q, S> {
    /// Prepare `query` for repeated (batched) `d_C,h` comparisons.
    pub fn new(query: &'q [S]) -> PreparedHeuristic<'q, S> {
        let pattern = MyersPattern::new(query);
        let xids = query.iter().map(|&s| pattern.bits().symbol_id(s)).collect();
        PreparedHeuristic {
            query,
            pattern,
            scratch: core::cell::RefCell::new(HeuristicScratch::default()),
            xids,
            lanes: core::cell::RefCell::new(crate::lanes::LaneScratch::default()),
        }
    }

    /// [`PreparedQuery::distance_to_batch`] with an explicit backend.
    pub fn distance_to_batch_with(&self, backend: Backend, targets: &[&[S]], out: &mut [f64]) {
        assert_eq!(targets.len(), out.len(), "distance_to_batch size mismatch");
        let n = self.query.len();
        if backend == Backend::Scalar || n == 0 {
            let scratch = &mut *self.scratch.borrow_mut();
            for (target, slot) in targets.iter().zip(out.iter_mut()) {
                *slot = contextual_heuristic_with(self.query, target, scratch);
            }
            return;
        }
        let scratch = &mut *self.lanes.borrow_mut();
        let crate::lanes::LaneScratch {
            cols,
            a,
            b,
            order,
            counts,
        } = scratch;
        // Visit targets in length order so lane groups are near-uniform
        // (every pair is scored independently, so order is free).
        crate::lanes::length_order(order, counts, targets);
        let mut group: [&[S]; LANES] = [&[]; LANES];
        for chunk in order.chunks(LANES) {
            for (l, &i) in chunk.iter().enumerate() {
                group[l] = targets[i as usize];
            }
            self.lane_group(backend, &group[..chunk.len()], cols, a, b, |l, h| {
                out[chunk[l] as usize] = h;
            });
        }
    }

    /// [`PreparedQuery::distance_to_batch_bounded`] with an explicit
    /// backend: the same gate sequence as `gated_heuristic`, applied
    /// per lane (with the `d_E` gate itself batched through the lane
    /// Myers kernel), so the `Some`/`None` pattern and every returned
    /// value are bit-identical to the serial path.
    pub fn distance_to_batch_bounded_with(
        &self,
        backend: Backend,
        targets: &[&[S]],
        bound: f64,
        out: &mut [Option<f64>],
    ) {
        assert_eq!(
            targets.len(),
            out.len(),
            "distance_to_batch_bounded size mismatch"
        );
        let n = self.query.len();
        if backend == Backend::Scalar || n == 0 {
            for (target, slot) in targets.iter().zip(out.iter_mut()) {
                *slot = self.distance_to_bounded(target, bound);
            }
            return;
        }
        let scratch = &mut *self.lanes.borrow_mut();
        let crate::lanes::LaneScratch {
            cols,
            a,
            b,
            order,
            counts,
        } = scratch;
        crate::lanes::length_order(order, counts, targets);
        let mut de = [0usize; LANES];
        let mut eval_targets: [&[S]; LANES] = [&[]; LANES];
        let mut eval_slots = [0usize; LANES];
        for chunk in order.chunks(LANES) {
            // Gate pass: equality, then (for finite bounds) the
            // harmonic length bound; survivors need the d_E gate.
            let mut gate: [bool; LANES] = [false; LANES];
            for (l, &i) in chunk.iter().enumerate() {
                let target = targets[i as usize];
                if self.query == target {
                    out[i as usize] = (0.0 <= bound).then_some(0.0);
                } else if bound.is_finite() {
                    let m = target.len();
                    if harmonic_segment(n.min(m), n.max(m)) > bound + PRUNE_EPS {
                        out[i as usize] = None;
                    } else {
                        gate[l] = true;
                    }
                } else {
                    // Infinite budget: gates are dead work, straight
                    // to evaluation (marked by skipping the d_E gate).
                    gate[l] = true;
                }
            }
            // Batched d_E gate for the survivors (unbounded: the
            // scalar path's ceiling of max(n, m) never bites, so the
            // plain distance is the same value).
            let mut evals = 0usize;
            if bound.is_finite() {
                let mut de_targets: [&[S]; LANES] = [&[]; LANES];
                let mut de_idx = [0usize; LANES];
                let mut pending = 0usize;
                for (l, &i) in chunk.iter().enumerate() {
                    if gate[l] {
                        de_targets[pending] = targets[i as usize];
                        de_idx[pending] = i as usize;
                        pending += 1;
                    }
                }
                self.pattern.distance_batch_with(
                    backend,
                    &de_targets[..pending],
                    &mut de[..pending],
                );
                for p in 0..pending {
                    let i = de_idx[p];
                    let m = targets[i].len();
                    if heuristic_lower_bound(n, m, de[p]) > bound + PRUNE_EPS {
                        out[i] = None;
                    } else {
                        eval_targets[evals] = targets[i];
                        eval_slots[evals] = i;
                        evals += 1;
                    }
                }
            } else {
                for (l, &i) in chunk.iter().enumerate() {
                    if gate[l] {
                        eval_targets[evals] = targets[i as usize];
                        eval_slots[evals] = i as usize;
                        evals += 1;
                    }
                }
            }
            // Full DP for whatever survived, lane-parallel.
            self.lane_group(backend, &eval_targets[..evals], cols, a, b, |p, h| {
                out[eval_slots[p]] = (h <= bound).then_some(h);
            });
        }
    }

    /// Run the packed-key lane DP for up to [`LANES`] targets and hand
    /// each lane's heuristic value to `sink(lane_index, h)`.
    ///
    /// Requires a non-empty query; empty *targets* are fine (their
    /// lane reads the `(n, 0)` boundary cell, the same answer as the
    /// scalar early-out).
    #[allow(clippy::too_many_arguments)]
    fn lane_group(
        &self,
        backend: Backend,
        group: &[&[S]],
        cols: &mut Vec<u64>,
        a: &mut Vec<u64>,
        b: &mut Vec<u64>,
        mut sink: impl FnMut(usize, f64),
    ) {
        if group.is_empty() {
            return;
        }
        let n = self.query.len();
        let bits = self.pattern.bits();
        let max_m = group.iter().map(|t| t.len()).max().unwrap_or(0);
        // Grow-only: stale ids beyond a lane's own length sit in
        // columns whose cells never flow into that lane's answer
        // column (DP dependencies only look left/up), and the kernel
        // only ever *compares* ids — so no re-fill sentinel is needed.
        if cols.len() < max_m * LANES {
            cols.resize(max_m * LANES, crate::lanes::NO_SYMBOL);
        }
        for (l, target) in group.iter().enumerate() {
            for (j, &c) in target.iter().enumerate() {
                cols[j * LANES + l] = bits.symbol_id(c);
            }
        }
        crate::lanes::heuristic_rows(backend, &self.xids, cols, max_m, a, b);
        for (l, target) in group.iter().enumerate() {
            let m = target.len();
            let (k, ni) = crate::lanes::unpack_key(a[m * LANES + l]);
            let h = PathShape::from_k_ni(n, m, k, ni)
                .expect("minimal-k cell is always feasible")
                .weight();
            sink(l, h);
        }
    }
}

impl<S: Symbol> PreparedQuery<S> for PreparedHeuristic<'_, S> {
    fn distance_to(&self, target: &[S]) -> f64 {
        contextual_heuristic_with(self.query, target, &mut self.scratch.borrow_mut())
    }

    fn distance_to_bounded(&self, target: &[S], bound: f64) -> Option<f64> {
        gated_heuristic(
            self.query,
            target,
            bound,
            || {
                // A ceiling of max(n, m) never bites (d_E <= max), so
                // the prepared pattern returns the exact d_E for the
                // gate.
                let ceiling = self.query.len().max(target.len());
                self.pattern
                    .distance_bounded(target, ceiling)
                    .expect("d_E is at most the longer length")
            },
            || contextual_heuristic_with(self.query, target, &mut self.scratch.borrow_mut()),
        )
    }

    fn distance_to_batch(&self, targets: &[&[S]], out: &mut [f64]) {
        self.distance_to_batch_with(Backend::active(), targets, out);
    }

    fn distance_to_batch_bounded(&self, targets: &[&[S]], bound: f64, out: &mut [Option<f64>]) {
        self.distance_to_batch_bounded_with(Backend::active(), targets, bound, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contextual::exact::{contextual_distance, ContextualTable};
    use crate::levenshtein::levenshtein;

    #[test]
    fn identical_strings_are_zero() {
        assert_eq!(contextual_heuristic(b"abc", b"abc"), 0.0);
        assert_eq!(contextual_heuristic::<u8>(b"", b""), 0.0);
    }

    #[test]
    fn heuristic_k_equals_levenshtein() {
        let pairs: [(&[u8], &[u8]); 6] = [
            (b"ababa", b"baab"),
            (b"abaa", b"aab"),
            (b"kitten", b"sitting"),
            (b"", b"abc"),
            (b"abc", b""),
            (b"aaaa", b"aaaa"),
        ];
        for (a, b) in pairs {
            let (k, _) = heuristic_k_ni(a, b);
            assert_eq!(k, levenshtein(a, b), "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn heuristic_ni_matches_exact_table_at_min_k() {
        let pairs: [(&[u8], &[u8]); 5] = [
            (b"ababa", b"baab"),
            (b"abaa", b"aab"),
            (b"kitten", b"sitting"),
            (b"abcabc", b"cbacba"),
            (b"aab", b"baa"),
        ];
        for (a, b) in pairs {
            let (k, ni) = heuristic_k_ni(a, b);
            let t = ContextualTable::new(a, b);
            assert_eq!(
                t.max_insertions(a.len(), b.len(), k),
                Some(ni),
                "{a:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn never_underestimates_exact() {
        let words: [&[u8]; 8] = [b"ab", b"aba", b"ba", b"b", b"aa", b"", b"abab", b"bbaa"];
        for &a in &words {
            for &b in &words {
                let h = contextual_heuristic(a, b);
                let d = contextual_distance(a, b);
                assert!(h >= d - 1e-12, "{a:?} vs {b:?}: h={h} < d={d}");
            }
        }
    }

    #[test]
    fn agrees_with_exact_on_paper_example() {
        // For ababa/baab the optimum is at k = d_E = 3, so the
        // heuristic is exact here.
        let h = contextual_heuristic(b"ababa", b"baab");
        assert!((h - 8.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn symmetric() {
        let words: [&[u8]; 5] = [b"ab", b"aba", b"contextual", b"", b"normalised"];
        for &a in &words {
            for &b in &words {
                let hab = contextual_heuristic(a, b);
                let hba = contextual_heuristic(b, a);
                assert!((hab - hba).abs() < 1e-12, "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn empty_cases_match_exact() {
        assert_eq!(
            contextual_heuristic(b"", b"abc"),
            contextual_distance(b"", b"abc")
        );
        assert_eq!(
            contextual_heuristic(b"abc", b""),
            contextual_distance(b"abc", b"")
        );
    }

    #[test]
    fn distance_trait_impl() {
        let d = ContextualHeuristic;
        assert_eq!(Distance::<u8>::name(&d), "d_C,h");
        assert!(!Distance::<u8>::is_metric(&d));
    }

    #[test]
    fn bounded_and_prepared_agree_with_full_heuristic() {
        let d = ContextualHeuristic;
        let words: [&[u8]; 8] = [b"ab", b"aba", b"ba", b"b", b"aa", b"", b"abab", b"kitten"];
        for &a in &words {
            let prepared = Distance::<u8>::prepare(&d, a);
            for &b in &words {
                let h = contextual_heuristic(a, b);
                for bound in [0.0, h * 0.5, h, h + 0.25, f64::INFINITY] {
                    let expect = (h <= bound).then_some(h);
                    assert_eq!(
                        d.distance_bounded(a, b, bound),
                        expect,
                        "{a:?} vs {b:?} at {bound}"
                    );
                    assert_eq!(prepared.distance_to_bounded(b, bound), expect);
                }
                assert_eq!(prepared.distance_to(b), h);
            }
        }
    }
}
