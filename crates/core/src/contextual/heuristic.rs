//! The fast heuristic `d_C,h` (paper, Section 4.1).
//!
//! Algorithm 1 is cubic because every cell tracks the insertion count
//! for *every* path length `k`. Experimentally the minimum of the
//! closing formula is "very often" attained at `k = d_E(x, y)`, so the
//! heuristic keeps, per cell, only the **minimal feasible `k`** (which
//! is exactly the Levenshtein distance of the prefixes) together with
//! the **maximum insertion count among minimal-`k` paths**, and
//! evaluates the closed formula once. This costs `O(|x|·|y|)` — the
//! same as a plain edit-distance computation, roughly twice the
//! constant factor.
//!
//! Properties (asserted by the test suite):
//! * `d_C,h(x, y) ≥ d_C(x, y)` always — the heuristic evaluates the
//!   weight of one *feasible* canonical path, so it can only
//!   overestimate;
//! * `d_C,h(x, y) = d_C(x, y)` in the vast majority of cases (the
//!   paper reports ≈90 % over its benchmarks, with deviations between
//!   0.008 and 0.03 — reproduced by experiment E2);
//! * `d_C,h` is symmetric and zero exactly on equal strings, but the
//!   triangle inequality is only inherited approximately — use `d_C`
//!   when a guaranteed metric is required.

use crate::contextual::weight::PathShape;
use crate::metric::Distance;
use crate::Symbol;

/// Per-cell state: minimal feasible path length (`= d_E` of the
/// prefixes) and the maximum insertion count among those paths.
#[derive(Debug, Clone, Copy)]
struct Cell {
    k: u32,
    ni: u32,
}

/// Fast heuristic contextual distance `d_C,h(x, y)`.
///
/// ```
/// use cned_core::contextual::{exact::contextual_distance,
///                             heuristic::contextual_heuristic};
/// let (x, y) = (b"ababa".as_slice(), b"baab".as_slice());
/// let h = contextual_heuristic(x, y);
/// let d = contextual_distance(x, y);
/// assert!(h >= d - 1e-12); // never underestimates
/// ```
pub fn contextual_heuristic<S: Symbol>(x: &[S], y: &[S]) -> f64 {
    let (k, ni) = heuristic_k_ni(x, y);
    PathShape::from_k_ni(x.len(), y.len(), k, ni)
        .expect("minimal-k cell is always feasible")
        .weight()
}

/// The `(k, n_i)` pair the heuristic evaluates: `k = d_E(x, y)` and the
/// maximum insertion count among internal paths of that length.
///
/// Exposed so experiments can compare it against the exact optimum's
/// `(k, n_i)` (experiment E2, heuristic-agreement).
pub fn heuristic_k_ni<S: Symbol>(x: &[S], y: &[S]) -> (usize, usize) {
    let (n, m) = (x.len(), y.len());
    if m == 0 {
        return (n, 0);
    }
    if n == 0 {
        return (m, m);
    }

    // prev/cur are rows over j = 0..=m.
    let mut prev: Vec<Cell> = (0..=m as u32).map(|j| Cell { k: j, ni: j }).collect();
    let mut cur: Vec<Cell> = vec![Cell { k: 0, ni: 0 }; m + 1];

    for i in 1..=n {
        cur[0] = Cell { k: i as u32, ni: 0 };
        for j in 1..=m {
            let diag = prev[j - 1];
            let up = prev[j];
            let left = cur[j - 1];

            // Candidate (k, ni) triples; pick min k, then max ni.
            let diag_cand = if x[i - 1] == y[j - 1] {
                diag // free match
            } else {
                Cell {
                    k: diag.k + 1,
                    ni: diag.ni,
                } // substitution
            };
            let del_cand = Cell {
                k: up.k + 1,
                ni: up.ni,
            };
            let ins_cand = Cell {
                k: left.k + 1,
                ni: left.ni + 1,
            };

            let mut best = diag_cand;
            for cand in [del_cand, ins_cand] {
                if cand.k < best.k || (cand.k == best.k && cand.ni > best.ni) {
                    best = cand;
                }
            }
            cur[j] = best;
        }
        core::mem::swap(&mut prev, &mut cur);
    }
    let last = prev[m];
    (last.k as usize, last.ni as usize)
}

/// `d_C,h` as a [`Distance`] implementation.
///
/// Reported as *not* a metric: it is an upper bound of the metric
/// `d_C` that coincides with it most of the time, which is why the
/// paper still uses it inside LAESA (and why Table 2 shows identical
/// error rates for `d_C` and `d_C,h`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ContextualHeuristic;

impl<S: Symbol> Distance<S> for ContextualHeuristic {
    fn distance(&self, a: &[S], b: &[S]) -> f64 {
        contextual_heuristic(a, b)
    }

    fn name(&self) -> &'static str {
        "d_C,h"
    }

    fn is_metric(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contextual::exact::{contextual_distance, ContextualTable};
    use crate::levenshtein::levenshtein;

    #[test]
    fn identical_strings_are_zero() {
        assert_eq!(contextual_heuristic(b"abc", b"abc"), 0.0);
        assert_eq!(contextual_heuristic::<u8>(b"", b""), 0.0);
    }

    #[test]
    fn heuristic_k_equals_levenshtein() {
        let pairs: [(&[u8], &[u8]); 6] = [
            (b"ababa", b"baab"),
            (b"abaa", b"aab"),
            (b"kitten", b"sitting"),
            (b"", b"abc"),
            (b"abc", b""),
            (b"aaaa", b"aaaa"),
        ];
        for (a, b) in pairs {
            let (k, _) = heuristic_k_ni(a, b);
            assert_eq!(k, levenshtein(a, b), "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn heuristic_ni_matches_exact_table_at_min_k() {
        let pairs: [(&[u8], &[u8]); 5] = [
            (b"ababa", b"baab"),
            (b"abaa", b"aab"),
            (b"kitten", b"sitting"),
            (b"abcabc", b"cbacba"),
            (b"aab", b"baa"),
        ];
        for (a, b) in pairs {
            let (k, ni) = heuristic_k_ni(a, b);
            let t = ContextualTable::new(a, b);
            assert_eq!(
                t.max_insertions(a.len(), b.len(), k),
                Some(ni),
                "{a:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn never_underestimates_exact() {
        let words: [&[u8]; 8] = [b"ab", b"aba", b"ba", b"b", b"aa", b"", b"abab", b"bbaa"];
        for &a in &words {
            for &b in &words {
                let h = contextual_heuristic(a, b);
                let d = contextual_distance(a, b);
                assert!(h >= d - 1e-12, "{a:?} vs {b:?}: h={h} < d={d}");
            }
        }
    }

    #[test]
    fn agrees_with_exact_on_paper_example() {
        // For ababa/baab the optimum is at k = d_E = 3, so the
        // heuristic is exact here.
        let h = contextual_heuristic(b"ababa", b"baab");
        assert!((h - 8.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn symmetric() {
        let words: [&[u8]; 5] = [b"ab", b"aba", b"contextual", b"", b"normalised"];
        for &a in &words {
            for &b in &words {
                let hab = contextual_heuristic(a, b);
                let hba = contextual_heuristic(b, a);
                assert!((hab - hba).abs() < 1e-12, "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn empty_cases_match_exact() {
        assert_eq!(
            contextual_heuristic(b"", b"abc"),
            contextual_distance(b"", b"abc")
        );
        assert_eq!(
            contextual_heuristic(b"abc", b""),
            contextual_distance(b"abc", b"")
        );
    }

    #[test]
    fn distance_trait_impl() {
        let d = ContextualHeuristic;
        assert_eq!(Distance::<u8>::name(&d), "d_C,h");
        assert!(!Distance::<u8>::is_metric(&d));
    }
}
