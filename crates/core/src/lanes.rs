//! Lane-parallel (SIMD) multi-string kernels.
//!
//! Every query path in this workspace bottoms out in one-string-at-a-
//! time kernels: Myers' bit-parallel `d_E` column ([`crate::myers`])
//! and the two-row `(k, n_i)` DP behind the `d_C,h` heuristic
//! ([`crate::contextual::heuristic`]). Hyyrö's blocked formulation
//! already gives 64× *word* parallelism within one comparison; this
//! module adds the orthogonal factor: **lane** parallelism *across*
//! comparisons. Linear scans, LAESA pivot rows and the serving layer's
//! query chunks all present the same shape — one prepared query scored
//! against a contiguous run of database strings — so the kernels here
//! interleave the per-string state (`Pv`/`Mv`/score words for Myers,
//! packed `(k, n_i)` cells for the heuristic DP) of up to [`LANES`]
//! strings in struct-of-arrays layout and advance all of them in
//! lockstep.
//!
//! Three code paths, selected by [`Backend`]:
//!
//! * **`Scalar`** — the existing one-at-a-time kernels in a loop; the
//!   mandatory fallback, and the reference the others are
//!   property-tested against (bit-identical, including the bounded
//!   `Option` outcomes).
//! * **`Portable`** — plain `[u64; LANES]` loops with branchless
//!   select/masking, written so LLVM autovectorises them on whatever
//!   SIMD width the target offers (SSE2 on baseline `x86_64`, NEON on
//!   `aarch64`, …). Always available, and the default on non-x86
//!   targets.
//! * **`Avx2`** — hand-written AVX2 intrinsics (two `__m256i`
//!   registers per state vector, 4 × 64-bit lanes each), compiled
//!   behind `#[cfg(target_arch = "x86_64")]` + `#[target_feature]` and
//!   selected at **runtime** via `is_x86_feature_detected!`, so a
//!   baseline build still uses it on capable hardware without
//!   `-C target-cpu=native`.
//!
//! The kernels are deliberately **non-generic**: symbol-dependent work
//! (Peq bitmap lookup, alphabet-id remapping) happens in the generic
//! callers ([`crate::myers::MyersPattern::distance_batch`],
//! `d_C,h`'s prepared batch), which gather plain `u64` columns into
//! lane-interleaved scratch buffers; the SIMD loops only ever see
//! integers. This keeps the `#[target_feature]` functions monomorphic
//! and the unsafe surface minimal.
//!
//! Ragged batches are first-class: each lane carries its own length
//! and freezes (state and score) once its string is exhausted, so a
//! group can mix lengths arbitrarily and a tail group can fill unused
//! lanes with empty strings. The bounded Myers kernel additionally
//! retires a lane as soon as its running score provably cannot return
//! under its per-lane bound — the same early-exit rule as the scalar
//! engine, so the surviving `Some`/`None` outcomes are identical.

use std::sync::OnceLock;

/// Number of interleaved strings per kernel invocation.
///
/// Eight 64-bit states span two AVX2 registers (or one AVX-512), which
/// measured best on the portable path too: enough independent work to
/// hide the add-chain latency without spilling.
pub const LANES: usize = 8;

/// Sentinel symbol id for characters absent from the query alphabet
/// (and for the padding of ragged `d_C,h` lanes): never equal to any
/// real id, so it always compares as a mismatch.
pub(crate) const NO_SYMBOL: u64 = u64::MAX;

/// Which multi-string kernel implementation to run.
///
/// [`Backend::active`] resolves the process-wide choice once: the
/// `CNED_LANES` environment variable (`scalar`, `portable`, `avx2`,
/// `auto`) when set, otherwise the best detected option. Kernels also
/// accept an explicit backend (`*_with` entry points) so tests and
/// benches can pin each path without touching the environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// One-at-a-time scalar kernels (the pre-lane behaviour).
    Scalar,
    /// `[u64; LANES]` struct-of-arrays loops, autovectorised.
    Portable,
    /// AVX2 intrinsics (x86_64 only, runtime-detected).
    Avx2,
}

impl Backend {
    /// The best backend available on this machine.
    pub fn detect() -> Backend {
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            return Backend::Avx2;
        }
        Backend::Portable
    }

    /// Whether this backend can run on the current machine.
    pub fn is_available(self) -> bool {
        match self {
            Backend::Scalar | Backend::Portable => true,
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(not(target_arch = "x86_64"))]
            Backend::Avx2 => false,
        }
    }

    /// Display label (`scalar` / `portable` / `avx2`).
    pub fn label(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Portable => "portable",
            Backend::Avx2 => "avx2",
        }
    }

    /// The process-wide backend used by the dispatching batch entry
    /// points (`distance_batch`, the `PreparedQuery` batch hooks).
    ///
    /// Resolved once: `CNED_LANES` = `scalar` | `portable` | `avx2`
    /// (falls back to `Portable` when AVX2 is unavailable) | `auto`;
    /// unset or unrecognised values mean [`Backend::detect`].
    pub fn active() -> Backend {
        static ACTIVE: OnceLock<Backend> = OnceLock::new();
        *ACTIVE.get_or_init(|| {
            let choice = match std::env::var("CNED_LANES") {
                Ok(v) => match v.to_ascii_lowercase().as_str() {
                    "scalar" => Backend::Scalar,
                    "portable" => Backend::Portable,
                    "avx2" => Backend::Avx2,
                    _ => Backend::detect(),
                },
                Err(_) => Backend::detect(),
            };
            if choice.is_available() {
                choice
            } else {
                Backend::Portable
            }
        })
    }
}

/// Reusable buffers for the lane kernels: lane-interleaved `Eq`
/// columns (Myers) or symbol-id columns (`d_C,h`), plus the
/// struct-of-arrays DP state for the blocked / two-row variants.
#[derive(Debug, Clone, Default)]
pub(crate) struct LaneScratch {
    /// Lane-interleaved columns: `cols[j * LANES + l]` (single-word
    /// Myers, heuristic ids) or `cols[(j * blocks + b) * LANES + l]`
    /// (blocked Myers).
    pub cols: Vec<u64>,
    /// First SoA state vector (blocked `Pv` / heuristic `prev` row).
    pub a: Vec<u64>,
    /// Second SoA state vector (blocked `Mv` / heuristic `cur` row).
    pub b: Vec<u64>,
    /// Target visit order for large batches (length-sorted grouping).
    pub order: Vec<u32>,
    /// Length histogram scratch for [`length_order`]'s counting sort.
    pub counts: Vec<u32>,
}

/// Fill `order` with the batch's target indices, stably sorted by
/// target length when the batch spans more than one lane group.
///
/// Near-uniform groups keep the lockstep kernels from sweeping every
/// lane out to the longest member's length; since each pair is
/// scored independently under a fixed (or absent) bound, visiting
/// order does not change any result.
///
/// Lengths are small and dense, so this is a stable two-pass counting
/// sort (`O(n + max_len)`) — a comparison sort here costs as much as
/// scanning several lane groups. Falls back to a comparison sort for
/// degenerate length ranges (a histogram far larger than the batch).
pub(crate) fn length_order<S>(order: &mut Vec<u32>, counts: &mut Vec<u32>, targets: &[&[S]]) {
    order.clear();
    if targets.len() <= LANES {
        order.extend(0..targets.len() as u32);
        return;
    }
    let max_len = targets.iter().map(|t| t.len()).max().unwrap_or(0);
    if max_len > targets.len().saturating_mul(8).max(1024) {
        order.extend(0..targets.len() as u32);
        order.sort_by_key(|&i| targets[i as usize].len());
        return;
    }
    counts.clear();
    counts.resize(max_len + 2, 0);
    for t in targets {
        counts[t.len() + 1] += 1;
    }
    for i in 1..counts.len() {
        counts[i] += counts[i - 1];
    }
    order.resize(targets.len(), 0);
    for (i, t) in targets.iter().enumerate() {
        let slot = &mut counts[t.len()];
        order[*slot as usize] = i as u32;
        *slot += 1;
    }
}

// ---------------------------------------------------------------------------
// Portable kernels: plain Rust written to autovectorise.
// ---------------------------------------------------------------------------

pub(crate) mod portable {
    use super::LANES;

    /// Advance up to [`LANES`] single-word Myers states in lockstep.
    ///
    /// `eq[j * LANES + l]` is the Peq word of lane `l`'s `j`-th text
    /// symbol (zero-padded past the lane's length); `scores` enters as
    /// `m` per lane and leaves as the lane's edit distance. Lanes
    /// freeze once exhausted, so ragged lengths are exact.
    #[inline]
    pub fn myers_word(eq: &[u64], lens: &[usize; LANES], m: usize, scores: &mut [i64; LANES]) {
        debug_assert!((1..=64).contains(&m));
        let hshift = (m - 1) as u32;
        let max_len = lens.iter().copied().max().unwrap_or(0);
        let min_len = lens.iter().copied().min().unwrap_or(0);
        let mut pv = [!0u64; LANES];
        let mut mv = [0u64; LANES];
        // Columns where every lane is live need no freeze masks —
        // with length-sorted grouping this is almost all of them.
        for j in 0..min_len {
            let col: &[u64; LANES] = eq[j * LANES..(j + 1) * LANES].try_into().expect("lane col");
            for l in 0..LANES {
                let eqv = col[l];
                let (pvl, mvl) = (pv[l], mv[l]);
                let xv = eqv | mvl;
                let xh = (((eqv & pvl).wrapping_add(pvl)) ^ pvl) | eqv;
                let ph = mvl | !(xh | pvl);
                let mh = pvl & xh;
                scores[l] += (((ph >> hshift) & 1) as i64) - (((mh >> hshift) & 1) as i64);
                let ph_s = (ph << 1) | 1;
                let mh_s = mh << 1;
                pv[l] = mh_s | !(xv | ph_s);
                mv[l] = ph_s & xv;
            }
        }
        for j in min_len..max_len {
            let col: &[u64; LANES] = eq[j * LANES..(j + 1) * LANES].try_into().expect("lane col");
            for l in 0..LANES {
                let act = ((j < lens[l]) as u64).wrapping_neg();
                let eqv = col[l] & act;
                let (pvl, mvl) = (pv[l], mv[l]);
                let xv = eqv | mvl;
                let xh = (((eqv & pvl).wrapping_add(pvl)) ^ pvl) | eqv;
                let ph = mvl | !(xh | pvl);
                let mh = pvl & xh;
                let delta = (((ph >> hshift) & 1) as i64) - (((mh >> hshift) & 1) as i64);
                scores[l] += delta & (act as i64);
                let ph_s = (ph << 1) | 1;
                let mh_s = mh << 1;
                let npv = mh_s | !(xv | ph_s);
                let nmv = ph_s & xv;
                pv[l] = (npv & act) | (pvl & !act);
                mv[l] = (nmv & act) | (mvl & !act);
            }
        }
    }

    /// Bounded variant of [`myers_word`]: a lane *retires* (state and
    /// score freeze) as soon as its score exceeds
    /// `bound + remaining_columns` — the scalar engine's early-exit
    /// rule — and the whole group stops when every lane is finished or
    /// retired. A retired lane's frozen score is provably above its
    /// bound, so the caller's `score <= bound` test yields the same
    /// `None` the scalar kernel returns.
    #[inline]
    pub fn myers_word_bounded(
        eq: &[u64],
        lens: &[usize; LANES],
        m: usize,
        bounds: &[i64; LANES],
        scores: &mut [i64; LANES],
    ) {
        debug_assert!((1..=64).contains(&m));
        let hshift = (m - 1) as u32;
        let max_len = lens.iter().copied().max().unwrap_or(0);
        let mut pv = [!0u64; LANES];
        let mut mv = [0u64; LANES];
        let mut dead = [false; LANES];
        for j in 0..max_len {
            let col: &[u64; LANES] = eq[j * LANES..(j + 1) * LANES].try_into().expect("lane col");
            for l in 0..LANES {
                let act = (((j < lens[l]) && !dead[l]) as u64).wrapping_neg();
                let eqv = col[l] & act;
                let (pvl, mvl) = (pv[l], mv[l]);
                let xv = eqv | mvl;
                let xh = (((eqv & pvl).wrapping_add(pvl)) ^ pvl) | eqv;
                let ph = mvl | !(xh | pvl);
                let mh = pvl & xh;
                let delta = (((ph >> hshift) & 1) as i64) - (((mh >> hshift) & 1) as i64);
                scores[l] += delta & (act as i64);
                let ph_s = (ph << 1) | 1;
                let mh_s = mh << 1;
                let npv = mh_s | !(xv | ph_s);
                let nmv = ph_s & xv;
                pv[l] = (npv & act) | (pvl & !act);
                mv[l] = (nmv & act) | (mvl & !act);
            }
            let mut live = false;
            for l in 0..LANES {
                if j < lens[l] && !dead[l] {
                    // score > bound + remaining ⇒ it cannot return to
                    // the bound (±1 per column): retire the lane.
                    let remaining = (lens[l] - (j + 1)) as i64;
                    dead[l] = scores[l] > bounds[l] + remaining;
                    live |= !dead[l] && j + 1 < lens[l];
                }
            }
            if !live {
                break;
            }
        }
    }

    /// Advance up to [`LANES`] *blocked* Myers states (pattern longer
    /// than one word) in lockstep: `blocks` words per lane per column,
    /// with the per-lane horizontal carry chained across blocks exactly
    /// as in the scalar blocked kernel.
    ///
    /// `eq[(j * blocks + b) * LANES + l]`; `pv`/`mv` are caller scratch
    /// resized here. With `bounds`, lanes retire under the same rule as
    /// [`myers_word_bounded`].
    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub fn myers_blocked(
        eq: &[u64],
        blocks: usize,
        lens: &[usize; LANES],
        m: usize,
        bounds: Option<&[i64; LANES]>,
        pv: &mut Vec<u64>,
        mv: &mut Vec<u64>,
        scores: &mut [i64; LANES],
    ) {
        debug_assert!(blocks >= 2);
        let hshift = ((m - 1) % 64) as u32;
        let last = blocks - 1;
        let max_len = lens.iter().copied().max().unwrap_or(0);
        pv.clear();
        pv.resize(blocks * LANES, !0u64);
        mv.clear();
        mv.resize(blocks * LANES, 0u64);
        let mut dead = [false; LANES];
        // Columns where every lane is live need neither freeze masks
        // nor retirement checks — with length-sorted grouping and no
        // bound that is almost every column. The horizontal carry is
        // held as 0/1 words (`hp`/`hm`) so the whole lane loop stays
        // branch-free bitwise ops.
        let min_len = if bounds.is_some() {
            0
        } else {
            lens.iter().copied().min().unwrap_or(0)
        };
        for j in 0..min_len {
            let colbase = j * blocks * LANES;
            let mut hp = [1u64; LANES];
            let mut hm = [0u64; LANES];
            for b in 0..blocks {
                let col: &[u64; LANES] = eq[colbase + b * LANES..colbase + (b + 1) * LANES]
                    .try_into()
                    .expect("lane col");
                let state = b * LANES;
                let pvb: &mut [u64; LANES] = (&mut pv[state..state + LANES])
                    .try_into()
                    .expect("lane state");
                let mvb: &mut [u64; LANES] = (&mut mv[state..state + LANES])
                    .try_into()
                    .expect("lane state");
                if b == last {
                    for l in 0..LANES {
                        let eqx = col[l];
                        let (pvl, mvl) = (pvb[l], mvb[l]);
                        let xv = eqx | mvl;
                        let eqv = eqx | hm[l];
                        let xh = (((eqv & pvl).wrapping_add(pvl)) ^ pvl) | eqv;
                        let ph = mvl | !(xh | pvl);
                        let mh = pvl & xh;
                        scores[l] += (((ph >> hshift) & 1) as i64) - (((mh >> hshift) & 1) as i64);
                        let ph_s = (ph << 1) | hp[l];
                        let mh_s = (mh << 1) | hm[l];
                        pvb[l] = mh_s | !(xv | ph_s);
                        mvb[l] = ph_s & xv;
                    }
                } else {
                    for l in 0..LANES {
                        let hpos = hp[l];
                        let hneg = hm[l];
                        let eqx = col[l];
                        let (pvl, mvl) = (pvb[l], mvb[l]);
                        let xv = eqx | mvl;
                        let eqv = eqx | hneg;
                        let xh = (((eqv & pvl).wrapping_add(pvl)) ^ pvl) | eqv;
                        let ph = mvl | !(xh | pvl);
                        let mh = pvl & xh;
                        hp[l] = (ph >> 63) & 1;
                        hm[l] = (mh >> 63) & 1;
                        let ph_s = (ph << 1) | hpos;
                        let mh_s = (mh << 1) | hneg;
                        pvb[l] = mh_s | !(xv | ph_s);
                        mvb[l] = ph_s & xv;
                    }
                }
            }
        }
        for j in min_len..max_len {
            let colbase = j * blocks * LANES;
            let mut act = [0u64; LANES];
            let mut hin = [0i64; LANES];
            for l in 0..LANES {
                act[l] = (((j < lens[l]) && !dead[l]) as u64).wrapping_neg();
                hin[l] = 1;
            }
            for b in 0..blocks {
                let col: &[u64; LANES] = eq[colbase + b * LANES..colbase + (b + 1) * LANES]
                    .try_into()
                    .expect("lane col");
                let state = b * LANES;
                let pvb: &mut [u64; LANES] = (&mut pv[state..state + LANES])
                    .try_into()
                    .expect("lane state");
                let mvb: &mut [u64; LANES] = (&mut mv[state..state + LANES])
                    .try_into()
                    .expect("lane state");
                for l in 0..LANES {
                    let a = act[l];
                    let hneg = u64::from(hin[l] < 0);
                    let hpos = u64::from(hin[l] > 0);
                    let mut eqv = col[l] & a;
                    let (pvl, mvl) = (pvb[l], mvb[l]);
                    let xv = eqv | mvl;
                    eqv |= hneg;
                    let xh = (((eqv & pvl).wrapping_add(pvl)) ^ pvl) | eqv;
                    let ph = mvl | !(xh | pvl);
                    let mh = pvl & xh;
                    hin[l] = ((ph >> 63) & 1) as i64 - ((mh >> 63) & 1) as i64;
                    let ph_s = (ph << 1) | hpos;
                    let mh_s = (mh << 1) | hneg;
                    let npv = mh_s | !(xv | ph_s);
                    let nmv = ph_s & xv;
                    pvb[l] = (npv & a) | (pvl & !a);
                    mvb[l] = (nmv & a) | (mvl & !a);
                    if b == last {
                        let delta = (((ph >> hshift) & 1) as i64) - (((mh >> hshift) & 1) as i64);
                        scores[l] += delta & (a as i64);
                    }
                }
            }
            if let Some(bounds) = bounds {
                let mut live = false;
                for l in 0..LANES {
                    if j < lens[l] && !dead[l] {
                        let remaining = (lens[l] - (j + 1)) as i64;
                        dead[l] = scores[l] > bounds[l] + remaining;
                        live |= !dead[l] && j + 1 < lens[l];
                    }
                }
                if !live {
                    break;
                }
            }
        }
    }

    /// Advance up to [`LANES`] `d_C,h` two-row DPs in lockstep.
    ///
    /// Cells are packed as `(k << 32) | (u32::MAX - n_i)` so the
    /// scalar rule "minimal `k`, then maximal `n_i`" becomes a single
    /// unsigned `u64` min. `xids` are the query's symbols as alphabet
    /// ids; `yids[j * LANES + l]` lane `l`'s `j`-th target symbol id
    /// ([`super::NO_SYMBOL`]-padded). Garbage columns beyond a lane's
    /// own length never flow into columns at or below it (DP
    /// dependencies only look left/up), so each lane's answer is read
    /// at its own final column by the caller.
    #[inline]
    pub fn heuristic_rows(
        xids: &[u64],
        yids: &[u64],
        max_m: usize,
        prev: &mut Vec<u64>,
        cur: &mut Vec<u64>,
    ) {
        const K1: u64 = 1 << 32;
        let n = xids.len();
        debug_assert!(n >= 1);
        prev.clear();
        for j in 0..=max_m as u64 {
            let key = (j << 32) | (u64::from(u32::MAX) - j);
            prev.extend(std::iter::repeat_n(key, LANES));
        }
        cur.clear();
        cur.resize((max_m + 1) * LANES, 0);
        for (i, &xi) in xids.iter().enumerate() {
            let row0 = (((i + 1) as u64) << 32) | u64::from(u32::MAX);
            cur[..LANES].fill(row0);
            // `left` (the column-to-the-left cells) rides in registers
            // across the row; per-column array views keep the lane
            // loop free of bounds checks, so it vectorises.
            let mut left = [row0; LANES];
            for j in 1..=max_m {
                let ycol: &[u64; LANES] = yids[(j - 1) * LANES..j * LANES]
                    .try_into()
                    .expect("lane col");
                let diag: &[u64; LANES] = prev[(j - 1) * LANES..j * LANES]
                    .try_into()
                    .expect("lane col");
                let up: &[u64; LANES] = prev[j * LANES..(j + 1) * LANES]
                    .try_into()
                    .expect("lane col");
                let mut best = [0u64; LANES];
                for l in 0..LANES {
                    // match: +0; substitution: +1 to k (high field).
                    let sub = ((ycol[l] != xi) as u64) << 32;
                    let diag_c = diag[l].wrapping_add(sub);
                    let del_c = up[l].wrapping_add(K1);
                    // +1 to k and +1 to n_i: the borrow-free combined
                    // constant (low field stores MAX − n_i).
                    let ins_c = left[l].wrapping_add(K1 - 1);
                    best[l] = diag_c.min(del_c).min(ins_c);
                }
                cur[j * LANES..(j + 1) * LANES].copy_from_slice(&best);
                left = best;
            }
            std::mem::swap(prev, cur);
        }
    }
}

// ---------------------------------------------------------------------------
// AVX2 kernels: 8 lanes across two __m256i registers, runtime-detected.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
pub(crate) mod avx2 {
    use super::LANES;
    use core::arch::x86_64::*;

    /// One Myers column step for four 64-bit lanes; `act` is an
    /// all-ones/all-zero per-lane mask (inactive lanes freeze).
    ///
    /// Safe fn: with the feature enabled the arithmetic intrinsics
    /// are safe calls, and the body touches no raw pointers; the
    /// `#[target_feature]` calling restriction keeps non-AVX2 callers
    /// out.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    #[target_feature(enable = "avx2")]
    fn step4(
        pv: &mut __m256i,
        mv: &mut __m256i,
        sc: &mut __m256i,
        eqv: __m256i,
        act: __m256i,
        hcount: __m128i,
        ones: __m256i,
        all: __m256i,
    ) {
        let eqv = _mm256_and_si256(eqv, act);
        let xv = _mm256_or_si256(eqv, *mv);
        let add = _mm256_add_epi64(_mm256_and_si256(eqv, *pv), *pv);
        let xh = _mm256_or_si256(_mm256_xor_si256(add, *pv), eqv);
        let ph = _mm256_or_si256(*mv, _mm256_xor_si256(_mm256_or_si256(xh, *pv), all));
        let mh = _mm256_and_si256(*pv, xh);
        let phb = _mm256_and_si256(_mm256_srl_epi64(ph, hcount), ones);
        let mhb = _mm256_and_si256(_mm256_srl_epi64(mh, hcount), ones);
        *sc = _mm256_add_epi64(*sc, _mm256_and_si256(_mm256_sub_epi64(phb, mhb), act));
        let ph_s = _mm256_or_si256(_mm256_slli_epi64(ph, 1), ones);
        let mh_s = _mm256_slli_epi64(mh, 1);
        let npv = _mm256_or_si256(mh_s, _mm256_xor_si256(_mm256_or_si256(xv, ph_s), all));
        let nmv = _mm256_and_si256(ph_s, xv);
        *pv = _mm256_blendv_epi8(*pv, npv, act);
        *mv = _mm256_blendv_epi8(*mv, nmv, act);
    }

    /// AVX2 [`super::portable::myers_word`]: identical recurrence and
    /// results, two `__m256i` register groups instead of `[u64; 8]`.
    ///
    /// # Safety
    /// Requires AVX2 (guarded by the dispatcher's runtime detection).
    #[target_feature(enable = "avx2")]
    // SAFETY: unsafe-to-call by contract — the dispatcher verifies
    // AVX2 via `is_x86_feature_detected!` before entering.
    pub unsafe fn myers_word(
        eq: &[u64],
        lens: &[usize; LANES],
        m: usize,
        scores: &mut [i64; LANES],
    ) {
        debug_assert!((1..=64).contains(&m));
        let hcount = _mm_cvtsi32_si128((m - 1) as i32);
        let ones = _mm256_set1_epi64x(1);
        let all = _mm256_set1_epi64x(-1);
        let li: [i64; LANES] = core::array::from_fn(|l| lens[l] as i64);
        // SAFETY: `li` is a local `[i64; LANES]` (LANES = 8), so the
        // 4-lane reads at offsets 0 and 4 are in bounds; loadu has no
        // alignment requirement.
        let (lens_lo, lens_hi) = unsafe {
            (
                _mm256_loadu_si256(li.as_ptr().cast()),
                _mm256_loadu_si256(li.as_ptr().add(4).cast()),
            )
        };
        let (mut pv_lo, mut pv_hi) = (all, all);
        let (mut mv_lo, mut mv_hi) = (_mm256_setzero_si256(), _mm256_setzero_si256());
        let mut sc_lo = _mm256_set1_epi64x(m as i64);
        let mut sc_hi = sc_lo;
        let max_len = lens.iter().copied().max().unwrap_or(0);
        let min_len = lens.iter().copied().min().unwrap_or(0);
        // All-lanes-live prefix: freeze masks degenerate to all-ones
        // (near every column under length-sorted grouping).
        for j in 0..min_len {
            // SAFETY: j < max_len and the caller provides `eq` with
            // max_len * LANES words (LANES = 8), so both 4-lane reads
            // are in bounds; loadu has no alignment requirement.
            let (col_lo, col_hi) = unsafe {
                (
                    _mm256_loadu_si256(eq.as_ptr().add(j * LANES).cast()),
                    _mm256_loadu_si256(eq.as_ptr().add(j * LANES + 4).cast()),
                )
            };
            step4(
                &mut pv_lo, &mut mv_lo, &mut sc_lo, col_lo, all, hcount, ones, all,
            );
            step4(
                &mut pv_hi, &mut mv_hi, &mut sc_hi, col_hi, all, hcount, ones, all,
            );
        }
        for j in min_len..max_len {
            let jv = _mm256_set1_epi64x(j as i64);
            let act_lo = _mm256_cmpgt_epi64(lens_lo, jv);
            let act_hi = _mm256_cmpgt_epi64(lens_hi, jv);
            // SAFETY: j < max_len and the caller provides `eq` with
            // max_len * LANES words (LANES = 8), so both 4-lane reads
            // are in bounds; loadu has no alignment requirement.
            let (col_lo, col_hi) = unsafe {
                (
                    _mm256_loadu_si256(eq.as_ptr().add(j * LANES).cast()),
                    _mm256_loadu_si256(eq.as_ptr().add(j * LANES + 4).cast()),
                )
            };
            step4(
                &mut pv_lo, &mut mv_lo, &mut sc_lo, col_lo, act_lo, hcount, ones, all,
            );
            step4(
                &mut pv_hi, &mut mv_hi, &mut sc_hi, col_hi, act_hi, hcount, ones, all,
            );
        }
        // SAFETY: `scores` is `&mut [i64; LANES]`; the two 4-lane
        // stores exactly cover its 8 elements, storeu alignment-free.
        unsafe {
            _mm256_storeu_si256(scores.as_mut_ptr().cast(), sc_lo);
            _mm256_storeu_si256(scores.as_mut_ptr().add(4).cast(), sc_hi);
        }
    }

    /// AVX2 [`super::portable::myers_word_bounded`]: per-lane bounds,
    /// lanes retire via a dead-mask once provably over budget, group
    /// exits when no live lane remains.
    ///
    /// # Safety
    /// Requires AVX2 (guarded by the dispatcher's runtime detection).
    #[target_feature(enable = "avx2")]
    // SAFETY: unsafe-to-call by contract — the dispatcher verifies
    // AVX2 via `is_x86_feature_detected!` before entering.
    pub unsafe fn myers_word_bounded(
        eq: &[u64],
        lens: &[usize; LANES],
        m: usize,
        bounds: &[i64; LANES],
        scores: &mut [i64; LANES],
    ) {
        debug_assert!((1..=64).contains(&m));
        let hcount = _mm_cvtsi32_si128((m - 1) as i32);
        let ones = _mm256_set1_epi64x(1);
        let all = _mm256_set1_epi64x(-1);
        let li: [i64; LANES] = core::array::from_fn(|l| lens[l] as i64);
        // SAFETY: `li` is a local `[i64; LANES]` (LANES = 8), so the
        // 4-lane reads at offsets 0 and 4 are in bounds; loadu has no
        // alignment requirement.
        let (lens_lo, lens_hi) = unsafe {
            (
                _mm256_loadu_si256(li.as_ptr().cast()),
                _mm256_loadu_si256(li.as_ptr().add(4).cast()),
            )
        };
        // Retirement threshold after column j is bound + len - (j+1):
        // start it at bound + len - 1 and decrement per column.
        let bi: [i64; LANES] = core::array::from_fn(|l| bounds[l] + lens[l] as i64 - 1);
        // SAFETY: `bi` is a local `[i64; LANES]`; in-bounds 4-lane
        // reads at offsets 0 and 4, loadu alignment-free.
        let (mut lim_lo, mut lim_hi) = unsafe {
            (
                _mm256_loadu_si256(bi.as_ptr().cast()),
                _mm256_loadu_si256(bi.as_ptr().add(4).cast()),
            )
        };
        let (mut pv_lo, mut pv_hi) = (all, all);
        let (mut mv_lo, mut mv_hi) = (_mm256_setzero_si256(), _mm256_setzero_si256());
        let mut sc_lo = _mm256_set1_epi64x(m as i64);
        let mut sc_hi = sc_lo;
        let (mut dead_lo, mut dead_hi) = (_mm256_setzero_si256(), _mm256_setzero_si256());
        let max_len = lens.iter().copied().max().unwrap_or(0);
        for j in 0..max_len {
            let jv = _mm256_set1_epi64x(j as i64);
            let act_lo = _mm256_andnot_si256(dead_lo, _mm256_cmpgt_epi64(lens_lo, jv));
            let act_hi = _mm256_andnot_si256(dead_hi, _mm256_cmpgt_epi64(lens_hi, jv));
            if _mm256_testz_si256(act_lo, act_lo) != 0 && _mm256_testz_si256(act_hi, act_hi) != 0 {
                break;
            }
            // SAFETY: j < max_len and the caller provides `eq` with
            // max_len * LANES words (LANES = 8), so both 4-lane reads
            // are in bounds; loadu has no alignment requirement.
            let (col_lo, col_hi) = unsafe {
                (
                    _mm256_loadu_si256(eq.as_ptr().add(j * LANES).cast()),
                    _mm256_loadu_si256(eq.as_ptr().add(j * LANES + 4).cast()),
                )
            };
            step4(
                &mut pv_lo, &mut mv_lo, &mut sc_lo, col_lo, act_lo, hcount, ones, all,
            );
            step4(
                &mut pv_hi, &mut mv_hi, &mut sc_hi, col_hi, act_hi, hcount, ones, all,
            );
            dead_lo = _mm256_or_si256(
                dead_lo,
                _mm256_and_si256(_mm256_cmpgt_epi64(sc_lo, lim_lo), act_lo),
            );
            dead_hi = _mm256_or_si256(
                dead_hi,
                _mm256_and_si256(_mm256_cmpgt_epi64(sc_hi, lim_hi), act_hi),
            );
            lim_lo = _mm256_sub_epi64(lim_lo, ones);
            lim_hi = _mm256_sub_epi64(lim_hi, ones);
        }
        // SAFETY: `scores` is `&mut [i64; LANES]`; the two 4-lane
        // stores exactly cover its 8 elements, storeu alignment-free.
        unsafe {
            _mm256_storeu_si256(scores.as_mut_ptr().cast(), sc_lo);
            _mm256_storeu_si256(scores.as_mut_ptr().add(4).cast(), sc_hi);
        }
    }

    /// Signed 64-bit min is safe here: packed `(k, MAX − n_i)` keys
    /// never set the sign bit (`k ≤ |x| + |y| < 2³¹`).
    ///
    /// Safe fn (like [`step4`]): register-only arithmetic behind the
    /// `#[target_feature]` calling restriction.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn min_epi64(a: __m256i, b: __m256i) -> __m256i {
        _mm256_blendv_epi8(a, b, _mm256_cmpgt_epi64(a, b))
    }

    /// AVX2 [`super::portable::heuristic_rows`]: identical packed-key
    /// recurrence, eight lanes per column step.
    ///
    /// # Safety
    /// Requires AVX2 (guarded by the dispatcher's runtime detection).
    #[target_feature(enable = "avx2")]
    // SAFETY: unsafe-to-call by contract — the dispatcher verifies
    // AVX2 via `is_x86_feature_detected!` before entering.
    pub unsafe fn heuristic_rows(
        xids: &[u64],
        yids: &[u64],
        max_m: usize,
        prev: &mut Vec<u64>,
        cur: &mut Vec<u64>,
    ) {
        const K1: i64 = 1 << 32;
        debug_assert!(!xids.is_empty());
        prev.clear();
        for j in 0..=max_m as u64 {
            let key = (j << 32) | (u64::from(u32::MAX) - j);
            prev.extend(std::iter::repeat_n(key, LANES));
        }
        cur.clear();
        cur.resize((max_m + 1) * LANES, 0);
        let k1 = _mm256_set1_epi64x(K1);
        let k1m1 = _mm256_set1_epi64x(K1 - 1);
        for (i, &xi) in xids.iter().enumerate() {
            let row0 = ((((i + 1) as u64) << 32) | u64::from(u32::MAX)) as i64;
            cur[..LANES].fill(row0 as u64);
            let xiv = _mm256_set1_epi64x(xi as i64);
            let (mut left_lo, mut left_hi) = (_mm256_set1_epi64x(row0), _mm256_set1_epi64x(row0));
            // SAFETY: `prev` was just filled to (max_m + 1) * LANES
            // entries, so row-0 lanes 0..8 are in bounds; loadu has no
            // alignment requirement.
            let (mut diag_lo, mut diag_hi) = unsafe {
                (
                    _mm256_loadu_si256(prev.as_ptr().cast()),
                    _mm256_loadu_si256(prev.as_ptr().add(4).cast()),
                )
            };
            for j in 1..=max_m {
                // SAFETY: 1 ≤ j ≤ max_m; the caller provides `yids`
                // with max_m * LANES ids and `prev`/`cur` hold
                // (max_m + 1) * LANES entries, so every 4-lane read is
                // in bounds; loadu has no alignment requirement.
                let (y_lo, y_hi, up_lo, up_hi) = unsafe {
                    (
                        _mm256_loadu_si256(yids.as_ptr().add((j - 1) * LANES).cast()),
                        _mm256_loadu_si256(yids.as_ptr().add((j - 1) * LANES + 4).cast()),
                        _mm256_loadu_si256(prev.as_ptr().add(j * LANES).cast()),
                        _mm256_loadu_si256(prev.as_ptr().add(j * LANES + 4).cast()),
                    )
                };
                // mismatch ⇒ +K1 on the diagonal move.
                let sub_lo = _mm256_andnot_si256(_mm256_cmpeq_epi64(y_lo, xiv), k1);
                let sub_hi = _mm256_andnot_si256(_mm256_cmpeq_epi64(y_hi, xiv), k1);
                let best_lo = min_epi64(
                    _mm256_add_epi64(diag_lo, sub_lo),
                    min_epi64(_mm256_add_epi64(up_lo, k1), _mm256_add_epi64(left_lo, k1m1)),
                );
                let best_hi = min_epi64(
                    _mm256_add_epi64(diag_hi, sub_hi),
                    min_epi64(_mm256_add_epi64(up_hi, k1), _mm256_add_epi64(left_hi, k1m1)),
                );
                // SAFETY: `cur` was resized to (max_m + 1) * LANES
                // entries and j ≤ max_m, so both 4-lane stores land in
                // bounds; storeu has no alignment requirement.
                unsafe {
                    _mm256_storeu_si256(cur.as_mut_ptr().add(j * LANES).cast(), best_lo);
                    _mm256_storeu_si256(cur.as_mut_ptr().add(j * LANES + 4).cast(), best_hi);
                }
                (left_lo, left_hi) = (best_lo, best_hi);
                (diag_lo, diag_hi) = (up_lo, up_hi);
            }
            std::mem::swap(prev, cur);
        }
    }
}

// ---------------------------------------------------------------------------
// Dispatchers: Portable vs Avx2 (Scalar is handled above this layer).
// ---------------------------------------------------------------------------

/// Whether the backend resolves to the AVX2 kernels on this machine.
#[inline]
fn use_avx2(backend: Backend) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        backend == Backend::Avx2 && std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = backend;
        false
    }
}

/// Single-word Myers lane kernel (see [`portable::myers_word`]).
#[inline]
pub(crate) fn myers_word(
    backend: Backend,
    eq: &[u64],
    lens: &[usize; LANES],
    m: usize,
    scores: &mut [i64; LANES],
) {
    #[cfg(target_arch = "x86_64")]
    if use_avx2(backend) {
        // SAFETY: AVX2 presence checked at runtime just above.
        unsafe { avx2::myers_word(eq, lens, m, scores) };
        return;
    }
    let _ = use_avx2(backend);
    portable::myers_word(eq, lens, m, scores);
}

/// Bounded single-word Myers lane kernel (per-lane bounds).
#[inline]
pub(crate) fn myers_word_bounded(
    backend: Backend,
    eq: &[u64],
    lens: &[usize; LANES],
    m: usize,
    bounds: &[i64; LANES],
    scores: &mut [i64; LANES],
) {
    #[cfg(target_arch = "x86_64")]
    if use_avx2(backend) {
        // SAFETY: AVX2 presence checked at runtime just above.
        unsafe { avx2::myers_word_bounded(eq, lens, m, bounds, scores) };
        return;
    }
    let _ = backend;
    portable::myers_word_bounded(eq, lens, m, bounds, scores);
}

/// Blocked Myers lane kernel. The blocked case already carries 64×
/// word-parallelism per lane, so the portable SoA loop is used for
/// every non-scalar backend (AVX2 adds little and would triple the
/// unsafe surface).
#[allow(clippy::too_many_arguments)]
#[inline]
pub(crate) fn myers_blocked(
    _backend: Backend,
    eq: &[u64],
    blocks: usize,
    lens: &[usize; LANES],
    m: usize,
    bounds: Option<&[i64; LANES]>,
    pv: &mut Vec<u64>,
    mv: &mut Vec<u64>,
    scores: &mut [i64; LANES],
) {
    portable::myers_blocked(eq, blocks, lens, m, bounds, pv, mv, scores);
}

/// `d_C,h` lane DP: fills `prev` (inside `scratch`) with the final DP
/// row; the caller reads each lane's packed key at its own column.
#[inline]
pub(crate) fn heuristic_rows(
    backend: Backend,
    xids: &[u64],
    yids: &[u64],
    max_m: usize,
    prev: &mut Vec<u64>,
    cur: &mut Vec<u64>,
) {
    #[cfg(target_arch = "x86_64")]
    if use_avx2(backend) {
        // SAFETY: AVX2 presence checked at runtime just above.
        unsafe { avx2::heuristic_rows(xids, yids, max_m, prev, cur) };
        return;
    }
    let _ = backend;
    portable::heuristic_rows(xids, yids, max_m, prev, cur);
}

/// Unpack a packed `(k << 32) | (MAX − n_i)` heuristic cell.
#[inline]
pub(crate) fn unpack_key(key: u64) -> (usize, usize) {
    ((key >> 32) as usize, (u32::MAX - (key as u32)) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_labels_and_availability() {
        assert_eq!(Backend::Scalar.label(), "scalar");
        assert_eq!(Backend::Portable.label(), "portable");
        assert_eq!(Backend::Avx2.label(), "avx2");
        assert!(Backend::Scalar.is_available());
        assert!(Backend::Portable.is_available());
        // detect() must return something runnable.
        assert!(Backend::detect().is_available());
        assert!(Backend::active().is_available());
    }

    #[test]
    fn packed_key_roundtrip() {
        for (k, ni) in [(0usize, 0usize), (3, 1), (700, 700), (1 << 20, 12)] {
            let key = ((k as u64) << 32) | (u64::from(u32::MAX) - ni as u64);
            assert_eq!(unpack_key(key), (k, ni));
        }
    }
}
