//! Exact rational arithmetic on `i128`.
//!
//! The contextual distance is a sum of unit fractions (harmonic-number
//! segments), so comparing candidate paths with `f64` could in
//! principle pick the wrong minimum when two paths are extremely close.
//! This module provides a small exact fraction type used by the test
//! oracle ([`crate::brute`]) and by the exact-weight variant of the
//! path-weight formula, so the dynamic programs can be validated
//! without any floating-point tolerance.
//!
//! `i128` numerators/denominators overflow only for string lengths far
//! beyond anything the cubic algorithm could process anyway (the lcm of
//! `1..=n` exceeds `i128` around `n ≈ 90`; we reduce by gcd after every
//! operation, which in practice keeps values tiny for the lengths the
//! oracle handles). All operations panic on overflow in debug builds.

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// An exact rational number `num / den`, always kept in lowest terms
/// with a strictly positive denominator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ratio {
    num: i128,
    den: i128,
}

/// Greatest common divisor (non-negative).
fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Ratio {
    /// The rational zero.
    pub const ZERO: Ratio = Ratio { num: 0, den: 1 };
    /// The rational one.
    pub const ONE: Ratio = Ratio { num: 1, den: 1 };

    /// Construct `num/den` in lowest terms.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Ratio {
        assert!(den != 0, "zero denominator");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num, den).max(1);
        Ratio {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    /// The integer `n` as a rational.
    pub fn from_integer(n: i128) -> Ratio {
        Ratio { num: n, den: 1 }
    }

    /// The unit fraction `1/n`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn recip_of(n: i128) -> Ratio {
        Ratio::new(1, n)
    }

    /// Numerator (lowest terms, sign-carrying).
    pub fn numer(self) -> i128 {
        self.num
    }

    /// Denominator (lowest terms, always positive).
    pub fn denom(self) -> i128 {
        self.den
    }

    /// Nearest `f64`.
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// True when the value is exactly zero.
    pub fn is_zero(self) -> bool {
        self.num == 0
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl Add for Ratio {
    type Output = Ratio;
    fn add(self, rhs: Ratio) -> Ratio {
        // a/b + c/d = (a·(l/b) + c·(l/d)) / l with l = lcm(b, d); going
        // through the lcm rather than b·d delays overflow.
        let g = gcd(self.den, rhs.den);
        let l = self.den / g * rhs.den;
        Ratio::new(self.num * (l / self.den) + rhs.num * (l / rhs.den), l)
    }
}

impl AddAssign for Ratio {
    fn add_assign(&mut self, rhs: Ratio) {
        *self = *self + rhs;
    }
}

impl Sub for Ratio {
    type Output = Ratio;
    fn sub(self, rhs: Ratio) -> Ratio {
        self + (-rhs)
    }
}

impl Neg for Ratio {
    type Output = Ratio;
    fn neg(self) -> Ratio {
        Ratio {
            num: -self.num,
            den: self.den,
        }
    }
}

impl Mul for Ratio {
    type Output = Ratio;
    fn mul(self, rhs: Ratio) -> Ratio {
        // Cross-reduce before multiplying to keep intermediates small.
        let g1 = gcd(self.num, rhs.den).max(1);
        let g2 = gcd(rhs.num, self.den).max(1);
        Ratio::new(
            (self.num / g1) * (rhs.num / g2),
            (self.den / g2) * (rhs.den / g1),
        )
    }
}

impl Div for Ratio {
    type Output = Ratio;
    fn div(self, rhs: Ratio) -> Ratio {
        assert!(rhs.num != 0, "division by zero ratio");
        self * Ratio::new(rhs.den, rhs.num)
    }
}

impl PartialOrd for Ratio {
    // lint:allow(float-compare) — exact integer arithmetic via
    // Ord::cmp; total on all valid ratios, no floats involved.
    fn partial_cmp(&self, other: &Ratio) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Ratio) -> Ordering {
        // a/b ? c/d  <=>  a·d ? c·b   (b, d > 0). Cross-reduce first.
        let g1 = gcd(self.num, other.num).max(1);
        let g2 = gcd(self.den, other.den);
        ((self.num / g1) * (other.den / g2)).cmp(&((other.num / g1) * (self.den / g2)))
    }
}

/// Exact harmonic segment `Σ_{i=a+1}^{b} 1/i` (zero when `b <= a`).
///
/// This is the quantity appearing twice in the closing formula of
/// Algorithm 1: the cost of `b−a` consecutive insertions growing a
/// string from length `a` to `b`, and symmetrically for deletions.
pub fn harmonic_segment_exact(a: usize, b: usize) -> Ratio {
    let mut total = Ratio::ZERO;
    for i in (a + 1)..=b {
        total += Ratio::recip_of(i as i128);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_reduces_to_lowest_terms() {
        let r = Ratio::new(6, 8);
        assert_eq!(r.numer(), 3);
        assert_eq!(r.denom(), 4);
    }

    #[test]
    fn negative_denominator_normalises_sign() {
        let r = Ratio::new(1, -2);
        assert_eq!(r.numer(), -1);
        assert_eq!(r.denom(), 2);
        assert_eq!(Ratio::new(-1, -2), Ratio::new(1, 2));
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        Ratio::new(1, 0);
    }

    #[test]
    fn addition_and_subtraction() {
        let a = Ratio::new(1, 6);
        let b = Ratio::new(1, 10);
        assert_eq!(a + b, Ratio::new(4, 15));
        assert_eq!(a - b, Ratio::new(1, 15));
    }

    #[test]
    fn multiplication_and_division() {
        let a = Ratio::new(2, 3);
        let b = Ratio::new(9, 4);
        assert_eq!(a * b, Ratio::new(3, 2));
        assert_eq!(a / b, Ratio::new(8, 27));
    }

    #[test]
    fn ordering_is_exact() {
        assert!(Ratio::new(1, 3) < Ratio::new(34, 100));
        assert!(Ratio::new(1, 3) > Ratio::new(33, 100));
        assert_eq!(Ratio::new(2, 6).cmp(&Ratio::new(1, 3)), Ordering::Equal);
    }

    #[test]
    fn example_4_weights_compare_exactly() {
        // 7/10 (first path of Example 4) vs 8/15 (optimal path).
        let first = Ratio::new(1, 5) + Ratio::new(1, 4) + Ratio::new(1, 4);
        let second = Ratio::new(1, 6) + Ratio::new(1, 6) + Ratio::new(1, 5);
        assert_eq!(first, Ratio::new(7, 10));
        assert_eq!(second, Ratio::new(8, 15));
        assert!(second < first);
    }

    #[test]
    fn harmonic_segment_matches_manual_sum() {
        // Σ_{i=6}^{8} 1/i = 1/6 + 1/7 + 1/8 = 73/168.
        assert_eq!(harmonic_segment_exact(5, 8), Ratio::new(73, 168));
        assert_eq!(harmonic_segment_exact(4, 4), Ratio::ZERO);
        assert_eq!(harmonic_segment_exact(7, 3), Ratio::ZERO);
    }

    #[test]
    fn to_f64_round_trips_simple_fractions() {
        assert_eq!(Ratio::new(1, 2).to_f64(), 0.5);
        assert!((Ratio::new(8, 15).to_f64() - 8.0 / 15.0).abs() < 1e-15);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Ratio::new(3, 4).to_string(), "3/4");
        assert_eq!(Ratio::from_integer(5).to_string(), "5");
        assert_eq!(Ratio::new(-1, 2).to_string(), "-1/2");
    }
}
