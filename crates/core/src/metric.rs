//! The [`Distance`] abstraction and metric-axiom validation.
//!
//! Paper Definition 1: `d` is a *metric* over `X` when
//! `d(x,y) = 0 ⇔ x = y`, `d(x,y) = d(y,x)` and
//! `d(x,y) + d(y,z) ≥ d(x,z)`. Metric distances unlock
//! triangle-inequality-based nearest-neighbour algorithms (AESA,
//! LAESA); the validation helpers here let tests and experiments check
//! the axioms empirically on sampled triples, and document which of the
//! paper's distances are genuine metrics.

use crate::Symbol;

/// A (dis)similarity function over strings of symbols `S`.
///
/// Implementations are stateless value objects (`Levenshtein`,
/// `Contextual`, …), so they are `Copy`-cheap to pass around and can be
/// boxed behind `dyn Distance<S>` for experiment drivers that iterate
/// over "all distances in the paper".
pub trait Distance<S: Symbol>: Send + Sync {
    /// Distance between `a` and `b`. Must be non-negative and `0` for
    /// identical inputs; other axioms depend on the implementation
    /// (see [`Distance::is_metric`]).
    fn distance(&self, a: &[S], b: &[S]) -> f64;

    /// Distance with an early-exit budget: `Some(d)` iff
    /// `d = distance(a, b) <= bound`, `None` otherwise.
    ///
    /// The default computes the full distance and compares; engines
    /// with a cheaper "is it within `bound`" answer (Levenshtein via
    /// [`crate::myers::myers_bounded`]) override it. Nearest-neighbour
    /// search passes its current best as the bound, so most database
    /// comparisons can abandon early.
    ///
    /// A NaN distance (broken user cost table) fails `d <= bound` and
    /// is therefore rejected like an over-budget candidate; the debug
    /// assertion diagnoses it instead of letting it vanish silently.
    /// (The engine overrides never produce NaN; `cned-search` guards
    /// its unbounded call sites the same way.)
    fn distance_bounded(&self, a: &[S], b: &[S], bound: f64) -> Option<f64> {
        let d = self.distance(a, b);
        debug_assert!(
            !d.is_nan(),
            "Distance implementation returned NaN (broken cost table?)"
        );
        (d <= bound).then_some(d)
    }

    /// Prepare `query` for repeated comparisons against many strings.
    ///
    /// The default is a thin wrapper adding nothing; engines with a
    /// reusable per-query precomputation (Levenshtein's `Peq` symbol
    /// bitmaps, [`crate::myers::MyersPattern`]) override it. Search
    /// structures call this once per query and route every database
    /// comparison through the returned [`PreparedQuery`].
    fn prepare<'q>(&'q self, query: &'q [S]) -> Box<dyn PreparedQuery<S> + 'q> {
        Box::new(GenericPrepared { dist: self, query })
    }

    /// Distance from `query` to each of `targets`, written into `out`
    /// (`out.len() == targets.len()`).
    ///
    /// The default prepares the query once and delegates to
    /// [`PreparedQuery::distance_to_batch`], so every existing
    /// implementation keeps working unchanged; engines with
    /// lane-parallel kernels ([`crate::lanes`]) score up to
    /// [`crate::lanes::LANES`] targets per sweep behind this hook.
    /// Results are bit-identical to calling [`Distance::distance`] in
    /// a loop.
    fn distance_batch(&self, query: &[S], targets: &[&[S]], out: &mut [f64]) {
        assert_eq!(targets.len(), out.len(), "distance_batch size mismatch");
        self.prepare(query).distance_to_batch(targets, out);
    }

    /// Short display name matching the paper's notation (`d_E`, `d_C`,
    /// `d_C,h`, `d_MV`, `d_YB`, `d_max`, …).
    fn name(&self) -> &'static str;

    /// Whether this distance is a metric (satisfies all of
    /// Definition 1, including the triangle inequality).
    fn is_metric(&self) -> bool;
}

/// A query string bound to a distance, ready for repeated evaluation
/// against database strings (see [`Distance::prepare`]).
///
/// `Send` is a supertrait: batch and sharded serving pipelines prepare
/// a query once and may hand the prepared form to a worker thread, so
/// every implementation must be movable across threads. This is cheap
/// to satisfy — prepared state is per-query scratch (Myers `Peq`
/// bitmaps, contextual DP buffers), owned or behind `RefCell`, never
/// shared — and the bound makes the contract explicit instead of
/// leaving it to whichever pipeline first trips over a `!Send` cache.
/// (`Sync` is deliberately **not** required: `RefCell` scratch means a
/// prepared query must not be *shared* between threads; each worker
/// either prepares its own or takes ownership.)
pub trait PreparedQuery<S: Symbol>: Send {
    /// Distance from the prepared query to `target`.
    fn distance_to(&self, target: &[S]) -> f64;

    /// Bounded distance from the prepared query to `target`:
    /// `Some(d)` iff `d <= bound` (see [`Distance::distance_bounded`]).
    fn distance_to_bounded(&self, target: &[S], bound: f64) -> Option<f64>;

    /// Distance to each of `targets`, written into `out`
    /// (`out.len() == targets.len()`).
    ///
    /// The default loops over [`PreparedQuery::distance_to`]; the
    /// `d_E` and `d_C,h` engines override it with lane-parallel
    /// kernels ([`crate::lanes`]) that advance up to
    /// [`crate::lanes::LANES`] targets in lockstep. Overrides must be
    /// bit-identical to the serial loop — search results and the
    /// determinism tests depend on it.
    fn distance_to_batch(&self, targets: &[&[S]], out: &mut [f64]) {
        assert_eq!(targets.len(), out.len(), "distance_to_batch size mismatch");
        for (target, slot) in targets.iter().zip(out.iter_mut()) {
            *slot = self.distance_to(target);
        }
    }

    /// Bounded distance to each of `targets` under one shared `bound`:
    /// `out[i] = Some(d)` iff `d <= bound`, exactly as
    /// [`PreparedQuery::distance_to_bounded`] would return for each
    /// target individually (including `None` for NaN / over-budget
    /// candidates). Lane engines retire a lane as soon as it provably
    /// exceeds the bound; the surviving `Some`/`None` pattern is
    /// bit-identical to the serial loop.
    fn distance_to_batch_bounded(&self, targets: &[&[S]], bound: f64, out: &mut [Option<f64>]) {
        assert_eq!(
            targets.len(),
            out.len(),
            "distance_to_batch_bounded size mismatch"
        );
        for (target, slot) in targets.iter().zip(out.iter_mut()) {
            *slot = self.distance_to_bounded(target, bound);
        }
    }
}

/// Default [`PreparedQuery`]: no precomputation, forwards to the
/// underlying distance.
struct GenericPrepared<'q, S: Symbol, D: Distance<S> + ?Sized> {
    dist: &'q D,
    query: &'q [S],
}

impl<S: Symbol, D: Distance<S> + ?Sized> PreparedQuery<S> for GenericPrepared<'_, S, D> {
    fn distance_to(&self, target: &[S]) -> f64 {
        self.dist.distance(self.query, target)
    }
    fn distance_to_bounded(&self, target: &[S], bound: f64) -> Option<f64> {
        self.dist.distance_bounded(self.query, target, bound)
    }
}

/// Forward every [`Distance`] method through a deref-style wrapper.
///
/// One macro, one method list: when a new hook is added to the trait
/// (as `distance_bounded`/`prepare` were), it is forwarded by every
/// wrapper at once instead of silently falling back to the trait
/// default in whichever hand-written impl was forgotten — exactly the
/// bug class that would make `Box<dyn Distance>` panels lose the
/// engine's pruning while `&D` call sites kept it.
macro_rules! forward_distance_impl {
    ($($wrapper:ty),+ $(,)?) => {$(
        impl<S: Symbol, D: Distance<S> + ?Sized> Distance<S> for $wrapper {
            fn distance(&self, a: &[S], b: &[S]) -> f64 {
                (**self).distance(a, b)
            }
            fn distance_bounded(&self, a: &[S], b: &[S], bound: f64) -> Option<f64> {
                (**self).distance_bounded(a, b, bound)
            }
            fn prepare<'q>(&'q self, query: &'q [S]) -> Box<dyn PreparedQuery<S> + 'q> {
                (**self).prepare(query)
            }
            fn distance_batch(&self, query: &[S], targets: &[&[S]], out: &mut [f64]) {
                (**self).distance_batch(query, targets, out)
            }
            fn name(&self) -> &'static str {
                (**self).name()
            }
            fn is_metric(&self) -> bool {
                (**self).is_metric()
            }
        }
    )+};
}

forward_distance_impl!(&D, Box<D>, std::sync::Arc<D>);

/// Measurement adapter that strips every pruning hook from `D`:
/// `distance` forwards, but `distance_bounded` and `prepare` stay at
/// the trait defaults (full evaluation, then compare).
///
/// This is the unbounded *baseline* for benchmarks and for the
/// experiment drivers' `bounded=false` toggle — the behaviour every
/// distance had before it grew an engine, kept available so speedups
/// stay measurable end-to-end. Results are identical to the wrapped
/// distance; only the work per comparison changes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Unpruned<D>(pub D);

impl<S: Symbol, D: Distance<S>> Distance<S> for Unpruned<D> {
    fn distance(&self, a: &[S], b: &[S]) -> f64 {
        self.0.distance(a, b)
    }

    // `distance_bounded` and `prepare` deliberately keep the trait
    // defaults: that *is* the baseline being measured.

    fn name(&self) -> &'static str {
        self.0.name()
    }

    fn is_metric(&self) -> bool {
        self.0.is_metric()
    }
}

/// Enumeration of every distance evaluated in the paper's experiments
/// (Section 4), used by experiment drivers to build the full panel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DistanceKind {
    /// Plain Levenshtein `d_E`.
    Levenshtein,
    /// Exact contextual distance `d_C` (Algorithm 1).
    Contextual,
    /// Quadratic-time contextual heuristic `d_C,h` (Section 4.1).
    ContextualHeuristic,
    /// Marzal–Vidal normalised edit distance `d_MV` \[4\].
    MarzalVidal,
    /// Yujian–Bo normalised metric `d_YB` \[8\].
    YujianBo,
    /// `d_E / max(|x|,|y|)` — not a metric (§2.2).
    MaxNorm,
    /// `d_E / min(|x|,|y|)` — not a metric (§2.2).
    MinNorm,
    /// `d_E / (|x|+|y|)` — not a metric (§2.2).
    SumNorm,
}

impl DistanceKind {
    /// The five distances of Figures 2–4 and Table 1:
    /// `d_YB, d_C,h, d_MV, d_max, d_E`.
    pub const PAPER_PANEL: [DistanceKind; 5] = [
        DistanceKind::YujianBo,
        DistanceKind::ContextualHeuristic,
        DistanceKind::MarzalVidal,
        DistanceKind::MaxNorm,
        DistanceKind::Levenshtein,
    ];

    /// The six distances of Table 2 (classification):
    /// `d_YB, d_MV, d_C, d_C,h, d_max, d_E`.
    pub const TABLE2_PANEL: [DistanceKind; 6] = [
        DistanceKind::YujianBo,
        DistanceKind::MarzalVidal,
        DistanceKind::Contextual,
        DistanceKind::ContextualHeuristic,
        DistanceKind::MaxNorm,
        DistanceKind::Levenshtein,
    ];

    /// Instantiate the distance for symbol type `S`.
    pub fn build<S: Symbol>(self) -> Box<dyn Distance<S>> {
        match self {
            DistanceKind::Levenshtein => Box::new(crate::levenshtein::Levenshtein),
            DistanceKind::Contextual => Box::new(crate::contextual::exact::Contextual),
            DistanceKind::ContextualHeuristic => {
                Box::new(crate::contextual::heuristic::ContextualHeuristic)
            }
            DistanceKind::MarzalVidal => Box::new(crate::normalized::marzal_vidal::MarzalVidal),
            DistanceKind::YujianBo => Box::new(crate::normalized::yujian_bo::YujianBo),
            DistanceKind::MaxNorm => Box::new(crate::normalized::simple::MaxNorm),
            DistanceKind::MinNorm => Box::new(crate::normalized::simple::MinNorm),
            DistanceKind::SumNorm => Box::new(crate::normalized::simple::SumNorm),
        }
    }

    /// Paper notation for the distance.
    pub fn label(self) -> &'static str {
        match self {
            DistanceKind::Levenshtein => "d_E",
            DistanceKind::Contextual => "d_C",
            DistanceKind::ContextualHeuristic => "d_C,h",
            DistanceKind::MarzalVidal => "d_MV",
            DistanceKind::YujianBo => "d_YB",
            DistanceKind::MaxNorm => "d_max",
            DistanceKind::MinNorm => "d_min",
            DistanceKind::SumNorm => "d_sum",
        }
    }
}

/// A concrete violation of one of the metric axioms, carrying the
/// witness strings so failures are reproducible.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricViolation<S: Symbol> {
    /// `d(x, x) != 0`, or `d(x, y) == 0` with `x != y`.
    Identity { x: Vec<S>, y: Vec<S>, d: f64 },
    /// `d(x, y) != d(y, x)`.
    Symmetry {
        x: Vec<S>,
        y: Vec<S>,
        dxy: f64,
        dyx: f64,
    },
    /// `d(x, z) > d(x, y) + d(y, z)` beyond tolerance.
    Triangle {
        x: Vec<S>,
        y: Vec<S>,
        z: Vec<S>,
        dxz: f64,
        via: f64,
    },
}

/// Absolute tolerance used when comparing floating-point distances in
/// the validation helpers.
pub const METRIC_EPS: f64 = 1e-9;

/// Check the identity axiom on every pair from `sample`.
pub fn check_identity<S: Symbol, D: Distance<S> + ?Sized>(
    d: &D,
    sample: &[Vec<S>],
) -> Option<MetricViolation<S>> {
    for x in sample {
        let dxx = d.distance(x, x);
        if dxx.abs() > METRIC_EPS {
            return Some(MetricViolation::Identity {
                x: x.clone(),
                y: x.clone(),
                d: dxx,
            });
        }
    }
    for (i, x) in sample.iter().enumerate() {
        for y in &sample[i + 1..] {
            if x != y {
                let dxy = d.distance(x, y);
                if dxy.abs() <= METRIC_EPS {
                    return Some(MetricViolation::Identity {
                        x: x.clone(),
                        y: y.clone(),
                        d: dxy,
                    });
                }
            }
        }
    }
    None
}

/// Check symmetry on every pair from `sample`.
pub fn check_symmetry<S: Symbol, D: Distance<S> + ?Sized>(
    d: &D,
    sample: &[Vec<S>],
) -> Option<MetricViolation<S>> {
    for (i, x) in sample.iter().enumerate() {
        for y in &sample[i + 1..] {
            let dxy = d.distance(x, y);
            let dyx = d.distance(y, x);
            if (dxy - dyx).abs() > METRIC_EPS {
                return Some(MetricViolation::Symmetry {
                    x: x.clone(),
                    y: y.clone(),
                    dxy,
                    dyx,
                });
            }
        }
    }
    None
}

/// Check the triangle inequality on every ordered triple from `sample`.
///
/// `O(|sample|³)` distance computations — intended for small samples in
/// tests and for the paper's §2.2-style counterexample hunting.
pub fn check_triangle<S: Symbol, D: Distance<S> + ?Sized>(
    d: &D,
    sample: &[Vec<S>],
) -> Option<MetricViolation<S>> {
    let n = sample.len();
    // Cache the pairwise matrix to avoid 3x recomputation.
    let mut m = vec![0.0f64; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let v = d.distance(&sample[i], &sample[j]);
            m[i * n + j] = v;
            m[j * n + i] = v;
        }
    }
    for i in 0..n {
        for j in 0..n {
            if j == i {
                continue;
            }
            for k in 0..n {
                if k == i || k == j {
                    continue;
                }
                let dxz = m[i * n + k];
                let via = m[i * n + j] + m[j * n + k];
                if dxz > via + METRIC_EPS {
                    return Some(MetricViolation::Triangle {
                        x: sample[i].clone(),
                        y: sample[j].clone(),
                        z: sample[k].clone(),
                        dxz,
                        via,
                    });
                }
            }
        }
    }
    None
}

/// Run all three axiom checks; returns the first violation found.
pub fn check_metric_axioms<S: Symbol, D: Distance<S> + ?Sized>(
    d: &D,
    sample: &[Vec<S>],
) -> Option<MetricViolation<S>> {
    check_identity(d, sample)
        .or_else(|| check_symmetry(d, sample))
        .or_else(|| check_triangle(d, sample))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levenshtein::Levenshtein;

    fn words() -> Vec<Vec<u8>> {
        [&b"ab"[..], b"aba", b"ba", b"b", b"aa", b"", b"abab"]
            .iter()
            .map(|w| w.to_vec())
            .collect()
    }

    #[test]
    fn levenshtein_passes_all_axioms_on_sample() {
        assert_eq!(check_metric_axioms(&Levenshtein, &words()), None);
    }

    #[test]
    fn a_broken_distance_is_caught_by_identity() {
        struct AlwaysOne;
        impl Distance<u8> for AlwaysOne {
            fn distance(&self, _: &[u8], _: &[u8]) -> f64 {
                1.0
            }
            fn name(&self) -> &'static str {
                "one"
            }
            fn is_metric(&self) -> bool {
                false
            }
        }
        assert!(matches!(
            check_identity(&AlwaysOne, &words()),
            Some(MetricViolation::Identity { .. })
        ));
    }

    #[test]
    fn an_asymmetric_distance_is_caught() {
        struct LenDiff;
        impl Distance<u8> for LenDiff {
            fn distance(&self, a: &[u8], b: &[u8]) -> f64 {
                // Deliberately asymmetric.
                a.len() as f64 - b.len() as f64
            }
            fn name(&self) -> &'static str {
                "lendiff"
            }
            fn is_metric(&self) -> bool {
                false
            }
        }
        assert!(matches!(
            check_symmetry(&LenDiff, &words()),
            Some(MetricViolation::Symmetry { .. })
        ));
    }

    #[test]
    fn wrappers_forward_engine_hooks() {
        use crate::contextual::exact::Contextual;
        let d = Distance::<u8>::distance(&Contextual, b"ababa", b"baab");
        let boxed: Box<dyn Distance<u8>> = Box::new(Contextual);
        let arc = std::sync::Arc::new(Contextual);
        let by_ref = &Contextual;
        // Through every wrapper the bounded/prepare hooks must agree
        // with the engine, and the gates must reject through them too
        // (visible as a growing gate-rejection counter — the trait
        // default would compute the full DP instead).
        let gates_before = crate::contextual::bounded::gate_rejections();
        assert_eq!(boxed.distance_bounded(b"ababa", b"baab", 0.1), None);
        assert_eq!(
            Distance::<u8>::distance_bounded(&arc, b"ababa", b"baab", 0.1),
            None
        );
        assert_eq!(
            Distance::<u8>::distance_bounded(&by_ref, b"ababa", b"baab", 0.1),
            None
        );
        assert!(
            crate::contextual::bounded::gate_rejections() >= gates_before + 3,
            "wrappers must route through the bounded engine's gates"
        );
        for prepared in [
            boxed.prepare(b"ababa"),
            Distance::<u8>::prepare(&arc, b"ababa"),
            Distance::<u8>::prepare(&by_ref, b"ababa"),
        ] {
            assert_eq!(prepared.distance_to(b"baab"), d);
            assert_eq!(prepared.distance_to_bounded(b"baab", d), Some(d));
            assert_eq!(prepared.distance_to_bounded(b"baab", 0.1), None);
        }
    }

    #[test]
    fn unpruned_matches_wrapped_distance_values() {
        use crate::contextual::exact::Contextual;
        let base = Contextual;
        let plain = Unpruned(Contextual);
        let pairs: [(&[u8], &[u8]); 3] = [(b"ababa", b"baab"), (b"", b"abc"), (b"same", b"same")];
        for (a, b) in pairs {
            let d = Distance::<u8>::distance(&base, a, b);
            assert_eq!(plain.distance(a, b), d);
            assert_eq!(plain.distance_bounded(a, b, d), Some(d));
            if d > 0.0 {
                assert_eq!(plain.distance_bounded(a, b, d / 2.0), None);
            }
            let prepared = Distance::<u8>::prepare(&plain, a);
            assert_eq!(prepared.distance_to(b), d);
        }
        assert_eq!(Distance::<u8>::name(&plain), "d_C");
        assert!(Distance::<u8>::is_metric(&plain));
    }

    #[test]
    fn distances_and_prepared_queries_are_thread_mobile() {
        // The Send/Sync audit behind the serving layer: distances are
        // shared across workers (&D: Send requires D: Sync — already a
        // Distance supertrait) and prepared queries move into workers
        // (the PreparedQuery Send supertrait). A compile-time check.
        fn assert_send_sync<T: Send + Sync>() {}
        fn assert_send<T: Send + ?Sized>() {}
        assert_send_sync::<crate::levenshtein::Levenshtein>();
        assert_send_sync::<crate::contextual::exact::Contextual>();
        assert_send_sync::<crate::contextual::heuristic::ContextualHeuristic>();
        assert_send_sync::<crate::normalized::yujian_bo::YujianBo>();
        assert_send_sync::<crate::normalized::marzal_vidal::MarzalVidal>();
        assert_send_sync::<Box<dyn Distance<u8>>>();
        assert_send::<Box<dyn PreparedQuery<u8> + '_>>();
    }

    #[test]
    fn kind_labels_match_paper_notation() {
        assert_eq!(DistanceKind::Contextual.label(), "d_C");
        assert_eq!(DistanceKind::ContextualHeuristic.label(), "d_C,h");
        assert_eq!(DistanceKind::YujianBo.label(), "d_YB");
        assert_eq!(DistanceKind::MarzalVidal.label(), "d_MV");
        assert_eq!(DistanceKind::MaxNorm.label(), "d_max");
        assert_eq!(DistanceKind::Levenshtein.label(), "d_E");
    }

    #[test]
    fn panels_have_expected_sizes_and_members() {
        assert_eq!(DistanceKind::PAPER_PANEL.len(), 5);
        assert_eq!(DistanceKind::TABLE2_PANEL.len(), 6);
        assert!(DistanceKind::TABLE2_PANEL.contains(&DistanceKind::Contextual));
        assert!(!DistanceKind::PAPER_PANEL.contains(&DistanceKind::Contextual));
    }
}
