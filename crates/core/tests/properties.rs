//! Property-based tests for the core distance algorithms.
//!
//! Strategy sizes are tuned so the heaviest oracles (brute-force
//! Dijkstra over string space, cubic DPs on triples) stay fast: the
//! brute oracle sees strings with `|x| + |y| <= 8`, the metric-axiom
//! triples use lengths <= 10.

use cned_core::brute::{brute_contextual, brute_levenshtein};
use cned_core::contextual::bounded::{contextual_bounded, ContextualScratch, PreparedContextual};
use cned_core::contextual::exact::{contextual_alignment, contextual_distance, ContextualTable};
use cned_core::contextual::heuristic::{contextual_heuristic, heuristic_k_ni};
use cned_core::contextual::weight::trivial_path_weight;
use cned_core::generalized::{generalized_edit_distance, UnitCosts};
use cned_core::levenshtein::{
    edit_script, levenshtein, levenshtein_bounded, wagner_fischer, MYERS_CUTOFF,
};
use cned_core::myers::{myers, myers_bounded, MyersPattern};
use cned_core::normalized::marzal_vidal::marzal_vidal;
use cned_core::normalized::yujian_bo::yujian_bo;
use cned_core::ops::{apply_script, script_contextual_weight};
use cned_core::ratio::Ratio;
use proptest::prelude::*;

const EPS: f64 = 1e-9;

/// Short strings over a tiny alphabet — the regime where brute-force
/// oracles are feasible and edge cases are dense.
fn tiny_string() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b')], 0..=4)
}

/// Medium strings over a small alphabet for DP-vs-DP comparisons.
fn small_string() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c')], 0..=10)
}

/// Longer strings over a wider alphabet for cheap invariants.
fn medium_string() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..8, 0..=24)
}

/// Long byte strings spanning the bit-parallel engine's 64-symbol
/// word boundary (single-word vs blocked kernels) and the dispatcher
/// cutoff.
fn long_string() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..6, 0..=200)
}

/// Long strings of wide (u32) symbols — the generic-symbol path of
/// the Peq cache.
fn long_u32_string() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0u32..9, 0..=200)
}

/// String pairs spanning the band-pruning edge cases of the bounded
/// contextual engine: generic pairs, equal strings, one-sided empty
/// strings, and maximal length skew (long vs near-empty, where the
/// diagonal corridor is thinnest).
fn contextual_pair() -> impl Strategy<Value = (Vec<u8>, Vec<u8>)> {
    prop_oneof![
        (small_string(), small_string()),
        small_string().prop_map(|x| (x.clone(), x)),
        small_string().prop_map(|x| (x, Vec::new())),
        small_string().prop_map(|x| (Vec::new(), x)),
        (
            proptest::collection::vec(0u8..4, 30..=60),
            proptest::collection::vec(0u8..4, 0..=2),
        ),
        (
            proptest::collection::vec(0u8..4, 0..=2),
            proptest::collection::vec(0u8..4, 30..=60),
        ),
    ]
}

/// The same edge-case mix over wide (u32) symbols.
fn contextual_pair_u32() -> impl Strategy<Value = (Vec<u32>, Vec<u32>)> {
    prop_oneof![
        (
            proptest::collection::vec(0u32..5, 0..=10),
            proptest::collection::vec(0u32..5, 0..=10),
        ),
        proptest::collection::vec(0u32..5, 0..=10).prop_map(|x| (x.clone(), x)),
        (
            proptest::collection::vec(0u32..5, 25..=50),
            proptest::collection::vec(0u32..5, 0..=2),
        ),
    ]
}

proptest! {
    // ---------------- Levenshtein ----------------

    #[test]
    fn levenshtein_matches_brute_force(x in tiny_string(), y in tiny_string()) {
        prop_assert_eq!(levenshtein(&x, &y), brute_levenshtein(&x, &y));
    }

    #[test]
    fn levenshtein_symmetry(x in medium_string(), y in medium_string()) {
        prop_assert_eq!(levenshtein(&x, &y), levenshtein(&y, &x));
    }

    #[test]
    fn levenshtein_triangle(x in small_string(), y in small_string(), z in small_string()) {
        prop_assert!(levenshtein(&x, &z) <= levenshtein(&x, &y) + levenshtein(&y, &z));
    }

    #[test]
    fn levenshtein_length_bounds(x in medium_string(), y in medium_string()) {
        let d = levenshtein(&x, &y);
        prop_assert!(d >= x.len().abs_diff(y.len()));
        prop_assert!(d <= x.len().max(y.len()));
    }

    #[test]
    fn levenshtein_bounded_agrees(x in small_string(), y in small_string(), slack in 0usize..3) {
        let d = levenshtein(&x, &y);
        prop_assert_eq!(levenshtein_bounded(&x, &y, d + slack), Some(d));
        if d > 0 {
            prop_assert_eq!(levenshtein_bounded(&x, &y, d - 1), None);
        }
    }

    #[test]
    fn edit_script_is_optimal_and_replays(x in small_string(), y in small_string()) {
        let script = edit_script(&x, &y);
        prop_assert_eq!(script.len(), levenshtein(&x, &y));
        prop_assert_eq!(apply_script(&x, &script), y);
    }

    #[test]
    fn generalized_unit_costs_recover_levenshtein(x in medium_string(), y in medium_string()) {
        let g = generalized_edit_distance(&x, &y, &UnitCosts);
        prop_assert!((g - levenshtein(&x, &y) as f64).abs() < EPS);
    }

    // ---------------- Myers bit-parallel engine ----------------

    #[test]
    fn myers_matches_wagner_fischer_on_long_u8(x in long_string(), y in long_string()) {
        // Lengths 0–200 span the 64-symbol word boundary: single-word
        // kernel, blocked kernel and the dispatcher cutoff all land in
        // this range.
        prop_assert_eq!(myers(&x, &y), wagner_fischer(&x, &y));
        prop_assert_eq!(levenshtein(&x, &y), wagner_fischer(&x, &y));
    }

    #[test]
    fn myers_matches_wagner_fischer_on_long_u32(x in long_u32_string(), y in long_u32_string()) {
        prop_assert_eq!(myers(&x, &y), wagner_fischer(&x, &y));
        prop_assert_eq!(levenshtein(&x, &y), wagner_fischer(&x, &y));
    }

    #[test]
    fn myers_bounded_matches_levenshtein_bounded(
        x in long_string(),
        y in long_string(),
        slack in 0usize..4,
    ) {
        let d = wagner_fischer(&x, &y);
        // Around the true distance (the regime search cares about)…
        prop_assert_eq!(myers_bounded(&x, &y, d + slack), Some(d));
        prop_assert_eq!(levenshtein_bounded(&x, &y, d + slack), Some(d));
        if d > 0 {
            let below = d - 1 - (slack.min(d - 1));
            prop_assert_eq!(myers_bounded(&x, &y, below), levenshtein_bounded(&x, &y, below));
            prop_assert_eq!(myers_bounded(&x, &y, below), None);
        }
        // …and at arbitrary small bounds the engines agree exactly.
        prop_assert_eq!(myers_bounded(&x, &y, slack), levenshtein_bounded(&x, &y, slack));
    }

    #[test]
    fn myers_pattern_reuse_is_consistent(
        q in long_string(),
        targets in proptest::collection::vec(long_string(), 1..=6),
    ) {
        // One prepared pattern against many targets must equal
        // independent one-shot computations (cache reuse is pure).
        let prepared = MyersPattern::new(&q);
        for t in &targets {
            let expect = wagner_fischer(&q, t);
            prop_assert_eq!(prepared.distance(t), expect);
            prop_assert_eq!(prepared.distance_bounded(t, expect), Some(expect));
            if expect > 0 {
                prop_assert_eq!(prepared.distance_bounded(t, expect - 1), None);
            }
        }
    }

    #[test]
    fn dispatcher_cutoff_is_seamless(
        x in proptest::collection::vec(0u8..4, 0..=40),
        y in proptest::collection::vec(0u8..4, 0..=40),
    ) {
        // Strings straddling MYERS_CUTOFF on either side: the public
        // dispatcher must be engine-invisible.
        prop_assert!(MYERS_CUTOFF < 40, "strategy must straddle the cutoff");
        prop_assert_eq!(levenshtein(&x, &y), wagner_fischer(&x, &y));
    }

    // ---------------- Contextual: exactness ----------------

    #[test]
    fn contextual_dp_matches_brute_force(x in tiny_string(), y in tiny_string()) {
        let dp = contextual_distance(&x, &y);
        let oracle = brute_contextual(&x, &y);
        prop_assert!((dp - oracle).abs() < EPS, "dp {} vs oracle {}", dp, oracle);
    }

    #[test]
    fn contextual_table_matches_rolling(x in small_string(), y in small_string()) {
        let a = ContextualTable::new(&x, &y).distance();
        let b = contextual_distance(&x, &y);
        prop_assert!((a - b).abs() < EPS);
    }

    #[test]
    fn contextual_optimal_shape_is_a_real_path(x in small_string(), y in small_string()) {
        // The alignment's shape must be consistent bookkeeping and its
        // weight must equal the reported distance exactly.
        let a = contextual_alignment(&x, &y);
        prop_assert_eq!(x.len() + a.shape.insertions - a.shape.deletions, y.len());
        prop_assert_eq!(a.k, a.shape.k());
        prop_assert!((a.shape.weight() - a.weight).abs() < EPS);
        // Its exact rational weight round-trips through f64 within EPS.
        let exact: Ratio = a.shape.weight_exact();
        prop_assert!((exact.to_f64() - a.weight).abs() < EPS);
    }

    // ---------------- Contextual: bounded engine ----------------

    #[test]
    fn contextual_bounded_infinite_is_exact(pair in contextual_pair()) {
        let (x, y) = pair;
        // An infinite budget disables every gate and prune; the banded
        // DP must then reproduce the exact DP bit for bit.
        prop_assert_eq!(
            contextual_bounded(&x, &y, f64::INFINITY),
            Some(contextual_distance(&x, &y))
        );
    }

    #[test]
    fn contextual_bounded_none_implies_exceeds(
        pair in contextual_pair(),
        num in 0u32..16,
    ) {
        let (x, y) = pair;
        // Sweep budgets from 0 to above the trivial-path ceiling:
        // Some(v) must be the exact value within the budget, None must
        // mean the exact value exceeds it.
        let d = contextual_distance(&x, &y);
        let bound = trivial_path_weight(x.len(), y.len()) * num as f64 / 14.0;
        match contextual_bounded(&x, &y, bound) {
            Some(v) => {
                prop_assert!((v - d).abs() < EPS, "bounded {} vs exact {}", v, d);
                prop_assert!(v <= bound);
            }
            None => prop_assert!(d > bound, "rejected at {} but exact is {}", bound, d),
        }
    }

    #[test]
    fn contextual_bounded_at_exact_value(pair in contextual_pair()) {
        let (x, y) = pair;
        let d = contextual_distance(&x, &y);
        prop_assert_eq!(contextual_bounded(&x, &y, d), Some(d));
        if d > 0.0 {
            prop_assert_eq!(contextual_bounded(&x, &y, d * 0.999 - 1e-9), None);
        }
    }

    #[test]
    fn contextual_bounded_u32_symbols(pair in contextual_pair_u32()) {
        let (x, y) = pair;
        let d = contextual_distance(&x, &y);
        prop_assert_eq!(contextual_bounded(&x, &y, f64::INFINITY), Some(d));
        prop_assert_eq!(contextual_bounded(&x, &y, d), Some(d));
        if d > 0.0 {
            prop_assert_eq!(contextual_bounded(&x, &y, d * 0.999 - 1e-9), None);
        }
    }

    #[test]
    fn contextual_scratch_and_prepared_match_one_shot(
        q in small_string(),
        targets in proptest::collection::vec(small_string(), 1..=5),
        num in 0u32..8,
    ) {
        // Buffer reuse across calls (scratch) and per-query preparation
        // (Myers gate + scratch) must be pure: same answers as fresh
        // one-shot evaluations at every budget.
        let mut scratch = ContextualScratch::new();
        let prepared = PreparedContextual::new(&q);
        use cned_core::metric::PreparedQuery;
        for t in &targets {
            let d = contextual_distance(&q, t);
            let bound = trivial_path_weight(q.len(), t.len()) * num as f64 / 7.0;
            let expect = (d <= bound).then_some(d);
            prop_assert_eq!(scratch.distance_bounded(&q, t, bound), expect);
            prop_assert_eq!(prepared.distance_to_bounded(t, bound), expect);
            prop_assert_eq!(prepared.distance_to(t), d);
        }
    }

    // ---------------- Contextual: metric axioms ----------------

    #[test]
    fn contextual_zero_iff_equal(x in small_string(), y in small_string()) {
        let d = contextual_distance(&x, &y);
        if x == y {
            prop_assert!(d == 0.0);
        } else {
            prop_assert!(d > 0.0);
        }
    }

    #[test]
    fn contextual_symmetry(x in small_string(), y in small_string()) {
        let dxy = contextual_distance(&x, &y);
        let dyx = contextual_distance(&y, &x);
        prop_assert!((dxy - dyx).abs() < EPS);
    }

    #[test]
    fn contextual_triangle_inequality(
        x in small_string(),
        y in small_string(),
        z in small_string(),
    ) {
        // Theorem 1: d_C is a metric.
        let dxz = contextual_distance(&x, &z);
        let via = contextual_distance(&x, &y) + contextual_distance(&y, &z);
        prop_assert!(dxz <= via + EPS, "triangle violated: {} > {}", dxz, via);
    }

    // ---------------- Contextual: bounds & heuristic ----------------

    #[test]
    fn contextual_upper_bounds(x in medium_string(), y in medium_string()) {
        let d = contextual_distance(&x, &y);
        // Each unit operation costs at most 1, so d_C <= d_E.
        prop_assert!(d <= levenshtein(&x, &y) as f64 + EPS);
        // Delete-all-insert-all is a valid path.
        prop_assert!(d <= trivial_path_weight(x.len(), y.len()) + EPS);
    }

    #[test]
    fn contextual_lower_bound_first_op(x in medium_string(), y in medium_string()) {
        // Any path's first operation acts on x (cost >= 1/(|x|+1)), so
        // for x != y the distance is at least 1/(|x|+1); symmetrically
        // for y. (Weights along a path only shrink as strings grow, so
        // this is a weak but valid sanity bound.)
        if x != y {
            let d = contextual_distance(&x, &y);
            let lb = 1.0 / (x.len().max(y.len()) as f64 + 1.0);
            prop_assert!(d >= lb - EPS, "{} < {}", d, lb);
        }
    }

    #[test]
    fn heuristic_never_underestimates(x in small_string(), y in small_string()) {
        let h = contextual_heuristic(&x, &y);
        let d = contextual_distance(&x, &y);
        prop_assert!(h >= d - EPS, "heuristic {} under exact {}", h, d);
    }

    #[test]
    fn heuristic_k_is_levenshtein(x in medium_string(), y in medium_string()) {
        let (k, ni) = heuristic_k_ni(&x, &y);
        prop_assert_eq!(k, levenshtein(&x, &y));
        prop_assert!(ni <= y.len());
    }

    #[test]
    fn heuristic_ni_matches_exact_table_at_min_k(x in small_string(), y in small_string()) {
        let (k, ni) = heuristic_k_ni(&x, &y);
        let t = ContextualTable::new(&x, &y);
        prop_assert_eq!(t.min_feasible_k(), k);
        prop_assert_eq!(t.max_insertions(x.len(), y.len(), k), Some(ni));
    }

    #[test]
    fn heuristic_symmetry(x in small_string(), y in small_string()) {
        let hxy = contextual_heuristic(&x, &y);
        let hyx = contextual_heuristic(&y, &x);
        prop_assert!((hxy - hyx).abs() < EPS);
    }

    // ---------------- Canonical-path cross-check ----------------

    #[test]
    fn canonical_path_weight_is_walkable(x in small_string(), y in small_string()) {
        // Materialise the canonical insertions-first path implied by
        // the optimal shape and re-price it operation by operation via
        // script_contextual_weight; must equal the DP distance. This
        // exercises Lemma 1's ordering end to end.
        let a = contextual_alignment(&x, &y);
        // Build a concrete script: insert `ni` placeholder symbols at
        // the end, substitute `ns` positions, delete `nd` from the end.
        // Symbol identities don't affect weights, only lengths do.
        let mut script = Vec::new();
        let mut len = x.len();
        for _ in 0..a.shape.insertions {
            script.push(cned_core::ops::EditOp::Insert { pos: len, sym: 0u8 });
            len += 1;
        }
        for p in 0..a.shape.substitutions {
            script.push(cned_core::ops::EditOp::Substitute { pos: p % len.max(1), sym: 1u8 });
        }
        for _ in 0..a.shape.deletions {
            script.push(cned_core::ops::EditOp::Delete { pos: len - 1 });
            len -= 1;
        }
        let w = script_contextual_weight(x.len(), &script);
        prop_assert!((w - a.weight).abs() < EPS, "walked {} vs dp {}", w, a.weight);
    }

    // ---------------- Yujian–Bo ----------------

    #[test]
    fn yujian_bo_unit_interval(x in medium_string(), y in medium_string()) {
        let d = yujian_bo(&x, &y);
        prop_assert!((0.0..=1.0).contains(&d));
    }

    #[test]
    fn yujian_bo_triangle(x in small_string(), y in small_string(), z in small_string()) {
        let dxz = yujian_bo(&x, &z);
        let via = yujian_bo(&x, &y) + yujian_bo(&y, &z);
        prop_assert!(dxz <= via + EPS);
    }

    #[test]
    fn yujian_bo_monotone_in_edit_distance_for_fixed_lengths(
        x in small_string(), y in small_string(), z in small_string(),
    ) {
        // For fixed |x|+|y|, d_YB is increasing in d_E: check the
        // formula's monotonicity through sampled pairs of equal total
        // length.
        if x.len() + y.len() == x.len() + z.len() {
            let (de_y, de_z) = (levenshtein(&x, &y), levenshtein(&x, &z));
            let (db_y, db_z) = (yujian_bo(&x, &y), yujian_bo(&x, &z));
            if de_y < de_z {
                prop_assert!(db_y <= db_z + EPS);
            }
        }
    }

    // ---------------- Marzal–Vidal ----------------

    #[test]
    fn marzal_vidal_unit_interval(x in small_string(), y in small_string()) {
        let d = marzal_vidal(&x, &y);
        prop_assert!((0.0..=1.0 + EPS).contains(&d));
    }

    #[test]
    fn marzal_vidal_zero_iff_equal(x in small_string(), y in small_string()) {
        let d = marzal_vidal(&x, &y);
        if x == y { prop_assert!(d == 0.0); } else { prop_assert!(d > 0.0); }
    }

    #[test]
    fn marzal_vidal_at_most_dmax(x in small_string(), y in small_string()) {
        // The d_E-optimal alignment has length >= max(|x|,|y|), so its
        // ratio is <= d_E/max and d_MV can only be smaller.
        if !(x.is_empty() && y.is_empty()) {
            let dmv = marzal_vidal(&x, &y);
            let dmax = levenshtein(&x, &y) as f64 / x.len().max(y.len()).max(1) as f64;
            prop_assert!(dmv <= dmax + EPS);
        }
    }

    #[test]
    fn marzal_vidal_symmetry(x in small_string(), y in small_string()) {
        prop_assert!((marzal_vidal(&x, &y) - marzal_vidal(&y, &x)).abs() < EPS);
    }

    // ---------------- Cross-distance orderings ----------------

    #[test]
    fn normalised_distances_all_agree_on_equality(x in medium_string()) {
        prop_assert!(contextual_heuristic(&x, &x) == 0.0);
        prop_assert!(yujian_bo(&x, &x) == 0.0);
        prop_assert!(marzal_vidal(&x, &x) == 0.0);
    }
}

/// Exact-rational regression: the DP distance of random small pairs,
/// recomputed through the exact-weight path shapes, matches the brute
/// oracle's exact rational — no float tolerance at all.
#[test]
fn exact_rational_agreement_on_corpus() {
    let corpus: [&[u8]; 8] = [b"", b"a", b"b", b"ab", b"ba", b"aab", b"bba", b"abab"];
    for &x in &corpus {
        for &y in &corpus {
            let brute = cned_core::brute::brute_contextual_exact(x, y);
            let a = contextual_alignment(x, y);
            let dp_exact = a.shape.weight_exact();
            assert_eq!(dp_exact, brute, "{x:?} vs {y:?}");
        }
    }
}
