//! Lane-kernel agreement suite: the multi-string SIMD kernels
//! ([`cned_core::lanes`]) must be **bit-identical** to the scalar
//! engines they accelerate — plain results and bounded `Option`
//! outcomes both — across symbol types, the single-word/blocked Myers
//! boundary, ragged batch widths, and every backend available on the
//! host. Also re-checks the PR 3 NaN/broken-cost-table guards through
//! the new batch hooks, which must inherit them.

use cned_core::contextual::heuristic::{ContextualHeuristic, PreparedHeuristic};
use cned_core::lanes::{Backend, LANES};
use cned_core::metric::{Distance, PreparedQuery};
use cned_core::myers::MyersPattern;
use cned_core::normalized::yujian_bo::YujianBo;
use proptest::prelude::*;

/// Every backend runnable on this machine (Avx2 is skipped where
/// unavailable; the CI `target-cpu=native` job exercises it).
fn backends() -> Vec<Backend> {
    [Backend::Scalar, Backend::Portable, Backend::Avx2]
        .into_iter()
        .filter(|b| b.is_available())
        .collect()
}

/// Strings spanning the regimes that matter to the kernels: dense
/// short strings, the 64-symbol word boundary, and long blocked
/// patterns (lengths up to 300).
fn lane_string() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        proptest::collection::vec(0u8..5, 0..=80),
        proptest::collection::vec(0u8..5, 55..=70),
        proptest::collection::vec(0u8..8, 180..=300),
        Just(Vec::new()),
    ]
}

/// The same mix over wide (u32) symbols — the generic-symbol id
/// remapping path.
fn lane_string_u32() -> impl Strategy<Value = Vec<u32>> {
    prop_oneof![
        proptest::collection::vec(0u32..6, 0..=70),
        proptest::collection::vec(0u32..9, 100..=300),
        Just(Vec::new()),
    ]
}

/// A batch of 1..=9 targets — deliberately crossing [`LANES`] so every
/// test exercises both a full lane group and a ragged tail.
fn batch(s: impl Strategy<Value = Vec<u8>>) -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(s, 1..=LANES + 1)
}

proptest! {
    #[test]
    fn myers_batch_matches_scalar(query in lane_string(), targets in batch(lane_string())) {
        let pattern = MyersPattern::new(&query);
        let refs: Vec<&[u8]> = targets.iter().map(Vec::as_slice).collect();
        let expect: Vec<usize> = refs.iter().map(|t| pattern.distance(t)).collect();
        for backend in backends() {
            let mut out = vec![0usize; refs.len()];
            pattern.distance_batch_with(backend, &refs, &mut out);
            prop_assert_eq!(&out, &expect, "backend {}", backend.label());
        }
    }

    #[test]
    fn myers_batch_bounded_matches_scalar(
        query in lane_string(),
        targets in batch(lane_string()),
        bound_sel in 0usize..6,
    ) {
        let pattern = MyersPattern::new(&query);
        let refs: Vec<&[u8]> = targets.iter().map(Vec::as_slice).collect();
        let dmin = refs.iter().map(|t| pattern.distance(t)).min().unwrap_or(0);
        let bound = match bound_sel {
            0 => 0,
            1 => 1,
            2 => dmin.saturating_sub(1),
            3 => dmin,
            4 => dmin + 2,
            _ => usize::MAX,
        };
        let expect: Vec<Option<usize>> =
            refs.iter().map(|t| pattern.distance_bounded(t, bound)).collect();
        for backend in backends() {
            let mut out = vec![None; refs.len()];
            pattern.distance_batch_bounded_with(backend, &refs, bound, &mut out);
            prop_assert_eq!(&out, &expect, "backend {} bound {}", backend.label(), bound);
        }
    }

    #[test]
    fn myers_batch_matches_scalar_u32(
        query in lane_string_u32(),
        targets in proptest::collection::vec(lane_string_u32(), 1..=LANES + 1),
    ) {
        let pattern = MyersPattern::new(&query);
        let refs: Vec<&[u32]> = targets.iter().map(Vec::as_slice).collect();
        let expect: Vec<usize> = refs.iter().map(|t| pattern.distance(t)).collect();
        let bound = expect.iter().min().copied().unwrap_or(0) + 1;
        let expect_b: Vec<Option<usize>> =
            refs.iter().map(|t| pattern.distance_bounded(t, bound)).collect();
        for backend in backends() {
            let mut out = vec![0usize; refs.len()];
            pattern.distance_batch_with(backend, &refs, &mut out);
            prop_assert_eq!(&out, &expect, "backend {}", backend.label());
            let mut out_b = vec![None; refs.len()];
            pattern.distance_batch_bounded_with(backend, &refs, bound, &mut out_b);
            prop_assert_eq!(&out_b, &expect_b, "backend {}", backend.label());
        }
    }

    #[test]
    fn heuristic_batch_matches_scalar(
        query in lane_string(),
        targets in batch(lane_string()),
    ) {
        let prepared = PreparedHeuristic::new(&query);
        let refs: Vec<&[u8]> = targets.iter().map(Vec::as_slice).collect();
        let expect: Vec<u64> = refs.iter().map(|t| prepared.distance_to(t).to_bits()).collect();
        for backend in backends() {
            let mut out = vec![0.0f64; refs.len()];
            prepared.distance_to_batch_with(backend, &refs, &mut out);
            let bits: Vec<u64> = out.iter().map(|h| h.to_bits()).collect();
            prop_assert_eq!(&bits, &expect, "backend {}", backend.label());
        }
    }

    #[test]
    fn heuristic_batch_bounded_matches_scalar(
        query in lane_string(),
        targets in batch(lane_string()),
        bound_sel in 0usize..6,
    ) {
        let prepared = PreparedHeuristic::new(&query);
        let refs: Vec<&[u8]> = targets.iter().map(Vec::as_slice).collect();
        let hmin = refs
            .iter()
            .map(|t| prepared.distance_to(t))
            .fold(f64::INFINITY, f64::min);
        let bound = match bound_sel {
            0 => -1.0,
            1 => 0.0,
            2 => hmin * 0.5,
            3 => hmin,
            4 => hmin + 0.05,
            _ => f64::INFINITY,
        };
        let expect: Vec<Option<u64>> = refs
            .iter()
            .map(|t| prepared.distance_to_bounded(t, bound).map(f64::to_bits))
            .collect();
        for backend in backends() {
            let mut out = vec![None; refs.len()];
            prepared.distance_to_batch_bounded_with(backend, &refs, bound, &mut out);
            let bits: Vec<Option<u64>> = out.iter().map(|h| h.map(f64::to_bits)).collect();
            prop_assert_eq!(&bits, &expect, "backend {} bound {}", backend.label(), bound);
        }
    }

    #[test]
    fn heuristic_batch_matches_scalar_u32(
        query in lane_string_u32(),
        targets in proptest::collection::vec(lane_string_u32(), 1..=LANES + 1),
    ) {
        let prepared = PreparedHeuristic::new(&query);
        let refs: Vec<&[u32]> = targets.iter().map(Vec::as_slice).collect();
        let expect: Vec<u64> = refs.iter().map(|t| prepared.distance_to(t).to_bits()).collect();
        for backend in backends() {
            let mut out = vec![0.0f64; refs.len()];
            prepared.distance_to_batch_with(backend, &refs, &mut out);
            let bits: Vec<u64> = out.iter().map(|h| h.to_bits()).collect();
            prop_assert_eq!(&bits, &expect, "backend {}", backend.label());
        }
    }

    #[test]
    fn trait_batch_hooks_match_serial(
        query in lane_string(),
        targets in batch(lane_string()),
        bound in 0.0f64..10.0,
    ) {
        // Through the type-erased trait surface (what search code
        // actually calls): engine overrides and the default loop must
        // both agree with the serial methods bitwise.
        let refs: Vec<&[u8]> = targets.iter().map(Vec::as_slice).collect();
        let dists: [Box<dyn Distance<u8>>; 3] = [
            Box::new(cned_core::levenshtein::Levenshtein),
            Box::new(ContextualHeuristic),
            Box::new(YujianBo), // no override: exercises the defaults
        ];
        for dist in &dists {
            let prepared = dist.prepare(&query);
            let mut out = vec![0.0f64; refs.len()];
            prepared.distance_to_batch(&refs, &mut out);
            let mut out_b = vec![None; refs.len()];
            prepared.distance_to_batch_bounded(&refs, bound, &mut out_b);
            for (i, target) in refs.iter().enumerate() {
                prop_assert_eq!(
                    out[i].to_bits(),
                    prepared.distance_to(target).to_bits(),
                    "{} unbounded", dist.name()
                );
                prop_assert_eq!(
                    out_b[i].map(f64::to_bits),
                    prepared.distance_to_bounded(target, bound).map(f64::to_bits),
                    "{} bounded", dist.name()
                );
            }
            let mut via_dist = vec![0.0f64; refs.len()];
            dist.distance_batch(&query, &refs, &mut via_dist);
            for (i, target) in refs.iter().enumerate() {
                prop_assert_eq!(
                    via_dist[i].to_bits(),
                    dist.distance(&query, target).to_bits(),
                    "{} distance_batch", dist.name()
                );
            }
        }
    }
}

/// A distance with a broken (NaN-producing) cost table, as in the
/// PR 3 hardening tests: the batch defaults must inherit the guards.
struct BrokenCostTable;

impl Distance<u8> for BrokenCostTable {
    fn distance(&self, a: &[u8], b: &[u8]) -> f64 {
        if a == b {
            0.0
        } else {
            f64::NAN
        }
    }
    fn name(&self) -> &'static str {
        "broken"
    }
    fn is_metric(&self) -> bool {
        false
    }
}

#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "NaN")]
fn broken_cost_table_is_diagnosed_through_batch_in_debug() {
    let prepared = Distance::<u8>::prepare(&BrokenCostTable, b"query");
    let targets: [&[u8]; 2] = [b"other", b"query"];
    let mut out = [None; 2];
    prepared.distance_to_batch_bounded(&targets, 10.0, &mut out);
}

#[cfg(not(debug_assertions))]
#[test]
fn broken_cost_table_never_wins_through_batch_in_release() {
    let prepared = Distance::<u8>::prepare(&BrokenCostTable, b"query");
    let targets: [&[u8]; 3] = [b"other", b"query", b"more"];
    let mut out = [None; 3];
    prepared.distance_to_batch_bounded(&targets, 10.0, &mut out);
    // NaN fails `d <= bound` like an over-budget candidate; the equal
    // string still passes with its genuine zero.
    assert_eq!(out, [None, Some(0.0), None]);
}

#[test]
fn explicit_lane_widths_one_through_nine() {
    // Deterministic sweep of every batch width across the word
    // boundary, including all-empty and mixed-length groups.
    let query: Vec<u8> = (0..70u8).map(|i| i % 5).collect();
    let pattern = MyersPattern::new(&query);
    let prepared = PreparedHeuristic::new(&query);
    let pool: Vec<Vec<u8>> = (0..9)
        .map(|w| (0..(w * 37) % 130).map(|i| ((i + w) % 6) as u8).collect())
        .collect();
    for width in 1..=9usize {
        let refs: Vec<&[u8]> = pool.iter().take(width).map(Vec::as_slice).collect();
        for backend in backends() {
            let mut d = vec![0usize; width];
            pattern.distance_batch_with(backend, &refs, &mut d);
            let mut h = vec![0.0f64; width];
            prepared.distance_to_batch_with(backend, &refs, &mut h);
            for (i, target) in refs.iter().enumerate() {
                assert_eq!(d[i], pattern.distance(target), "width {width}");
                assert_eq!(
                    h[i].to_bits(),
                    prepared.distance_to(target).to_bits(),
                    "width {width}"
                );
            }
        }
    }
}

#[test]
fn avx2_detection_is_consistent() {
    // On x86_64 CI runners with AVX2 the detected backend must be
    // Avx2, so the intrinsics path is actually exercised by the lane
    // agreement tests above rather than silently falling back.
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        assert_eq!(Backend::detect(), Backend::Avx2);
        assert!(backends().contains(&Backend::Avx2));
    }
    assert!(backends().contains(&Backend::Scalar));
    assert!(backends().contains(&Backend::Portable));
}
