//! **Table 1** — intrinsic dimensionality `ρ` of the three datasets
//! under the five distances `d_YB, d_C,h, d_MV, d_max, d_E`.
//!
//! Paper's Table 1 (with ρ printed as µ²/σ²):
//!
//! ```text
//!            Spanish D.   hand. digits   genes
//! d_YB         40.57         18.81        8.43
//! d_C,h        18.61          7.95        1.88
//! d_MV         33.98         19.36       11.25
//! d_max        30.25         19.48       14.13
//! d_E           8.75          4.91        0.99
//! ```
//!
//! The claims we reproduce: per dataset, `d_C,h` has the lowest ρ of
//! the normalised distances (only raw `d_E` is lower), and `d_YB` /
//! `d_MV` / `d_max` are markedly more concentrated.

use crate::report::{cell, results_dir, write_text};
use cned_core::metric::{Distance, DistanceKind};
use cned_stats::Moments;

/// Parameters: per-dataset sample sizes (paper: 8000 dictionary,
/// ≈1000 digits, ≈1000 genes).
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Dictionary words.
    pub dict: usize,
    /// Digit samples per class (total = 10×).
    pub digits_per_class: usize,
    /// Gene sequences.
    pub genes: usize,
}

impl Default for Params {
    fn default() -> Params {
        Params {
            dict: 1500,
            digits_per_class: 15,
            genes: 110,
        }
    }
}

/// The ρ matrix: `rho[distance][dataset]`, datasets ordered
/// (dictionary, digits, genes).
pub struct Output {
    /// Distance labels (rows).
    pub distances: Vec<&'static str>,
    /// Dataset labels (columns).
    pub datasets: Vec<&'static str>,
    /// `ρ = µ²/(2σ²)` (Chávez).
    pub rho: Vec<[f64; 3]>,
    /// The paper's printed variant `µ²/σ²` (= 2ρ).
    pub rho_paper: Vec<[f64; 3]>,
}

fn moments_of(sample: &[Vec<u8>], dist: &dyn Distance<u8>) -> Moments {
    let mut m = Moments::new();
    for i in 0..sample.len() {
        for j in (i + 1)..sample.len() {
            m.add(dist.distance(&sample[i], &sample[j]));
        }
    }
    m
}

/// Run the experiment.
pub fn run(p: Params) -> Output {
    let datasets: Vec<(&'static str, Vec<Vec<u8>>)> = vec![
        ("Spanish D.", crate::data::dictionary(p.dict)),
        (
            "hand. digits",
            crate::data::chains(&crate::data::digit_samples(p.digits_per_class)),
        ),
        ("genes", crate::data::genes(p.genes)),
    ];
    let panel = crate::distance_panel(&DistanceKind::PAPER_PANEL);

    let mut rho = Vec::new();
    let mut rho_paper = Vec::new();
    for (_, dist) in &panel {
        let mut row = [0.0f64; 3];
        let mut row_p = [0.0f64; 3];
        for (c, (_, sample)) in datasets.iter().enumerate() {
            let m = moments_of(sample, dist.as_ref());
            row[c] = m.intrinsic_dimensionality().unwrap_or(f64::NAN);
            row_p[c] = m.intrinsic_dimensionality_paper().unwrap_or(f64::NAN);
        }
        rho.push(row);
        rho_paper.push(row_p);
    }

    Output {
        distances: panel.iter().map(|(l, _)| *l).collect(),
        datasets: datasets.iter().map(|(l, _)| *l).collect(),
        rho,
        rho_paper,
    }
}

impl Output {
    /// Index of a distance row by label.
    pub fn row(&self, label: &str) -> &[f64; 3] {
        let i = self
            .distances
            .iter()
            .position(|&l| l == label)
            .unwrap_or_else(|| panic!("no row {label}"));
        &self.rho[i]
    }

    /// The paper's headline ordering claims, as a checkable predicate:
    /// for every dataset, `ρ(d_C,h)` is below `ρ(d_YB)`, `ρ(d_MV)` and
    /// `ρ(d_max)`, and `ρ(d_E)` is the lowest of all.
    pub fn ordering_holds(&self) -> bool {
        let ch = self.row("d_C,h");
        let de = self.row("d_E");
        (0..3).all(|c| {
            ["d_YB", "d_MV", "d_max"]
                .iter()
                .all(|other| ch[c] < self.row(other)[c])
                && de[c] <= ch[c]
        })
    }

    /// Print the paper-style table (µ²/σ² variant to match the printed
    /// numbers) and write `results/table1_intrinsic_dimension.txt`.
    pub fn report(&self) -> std::io::Result<()> {
        let mut text = String::new();
        text.push_str("== Table 1: intrinsic dimensionality (mu^2/sigma^2, paper variant) ==\n");
        text.push_str(&format!(
            "{:<8} {:>12} {:>14} {:>10}\n",
            "", self.datasets[0], self.datasets[1], self.datasets[2]
        ));
        for (i, label) in self.distances.iter().enumerate() {
            text.push_str(&format!(
                "{:<8} {} {} {}\n",
                label,
                cell(self.rho_paper[i][0]),
                cell(self.rho_paper[i][1]),
                cell(self.rho_paper[i][2]),
            ));
        }
        text.push_str(&format!(
            "\nordering claim (d_C,h lowest normalised rho, d_E lowest overall): {}\n",
            if self.ordering_holds() {
                "HOLDS"
            } else {
                "VIOLATED"
            }
        ));
        print!("{text}");
        let path = results_dir().join("table1_intrinsic_dimension.txt");
        write_text(&path, &text)?;
        println!("table written to {}", path.display());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_reproduces_the_ordering() {
        let out = run(Params {
            dict: 250,
            digits_per_class: 6,
            genes: 40,
        });
        assert_eq!(out.distances.len(), 5);
        assert!(
            out.ordering_holds(),
            "rho matrix: {:?} for {:?}",
            out.rho,
            out.distances
        );
    }
}
