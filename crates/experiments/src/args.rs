//! Minimal `key=value` command-line argument parsing for the
//! experiment binaries — no external dependency, no subcommands.
//!
//! ```text
//! cargo run --release --bin fig3_laesa_dictionary -- training=1000 queries=1000 reps=10
//! ```

use std::collections::HashMap;

/// Parsed `key=value` arguments.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
}

impl Args {
    /// Parse from an iterator of raw arguments (without the program
    /// name). Arguments not of the form `key=value` are rejected.
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Args, String> {
        let mut values = HashMap::new();
        for a in raw {
            let Some((k, v)) = a.split_once('=') else {
                return Err(format!("expected key=value, got {a:?}"));
            };
            values.insert(k.trim().to_string(), v.trim().to_string());
        }
        Ok(Args { values })
    }

    /// Parse from the process environment, exiting with a usage
    /// message on malformed input.
    pub fn from_env() -> Args {
        match Args::parse(std::env::args().skip(1)) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("argument error: {e}\nusage: <binary> [key=value]...");
                std::process::exit(2);
            }
        }
    }

    /// Typed lookup with a default.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        match self.values.get(key) {
            None => default,
            Some(raw) => raw.parse().unwrap_or_else(|_| {
                eprintln!("argument error: cannot parse {key}={raw}");
                std::process::exit(2);
            }),
        }
    }

    /// Whether a key was provided at all.
    pub fn has(&self, key: &str) -> bool {
        self.values.contains_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_key_values() {
        let a = Args::parse(["n=100".to_string(), "seed=7".to_string()]).unwrap();
        assert_eq!(a.get("n", 0usize), 100);
        assert_eq!(a.get("seed", 0u64), 7);
        assert!(a.has("n"));
        assert!(!a.has("reps"));
    }

    #[test]
    fn defaults_apply_when_missing() {
        let a = Args::parse(std::iter::empty()).unwrap();
        assert_eq!(a.get("reps", 3usize), 3);
    }

    #[test]
    fn rejects_malformed() {
        assert!(Args::parse(["nonsense".to_string()]).is_err());
    }

    #[test]
    fn whitespace_is_trimmed() {
        let a = Args::parse([" n = 5 ".to_string()]).unwrap();
        assert_eq!(a.get("n", 0usize), 5);
    }
}
