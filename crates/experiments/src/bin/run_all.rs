//! Run every experiment with default (single-core-sized) parameters,
//! filling `results/`. Paper-scale runs: invoke the individual
//! binaries with explicit `key=value` arguments.

use cned_experiments::{agreement, fig1, fig2, laesa_sweep, table1, table2};
use std::time::Instant;

fn timed<F: FnOnce()>(name: &str, f: F) {
    let t = Instant::now();
    f();
    println!("[{name} done in {:.1?}]\n", t.elapsed());
}

fn main() -> std::io::Result<()> {
    let t0 = Instant::now();
    timed("fig1", || {
        fig1::run(fig1::Params::default())
            .report()
            .expect("fig1 report");
    });
    timed("agreement", || {
        agreement::report(&agreement::run(agreement::Params::default()));
    });
    timed("fig2", || {
        fig2::run(fig2::Params::default())
            .report()
            .expect("fig2 report");
    });
    timed("table1", || {
        table1::run(table1::Params::default())
            .report()
            .expect("table1 report");
    });
    timed("fig3", || {
        let p = laesa_sweep::Params::fig3();
        let sweeps = laesa_sweep::run(&p);
        laesa_sweep::report(
            &sweeps,
            "fig3_laesa_dictionary",
            "Figure 3: LAESA on the Spanish dictionary",
        )
        .expect("fig3 report");
    });
    timed("fig4", || {
        let p = laesa_sweep::Params::fig4();
        let sweeps = laesa_sweep::run(&p);
        laesa_sweep::report(
            &sweeps,
            "fig4_laesa_digits",
            "Figure 4: LAESA on handwritten digits",
        )
        .expect("fig4 report");
    });
    timed("table2", || {
        table2::run(table2::Params::default())
            .report()
            .expect("table2 report");
    });
    println!("all experiments done in {:.1?}", t0.elapsed());
    Ok(())
}
