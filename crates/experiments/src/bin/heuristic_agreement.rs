//! §4.1: how often d_C,h equals d_C, per dataset.
//! Args: `dict_pairs=30000 digit_pairs=1500 gene_pairs=400 seed=1`.

use cned_experiments::agreement::{self, Params};
use cned_experiments::args::Args;

fn main() {
    let a = Args::from_env();
    let d = Params::default();
    let params = Params {
        dict_pairs: a.get("dict_pairs", d.dict_pairs),
        digit_pairs: a.get("digit_pairs", d.digit_pairs),
        gene_pairs: a.get("gene_pairs", d.gene_pairs),
        seed: a.get("seed", d.seed),
    };
    println!("running §4.1 agreement with {params:?}");
    let results = agreement::run(params);
    agreement::report(&results);
}
