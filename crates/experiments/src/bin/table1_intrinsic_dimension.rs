//! Table 1: intrinsic dimensionality of 5 distances × 3 datasets.
//! Args: `dict=1500 digits_per_class=15 genes=110`.

use cned_experiments::args::Args;
use cned_experiments::table1;

fn main() -> std::io::Result<()> {
    let a = Args::from_env();
    let d = table1::Params::default();
    let params = table1::Params {
        dict: a.get("dict", d.dict),
        digits_per_class: a.get("digits_per_class", d.digits_per_class),
        genes: a.get("genes", d.genes),
    };
    println!("running Table 1 with {params:?}");
    table1::run(params).report()
}
