//! Figure 3: LAESA distance computations & search time vs pivots,
//! Spanish dictionary. Args: `training=1000 queries=500 reps=5`.

use cned_experiments::args::Args;
use cned_experiments::laesa_sweep::{self, Params};

fn main() -> std::io::Result<()> {
    let a = Args::from_env();
    let mut params = Params::fig3();
    params.training = a.get("training", params.training);
    params.queries = a.get("queries", params.queries);
    params.reps = a.get("reps", params.reps);
    params.bounded = a.get("bounded", params.bounded);
    println!("running Figure 3 with {params:?}");
    let sweeps = laesa_sweep::run(&params);
    laesa_sweep::report(
        &sweeps,
        "fig3_laesa_dictionary",
        "Figure 3: LAESA on the Spanish dictionary",
    )
}
