//! Figure 2: distance histograms over the genes dataset.
//! Args: `samples=110 bins=100`.

use cned_experiments::args::Args;
use cned_experiments::fig2;

fn main() -> std::io::Result<()> {
    let a = Args::from_env();
    let d = fig2::Params::default();
    let params = fig2::Params {
        samples: a.get("samples", d.samples),
        bins: a.get("bins", d.bins),
    };
    println!("running Figure 2 with {params:?}");
    fig2::run(params).report()
}
