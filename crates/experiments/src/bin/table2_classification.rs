//! Table 2: 1-NN digit classification error, LAESA vs exhaustive.
//! Args: `train_per_class=25 test_per_class=25 reps=1 pivots=20`.

use cned_experiments::args::Args;
use cned_experiments::table2::{self, Params};

fn main() -> std::io::Result<()> {
    let a = Args::from_env();
    let d = Params::default();
    let params = Params {
        train_per_class: a.get("train_per_class", d.train_per_class),
        test_per_class: a.get("test_per_class", d.test_per_class),
        reps: a.get("reps", d.reps),
        pivots: a.get("pivots", d.pivots),
        bounded: a.get("bounded", d.bounded),
    };
    println!("running Table 2 with {params:?}");
    table2::run(params).report()
}
