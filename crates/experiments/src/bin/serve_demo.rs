//! Serving-layer demo: sharded LAESA + batch pipeline on the paper's
//! two main workloads (Spanish-like dictionary words, handwritten-
//! digit contour chain codes).
//!
//! For each workload it builds a [`ShardedIndex`], serves a mixed
//! NN / k-NN / **range** / insert queue through the [`QueryPipeline`],
//! verifies every answer against the linear-scan oracle (range
//! results included), and prints throughput plus distance-computation
//! totals per shard count.
//!
//! Args (key=value): `db=2000 queries=200 shards=4 pivots=16 k=5
//! radius=2 threads=0 workload=both` (`threads=0` keeps the
//! `CNED_THREADS`/auto default; `workload` ∈ dictionary|digits|both).

use cned_core::levenshtein::Levenshtein;
use cned_experiments::args::Args;
use cned_search::{InsertableIndex, LinearIndex, MetricIndex, QueryOptions};
use cned_serve::{QueryPipeline, Request, Response, ShardConfig, ShardedIndex};
use std::time::Instant;

struct Params {
    db: usize,
    queries: usize,
    shards: usize,
    pivots: usize,
    k: usize,
    radius: f64,
}

fn run_workload(name: &str, db: Vec<Vec<u8>>, queries: Vec<Vec<u8>>, p: &Params) {
    let dist = &Levenshtein;
    println!(
        "\n== {name}: {} items, {} queries, {} shards x {} pivots ==",
        db.len(),
        queries.len(),
        p.shards,
        p.pivots
    );

    let t0 = Instant::now();
    let index = ShardedIndex::try_build(
        db.clone(),
        ShardConfig {
            shards: p.shards,
            pivots_per_shard: p.pivots,
            compact_threshold: 64,
        },
        dist,
    )
    .expect("internally selected pivots are always valid");
    let build = t0.elapsed();
    println!(
        "build: {:.1} ms ({} preprocessing distance computations, {} shards)",
        build.as_secs_f64() * 1e3,
        index.preprocessing_computations(),
        index.num_shards()
    );

    // Mixed queue: NN, k-NN and range queries with an insert barrier
    // in the middle (the inserted items are perturbed queries, so they
    // land near existing neighbourhoods).
    let mut requests: Vec<Request<u8>> = Vec::new();
    for (i, q) in queries.iter().enumerate() {
        if i == queries.len() / 2 {
            requests.push(Request::Insert { item: q.clone() });
        }
        match i % 3 {
            0 => requests.push(Request::Knn {
                query: q.clone(),
                k: p.k,
            }),
            1 => requests.push(Request::Range {
                query: q.clone(),
                radius: p.radius,
            }),
            _ => requests.push(Request::Nn { query: q.clone() }),
        }
    }
    let mut pipeline = QueryPipeline::new(index);
    let t1 = Instant::now();
    let responses = pipeline.run(&requests, dist);
    let serve = t1.elapsed();
    let mut computations = 0u64;
    let mut answered = 0usize;
    for r in &responses {
        match r {
            Response::Nn { stats, .. }
            | Response::Knn { stats, .. }
            | Response::Range { stats, .. } => {
                computations += stats.distance_computations;
                answered += 1;
            }
            Response::Inserted { .. } => {}
            Response::Failed { error } => panic!("request failed: {error}"),
        }
    }
    println!(
        "serve: {answered} queries in {:.1} ms ({:.0} queries/s, {computations} distance \
         computations, {:.1} per query)",
        serve.as_secs_f64() * 1e3,
        answered as f64 / serve.as_secs_f64(),
        computations as f64 / answered as f64
    );

    // Oracle check: replay every query against a linear scan over the
    // index state it was answered at (before/after the insert barrier).
    let index = pipeline.index();
    // The oracle owns the database; the rare insert barrier mutates it
    // in place, so the scan state matches whatever index state each
    // request was answered at.
    let mut oracle = LinearIndex::new(db.clone());
    let mut checked = 0usize;
    let opts = QueryOptions::new();
    let key = |ns: &[cned_search::Neighbour]| -> Vec<(usize, u64)> {
        ns.iter().map(|n| (n.index, n.distance.to_bits())).collect()
    };
    for (req, resp) in requests.iter().zip(&responses) {
        match (req, resp) {
            (Request::Insert { item }, Response::Inserted { .. }) => {
                InsertableIndex::insert(&mut oracle, item.clone(), dist);
            }
            (Request::Nn { query }, Response::Nn { neighbour, .. }) => {
                let (l_nn, _) = oracle.nn(query, dist, &opts).expect("non-empty");
                let l_nn = l_nn.expect("infinite radius always finds");
                let nb = neighbour.expect("non-empty index");
                assert_eq!(
                    (nb.index, nb.distance.to_bits()),
                    (l_nn.index, l_nn.distance.to_bits()),
                    "NN mismatch for {query:?}"
                );
                checked += 1;
            }
            (Request::Knn { query, k }, Response::Knn { neighbours, .. }) => {
                let (l_knn, _) = oracle
                    .knn(query, dist, &QueryOptions::new().k(*k))
                    .expect("non-empty");
                assert_eq!(key(neighbours), key(&l_knn), "k-NN mismatch for {query:?}");
                checked += 1;
            }
            (Request::Range { query, radius }, Response::Range { neighbours, .. }) => {
                let (l_range, _) = oracle
                    .range(query, dist, &QueryOptions::new().radius(*radius))
                    .expect("non-empty");
                assert_eq!(
                    key(neighbours),
                    key(&l_range),
                    "range mismatch for {query:?} at radius {radius}"
                );
                checked += 1;
            }
            _ => panic!("response kind does not match request kind"),
        }
    }
    println!(
        "oracle: all {checked} answers match the linear scan (index now {} items, {} in delta)",
        MetricIndex::len(index),
        index.delta_len()
    );
}

fn main() {
    let a = Args::from_env();
    let p = Params {
        db: a.get("db", 2000usize),
        queries: a.get("queries", 200usize),
        shards: a.get("shards", 4usize),
        pivots: a.get("pivots", 16usize),
        k: a.get("k", 5usize),
        radius: a.get("radius", 2.0f64),
    };
    let threads = a.get("threads", 0usize);
    if threads > 0 {
        cned_search::parallel::set_thread_override(Some(threads));
    }
    let workload: String = a.get("workload", "both".to_string());

    if workload == "dictionary" || workload == "both" {
        let db = cned_datasets::dictionary::spanish_dictionary(p.db, 5);
        let queries = cned_datasets::perturb::gen_queries(
            &db,
            p.queries,
            2,
            cned_datasets::perturb::ASCII_LOWER,
            7,
        );
        run_workload("dictionary (d_E)", db, queries, &p);
    }
    if workload == "digits" || workload == "both" {
        let per_class = (p.db / 10).max(1);
        let samples = cned_datasets::digits::generate_digits(per_class, 5);
        let db: Vec<Vec<u8>> = samples.iter().map(|s| s.chain.clone()).collect();
        let q_samples = cned_datasets::digits::generate_digits((p.queries / 10).max(1), 977);
        let queries: Vec<Vec<u8>> = q_samples.iter().map(|s| s.chain.clone()).collect();
        run_workload("digit chain codes (d_E)", db, queries, &p);
    }
}
