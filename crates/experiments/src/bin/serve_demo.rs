//! Serving-layer demo: sharded LAESA + the session/ticket front-end
//! on the paper's two main workloads (Spanish-like dictionary words,
//! handwritten-digit contour chain codes).
//!
//! For each workload it builds a [`ShardedIndex`] behind a
//! [`CachedIndex`], serves a mixed NN / k-NN / **range** /
//! insert / **delete** queue followed by a hot tail of repeated
//! queries, verifies every answer against the linear-scan oracle —
//! correlating **by request id**, never by arrival order, and
//! re-checking across the delete/compaction cycles the write barriers
//! produce — and prints throughput, distance-computation totals and
//! cache hit counters.
//!
//! Two serving paths:
//!
//! * in-process (default): the queue runs through [`QueryPipeline`]
//!   (a scoped serve session);
//! * `network=true`: the index is served over TCP on an ephemeral
//!   loopback port through [`Server`], and a pipelined [`Client`]
//!   submits the same queue over the wire, collecting tickets out of
//!   submission order. With `batch=<n>` (n > 1) the client packs
//!   consecutive runs of n requests into single batch frames
//!   (positional correlation inside each frame) — the
//!   highest-throughput wire shape.
//!
//! Args (key=value): `db=2000 queries=200 shards=4 pivots=16 k=5
//! radius=2 deletes=24 hot=48 threads=0 workload=both network=false
//! batch=1` (`threads=0` keeps the `CNED_THREADS`/auto default;
//! `workload` ∈ dictionary|digits|both; `deletes` tombstones that many
//! distinct base items mid-queue; `hot` appends that many repeats of a
//! few queries after the last write, so the cache answers them).
//! Setting `CNED_BENCH_FAST=1` shrinks the default workload for smoke
//! runs.

use cned_core::levenshtein::Levenshtein;
use cned_experiments::args::Args;
use cned_plan::{CacheConfig, CachedIndex};
use cned_search::{InsertableIndex, LinearIndex, MetricIndex, QueryOptions};
use cned_serve::{
    Client, QueryPipeline, Request, RequestId, Response, ResponseBody, Server, ShardConfig,
    ShardedIndex, Ticket,
};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

struct Params {
    db: usize,
    queries: usize,
    shards: usize,
    pivots: usize,
    k: usize,
    radius: f64,
    deletes: usize,
    hot: usize,
    network: bool,
    batch: usize,
}

fn build_index(db: &[Vec<u8>], p: &Params) -> CachedIndex<u8, ShardedIndex<u8>> {
    let sharded = ShardedIndex::try_build(
        db.to_vec(),
        ShardConfig {
            shards: p.shards,
            pivots_per_shard: p.pivots,
            compact_threshold: 64,
            ..ShardConfig::default()
        },
        &Levenshtein,
    )
    .expect("internally selected pivots are always valid");
    CachedIndex::new(sharded, CacheConfig::default())
}

/// The mixed request queue: NN, k-NN and range queries with an insert
/// barrier in the middle (the inserted items are perturbed queries, so
/// they land near existing neighbourhoods) and `deletes` tombstone
/// barriers spread through the queue — each one a delete/compaction
/// cycle the oracle re-checks across. After the last write, a hot tail
/// repeats a few early queries so the exact result cache answers them.
fn build_requests(queries: &[Vec<u8>], p: &Params) -> Vec<Request<u8>> {
    let mut requests: Vec<Request<u8>> = Vec::new();
    // Distinct victims, spread across the base corpus; never an index
    // an insert could still be assigned (inserts land at >= db).
    let stride = (p.db / p.deletes.max(1)).max(1);
    let mut victims = (0..p.deletes).map(|d| d * stride).filter(|&i| i < p.db);
    for (i, q) in queries.iter().enumerate() {
        if i == queries.len() / 2 {
            requests.push(Request::Insert { item: q.clone() });
        }
        if i % 5 == 3 {
            if let Some(index) = victims.next() {
                requests.push(Request::Delete { index });
            }
        }
        match i % 3 {
            0 => requests.push(Request::Knn {
                query: q.clone(),
                k: p.k,
            }),
            1 => requests.push(Request::Range {
                query: q.clone(),
                radius: p.radius,
            }),
            _ => requests.push(Request::Nn { query: q.clone() }),
        }
    }
    for index in victims {
        requests.push(Request::Delete { index });
    }
    for h in 0..p.hot {
        // 4 hot queries x 3 op kinds = 12 distinct cache keys, so a
        // tail of `hot` > 12 requests revisits every key.
        let q = queries[h % queries.len().min(4)].clone();
        match h % 3 {
            0 => requests.push(Request::Knn { query: q, k: p.k }),
            1 => requests.push(Request::Range {
                query: q,
                radius: p.radius,
            }),
            _ => requests.push(Request::Nn { query: q }),
        }
    }
    requests
}

/// Replay every request against a linear-scan oracle over the index
/// state it was answered at, looking each response up **by its
/// request id** — a response delivered out of order (as the pipelined
/// network path does) must still check out.
fn oracle_check(
    name: &str,
    db: &[Vec<u8>],
    requests: &[(RequestId, &Request<u8>)],
    responses: &[Response],
) {
    let dist = &Levenshtein;
    let by_id: HashMap<u64, &ResponseBody> = responses.iter().map(|r| (r.id.0, &r.body)).collect();
    assert_eq!(
        by_id.len(),
        requests.len(),
        "{name}: every request answered exactly once"
    );
    let mut oracle = LinearIndex::new(db.to_vec());
    let opts = QueryOptions::new();
    let key = |ns: &[cned_search::Neighbour]| -> Vec<(usize, u64)> {
        ns.iter().map(|n| (n.index, n.distance.to_bits())).collect()
    };
    let mut checked = 0usize;
    for (id, request) in requests {
        let body = by_id
            .get(&id.0)
            .unwrap_or_else(|| panic!("{name}: no response for request {id}"));
        match (request, body) {
            (Request::Insert { item }, ResponseBody::Inserted { .. }) => {
                InsertableIndex::insert(&mut oracle, item.clone(), dist)
                    .expect("oracle accepts inserts");
            }
            (Request::Delete { index }, ResponseBody::Deleted { existed }) => {
                let oracle_existed = oracle.delete(*index).expect("oracle accepts deletes");
                assert_eq!(
                    *existed, oracle_existed,
                    "{name}: delete {index} liveness mismatch for {id}"
                );
                checked += 1;
            }
            (Request::Nn { query }, ResponseBody::Nn { neighbour, .. }) => {
                let (l_nn, _) = oracle.nn(query, dist, &opts).expect("non-empty");
                let l_nn = l_nn.expect("infinite radius always finds");
                let nb = neighbour.expect("non-empty index");
                assert_eq!(
                    (nb.index, nb.distance.to_bits()),
                    (l_nn.index, l_nn.distance.to_bits()),
                    "{name}: NN mismatch for {id} {query:?}"
                );
                checked += 1;
            }
            (Request::Knn { query, k }, ResponseBody::Knn { neighbours, .. }) => {
                let (l_knn, _) = oracle
                    .knn(query, dist, &QueryOptions::new().k(*k))
                    .expect("non-empty");
                assert_eq!(
                    key(neighbours),
                    key(&l_knn),
                    "{name}: k-NN mismatch for {id} {query:?}"
                );
                checked += 1;
            }
            (Request::Range { query, radius }, ResponseBody::Range { neighbours, .. }) => {
                let (l_range, _) = oracle
                    .range(query, dist, &QueryOptions::new().radius(*radius))
                    .expect("non-empty");
                assert_eq!(
                    key(neighbours),
                    key(&l_range),
                    "{name}: range mismatch for {id} {query:?} at radius {radius}"
                );
                checked += 1;
            }
            _ => panic!("{name}: response kind does not match request {id}"),
        }
    }
    println!("oracle: all {checked} answers match the linear scan (matched by request id)");
}

fn report_throughput(responses: &[Response], elapsed: std::time::Duration) {
    let mut computations = 0u64;
    let mut answered = 0usize;
    for r in responses {
        match &r.body {
            ResponseBody::Nn { stats, .. }
            | ResponseBody::Knn { stats, .. }
            | ResponseBody::Range { stats, .. } => {
                computations += stats.distance_computations;
                answered += 1;
            }
            ResponseBody::Inserted { .. } | ResponseBody::Deleted { .. } => {}
            ResponseBody::Failed { error } => panic!("request {} failed: {error}", r.id),
        }
    }
    println!(
        "serve: {answered} queries in {:.1} ms ({:.0} queries/s, {computations} distance \
         computations, {:.1} per query)",
        elapsed.as_secs_f64() * 1e3,
        answered as f64 / elapsed.as_secs_f64(),
        computations as f64 / answered as f64
    );
}

fn run_in_process(db: &[Vec<u8>], requests: &[Request<u8>], p: &Params) {
    let index = build_index(db, p);
    let mut pipeline = QueryPipeline::new(index);
    let t = Instant::now();
    let responses = pipeline.run(requests, &Levenshtein);
    let elapsed = t.elapsed();
    report_throughput(&responses, elapsed);
    // The pipeline assigns sequential ids in queue order.
    let tagged: Vec<(RequestId, &Request<u8>)> = requests
        .iter()
        .enumerate()
        .map(|(i, r)| (RequestId(i as u64), r))
        .collect();
    oracle_check("pipeline", db, &tagged, &responses);
    let index = pipeline.index();
    report_cache(index);
    println!(
        "index now {} items ({} tombstoned), {} in delta, {} shards",
        MetricIndex::len(index),
        MetricIndex::deleted(index),
        index.inner().delta_len(),
        index.inner().num_shards()
    );
}

/// The cache counters after a run: the hot tail should land as hits,
/// every insert/delete barrier as one invalidation.
fn report_cache(index: &CachedIndex<u8, ShardedIndex<u8>>) {
    let s = index.cache_stats();
    println!(
        "cache: {} hits, {} misses, {} radius-seeded, {} invalidations \
         ({} probe computations)",
        s.hits, s.misses, s.seeded, s.invalidations, s.probe_computations
    );
}

fn run_network(db: &[Vec<u8>], requests: &[Request<u8>], p: &Params) {
    let index = build_index(db, p);
    let server = Server::bind("127.0.0.1:0", index, Arc::new(Levenshtein))
        .expect("binding an ephemeral loopback port");
    let addr = server.local_addr();
    println!("network: serving on {addr}");
    let mut client: Client<u8> = Client::connect(addr).expect("loopback connect");
    let t = Instant::now();
    let (mut tagged, responses): (Vec<(RequestId, &Request<u8>)>, Vec<Response>) = if p.batch > 1 {
        // Batched wire path: consecutive runs of `batch` requests per
        // frame, one all-or-nothing admission each; correlation inside
        // a frame is positional, so ids are synthesised from queue
        // position to drive the same id-keyed oracle.
        let batch_tickets: Vec<_> = requests
            .chunks(p.batch)
            .map(|chunk| {
                (
                    client.submit_batch(chunk).expect("submit batch frame"),
                    chunk,
                )
            })
            .collect();
        client.flush().expect("flush batched frames");
        let mut tagged = Vec::with_capacity(requests.len());
        let mut responses = Vec::with_capacity(requests.len());
        let mut position = 0u64;
        for (ticket, chunk) in batch_tickets {
            let bodies = ticket.wait().expect("batch answered, not refused");
            assert_eq!(bodies.len(), chunk.len(), "one body per batched request");
            for (request, body) in chunk.iter().zip(bodies) {
                tagged.push((RequestId(position), request));
                responses.push(Response {
                    id: RequestId(position),
                    body,
                });
                position += 1;
            }
        }
        (tagged, responses)
    } else {
        // Pipelined submission: every request is in flight (one flush,
        // one syscall) before the first response is collected.
        let tickets: Vec<(Ticket, &Request<u8>)> = requests
            .iter()
            .map(|r| (client.submit(r.clone()).expect("submit over the wire"), r))
            .collect();
        client.flush().expect("flush pipelined frames");
        let mut tagged = Vec::with_capacity(tickets.len());
        let mut responses = Vec::with_capacity(tickets.len());
        // Collect in reverse submission order: correlation is by id,
        // so the oracle must not care.
        for (ticket, request) in tickets.into_iter().rev() {
            tagged.push((ticket.id(), request));
            responses.push(ticket.wait());
        }
        (tagged, responses)
    };
    let elapsed = t.elapsed();
    tagged.sort_by_key(|(id, _)| *id); // replay order for the insert barrier
    report_throughput(&responses, elapsed);
    oracle_check("network", db, &tagged, &responses);
    let index = server.shutdown();
    report_cache(&index);
    println!(
        "server drained; index now {} items ({} tombstoned), {} in delta, {} shards",
        MetricIndex::len(&index),
        MetricIndex::deleted(&index),
        index.inner().delta_len(),
        index.inner().num_shards()
    );
}

fn run_workload(name: &str, db: Vec<Vec<u8>>, queries: Vec<Vec<u8>>, p: &Params) {
    println!(
        "\n== {name}: {} items, {} queries, {} shards x {} pivots{} ==",
        db.len(),
        queries.len(),
        p.shards,
        p.pivots,
        if p.network { ", over TCP" } else { "" }
    );

    let t0 = Instant::now();
    let index = build_index(&db, p);
    println!(
        "build: {:.1} ms ({} preprocessing distance computations, {} shards)",
        t0.elapsed().as_secs_f64() * 1e3,
        index.inner().preprocessing_computations(),
        index.inner().num_shards()
    );
    drop(index);

    let requests = build_requests(&queries, p);
    if p.network {
        run_network(&db, &requests, p);
    } else {
        run_in_process(&db, &requests, p);
    }
}

fn main() {
    let a = Args::from_env();
    let fast = std::env::var("CNED_BENCH_FAST").is_ok_and(|v| v != "0");
    let (default_db, default_queries) = if fast { (400, 60) } else { (2000, 200) };
    let p = Params {
        db: a.get("db", default_db),
        queries: a.get("queries", default_queries),
        shards: a.get("shards", 4usize),
        pivots: a.get("pivots", 16usize),
        k: a.get("k", 5usize),
        radius: a.get("radius", 2.0f64),
        deletes: a.get("deletes", if fast { 12 } else { 24 }),
        hot: a.get("hot", if fast { 24 } else { 48 }),
        network: a.get("network", false),
        batch: a.get("batch", 1usize).max(1),
    };
    let threads = a.get("threads", 0usize);
    if threads > 0 {
        cned_search::parallel::set_thread_override(Some(threads));
    }
    let workload: String = a.get("workload", "both".to_string());

    if workload == "dictionary" || workload == "both" {
        let db = cned_datasets::dictionary::spanish_dictionary(p.db, 5);
        let queries = cned_datasets::perturb::gen_queries(
            &db,
            p.queries,
            2,
            cned_datasets::perturb::ASCII_LOWER,
            7,
        );
        run_workload("dictionary (d_E)", db, queries, &p);
    }
    if workload == "digits" || workload == "both" {
        let per_class = (p.db / 10).max(1);
        let samples = cned_datasets::digits::generate_digits(per_class, 5);
        let db: Vec<Vec<u8>> = samples.iter().map(|s| s.chain.clone()).collect();
        let q_samples = cned_datasets::digits::generate_digits((p.queries / 10).max(1), 977);
        let queries: Vec<Vec<u8>> = q_samples.iter().map(|s| s.chain.clone()).collect();
        run_workload("digit chain codes (d_E)", db, queries, &p);
    }
}
