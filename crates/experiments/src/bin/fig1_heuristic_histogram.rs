//! Figure 1: histograms of exact vs heuristic contextual distance on
//! the Spanish dictionary. Args: `samples=2000 bins=100`.

use cned_experiments::args::Args;
use cned_experiments::fig1;

fn main() -> std::io::Result<()> {
    let a = Args::from_env();
    let params = fig1::Params {
        samples: a.get("samples", fig1::Params::default().samples),
        bins: a.get("bins", fig1::Params::default().bins),
        hist_max: a.get("hist_max", fig1::Params::default().hist_max),
    };
    println!("running Figure 1 with {params:?}");
    fig1::run(params).report()
}
