//! Figure 4: LAESA distance computations & search time vs pivots,
//! handwritten digits. Args: `training=250 queries=100 reps=2`.

use cned_experiments::args::Args;
use cned_experiments::laesa_sweep::{self, Params};

fn main() -> std::io::Result<()> {
    let a = Args::from_env();
    let mut params = Params::fig4();
    params.training = a.get("training", params.training);
    params.queries = a.get("queries", params.queries);
    params.reps = a.get("reps", params.reps);
    params.bounded = a.get("bounded", params.bounded);
    println!("running Figure 4 with {params:?}");
    let sweeps = laesa_sweep::run(&params);
    laesa_sweep::report(
        &sweeps,
        "fig4_laesa_digits",
        "Figure 4: LAESA on handwritten digits",
    )
}
