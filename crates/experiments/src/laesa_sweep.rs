//! **Figures 3 & 4** — LAESA: average distance computations and search
//! time per query as a function of the number of pivots (base
//! prototypes), for the five distances of the paper's panel.
//!
//! Protocol (paper §4.3): repeated experiments with fresh prototype
//! sets; dictionary queries are `genqueries`-style 2-op perturbations
//! of training words; digit queries come from different writers.
//! Pivot sweeps reuse one LAESA build per (repetition, distance) via
//! [`cned_search::QueryOptions::pivot_budget`] — greedy pivot
//! selection is incremental, so the first `p` pivots equal a
//! dedicated `p`-pivot build.
//!
//! The paper's claims we reproduce:
//! * `d_C,h` needs about as few distance computations as `d_E` —
//!   markedly fewer than `d_YB` (whose concentrated histogram makes
//!   elimination ineffective);
//! * per-distance computation *time* ranks the contextual heuristic
//!   ≈2× Levenshtein, compensated by fewer computations.

use crate::report::{results_dir, write_dat};
use cned_core::metric::DistanceKind;
use cned_datasets::dictionary::spanish_dictionary;
use cned_datasets::digits::generate_digits;
use cned_datasets::perturb::{gen_queries, ASCII_LOWER};
use cned_search::laesa::Laesa;
use cned_search::pivots::select_pivots_max_sum;
use cned_search::{MetricIndex, QueryOptions};
use cned_stats::Moments;
use std::time::Instant;

/// Which benchmark the sweep runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepDataset {
    /// Figure 3: Spanish dictionary, queries = 2-op perturbations.
    Dictionary,
    /// Figure 4: handwritten digits, queries from different writers.
    Digits,
}

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// The benchmark.
    pub dataset: SweepDataset,
    /// Training set size (paper: 1000).
    pub training: usize,
    /// Queries per repetition (paper: 1000).
    pub queries: usize,
    /// Repetitions with fresh prototype sets (paper: 10).
    pub reps: usize,
    /// Pivot counts to evaluate (paper: 0–300).
    pub pivots: Vec<usize>,
    /// Base seed.
    pub seed: u64,
    /// Drive queries through each distance's bounded/prepared engine
    /// (`true`, the production path) or through the full-evaluation
    /// [`cned_core::metric::Unpruned`] baseline (`false`). Changes
    /// per-query *time*, never computation counts or results.
    pub bounded: bool,
}

impl Params {
    /// Defaults for Figure 3 (word distances are cheap — close to
    /// paper scale).
    pub fn fig3() -> Params {
        Params {
            dataset: SweepDataset::Dictionary,
            training: 1000,
            queries: 500,
            reps: 5,
            pivots: vec![10, 25, 50, 75, 100, 150, 200, 250, 300],
            seed: 11,
            bounded: true,
        }
    }

    /// Defaults for Figure 4 (chain-code `d_MV` costs ≈1 ms/pair, so
    /// the default scale is reduced; raise via CLI for paper scale).
    pub fn fig4() -> Params {
        Params {
            dataset: SweepDataset::Digits,
            training: 250,
            queries: 100,
            reps: 2,
            pivots: vec![5, 10, 25, 50, 75, 100],
            seed: 12,
            bounded: true,
        }
    }
}

/// One point of one distance's sweep.
#[derive(Debug, Clone, Copy)]
pub struct SweepPoint {
    /// Number of pivots.
    pub pivots: usize,
    /// Mean distance computations per query.
    pub avg_computations: f64,
    /// Standard deviation of per-query computations.
    pub std_computations: f64,
    /// Mean wall-clock search time per query, seconds.
    pub avg_time_s: f64,
}

/// A full sweep for one distance.
#[derive(Debug, Clone)]
pub struct DistanceSweep {
    /// Paper label.
    pub label: &'static str,
    /// One point per pivot count.
    pub points: Vec<SweepPoint>,
}

fn make_data(p: &Params, rep: usize) -> (Vec<Vec<u8>>, Vec<Vec<u8>>) {
    let rep_seed = p.seed.wrapping_add(rep as u64).wrapping_mul(0x9E37_79B9);
    match p.dataset {
        SweepDataset::Dictionary => {
            // Fresh prototype set per repetition: disjoint slices of a
            // larger generated dictionary.
            let pool = spanish_dictionary(p.training * p.reps, crate::data::TRAIN_SEED);
            let training: Vec<Vec<u8>> = pool[rep * p.training..(rep + 1) * p.training].to_vec();
            let queries = gen_queries(&training, p.queries, 2, ASCII_LOWER, rep_seed);
            (training, queries)
        }
        SweepDataset::Digits => {
            let per_class = p.training.div_ceil(10);
            let train = generate_digits(per_class, crate::data::TRAIN_SEED ^ rep_seed);
            let test = generate_digits(p.queries.div_ceil(10), crate::data::TEST_SEED ^ rep_seed);
            let training: Vec<Vec<u8>> = train
                .iter()
                .take(p.training)
                .map(|s| s.chain.clone())
                .collect();
            let queries: Vec<Vec<u8>> = test
                .iter()
                .take(p.queries)
                .map(|s| s.chain.clone())
                .collect();
            (training, queries)
        }
    }
}

/// Run the sweep for the paper's five-distance panel.
pub fn run(p: &Params) -> Vec<DistanceSweep> {
    let panel = crate::distance_panel_mode(&DistanceKind::PAPER_PANEL, p.bounded);
    let max_pivots = p.pivots.iter().copied().max().unwrap_or(0);

    // Accumulators: per distance, per pivot-count.
    let mut comp_moments = vec![vec![Moments::new(); p.pivots.len()]; panel.len()];
    let mut time_total = vec![vec![0.0f64; p.pivots.len()]; panel.len()];
    let mut query_counts = vec![vec![0u64; p.pivots.len()]; panel.len()];

    for rep in 0..p.reps {
        let (training, queries) = make_data(p, rep);
        for (di, (_, dist)) in panel.iter().enumerate() {
            let piv = select_pivots_max_sum(&training, max_pivots, 0, dist.as_ref());
            let index = Laesa::try_build(training.clone(), piv, dist.as_ref())
                .expect("max-sum pivots are valid");
            for (pi, &pcount) in p.pivots.iter().enumerate() {
                let opts = QueryOptions::new().pivot_budget(pcount);
                let t0 = Instant::now();
                for q in &queries {
                    let (_, stats) = MetricIndex::nn(&index, q, dist.as_ref(), &opts)
                        .expect("non-empty training set");
                    comp_moments[di][pi].add(stats.distance_computations as f64);
                }
                time_total[di][pi] += t0.elapsed().as_secs_f64();
                query_counts[di][pi] += queries.len() as u64;
            }
        }
    }

    panel
        .iter()
        .enumerate()
        .map(|(di, (label, _))| DistanceSweep {
            label,
            points: p
                .pivots
                .iter()
                .enumerate()
                .map(|(pi, &pcount)| SweepPoint {
                    pivots: pcount,
                    avg_computations: comp_moments[di][pi].mean(),
                    std_computations: comp_moments[di][pi].std_dev(),
                    avg_time_s: time_total[di][pi] / query_counts[di][pi] as f64,
                })
                .collect(),
        })
        .collect()
}

/// Print the sweep and write the two `.dat` series (computations,
/// times) named after `stem` (e.g. `fig3_dictionary`).
pub fn report(sweeps: &[DistanceSweep], stem: &str, title: &str) -> std::io::Result<()> {
    println!("== {title} ==");
    print!("{:>8}", "pivots");
    for s in sweeps {
        print!(" {:>10}", s.label);
    }
    println!("   (avg distance computations per query)");
    let npoints = sweeps[0].points.len();
    for i in 0..npoints {
        print!("{:>8}", sweeps[0].points[i].pivots);
        for s in sweeps {
            print!(" {:>10.1}", s.points[i].avg_computations);
        }
        println!();
    }
    print!("{:>8}", "pivots");
    for s in sweeps {
        print!(" {:>10}", s.label);
    }
    println!("   (avg search time per query, microseconds)");
    for i in 0..npoints {
        print!("{:>8}", sweeps[0].points[i].pivots);
        for s in sweeps {
            print!(" {:>10.1}", s.points[i].avg_time_s * 1e6);
        }
        println!();
    }

    let headers: Vec<String> = std::iter::once("pivots".to_string())
        .chain(sweeps.iter().flat_map(|s| {
            [
                s.label.to_string(),
                format!("{}_std", s.label),
                format!("{}_time_us", s.label),
            ]
        }))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let rows: Vec<Vec<f64>> = (0..npoints)
        .map(|i| {
            let mut row = vec![sweeps[0].points[i].pivots as f64];
            for s in sweeps {
                row.push(s.points[i].avg_computations);
                row.push(s.points[i].std_computations);
                row.push(s.points[i].avg_time_s * 1e6);
            }
            row
        })
        .collect();
    let path = results_dir().join(format!("{stem}.dat"));
    write_dat(&path, &header_refs, &rows)?;
    println!("series written to {}", path.display());
    Ok(())
}

/// Qualitative oracle used by tests and EXPERIMENTS.md: with ample
/// pivots, the metric distances (`d_E`, and `d_C,h` in practice)
/// eliminate most of the database, while `d_YB` (concentrated
/// histogram) eliminates least — i.e. needs the most computations.
pub fn yb_needs_most_computations(sweeps: &[DistanceSweep]) -> bool {
    let find = |label: &str| sweeps.iter().find(|s| s.label == label).expect("series");
    let last = |s: &DistanceSweep| s.points.last().expect("points").avg_computations;
    let yb = last(find("d_YB"));
    yb >= last(find("d_E")) && yb >= last(find("d_C,h"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_dictionary_sweep_runs_and_orders() {
        let p = Params {
            dataset: SweepDataset::Dictionary,
            training: 150,
            queries: 40,
            reps: 2,
            pivots: vec![5, 20, 60],
            seed: 3,
            bounded: true,
        };
        let sweeps = run(&p);
        assert_eq!(sweeps.len(), 5);
        for s in &sweeps {
            assert_eq!(s.points.len(), 3);
            for pt in &s.points {
                assert!(pt.avg_computations >= 1.0);
                assert!(pt.avg_computations <= 150.0);
            }
        }
        assert!(yb_needs_most_computations(&sweeps), "{sweeps:?}");
    }

    #[test]
    fn unpruned_baseline_matches_bounded_computation_counts() {
        // The bounded engines change how much *work* one comparison
        // costs, never which comparisons run or what they return, so
        // the computation counts of both modes must agree exactly.
        let mk = |bounded| Params {
            dataset: SweepDataset::Dictionary,
            training: 80,
            queries: 15,
            reps: 1,
            pivots: vec![4, 16],
            seed: 9,
            bounded,
        };
        let fast = run(&mk(true));
        let slow = run(&mk(false));
        for (f, s) in fast.iter().zip(&slow) {
            assert_eq!(f.label, s.label);
            for (fp, sp) in f.points.iter().zip(&s.points) {
                assert_eq!(fp.avg_computations, sp.avg_computations, "{}", f.label);
            }
        }
    }

    #[test]
    fn pivots_reduce_computations_for_levenshtein() {
        let p = Params {
            dataset: SweepDataset::Dictionary,
            training: 200,
            queries: 40,
            reps: 1,
            pivots: vec![2, 40],
            seed: 5,
            bounded: true,
        };
        let sweeps = run(&p);
        let de = sweeps.iter().find(|s| s.label == "d_E").unwrap();
        assert!(
            de.points[1].avg_computations < de.points[0].avg_computations,
            "{:?}",
            de.points
        );
    }
}
