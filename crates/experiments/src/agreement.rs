//! **§4.1 agreement** — how often the heuristic equals the exact
//! contextual distance, and by how much it deviates when it doesn't.
//!
//! Paper: "In experiments over the used benchmarks, `d_C,h(x, y) =
//! d_C(x, y)` in 90% of the cases, with differences ranging from 0.03
//! for the dictionary to 0.008 for the contour strings."

use cned_core::contextual::exact::contextual_distance;
use cned_core::contextual::heuristic::contextual_heuristic;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters: how many random pairs to sample per dataset.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Dictionary sample (strings are short; exact d_C is cheap).
    pub dict_pairs: usize,
    /// Digit-chain pairs (exact d_C ≈ 1 ms/pair).
    pub digit_pairs: usize,
    /// Gene pairs (exact d_C ≈ 2.5 ms/pair).
    pub gene_pairs: usize,
    /// RNG seed for pair sampling.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Params {
        Params {
            dict_pairs: 30_000,
            digit_pairs: 1_500,
            gene_pairs: 400,
            seed: 1,
        }
    }
}

/// Agreement statistics for one dataset.
#[derive(Debug, Clone, Copy)]
pub struct DatasetAgreement {
    /// Dataset label.
    pub name: &'static str,
    /// Pairs sampled.
    pub pairs: usize,
    /// Fraction (0–1) of pairs with `d_C,h == d_C` (within 1e-12).
    pub agreement: f64,
    /// Maximum observed deviation `d_C,h − d_C`.
    pub max_deviation: f64,
    /// Mean deviation over *disagreeing* pairs.
    pub mean_deviation_when_wrong: f64,
}

/// Sample `pairs` random index pairs from `strings` and measure
/// exact-vs-heuristic agreement.
pub fn measure(
    name: &'static str,
    strings: &[Vec<u8>],
    pairs: usize,
    rng: &mut StdRng,
) -> DatasetAgreement {
    assert!(strings.len() >= 2, "need at least two strings");
    let mut agree = 0usize;
    let mut max_dev = 0.0f64;
    let mut dev_sum = 0.0f64;
    let mut dev_count = 0usize;
    for _ in 0..pairs {
        let i = rng.random_range(0..strings.len());
        let mut j = rng.random_range(0..strings.len());
        while j == i {
            j = rng.random_range(0..strings.len());
        }
        let exact = contextual_distance(&strings[i], &strings[j]);
        let heur = contextual_heuristic(&strings[i], &strings[j]);
        let dev = heur - exact;
        debug_assert!(dev >= -1e-9, "heuristic underestimated: {dev}");
        if dev.abs() < 1e-12 {
            agree += 1;
        } else {
            dev_sum += dev;
            dev_count += 1;
            if dev > max_dev {
                max_dev = dev;
            }
        }
    }
    DatasetAgreement {
        name,
        pairs,
        agreement: agree as f64 / pairs as f64,
        max_deviation: max_dev,
        mean_deviation_when_wrong: if dev_count == 0 {
            0.0
        } else {
            dev_sum / dev_count as f64
        },
    }
}

/// Run the agreement measurement over the three datasets.
pub fn run(p: Params) -> Vec<DatasetAgreement> {
    let mut rng = StdRng::seed_from_u64(p.seed);
    let dict = crate::data::dictionary(2000.min(p.dict_pairs.max(100)));
    let digits = crate::data::chains(&crate::data::digit_samples(20));
    let genes = crate::data::genes(100);
    vec![
        measure("Spanish dict.", &dict, p.dict_pairs, &mut rng),
        measure("hand. digits", &digits, p.digit_pairs, &mut rng),
        measure("genes", &genes, p.gene_pairs, &mut rng),
    ]
}

/// Print the paper-style agreement table.
pub fn report(results: &[DatasetAgreement]) {
    println!("== §4.1: agreement of d_C,h with d_C ==");
    println!(
        "{:<16} {:>8} {:>12} {:>12} {:>18}",
        "dataset", "pairs", "agreement", "max dev", "mean dev (wrong)"
    );
    for r in results {
        println!(
            "{:<16} {:>8} {:>11.1}% {:>12.4} {:>18.4}",
            r.name,
            r.pairs,
            100.0 * r.agreement,
            r.max_deviation,
            r.mean_deviation_when_wrong
        );
    }
    println!("(paper: ≈90% agreement; deviations 0.03 dictionary … 0.008 contours)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agreement_is_high_on_dictionary_words() {
        let mut rng = StdRng::seed_from_u64(0);
        let dict = crate::data::dictionary(300);
        let a = measure("dict", &dict, 2000, &mut rng);
        assert!(
            a.agreement > 0.7,
            "agreement {} unexpectedly low",
            a.agreement
        );
        assert!(a.max_deviation < 0.2, "max deviation {}", a.max_deviation);
    }

    #[test]
    fn deviations_are_nonnegative() {
        let mut rng = StdRng::seed_from_u64(3);
        let genes = crate::data::genes(10);
        let a = measure("genes", &genes, 20, &mut rng);
        assert!(a.max_deviation >= 0.0);
        assert!(a.mean_deviation_when_wrong >= 0.0);
    }
}
