//! Standard dataset instances with fixed seeds, shared by all
//! experiment runners so figures and tables describe the same data.

use cned_datasets::dictionary::spanish_dictionary;
use cned_datasets::digits::{generate_digits, DigitSample};
use cned_datasets::dna::dna_sequences;

/// Canonical seed for training-side data.
pub const TRAIN_SEED: u64 = 0xCED_2008;
/// Canonical seed for test-side data (digits: "different writers").
pub const TEST_SEED: u64 = 0xCED_2009;

/// Spanish-like dictionary of `n` words.
pub fn dictionary(n: usize) -> Vec<Vec<u8>> {
    spanish_dictionary(n, TRAIN_SEED)
}

/// Gene-like DNA sequences.
pub fn genes(n: usize) -> Vec<Vec<u8>> {
    dna_sequences(n, TRAIN_SEED)
}

/// Digit chain codes, `per_class` samples per digit (training side).
pub fn digit_samples(per_class: usize) -> Vec<DigitSample> {
    generate_digits(per_class, TRAIN_SEED)
}

/// Digit chain codes from "different writers" (independent jitter
/// stream — the paper's test digits come from different scribes).
pub fn digit_samples_test(per_class: usize) -> Vec<DigitSample> {
    generate_digits(per_class, TEST_SEED)
}

/// Strip digit samples to bare chains (for unlabelled experiments).
pub fn chains(samples: &[DigitSample]) -> Vec<Vec<u8>> {
    samples.iter().map(|s| s.chain.clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasets_are_stable_across_calls() {
        assert_eq!(dictionary(50), dictionary(50));
        assert_eq!(genes(5), genes(5));
        assert_eq!(digit_samples(2), digit_samples(2));
    }

    #[test]
    fn train_and_test_digits_differ() {
        let a = digit_samples(2);
        let b = digit_samples_test(2);
        assert_eq!(a.len(), b.len());
        assert_ne!(chains(&a), chains(&b));
    }
}
