//! **Figure 1** — histograms of `d_C` (exact) and `d_C,h` (heuristic)
//! over the Spanish dictionary.
//!
//! The paper plots both histograms over 8 000 dictionary samples and
//! observes "both distances have a very similar behaviour (the
//! intrinsic dimensionality in both cases is similar)". We reproduce
//! the double histogram over all pairs of a dictionary sample and
//! report both ρ values.

use crate::report::{results_dir, write_dat};
use cned_core::contextual::exact::contextual_distance;
use cned_core::contextual::heuristic::contextual_heuristic;
use cned_stats::{Histogram, Moments};

/// Parameters for the Figure 1 run.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Dictionary sample size (paper: 8000; default sized for the
    /// cubic exact algorithm on a single core).
    pub samples: usize,
    /// Histogram bins over `[0, hist_max)`.
    pub bins: usize,
    /// Histogram range upper bound (paper plot runs to 2.0).
    pub hist_max: f64,
}

impl Default for Params {
    fn default() -> Params {
        Params {
            samples: 2000,
            bins: 100,
            hist_max: 2.0,
        }
    }
}

/// Output of the Figure 1 run.
pub struct Output {
    /// Histogram of exact `d_C`.
    pub hist_exact: Histogram,
    /// Histogram of heuristic `d_C,h`.
    pub hist_heuristic: Histogram,
    /// Moments (for ρ) of the exact distance.
    pub moments_exact: Moments,
    /// Moments of the heuristic.
    pub moments_heuristic: Moments,
    /// Number of pairs evaluated.
    pub pairs: u64,
}

/// Run the experiment.
pub fn run(p: Params) -> Output {
    let words = crate::data::dictionary(p.samples);
    let mut hist_exact = Histogram::new(0.0, p.hist_max, p.bins);
    let mut hist_heuristic = Histogram::new(0.0, p.hist_max, p.bins);
    let mut moments_exact = Moments::new();
    let mut moments_heuristic = Moments::new();
    let mut pairs = 0u64;

    for i in 0..words.len() {
        for j in (i + 1)..words.len() {
            let de = contextual_distance(&words[i], &words[j]);
            let dh = contextual_heuristic(&words[i], &words[j]);
            hist_exact.add(de);
            hist_heuristic.add(dh);
            moments_exact.add(de);
            moments_heuristic.add(dh);
            pairs += 1;
        }
    }

    Output {
        hist_exact,
        hist_heuristic,
        moments_exact,
        moments_heuristic,
        pairs,
    }
}

impl Output {
    /// Print a summary and write `results/fig1_histograms.dat`
    /// (columns: bin centre, `d_C` count, `d_C,h` count).
    pub fn report(&self) -> std::io::Result<()> {
        println!("== Figure 1: histograms of d_C and d_C,h (Spanish dictionary) ==");
        println!("pairs evaluated: {}", self.pairs);
        println!(
            "d_C   : mean {:.4}  std {:.4}  rho(Chavez) {:.2}  rho(paper mu^2/s^2) {:.2}",
            self.moments_exact.mean(),
            self.moments_exact.std_dev(),
            self.moments_exact
                .intrinsic_dimensionality()
                .unwrap_or(f64::NAN),
            self.moments_exact
                .intrinsic_dimensionality_paper()
                .unwrap_or(f64::NAN),
        );
        println!(
            "d_C,h : mean {:.4}  std {:.4}  rho(Chavez) {:.2}  rho(paper mu^2/s^2) {:.2}",
            self.moments_heuristic.mean(),
            self.moments_heuristic.std_dev(),
            self.moments_heuristic
                .intrinsic_dimensionality()
                .unwrap_or(f64::NAN),
            self.moments_heuristic
                .intrinsic_dimensionality_paper()
                .unwrap_or(f64::NAN),
        );
        let rows: Vec<Vec<f64>> = self
            .hist_exact
            .rows()
            .iter()
            .zip(self.hist_heuristic.rows())
            .map(|(&(c, e), (_, h))| vec![c, e as f64, h as f64])
            .collect();
        let path = results_dir().join("fig1_histograms.dat");
        write_dat(&path, &["bin_center", "d_C", "d_C,h"], &rows)?;
        println!("series written to {}", path.display());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_has_consistent_counts() {
        let out = run(Params {
            samples: 60,
            bins: 40,
            hist_max: 2.0,
        });
        assert_eq!(out.pairs, 60 * 59 / 2);
        assert_eq!(out.hist_exact.total(), out.pairs);
        assert_eq!(out.hist_heuristic.total(), out.pairs);
        // Heuristic never underestimates, so its mean is >= exact's.
        assert!(out.moments_heuristic.mean() >= out.moments_exact.mean() - 1e-12);
    }

    #[test]
    fn histograms_are_close() {
        // The paper's point: the two histograms nearly coincide.
        let out = run(Params {
            samples: 80,
            bins: 20,
            hist_max: 2.0,
        });
        let e = out.hist_exact.counts();
        let h = out.hist_heuristic.counts();
        let l1: u64 = e.iter().zip(h).map(|(&a, &b)| a.abs_diff(b)).sum();
        // Less than 15% of mass may shift bins between the variants.
        assert!(
            (l1 as f64) < 0.15 * out.pairs as f64 * 2.0,
            "histograms diverge: L1 {l1} over {} pairs",
            out.pairs
        );
    }
}
