//! # cned-experiments
//!
//! One runner per table/figure of the paper's Section 4, plus the
//! §4.1 heuristic-agreement measurement. Every runner:
//!
//! * prints the paper's rows/series to stdout in a comparable layout;
//! * writes gnuplot-ready `.dat` series into `results/`;
//! * is deterministic given its seed parameters;
//! * accepts scaled-down defaults sized for a single-core run of a few
//!   minutes, with paper-scale parameters reachable via `key=value`
//!   command-line arguments (see [`args`]).
//!
//! | experiment | binary | paper artefact |
//! |---|---|---|
//! | [`fig1`] | `fig1_heuristic_histogram` | Figure 1 — histograms of `d_C` vs `d_C,h` (Spanish dictionary) |
//! | [`agreement`] | `heuristic_agreement` | §4.1 — how often `d_C,h = d_C`, deviation sizes |
//! | [`fig2`] | `fig2_gene_histograms` | Figure 2 — histograms of normalised distances + `d_E` (genes) |
//! | [`table1`] | `table1_intrinsic_dimension` | Table 1 — intrinsic dimensionality, 5 distances × 3 datasets |
//! | [`laesa_sweep`] | `fig3_laesa_dictionary` | Figure 3 — LAESA computations & time vs pivots (dictionary) |
//! | [`laesa_sweep`] | `fig4_laesa_digits` | Figure 4 — same on handwritten digits |
//! | [`table2`] | `table2_classification` | Table 2 — 1-NN error rate, LAESA vs exhaustive, 6 distances |
//!
//! `run_all` executes everything with default parameters and fills
//! `results/`.

// No unsafe here, enforced at compile time (and by cned-lint).
#![forbid(unsafe_code)]

pub mod agreement;
pub mod args;
pub mod data;
pub mod fig1;
pub mod fig2;
pub mod laesa_sweep;
pub mod report;
pub mod table1;
pub mod table2;

/// Distances evaluated in most figures, with paper labels, as boxed
/// trait objects over byte symbols. Engine pruning hooks enabled —
/// the production path; see [`distance_panel_mode`].
pub fn distance_panel(
    kinds: &[cned_core::metric::DistanceKind],
) -> Vec<(&'static str, Box<dyn cned_core::metric::Distance<u8>>)> {
    distance_panel_mode(kinds, true)
}

/// [`distance_panel`] with an explicit engine mode: `bounded = true`
/// keeps each distance's `distance_bounded`/`prepare` engine hooks
/// (bit-parallel `d_E`, band-pruned `d_C`); `bounded = false` wraps
/// every distance in [`cned_core::metric::Unpruned`], the
/// full-evaluation baseline, so the end-to-end speedup of the bounded
/// path stays measurable (the `bounded=` toggle of the Figure 3/4 and
/// Table 2 binaries).
pub fn distance_panel_mode(
    kinds: &[cned_core::metric::DistanceKind],
    bounded: bool,
) -> Vec<(&'static str, Box<dyn cned_core::metric::Distance<u8>>)> {
    kinds
        .iter()
        .map(|k| {
            let dist = k.build::<u8>();
            let dist: Box<dyn cned_core::metric::Distance<u8>> = if bounded {
                dist
            } else {
                Box::new(cned_core::metric::Unpruned(dist))
            };
            (k.label(), dist)
        })
        .collect()
}
