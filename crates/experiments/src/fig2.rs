//! **Figure 2** — histograms of the four normalised distances
//! (`d_YB, d_C,h, d_MV, d_max`, top panel) and of the plain
//! Levenshtein distance (bottom panel) over the genes dataset.
//!
//! The paper's observation: the other normalised distances are much
//! more *concentrated* than the contextual one — `d_YB` in particular
//! piles up near its saturation value — while `d_C,h` (like raw `d_E`)
//! spreads widely; concentrated histograms mean high intrinsic
//! dimensionality and poor discrimination.

use crate::report::{results_dir, write_dat};
use cned_core::metric::{Distance, DistanceKind};
use cned_stats::{Histogram, Moments};

/// Parameters for the Figure 2 run.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Gene sample size (paper ≈ 1000; d_MV/d_C,h cost dominates).
    pub samples: usize,
    /// Bins for the normalised-distance histograms over `[0, 3)`.
    pub bins: usize,
}

impl Default for Params {
    fn default() -> Params {
        Params {
            samples: 110,
            bins: 100,
        }
    }
}

/// One distance's histogram + moments.
pub struct Series {
    /// Paper label (`d_YB`, …).
    pub label: &'static str,
    /// The histogram (normalised panel: `[0,3)`; `d_E`: `[0, max]`).
    pub histogram: Histogram,
    /// Moments for ρ.
    pub moments: Moments,
}

/// Output: the four normalised series plus the `d_E` series.
pub struct Output {
    /// `d_YB, d_C,h, d_MV, d_max` histograms over `[0, 3)`.
    pub normalised: Vec<Series>,
    /// Levenshtein histogram (own scale).
    pub levenshtein: Series,
    /// Pairs evaluated.
    pub pairs: u64,
}

/// Run the experiment.
pub fn run(p: Params) -> Output {
    let genes = crate::data::genes(p.samples);
    let max_len = genes.iter().map(Vec::len).max().unwrap_or(1) as f64;

    let kinds = [
        DistanceKind::YujianBo,
        DistanceKind::ContextualHeuristic,
        DistanceKind::MarzalVidal,
        DistanceKind::MaxNorm,
    ];
    let panel = crate::distance_panel(&kinds);

    let mut normalised: Vec<Series> = panel
        .iter()
        .map(|(label, _)| Series {
            label,
            histogram: Histogram::new(0.0, 3.0, p.bins),
            moments: Moments::new(),
        })
        .collect();
    let mut lev = Series {
        label: "d_E",
        histogram: Histogram::new(0.0, 2.0 * max_len, p.bins),
        moments: Moments::new(),
    };

    let mut pairs = 0u64;
    for i in 0..genes.len() {
        for j in (i + 1)..genes.len() {
            for (series, (_, dist)) in normalised.iter_mut().zip(&panel) {
                let d = dist.distance(&genes[i], &genes[j]);
                series.histogram.add(d);
                series.moments.add(d);
            }
            let de = cned_core::levenshtein::levenshtein(&genes[i], &genes[j]) as f64;
            lev.histogram.add(de);
            lev.moments.add(de);
            pairs += 1;
        }
    }

    Output {
        normalised,
        levenshtein: lev,
        pairs,
    }
}

impl Output {
    /// Print ρ summary and write
    /// `results/fig2_gene_histograms_normalised.dat` /
    /// `results/fig2_gene_histogram_levenshtein.dat`.
    pub fn report(&self) -> std::io::Result<()> {
        println!("== Figure 2: gene distance histograms ==");
        println!("pairs evaluated: {}", self.pairs);
        for s in self
            .normalised
            .iter()
            .chain(std::iter::once(&self.levenshtein))
        {
            println!(
                "{:<6} mean {:>8.4}  std {:>8.4}  rho {:>7.2}  mode-bin width {:>3}",
                s.label,
                s.moments.mean(),
                s.moments.std_dev(),
                s.moments.intrinsic_dimensionality().unwrap_or(f64::NAN),
                s.histogram.bins_above_fraction_of_mode(0.5),
            );
        }

        let mut rows: Vec<Vec<f64>> = Vec::new();
        for bin in 0..self.normalised[0].histogram.counts().len() {
            let mut row = vec![self.normalised[0].histogram.bin_center(bin)];
            for s in &self.normalised {
                row.push(s.histogram.counts()[bin] as f64);
            }
            rows.push(row);
        }
        let headers: Vec<&str> = std::iter::once("bin_center")
            .chain(self.normalised.iter().map(|s| s.label))
            .collect();
        let p1 = results_dir().join("fig2_gene_histograms_normalised.dat");
        write_dat(&p1, &headers, &rows)?;

        let rows_e: Vec<Vec<f64>> = self
            .levenshtein
            .histogram
            .rows()
            .iter()
            .map(|&(c, n)| vec![c, n as f64])
            .collect();
        let p2 = results_dir().join("fig2_gene_histogram_levenshtein.dat");
        write_dat(&p2, &["bin_center", "d_E"], &rows_e)?;
        println!("series written to {} and {}", p1.display(), p2.display());
        Ok(())
    }

    /// The paper's qualitative claim, used as a test oracle: the
    /// contextual histogram is *less concentrated* than `d_YB`'s
    /// (its std/mean ratio is larger).
    pub fn contextual_spreads_more_than_yb(&self) -> bool {
        let find = |label: &str| {
            self.normalised
                .iter()
                .find(|s| s.label == label)
                .expect("series present")
        };
        let spread = |s: &Series| s.moments.std_dev() / s.moments.mean().max(1e-12);
        spread(find("d_C,h")) > spread(find("d_YB"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_shapes_hold() {
        let out = run(Params {
            samples: 30,
            bins: 60,
        });
        assert_eq!(out.pairs, 30 * 29 / 2);
        assert_eq!(out.normalised.len(), 4);
        assert!(out.contextual_spreads_more_than_yb());
        // Every histogram saw every pair.
        for s in &out.normalised {
            assert_eq!(s.histogram.total(), out.pairs);
        }
        assert_eq!(out.levenshtein.histogram.total(), out.pairs);
    }
}
