//! Result files: gnuplot-ready `.dat` tables under `results/`.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Directory all experiment outputs go to (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var_os("CNED_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    fs::create_dir_all(&dir).expect("cannot create results directory");
    dir
}

/// Write a whitespace-separated data table with a `#`-prefixed header
/// line — the format gnuplot, numpy and R all ingest directly.
pub fn write_dat(path: &Path, header: &[&str], rows: &[Vec<f64>]) -> std::io::Result<()> {
    let mut f = fs::File::create(path)?;
    writeln!(f, "# {}", header.join("\t"))?;
    for row in rows {
        let line: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
        writeln!(f, "{}", line.join("\t"))?;
    }
    Ok(())
}

/// Write a free-form text report (the printed table, for archival).
pub fn write_text(path: &Path, content: &str) -> std::io::Result<()> {
    fs::write(path, content)
}

/// Format a float cell with sensible width for console tables.
pub fn cell(v: f64) -> String {
    if v == 0.0 || (0.01..100000.0).contains(&v.abs()) {
        format!("{v:>10.2}")
    } else {
        format!("{v:>10.3e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dat_roundtrip() {
        let dir = std::env::temp_dir().join("cned_report_test");
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join("t.dat");
        write_dat(&p, &["x", "y"], &[vec![1.0, 2.0], vec![3.5, -4.0]]).unwrap();
        let content = fs::read_to_string(&p).unwrap();
        assert!(content.starts_with("# x\ty"));
        assert!(content.contains("3.5\t-4"));
    }

    #[test]
    fn cell_formats() {
        assert_eq!(cell(5.0).trim(), "5.00");
        assert!(cell(1e-9).contains('e'));
    }
}
