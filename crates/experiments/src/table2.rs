//! **Table 2** — 1-NN classification error on handwritten digits,
//! LAESA vs exhaustive search, six distances.
//!
//! Paper's Table 2 (error %, 100 digits/class training, test digits
//! from different writers, averaged over 10 prototype sets):
//!
//! ```text
//!            LAESA    Exhaustive
//! d_YB        5.19      5.22
//! d_MV        5.04      5.04
//! d_C         5.30      5.30
//! d_C,h       5.30      5.30
//! d_max       4.85      4.86
//! d_E         6.19      6.26
//! ```
//!
//! Claims reproduced: every normalisation beats raw `d_E`; `d_max`
//! (a non-metric) is best; `d_C` and `d_C,h` produce **identical**
//! error rates; LAESA ≈ exhaustive for the metric distances.

use crate::report::{results_dir, write_text};
use cned_classify::eval::evaluate;
use cned_classify::nn::NnClassifier;
use cned_core::metric::DistanceKind;
use cned_search::pivots::select_pivots_max_sum;
use cned_search::{Laesa, LinearIndex};

/// Parameters (paper: 100/class train, 1000 test, 10 repetitions).
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Training digits per class.
    pub train_per_class: usize,
    /// Test digits per class (from different writers).
    pub test_per_class: usize,
    /// Repetitions with fresh writer seeds.
    pub reps: usize,
    /// LAESA pivots.
    pub pivots: usize,
    /// Engine mode: `true` routes queries through the bounded/prepared
    /// engines, `false` through the full-evaluation
    /// [`cned_core::metric::Unpruned`] baseline. Error rates and
    /// computation counts are identical either way; wall-clock is not.
    pub bounded: bool,
}

impl Default for Params {
    fn default() -> Params {
        Params {
            train_per_class: 25,
            test_per_class: 25,
            reps: 1,
            pivots: 20,
            bounded: true,
        }
    }
}

/// One row of the output table.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// Distance label.
    pub label: &'static str,
    /// Mean LAESA error rate (%).
    pub laesa_error: f64,
    /// Mean exhaustive error rate (%).
    pub exhaustive_error: f64,
    /// Mean distance computations per query, LAESA.
    pub laesa_computations: f64,
    /// Mean distance computations per query, exhaustive.
    pub exhaustive_computations: f64,
}

/// Output: one row per distance in the Table 2 panel.
pub struct Output {
    /// Rows in panel order (`d_YB, d_MV, d_C, d_C,h, d_max, d_E`).
    pub rows: Vec<Row>,
}

/// Run the experiment.
pub fn run(p: Params) -> Output {
    let panel = crate::distance_panel_mode(&DistanceKind::TABLE2_PANEL, p.bounded);
    let mut rows: Vec<Row> = panel
        .iter()
        .map(|(label, _)| Row {
            label,
            laesa_error: 0.0,
            exhaustive_error: 0.0,
            laesa_computations: 0.0,
            exhaustive_computations: 0.0,
        })
        .collect();

    for rep in 0..p.reps {
        let rep_off = rep as u64 * 101;
        let train_raw = cned_datasets::digits::generate_digits(
            p.train_per_class,
            crate::data::TRAIN_SEED + rep_off,
        );
        let test_raw = cned_datasets::digits::generate_digits(
            p.test_per_class,
            crate::data::TEST_SEED + rep_off,
        );
        let training: Vec<Vec<u8>> = train_raw.iter().map(|s| s.chain.clone()).collect();
        let labels: Vec<u8> = train_raw.iter().map(|s| s.label).collect();
        let test: Vec<(Vec<u8>, u8)> = test_raw
            .iter()
            .map(|s| (s.chain.clone(), s.label))
            .collect();

        for ((_, dist), row) in panel.iter().zip(rows.iter_mut()) {
            let exhaustive =
                NnClassifier::new(Box::new(LinearIndex::new(training.clone())), labels.clone())
                    .expect("non-empty labelled training set");
            let (cm_e, comp_e) =
                evaluate(&exhaustive, &test, dist.as_ref(), 10).expect("well-formed classifier");
            let pivots = select_pivots_max_sum(&training, p.pivots, 0, dist.as_ref());
            let index = Laesa::try_build(training.clone(), pivots, dist.as_ref())
                .expect("max-sum pivots are valid");
            let laesa = NnClassifier::new(Box::new(index), labels.clone())
                .expect("non-empty labelled training set");
            let (cm_l, comp_l) =
                evaluate(&laesa, &test, dist.as_ref(), 10).expect("well-formed classifier");

            row.exhaustive_error += cm_e.error_rate_percent() / p.reps as f64;
            row.laesa_error += cm_l.error_rate_percent() / p.reps as f64;
            row.exhaustive_computations += comp_e as f64 / test.len() as f64 / p.reps as f64;
            row.laesa_computations += comp_l as f64 / test.len() as f64 / p.reps as f64;
        }
    }

    Output { rows }
}

impl Output {
    fn row(&self, label: &str) -> &Row {
        self.rows
            .iter()
            .find(|r| r.label == label)
            .unwrap_or_else(|| panic!("no row {label}"))
    }

    /// The paper's claims as a predicate: normalisations beat `d_E`
    /// (exhaustive column), and `d_C` == `d_C,h` exactly.
    pub fn ordering_holds(&self) -> bool {
        let de = self.row("d_E").exhaustive_error;
        let all_normalised_beat_de = ["d_YB", "d_MV", "d_C", "d_C,h", "d_max"]
            .iter()
            .all(|l| self.row(l).exhaustive_error <= de);
        let heuristic_matches_exact =
            (self.row("d_C").exhaustive_error - self.row("d_C,h").exhaustive_error).abs() < 1e-9;
        all_normalised_beat_de && heuristic_matches_exact
    }

    /// Print the paper-style table and write
    /// `results/table2_classification.txt`.
    pub fn report(&self) -> std::io::Result<()> {
        let mut text = String::new();
        text.push_str("== Table 2: 1-NN error rate (%) on handwritten digits ==\n");
        text.push_str(&format!(
            "{:<8} {:>8} {:>12} {:>14} {:>16}\n",
            "", "LAESA", "Exhaustive", "LAESA comps", "Exhaustive comps"
        ));
        for r in &self.rows {
            text.push_str(&format!(
                "{:<8} {:>8.2} {:>12.2} {:>14.1} {:>16.1}\n",
                r.label,
                r.laesa_error,
                r.exhaustive_error,
                r.laesa_computations,
                r.exhaustive_computations
            ));
        }
        text.push_str(&format!(
            "\nordering claim (normalisations beat d_E; d_C == d_C,h): {}\n",
            if self.ordering_holds() {
                "HOLDS"
            } else {
                "VIOLATED"
            }
        ));
        print!("{text}");
        let path = results_dir().join("table2_classification.txt");
        write_text(&path, &text)?;
        println!("table written to {}", path.display());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_is_consistent() {
        // Small but not trivial: 8/class train, 8/class test. d_C and
        // d_MV dominate the runtime (~1 ms/pair × 6.4k pairs each).
        let out = run(Params {
            train_per_class: 8,
            test_per_class: 8,
            reps: 1,
            pivots: 8,
            bounded: true,
        });
        assert_eq!(out.rows.len(), 6);
        for r in &out.rows {
            assert!((0.0..=100.0).contains(&r.exhaustive_error), "{r:?}");
            assert!((0.0..=100.0).contains(&r.laesa_error), "{r:?}");
            assert_eq!(r.exhaustive_computations, 80.0);
            assert!(r.laesa_computations <= 80.0);
        }
        // d_C and d_C,h agree exactly (their exhaustive NN labels
        // coincide unless a tie splits them — with this seed it holds).
        let dc = out.rows.iter().find(|r| r.label == "d_C").unwrap();
        let dch = out.rows.iter().find(|r| r.label == "d_C,h").unwrap();
        assert!((dc.exhaustive_error - dch.exhaustive_error).abs() < 1e-9);
    }
}
