//! Build-time adaptive planning: sample the corpus, estimate the
//! distance distribution, and let a cost model pick the backend,
//! pivot count and shard split.
//!
//! ## How the estimate works
//!
//! Everything is derived from one deterministic sample: up to
//! [`PlanConfig::sample_items`] items are drawn with a seeded
//! generator and their full pairwise distance matrix is computed
//! (`m·(m−1)/2` evaluations — the only distance work planning does).
//! From the matrix we get
//!
//! * the distance distribution's mean `μ` and standard deviation `σ`,
//!   and the intrinsic dimensionality estimate `ρ = μ² / 2σ²` (Chávez
//!   et al.) — high `ρ` means distances concentrate and
//!   triangle-inequality pruning stops working;
//! * an **empirical pruning curve** `s(p)`: using the sampled items as
//!   stand-ins for queries, pivots and candidates, the fraction of
//!   candidates a `p`-pivot LAESA fails to eliminate at the query's
//!   sample-NN radius. No model assumptions — the curve is measured on
//!   the corpus' own distances.
//!
//! The cost model then prices each backend in *distance evaluations
//! per NN query* (every backend's unit):
//!
//! * linear scan: `n`;
//! * LAESA with `p` pivots: `p + s(p) · (n − p)` — pivots are always
//!   evaluated, survivors scanned; the planner minimises over a small
//!   pivot-count ladder;
//! * vp-tree: `log₂n + n · √s(t)` with `t ≈ log₂n` — a tree prunes
//!   with one vantage point per visited node, so it behaves like a
//!   weak pivot set; the square root is a deliberate safety haircut
//!   (vantage points are not greedy-selected, so each prunes less than
//!   the measured curve suggests). This is a heuristic, recorded as
//!   such in the [`Plan`].
//!
//! A backend must beat the linear scan by more than
//! [`PlanConfig::min_gain`] to be chosen — near-ties go to the
//! simplest structure. Non-metric distances (`d_C,h`, `d_max`, …)
//! force a linear plan outright: pivot and tree pruning are only
//! admissible under the triangle inequality.
//!
//! The resulting [`Plan`] is inspectable ([`Plan::report`]) and has a
//! stable byte codec ([`Plan::to_bytes`] / [`Plan::from_bytes`]) so
//! snapshots can persist the decision and a warm restart serves the
//! exact structure the planner chose — bit-identical answers included.

use cned_core::metric::Distance;
use cned_core::Symbol;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Knobs for [`plan`]. The defaults are sized so planning costs about
/// a thousand distance evaluations regardless of corpus size.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanConfig {
    /// Seed for the sampling generator. Same seed + same corpus +
    /// same metric ⇒ the same [`Plan`], always.
    pub seed: u64,
    /// Maximum items in the distance sample (the whole corpus when it
    /// is smaller). Planning cost is quadratic in this.
    pub sample_items: usize,
    /// Largest pivot count the LAESA ladder considers.
    pub max_pivots: usize,
    /// Corpora smaller than this skip sampling entirely and plan a
    /// linear scan — pivot overhead cannot amortise.
    pub small_corpus: usize,
    /// Target items per shard; a LAESA plan over at least twice this
    /// many items is split into `n / shard_target` shards.
    pub shard_target: usize,
    /// Upper bound on the shard split.
    pub max_shards: usize,
    /// Fractional cost advantage over the linear scan a structured
    /// backend must show to be selected (e.g. `0.05` = 5% cheaper).
    pub min_gain: f64,
}

impl Default for PlanConfig {
    fn default() -> PlanConfig {
        PlanConfig {
            seed: 0x1CDE_2008,
            sample_items: 48,
            max_pivots: 64,
            small_corpus: 64,
            shard_target: 4096,
            max_shards: 8,
            min_gain: 0.05,
        }
    }
}

/// The backend a [`Plan`] selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlannedBackend {
    /// Exhaustive scan — also the forced choice for non-metric
    /// distances, where pruning is inadmissible.
    Linear,
    /// LAESA with the cost-minimising pivot count.
    Laesa {
        /// Chosen pivot count (per shard, when sharded).
        pivots: usize,
    },
    /// A vantage-point tree.
    VpTree,
}

/// Estimated per-query cost (distance evaluations) of each candidate
/// backend. `INFINITY` marks a backend that was inadmissible (pruning
/// under a non-metric) or not evaluated (corpus below the sampling
/// floor).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanCosts {
    /// `n` — the exhaustive scan.
    pub linear: f64,
    /// `p* + s(p*)·(n−p*)` at the chosen pivot count.
    pub laesa: f64,
    /// The vp-tree heuristic estimate.
    pub vptree: f64,
}

/// The planner's decision plus everything it measured to reach it —
/// kept inspectable so "why did Auto pick this?" has an answer, and
/// persisted into snapshots so a warm restart can report the same.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Selected backend.
    pub backend: PlannedBackend,
    /// Selected shard split (`1` = unsharded). Only ever `> 1` for a
    /// LAESA backend.
    pub shards: usize,
    /// The sampling seed the estimates came from.
    pub seed: u64,
    /// Corpus size at planning time.
    pub corpus: usize,
    /// Items in the distance sample.
    pub sampled_items: usize,
    /// Pairwise distances evaluated (`m·(m−1)/2`).
    pub sampled_pairs: usize,
    /// Sample mean of the pairwise distances.
    pub mean: f64,
    /// Sample standard deviation of the pairwise distances.
    pub std_dev: f64,
    /// Intrinsic dimensionality estimate `μ² / 2σ²`; `INFINITY` when
    /// the sample shows no variance.
    pub rho: f64,
    /// The cost model's per-backend estimates.
    pub costs: PlanCosts,
}

impl Plan {
    /// A trivial linear plan for corpora the planner does not sample
    /// (empty, tiny, or non-metric).
    fn linear(corpus: usize, seed: u64) -> Plan {
        Plan {
            backend: PlannedBackend::Linear,
            shards: 1,
            seed,
            corpus,
            sampled_items: 0,
            sampled_pairs: 0,
            mean: 0.0,
            std_dev: 0.0,
            rho: 0.0,
            costs: PlanCosts {
                linear: corpus as f64,
                laesa: f64::INFINITY,
                vptree: f64::INFINITY,
            },
        }
    }

    /// Multi-line human-readable report of the decision and the
    /// measurements behind it.
    pub fn report(&self) -> String {
        let backend = match self.backend {
            PlannedBackend::Linear => "linear".to_string(),
            PlannedBackend::Laesa { pivots } => format!("laesa(pivots={pivots})"),
            PlannedBackend::VpTree => "vp-tree".to_string(),
        };
        format!(
            "plan: backend={backend} shards={}\n\
             sample: {} items, {} pairs (seed {:#x})\n\
             distances: mean={:.4} std={:.4} rho={:.2}\n\
             est. cost/query: linear={:.0} laesa={:.0} vptree={:.0}",
            self.shards,
            self.sampled_items,
            self.sampled_pairs,
            self.seed,
            self.mean,
            self.std_dev,
            self.rho,
            self.costs.linear,
            self.costs.laesa,
            self.costs.vptree,
        )
    }
}

// ------------------------------------------------------------- codec

/// Version byte of the [`Plan`] byte codec.
///
/// * v1 — initial layout: `[version u8][backend u8][pivots u64]
///   [shards u64][seed u64][corpus u64][sampled_items u64]
///   [sampled_pairs u64][mean f64][std f64][rho f64][cost_linear f64]
///   [cost_laesa f64][cost_vptree f64]`, all little-endian, floats as
///   IEEE-754 bit patterns.
pub const PLAN_VERSION: u8 = 1;

/// A plan blob that failed to decode (truncated, unknown version, or
/// an unknown backend code — e.g. written by a newer build).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanDecodeError {
    /// What went wrong.
    pub detail: String,
}

impl std::fmt::Display for PlanDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "plan blob: {}", self.detail)
    }
}

impl std::error::Error for PlanDecodeError {}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

struct PlanReader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> PlanReader<'a> {
    fn u8(&mut self) -> Result<u8, PlanDecodeError> {
        let b = self.bytes.get(self.at).copied().ok_or(PlanDecodeError {
            detail: "truncated".into(),
        })?;
        self.at += 1;
        Ok(b)
    }

    fn u64(&mut self) -> Result<u64, PlanDecodeError> {
        let end = self.at.checked_add(8).filter(|&e| e <= self.bytes.len());
        let end = end.ok_or(PlanDecodeError {
            detail: "truncated".into(),
        })?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(&self.bytes[self.at..end]);
        self.at = end;
        Ok(u64::from_le_bytes(buf))
    }

    fn f64(&mut self) -> Result<f64, PlanDecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn usize(&mut self) -> Result<usize, PlanDecodeError> {
        usize::try_from(self.u64()?).map_err(|_| PlanDecodeError {
            detail: "value exceeds the address space".into(),
        })
    }
}

impl Plan {
    /// Encode the plan for persistence (the snapshot `PLAN` record).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(1 + 1 + 6 * 8 + 6 * 8);
        out.push(PLAN_VERSION);
        let (code, pivots) = match self.backend {
            PlannedBackend::Linear => (0u8, 0usize),
            PlannedBackend::Laesa { pivots } => (1, pivots),
            PlannedBackend::VpTree => (2, 0),
        };
        out.push(code);
        put_u64(&mut out, pivots as u64);
        put_u64(&mut out, self.shards as u64);
        put_u64(&mut out, self.seed);
        put_u64(&mut out, self.corpus as u64);
        put_u64(&mut out, self.sampled_items as u64);
        put_u64(&mut out, self.sampled_pairs as u64);
        put_f64(&mut out, self.mean);
        put_f64(&mut out, self.std_dev);
        put_f64(&mut out, self.rho);
        put_f64(&mut out, self.costs.linear);
        put_f64(&mut out, self.costs.laesa);
        put_f64(&mut out, self.costs.vptree);
        out
    }

    /// Decode a blob written by [`Plan::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Plan, PlanDecodeError> {
        let mut r = PlanReader { bytes, at: 0 };
        let version = r.u8()?;
        if version != PLAN_VERSION {
            return Err(PlanDecodeError {
                detail: format!("unknown version {version} (expected {PLAN_VERSION})"),
            });
        }
        let code = r.u8()?;
        let pivots = r.usize()?;
        let backend = match code {
            0 => PlannedBackend::Linear,
            1 => PlannedBackend::Laesa { pivots },
            2 => PlannedBackend::VpTree,
            other => {
                return Err(PlanDecodeError {
                    detail: format!("unknown backend code {other}"),
                })
            }
        };
        let plan = Plan {
            backend,
            shards: r.usize()?,
            seed: r.u64()?,
            corpus: r.usize()?,
            sampled_items: r.usize()?,
            sampled_pairs: r.usize()?,
            mean: r.f64()?,
            std_dev: r.f64()?,
            rho: r.f64()?,
            costs: PlanCosts {
                linear: r.f64()?,
                laesa: r.f64()?,
                vptree: r.f64()?,
            },
        };
        if r.at != bytes.len() {
            return Err(PlanDecodeError {
                detail: format!("{} trailing bytes", bytes.len() - r.at),
            });
        }
        Ok(plan)
    }
}

// ----------------------------------------------------------- planner

/// Pivot-count ladder the LAESA cost minimisation walks.
const PIVOT_LADDER: &[usize] = &[1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64];

/// Plan the backend for `items` under `dist`. Deterministic for a
/// given `(items, dist, config)` — see the module docs for the model.
pub fn plan<S: Symbol>(items: &[Vec<S>], dist: &dyn Distance<S>, config: &PlanConfig) -> Plan {
    let n = items.len();
    if n < config.small_corpus || !dist.is_metric() {
        return Plan::linear(n, config.seed);
    }

    // Deterministic distinct sample, ascending order.
    let m = config.sample_items.min(n).max(2);
    let sample: Vec<usize> = if m == n {
        (0..n).collect()
    } else {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut seen = vec![false; n];
        let mut picked = Vec::with_capacity(m);
        while picked.len() < m {
            let i = rng.random_range(0..n);
            if !seen[i] {
                seen[i] = true;
                picked.push(i);
            }
        }
        picked.sort_unstable();
        picked
    };

    // Full pairwise matrix over the sample — the only distance work.
    let mut mat = vec![0.0f64; m * m];
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    for a in 0..m {
        for b in (a + 1)..m {
            let d = dist.distance(&items[sample[a]], &items[sample[b]]);
            mat[a * m + b] = d;
            mat[b * m + a] = d;
            sum += d;
            sum_sq += d * d;
        }
    }
    let pairs = m * (m - 1) / 2;
    let mean = sum / pairs as f64;
    let var = (sum_sq / pairs as f64 - mean * mean).max(0.0);
    let std_dev = var.sqrt();
    let rho = if var > 0.0 {
        mean * mean / (2.0 * var)
    } else {
        f64::INFINITY
    };

    // Greedy max-sum pivot order within the sample, mirroring the real
    // LAESA builder's selection so s(p) reflects pivots of comparable
    // quality. First pivot: max total distance to everyone else.
    let row_sum = |v: usize| -> f64 { (0..m).map(|x| mat[v * m + x]).sum() };
    let mut pivot_order: Vec<usize> = Vec::with_capacity(m);
    let mut is_pivot = vec![false; m];
    let first = (0..m)
        .max_by(|&a, &b| row_sum(a).total_cmp(&row_sum(b)))
        .unwrap_or(0);
    pivot_order.push(first);
    is_pivot[first] = true;
    let mut to_chosen = vec![0.0f64; m];
    for x in 0..m {
        to_chosen[x] = mat[first * m + x];
    }
    while pivot_order.len() < m {
        let next = (0..m)
            .filter(|&x| !is_pivot[x])
            .max_by(|&a, &b| to_chosen[a].total_cmp(&to_chosen[b]))
            .unwrap_or(0);
        pivot_order.push(next);
        is_pivot[next] = true;
        for x in 0..m {
            to_chosen[x] += mat[next * m + x];
        }
    }

    // Empirical survival curve s(p): fraction of candidates the first
    // p pivots fail to eliminate at the query's sample-NN radius.
    let ladder: Vec<usize> = PIVOT_LADDER
        .iter()
        .copied()
        .filter(|&p| p <= config.max_pivots && p + 2 <= m)
        .collect();
    let survival: Vec<f64> = ladder
        .iter()
        .map(|&p| {
            let mut candidates = 0u64;
            let mut survived = 0u64;
            for q in 0..m {
                // The query's nearest distance within the sample — the
                // radius a real NN search would be pruning at.
                let mut r = f64::INFINITY;
                for x in 0..m {
                    if x != q {
                        r = r.min(mat[q * m + x]);
                    }
                }
                for x in 0..m {
                    if x == q || pivot_order[..p].contains(&x) {
                        continue;
                    }
                    candidates += 1;
                    let eliminated = pivot_order[..p]
                        .iter()
                        .any(|&v| (mat[q * m + v] - mat[v * m + x]).abs() > r);
                    if !eliminated {
                        survived += 1;
                    }
                }
            }
            if candidates == 0 {
                1.0
            } else {
                survived as f64 / candidates as f64
            }
        })
        .collect();

    let cost_linear = n as f64;
    // Minimise p + s(p)·(n−p) over the ladder; ties go to fewer pivots.
    let (best_p, cost_laesa) = ladder
        .iter()
        .zip(&survival)
        .map(|(&p, &s)| (p, p as f64 + s * (n - p) as f64))
        .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
        .unwrap_or((0, f64::INFINITY));
    // Vp-tree heuristic: ~log2(n) weak pivots along the search path.
    let depth = (n as f64).log2();
    let tree_p = ladder
        .iter()
        .copied()
        .filter(|&p| p as f64 <= depth)
        .max()
        .or_else(|| ladder.first().copied());
    let cost_vptree = match tree_p {
        Some(p) => {
            let i = ladder.iter().position(|&x| x == p).unwrap_or(0);
            depth + n as f64 * survival[i].sqrt()
        }
        None => f64::INFINITY,
    };

    let gate = cost_linear * (1.0 - config.min_gain);
    let backend =
        if cost_laesa.total_cmp(&gate).is_lt() && cost_laesa.total_cmp(&cost_vptree).is_le() {
            PlannedBackend::Laesa { pivots: best_p }
        } else if cost_vptree.total_cmp(&gate).is_lt() {
            PlannedBackend::VpTree
        } else {
            PlannedBackend::Linear
        };
    let shards = match backend {
        PlannedBackend::Laesa { .. } if n >= 2 * config.shard_target => {
            (n / config.shard_target).clamp(2, config.max_shards.max(2))
        }
        _ => 1,
    };

    Plan {
        backend,
        shards,
        seed: config.seed,
        corpus: n,
        sampled_items: m,
        sampled_pairs: pairs,
        mean,
        std_dev,
        rho,
        costs: PlanCosts {
            linear: cost_linear,
            laesa: cost_laesa,
            vptree: cost_vptree,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cned_core::levenshtein::Levenshtein;

    /// Corpus of near-duplicate words around a handful of centres —
    /// low intrinsic dimensionality, pivots prune hard.
    fn clustered(n: usize) -> Vec<Vec<u8>> {
        let centres: [&[u8]; 4] = [
            b"abcdefghijklmnop",
            b"ponmlkjihgfedcba",
            b"aaaaaaaabbbbbbbb",
            b"zyxwvutsrqponmlk",
        ];
        (0..n)
            .map(|i| {
                let mut w = centres[i % 4].to_vec();
                // One deterministic edit per item.
                let at = (i / 4) % w.len();
                w[at] = b'a' + (i % 26) as u8;
                w
            })
            .collect()
    }

    #[test]
    fn planning_is_deterministic() {
        let items = clustered(500);
        let a = plan(&items, &Levenshtein, &PlanConfig::default());
        let b = plan(&items, &Levenshtein, &PlanConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn clustered_corpus_gets_a_pruning_backend() {
        let items = clustered(2000);
        let p = plan(&items, &Levenshtein, &PlanConfig::default());
        assert!(
            !matches!(p.backend, PlannedBackend::Linear),
            "near-duplicate corpus should not plan a linear scan: {}",
            p.report()
        );
        assert!(p.costs.laesa < p.costs.linear);
        assert_eq!(p.corpus, 2000);
        assert!(p.rho.is_finite());
    }

    #[test]
    fn tiny_corpus_plans_linear_without_sampling() {
        let items = clustered(10);
        let p = plan(&items, &Levenshtein, &PlanConfig::default());
        assert_eq!(p.backend, PlannedBackend::Linear);
        assert_eq!(p.sampled_pairs, 0);
    }

    #[test]
    fn non_metric_distances_force_linear() {
        struct NotAMetric;
        impl Distance<u8> for NotAMetric {
            fn distance(&self, a: &[u8], b: &[u8]) -> f64 {
                (a.len() as f64 - b.len() as f64).abs()
            }
            fn name(&self) -> &'static str {
                "len-diff"
            }
            fn is_metric(&self) -> bool {
                false
            }
        }
        let items = clustered(2000);
        let p = plan(&items, &NotAMetric, &PlanConfig::default());
        assert_eq!(
            p.backend,
            PlannedBackend::Linear,
            "pruning is inadmissible without the triangle inequality"
        );
    }

    #[test]
    fn large_clustered_corpus_is_sharded() {
        let items = clustered(10_000);
        let config = PlanConfig {
            shard_target: 2048,
            ..PlanConfig::default()
        };
        let p = plan(&items, &Levenshtein, &config);
        if matches!(p.backend, PlannedBackend::Laesa { .. }) {
            assert!(p.shards >= 2, "{}", p.report());
            assert!(p.shards <= config.max_shards);
        }
    }

    #[test]
    fn codec_roundtrips() {
        let items = clustered(800);
        let p = plan(&items, &Levenshtein, &PlanConfig::default());
        let bytes = p.to_bytes();
        assert_eq!(Plan::from_bytes(&bytes).unwrap(), p);
        // Truncations and version skews are typed errors.
        assert!(Plan::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(Plan::from_bytes(&[]).is_err());
        let mut skewed = bytes.clone();
        skewed[0] = PLAN_VERSION + 1;
        assert!(Plan::from_bytes(&skewed).is_err());
        let mut trailing = bytes;
        trailing.push(0);
        assert!(Plan::from_bytes(&trailing).is_err());
    }

    #[test]
    fn report_names_the_decision() {
        let items = clustered(2000);
        let p = plan(&items, &Levenshtein, &PlanConfig::default());
        let report = p.report();
        assert!(report.contains("backend="));
        assert!(report.contains("rho="));
    }
}
