//! Hot-query result caching: [`CachedIndex`] wraps any
//! [`MetricIndex`] with an exact, sharded, cost-weighted LRU of query
//! answers, plus admissible radius seeding of fresh queries from
//! cached near-duplicate answers.
//!
//! ## Exactness and invalidation
//!
//! Entries are keyed on the **canonicalised** query: the request kind,
//! the query string, the metric's name, and the [`QueryOptions`]
//! fields that can change the answer (`radius`, `k` for k-NN,
//! `pivot_budget`). `threads` and `stats_sink` never affect answers
//! and are excluded. A hit replays the stored neighbours *and* the
//! stored [`SearchStats`] — bit-identical to the call that populated
//! the entry.
//!
//! Writes invalidate everything: [`MetricIndex::delete`] and
//! [`InsertableIndex::insert`] take `&mut self`, which is exactly the
//! exclusivity the serving scheduler's insert/delete barrier provides
//! — queries batched before the barrier hit the old cache, the barrier
//! flushes, queries after it repopulate against the new corpus. A
//! stale answer would require a query and a write to overlap, which
//! the barrier forbids.
//!
//! ## Radius seeding (admissible, answer-preserving)
//!
//! On a **miss**, the cache consults a small ring of recently answered
//! queries. If a cached query `q'` has `k` results with k-th distance
//! `d_k`, the triangle inequality gives `d(q, q') + d_k` as an upper
//! bound on the fresh query's own k-th-nearest distance, so seeding
//! [`QueryOptions::radius`] with it can only *reject* candidates that
//! were never going to win — the reported neighbours are identical,
//! only the work (and therefore the fresh query's `SearchStats`)
//! shrinks. The probe distance `d(q, q')` is real work too; it is
//! counted in [`CacheStats::probe_computations`], and seeding is
//! skipped entirely for range queries (their radius is the question,
//! not a bound).
//!
//! ## Weighted LRU
//!
//! Each entry weighs `1 +` the distance evaluations its answer cost —
//! a capacity expressed in *recompute cost*, so one answer that took
//! 10 000 evaluations can displace thousands of trivial ones, and
//! eviction pressure tracks what the cache actually saves. Keys are
//! distributed over shards by hash; each shard is an independent
//! LRU (hash-keyed lookups plus an explicit intrusive list — nothing
//! ever iterates a hash map).

use cned_core::metric::Distance;
use cned_core::Symbol;
use cned_search::{
    InsertableIndex, MetricIndex, Neighbour, QueryOptions, SearchError, SearchStats,
};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Knobs for [`CachedIndex`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of independent LRU shards (keys are hash-distributed).
    pub shards: usize,
    /// Total weight budget per shard, in recompute cost
    /// (`1 + distance_computations` per entry).
    pub shard_capacity: u64,
    /// Entries in each shard's radius-seeding ring (`0` disables
    /// seeding).
    pub seed_ring: usize,
}

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig {
            shards: 8,
            shard_capacity: 1 << 20,
            seed_ring: 4,
        }
    }
}

/// Counters exposed by [`CachedIndex::cache_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered straight from the cache.
    pub hits: u64,
    /// Queries that went to the inner index.
    pub misses: u64,
    /// Misses whose search radius was seeded from a cached
    /// near-duplicate answer.
    pub seeded: u64,
    /// Distance evaluations spent probing seed candidates (not part
    /// of any query's `SearchStats`).
    pub probe_computations: u64,
    /// Full flushes taken on the insert/delete barrier.
    pub invalidations: u64,
}

const KIND_NN: u8 = 0;
const KIND_KNN: u8 = 1;
const KIND_RANGE: u8 = 2;

/// Canonical cache key: only what can change the answer.
#[derive(Clone, PartialEq, Eq, Hash)]
struct Key<S> {
    kind: u8,
    query: Vec<S>,
    /// `metric.name()` — guards against the same wrapper being queried
    /// through two different distances.
    metric: &'static str,
    /// `opts.radius.to_bits()`; NaN radii are never cached (they are
    /// typed errors).
    radius_bits: u64,
    /// `opts.k` for k-NN, `0` otherwise (NN and range ignore `k`).
    k: usize,
    /// `opts.pivot_budget`, `u64::MAX` for "all pivots".
    pivot_budget: u64,
}

#[derive(Clone)]
enum Answer {
    Nn(Option<Neighbour>, SearchStats),
    Many(Vec<Neighbour>, SearchStats),
}

const NONE: usize = usize::MAX;

struct Slot<S> {
    key: Key<S>,
    answer: Answer,
    weight: u64,
    prev: usize,
    next: usize,
}

/// A seed-ring entry: a recently answered query and its result
/// distances in canonical (ascending) order, tagged with the metric
/// they were measured under (a bound mixing two metrics would be
/// inadmissible).
struct SeedEntry<S> {
    query: Vec<S>,
    metric: &'static str,
    result_dists: Vec<f64>,
}

struct Shard<S> {
    map: HashMap<Key<S>, usize>,
    slots: Vec<Slot<S>>,
    free: Vec<usize>,
    /// Most-recently-used slot (`NONE` when empty).
    head: usize,
    /// Least-recently-used slot (`NONE` when empty).
    tail: usize,
    weight: u64,
    ring: Vec<SeedEntry<S>>,
    ring_at: usize,
}

impl<S: Symbol + Hash> Shard<S> {
    fn new() -> Shard<S> {
        Shard {
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NONE,
            tail: NONE,
            weight: 0,
            ring: Vec::new(),
            ring_at: 0,
        }
    }

    fn unlink(&mut self, at: usize) {
        let (prev, next) = (self.slots[at].prev, self.slots[at].next);
        if prev == NONE {
            self.head = next;
        } else {
            self.slots[prev].next = next;
        }
        if next == NONE {
            self.tail = prev;
        } else {
            self.slots[next].prev = prev;
        }
    }

    fn push_front(&mut self, at: usize) {
        self.slots[at].prev = NONE;
        self.slots[at].next = self.head;
        if self.head != NONE {
            self.slots[self.head].prev = at;
        }
        self.head = at;
        if self.tail == NONE {
            self.tail = at;
        }
    }

    fn get(&mut self, key: &Key<S>) -> Option<Answer> {
        let at = *self.map.get(key)?;
        self.unlink(at);
        self.push_front(at);
        Some(self.slots[at].answer.clone())
    }

    fn insert(&mut self, key: Key<S>, answer: Answer, weight: u64, capacity: u64) {
        if let Some(&at) = self.map.get(&key) {
            self.weight = self.weight - self.slots[at].weight + weight;
            self.slots[at].answer = answer;
            self.slots[at].weight = weight;
            self.unlink(at);
            self.push_front(at);
        } else {
            let slot = Slot {
                key: key.clone(),
                answer,
                weight,
                prev: NONE,
                next: NONE,
            };
            let at = match self.free.pop() {
                Some(at) => {
                    self.slots[at] = slot;
                    at
                }
                None => {
                    self.slots.push(slot);
                    self.slots.len() - 1
                }
            };
            self.map.insert(key, at);
            self.push_front(at);
            self.weight += weight;
        }
        // Evict from the cold end until within budget; an entry
        // heavier than the whole budget is kept alone (evicting the
        // only entry would make the cache useless for exactly the
        // answers worth caching).
        while self.weight > capacity && self.tail != self.head {
            let victim = self.tail;
            self.unlink(victim);
            self.map.remove(&self.slots[victim].key);
            self.weight -= self.slots[victim].weight;
            self.slots[victim].answer = Answer::Nn(None, SearchStats::default());
            self.slots[victim].key.query = Vec::new();
            self.free.push(victim);
        }
    }

    fn remember_seed(
        &mut self,
        query: &[S],
        metric: &'static str,
        result_dists: Vec<f64>,
        ring_cap: usize,
    ) {
        if ring_cap == 0 || result_dists.is_empty() {
            return;
        }
        let entry = SeedEntry {
            query: query.to_vec(),
            metric,
            result_dists,
        };
        if self.ring.len() < ring_cap {
            self.ring.push(entry);
        } else {
            self.ring[self.ring_at] = entry;
            self.ring_at = (self.ring_at + 1) % ring_cap;
        }
    }

    fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NONE;
        self.tail = NONE;
        self.weight = 0;
        self.ring.clear();
        self.ring_at = 0;
    }
}

/// The shared counter block behind a [`CachedIndex`] and its
/// [`CacheHandle`]s.
#[derive(Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    seeded: AtomicU64,
    probes: AtomicU64,
    invalidations: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            seeded: self.seeded.load(Ordering::Relaxed),
            probe_computations: self.probes.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }
}

/// A cloneable view of a [`CachedIndex`]'s counters that outlives
/// moving the index itself into a session or server — how the
/// `cned::Database` facade reports hit rates while the wrapped index
/// is busy serving.
#[derive(Clone)]
pub struct CacheHandle {
    counters: Arc<Counters>,
}

impl CacheHandle {
    /// Counters since the cache was constructed.
    pub fn stats(&self) -> CacheStats {
        self.counters.snapshot()
    }
}

/// An exact result cache in front of any [`MetricIndex`] — see the
/// module docs for semantics. Construct with [`CachedIndex::new`],
/// unwrap with [`CachedIndex::into_inner`].
pub struct CachedIndex<S: Symbol + Hash, I: MetricIndex<S>> {
    inner: I,
    shards: Vec<Mutex<Shard<S>>>,
    config: CacheConfig,
    counters: Arc<Counters>,
}

impl<S: Symbol + Hash, I: MetricIndex<S>> CachedIndex<S, I> {
    /// Wrap `inner` with a result cache.
    pub fn new(inner: I, config: CacheConfig) -> CachedIndex<S, I> {
        let shard_count = config.shards.max(1);
        CachedIndex {
            inner,
            shards: (0..shard_count).map(|_| Mutex::new(Shard::new())).collect(),
            config,
            counters: Arc::new(Counters::default()),
        }
    }

    /// The wrapped index.
    pub fn inner(&self) -> &I {
        &self.inner
    }

    /// Unwrap, discarding the cache.
    pub fn into_inner(self) -> I {
        self.inner
    }

    /// A detached, cloneable view of the counters.
    pub fn handle(&self) -> CacheHandle {
        CacheHandle {
            counters: Arc::clone(&self.counters),
        }
    }

    /// Counters since construction.
    pub fn cache_stats(&self) -> CacheStats {
        self.counters.snapshot()
    }

    /// Drop every cached answer and seed entry. Called on the write
    /// barrier; also available to benchmarks.
    pub fn flush(&self) {
        for shard in &self.shards {
            shard.lock().expect("cache shard lock").clear();
        }
        self.counters.invalidations.fetch_add(1, Ordering::Relaxed);
    }

    fn shard_for(&self, key: &Key<S>) -> &Mutex<Shard<S>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() % self.shards.len() as u64) as usize]
    }

    /// Admissible radius bound for a fresh query wanting `k` results:
    /// the minimum over seed-ring candidates `q'` (with at least `k`
    /// cached results) of `d(q, q') + d_k(q')`. Returns the bound and
    /// how many probe distances it cost.
    fn seed_bound(
        &self,
        shard: &Mutex<Shard<S>>,
        query: &[S],
        dist: &dyn Distance<S>,
        k: usize,
    ) -> Option<f64> {
        if self.config.seed_ring == 0 || k == 0 {
            return None;
        }
        // Copy the candidates out so no lock is held across distance
        // evaluations (they can be arbitrarily slow).
        let candidates: Vec<(Vec<S>, f64)> = {
            let guard = shard.lock().expect("cache shard lock");
            guard
                .ring
                .iter()
                .filter(|e| e.metric == dist.name() && e.result_dists.len() >= k)
                .map(|e| (e.query.clone(), e.result_dists[k - 1]))
                .collect()
        };
        if candidates.is_empty() {
            return None;
        }
        self.counters
            .probes
            .fetch_add(candidates.len() as u64, Ordering::Relaxed);
        candidates
            .iter()
            .map(|(cq, dk)| dist.distance(query, cq) + dk)
            .min_by(|a, b| a.total_cmp(b))
    }

    fn key(kind: u8, query: &[S], dist: &dyn Distance<S>, opts: &QueryOptions) -> Key<S> {
        Key {
            kind,
            query: query.to_vec(),
            metric: dist.name(),
            radius_bits: opts.radius.to_bits(),
            k: if kind == KIND_KNN { opts.k } else { 0 },
            pivot_budget: opts
                .pivot_budget
                .map_or(u64::MAX, |p| (p as u64).min(u64::MAX - 1)),
        }
    }

    /// Whether this call can be cached at all: error paths (empty
    /// index, NaN/negative radius) must keep producing typed errors.
    fn cacheable(&self, opts: &QueryOptions) -> bool {
        !self.inner.is_empty() && opts.checked_radius().is_ok()
    }
}

impl<S: Symbol + Hash, I: MetricIndex<S>> MetricIndex<S> for CachedIndex<S, I> {
    fn len(&self) -> usize {
        self.inner.len()
    }

    fn backend_name(&self) -> &'static str {
        self.inner.backend_name()
    }

    fn item(&self, i: usize) -> Option<&[S]> {
        self.inner.item(i)
    }

    fn nn(
        &self,
        query: &[S],
        dist: &dyn Distance<S>,
        opts: &QueryOptions,
    ) -> Result<(Option<Neighbour>, SearchStats), SearchError> {
        if !self.cacheable(opts) {
            return self.inner.nn(query, dist, opts);
        }
        let key = Self::key(KIND_NN, query, dist, opts);
        let shard = self.shard_for(&key);
        if let Some(Answer::Nn(nb, stats)) = shard.lock().expect("cache shard lock").get(&key) {
            self.counters.hits.fetch_add(1, Ordering::Relaxed);
            opts.record(stats);
            return Ok((nb, stats));
        }
        self.counters.misses.fetch_add(1, Ordering::Relaxed);
        let mut eff = opts.clone();
        if let Some(bound) = self.seed_bound(shard, query, dist, 1) {
            if bound.total_cmp(&eff.radius).is_lt() {
                eff.radius = bound;
                self.counters.seeded.fetch_add(1, Ordering::Relaxed);
            }
        }
        let (nb, stats) = self.inner.nn(query, dist, &eff)?;
        let mut guard = shard.lock().expect("cache shard lock");
        guard.insert(
            key,
            Answer::Nn(nb, stats),
            1 + stats.distance_computations,
            self.config.shard_capacity,
        );
        guard.remember_seed(
            query,
            dist.name(),
            nb.iter().map(|n| n.distance).collect(),
            self.config.seed_ring,
        );
        Ok((nb, stats))
    }

    fn knn(
        &self,
        query: &[S],
        dist: &dyn Distance<S>,
        opts: &QueryOptions,
    ) -> Result<(Vec<Neighbour>, SearchStats), SearchError> {
        if !self.cacheable(opts) {
            return self.inner.knn(query, dist, opts);
        }
        let key = Self::key(KIND_KNN, query, dist, opts);
        let shard = self.shard_for(&key);
        if let Some(Answer::Many(hits, stats)) = shard.lock().expect("cache shard lock").get(&key) {
            self.counters.hits.fetch_add(1, Ordering::Relaxed);
            opts.record(stats);
            return Ok((hits, stats));
        }
        self.counters.misses.fetch_add(1, Ordering::Relaxed);
        let mut eff = opts.clone();
        if let Some(bound) = self.seed_bound(shard, query, dist, opts.k) {
            if bound.total_cmp(&eff.radius).is_lt() {
                eff.radius = bound;
                self.counters.seeded.fetch_add(1, Ordering::Relaxed);
            }
        }
        let (hits, stats) = self.inner.knn(query, dist, &eff)?;
        let mut guard = shard.lock().expect("cache shard lock");
        guard.insert(
            key,
            Answer::Many(hits.clone(), stats),
            1 + stats.distance_computations,
            self.config.shard_capacity,
        );
        guard.remember_seed(
            query,
            dist.name(),
            hits.iter().map(|n| n.distance).collect(),
            self.config.seed_ring,
        );
        Ok((hits, stats))
    }

    fn range(
        &self,
        query: &[S],
        dist: &dyn Distance<S>,
        opts: &QueryOptions,
    ) -> Result<(Vec<Neighbour>, SearchStats), SearchError> {
        if !self.cacheable(opts) {
            return self.inner.range(query, dist, opts);
        }
        let key = Self::key(KIND_RANGE, query, dist, opts);
        let shard = self.shard_for(&key);
        if let Some(Answer::Many(hits, stats)) = shard.lock().expect("cache shard lock").get(&key) {
            self.counters.hits.fetch_add(1, Ordering::Relaxed);
            opts.record(stats);
            return Ok((hits, stats));
        }
        self.counters.misses.fetch_add(1, Ordering::Relaxed);
        // No seeding: the radius *is* the question for a range query.
        let (hits, stats) = self.inner.range(query, dist, opts)?;
        let mut guard = shard.lock().expect("cache shard lock");
        guard.insert(
            key,
            Answer::Many(hits.clone(), stats),
            1 + stats.distance_computations,
            self.config.shard_capacity,
        );
        Ok((hits, stats))
    }

    fn delete(&mut self, index: usize) -> Result<bool, SearchError> {
        // Flush-before-write: even a failed delete leaves no window
        // where a racing reader could repopulate from pre-write state,
        // because `&mut self` IS the barrier — no readers exist now.
        self.flush();
        self.inner.delete(index)
    }

    fn deleted(&self) -> usize {
        self.inner.deleted()
    }

    fn is_deleted(&self, i: usize) -> bool {
        self.inner.is_deleted(i)
    }

    fn as_insertable(&mut self) -> Option<&mut dyn InsertableIndex<S>> {
        if self.inner.as_insertable().is_some() {
            Some(self)
        } else {
            None
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        // Persistence reaches through the cache to the real structure.
        self.inner.as_any()
    }
}

impl<S: Symbol + Hash, I: MetricIndex<S>> InsertableIndex<S> for CachedIndex<S, I> {
    fn insert(&mut self, item: Vec<S>, dist: &dyn Distance<S>) -> Result<usize, SearchError> {
        self.flush();
        self.inner
            .as_insertable()
            .ok_or(SearchError::UnsupportedConfig {
                reason: "this backend does not support inserts",
            })?
            .insert(item, dist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cned_core::levenshtein::Levenshtein;
    use cned_search::LinearIndex;

    fn words() -> Vec<Vec<u8>> {
        ["casa", "cosa", "masa", "taza", "cesta", "pasta", "queso"]
            .iter()
            .map(|w| w.as_bytes().to_vec())
            .collect()
    }

    fn cached() -> CachedIndex<u8, LinearIndex<u8>> {
        CachedIndex::new(LinearIndex::new(words()), CacheConfig::default())
    }

    #[test]
    fn hits_replay_bit_identical_answers_and_stats() {
        let index = cached();
        let opts = QueryOptions::new();
        let (a, s1) = index.nn(b"cesa", &Levenshtein, &opts).unwrap();
        let (b, s2) = index.nn(b"cesa", &Levenshtein, &opts).unwrap();
        assert_eq!(
            a.map(|n| (n.index, n.distance.to_bits())),
            b.map(|n| (n.index, n.distance.to_bits()))
        );
        assert_eq!(s1, s2, "a hit replays the original statistics");
        let stats = index.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn kind_and_options_partition_the_key_space() {
        let index = cached();
        let (nn_hits, _) = index
            .knn(b"casa", &Levenshtein, &QueryOptions::new().k(3))
            .unwrap();
        let (r_hits, _) = index
            .range(b"casa", &Levenshtein, &QueryOptions::new().radius(1.0))
            .unwrap();
        assert_eq!(nn_hits.len(), 3);
        assert!(!r_hits.is_empty());
        // Different k = different key, not a stale 3-NN replay.
        let (k5, _) = index
            .knn(b"casa", &Levenshtein, &QueryOptions::new().k(5))
            .unwrap();
        assert_eq!(k5.len(), 5);
        assert_eq!(index.cache_stats().hits, 0);
    }

    #[test]
    fn insert_and_delete_flush_the_cache() {
        let mut index = cached();
        let opts = QueryOptions::new();
        let (before, _) = index.nn(b"queso", &Levenshtein, &opts).unwrap();
        assert_eq!(before.unwrap().distance, 0.0);
        let queso = words().iter().position(|w| w == b"queso").unwrap();
        assert!(index.delete(queso).unwrap());
        let (after, _) = index.nn(b"queso", &Levenshtein, &opts).unwrap();
        assert_ne!(
            after.unwrap().index,
            queso,
            "the barrier flushed the stale answer"
        );
        index
            .as_insertable()
            .unwrap()
            .insert(b"queso".to_vec(), &Levenshtein)
            .unwrap();
        let (back, _) = index.nn(b"queso", &Levenshtein, &opts).unwrap();
        assert_eq!(back.unwrap().distance, 0.0);
        assert_eq!(index.cache_stats().invalidations, 2);
    }

    #[test]
    fn radius_seeding_never_changes_answers() {
        let corpus: Vec<Vec<u8>> = (0..200u32)
            .map(|i| format!("word{:03}x{}", i % 50, i / 50).into_bytes())
            .collect();
        let plain = LinearIndex::new(corpus.clone());
        let seeded = CachedIndex::new(
            LinearIndex::new(corpus),
            CacheConfig {
                seed_ring: 4,
                ..CacheConfig::default()
            },
        );
        let queries: Vec<Vec<u8>> = (0..40u32)
            .map(|i| format!("word{:03}", i).into_bytes())
            .collect();
        let opts = QueryOptions::new().k(3);
        for q in &queries {
            let (expect, _) = plain.knn(q, &Levenshtein, &opts).unwrap();
            let (got, _) = seeded.knn(q, &Levenshtein, &opts).unwrap();
            let key = |ns: &[Neighbour]| -> Vec<(usize, u64)> {
                ns.iter().map(|n| (n.index, n.distance.to_bits())).collect()
            };
            assert_eq!(key(&expect), key(&got), "query {q:?}");
        }
        let stats = seeded.cache_stats();
        assert!(stats.seeded > 0, "near-duplicate queries should seed");
    }

    #[test]
    fn weighted_eviction_respects_the_budget() {
        let index = CachedIndex::new(
            LinearIndex::new(words()),
            CacheConfig {
                shards: 1,
                // Each miss weighs 1 + 7 computations = 8.
                shard_capacity: 16,
                seed_ring: 0,
            },
        );
        let opts = QueryOptions::new();
        index.nn(b"aaa", &Levenshtein, &opts).unwrap();
        index.nn(b"bbb", &Levenshtein, &opts).unwrap();
        index.nn(b"ccc", &Levenshtein, &opts).unwrap(); // evicts "aaa"
        index.nn(b"aaa", &Levenshtein, &opts).unwrap(); // miss again
        let stats = index.cache_stats();
        assert_eq!((stats.hits, stats.misses), (0, 4));
        // The survivors still hit.
        index.nn(b"aaa", &Levenshtein, &opts).unwrap();
        assert_eq!(index.cache_stats().hits, 1);
    }

    #[test]
    fn error_paths_stay_typed_and_uncached() {
        let index = CachedIndex::new(
            LinearIndex::new(Vec::<Vec<u8>>::new()),
            CacheConfig::default(),
        );
        assert_eq!(
            index
                .nn(b"x", &Levenshtein, &QueryOptions::new())
                .unwrap_err(),
            SearchError::EmptyDatabase
        );
        let full = cached();
        assert!(matches!(
            full.range(b"x", &Levenshtein, &QueryOptions::new().radius(-1.0))
                .unwrap_err(),
            SearchError::InvalidRadius { .. }
        ));
        let stats = full.cache_stats();
        assert_eq!((stats.hits, stats.misses), (0, 0));
    }
}
