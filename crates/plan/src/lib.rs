//! # cned-plan — adaptive query planning and hot-query caching
//!
//! The decision layer of the serving stack, in two halves:
//!
//! * [`planner`] — build-time planning: a seeded distance sample over
//!   the corpus yields the distribution's `μ`, `σ` and intrinsic
//!   dimensionality `ρ = μ²/2σ²` plus an *empirical* pruning curve,
//!   and a cost model prices the linear scan, LAESA (over a
//!   pivot-count ladder) and the vp-tree in distance evaluations per
//!   query, picking the cheapest — with shard split — into an
//!   inspectable, byte-codec'd [`Plan`]. Non-metric distances force a
//!   linear plan (pruning is inadmissible without the triangle
//!   inequality). `cned`'s `Backend::Auto` is a thin wrapper over
//!   [`plan`], and snapshots persist the blob so a warm restart
//!   reports the same decision it serves.
//! * [`cache`] — run-time caching: [`CachedIndex`] wraps any
//!   [`cned_search::MetricIndex`] with an exact, sharded,
//!   cost-weighted LRU of query answers keyed on the canonicalised
//!   `(kind, query, metric, options)`, flushed wholesale on the
//!   insert/delete barrier (`&mut self` *is* the barrier), plus
//!   admissible triangle-inequality radius seeding of fresh queries
//!   from cached near-duplicate answers — identical neighbours,
//!   strictly less work.
//!
//! Everything here is deterministic: sampling is seeded, hash maps
//! are only ever key-addressed (the LRU order lives in an explicit
//! intrusive list), and float decisions go through `total_cmp` —
//! `cned-lint`'s determinism pass covers this crate like the rest of
//! the answer path.

// No unsafe here, enforced at compile time (and by cned-lint).
#![forbid(unsafe_code)]

pub mod cache;
pub mod planner;

pub use cache::{CacheConfig, CacheHandle, CacheStats, CachedIndex};
pub use planner::{
    plan, Plan, PlanConfig, PlanCosts, PlanDecodeError, PlannedBackend, PLAN_VERSION,
};
