//! Benchmark-only crate; see benches/.

// No unsafe here, enforced at compile time (and by cned-lint).
#![forbid(unsafe_code)]
