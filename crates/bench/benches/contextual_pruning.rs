//! Exact vs bounded contextual distance — the numbers behind the
//! band-pruned `d_C` engine (`cned_core::contextual::bounded`) and the
//! contextual entries in ROADMAP's Performance section.
//!
//! Three groups:
//! * `dc_pair` — one pair at a time: the exact cubic DP vs the bounded
//!   engine under a rejecting budget (gates fire, DP skipped) and an
//!   accepting budget (banded DP runs);
//! * `dc_linear_scan` — `linear_nn` over a dictionary with the pruned
//!   engine vs the [`Unpruned`] full-evaluation baseline, i.e. what a
//!   `d_C` serving scan actually pays;
//! * `dc_laesa` — the same contrast inside LAESA, where the triangle
//!   inequality already skips candidates and the bounded engine cheapens
//!   the survivors.
//!
//! After the timed groups the bench replays one scan of each flavour
//! and reports how many comparisons actually ran the cubic DP
//! (`dp_runs`) versus being rejected by the cheap gates
//! (`gate_rejections`) — the "fewer full DP evaluations" number quoted
//! in ROADMAP.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Duration;

use cned_core::contextual::bounded::{contextual_bounded, dp_runs, gate_rejections};
use cned_core::contextual::exact::{contextual_distance, Contextual};
use cned_core::metric::Unpruned;
use cned_datasets::dictionary::spanish_dictionary;
use cned_datasets::perturb::{gen_queries, ASCII_LOWER};
use cned_search::laesa::Laesa;
use cned_search::pivots::select_pivots_max_sum;
use cned_search::{LinearIndex, MetricIndex, QueryOptions};

fn random_pair(len: usize, seed: u64) -> (Vec<u8>, Vec<u8>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let gen = |rng: &mut StdRng| (0..len).map(|_| rng.random_range(0..4u8)).collect();
    (gen(&mut rng), gen(&mut rng))
}

fn bench_pair(c: &mut Criterion) {
    let mut group = c.benchmark_group("dc_pair");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));

    for len in [16usize, 32, 64, 96] {
        let (x, y) = random_pair(len, len as u64);
        let d = contextual_distance(&x, &y);
        group.bench_with_input(BenchmarkId::new("exact", len), &len, |b, _| {
            b.iter(|| contextual_distance(black_box(&x), black_box(&y)))
        });
        // Rejecting budget (half the true distance): the regime search
        // lives in once a decent best is known — gates only.
        group.bench_with_input(BenchmarkId::new("bounded_reject", len), &len, |b, _| {
            b.iter(|| contextual_bounded(black_box(&x), black_box(&y), d * 0.5))
        });
        // Accepting budget just above the distance: the banded DP runs
        // but the k dimension and corridor stay tight.
        group.bench_with_input(BenchmarkId::new("bounded_accept", len), &len, |b, _| {
            b.iter(|| contextual_bounded(black_box(&x), black_box(&y), d * 1.05))
        });
    }
    group.finish();
}

const DB_SIZE: usize = 300;
const N_QUERIES: usize = 8;
const N_PIVOTS: usize = 16;

fn scan_data() -> (Vec<Vec<u8>>, Vec<Vec<u8>>) {
    let db = spanish_dictionary(DB_SIZE, 5);
    let queries = gen_queries(&db, N_QUERIES, 2, ASCII_LOWER, 6);
    (db, queries)
}

fn bench_linear_scan(c: &mut Criterion) {
    let (db, queries) = scan_data();
    let linear = LinearIndex::new(db.clone());
    let opts = QueryOptions::new();
    let mut group = c.benchmark_group("dc_linear_scan");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    group.bench_function("bounded", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(linear.nn(black_box(q), &Contextual, &opts).unwrap());
            }
        })
    });
    group.bench_function("unpruned", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(
                    linear
                        .nn(black_box(q), &Unpruned(Contextual), &opts)
                        .unwrap(),
                );
            }
        })
    });
    group.finish();
}

fn bench_laesa(c: &mut Criterion) {
    let (db, queries) = scan_data();
    let pivots = select_pivots_max_sum(&db, N_PIVOTS, 0, &Contextual);
    let index =
        Laesa::try_build(db.clone(), pivots, &Contextual).expect("max-sum pivots are valid");
    let linear = LinearIndex::new(db.clone());
    let opts = QueryOptions::new();

    let mut group = c.benchmark_group("dc_laesa");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    group.bench_function("bounded", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(MetricIndex::nn(&index, black_box(q), &Contextual, &opts).unwrap());
            }
        })
    });
    group.bench_function("unpruned", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(
                    MetricIndex::nn(&index, black_box(q), &Unpruned(Contextual), &opts).unwrap(),
                );
            }
        })
    });
    group.finish();

    // One instrumented replay per flavour: how many comparisons paid
    // the cubic DP under the bounded engine, vs the baseline where
    // every comparison is a full DP by construction.
    let replay = |laesa: bool| -> (u64, u64, u64) {
        let (dp0, gate0) = (dp_runs(), gate_rejections());
        let mut comparisons = 0;
        for q in &queries {
            let stats = if laesa {
                MetricIndex::nn(&index, q, &Contextual, &opts).unwrap().1
            } else {
                linear.nn(q, &Contextual, &opts).unwrap().1
            };
            comparisons += stats.distance_computations;
        }
        (comparisons, dp_runs() - dp0, gate_rejections() - gate0)
    };
    let (lin_comp, lin_dp, lin_gate) = replay(false);
    let (la_comp, la_dp, la_gate) = replay(true);
    eprintln!(
        "[dc_pruning] linear scan: {lin_comp} comparisons -> {lin_dp} full DPs \
         ({lin_gate} gate-rejected); unpruned baseline would run {lin_comp} DPs \
         ({:.1}x reduction)",
        lin_comp as f64 / lin_dp.max(1) as f64
    );
    eprintln!(
        "[dc_pruning] LAESA: {la_comp} comparisons -> {la_dp} full DPs \
         ({la_gate} gate-rejected); unpruned baseline would run {la_comp} DPs \
         ({:.1}x reduction)",
        la_comp as f64 / la_dp.max(1) as f64
    );
}

criterion_group!(benches, bench_pair, bench_linear_scan, bench_laesa);
criterion_main!(benches);
