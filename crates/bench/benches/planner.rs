//! Decision-layer economics (`cned-plan`): what does the adaptive
//! planner cost, does its pick hold up against hand-tuned shapes, and
//! what do the hot-query cache and tombstoned deletes buy?
//!
//! Three groups:
//! * `query_planning` — the planner's own overhead (seeded distance
//!   sampling + cost model), then k-NN throughput of the shape
//!   `Backend::Auto` selected against hand-tuned linear, LAESA and
//!   sharded-LAESA databases over the same corpus. The chosen plan and
//!   each shape's measured distance computations per query are printed
//!   so the JSON numbers can be read against the cost model;
//! * `zipfian_cache` — the same Zipfian(1.0) query stream through a
//!   cached and an uncached database. The cache answers repeats
//!   exactly (bit-identical results, checked in `tests/planning.rs`);
//!   this group prices them. The achieved hit rate is printed;
//! * `delete_compaction` — steady-state insert+tombstone cycles
//!   through the sharded serving backend (delta compaction included),
//!   with the terminal `vacuum` (full rebuild of the survivors) timed
//!   outside criterion for context.
//!
//! Set `CNED_BENCH_FAST=1` (CI smoke) to shrink the workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::{Duration, Instant};

use cned::{Backend, Database};
use cned_core::levenshtein::Levenshtein;
use cned_datasets::dictionary::spanish_dictionary;
use cned_datasets::perturb::{gen_queries, ASCII_LOWER};
use cned_plan::PlanConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn fast() -> bool {
    std::env::var("CNED_BENCH_FAST").is_ok_and(|v| v != "0")
}

fn sizes() -> (usize, usize) {
    // (database items, distinct queries)
    if fast() {
        (400, 40)
    } else {
        (2000, 120)
    }
}

const K: usize = 5;

fn corpus() -> (Vec<Vec<u8>>, Vec<Vec<u8>>) {
    let (n, q) = sizes();
    let db = spanish_dictionary(n, 11);
    let queries = gen_queries(&db, q, 2, ASCII_LOWER, 7);
    (db, queries)
}

/// Sum of `distance_computations` over one pass of `queries`, for the
/// printed context lines.
fn computations_per_query(db: &Database<u8>, queries: &[Vec<u8>]) -> f64 {
    let mut total = 0u64;
    for q in queries {
        let (_, stats) = db.knn(q, K).expect("non-empty database");
        total += stats.distance_computations;
    }
    total as f64 / queries.len() as f64
}

fn bench_query_planning(c: &mut Criterion) {
    let (db, queries) = corpus();
    let n = db.len();

    let mut group = c.benchmark_group("query_planning");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));

    // The planner itself: seeded sampling, moment estimation, cost
    // model, shard split. This is the one-off price Backend::Auto adds
    // to a build.
    let cfg = PlanConfig::default();
    group.bench_with_input(BenchmarkId::new("plan_overhead", n), &n, |b, _| {
        b.iter(|| cned_plan::plan(black_box(&db), &Levenshtein, &cfg))
    });

    let auto = Database::builder(db.clone())
        .backend(Backend::Auto)
        .build()
        .expect("auto plan builds");
    let plan = auto.plan().expect("auto records its plan").clone();
    let shapes: Vec<(&str, Database<u8>)> = vec![
        ("auto", auto),
        (
            "linear",
            Database::builder(db.clone()).build().expect("builds"),
        ),
        (
            "laesa_16",
            Database::builder(db.clone())
                .backend(Backend::Laesa { pivots: 16 })
                .build()
                .expect("builds"),
        ),
        (
            "sharded_4x16",
            Database::builder(db.clone())
                .backend(Backend::Laesa { pivots: 16 })
                .shards(4)
                .build()
                .expect("builds"),
        ),
    ];
    for (name, shaped) in &shapes {
        group.bench_with_input(BenchmarkId::new(*name, n), &n, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let q = &queries[i % queries.len()];
                i += 1;
                shaped.knn(black_box(q), K).expect("non-empty")
            })
        });
    }
    group.finish();

    println!(
        "plan: {:?} x {} shards over {} items (rho {:.2}; modelled cost linear {:.0}, \
         laesa {:.0}, vptree {:.0})",
        plan.backend,
        plan.shards,
        plan.corpus,
        plan.rho,
        plan.costs.linear,
        plan.costs.laesa,
        plan.costs.vptree
    );
    for (name, shaped) in &shapes {
        println!(
            "  {name}: {:.1} distance computations per k-NN query",
            computations_per_query(shaped, &queries)
        );
    }
}

/// A Zipfian(1.0) stream of `len` indices over `ranks` hot queries:
/// rank r is drawn with probability proportional to 1/(r+1).
fn zipf_stream(ranks: usize, len: usize, seed: u64) -> Vec<usize> {
    let mut cdf = Vec::with_capacity(ranks);
    let mut acc = 0.0f64;
    for r in 0..ranks {
        acc += 1.0 / (r as f64 + 1.0);
        cdf.push(acc);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            let u = rng.random_range(0.0..acc);
            cdf.partition_point(|&c| c < u).min(ranks - 1)
        })
        .collect()
}

fn bench_zipfian_cache(c: &mut Criterion) {
    let (db, queries) = corpus();
    let n = db.len();
    let ranks = 32.min(queries.len());
    let stream = zipf_stream(ranks, 4096, 29);

    let cached = Database::builder(db.clone())
        .backend(Backend::Auto)
        .cache()
        .build()
        .expect("builds");
    let uncached = Database::builder(db)
        .backend(Backend::Auto)
        .build()
        .expect("builds");

    let mut group = c.benchmark_group("zipfian_cache");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for (name, shaped) in [("cached", &cached), ("uncached", &uncached)] {
        group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let q = &queries[stream[i % stream.len()]];
                i += 1;
                shaped.knn(black_box(q), K).expect("non-empty")
            })
        });
    }
    group.finish();

    let stats = cached.cache_stats().expect("cache attached");
    let total = stats.hits + stats.misses;
    println!(
        "zipfian({ranks} hot queries): {} hits / {} lookups ({:.0}% hit rate, {} radius-seeded)",
        stats.hits,
        total,
        stats.hits as f64 / total.max(1) as f64 * 100.0,
        stats.seeded
    );
}

fn bench_delete_compaction(c: &mut Criterion) {
    let (db, _) = corpus();
    let n = db.len();
    let fresh = || {
        Database::builder(db.clone())
            .backend(Backend::Laesa { pivots: 8 })
            .shards(4)
            .compact_threshold(32)
            .build()
            .expect("builds")
    };

    let mut group = c.benchmark_group("delete_compaction");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    // One steady-state churn cycle: insert a word (delta append, with
    // the occasional compaction at threshold 32), then tombstone it.
    // Physical slots are never renumbered, so the database grows while
    // the live count stays put — exactly the serving write path.
    group.bench_with_input(BenchmarkId::new("insert_delete", n), &n, |b, _| {
        let mut churn = fresh();
        let mut i = 0usize;
        b.iter(|| {
            let slot = churn.insert(db[i % db.len()].clone()).expect("insertable");
            i += 1;
            assert!(churn.delete(slot).expect("fresh slot is live"));
            slot
        })
    });
    group.finish();

    // Vacuum context: rebuild of the survivors after a 25% cull.
    let mut culled = fresh();
    for i in (0..n).step_by(4) {
        culled.delete(i).expect("in range");
    }
    let dead = culled.deleted();
    let t = Instant::now();
    let vacuumed = culled.vacuum().expect("vacuum rebuilds");
    println!(
        "vacuum: {} -> {} items ({dead} tombstones reclaimed) in {:.1} ms",
        n,
        vacuumed.len(),
        t.elapsed().as_secs_f64() * 1e3
    );
}

criterion_group!(
    benches,
    bench_query_planning,
    bench_zipfian_cache,
    bench_delete_compaction
);
criterion_main!(benches);
