//! Query latency of LAESA vs exhaustive scan as a function of pivot
//! count — the wall-clock side of Figures 3–4, here measured with
//! criterion instead of the experiment driver's coarse timer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use cned_core::contextual::heuristic::ContextualHeuristic;
use cned_core::levenshtein::Levenshtein;
use cned_core::metric::Distance;
use cned_datasets::dictionary::spanish_dictionary;
use cned_datasets::perturb::{gen_queries, ASCII_LOWER};
use cned_search::laesa::Laesa;
use cned_search::pivots::select_pivots_max_sum;
use cned_search::{LinearIndex, MetricIndex, QueryOptions};

fn bench_laesa(c: &mut Criterion) {
    const N: usize = 1000;
    let dict = spanish_dictionary(N, 1);
    let queries = gen_queries(&dict, 16, 2, ASCII_LOWER, 2);

    let mut group = c.benchmark_group("laesa_search");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));

    // Build once with the maximum pivot count per distance and sweep
    // prefixes (greedy selection is incremental).
    let run_sweep = |group: &mut criterion::BenchmarkGroup<
        '_,
        criterion::measurement::WallTime,
    >,
                     label: &str,
                     dist: &dyn Distance<u8>| {
        let pivots = select_pivots_max_sum(&dict, 128, 0, dist);
        let index = Laesa::try_build(dict.clone(), pivots, dist).expect("max-sum pivots are valid");
        for p in [8usize, 32, 128] {
            let opts = QueryOptions::new().pivot_budget(p);
            group.bench_with_input(BenchmarkId::new(format!("{label}/laesa"), p), &p, |b, _| {
                b.iter(|| {
                    for q in &queries {
                        black_box(MetricIndex::nn(&index, black_box(q), dist, &opts).unwrap());
                    }
                })
            });
        }
        let linear = LinearIndex::new(dict.clone());
        let opts = QueryOptions::new();
        group.bench_function(BenchmarkId::new(format!("{label}/linear"), N), |b| {
            b.iter(|| {
                for q in &queries {
                    black_box(linear.nn(black_box(q), dist, &opts).unwrap());
                }
            })
        });
    };

    run_sweep(&mut group, "d_E", &Levenshtein);
    run_sweep(&mut group, "d_C_h", &ContextualHeuristic);
    group.finish();
}

/// The prepared-pivot-rows win: a prepared query streaming a whole
/// pivot-set/database sweep reuses its per-query scratch (Myers `Peq`
/// bitmaps + blocked-kernel columns for `d_E`, heuristic DP rows for
/// `d_C,h`) across every comparison, vs the one-shot path that
/// rebuilds them per pair. This is exactly the shape of LAESA's
/// pivot-distance evaluation, measured in isolation.
fn bench_pivot_rows(c: &mut Criterion) {
    let mut group = c.benchmark_group("pivot_rows");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));

    // Long strings (>64 symbols) exercise the blocked d_E kernel whose
    // column vectors are the reused scratch.
    let long: Vec<Vec<u8>> = (0..256)
        .map(|i| {
            (0..128)
                .map(|j| b'a' + (((i * 31 + j * 7) ^ (j >> 2)) % 4) as u8)
                .collect()
        })
        .collect();
    let dict = spanish_dictionary(256, 3);

    let scan = |group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>,
                label: &str,
                dist: &dyn Distance<u8>,
                db: &[Vec<u8>]| {
        let query = db[0].clone();
        group.bench_function(
            BenchmarkId::new(format!("{label}/prepared"), db.len()),
            |b| {
                b.iter(|| {
                    let prepared = dist.prepare(black_box(&query));
                    let mut acc = 0.0;
                    for item in db {
                        acc += prepared.distance_to(black_box(item));
                    }
                    black_box(acc)
                })
            },
        );
        group.bench_function(
            BenchmarkId::new(format!("{label}/oneshot"), db.len()),
            |b| {
                b.iter(|| {
                    let mut acc = 0.0;
                    for item in db {
                        acc += dist.distance(black_box(&query), black_box(item));
                    }
                    black_box(acc)
                })
            },
        );
        // The lane-parallel batch entry point over the same sweep —
        // what pivot-row construction and linear scans actually call
        // since the kernels went multi-string (uses the runtime-
        // detected default backend).
        let refs: Vec<&[u8]> = db.iter().map(Vec::as_slice).collect();
        group.bench_function(
            BenchmarkId::new(format!("{label}/batched"), db.len()),
            |b| {
                let prepared = dist.prepare(&query);
                let mut out = vec![0.0f64; refs.len()];
                b.iter(|| {
                    prepared.distance_to_batch(black_box(&refs), &mut out);
                    black_box(out.iter().sum::<f64>())
                })
            },
        );
    };

    scan(&mut group, "d_E_long", &Levenshtein, &long);
    scan(&mut group, "d_C_h", &ContextualHeuristic, &dict);
    group.finish();
}

criterion_group!(benches, bench_laesa, bench_pivot_rows);
criterion_main!(benches);
