//! Lane-parallel kernel throughput: scalar vs portable SoA vs AVX2
//! backends for the `d_E` Myers sweep and the `d_C,h` two-row DP.
//!
//! Corpora mirror the paper's experiments: Freeman chain codes of
//! digit contours (alphabet 8, tens-to-hundreds of symbols — the
//! regime LAESA pivot rows and linear scans spend their time in) as
//! the headline scans, plus Spanish dictionary words (alphabet 26,
//! 2–11 symbols) as the short-string regime, where per-group overhead
//! bounds the achievable lane win.
//!
//! Two granularities:
//!
//! * **pairs8** — one lane group (8 candidates) per iteration, the
//!   marginal cost a pruning search pays per batched chunk;
//! * **scan** — a full database sweep through the batch entry points,
//!   the shape of `LinearIndex` scans, LAESA's frozen-bound final
//!   phase, and pivot-row construction.
//!
//! Backends are forced explicitly (`*_with`), so the numbers are
//! independent of `CNED_LANES` and of what `Backend::active()` picks
//! on the host. Backends unavailable on the host are skipped. The
//! portable numbers depend on what the compiler can autovectorise:
//! build with `RUSTFLAGS="-C target-cpu=native"` to see the portable
//! path at full width (the committed `BENCH_lane_kernels.json` is
//! recorded that way; the `avx2` rows need no flags — the intrinsics
//! are runtime-dispatched).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use cned_core::contextual::heuristic::PreparedHeuristic;
use cned_core::lanes::{Backend, LANES};
use cned_core::myers::MyersPattern;
use cned_datasets::dictionary::spanish_dictionary;
use cned_datasets::digits::generate_digits;

fn backends() -> Vec<Backend> {
    [Backend::Scalar, Backend::Portable, Backend::Avx2]
        .into_iter()
        .filter(|b| b.is_available())
        .collect()
}

fn bench_lane_kernels(c: &mut Criterion) {
    // Digit-contour chain codes (paper's contour experiment): 500
    // strings, lengths ~26–140. The query is a mid-length chain
    // (≤ 64 symbols, single-word pattern).
    let chains: Vec<Vec<u8>> = generate_digits(50, 1)
        .into_iter()
        .map(|s| s.chain)
        .collect();
    let chain_refs: Vec<&[u8]> = chains.iter().map(Vec::as_slice).collect();
    let query = chains
        .iter()
        .find(|c| (50..=64).contains(&c.len()))
        .expect("a mid-length chain exists")
        .clone();

    // Spanish dictionary words: the short-string regime.
    const NW: usize = 1000;
    let dict = spanish_dictionary(NW, 1);
    let word_refs: Vec<&[u8]> = dict.iter().map(Vec::as_slice).collect();

    // Long strings (>64 symbols in the *pattern*) exercise the blocked
    // d_E kernel (portable lanes only — AVX2 falls back to portable
    // there).
    let long: Vec<Vec<u8>> = (0..256)
        .map(|i| {
            (0..128)
                .map(|j| b'a' + (((i * 31 + j * 7) ^ (j >> 2)) % 4) as u8)
                .collect()
        })
        .collect();
    let long_refs: Vec<&[u8]> = long.iter().map(Vec::as_slice).collect();

    // Small chain set for the quadratic d_C,h sweep (pivot-row shape).
    let chains_small: Vec<&[u8]> = chain_refs[..128].to_vec();
    let dict_small = spanish_dictionary(256, 3);
    let small_word_refs: Vec<&[u8]> = dict_small.iter().map(Vec::as_slice).collect();

    let mut group = c.benchmark_group("lane_kernels");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));

    for backend in backends() {
        let label = backend.label();
        let pattern = MyersPattern::new(&query);

        // One lane group: 8 pairs per iteration under d_E.
        let chunk = &chain_refs[1..1 + LANES];
        group.bench_function(
            BenchmarkId::new(format!("d_E/pairs8/{label}"), LANES),
            |b| {
                let mut out = [0usize; LANES];
                b.iter(|| {
                    pattern.distance_batch_with(black_box(backend), black_box(chunk), &mut out);
                    black_box(out)
                })
            },
        );

        // Full chain-code sweep — the headline linear-scan shape.
        group.bench_function(
            BenchmarkId::new(format!("d_E/scan/{label}"), chains.len()),
            |b| {
                let mut out = vec![0usize; chains.len()];
                b.iter(|| {
                    pattern.distance_batch_with(
                        black_box(backend),
                        black_box(&chain_refs),
                        &mut out,
                    );
                    black_box(out.iter().sum::<usize>())
                })
            },
        );

        // Short-word sweep: fill/bookkeeping-bound, the lane floor.
        let word_pattern = MyersPattern::new(&dict[0]);
        group.bench_function(
            BenchmarkId::new(format!("d_E_words/scan/{label}"), NW),
            |b| {
                let mut out = vec![0usize; NW];
                b.iter(|| {
                    word_pattern.distance_batch_with(
                        black_box(backend),
                        black_box(&word_refs),
                        &mut out,
                    );
                    black_box(out.iter().sum::<usize>())
                })
            },
        );

        // Bounded sweep — the pruning-search shape (budget chosen to
        // keep most lanes live so the kernel, not the length-gap
        // precheck, is measured).
        group.bench_function(
            BenchmarkId::new(format!("d_E_bounded/scan/{label}"), chains.len()),
            |b| {
                let mut out = vec![None; chains.len()];
                b.iter(|| {
                    pattern.distance_batch_bounded_with(
                        black_box(backend),
                        black_box(&chain_refs),
                        64,
                        &mut out,
                    );
                    black_box(out.iter().flatten().sum::<usize>())
                })
            },
        );

        // Blocked d_E (128-symbol pattern, 2 words per column).
        let long_pattern = MyersPattern::new(&long[0]);
        group.bench_function(
            BenchmarkId::new(format!("d_E_long/scan/{label}"), long.len()),
            |b| {
                let mut out = vec![0usize; long.len()];
                b.iter(|| {
                    long_pattern.distance_batch_with(
                        black_box(backend),
                        black_box(&long_refs),
                        &mut out,
                    );
                    black_box(out.iter().sum::<usize>())
                })
            },
        );

        // d_C,h two-row DP over chain codes — the pivot-row
        // construction shape (quadratic per pair, so the kernel, not
        // the fill, dominates).
        let prepared = PreparedHeuristic::new(&query);
        group.bench_function(
            BenchmarkId::new(format!("d_C_h/scan/{label}"), chains_small.len()),
            |b| {
                let mut out = vec![0.0f64; chains_small.len()];
                b.iter(|| {
                    prepared.distance_to_batch_with(
                        black_box(backend),
                        black_box(&chains_small),
                        &mut out,
                    );
                    black_box(out.iter().sum::<f64>())
                })
            },
        );

        // d_C,h over short words.
        let word_prepared = PreparedHeuristic::new(&dict_small[0]);
        group.bench_function(
            BenchmarkId::new(format!("d_C_h_words/scan/{label}"), dict_small.len()),
            |b| {
                let mut out = vec![0.0f64; dict_small.len()];
                b.iter(|| {
                    word_prepared.distance_to_batch_with(
                        black_box(backend),
                        black_box(&small_word_refs),
                        &mut out,
                    );
                    black_box(out.iter().sum::<f64>())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_lane_kernels);
criterion_main!(benches);
