//! End-to-end throughput of the event-loop TCP server: real loopback
//! sockets, real frames, sweeping **connections × pipeline depth ×
//! batch size**.
//!
//! Per iteration, every connection submits `depth` frames of `batch`
//! NN queries each (one buffered flush), then collects every answer —
//! so one iteration answers `conns x depth x batch` queries
//! end-to-end through accept/read sweeps, the shared session
//! scheduler, and write sweeps. After each timed group an
//! instrumented round prints queries/s to stderr.
//!
//! **1-core serial floor caveat:** on the single-core CI container
//! the event-loop threads, the session scheduler, the client workers
//! and all client reader threads time-share one CPU, so these numbers
//! are a *lower bound* — the fixed-thread-pool design exists
//! precisely so added cores lift it. What the sweep shows even on one
//! core: throughput holds (or climbs, via batching) as connections
//! grow from 1 to 1000 with a constant thread count, where the PR 5
//! design would have needed 2000 threads.
//!
//! Set `CNED_BENCH_FAST=1` (CI smoke) to shrink the sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use cned_core::levenshtein::Levenshtein;
use cned_datasets::dictionary::spanish_dictionary;
use cned_datasets::perturb::{gen_queries, ASCII_LOWER};
use cned_serve::{
    BatchTicket, Client, Request, ResponseBody, Server, ServerConfig, SessionConfig, ShardConfig,
    ShardedIndex, Ticket,
};

/// `batch == 1` rounds submit genuine single-request frames so the
/// batch-size sweep compares wire batching against pipelined singles,
/// not against one-element batch frames.
enum RoundTicket {
    One(Ticket),
    Batch(BatchTicket),
}

impl RoundTicket {
    fn wait_answered(self) -> u64 {
        match self {
            RoundTicket::One(t) => match t.wait().body {
                ResponseBody::Failed { error } => panic!("single answered, not refused: {error}"),
                _ => 1,
            },
            RoundTicket::Batch(t) => t.wait().expect("batch answered, not refused").len() as u64,
        }
    }
}

fn fast() -> bool {
    std::env::var("CNED_BENCH_FAST").is_ok_and(|v| v != "0")
}

fn build(db: &[Vec<u8>]) -> ShardedIndex<u8> {
    ShardedIndex::try_build(
        db.to_vec(),
        ShardConfig {
            shards: 2,
            pivots_per_shard: 12,
            compact_threshold: 64,
            ..ShardConfig::default()
        },
        &Levenshtein,
    )
    .expect("internally selected pivots are always valid")
}

/// A running server plus a pool of client worker threads holding
/// `conns` persistent connections; [`Fleet::round`] drives one
/// submit-all/collect-all iteration across every connection.
struct Fleet {
    server: Option<Server<u8, ShardedIndex<u8>>>,
    go: Vec<mpsc::Sender<()>>,
    done: mpsc::Receiver<u64>,
    workers: Vec<std::thread::JoinHandle<()>>,
    queries_per_round: u64,
}

impl Fleet {
    fn new(db: &[Vec<u8>], queries: &[Vec<u8>], conns: usize, depth: usize, batch: usize) -> Fleet {
        let server = Server::bind_with(
            "127.0.0.1:0",
            build(db),
            Arc::new(Levenshtein),
            // Deep admission queue: the sweep intentionally floods
            // (1000 conns x depth x batch in flight at once), and a
            // refusal would be measured as a lost query.
            ServerConfig::new().session(SessionConfig::new().queue_depth(1 << 20)),
        )
        .expect("bind loopback");
        let addr = server.local_addr();

        // A few worker threads each own a slice of the connections —
        // 1000 connections do not need 1000 submitter threads.
        let worker_count = conns.min(8);
        let (done_tx, done) = mpsc::channel::<u64>();
        let mut go = Vec::with_capacity(worker_count);
        let mut workers = Vec::with_capacity(worker_count);
        for w in 0..worker_count {
            let mine = conns / worker_count + usize::from(w < conns % worker_count);
            let (go_tx, go_rx) = mpsc::channel::<()>();
            go.push(go_tx);
            let done_tx = done_tx.clone();
            let queries = queries.to_vec();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("bench-client-{w}"))
                    .spawn(move || {
                        let mut clients: Vec<Client<u8>> = (0..mine)
                            .map(|_| {
                                // Simultaneous connects can overflow
                                // the listener backlog; retry.
                                let mut delay = Duration::from_millis(1);
                                loop {
                                    match Client::connect(addr) {
                                        Ok(c) => break c,
                                        Err(_) => {
                                            std::thread::sleep(delay);
                                            delay = (delay * 2).min(Duration::from_millis(50));
                                        }
                                    }
                                }
                            })
                            .collect();
                        let frames: Vec<Vec<Request<u8>>> = (0..depth)
                            .map(|d| {
                                (0..batch)
                                    .map(|b| Request::Nn {
                                        query: queries[(w + d * batch + b) % queries.len()].clone(),
                                    })
                                    .collect()
                            })
                            .collect();
                        while go_rx.recv().is_ok() {
                            let mut answered = 0u64;
                            let mut tickets = Vec::with_capacity(mine * depth);
                            for client in clients.iter_mut() {
                                for frame in &frames {
                                    if batch == 1 {
                                        tickets.push(RoundTicket::One(
                                            client
                                                .submit(frame[0].clone())
                                                .expect("submit single frame"),
                                        ));
                                    } else {
                                        tickets.push(RoundTicket::Batch(
                                            client.submit_batch(frame).expect("submit batch frame"),
                                        ));
                                    }
                                }
                                client.flush().expect("flush the round's frames");
                            }
                            for ticket in tickets {
                                answered += ticket.wait_answered();
                            }
                            if done_tx.send(answered).is_err() {
                                break;
                            }
                        }
                    })
                    .expect("spawning a bench client worker"),
            );
        }
        Fleet {
            server: Some(server),
            go,
            done,
            workers,
            queries_per_round: (conns * depth * batch) as u64,
        }
    }

    /// One full iteration: every connection submits its frames, every
    /// answer is collected.
    fn round(&self) {
        for tx in &self.go {
            tx.send(()).expect("worker alive");
        }
        let mut answered = 0u64;
        for _ in 0..self.go.len() {
            answered += self.done.recv().expect("worker round completes");
        }
        assert_eq!(answered, self.queries_per_round, "no query lost or refused");
    }

    fn shutdown(mut self) {
        self.go.clear(); // workers' go channels disconnect -> exit
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(server) = self.server.take() {
            server.shutdown();
        }
    }
}

fn sweep(
    c: &mut Criterion,
    group_name: &str,
    db: &[Vec<u8>],
    queries: &[Vec<u8>],
    combos: &[(usize, usize, usize)],
) {
    let mut results: Vec<(String, f64)> = Vec::new();
    {
        let mut group = c.benchmark_group(group_name);
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_secs(2));
        for &(conns, depth, batch) in combos {
            let fleet = Fleet::new(db, queries, conns, depth, batch);
            let id = format!("c{conns}_d{depth}_b{batch}");
            group.bench_with_input(BenchmarkId::new("round", &id), &(), |b, ()| {
                b.iter(|| fleet.round())
            });
            // Instrumented replay for the human-readable q/s figure.
            let t = Instant::now();
            fleet.round();
            let qps = fleet.queries_per_round as f64 / t.elapsed().as_secs_f64();
            results.push((id, qps));
            fleet.shutdown();
        }
        group.finish();
    }
    for (id, qps) in results {
        eprintln!(
            "[server_throughput] {group_name}/{id}: {qps:.0} queries/s (1-core serial floor)"
        );
    }
}

fn bench_server_throughput(c: &mut Criterion) {
    let (db_size, n_queries) = if fast() { (200, 16) } else { (600, 32) };
    let db = spanish_dictionary(db_size, 11);
    let queries = gen_queries(&db, n_queries, 2, ASCII_LOWER, 17);

    if fast() {
        // CI smoke: prove the machinery end-to-end, skip the flood.
        sweep(c, "connections", &db, &queries, &[(1, 2, 4), (16, 2, 4)]);
        sweep(c, "batch_size", &db, &queries, &[(16, 2, 1), (16, 2, 8)]);
        return;
    }

    // Connection sweep at fixed per-connection work: the headline axis
    // (thread count stays fixed while connections grow 1000x).
    sweep(
        c,
        "connections",
        &db,
        &queries,
        &[(1, 2, 8), (64, 2, 8), (256, 2, 8), (1000, 2, 8)],
    );
    // Batch-size sweep: wire-level batching vs N pipelined singles.
    sweep(
        c,
        "batch_size",
        &db,
        &queries,
        &[(64, 4, 1), (64, 4, 4), (64, 4, 16)],
    );
    // Pipeline-depth sweep: frames in flight per connection.
    sweep(
        c,
        "pipeline_depth",
        &db,
        &queries,
        &[(64, 1, 4), (64, 4, 4), (64, 16, 4)],
    );
}

criterion_group!(benches, bench_server_throughput);
criterion_main!(benches);
