//! Design-choice ablations called out in DESIGN.md §5:
//!
//! * `contextual_space` — exact `d_C` via the full 3-D table
//!   (inspectable, `O(n·m·(n+m))` memory) vs the rolling two-row
//!   variant (the paper's "quadratic space" remark);
//! * `levenshtein_variants` — two-row vs full-matrix vs bounded
//!   (banded) `d_E`;
//! * `pivot_selection` — LAESA query cost with greedy max-sum pivots
//!   vs uniform-random pivots.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use cned_core::contextual::exact::{contextual_distance, ContextualTable};
use cned_core::levenshtein::Levenshtein;
use cned_core::levenshtein::{levenshtein, levenshtein_bounded, levenshtein_matrix};
use cned_datasets::dictionary::spanish_dictionary;
use cned_datasets::perturb::{gen_queries, ASCII_LOWER};
use cned_search::laesa::Laesa;
use cned_search::pivots::{select_pivots_max_sum, select_pivots_random};
use cned_search::{MetricIndex, QueryOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_pair(len: usize, seed: u64) -> (Vec<u8>, Vec<u8>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let gen = |rng: &mut StdRng| (0..len).map(|_| rng.random_range(0..4u8)).collect();
    (gen(&mut rng), gen(&mut rng))
}

fn bench_contextual_space(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_contextual_space");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for len in [24usize, 48, 96] {
        let (x, y) = random_pair(len, 7);
        group.bench_with_input(BenchmarkId::new("two_row", len), &len, |b, _| {
            b.iter(|| contextual_distance(black_box(&x), black_box(&y)))
        });
        group.bench_with_input(BenchmarkId::new("full_table", len), &len, |b, _| {
            b.iter(|| ContextualTable::new(black_box(&x), black_box(&y)).distance())
        });
    }
    group.finish();
}

fn bench_levenshtein_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_levenshtein");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for len in [32usize, 128] {
        let (x, y) = random_pair(len, 9);
        let d = levenshtein(&x, &y);
        group.bench_with_input(BenchmarkId::new("two_row", len), &len, |b, _| {
            b.iter(|| levenshtein(black_box(&x), black_box(&y)))
        });
        group.bench_with_input(BenchmarkId::new("full_matrix", len), &len, |b, _| {
            b.iter(|| levenshtein_matrix(black_box(&x), black_box(&y)))
        });
        // The regime banding is for: a bound slightly above the true
        // distance (NN search with a good current best).
        group.bench_with_input(BenchmarkId::new("bounded_tight", len), &len, |b, _| {
            b.iter(|| levenshtein_bounded(black_box(&x), black_box(&y), d))
        });
        group.bench_with_input(BenchmarkId::new("bounded_reject", len), &len, |b, _| {
            b.iter(|| levenshtein_bounded(black_box(&x), black_box(&y), d / 4))
        });
    }
    group.finish();
}

fn bench_pivot_selection(c: &mut Criterion) {
    const N: usize = 800;
    const P: usize = 48;
    let dict = spanish_dictionary(N, 3);
    let queries = gen_queries(&dict, 16, 2, ASCII_LOWER, 4);

    let greedy = Laesa::try_build(
        dict.clone(),
        select_pivots_max_sum(&dict, P, 0, &Levenshtein),
        &Levenshtein,
    )
    .expect("max-sum pivots are valid");
    let random = Laesa::try_build(dict.clone(), select_pivots_random(N, P, 42), &Levenshtein)
        .expect("random pivots are valid");
    let opts = QueryOptions::new();

    let mut group = c.benchmark_group("ablation_pivots");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    group.bench_function("greedy_max_sum", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(MetricIndex::nn(&greedy, black_box(q), &Levenshtein, &opts).unwrap());
            }
        })
    });
    group.bench_function("uniform_random", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(MetricIndex::nn(&random, black_box(q), &Levenshtein, &opts).unwrap());
            }
        })
    });
    group.finish();

    // Also report the computation counts once (criterion measures
    // time; the counts are the paper's currency).
    let count = |idx: &Laesa<u8>| -> f64 {
        let total: u64 = queries
            .iter()
            .map(|q| {
                MetricIndex::nn(idx, q, &Levenshtein, &opts)
                    .unwrap()
                    .1
                    .distance_computations
            })
            .sum();
        total as f64 / queries.len() as f64
    };
    eprintln!(
        "[ablation_pivots] avg distance computations: greedy {:.1}, random {:.1} (n = {N}, p = {P})",
        count(&greedy),
        count(&random)
    );
}

fn bench_index_structures(c: &mut Criterion) {
    use cned_search::aesa::Aesa;
    use cned_search::vptree::VpTree;
    use cned_search::LinearIndex;

    const N: usize = 600;
    let dict = spanish_dictionary(N, 5);
    let queries = gen_queries(&dict, 16, 2, ASCII_LOWER, 6);

    let laesa = Laesa::try_build(
        dict.clone(),
        select_pivots_max_sum(&dict, 48, 0, &Levenshtein),
        &Levenshtein,
    )
    .expect("max-sum pivots are valid");
    let vptree = VpTree::build(dict.clone(), &Levenshtein);
    let aesa = Aesa::build(dict.clone(), &Levenshtein);
    let linear = LinearIndex::new(dict.clone());
    let opts = QueryOptions::new();

    let mut group = c.benchmark_group("ablation_indexes");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    group.bench_function("laesa_48p", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(MetricIndex::nn(&laesa, black_box(q), &Levenshtein, &opts).unwrap());
            }
        })
    });
    group.bench_function("vptree", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(MetricIndex::nn(&vptree, black_box(q), &Levenshtein, &opts).unwrap());
            }
        })
    });
    group.bench_function("aesa", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(MetricIndex::nn(&aesa, black_box(q), &Levenshtein, &opts).unwrap());
            }
        })
    });
    group.bench_function("linear", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(MetricIndex::nn(&linear, black_box(q), &Levenshtein, &opts).unwrap());
            }
        })
    });
    group.finish();

    let avg = |f: &dyn Fn(&Vec<u8>) -> u64| -> f64 {
        queries.iter().map(f).sum::<u64>() as f64 / queries.len() as f64
    };
    eprintln!(
        "[ablation_indexes] avg distance computations: laesa {:.1}, vptree {:.1}, aesa {:.1}, linear {} \
         (preprocessing: laesa {}, vptree {}, aesa {})",
        avg(&|q| MetricIndex::nn(&laesa, q, &Levenshtein, &opts).unwrap().1.distance_computations),
        avg(&|q| MetricIndex::nn(&vptree, q, &Levenshtein, &opts).unwrap().1.distance_computations),
        avg(&|q| MetricIndex::nn(&aesa, q, &Levenshtein, &opts).unwrap().1.distance_computations),
        N,
        laesa.preprocessing_computations(),
        vptree.preprocessing_computations(),
        aesa.preprocessing_computations(),
    );
}

criterion_group!(
    benches,
    bench_contextual_space,
    bench_levenshtein_variants,
    bench_pivot_selection,
    bench_index_structures
);
criterion_main!(benches);
