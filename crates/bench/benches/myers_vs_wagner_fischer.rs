//! The bit-parallel engine vs the scalar two-row loop — the headline
//! numbers behind the engine-selection strategy in
//! `cned_core::levenshtein` and the Performance section of ROADMAP.md.
//!
//! Three groups:
//! * `myers_vs_wagner_fischer` — per-pair throughput of each engine
//!   across string lengths spanning the 64-symbol word boundary;
//! * `batch_pipeline` — a whole-database scan with and without the
//!   per-query `Peq` cache ([`MyersPattern`]) and with the bounded
//!   early-exit path, i.e. what LAESA/linear search actually run;
//! * `index_build` — LAESA/AESA preprocessing (parallelised across
//!   cores; on a single-core runner this measures the serial floor).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Duration;

use cned_core::levenshtein::{levenshtein, levenshtein_bounded, wagner_fischer, Levenshtein};
use cned_core::myers::{myers, myers_bounded, MyersPattern};
use cned_datasets::dictionary::spanish_dictionary;
use cned_datasets::perturb::{gen_queries, ASCII_LOWER};
use cned_search::laesa::Laesa;
use cned_search::pivots::select_pivots_max_sum;
use cned_search::Aesa;
use cned_search::{LinearIndex, MetricIndex, QueryOptions};

fn random_pair(len: usize, seed: u64) -> (Vec<u8>, Vec<u8>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let gen = |rng: &mut StdRng| (0..len).map(|_| rng.random_range(0..4u8)).collect();
    (gen(&mut rng), gen(&mut rng))
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("myers_vs_wagner_fischer");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));

    for len in [16usize, 64, 128, 256, 512] {
        let (x, y) = random_pair(len, len as u64);
        group.bench_with_input(BenchmarkId::new("wagner_fischer", len), &len, |b, _| {
            b.iter(|| wagner_fischer(black_box(&x), black_box(&y)))
        });
        group.bench_with_input(BenchmarkId::new("myers", len), &len, |b, _| {
            b.iter(|| myers(black_box(&x), black_box(&y)))
        });
        group.bench_with_input(
            BenchmarkId::new("levenshtein_dispatch", len),
            &len,
            |b, _| b.iter(|| levenshtein(black_box(&x), black_box(&y))),
        );
        let d = wagner_fischer(&x, &y);
        group.bench_with_input(
            BenchmarkId::new("myers_bounded_tight", len),
            &len,
            |b, _| b.iter(|| myers_bounded(black_box(&x), black_box(&y), d / 4)),
        );
        group.bench_with_input(BenchmarkId::new("banded_tight", len), &len, |b, _| {
            b.iter(|| levenshtein_bounded(black_box(&x), black_box(&y), d / 4))
        });
    }
    group.finish();
}

fn bench_batch_pipeline(c: &mut Criterion) {
    const N: usize = 1000;
    let dict = spanish_dictionary(N, 1);
    let queries = gen_queries(&dict, 16, 2, ASCII_LOWER, 2);

    let mut group = c.benchmark_group("batch_pipeline");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));

    // Scan the database per query: one-shot myers per pair (Peq
    // rebuilt n times) vs one prepared pattern per query.
    group.bench_function("scan/one_shot_per_pair", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for q in &queries {
                for w in &dict {
                    acc += myers(black_box(q), black_box(w));
                }
            }
            acc
        })
    });
    group.bench_function("scan/prepared_pattern", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for q in &queries {
                let prepared = MyersPattern::new(q);
                for w in &dict {
                    acc += prepared.distance(black_box(w));
                }
            }
            acc
        })
    });
    // The full production path: prepared + bounded early exit against
    // the running best (what linear_nn does internally now).
    let linear = LinearIndex::new(dict.clone());
    let opts = QueryOptions::new();
    group.bench_function("scan/prepared_bounded_nn", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(MetricIndex::nn(&linear, black_box(q), &Levenshtein, &opts).unwrap());
            }
        })
    });
    group.finish();
}

fn bench_index_build(c: &mut Criterion) {
    const N: usize = 400;
    let dict = spanish_dictionary(N, 3);

    let mut group = c.benchmark_group("index_build");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));

    let pivots = select_pivots_max_sum(&dict, 32, 0, &Levenshtein);
    group.bench_function("laesa_32p_400", |b| {
        b.iter(|| {
            Laesa::try_build(
                black_box(dict.clone()),
                black_box(pivots.clone()),
                &Levenshtein,
            )
        })
    });
    group.bench_function("aesa_400", |b| {
        b.iter(|| Aesa::build(black_box(dict.clone()), &Levenshtein))
    });
    group.finish();

    eprintln!(
        "[index_build] worker threads: {} (CNED_THREADS overrides)",
        cned_search::num_threads()
    );
}

criterion_group!(
    benches,
    bench_engines,
    bench_batch_pipeline,
    bench_index_build
);
criterion_main!(benches);
