//! Per-pair distance cost on each of the paper's three benchmarks —
//! the time axis of Figures 3–4 decomposed into its per-distance
//! constant factors.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use cned_core::metric::DistanceKind;
use cned_datasets::dictionary::spanish_dictionary;
use cned_datasets::digits::generate_digits;
use cned_datasets::dna::dna_sequences;

fn bench_datasets(c: &mut Criterion) {
    let dict = spanish_dictionary(64, 1);
    let digits: Vec<Vec<u8>> = generate_digits(4, 1).into_iter().map(|s| s.chain).collect();
    let genes = dna_sequences(8, 1);

    let datasets: [(&str, &[Vec<u8>]); 3] = [
        ("dictionary", &dict),
        ("digit_chains", &digits),
        ("genes", &genes),
    ];

    // The five-figure panel + exact d_C (Table 2 also uses it).
    let kinds = [
        DistanceKind::Levenshtein,
        DistanceKind::ContextualHeuristic,
        DistanceKind::Contextual,
        DistanceKind::YujianBo,
        DistanceKind::MaxNorm,
        DistanceKind::MarzalVidal,
    ];

    let mut group = c.benchmark_group("distance_datasets");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));

    for (ds_name, data) in datasets {
        for kind in kinds {
            // Exact/MV on genes is ~2.5 ms/pair; keep one pair there.
            let pairs: Vec<(&[u8], &[u8])> = match (ds_name, kind) {
                ("genes", DistanceKind::Contextual | DistanceKind::MarzalVidal) => {
                    vec![(&data[0], &data[1])]
                }
                _ => (0..data.len().min(8))
                    .map(|i| {
                        (
                            data[i].as_slice(),
                            data[(i + data.len() / 2) % data.len()].as_slice(),
                        )
                    })
                    .collect(),
            };
            let dist = kind.build::<u8>();
            group.bench_with_input(
                BenchmarkId::new(kind.label().replace(',', "_"), ds_name),
                &pairs,
                |b, pairs| {
                    b.iter(|| {
                        let mut acc = 0.0;
                        for (x, y) in pairs {
                            acc += dist.distance(black_box(x), black_box(y));
                        }
                        acc
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_datasets);
criterion_main!(benches);
