//! Throughput of the sharded serving layer (`cned-serve`): shard
//! builds, batch NN serving across shard/worker counts, trait-object
//! dispatch overhead, and the mixed query/insert pipeline.
//!
//! Four groups:
//! * `sharded_build` — `ShardedIndex::try_build` vs shard count
//!   (shard builds run in parallel, so on a multi-core box build
//!   wall-clock should drop with more shards);
//! * `sharded_nn_batch` — a fixed query batch answered via
//!   `MetricIndex::nn_batch` for shard count × worker count
//!   combinations. On the 1-core CI container every worker count is
//!   the serial floor; the interesting single-core signal is the
//!   *shard-count* axis, where cross-shard bound propagation keeps
//!   total distance computations near the single-index level;
//! * `dispatch` — the same batch-NN workload answered through the
//!   concrete `ShardedIndex` (static dispatch, monomorphised) vs
//!   through `&dyn MetricIndex<u8>` (vtable dispatch). The unified
//!   API routes everything through the trait, so this group guards
//!   the claim that the indirection is in the noise (<2%): one
//!   virtual call per query against thousands of distance
//!   computations;
//! * `pipeline_mixed` — `QueryPipeline::run` over a mixed
//!   NN/k-NN/range queue on a pre-built index (inserts are exercised
//!   by the test suite; timing them would mutate the index across
//!   iterations).
//!
//! After the timed groups the bench replays one batch per shard count
//! and reports total distance computations, making the "bound
//! propagation keeps sharding nearly free" claim auditable in the
//! JSON-adjacent output.
//!
//! Set `CNED_BENCH_FAST=1` (CI smoke) to shrink the workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use cned_core::levenshtein::Levenshtein;
use cned_datasets::dictionary::spanish_dictionary;
use cned_datasets::perturb::{gen_queries, ASCII_LOWER};
use cned_search::parallel::set_thread_override;
use cned_search::{MetricIndex, QueryOptions};
use cned_serve::{QueryPipeline, Request, ShardConfig, ShardedIndex};

fn fast() -> bool {
    std::env::var("CNED_BENCH_FAST").is_ok_and(|v| v != "0")
}

fn sizes() -> (usize, usize) {
    if fast() {
        (300, 8)
    } else {
        (1500, 48)
    }
}

fn config(shards: usize) -> ShardConfig {
    ShardConfig {
        shards,
        pivots_per_shard: 12,
        compact_threshold: 64,
        ..ShardConfig::default()
    }
}

fn data() -> (Vec<Vec<u8>>, Vec<Vec<u8>>) {
    let (db_size, n_queries) = sizes();
    let db = spanish_dictionary(db_size, 11);
    let queries = gen_queries(&db, n_queries, 2, ASCII_LOWER, 17);
    (db, queries)
}

fn build(db: &[Vec<u8>], shards: usize) -> ShardedIndex<u8> {
    ShardedIndex::try_build(db.to_vec(), config(shards), &Levenshtein)
        .expect("internally selected pivots are always valid")
}

fn bench_build(c: &mut Criterion) {
    let (db, _) = data();
    let mut group = c.benchmark_group("sharded_build");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for shards in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("shards", shards), &shards, |b, &s| {
            b.iter(|| build(black_box(&db), s))
        });
    }
    group.finish();
}

fn bench_nn_batch(c: &mut Criterion) {
    let (db, queries) = data();
    let opts = QueryOptions::new();
    let mut group = c.benchmark_group("sharded_nn_batch");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    for shards in [1usize, 2, 4] {
        let index = build(&db, shards);
        for threads in [1usize, 2, 4] {
            let id = format!("s{shards}_t{threads}");
            group.bench_with_input(BenchmarkId::new("nn", &id), &threads, |b, &t| {
                set_thread_override(Some(t));
                b.iter(|| {
                    black_box(MetricIndex::nn_batch(
                        &index,
                        black_box(&queries),
                        &Levenshtein,
                        &opts,
                    ))
                });
                set_thread_override(None);
            });
        }
    }
    group.finish();

    // Instrumented replay: distance computations per shard count (the
    // bound-propagation cost signal, independent of core count).
    for shards in [1usize, 2, 4] {
        let index = build(&db, shards);
        let total: u64 = MetricIndex::nn_batch(&index, &queries, &Levenshtein, &opts)
            .unwrap()
            .iter()
            .map(|(_, st)| st.distance_computations)
            .sum();
        eprintln!(
            "[sharded_serving] shards={shards}: {total} distance computations \
             for {} queries over {} items",
            queries.len(),
            db.len()
        );
    }
}

fn bench_dispatch(c: &mut Criterion) {
    // Static (concrete ShardedIndex) vs dynamic (&dyn MetricIndex)
    // dispatch on the identical batch-NN workload. The whole unified
    // API rides on the trait object being free at this granularity.
    let (db, queries) = data();
    let index = build(&db, 4);
    let dyn_index: &dyn MetricIndex<u8> = &index;
    let opts = QueryOptions::new();
    let mut group = c.benchmark_group("dispatch");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    group.bench_function("static_nn_batch", |b| {
        b.iter(|| {
            black_box(MetricIndex::nn_batch(
                &index,
                black_box(&queries),
                &Levenshtein,
                &opts,
            ))
        })
    });
    group.bench_function("dyn_nn_batch", |b| {
        b.iter(|| black_box(dyn_index.nn_batch(black_box(&queries), &Levenshtein, &opts)))
    });
    group.finish();

    // Sanity: both paths return bit-identical answers.
    let a = MetricIndex::nn_batch(&index, &queries, &Levenshtein, &opts).unwrap();
    let b = dyn_index.nn_batch(&queries, &Levenshtein, &opts).unwrap();
    assert_eq!(a.len(), b.len());
    for ((x, xs), (y, ys)) in a.iter().zip(&b) {
        let (x, y) = (x.unwrap(), y.unwrap());
        assert_eq!(
            (x.index, x.distance.to_bits()),
            (y.index, y.distance.to_bits())
        );
        assert_eq!(xs, ys);
    }
}

fn bench_pipeline(c: &mut Criterion) {
    let (db, queries) = data();
    let requests: Vec<Request<u8>> = queries
        .iter()
        .enumerate()
        .map(|(i, q)| match i % 3 {
            0 => Request::Knn {
                query: q.clone(),
                k: 5,
            },
            1 => Request::Range {
                query: q.clone(),
                radius: 2.0,
            },
            _ => Request::Nn { query: q.clone() },
        })
        .collect();
    let mut pipeline = QueryPipeline::new(build(&db, 4));
    let mut group = c.benchmark_group("pipeline_mixed");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    for threads in [1usize, 4] {
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &t| {
            set_thread_override(Some(t));
            b.iter(|| black_box(pipeline.run(&requests, &Levenshtein)));
            set_thread_override(None);
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_build,
    bench_nn_batch,
    bench_dispatch,
    bench_pipeline
);
criterion_main!(benches);
