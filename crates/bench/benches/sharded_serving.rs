//! Throughput of the sharded serving layer (`cned-serve`): shard
//! builds, batch NN serving across shard/worker counts, and the mixed
//! query/insert pipeline.
//!
//! Three groups:
//! * `sharded_build` — `ShardedIndex::build` vs shard count (shard
//!   builds run in parallel, so on a multi-core box build wall-clock
//!   should drop with more shards);
//! * `sharded_nn_batch` — a fixed query batch answered via
//!   `nn_batch` for shard count × worker count combinations. On the
//!   1-core CI container every worker count is the serial floor; the
//!   interesting single-core signal is the *shard-count* axis, where
//!   cross-shard bound propagation keeps total distance computations
//!   near the single-index level;
//! * `pipeline_mixed` — `QueryPipeline::run` over a mixed NN/k-NN
//!   queue on a pre-built index (inserts are exercised by the test
//!   suite; timing them would mutate the index across iterations).
//!
//! After the timed groups the bench replays one batch per shard count
//! and reports total distance computations, making the "bound
//! propagation keeps sharding nearly free" claim auditable in the
//! JSON-adjacent output.
//!
//! Set `CNED_BENCH_FAST=1` (CI smoke) to shrink the workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use cned_core::levenshtein::Levenshtein;
use cned_datasets::dictionary::spanish_dictionary;
use cned_datasets::perturb::{gen_queries, ASCII_LOWER};
use cned_search::parallel::set_thread_override;
use cned_serve::{QueryPipeline, Request, ShardConfig, ShardedIndex};

fn fast() -> bool {
    std::env::var("CNED_BENCH_FAST").is_ok_and(|v| v != "0")
}

fn sizes() -> (usize, usize) {
    if fast() {
        (300, 8)
    } else {
        (1500, 48)
    }
}

fn config(shards: usize) -> ShardConfig {
    ShardConfig {
        shards,
        pivots_per_shard: 12,
        compact_threshold: 64,
    }
}

fn data() -> (Vec<Vec<u8>>, Vec<Vec<u8>>) {
    let (db_size, n_queries) = sizes();
    let db = spanish_dictionary(db_size, 11);
    let queries = gen_queries(&db, n_queries, 2, ASCII_LOWER, 17);
    (db, queries)
}

fn bench_build(c: &mut Criterion) {
    let (db, _) = data();
    let mut group = c.benchmark_group("sharded_build");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for shards in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("shards", shards), &shards, |b, &s| {
            b.iter(|| ShardedIndex::build(black_box(db.clone()), config(s), &Levenshtein))
        });
    }
    group.finish();
}

fn bench_nn_batch(c: &mut Criterion) {
    let (db, queries) = data();
    let mut group = c.benchmark_group("sharded_nn_batch");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    for shards in [1usize, 2, 4] {
        let index = ShardedIndex::build(db.clone(), config(shards), &Levenshtein);
        for threads in [1usize, 2, 4] {
            let id = format!("s{shards}_t{threads}");
            group.bench_with_input(BenchmarkId::new("nn", &id), &threads, |b, &t| {
                set_thread_override(Some(t));
                b.iter(|| black_box(index.nn_batch(black_box(&queries), &Levenshtein)));
                set_thread_override(None);
            });
        }
    }
    group.finish();

    // Instrumented replay: distance computations per shard count (the
    // bound-propagation cost signal, independent of core count).
    for shards in [1usize, 2, 4] {
        let index = ShardedIndex::build(db.clone(), config(shards), &Levenshtein);
        let total: u64 = index
            .nn_batch(&queries, &Levenshtein)
            .unwrap()
            .iter()
            .map(|(_, st)| st.total().distance_computations)
            .sum();
        eprintln!(
            "[sharded_serving] shards={shards}: {total} distance computations \
             for {} queries over {} items",
            queries.len(),
            db.len()
        );
    }
}

fn bench_pipeline(c: &mut Criterion) {
    let (db, queries) = data();
    let requests: Vec<Request<u8>> = queries
        .iter()
        .enumerate()
        .map(|(i, q)| {
            if i % 3 == 0 {
                Request::Knn {
                    query: q.clone(),
                    k: 5,
                }
            } else {
                Request::Nn { query: q.clone() }
            }
        })
        .collect();
    let mut pipeline = QueryPipeline::new(ShardedIndex::build(db.clone(), config(4), &Levenshtein));
    let mut group = c.benchmark_group("pipeline_mixed");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    for threads in [1usize, 4] {
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &t| {
            set_thread_override(Some(t));
            b.iter(|| black_box(pipeline.run(&requests, &Levenshtein)));
            set_thread_override(None);
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build, bench_nn_batch, bench_pipeline);
criterion_main!(benches);
