//! Experiment E10: asymptotic cost of each distance vs string length.
//!
//! Regenerates the paper's complexity claims: `d_E`, `d_C,h`, `d_YB`
//! and `d_max` are quadratic; `d_C` (exact Algorithm 1) and `d_MV` are
//! cubic; and "the computation time of the contextual distance is
//! around twice the computation time of the Levenshtein distance"
//! (§4.3) — compare the `d_C,h` and `d_E` series at equal length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Duration;

use cned_core::contextual::exact::contextual_distance;
use cned_core::contextual::heuristic::contextual_heuristic;
use cned_core::levenshtein::levenshtein;
use cned_core::normalized::marzal_vidal::marzal_vidal;
use cned_core::normalized::simple::d_max;
use cned_core::normalized::yujian_bo::yujian_bo;

fn random_pair(len: usize, seed: u64) -> (Vec<u8>, Vec<u8>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let gen = |rng: &mut StdRng| (0..len).map(|_| rng.random_range(0..4u8)).collect();
    (gen(&mut rng), gen(&mut rng))
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance_scaling");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));

    for len in [16usize, 32, 64, 128] {
        let (x, y) = random_pair(len, len as u64);
        group.bench_with_input(BenchmarkId::new("d_E", len), &len, |b, _| {
            b.iter(|| levenshtein(black_box(&x), black_box(&y)))
        });
        group.bench_with_input(BenchmarkId::new("d_C,h", len), &len, |b, _| {
            b.iter(|| contextual_heuristic(black_box(&x), black_box(&y)))
        });
        group.bench_with_input(BenchmarkId::new("d_YB", len), &len, |b, _| {
            b.iter(|| yujian_bo(black_box(&x), black_box(&y)))
        });
        group.bench_with_input(BenchmarkId::new("d_max", len), &len, |b, _| {
            b.iter(|| d_max(black_box(&x), black_box(&y)))
        });
        group.bench_with_input(BenchmarkId::new("d_C_exact", len), &len, |b, _| {
            b.iter(|| contextual_distance(black_box(&x), black_box(&y)))
        });
        group.bench_with_input(BenchmarkId::new("d_MV", len), &len, |b, _| {
            b.iter(|| marzal_vidal(black_box(&x), black_box(&y)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
