//! Persistence economics (`cned-store`): what does durability cost,
//! and what does a warm load buy?
//!
//! Three groups:
//! * `snapshot_codec` — `encode_snapshot` / `decode_snapshot` over a
//!   built LAESA index (corpus + pivot tables). After the timed runs
//!   the snapshot size and implied MB/s are printed, so the numbers in
//!   `BENCH_persistence.json` can be read as bandwidth;
//! * `cold_vs_warm` — `Laesa::try_build` (pivot selection + distance
//!   table construction) against decoding the equivalent snapshot.
//!   The decode does zero distance computations, so the gap is the
//!   whole point of shipping snapshots instead of rebuilding;
//! * `wal_replay` — appending a run of inserts through the fsyncing
//!   `Wal` (the per-insert durability price), and replaying the
//!   resulting log bytes back into entries (the restart price).
//!
//! Set `CNED_BENCH_FAST=1` (CI smoke) to shrink the workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::{Duration, Instant};

use cned_core::levenshtein::Levenshtein;
use cned_datasets::dictionary::spanish_dictionary;
use cned_search::laesa::Laesa;
use cned_search::pivots::select_pivots_max_sum;
use cned_search::MetricIndex;
use cned_store::wal::{replay, Wal};
use cned_store::{decode_snapshot, encode_snapshot, IndexView};

fn fast() -> bool {
    std::env::var("CNED_BENCH_FAST").is_ok_and(|v| v != "0")
}

fn sizes() -> (usize, usize) {
    // (database items, wal entries)
    if fast() {
        (300, 256)
    } else {
        (2000, 4096)
    }
}

fn build_index(db: &[Vec<u8>]) -> Laesa<u8> {
    let pivots = select_pivots_max_sum(db, 16.min(db.len()), 0, &Levenshtein);
    Laesa::try_build(db.to_vec(), pivots, &Levenshtein).expect("valid pivots")
}

fn snapshot_of(index: &Laesa<u8>) -> Vec<u8> {
    let view = IndexView::of(index).expect("laesa is persistable");
    encode_snapshot((1, 0), &view)
}

fn bench_snapshot_codec(c: &mut Criterion) {
    let (n, _) = sizes();
    let db = spanish_dictionary(n, 11);
    let index = build_index(&db);
    let bytes = snapshot_of(&index);
    let mut group = c.benchmark_group("snapshot_codec");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    group.bench_with_input(BenchmarkId::new("encode", n), &n, |b, _| {
        b.iter(|| snapshot_of(black_box(&index)))
    });
    group.bench_with_input(BenchmarkId::new("decode", n), &n, |b, _| {
        b.iter(|| decode_snapshot::<u8>(black_box(&bytes)).expect("own encoding decodes"))
    });
    group.finish();

    // Bandwidth context for the JSON numbers above.
    let mb = bytes.len() as f64 / (1024.0 * 1024.0);
    let reps = 20u32;
    let t = Instant::now();
    for _ in 0..reps {
        black_box(snapshot_of(&index));
    }
    let enc = t.elapsed().as_secs_f64() / f64::from(reps);
    let t = Instant::now();
    for _ in 0..reps {
        black_box(decode_snapshot::<u8>(&bytes).expect("decodes"));
    }
    let dec = t.elapsed().as_secs_f64() / f64::from(reps);
    println!(
        "snapshot: {} items, {:.2} MiB — encode {:.0} MiB/s, decode {:.0} MiB/s",
        index.len(),
        mb,
        mb / enc,
        mb / dec
    );
}

fn bench_cold_vs_warm(c: &mut Criterion) {
    let (n, _) = sizes();
    let db = spanish_dictionary(n, 11);
    let bytes = snapshot_of(&build_index(&db));
    let mut group = c.benchmark_group("cold_vs_warm");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    group.bench_with_input(BenchmarkId::new("cold_build", n), &n, |b, _| {
        b.iter(|| build_index(black_box(&db)))
    });
    group.bench_with_input(BenchmarkId::new("warm_load", n), &n, |b, _| {
        b.iter(|| decode_snapshot::<u8>(black_box(&bytes)).expect("decodes"))
    });
    group.finish();
}

fn bench_wal(c: &mut Criterion) {
    let (_, entries) = sizes();
    let db = spanish_dictionary(entries, 23);
    let dir = std::env::temp_dir().join(format!("cned-bench-wal-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("wal.cned");

    // The durability price: every append ends in fsync, so this group
    // measures the disk, not the codec — exactly what an accepted
    // insert pays before its ticket resolves.
    let mut group = c.benchmark_group("wal_append_fsync");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(800));
    group.bench_function("append", |b| {
        let mut wal = Wal::open::<u8>(&path).expect("wal opens");
        let mut seq = 0u64;
        b.iter(|| {
            let item = &db[(seq as usize) % db.len()];
            wal.append::<u8>(seq, black_box(item)).expect("append");
            seq += 1;
        });
    });
    group.finish();

    // The restart price: replaying a full log back into entries.
    {
        let mut wal = Wal::open::<u8>(&path).expect("wal opens");
        wal.truncate::<u8>().expect("truncate");
        for (seq, item) in db.iter().enumerate() {
            wal.append::<u8>(seq as u64, item).expect("append");
        }
    }
    let bytes = std::fs::read(&path).expect("read wal");
    let mut group = c.benchmark_group("wal_replay");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(800));
    group.bench_with_input(BenchmarkId::new("entries", entries), &entries, |b, _| {
        b.iter(|| {
            let replayed = replay::<u8>(black_box(&bytes)).expect("clean log replays");
            assert_eq!(replayed.len(), entries);
            replayed
        })
    });
    group.finish();

    let reps = 20u32;
    let t = Instant::now();
    for _ in 0..reps {
        black_box(replay::<u8>(&bytes).expect("replays"));
    }
    let per = t.elapsed().as_secs_f64() / f64::from(reps);
    println!(
        "wal: {} entries, {:.1} KiB — replay {:.0} entries/s",
        entries,
        bytes.len() as f64 / 1024.0,
        entries as f64 / per
    );
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_snapshot_codec, bench_cold_vs_warm, bench_wal);
criterion_main!(benches);
