//! A minimal Rust lexer for the lint passes.
//!
//! The build container is offline, so `syn` is out of reach; the
//! passes here only need token-level structure anyway — identifiers,
//! punctuation, literals, and the line each sits on — plus the comment
//! stream (for `// SAFETY:` and `lint:allow` annotations). The lexer
//! therefore handles exactly the lexical features that would otherwise
//! produce *false* tokens: line/block comments (nested), string / raw
//! string / byte string / char literals, lifetimes, and numbers. It
//! does not parse; the passes pattern-match the token stream.

/// What a token is, as far as the passes care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unsafe`, `HashMap`, …).
    Ident,
    /// Operator / delimiter, multi-character forms pre-joined
    /// (`::`, `=>`, `<=`, …).
    Punct,
    /// String / char / byte / numeric literal (text preserved).
    Lit,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// One comment with the 1-based line it *starts* on. Block comments
/// produce one entry holding their whole text.
#[derive(Debug, Clone)]
pub struct Comment {
    pub line: u32,
    pub text: String,
}

/// Multi-character punctuation, longest first so greedy matching is
/// correct (`<<=` before `<<` before `<=` before `<`).
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "..", "<<",
    ">>", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
];

/// Lex `src` into tokens and comments. Unterminated constructs are
/// tolerated (consumed to end of input) — the lint must never panic on
/// the code it audits.
pub fn lex(src: &str) -> (Vec<Token>, Vec<Comment>) {
    let b = src.as_bytes();
    let mut tokens = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                comments.push(Comment {
                    line,
                    text: src[start..i].to_string(),
                });
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let (start, start_line) = (i, line);
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                comments.push(Comment {
                    line: start_line,
                    text: src[start..i].to_string(),
                });
            }
            b'"' => {
                let (start, start_line) = (i, line);
                i = skip_string(b, i, &mut line);
                tokens.push(Token {
                    kind: TokKind::Lit,
                    text: src[start..i].to_string(),
                    line: start_line,
                });
            }
            b'r' | b'b' if starts_string_prefix(b, i) => {
                let (start, start_line) = (i, line);
                i = skip_prefixed_string(b, i, &mut line);
                tokens.push(Token {
                    kind: TokKind::Lit,
                    text: src[start..i].to_string(),
                    line: start_line,
                });
            }
            b'\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`,
                // `'"'`). Any single char followed by a closing quote
                // is a char literal; escapes go through the skipper.
                let start = i;
                if i + 2 < b.len() && b[i + 1] != b'\\' && b[i + 1] != b'\'' && b[i + 2] == b'\'' {
                    i += 3;
                    tokens.push(Token {
                        kind: TokKind::Lit,
                        text: src[start..i].to_string(),
                        line,
                    });
                } else if i + 1 < b.len() && (b[i + 1] == b'\\' || b[i + 1] == b'\'') {
                    i = skip_char_literal(b, i);
                    tokens.push(Token {
                        kind: TokKind::Lit,
                        text: src[start..i].to_string(),
                        line,
                    });
                } else {
                    let mut j = i + 1;
                    while j < b.len() && is_ident_char(b[j]) {
                        j += 1;
                    }
                    if j < b.len() && b[j] == b'\'' && j > i + 1 {
                        // 'x' style char literal (single ident char).
                        i = j + 1;
                        tokens.push(Token {
                            kind: TokKind::Lit,
                            text: src[start..i].to_string(),
                            line,
                        });
                    } else if j == i + 2 && b[i + 1].is_ascii() && !is_ident_char(b[i + 1]) {
                        // Degenerate; consume the quote alone.
                        i += 1;
                        tokens.push(Token {
                            kind: TokKind::Punct,
                            text: "'".to_string(),
                            line,
                        });
                    } else {
                        // Lifetime: one token including the quote.
                        i = j;
                        tokens.push(Token {
                            kind: TokKind::Lit,
                            text: src[start..i].to_string(),
                            line,
                        });
                    }
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                i = skip_number(b, i);
                tokens.push(Token {
                    kind: TokKind::Lit,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            c if is_ident_start(c) => {
                let start = i;
                while i < b.len() && is_ident_char(b[i]) {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokKind::Ident,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            _ => {
                let rest = &src[i..];
                let joined = PUNCTS.iter().find(|p| rest.starts_with(**p));
                let text = match joined {
                    Some(p) => (*p).to_string(),
                    None => (c as char).to_string(),
                };
                i += text.len();
                tokens.push(Token {
                    kind: TokKind::Punct,
                    text,
                    line,
                });
            }
        }
    }
    (tokens, comments)
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Whether position `i` (at `r` or `b`) starts a raw/byte string or
/// byte char literal rather than a plain identifier.
fn starts_string_prefix(b: &[u8], i: usize) -> bool {
    match b[i] {
        b'r' => matches!(b.get(i + 1), Some(b'"') | Some(b'#')) && raw_hashes_then_quote(b, i + 1),
        b'b' => match b.get(i + 1) {
            Some(b'"') | Some(b'\'') => true,
            Some(b'r') => raw_hashes_then_quote(b, i + 2),
            _ => false,
        },
        _ => false,
    }
}

/// From `at`, skip `#`s and require a `"` (raw-string opener shape).
fn raw_hashes_then_quote(b: &[u8], at: usize) -> bool {
    let mut j = at;
    while j < b.len() && b[j] == b'#' {
        j += 1;
    }
    j < b.len() && b[j] == b'"'
}

/// Consume a plain `"…"` string starting at `i`; returns the index
/// one past the closing quote.
fn skip_string(b: &[u8], i: usize, line: &mut u32) -> usize {
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'"' => return j + 1,
            b'\n' => {
                *line += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    j
}

/// Consume `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#` or `b'…'` starting at
/// `i`.
fn skip_prefixed_string(b: &[u8], i: usize, line: &mut u32) -> usize {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if j < b.len() && b[j] == b'\'' {
        return skip_char_literal(b, j);
    }
    let raw = j < b.len() && b[j] == b'r';
    if raw {
        j += 1;
    }
    let mut hashes = 0;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    debug_assert!(j < b.len() && b[j] == b'"');
    j += 1; // opening quote
    while j < b.len() {
        match b[j] {
            b'\\' if !raw => j += 2,
            b'"' => {
                let mut k = j + 1;
                let mut seen = 0;
                while seen < hashes && k < b.len() && b[k] == b'#' {
                    seen += 1;
                    k += 1;
                }
                if seen == hashes {
                    return k;
                }
                j += 1;
            }
            b'\n' => {
                *line += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    j
}

/// Consume a `'…'` char literal starting at the opening quote.
fn skip_char_literal(b: &[u8], i: usize) -> usize {
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'\'' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

/// Consume a numeric literal (integers, floats, exponents, suffixes,
/// underscores); stops before `..` so ranges stay punctuation.
fn skip_number(b: &[u8], i: usize) -> usize {
    let mut j = i;
    while j < b.len() && (is_ident_char(b[j]) || b[j] == b'.') {
        if b[j] == b'.' {
            // `0..n` — leave the range operator alone; a float digit
            // or an `e` may follow a genuine decimal point.
            if j + 1 < b.len() && b[j + 1] == b'.' {
                break;
            }
            // Method call on a literal (`1.max(x)`).
            if j + 1 < b.len() && is_ident_start(b[j + 1]) {
                break;
            }
        }
        // Exponent sign: `1e-9`, `2.5E+3`.
        if (b[j] == b'e' || b[j] == b'E')
            && j > i
            && j + 1 < b.len()
            && (b[j + 1] == b'+' || b[j + 1] == b'-')
            && j + 2 < b.len()
            && b[j + 2].is_ascii_digit()
        {
            j += 2;
        }
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .0
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_produce_no_tokens() {
        let (toks, comments) = lex("// unsafe in a comment\nlet s = \"unsafe { }\"; /* unsafe */");
        assert!(toks.iter().all(|t| t.text != "unsafe"));
        assert_eq!(comments.len(), 2);
        assert!(comments[0].text.contains("unsafe"));
    }

    #[test]
    fn raw_and_byte_strings() {
        let (toks, _) = lex(r####"let x = r#"a " b"#; let y = b"z"; let c = b'q';"####);
        let lits: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Lit).collect();
        assert_eq!(lits.len(), 3);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let (toks, _) = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetime = toks.iter().filter(|t| t.text == "'a").count();
        assert_eq!(lifetime, 2);
        assert!(toks.iter().any(|t| t.text == "'x'"));
        assert!(toks.iter().any(|t| t.text == "'\\n'"));
    }

    #[test]
    fn numbers_and_ranges() {
        let (toks, _) = lex("for i in 0..16 { let s = 1e-9; let h = 0xff_u32; }");
        assert!(toks.iter().any(|t| t.is_punct("..")));
        assert!(toks.iter().any(|t| t.text == "1e-9"));
        assert!(toks.iter().any(|t| t.text == "0xff_u32"));
        assert_eq!(idents("0..16"), Vec::<String>::new());
    }

    #[test]
    fn multichar_punctuation_is_joined() {
        let (toks, _) = lex("a <= b; c == d; e::f; g => h; i -> j");
        for p in ["<=", "==", "::", "=>", "->"] {
            assert!(toks.iter().any(|t| t.is_punct(p)), "missing {p}");
        }
    }

    #[test]
    fn lines_are_tracked_across_multiline_constructs() {
        let (toks, _) = lex("let a = \"x\ny\";\nunsafe {}");
        let u = toks.iter().find(|t| t.is_ident("unsafe")).unwrap();
        assert_eq!(u.line, 3);
    }
}
