//! Wire/persistence-schema fingerprint pass.
//!
//! Extracts a structural fingerprint of the externally visible binary
//! formats from `crates/serve/src/wire.rs`,
//! `crates/search/src/error.rs` and `crates/store/src/format.rs`:
//!
//! * every top-level `pub const` in `wire.rs` (versions, sentinels,
//!   frame limits) with its literal value;
//! * every frame-kind constant in `mod kind`;
//! * every `SearchError` variant → wire code arm in
//!   `SearchError::code()`;
//! * the set of error codes `get_error` can decode;
//! * every snapshot/WAL format constant in `format.rs` — versions,
//!   magics, record kinds and backend tags — with a `store.` name
//!   prefix keeping them apart from same-named wire kinds.
//!
//! The fingerprint is compared line-by-line against the committed
//! golden file `crates/lint/golden/wire_schema.txt`. Changing the
//! frame layout, kind bytes, or error codes without bumping
//! `WIRE_VERSION`/`BATCH_VERSION`/`SNAP_VERSION`/`WAL_VERSION` is an
//! error; after a bump, `cned-lint --bless` regenerates the golden.

use crate::lexer::TokKind;
use crate::model::{Finding, SourceFile};
use std::fs;
use std::path::Path;

pub const GOLDEN_REL: &str = "crates/lint/golden/wire_schema.txt";

/// One fingerprint line: `class` partitions version-class entries
/// (names containing `_VERSION`) from layout entries.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Entry {
    pub class: &'static str,
    pub name: String,
    pub value: String,
    pub line: u32,
}

impl Entry {
    fn render(&self) -> String {
        format!("{} {} = {}", self.class, self.name, self.value)
    }
}

#[derive(Debug, Default)]
pub struct Schema {
    pub entries: Vec<Entry>,
}

/// Extract the fingerprint from the loaded workspace files.
pub fn extract(files: &[SourceFile]) -> Option<Schema> {
    let wire = files
        .iter()
        .find(|f| f.rel.ends_with("serve/src/wire.rs"))?;
    let error = files
        .iter()
        .find(|f| f.rel.ends_with("search/src/error.rs"))?;
    let mut entries = Vec::new();
    extract_consts(wire, &mut entries, "", &["kind"]);
    extract_error_codes(error, &mut entries);
    // The persistence format is schema too: a drifting record kind
    // corrupts every snapshot on disk just as surely as a drifting
    // frame kind corrupts peers. Optional so the pass still runs on
    // trees predating cned-store.
    if let Some(store) = files
        .iter()
        .find(|f| f.rel.ends_with("store/src/format.rs"))
    {
        extract_consts(store, &mut entries, "store.", &["kind", "backend"]);
    }
    entries.sort();
    Some(Schema { entries })
}

/// Top-level `pub const NAME: TY = VALUE;` plus constants inside the
/// named sub-modules (classified under the module's own name).
/// `prefix` namespaces the emitted entry names per source file.
fn extract_consts(f: &SourceFile, out: &mut Vec<Entry>, prefix: &str, kind_mods: &[&'static str]) {
    let toks = &f.tokens;
    // Locate each `mod NAME { … }` to classify its constants separately.
    let mut kind_spans: Vec<(&'static str, u32, u32)> = Vec::new();
    for i in 0..toks.len() {
        let Some(&mod_name) = (i + 1 < toks.len())
            .then(|| kind_mods.iter().find(|m| toks[i + 1].is_ident(m)))
            .flatten()
        else {
            continue;
        };
        if toks[i].is_ident("mod") {
            // Find the `{` and matching `}` by line.
            let mut j = i + 2;
            let mut depth = 0i32;
            let mut start = 0u32;
            while j < toks.len() {
                if toks[j].is_punct("{") {
                    if depth == 0 {
                        start = toks[j].line;
                    }
                    depth += 1;
                } else if toks[j].is_punct("}") {
                    depth -= 1;
                    if depth == 0 {
                        kind_spans.push((mod_name, start, toks[j].line));
                        break;
                    }
                }
                j += 1;
            }
        }
    }
    let mut i = 0;
    while i < toks.len() {
        // Only `pub`-visible constants are wire schema; trait
        // associated consts and macro-internal consts are not.
        let is_pub = i > 0
            && (toks[i - 1].is_ident("pub")
                || (toks[i - 1].is_punct(")")
                    && i >= 4
                    && toks[i - 4].is_ident("pub")
                    && toks[i - 3].is_punct("(")));
        if toks[i].is_ident("const")
            && is_pub
            && i + 1 < toks.len()
            && toks[i + 1].kind == TokKind::Ident
            && !f.in_test_code(toks[i].line)
        {
            let name = toks[i + 1].text.clone();
            let line = toks[i + 1].line;
            // Value: tokens between `=` and `;`, joined with spaces.
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct("=") && !toks[j].is_punct(";") {
                j += 1;
            }
            let mut value = String::new();
            if j < toks.len() && toks[j].is_punct("=") {
                j += 1;
                while j < toks.len() && !toks[j].is_punct(";") {
                    if !value.is_empty() {
                        value.push(' ');
                    }
                    value.push_str(&toks[j].text);
                    j += 1;
                }
            }
            let in_mod = kind_spans
                .iter()
                .find(|&&(_, a, b)| a <= line && line <= b)
                .map(|&(m, _, _)| m);
            let class = if name.contains("_VERSION") {
                "version"
            } else {
                in_mod.unwrap_or("const")
            };
            out.push(Entry {
                class,
                name: format!("{prefix}{name}"),
                value,
                line,
            });
            i = j;
            continue;
        }
        i += 1;
    }
}

/// `SearchError::code()` arms (`Name … => INT`) and the codes
/// `get_error` decodes (`INT =>` inside its body).
fn extract_error_codes(f: &SourceFile, out: &mut Vec<Entry>) {
    let toks = &f.tokens;
    let code_span = f
        .fn_spans
        .iter()
        .find(|(n, _, _)| n == "code")
        .map(|&(_, a, b)| (a, b));
    if let Some((a, b)) = code_span {
        // Arms look like: SearchError :: Name [pattern…] => INT
        let mut i = 0;
        while i < toks.len() {
            let t = &toks[i];
            if t.line >= a && t.line <= b && t.is_punct("=>") {
                // Variant name: nearest `Xxx` after the last `::` going
                // back to the arm start (previous `,` at brace balance
                // zero, or the match's own unmatched `{`) — struct
                // patterns like `InvalidRadius { .. }` carry balanced
                // braces of their own, so track balance while walking.
                let mut name = None;
                let mut j = i;
                let mut balance = 0i32;
                while j > 0 {
                    j -= 1;
                    let p = &toks[j];
                    if p.line < a {
                        break;
                    }
                    if p.is_punct("}") {
                        balance += 1;
                    } else if p.is_punct("{") {
                        if balance == 0 {
                            break; // enclosing match body
                        }
                        balance -= 1;
                    } else if p.is_punct(",") && balance == 0 {
                        break;
                    } else if p.is_punct("::")
                        && j + 1 < toks.len()
                        && toks[j + 1].kind == TokKind::Ident
                    {
                        name = Some(toks[j + 1].text.clone());
                        break;
                    }
                }
                // Code: the literal right after `=>`.
                if let (Some(name), Some(code)) = (name, toks.get(i + 1)) {
                    if code.kind == TokKind::Lit {
                        out.push(Entry {
                            class: "error",
                            name,
                            value: code.text.clone(),
                            line: code.line,
                        });
                    }
                }
            }
            i += 1;
        }
    }
    // Decodable codes: integer-literal match arms inside get_error.
    if let Some(&(_, a, b)) = f.fn_spans.iter().find(|(n, _, _)| n == "get_error") {
        let mut codes: Vec<String> = Vec::new();
        for i in 0..toks.len() {
            let t = &toks[i];
            if t.line >= a
                && t.line <= b
                && t.kind == TokKind::Lit
                && t.text.chars().all(|c| c.is_ascii_digit())
                && i + 1 < toks.len()
                && toks[i + 1].is_punct("=>")
            {
                codes.push(t.text.clone());
            }
        }
        codes.sort_by_key(|c| c.parse::<u64>().unwrap_or(u64::MAX));
        out.push(Entry {
            class: "decode-codes",
            name: "get_error".to_string(),
            value: codes.join(" "),
            line: a,
        });
    }
}

/// Outcome of comparing extraction vs golden.
pub enum Verdict {
    Clean,
    /// Golden file missing entirely.
    NoGolden,
    /// Layout changed and a version entry changed too → needs --bless.
    NeedsBless {
        changed: Vec<String>,
    },
    /// Layout changed with versions identical → hard error.
    UnversionedChange {
        changed: Vec<(String, u32)>,
    },
}

pub fn check(root: &Path, schema: &Schema, findings: &mut Vec<Finding>) -> Verdict {
    const RULE: &str = "schema/wire-fingerprint";
    let golden_path = root.join(GOLDEN_REL);
    let Ok(golden_text) = fs::read_to_string(&golden_path) else {
        findings.push(Finding::new(
            GOLDEN_REL,
            1,
            RULE,
            "golden wire-schema fingerprint missing — run `cned-lint --bless` \
             to create it"
                .to_string(),
        ));
        return Verdict::NoGolden;
    };
    let golden: Vec<String> = golden_text
        .lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect();
    let current: Vec<String> = schema.entries.iter().map(Entry::render).collect();
    if golden == current {
        return Verdict::Clean;
    }
    // Split the diff into version-class and layout-class changes.
    let gset: std::collections::BTreeSet<&str> = golden.iter().map(String::as_str).collect();
    let cset: std::collections::BTreeSet<&str> = current.iter().map(String::as_str).collect();
    let version_changed = golden
        .iter()
        .filter(|l| l.starts_with("version "))
        .collect::<Vec<_>>()
        != current
            .iter()
            .filter(|l| l.starts_with("version "))
            .collect::<Vec<_>>();
    let mut changed_lines: Vec<(String, u32)> = Vec::new();
    for e in &schema.entries {
        let rendered = e.render();
        if !gset.contains(rendered.as_str()) {
            changed_lines.push((rendered, e.line));
        }
    }
    for g in &golden {
        if !cset.contains(g.as_str()) {
            changed_lines.push((format!("(removed) {g}"), 1));
        }
    }
    if version_changed {
        for (l, _) in &changed_lines {
            findings.push(Finding::new(
                GOLDEN_REL,
                1,
                RULE,
                format!("wire schema changed alongside a version bump: {l} — run `cned-lint --bless` to accept"),
            ));
        }
        Verdict::NeedsBless {
            changed: changed_lines.into_iter().map(|(l, _)| l).collect(),
        }
    } else {
        for (l, line) in &changed_lines {
            // Attribute layout changes to wire.rs/error.rs lines when
            // we have them; removals point at the golden file.
            let (file, at) = if l.starts_with("(removed)") {
                (GOLDEN_REL, 1u32)
            } else if l.starts_with("error ") || l.starts_with("decode-codes") {
                ("crates/search/src/error.rs", *line)
            } else if l.contains(" store.") {
                ("crates/store/src/format.rs", *line)
            } else {
                ("crates/serve/src/wire.rs", *line)
            };
            findings.push(Finding::new(
                file,
                at,
                RULE,
                format!(
                    "wire/persistence schema changed without a version bump \
                     (WIRE_VERSION/BATCH_VERSION/SNAP_VERSION/WAL_VERSION): {l} \
                     — peers or on-disk snapshots built against the old layout \
                     would misparse; bump the version, then `cned-lint --bless`"
                ),
            ));
        }
        Verdict::UnversionedChange {
            changed: changed_lines,
        }
    }
}

/// Write (or refuse to write) the golden file.
pub fn bless(root: &Path, schema: &Schema) -> Result<String, String> {
    let golden_path = root.join(GOLDEN_REL);
    // Refuse to bless over an unversioned layout change: --bless must
    // not become a bypass for the version-bump requirement.
    if let Ok(golden_text) = fs::read_to_string(&golden_path) {
        let golden: Vec<String> = golden_text
            .lines()
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(str::to_string)
            .collect();
        let current: Vec<String> = schema.entries.iter().map(Entry::render).collect();
        let versions = |lines: &[String]| -> Vec<String> {
            lines
                .iter()
                .filter(|l| l.starts_with("version "))
                .cloned()
                .collect()
        };
        if golden != current && versions(&golden) == versions(&current) {
            return Err(
                "refusing to bless: wire/persistence layout changed but no format \
                 version (WIRE_VERSION/BATCH_VERSION/SNAP_VERSION/WAL_VERSION) did \
                 — bump the version first"
                    .to_string(),
            );
        }
    }
    if let Some(parent) = golden_path.parent() {
        let _ = fs::create_dir_all(parent);
    }
    let mut text = String::from(
        "# Wire-schema fingerprint, generated by `cned-lint --bless`.\n\
         # Layout lines may only change together with a `version` line bump.\n",
    );
    for e in &schema.entries {
        text.push_str(&e.render());
        text.push('\n');
    }
    fs::write(&golden_path, &text).map_err(|e| format!("write {GOLDEN_REL}: {e}"))?;
    Ok(format!(
        "blessed {} entries into {GOLDEN_REL}",
        schema.entries.len()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SourceFile;

    const WIRE: &str = "pub const WIRE_VERSION: u8 = 1;\npub const MAX_FRAME: usize = 16;\npub(crate) mod kind {\n    pub const REQ_NN: u8 = 0;\n    pub const RESP_NN: u8 = 16;\n}\n";
    const ERROR: &str = "impl SearchError {\n    pub fn code(&self) -> u8 {\n        match self {\n            SearchError::EmptyDatabase => 1,\n            SearchError::InvalidRadius { .. } => 4,\n        }\n    }\n}\nfn get_error(b: &[u8]) {\n    match code {\n        1 => a(),\n        4 => b(),\n        _ => c(),\n    }\n}\n";

    fn fixture() -> Vec<SourceFile> {
        vec![
            SourceFile::parse("crates/serve/src/wire.rs".into(), "serve".into(), WIRE),
            SourceFile::parse("crates/search/src/error.rs".into(), "search".into(), ERROR),
        ]
    }

    const STORE: &str = "pub const SNAP_VERSION: u8 = 1;\npub const WAL_VERSION: u8 = 1;\npub mod kind {\n    pub const META: u8 = 1;\n    pub const LINEAR: u8 = 2;\n}\npub mod backend {\n    pub const LINEAR: u8 = 1;\n}\n";

    #[test]
    fn store_format_constants_are_fingerprinted() {
        let mut files = fixture();
        files.push(SourceFile::parse(
            "crates/store/src/format.rs".into(),
            "store".into(),
            STORE,
        ));
        let schema = extract(&files).unwrap();
        let lines: Vec<String> = schema.entries.iter().map(Entry::render).collect();
        assert!(
            lines.contains(&"version store.SNAP_VERSION = 1".to_string()),
            "{lines:?}"
        );
        assert!(lines.contains(&"version store.WAL_VERSION = 1".to_string()));
        assert!(lines.contains(&"kind store.META = 1".to_string()));
        // Same const name in `mod kind` and `mod backend` stays
        // distinguishable via the class column.
        assert!(lines.contains(&"kind store.LINEAR = 2".to_string()));
        assert!(lines.contains(&"backend store.LINEAR = 1".to_string()));
        // And the wire entries are unprefixed alongside.
        assert!(lines.contains(&"kind REQ_NN = 0".to_string()));
    }

    #[test]
    fn extraction_captures_versions_kinds_and_codes() {
        let schema = extract(&fixture()).unwrap();
        let lines: Vec<String> = schema.entries.iter().map(Entry::render).collect();
        assert!(
            lines.contains(&"version WIRE_VERSION = 1".to_string()),
            "{lines:?}"
        );
        assert!(lines.contains(&"kind REQ_NN = 0".to_string()));
        assert!(lines.contains(&"kind RESP_NN = 16".to_string()));
        assert!(lines.contains(&"const MAX_FRAME = 16".to_string()));
        assert!(lines.contains(&"error EmptyDatabase = 1".to_string()));
        assert!(lines.contains(&"error InvalidRadius = 4".to_string()));
        assert!(lines.contains(&"decode-codes get_error = 1 4".to_string()));
    }

    #[test]
    fn unversioned_layout_change_is_a_hard_error() {
        let dir = std::env::temp_dir().join(format!("cned-lint-test-{}", std::process::id()));
        std::fs::create_dir_all(dir.join("crates/lint/golden")).unwrap();
        let schema = extract(&fixture()).unwrap();
        bless(&dir, &schema).unwrap();
        // Same versions, different kind byte.
        let wire2 = WIRE.replace("REQ_NN: u8 = 0", "REQ_NN: u8 = 7");
        let files2 = vec![
            SourceFile::parse("crates/serve/src/wire.rs".into(), "serve".into(), &wire2),
            SourceFile::parse("crates/search/src/error.rs".into(), "search".into(), ERROR),
        ];
        let schema2 = extract(&files2).unwrap();
        let mut findings = Vec::new();
        match check(&dir, &schema2, &mut findings) {
            Verdict::UnversionedChange { .. } => {}
            _ => panic!("expected UnversionedChange"),
        }
        assert!(!findings.is_empty());
        assert!(bless(&dir, &schema2).is_err(), "bless must refuse");
        // Bump the version → blessable.
        let wire3 = wire2.replace("WIRE_VERSION: u8 = 1", "WIRE_VERSION: u8 = 2");
        let files3 = vec![
            SourceFile::parse("crates/serve/src/wire.rs".into(), "serve".into(), &wire3),
            SourceFile::parse("crates/search/src/error.rs".into(), "search".into(), ERROR),
        ];
        let schema3 = extract(&files3).unwrap();
        let mut findings3 = Vec::new();
        match check(&dir, &schema3, &mut findings3) {
            Verdict::NeedsBless { .. } => {}
            _ => panic!("expected NeedsBless"),
        }
        assert!(bless(&dir, &schema3).is_ok());
        let mut clean = Vec::new();
        assert!(matches!(check(&dir, &schema3, &mut clean), Verdict::Clean));
        assert!(clean.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
