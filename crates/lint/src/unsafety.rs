//! Unsafe audit pass, three rules:
//!
//! * `unsafe/missing-safety-comment` — every `unsafe` token (block or
//!   `unsafe fn`) must have a `// SAFETY:` line comment on the same
//!   line, the line above, or in the contiguous comment/attribute
//!   block above the item. Rustdoc `# Safety` sections document the
//!   *caller's* obligation and deliberately do not count — the line
//!   comment states why *this* site upholds it.
//! * `unsafe/unguarded-target-feature` — a `#[target_feature]` fn may
//!   only be called from another `#[target_feature]` fn or from a
//!   function that checks `is_x86_feature_detected!` (directly or via
//!   a local guard helper) before the call.
//! * `unsafe/missing-forbid` — crates with zero `unsafe` tokens must
//!   pin that property with `#![forbid(unsafe_code)]`; crates with
//!   unsafe code must carry `#![deny(unsafe_op_in_unsafe_fn)]` so
//!   every unsafe operation sits in an explicit, commentable block.

use crate::lexer::TokKind;
use crate::model::{Finding, SourceFile};
use std::collections::{BTreeMap, BTreeSet};

pub fn run(files: &[SourceFile], findings: &mut Vec<Finding>) {
    check_safety_comments(files, findings);
    check_target_feature_guards(files, findings);
    check_crate_hygiene(files, findings);
}

fn check_safety_comments(files: &[SourceFile], findings: &mut Vec<Finding>) {
    const RULE: &str = "unsafe/missing-safety-comment";
    for f in files {
        for t in &f.tokens {
            if !t.is_ident("unsafe") || f.in_test_code(t.line) {
                continue;
            }
            if has_safety_comment(f, t.line) {
                continue;
            }
            findings.push(Finding::new(
                &f.rel,
                t.line,
                RULE,
                "`unsafe` without a `// SAFETY:` comment — state why the \
                 obligations hold at this site (rustdoc `# Safety` documents \
                 the caller's contract, not this site's proof)"
                    .to_string(),
            ));
        }
    }
}

/// A `// SAFETY:` line comment on the same line, or in the contiguous
/// run of comment/attribute/doc lines directly above `line`.
fn has_safety_comment(f: &SourceFile, line: u32) -> bool {
    let safety_on = |l: u32| {
        f.comments
            .iter()
            .any(|c| c.line == l && c.text.contains("SAFETY:") && !c.text.starts_with("///"))
    };
    if safety_on(line) {
        return true;
    }
    let mut l = line;
    while l > 1 {
        l -= 1;
        let text = f
            .lines
            .get((l - 1) as usize)
            .map(String::as_str)
            .unwrap_or("");
        let trimmed = text.trim_start();
        if trimmed.is_empty() {
            break;
        }
        let is_block = trimmed.starts_with("//")
            || trimmed.starts_with("#[")
            || trimmed.starts_with("#!")
            || trimmed.starts_with("*"); // inner block-comment line
        if !is_block {
            break;
        }
        if safety_on(l) {
            return true;
        }
    }
    false
}

fn check_target_feature_guards(files: &[SourceFile], findings: &mut Vec<Finding>) {
    const RULE: &str = "unsafe/unguarded-target-feature";
    // 1. Collect #[target_feature] fn names — each with the module
    //    qualifier it is reachable under (innermost `mod` name, or
    //    the file stem), so a *safe dispatcher wrapper sharing the
    //    kernel's name* (`lanes::myers_word` calling
    //    `avx2::myers_word`) is not confused with the kernel. Also
    //    record the decorated fns' spans (calls inside another
    //    target_feature fn are fine) and "guard" fns whose body
    //    contains is_x86_feature_detected.
    let mut tf_quals: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut tf_files: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut tf_spans: BTreeMap<String, Vec<(u32, u32)>> = BTreeMap::new();
    let mut guard_fns: BTreeSet<String> = BTreeSet::new();
    for f in files {
        let toks = &f.tokens;
        let mod_spans = find_mod_spans(toks);
        for i in 0..toks.len() {
            if toks[i].is_ident("target_feature") {
                // Find the fn this attribute decorates: scan forward
                // for `fn name`, skipping further attributes/quals.
                let mut j = i;
                while j < toks.len() && !toks[j].is_ident("fn") {
                    j += 1;
                }
                if j + 1 < toks.len() && toks[j + 1].kind == TokKind::Ident {
                    let name = toks[j + 1].text.clone();
                    let def_line = toks[j + 1].line;
                    let qualifier = mod_spans
                        .iter()
                        .filter(|&&(_, a, b)| a <= def_line && def_line <= b)
                        .min_by_key(|&&(_, a, b)| b - a)
                        .map(|(n, _, _)| n.clone())
                        .unwrap_or_else(|| file_stem(&f.rel));
                    tf_quals.entry(name.clone()).or_default().insert(qualifier);
                    tf_files
                        .entry(name.clone())
                        .or_default()
                        .insert(f.rel.clone());
                    // Record the decorated fn's span so calls *inside*
                    // other target_feature fns stay allowed.
                    for &(ref n, a, b) in &f.fn_spans {
                        if *n == name {
                            tf_spans.entry(f.rel.clone()).or_default().push((a, b));
                        }
                    }
                }
            }
        }
        // Guard fns: any fn whose body mentions is_x86_feature_detected.
        for &(ref name, a, b) in &f.fn_spans {
            let has_check = toks
                .iter()
                .any(|t| t.line >= a && t.line <= b && t.is_ident("is_x86_feature_detected"));
            if has_check {
                guard_fns.insert(name.clone());
            }
        }
    }
    // 2. Check every call site of a target_feature fn.
    for f in files {
        let toks = &f.tokens;
        for i in 0..toks.len() {
            let t = &toks[i];
            if t.kind != TokKind::Ident || !tf_quals.contains_key(&t.text) {
                continue;
            }
            // Call site: `name (`; skip the definition (`fn name`).
            let is_call = i + 1 < toks.len() && toks[i + 1].is_punct("(");
            let is_def = i > 0 && toks[i - 1].is_ident("fn");
            if !is_call || is_def || f.in_test_code(t.line) {
                continue;
            }
            // Resolve the path qualifier: `avx2::kernel(` targets the
            // kernel, `lanes::kernel(` targets the safe dispatcher
            // wrapper, `x.kernel(` is a method. Unqualified calls only
            // count inside a file that defines the kernel.
            if i > 0 && toks[i - 1].is_punct(".") {
                continue;
            }
            if i > 0 && toks[i - 1].is_punct("::") {
                let qual = toks.get(i.wrapping_sub(2)).map(|q| q.text.as_str());
                let matches_kernel = qual.is_some_and(|q| tf_quals[&t.text].contains(q));
                if !matches_kernel {
                    continue;
                }
            } else if !tf_files[&t.text].contains(&f.rel) {
                continue;
            }
            // OK if the caller is itself a target_feature fn.
            let in_tf_fn = tf_spans
                .get(&f.rel)
                .is_some_and(|spans| spans.iter().any(|&(a, b)| a <= t.line && t.line <= b));
            if in_tf_fn {
                continue;
            }
            // OK if the enclosing fn checks the feature (directly or
            // via a guard helper) before this line.
            let enclosing = f
                .fn_spans
                .iter()
                .filter(|&&(_, a, b)| a <= t.line && t.line <= b)
                .min_by_key(|&&(_, a, b)| b - a);
            let guarded = enclosing.is_some_and(|&(_, a, _)| {
                toks.iter().any(|g| {
                    g.line >= a
                        && g.line <= t.line
                        && g.kind == TokKind::Ident
                        && (g.text == "is_x86_feature_detected" || guard_fns.contains(&g.text))
                })
            });
            if guarded {
                continue;
            }
            findings.push(Finding::new(
                &f.rel,
                t.line,
                RULE,
                format!(
                    "call to `#[target_feature]` fn `{}` without a visible \
                     `is_x86_feature_detected!` guard in the calling function",
                    t.text
                ),
            ));
        }
    }
}

/// `(name, start_line, end_line)` for every inline `mod name { … }`
/// (declarations `mod name;` have no body and are skipped).
fn find_mod_spans(toks: &[crate::lexer::Token]) -> Vec<(String, u32, u32)> {
    let mut spans = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("mod") {
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else {
            continue;
        };
        if name_tok.kind != TokKind::Ident {
            continue;
        }
        let Some(open_tok) = toks.get(i + 2) else {
            continue;
        };
        if !open_tok.is_punct("{") {
            continue;
        }
        let mut depth = 0i32;
        let mut j = i + 2;
        while j < toks.len() {
            if toks[j].is_punct("{") {
                depth += 1;
            } else if toks[j].is_punct("}") {
                depth -= 1;
                if depth == 0 {
                    spans.push((name_tok.text.clone(), toks[i].line, toks[j].line));
                    break;
                }
            }
            j += 1;
        }
    }
    spans
}

/// `crates/core/src/lanes.rs` → `lanes`; `…/lib.rs`/`…/main.rs` fall
/// back to the crate directory name.
fn file_stem(rel: &str) -> String {
    let base = rel.rsplit('/').next().unwrap_or(rel);
    let stem = base.strip_suffix(".rs").unwrap_or(base);
    if stem == "lib" || stem == "main" || stem == "mod" {
        rel.split('/').nth(1).unwrap_or(stem).to_string()
    } else {
        stem.to_string()
    }
}

fn check_crate_hygiene(files: &[SourceFile], findings: &mut Vec<Finding>) {
    const FORBID: &str = "unsafe/missing-forbid";
    const DENY: &str = "unsafe/missing-deny-unsafe-op";
    // Group by crate; the lint's own crate audits itself too.
    let mut crates: BTreeMap<&str, Vec<&SourceFile>> = BTreeMap::new();
    for f in files {
        crates.entry(f.crate_name.as_str()).or_default().push(f);
    }
    for (name, members) in crates {
        let has_unsafe = members.iter().any(|f| {
            f.tokens
                .iter()
                .any(|t| t.is_ident("unsafe") && !f.in_test_code(t.line))
        });
        let root = members
            .iter()
            .find(|f| f.rel.ends_with("/lib.rs") || f.rel.ends_with("/main.rs"));
        let Some(root) = root else { continue };
        if has_unsafe {
            if !has_inner_attr(root, "unsafe_op_in_unsafe_fn") {
                findings.push(Finding::new(
                    &root.rel,
                    1,
                    DENY,
                    format!(
                        "crate `{name}` contains unsafe code but its root does not \
                         declare `#![deny(unsafe_op_in_unsafe_fn)]`"
                    ),
                ));
            }
        } else if !has_inner_attr(root, "unsafe_code") {
            findings.push(Finding::new(
                &root.rel,
                1,
                FORBID,
                format!(
                    "crate `{name}` has no unsafe code — pin that with \
                     `#![forbid(unsafe_code)]` in {}",
                    root.rel
                ),
            ));
        }
    }
}

/// Whether the file carries `#![forbid/deny(...)]` naming `lint_name`
/// (token sequence `# ! [ … lint_name … ]` near the file top).
fn has_inner_attr(f: &SourceFile, lint_name: &str) -> bool {
    let toks = &f.tokens;
    for i in 0..toks.len() {
        if toks[i].is_punct("#") && i + 1 < toks.len() && toks[i + 1].is_punct("!") {
            // Scan to the closing `]`.
            let mut j = i + 2;
            let mut depth = 0i32;
            while j < toks.len() {
                if toks[j].is_punct("[") {
                    depth += 1;
                } else if toks[j].is_punct("]") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if toks[j].is_ident(lint_name) {
                    return true;
                }
                j += 1;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SourceFile;

    fn lint_one(rel: &str, crate_name: &str, src: &str) -> Vec<Finding> {
        let f = SourceFile::parse(rel.into(), crate_name.into(), src);
        let mut out = Vec::new();
        run(&[f], &mut out);
        out
    }

    #[test]
    fn unsafe_without_safety_comment_is_flagged() {
        let src =
            "#![deny(unsafe_op_in_unsafe_fn)]\nfn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
        let out = lint_one("crates/x/src/lib.rs", "x", src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "unsafe/missing-safety-comment");
        assert_eq!(out[0].line, 3);
    }

    #[test]
    fn safety_comment_above_satisfies() {
        let src = "#![deny(unsafe_op_in_unsafe_fn)]\nfn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid for reads.\n    unsafe { *p }\n}\n";
        assert!(lint_one("crates/x/src/lib.rs", "x", src).is_empty());
    }

    #[test]
    fn rustdoc_safety_section_does_not_satisfy() {
        let src = "#![deny(unsafe_op_in_unsafe_fn)]\n/// # Safety\n/// p must be valid.\npub unsafe fn f(p: *const u8) -> u8 {\n    // SAFETY: contract forwarded to caller.\n    unsafe { *p }\n}\n";
        let out = lint_one("crates/x/src/lib.rs", "x", src);
        // The `unsafe fn` on line 4 has only doc comments above it.
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 4);
    }

    #[test]
    fn clean_crate_needs_forbid() {
        let out = lint_one("crates/x/src/lib.rs", "x", "pub fn f() {}\n");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "unsafe/missing-forbid");
    }

    #[test]
    fn forbid_attr_satisfies() {
        let out = lint_one(
            "crates/x/src/lib.rs",
            "x",
            "#![forbid(unsafe_code)]\npub fn f() {}\n",
        );
        assert!(out.is_empty());
    }

    #[test]
    fn unguarded_target_feature_call_is_flagged() {
        let src = "#![deny(unsafe_op_in_unsafe_fn)]\n#[target_feature(enable = \"avx2\")]\n// SAFETY: caller checks avx2.\npub unsafe fn kernel() {}\nfn caller() {\n    // SAFETY: wrong — no runtime check here.\n    unsafe { kernel() };\n}\n";
        let out = lint_one("crates/x/src/lib.rs", "x", src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "unsafe/unguarded-target-feature");
    }

    #[test]
    fn safe_dispatcher_wrapper_with_same_name_is_not_a_kernel_call() {
        // lanes.rs pattern: `mod avx2` holds the kernel; a safe
        // top-level dispatcher shares its name. Calling the
        // *dispatcher* from another file must not be flagged.
        let kernels = "#![deny(unsafe_op_in_unsafe_fn)]\nmod avx2 {\n    #[target_feature(enable = \"avx2\")]\n    // SAFETY: caller checks avx2.\n    pub unsafe fn kernel() {}\n}\npub fn kernel(backend: Backend) {\n    if use_avx2(backend) {\n        // SAFETY: AVX2 presence checked just above.\n        unsafe { avx2::kernel() };\n    }\n}\nfn use_avx2(b: Backend) -> bool {\n    is_x86_feature_detected!(\"avx2\")\n}\n";
        let caller = "fn go(backend: Backend) {\n    crate::lanes::kernel(backend);\n}\n";
        let files = vec![
            SourceFile::parse("crates/x/src/lanes.rs".into(), "x".into(), kernels),
            SourceFile::parse("crates/x/src/lib.rs".into(), "x".into(), caller),
        ];
        let mut out = Vec::new();
        run(&files, &mut out);
        let tf: Vec<_> = out
            .iter()
            .filter(|f| f.rule == "unsafe/unguarded-target-feature")
            .collect();
        assert!(tf.is_empty(), "{tf:?}");
    }

    #[test]
    fn qualified_kernel_call_without_guard_is_flagged() {
        let kernels = "#![deny(unsafe_op_in_unsafe_fn)]\nmod avx2 {\n    #[target_feature(enable = \"avx2\")]\n    // SAFETY: caller checks avx2.\n    pub unsafe fn kernel() {}\n}\nfn bad() {\n    // SAFETY: wrong — no runtime check.\n    unsafe { avx2::kernel() };\n}\n";
        let f = SourceFile::parse("crates/x/src/lanes.rs".into(), "x".into(), kernels);
        let mut out = Vec::new();
        run(&[f], &mut out);
        assert!(
            out.iter()
                .any(|f| f.rule == "unsafe/unguarded-target-feature"),
            "{out:?}"
        );
    }

    #[test]
    fn detected_guard_satisfies() {
        let src = "#![deny(unsafe_op_in_unsafe_fn)]\n#[target_feature(enable = \"avx2\")]\n// SAFETY: caller checks avx2.\npub unsafe fn kernel() {}\nfn caller() {\n    if is_x86_feature_detected!(\"avx2\") {\n        // SAFETY: AVX2 presence checked just above.\n        unsafe { kernel() };\n    }\n}\n";
        assert!(lint_one("crates/x/src/lib.rs", "x", src).is_empty());
    }
}
