//! Workspace model shared by the passes: loaded source files, lexed
//! token/comment streams, per-file structural indices (function spans,
//! test-only regions), and the `Finding` diagnostic type.

use crate::lexer::{self, Comment, Token};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One diagnostic. `rule` is a stable machine-readable slug
/// (`determinism/map-iteration`, `unsafe/missing-safety-comment`, …).
#[derive(Debug, Clone)]
pub struct Finding {
    pub file: String,
    pub line: u32,
    pub rule: &'static str,
    pub message: String,
}

impl Finding {
    pub fn new(file: &str, line: u32, rule: &'static str, message: String) -> Self {
        Finding {
            file: file.to_string(),
            line,
            rule,
            message,
        }
    }
}

/// A lexed source file plus the structural indices the passes need.
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel: String,
    /// Crate directory name (`core`, `serve`, …).
    pub crate_name: String,
    /// Raw source lines (for allow-annotation and slack-site checks).
    pub lines: Vec<String>,
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
    /// Line ranges (inclusive) that are test-only: bodies of items
    /// under `#[cfg(test)]`-like attributes and `#[test]` functions.
    pub test_spans: Vec<(u32, u32)>,
    /// `(name, start_line, end_line)` for every `fn` in the file,
    /// innermost last; used to attribute a finding to its enclosing
    /// function for the allowlist.
    pub fn_spans: Vec<(String, u32, u32)>,
}

impl SourceFile {
    pub fn parse(rel: String, crate_name: String, src: &str) -> Self {
        let (tokens, comments) = lexer::lex(src);
        let lines = src.lines().map(str::to_string).collect();
        let test_spans = find_test_spans(&tokens);
        let fn_spans = find_fn_spans(&tokens);
        SourceFile {
            rel,
            crate_name,
            lines,
            tokens,
            comments,
            test_spans,
            fn_spans,
        }
    }

    /// Whether `line` falls inside a `#[cfg(test)]` / `#[test]` span.
    pub fn in_test_code(&self, line: u32) -> bool {
        self.test_spans.iter().any(|&(a, b)| a <= line && line <= b)
    }

    /// Name of the innermost function containing `line`, if any.
    pub fn enclosing_fn(&self, line: u32) -> Option<&str> {
        self.fn_spans
            .iter()
            .filter(|&&(_, a, b)| a <= line && line <= b)
            .min_by_key(|&&(_, a, b)| b - a)
            .map(|(name, _, _)| name.as_str())
    }

    /// Whether a `lint:allow(rule)` annotation covers `line`: same
    /// line, the directly preceding line, or anywhere in the comment
    /// block immediately above the enclosing function's first line.
    pub fn allowed(&self, line: u32, rule: &str) -> bool {
        let needle_full = format!("lint:allow({rule})");
        let short = rule.split('/').next_back().unwrap_or(rule);
        let needle_short = format!("lint:allow({short})");
        let hit = |l: u32| {
            self.comments.iter().any(|c| {
                c.line == l && (c.text.contains(&needle_full) || c.text.contains(&needle_short))
            })
        };
        if hit(line) {
            return true;
        }
        // Contiguous comment block directly above the finding — a
        // multi-line justification may carry the marker on any line.
        let mut l = line;
        while l > 1 {
            l -= 1;
            let text = self
                .lines
                .get((l - 1) as usize)
                .map(String::as_str)
                .unwrap_or("");
            let trimmed = text.trim_start();
            if !trimmed.starts_with("//") {
                break;
            }
            if hit(l) {
                return true;
            }
        }
        // Comment block above the enclosing fn.
        if let Some(&(_, start, _)) = self
            .fn_spans
            .iter()
            .filter(|&&(_, a, b)| a <= line && line <= b)
            .min_by_key(|&&(_, a, b)| b - a)
        {
            let mut l = start;
            while l > 1 {
                l -= 1;
                let text = self
                    .lines
                    .get((l - 1) as usize)
                    .map(String::as_str)
                    .unwrap_or("");
                let trimmed = text.trim_start();
                if trimmed.starts_with("//")
                    || trimmed.starts_with("#[")
                    || trimmed.starts_with("#!")
                {
                    if trimmed.contains(&needle_full) || trimmed.contains(&needle_short) {
                        return true;
                    }
                } else if !trimmed.is_empty() {
                    break;
                }
            }
        }
        false
    }
}

/// Skip forward from an index to the matching close brace of the `{`
/// at `open`. Returns the index of the closing `}` (or last token).
fn matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < tokens.len() {
        if tokens[i].is_punct("{") {
            depth += 1;
        } else if tokens[i].is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    tokens.len().saturating_sub(1)
}

/// From the index of an attribute's opening `#`, return the index one
/// past its closing `]`.
fn skip_attribute(tokens: &[Token], hash: usize) -> usize {
    let mut i = hash + 1;
    if i < tokens.len() && tokens[i].is_punct("!") {
        i += 1;
    }
    if i >= tokens.len() || !tokens[i].is_punct("[") {
        return hash + 1;
    }
    let mut depth = 0i32;
    while i < tokens.len() {
        if tokens[i].is_punct("[") {
            depth += 1;
        } else if tokens[i].is_punct("]") {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    tokens.len()
}

/// Whether the attribute starting at `hash` gates test-only code:
/// `#[cfg(test)]`, `#[cfg(all(test, …))]`, `#[test]` — but not
/// `#[cfg(not(test))]`.
fn attr_is_test(tokens: &[Token], hash: usize) -> bool {
    let end = skip_attribute(tokens, hash);
    let body = &tokens[hash..end];
    let has_test = body.iter().any(|t| t.is_ident("test"));
    let has_not = body.iter().any(|t| t.is_ident("not"));
    has_test && !has_not
}

/// Find line spans of items gated by test attributes. The span covers
/// from the attribute to the matching close brace of the item body.
fn find_test_spans(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct("#") && attr_is_test(tokens, i) {
            let start_line = tokens[i].line;
            let mut j = skip_attribute(tokens, i);
            // Skip any further attributes on the same item.
            while j < tokens.len() && tokens[j].is_punct("#") {
                j = skip_attribute(tokens, j);
            }
            // Find the item body's opening brace (skipping a possible
            // `= …;` const — rare under cfg(test); treat `;` first as
            // a single-line item).
            let mut open = None;
            while j < tokens.len() {
                if tokens[j].is_punct("{") {
                    open = Some(j);
                    break;
                }
                if tokens[j].is_punct(";") {
                    break;
                }
                j += 1;
            }
            if let Some(open) = open {
                let close = matching_brace(tokens, open);
                spans.push((start_line, tokens[close].line));
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
    spans
}

/// Find `(name, start_line, end_line)` for every `fn` item. Lexical:
/// `fn` → name → first `{` at zero paren/bracket depth → matching `}`.
/// Trait-method *declarations* (ending in `;`) are skipped.
fn find_fn_spans(tokens: &[Token]) -> Vec<(String, u32, u32)> {
    let mut spans = Vec::new();
    for i in 0..tokens.len() {
        if !tokens[i].is_ident("fn") {
            continue;
        }
        let Some(name_tok) = tokens.get(i + 1) else {
            continue;
        };
        if name_tok.kind != crate::lexer::TokKind::Ident {
            continue;
        }
        // Walk to the body `{`, tracking (), [], <> nesting in the
        // signature. `<`/`>` from generics are balanced in practice
        // for the signatures in this workspace; comparison operators
        // cannot appear in a signature.
        let mut depth = 0i32;
        let mut j = i + 2;
        let mut open = None;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("<") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") || t.is_punct(">") {
                depth -= 1;
            } else if t.is_punct("->") {
                // `->` contains `>`; no depth change.
            } else if depth <= 0 && t.is_punct("{") {
                open = Some(j);
                break;
            } else if depth <= 0 && t.is_punct(";") {
                break; // declaration without body
            } else if t.is_punct("{") {
                // Shouldn't happen at depth > 0 in a signature.
                open = Some(j);
                break;
            }
            j += 1;
        }
        if let Some(open) = open {
            let close = matching_brace(tokens, open);
            spans.push((name_tok.text.clone(), tokens[i].line, tokens[close].line));
        }
    }
    spans
}

/// Load every `.rs` file under `crates/*/src` (recursively), sorted by
/// path for deterministic output.
pub fn load_workspace(root: &Path) -> io::Result<Vec<SourceFile>> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    let mut files = Vec::new();
    for dir in crate_dirs {
        let crate_name = dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        let src = dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut paths = Vec::new();
        collect_rs(&src, &mut paths)?;
        paths.sort();
        for path in paths {
            let text = fs::read_to_string(&path)?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            files.push(SourceFile::parse(rel, crate_name.clone(), &text));
        }
    }
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::parse("crates/x/src/lib.rs".into(), "x".into(), src)
    }

    #[test]
    fn test_spans_cover_cfg_test_modules() {
        let f = file("fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n");
        assert!(!f.in_test_code(1));
        assert!(f.in_test_code(3));
        assert!(f.in_test_code(4));
    }

    #[test]
    fn cfg_not_test_is_live_code() {
        let f = file("#[cfg(not(test))]\nfn live() {\n    body();\n}\n");
        assert!(!f.in_test_code(3));
    }

    #[test]
    fn fn_spans_and_enclosing() {
        let f = file("fn outer(a: u32) -> u32 {\n    let x = 1;\n    x\n}\nfn second() {}\n");
        assert_eq!(f.enclosing_fn(2), Some("outer"));
        assert_eq!(f.enclosing_fn(5), Some("second"));
        assert_eq!(f.enclosing_fn(40), None);
    }

    #[test]
    fn generic_signatures_resolve_to_the_body_brace() {
        let f = file("fn g<S: Ord>(v: Vec<S>) -> Option<S> {\n    v.into_iter().max()\n}\n");
        assert_eq!(f.enclosing_fn(2), Some("g"));
    }

    #[test]
    fn allow_annotations() {
        let f = file(
            "fn f() {\n    // lint:allow(map-iteration) — order-independent drain\n    bad();\n}\n",
        );
        assert!(f.allowed(3, "determinism/map-iteration"));
        assert!(!f.allowed(3, "determinism/float-compare"));
    }

    #[test]
    fn allow_above_fn_covers_body() {
        let f = file(
            "// lint:allow(float-compare) audited: keys are finite\nfn cmp() {\n    a < b;\n}\n",
        );
        assert!(f.allowed(3, "determinism/float-compare"));
    }
}
