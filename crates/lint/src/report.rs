//! Diagnostic rendering: human `file:line: [rule] message` lines and a
//! hand-rolled JSON report (std-only crate — no serde).

use crate::locks::LockGraph;
use crate::model::Finding;

/// Render findings for terminals: sorted by file, line, rule.
pub fn human(findings: &[Finding], graph: &LockGraph, schema_status: &str) -> String {
    let mut sorted: Vec<&Finding> = findings.iter().collect();
    sorted
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    let mut out = String::new();
    for f in &sorted {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n",
            f.file, f.line, f.rule, f.message
        ));
    }
    let cyc = if graph.cycles.is_empty() {
        "acyclic".to_string()
    } else {
        format!("{} cycle(s)", graph.cycles.len())
    };
    out.push_str(&format!(
        "lock graph: {} lock(s), {} edge(s), {}\n",
        graph.nodes.len(),
        graph.edges.len(),
        cyc
    ));
    out.push_str(&format!("wire schema: {schema_status}\n"));
    out.push_str(&format!("cned-lint: {} finding(s)\n", findings.len()));
    out
}

/// Machine-readable report:
/// `{"findings":[…],"lock_graph":{…},"schema":{…},"summary":{…}}`.
pub fn json(findings: &[Finding], graph: &LockGraph, schema_status: &str) -> String {
    let mut s = String::from("{\"findings\":[");
    let mut sorted: Vec<&Finding> = findings.iter().collect();
    sorted
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    for (i, f) in sorted.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"file\":{},\"line\":{},\"rule\":{},\"message\":{}}}",
            quote(&f.file),
            f.line,
            quote(f.rule),
            quote(&f.message)
        ));
    }
    s.push_str("],\"lock_graph\":{\"nodes\":[");
    for (i, n) in graph.nodes.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&quote(n));
    }
    s.push_str("],\"edges\":[");
    for (i, (a, b, file, line)) in graph.edges.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"held\":{},\"acquires\":{},\"file\":{},\"line\":{}}}",
            quote(a),
            quote(b),
            quote(file),
            line
        ));
    }
    s.push_str("],\"cycles\":[");
    for (i, c) in graph.cycles.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&quote(c));
    }
    s.push_str(&format!(
        "]}},\"schema\":{{\"status\":{}}},\"summary\":{{\"findings\":{},\"locks\":{},\"lock_edges\":{}}}}}",
        quote(schema_status),
        findings.len(),
        graph.nodes.len(),
        graph.edges.len()
    ));
    s
}

/// JSON string escaping for the subset that can appear in diagnostics.
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_lines_carry_file_line_rule() {
        let findings = vec![Finding::new(
            "crates/core/src/lanes.rs",
            541,
            "unsafe/missing-safety-comment",
            "msg".to_string(),
        )];
        let g = LockGraph::default();
        let text = human(&findings, &g, "ok");
        assert!(text.contains("crates/core/src/lanes.rs:541: [unsafe/missing-safety-comment] msg"));
        assert!(text.contains("lock graph: 0 lock(s), 0 edge(s), acyclic"));
    }

    #[test]
    fn json_escapes_quotes_and_backslashes() {
        let findings = vec![Finding::new(
            "f.rs",
            1,
            "r",
            "needs `\"x\\y\"` care".to_string(),
        )];
        let g = LockGraph::default();
        let text = json(&findings, &g, "ok");
        assert!(text.contains("\\\"x\\\\y\\\""), "{text}");
        assert!(text.starts_with('{') && text.ends_with('}'));
    }
}
