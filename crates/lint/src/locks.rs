//! Lock-order analysis for the serving layer.
//!
//! Lexically extracts the `Mutex`/`OrderedMutex` acquisition graph
//! from `cned-serve`: which locks exist (fields and locals typed or
//! initialised as mutexes), and, per function body, which locks are
//! held when another is acquired. Guard lifetimes are approximated
//! conservatively:
//!
//! * `let guard = x.lock()…;` — held to the end of the enclosing
//!   brace scope (or an explicit `drop(guard)`);
//! * a statement-transient `x.lock()…` chain (no `let`) — held to the
//!   end of the statement;
//! * `Condvar::wait(guard)` keeps the guard held (it reacquires
//!   before returning).
//!
//! Every hold-while-acquiring pair becomes a directed edge
//! `held → acquired` with a file:line witness. A cycle in that graph
//! is a potential deadlock (`locks/cycle`); a self-edge is a
//! re-entrant acquisition (`locks/self-cycle`). The runtime
//! `OrderedMutex` wrapper in `cned-serve` enforces the same order
//! dynamically in debug builds.

use crate::lexer::TokKind;
use crate::model::{Finding, SourceFile};
use std::collections::{BTreeMap, BTreeSet};

/// Acquisition-graph summary for the JSON report.
#[derive(Debug, Default)]
pub struct LockGraph {
    /// Lock node names, sorted.
    pub nodes: Vec<String>,
    /// `(held, acquired, file, line)` edges, sorted, deduped.
    pub edges: Vec<(String, String, String, u32)>,
    /// Cycles found, each a `a -> b -> … -> a` rendering.
    pub cycles: Vec<String>,
}

pub fn run(files: &[SourceFile], findings: &mut Vec<Finding>) -> LockGraph {
    // `ordered.rs` is the wrapper *mechanism* (its `inner` field and
    // `wait` parameter are not lock sites), so it is excluded.
    let serve: Vec<&SourceFile> = files
        .iter()
        .filter(|f| f.crate_name == "serve" && !f.rel.ends_with("/ordered.rs"))
        .collect();
    let mut nodes: BTreeSet<String> = BTreeSet::new();
    for f in &serve {
        collect_lock_decls(f, &mut nodes);
    }
    let mut edges: BTreeSet<(String, String, String, u32)> = BTreeSet::new();
    for f in &serve {
        collect_edges(f, &nodes, &mut edges);
    }
    // Self-edges are immediate deadlocks with std mutexes.
    for (a, b, file, line) in &edges {
        if a == b {
            findings.push(Finding::new(
                file,
                *line,
                "locks/self-cycle",
                format!("`{a}` acquired while already held — std::sync::Mutex self-deadlocks"),
            ));
        }
    }
    let adj: BTreeMap<&str, BTreeSet<&str>> = {
        let mut m: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for (a, b, _, _) in &edges {
            if a != b {
                m.entry(a.as_str()).or_default().insert(b.as_str());
            }
        }
        m
    };
    let cycles = find_cycles(&adj);
    for cycle in &cycles {
        // Witness: the first edge of the cycle.
        let (a, b) = {
            let parts: Vec<&str> = cycle.split(" -> ").collect();
            (parts[0].to_string(), parts[1].to_string())
        };
        let witness = edges
            .iter()
            .find(|(x, y, _, _)| *x == a && *y == b)
            .cloned();
        let (file, line) = witness
            .map(|(_, _, f, l)| (f, l))
            .unwrap_or_else(|| ("crates/serve".to_string(), 1));
        findings.push(Finding::new(
            &file,
            line,
            "locks/cycle",
            format!("lock acquisition cycle (potential deadlock): {cycle}"),
        ));
    }
    LockGraph {
        nodes: nodes.into_iter().collect(),
        edges: edges.into_iter().collect(),
        cycles,
    }
}

/// Find names declared with a mutex-ish type or initializer:
/// `name: [Ordered]Mutex<…>` fields/params, `let name = Mutex::new(…)`.
/// Condvars are recorded too (they pair with a mutex but are never
/// acquired, so they add nodes, not edges).
fn collect_lock_decls(f: &SourceFile, nodes: &mut BTreeSet<String>) {
    let toks = &f.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        let is_lock_ty = t.kind == TokKind::Ident
            && (t.text == "Mutex" || t.text == "OrderedMutex" || t.text == "Condvar");
        if !is_lock_ty || f.in_test_code(t.line) {
            continue;
        }
        // Walk back over type/constructor syntax to `name :` or
        // `name =`, bounded to the statement.
        let mut j = i;
        let mut steps = 0;
        while j > 0 && steps < 16 {
            j -= 1;
            steps += 1;
            let p = &toks[j];
            if p.is_punct(";") || p.is_punct("{") || p.is_punct("}") || p.is_punct(",") {
                break;
            }
            if (p.is_punct(":") || p.is_punct("=")) && j > 0 && toks[j - 1].kind == TokKind::Ident {
                let name = &toks[j - 1].text;
                if name != "mut" && name != "let" {
                    nodes.insert(name.clone());
                }
                break;
            }
        }
    }
}

/// Track held guards through each function body and emit edges.
fn collect_edges(
    f: &SourceFile,
    nodes: &BTreeSet<String>,
    edges: &mut BTreeSet<(String, String, String, u32)>,
) {
    let toks = &f.tokens;
    for &(_, fn_start, fn_end) in &f.fn_spans {
        if f.in_test_code(fn_start) {
            continue;
        }
        let body: Vec<usize> = (0..toks.len())
            .filter(|&i| toks[i].line >= fn_start && toks[i].line <= fn_end)
            .collect();
        // Held guards: (lock name, guard var name or None, scope depth
        // at acquisition, transient?).
        struct Held {
            lock: String,
            var: Option<String>,
            depth: i32,
            transient: bool,
        }
        let mut held: Vec<Held> = Vec::new();
        let mut depth = 0i32;
        let mut k = 0usize;
        while k < body.len() {
            let i = body[k];
            let t = &toks[i];
            if t.is_punct("{") {
                depth += 1;
            } else if t.is_punct("}") {
                depth -= 1;
                held.retain(|h| h.depth <= depth || h.transient);
            } else if t.is_punct(";") {
                held.retain(|h| !h.transient);
            } else if t.is_ident("drop") {
                // `drop(guard)` — release by variable name.
                if let (Some(open), Some(arg)) = (toks.get(i + 1), toks.get(i + 2)) {
                    if open.is_punct("(") && arg.kind == TokKind::Ident {
                        held.retain(|h| h.var.as_deref() != Some(arg.text.as_str()));
                    }
                }
            } else if t.is_ident("lock")
                && i + 1 < toks.len()
                && toks[i + 1].is_punct("(")
                && i >= 2
                && toks[i - 1].is_punct(".")
            {
                // `<recv> . lock (` — resolve the receiver name:
                // the ident before `.`, skipping closing brackets.
                let recv = receiver_name(toks, i - 2);
                let Some(lock) = recv.filter(|r| nodes.contains(r)) else {
                    k += 1;
                    continue;
                };
                // Emit edges from everything currently held.
                for h in &held {
                    edges.insert((h.lock.clone(), lock.clone(), f.rel.clone(), t.line));
                }
                // Classify: a binding holds the *guard* (lives to
                // scope end) only when the whole initializer is the
                // lock chain — `let g = x.lock().expect(…);`. A deref
                // or further method call (`let n = *x.lock()…;`,
                // `….lock()….remove(k)`) drops the guard with the
                // statement temporary.
                let var = let_binding_name(toks, i, fn_start).filter(|_| is_guard_chain(toks, i));
                let transient = var.is_none();
                held.push(Held {
                    lock,
                    var,
                    depth,
                    transient,
                });
            } else if t.is_ident("wait") && i >= 2 && toks[i - 1].is_punct(".") {
                // Condvar wait: guard stays held (reacquired on
                // return); nothing to do lexically.
            }
            k += 1;
        }
    }
}

/// The receiver ident of a `.lock()` call: walk back from `at`
/// (the token before the `.`) over `self .` / `shared .` chains and
/// index brackets to the nearest field/var name that could be a node.
fn receiver_name(toks: &[crate::lexer::Token], at: usize) -> Option<String> {
    let mut j = at as i64;
    // Skip over `]`-balanced indexing: `chunks[i].lock()`.
    if toks[j as usize].is_punct("]") {
        let mut depth = 0i32;
        while j >= 0 {
            if toks[j as usize].is_punct("]") {
                depth += 1;
            } else if toks[j as usize].is_punct("[") {
                depth -= 1;
                if depth == 0 {
                    j -= 1;
                    break;
                }
            }
            j -= 1;
        }
    }
    if j >= 0 && toks[j as usize].kind == TokKind::Ident {
        Some(toks[j as usize].text.clone())
    } else {
        None
    }
}

/// Whether the expression around the `.lock()` at token `lock_idx`
/// binds the guard itself: the initializer starts at the receiver
/// (no leading `*`/`&`), and after `.lock()` only `.expect(…)` /
/// `.unwrap()` follow before the terminating `;`.
fn is_guard_chain(toks: &[crate::lexer::Token], lock_idx: usize) -> bool {
    // Backward: between the `=` of the `let` and the receiver there
    // must be nothing but the receiver chain (idents, `.`), i.e. the
    // token after `=` must not be a deref/borrow operator.
    let mut j = lock_idx;
    let mut after_eq_ok = false;
    while j > 0 {
        j -= 1;
        let t = &toks[j];
        if t.is_punct(";") || t.is_punct("{") || t.is_punct("}") {
            break;
        }
        if t.is_punct("=") {
            after_eq_ok = toks.get(j + 1).is_some_and(|n| n.kind == TokKind::Ident);
            break;
        }
    }
    if !after_eq_ok {
        return false;
    }
    // Forward: skip `lock( … )`, then any `.expect(…)` / `.unwrap()`,
    // then require `;`.
    let mut k = lock_idx + 1; // at `(`
    k = skip_parens(toks, k);
    loop {
        if toks.get(k).is_some_and(|t| t.is_punct(";")) {
            return true;
        }
        if toks.get(k).is_some_and(|t| t.is_punct("."))
            && toks
                .get(k + 1)
                .is_some_and(|t| t.is_ident("expect") || t.is_ident("unwrap"))
            && toks.get(k + 2).is_some_and(|t| t.is_punct("("))
        {
            k = skip_parens(toks, k + 2);
            continue;
        }
        return false;
    }
}

/// From the index of a `(`, return the index one past its matching `)`.
fn skip_parens(toks: &[crate::lexer::Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut k = open;
    while k < toks.len() {
        if toks[k].is_punct("(") {
            depth += 1;
        } else if toks[k].is_punct(")") {
            depth -= 1;
            if depth == 0 {
                return k + 1;
            }
        }
        k += 1;
    }
    toks.len()
}

/// If the statement containing the `.lock()` at token `at` begins with
/// `let [mut] NAME =`, return NAME (the guard variable).
fn let_binding_name(toks: &[crate::lexer::Token], at: usize, fn_start: u32) -> Option<String> {
    let mut j = at;
    while j > 0 {
        j -= 1;
        let t = &toks[j];
        if t.line < fn_start || t.is_punct(";") || t.is_punct("{") || t.is_punct("}") {
            return None;
        }
        if t.is_ident("let") {
            let mut k = j + 1;
            if toks.get(k).is_some_and(|t| t.is_ident("mut")) {
                k += 1;
            }
            return toks.get(k).and_then(|t| {
                if t.kind == TokKind::Ident {
                    Some(t.text.clone())
                } else {
                    None
                }
            });
        }
    }
    None
}

/// DFS cycle detection; returns each cycle rendered `a -> b -> a`.
fn find_cycles(adj: &BTreeMap<&str, BTreeSet<&str>>) -> Vec<String> {
    let mut cycles = Vec::new();
    let mut visited: BTreeSet<&str> = BTreeSet::new();
    for &start in adj.keys() {
        if visited.contains(start) {
            continue;
        }
        let mut stack: Vec<(&str, Vec<&str>)> = vec![(start, vec![start])];
        while let Some((node, path)) = stack.pop() {
            visited.insert(node);
            if let Some(nexts) = adj.get(node) {
                for &next in nexts {
                    if let Some(pos) = path.iter().position(|&p| p == next) {
                        let mut cycle: Vec<&str> = path[pos..].to_vec();
                        cycle.push(next);
                        let rendered = cycle.join(" -> ");
                        if !cycles.contains(&rendered) {
                            cycles.push(rendered);
                        }
                    } else {
                        let mut p = path.clone();
                        p.push(next);
                        stack.push((next, p));
                    }
                }
            }
        }
    }
    cycles
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SourceFile;

    fn graph(src: &str) -> (LockGraph, Vec<Finding>) {
        let f = SourceFile::parse("crates/serve/src/x.rs".into(), "serve".into(), src);
        let mut out = Vec::new();
        let g = run(&[f], &mut out);
        (g, out)
    }

    #[test]
    fn nested_acquisition_produces_an_edge() {
        let src = "struct S { a: Mutex<u32>, b: Mutex<u32> }\nimpl S {\n    fn f(&self) {\n        let ga = self.a.lock().unwrap();\n        let gb = self.b.lock().unwrap();\n        use_them(ga, gb);\n    }\n}\n";
        let (g, findings) = graph(src);
        assert_eq!(g.nodes, vec!["a".to_string(), "b".to_string()]);
        assert_eq!(g.edges.len(), 1);
        assert_eq!((g.edges[0].0.as_str(), g.edges[0].1.as_str()), ("a", "b"));
        assert!(g.cycles.is_empty());
        assert!(findings.is_empty());
    }

    #[test]
    fn opposite_orders_form_a_cycle() {
        let src = "struct S { a: Mutex<u32>, b: Mutex<u32> }\nimpl S {\n    fn f(&self) {\n        let ga = self.a.lock().unwrap();\n        let gb = self.b.lock().unwrap();\n        go(ga, gb);\n    }\n    fn g(&self) {\n        let gb = self.b.lock().unwrap();\n        let ga = self.a.lock().unwrap();\n        go(ga, gb);\n    }\n}\n";
        let (g, findings) = graph(src);
        assert_eq!(g.cycles.len(), 1, "{g:?}");
        assert!(findings.iter().any(|f| f.rule == "locks/cycle"));
    }

    #[test]
    fn scoped_guard_released_before_second_lock() {
        let src = "struct S { a: Mutex<u32>, b: Mutex<u32> }\nimpl S {\n    fn f(&self) {\n        {\n            let ga = self.a.lock().unwrap();\n            touch(ga);\n        }\n        let gb = self.b.lock().unwrap();\n        touch(gb);\n    }\n}\n";
        let (g, _) = graph(src);
        assert!(g.edges.is_empty(), "{:?}", g.edges);
    }

    #[test]
    fn transient_guard_dies_at_statement_end() {
        let src = "struct S { a: Mutex<u32>, b: Mutex<u32> }\nimpl S {\n    fn f(&self) -> u32 {\n        let n = *self.a.lock().unwrap();\n        let gb = self.b.lock().unwrap();\n        n + *gb\n    }\n}\n";
        let (g, _) = graph(src);
        assert!(g.edges.is_empty(), "{:?}", g.edges);
    }

    #[test]
    fn drop_releases_a_let_bound_guard() {
        let src = "struct S { a: Mutex<u32>, b: Mutex<u32> }\nimpl S {\n    fn f(&self) {\n        let ga = self.a.lock().unwrap();\n        consume(&ga);\n        drop(ga);\n        let gb = self.b.lock().unwrap();\n        consume(&gb);\n    }\n}\n";
        let (g, _) = graph(src);
        assert!(g.edges.is_empty(), "{:?}", g.edges);
    }

    #[test]
    fn self_edge_is_flagged() {
        let src = "struct S { a: Mutex<u32> }\nimpl S {\n    fn f(&self) {\n        let g1 = self.a.lock().unwrap();\n        let g2 = self.a.lock().unwrap();\n        go(g1, g2);\n    }\n}\n";
        let (_, findings) = graph(src);
        assert!(findings.iter().any(|f| f.rule == "locks/self-cycle"));
    }
}
