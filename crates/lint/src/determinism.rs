//! Determinism pass: the answer-path crates (`core`, `search`,
//! `serve`, `plan`) must not iterate hash-ordered containers or
//! compare distances through `PartialOrd` shortcuts.
//!
//! Two rules:
//!
//! * `determinism/map-iteration` — any `.iter()` / `.keys()` /
//!   `.values()` / `.drain()` / `.retain()` / `for … in` over a local
//!   or field whose type mentions `HashMap`/`HashSet`. Keyed lookups
//!   (`get`, `insert`, `remove`, `contains_key`) stay allowed; `BTree*`
//!   containers are ordered and exempt.
//! * `determinism/float-compare` — `partial_cmp` anywhere, and
//!   `<`/`>`/`<=`/`>=` where a `distance` field/ident sits in the
//!   comparison window, unless the line already routes through
//!   `total_cmp` or the audited `ELIMINATION_SLACK` band.
//!
//! Audited sites are exempted either by enclosing-function allowlist
//! (`sanitise_distance`, `better_than`, `ordering`) or by an explicit
//! `// lint:allow(rule) — reason` annotation.

use crate::lexer::TokKind;
use crate::model::{Finding, SourceFile};
use std::collections::BTreeSet;

/// Crates whose non-test code feeds query answers. `plan` qualifies
/// twice over: the planner picks the structure every answer flows
/// through, and the cache replays stored answers verbatim.
pub const ANSWER_PATH_CRATES: &[&str] = &["core", "search", "serve", "plan"];

/// Functions audited by hand; their bodies may compare floats.
const ALLOWED_FNS: &[&str] = &["sanitise_distance", "better_than", "ordering"];

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
];

pub fn run(files: &[SourceFile], findings: &mut Vec<Finding>) {
    for f in files {
        if !ANSWER_PATH_CRATES.contains(&f.crate_name.as_str()) {
            continue;
        }
        let tracked = hash_container_names(f);
        check_map_iteration(f, &tracked, findings);
        check_float_compares(f, findings);
    }
}

/// Collect names bound to `HashMap`/`HashSet` values: typed bindings
/// and fields (`name: … HashMap<…>`), constructor bindings
/// (`let name = HashMap::new()`), plus one step of taint through `let`
/// re-bindings whose initializer mentions a tracked name (catches
/// `let map = self.pending.lock()…`).
fn hash_container_names(f: &SourceFile) -> BTreeSet<String> {
    let toks = &f.tokens;
    let mut tracked: BTreeSet<String> = BTreeSet::new();
    // Pass 1: direct declarations.
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident
            || !(toks[i].text == "HashMap" || toks[i].text == "HashSet")
        {
            continue;
        }
        // Walk back over type syntax to the `name :` or `name =` that
        // introduced this container, bounded to the same statement.
        let mut j = i;
        let mut steps = 0;
        while j > 0 && steps < 24 {
            j -= 1;
            steps += 1;
            let t = &toks[j];
            if t.is_punct(";") || t.is_punct("{") || t.is_punct("}") {
                break;
            }
            if (t.is_punct(":") || t.is_punct("=")) && j > 0 && toks[j - 1].kind == TokKind::Ident {
                let name = &toks[j - 1].text;
                if name != "mut" && name != "let" {
                    tracked.insert(name.clone());
                }
                break;
            }
        }
    }
    // Pass 2: one-step taint through let bindings.
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("let") {
            let mut j = i + 1;
            if j < toks.len() && toks[j].is_ident("mut") {
                j += 1;
            }
            if j < toks.len() && toks[j].kind == TokKind::Ident {
                let bound = toks[j].text.clone();
                // Scan the initializer to the statement end.
                let mut k = j + 1;
                let mut tainted = false;
                while k < toks.len() && !toks[k].is_punct(";") && !toks[k].is_punct("{") {
                    if toks[k].kind == TokKind::Ident && tracked.contains(&toks[k].text) {
                        tainted = true;
                    }
                    k += 1;
                }
                if tainted {
                    tracked.insert(bound);
                }
                i = k;
                continue;
            }
        }
        i += 1;
    }
    tracked
}

fn check_map_iteration(f: &SourceFile, tracked: &BTreeSet<String>, findings: &mut Vec<Finding>) {
    const RULE: &str = "determinism/map-iteration";
    let toks = &f.tokens;
    for i in 0..toks.len() {
        // `name . method (` where name is tracked and method iterates.
        if toks[i].kind == TokKind::Ident
            && tracked.contains(&toks[i].text)
            && i + 2 < toks.len()
            && toks[i + 1].is_punct(".")
            && toks[i + 2].kind == TokKind::Ident
            && ITER_METHODS.contains(&toks[i + 2].text.as_str())
        {
            let line = toks[i].line;
            if f.in_test_code(line) || exempt(f, line, RULE) {
                continue;
            }
            findings.push(Finding::new(
                &f.rel,
                line,
                RULE,
                format!(
                    "iteration over hash-ordered `{}` via `.{}()` — order is \
                     nondeterministic; use a BTree container, sort first, or \
                     justify with `lint:allow(map-iteration)`",
                    toks[i].text,
                    toks[i + 2].text
                ),
            ));
        }
        // `for pat in [&[mut]] name` where name is tracked.
        if toks[i].is_ident("in") {
            let mut j = i + 1;
            while j < toks.len() && (toks[j].is_punct("&") || toks[j].is_ident("mut")) {
                j += 1;
            }
            if j < toks.len()
                && toks[j].kind == TokKind::Ident
                && tracked.contains(&toks[j].text)
                && !(j + 1 < toks.len() && toks[j + 1].is_punct("."))
            {
                let line = toks[j].line;
                if f.in_test_code(line) || exempt(f, line, RULE) {
                    continue;
                }
                findings.push(Finding::new(
                    &f.rel,
                    line,
                    RULE,
                    format!(
                        "`for` loop over hash-ordered `{}` — order is \
                         nondeterministic on the answer path",
                        toks[j].text
                    ),
                ));
            }
        }
    }
}

fn check_float_compares(f: &SourceFile, findings: &mut Vec<Finding>) {
    const RULE: &str = "determinism/float-compare";
    let toks = &f.tokens;
    for i in 0..toks.len() {
        let line = toks[i].line;
        if toks[i].is_ident("partial_cmp") {
            if f.in_test_code(line) || exempt(f, line, RULE) {
                continue;
            }
            findings.push(Finding::new(
                &f.rel,
                line,
                RULE,
                "`partial_cmp` on the answer path — NaN-incomparable values break \
                 total ordering; use `f64::total_cmp` (or justify with \
                 `lint:allow(float-compare)`)"
                    .to_string(),
            ));
            continue;
        }
        let is_cmp = toks[i].is_punct("<")
            || toks[i].is_punct(">")
            || toks[i].is_punct("<=")
            || toks[i].is_punct(">=");
        if !is_cmp {
            continue;
        }
        // Is a distance value in the comparison window? Look ±4
        // tokens for a `distance` ident used as a value (field access
        // or local) — `fn distance(`/`.distance(` declarations and
        // calls are not values, and generic bounds like
        // `D: Distance<S>>` put `>` puncts right next to them.
        let lo = i.saturating_sub(4);
        let hi = (i + 5).min(toks.len());
        let distance_near = (lo..hi).any(|j| {
            toks[j].kind == TokKind::Ident
                && toks[j].text == "distance"
                && !(j > 0 && toks[j - 1].is_ident("fn"))
                && !toks.get(j + 1).is_some_and(|n| n.is_punct("("))
        });
        if !distance_near {
            continue;
        }
        if f.in_test_code(line) || exempt(f, line, RULE) {
            continue;
        }
        // Audited escape hatches on the same source line.
        let text = f
            .lines
            .get((line - 1) as usize)
            .map(String::as_str)
            .unwrap_or("");
        if text.contains("ELIMINATION_SLACK") || text.contains("total_cmp") {
            continue;
        }
        findings.push(Finding::new(
            &f.rel,
            line,
            RULE,
            format!(
                "raw `{}` comparison involving a distance value — ties and NaN \
                 ordering are platform/NaN-dependent; compare via \
                 `f64::total_cmp` or the audited slack band",
                toks[i].text
            ),
        ));
    }
}

/// Allowlisted enclosing fn, or explicit `lint:allow` annotation.
fn exempt(f: &SourceFile, line: u32, rule: &str) -> bool {
    if let Some(name) = f.enclosing_fn(line) {
        if ALLOWED_FNS.contains(&name) {
            return true;
        }
    }
    f.allowed(line, rule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SourceFile;

    fn run_on(crate_name: &str, src: &str) -> Vec<Finding> {
        let f = SourceFile::parse("crates/x/src/lib.rs".into(), crate_name.into(), src);
        let mut out = Vec::new();
        run(&[f], &mut out);
        out
    }

    #[test]
    fn map_iteration_is_flagged_in_answer_path_crates() {
        let src = "use std::collections::HashMap;\nfn f(m: &HashMap<u32, u32>) {\n    for (k, v) in m.iter() { use_it(k, v); }\n}\n";
        let out = run_on("search", src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "determinism/map-iteration");
        assert_eq!(out[0].line, 3);
    }

    #[test]
    fn keyed_lookup_is_allowed() {
        let src = "use std::collections::HashMap;\nfn f(m: &HashMap<u32, u32>) -> Option<&u32> {\n    m.get(&1)\n}\n";
        assert!(run_on("serve", src).is_empty());
    }

    #[test]
    fn taint_through_lock_guard_is_caught() {
        let src = "struct S { pending: Mutex<HashMap<u64, u64>> }\nimpl S {\n    fn f(&self) {\n        let mut map = self.pending.lock().unwrap();\n        for (id, tx) in map.drain() { go(id, tx); }\n    }\n}\n";
        let out = run_on("serve", src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 5);
    }

    #[test]
    fn allow_annotation_suppresses() {
        let src = "struct S { pending: Mutex<HashMap<u64, u64>> }\nimpl S {\n    fn f(&self) {\n        let mut map = self.pending.lock().unwrap();\n        // lint:allow(map-iteration) — every entry gets the same error\n        for (id, tx) in map.drain() { go(id, tx); }\n    }\n}\n";
        assert!(run_on("serve", src).is_empty());
    }

    #[test]
    fn non_answer_path_crates_are_skipped() {
        let src = "use std::collections::HashMap;\nfn f(m: &HashMap<u32, u32>) {\n    for k in m.keys() { go(k); }\n}\n";
        assert!(run_on("stats", src).is_empty());
    }

    #[test]
    fn partial_cmp_is_flagged_outside_allowlist() {
        let src = "fn worse(a: f64, b: f64) -> bool {\n    a.partial_cmp(&b).is_some()\n}\n";
        let out = run_on("core", src);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "determinism/float-compare");
    }

    #[test]
    fn allowlisted_fn_may_compare() {
        let src = "fn better_than(a: f64, b: f64) -> bool {\n    a.partial_cmp(&b) == Some(core::cmp::Ordering::Less)\n}\n";
        assert!(run_on("core", src).is_empty());
    }

    #[test]
    fn distance_relational_compare_is_flagged() {
        let src = "fn prune(nb: &Neighbour, r: f64) -> bool {\n    nb.distance < r\n}\n";
        let out = run_on("search", src);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "determinism/float-compare");
    }

    #[test]
    fn slack_band_compare_is_exempt() {
        let src = "fn prune(d: f64, r: f64) -> bool {\n    let distance = d;\n    distance < r + ELIMINATION_SLACK\n}\n";
        assert!(run_on("search", src).is_empty());
    }

    #[test]
    fn test_code_is_skipped() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t(m: &std::collections::HashMap<u32, u32>) {\n        for k in m.keys() { go(k); }\n    }\n}\n";
        assert!(run_on("search", src).is_empty());
    }
}
