//! `cned-lint` — workspace invariant analyzer.
//!
//! Four pass families over `crates/*/src` (see the module docs for the
//! precise rules):
//!
//! 1. **determinism** — no hash-ordered iteration or raw float
//!    comparison on the answer path (`core`, `search`, `serve`);
//! 2. **unsafe audit** — `// SAFETY:` comments on every unsafe site,
//!    `is_x86_feature_detected!` guards on every `#[target_feature]`
//!    call, `#![forbid(unsafe_code)]` / `#![deny(unsafe_op_in_unsafe_fn)]`
//!    crate hygiene;
//! 3. **wire-schema fingerprint** — frame kinds, versions, and error
//!    codes vs the committed golden (`--bless` to regenerate);
//! 4. **lock-order** — the serve crate's mutex acquisition graph must
//!    be acyclic.
//!
//! Usage: `cned-lint [--check] [--bless] [--json] [--root DIR]`
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

#![forbid(unsafe_code)]

mod determinism;
mod lexer;
mod locks;
mod model;
mod report;
mod schema;
mod unsafety;

use std::path::PathBuf;
use std::process::ExitCode;

struct Opts {
    bless: bool,
    json: bool,
    root: PathBuf,
}

fn parse_args() -> Result<Opts, String> {
    let mut bless = false;
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => {} // the default mode; accepted for CI clarity
            "--bless" => bless = true,
            "--json" => json = true,
            "--root" => {
                let dir = args.next().ok_or("--root requires a directory")?;
                root = Some(PathBuf::from(dir));
            }
            "--help" | "-h" => {
                return Err("usage: cned-lint [--check] [--bless] [--json] [--root DIR]".into())
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    let root = match root {
        Some(r) => r,
        None => default_root(),
    };
    if !root.join("crates").is_dir() {
        return Err(format!(
            "workspace root {} has no crates/ directory (use --root)",
            root.display()
        ));
    }
    Ok(Opts { bless, json, root })
}

/// The cwd when it looks like the workspace root, else the root
/// relative to this crate's manifest (works under `cargo run -p`).
fn default_root() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    if cwd.join("crates").is_dir() {
        return cwd;
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or(cwd)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("cned-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    let files = match model::load_workspace(&opts.root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cned-lint: loading workspace: {e}");
            return ExitCode::from(2);
        }
    };

    let mut findings = Vec::new();
    determinism::run(&files, &mut findings);
    unsafety::run(&files, &mut findings);
    let graph = locks::run(&files, &mut findings);

    let schema_status;
    match schema::extract(&files) {
        Some(sch) => {
            if opts.bless {
                match schema::bless(&opts.root, &sch) {
                    Ok(msg) => {
                        schema_status = msg.clone();
                        println!("cned-lint: {msg}");
                    }
                    Err(msg) => {
                        eprintln!("cned-lint: {msg}");
                        return ExitCode::from(1);
                    }
                }
            } else {
                schema_status = match schema::check(&opts.root, &sch, &mut findings) {
                    schema::Verdict::Clean => "ok".to_string(),
                    schema::Verdict::NoGolden => "missing golden".to_string(),
                    schema::Verdict::NeedsBless { changed } => {
                        format!("needs --bless ({} change(s))", changed.len())
                    }
                    schema::Verdict::UnversionedChange { changed } => {
                        format!("UNVERSIONED CHANGE ({} line(s))", changed.len())
                    }
                };
            }
        }
        None => {
            schema_status = "wire.rs/error.rs not found".to_string();
            findings.push(model::Finding::new(
                "crates/serve/src/wire.rs",
                1,
                "schema/wire-fingerprint",
                "could not locate wire.rs / error.rs to fingerprint".to_string(),
            ));
        }
    }

    if opts.json {
        println!("{}", report::json(&findings, &graph, &schema_status));
    } else {
        print!("{}", report::human(&findings, &graph, &schema_status));
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
