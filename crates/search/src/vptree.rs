//! Vantage-point tree — a second triangle-inequality index, included
//! to back the paper's §4.3 remark that "in the literature there
//! exist other methods that also use the metric properties of the
//! distances to accelerate the search, and we argue that our results
//! will apply in similar cases".
//!
//! Construction recursively picks a *vantage point*, computes the
//! distance from it to every remaining element, and splits at the
//! median: the "inside" child holds elements within the median
//! radius, the "outside" child the rest (`O(n log n)` distance
//! computations). A query descends the tree, pruning a child whenever
//! the triangle inequality proves it cannot contain anything closer
//! than the current best:
//!
//! * skip *inside* when `d(q, vp) − best > radius`;
//! * skip *outside* when `radius − d(q, vp) > best`.
//!
//! Like LAESA, correctness requires a metric; with a non-metric the
//! answer may be approximate. Unlike LAESA there is no per-query
//! `O(n)` bookkeeping — the trade-off the paper's discussion of \[1\]
//! alludes to.

use crate::error::SearchError;
use crate::index::{MetricIndex, QueryOptions};
use crate::tombstone::TombstoneSet;
use crate::{sanitise_distance, Neighbour, SearchStats};
use cned_core::metric::{Distance, PreparedQuery};
use cned_core::Symbol;

struct Node {
    /// Index into the database.
    vantage: usize,
    /// Median distance from the vantage point to its subtree.
    radius: f64,
    inside: Option<Box<Node>>,
    outside: Option<Box<Node>>,
}

/// A vantage-point tree over an owned database.
pub struct VpTree<S: Symbol> {
    db: Vec<Vec<S>>,
    root: Option<Box<Node>>,
    preprocessing_computations: u64,
    tombstones: TombstoneSet,
}

impl<S: Symbol> VpTree<S> {
    /// Build the tree. Vantage points are taken deterministically
    /// (first element of each partition), so builds are reproducible.
    pub fn build<D: Distance<S> + ?Sized>(db: Vec<Vec<S>>, dist: &D) -> VpTree<S> {
        let mut computations = 0u64;
        let mut indices: Vec<usize> = (0..db.len()).collect();
        let root = Self::build_node(&db, &mut indices[..], dist, &mut computations);
        VpTree {
            db,
            root,
            preprocessing_computations: computations,
            tombstones: TombstoneSet::new(),
        }
    }

    fn build_node<D: Distance<S> + ?Sized>(
        db: &[Vec<S>],
        indices: &mut [usize],
        dist: &D,
        computations: &mut u64,
    ) -> Option<Box<Node>> {
        let (&mut vantage, rest) = indices.split_first_mut()?;
        if rest.is_empty() {
            return Some(Box::new(Node {
                vantage,
                radius: 0.0,
                inside: None,
                outside: None,
            }));
        }
        // Distances from the vantage point to the rest.
        let mut with_d: Vec<(usize, f64)> = rest
            .iter()
            .map(|&i| {
                *computations += 1;
                (i, dist.distance(&db[vantage], &db[i]))
            })
            .collect();
        with_d.sort_by(|a, b| a.1.total_cmp(&b.1));
        let mid = with_d.len() / 2;
        // Median radius: elements with d <= radius go inside.
        let radius = with_d[mid].1;
        let split = with_d.partition_point(|&(_, d)| d <= radius);
        let (ins, outs) = with_d.split_at(split);

        let mut ins_idx: Vec<usize> = ins.iter().map(|&(i, _)| i).collect();
        let mut out_idx: Vec<usize> = outs.iter().map(|&(i, _)| i).collect();
        let inside = Self::build_node(db, &mut ins_idx[..], dist, computations);
        let outside = Self::build_node(db, &mut out_idx[..], dist, computations);
        Some(Box::new(Node {
            vantage,
            radius,
            inside,
            outside,
        }))
    }

    /// The database the tree was built over.
    pub fn database(&self) -> &[Vec<S>] {
        &self.db
    }

    /// Distance computations spent building the tree.
    pub fn preprocessing_computations(&self) -> u64 {
        self.preprocessing_computations
    }

    /// Nearest neighbour of `query`.
    #[deprecated(
        since = "0.2.0",
        note = "use `MetricIndex::nn` with `QueryOptions` (or the `cned::Database` facade)"
    )]
    pub fn nn<D: Distance<S> + ?Sized>(
        &self,
        query: &[S],
        dist: &D,
    ) -> Option<(Neighbour, SearchStats)> {
        if self.db.is_empty() {
            return None;
        }
        let prepared = dist.prepare(query);
        let (found, stats) = self.nn_prepared(&*prepared, f64::INFINITY);
        found.map(|nb| (nb, stats))
    }

    /// Nearest neighbour **within `radius`** of an already-prepared
    /// query (`None` when nothing lies within it; statistics returned
    /// either way). Ties resolve to the smallest database index, the
    /// canonical ordering shared with every other backend.
    pub fn nn_prepared(
        &self,
        prepared: &dyn PreparedQuery<S>,
        radius: f64,
    ) -> (Option<Neighbour>, SearchStats) {
        let mut best = Neighbour {
            index: usize::MAX,
            distance: radius,
        };
        let mut computations = 0u64;
        if let Some(root) = self.root.as_ref() {
            self.search(root, prepared, &mut best, &mut computations);
        }
        let found = (best.index != usize::MAX).then_some(best);
        (
            found,
            SearchStats {
                distance_computations: computations,
            },
        )
    }

    fn search(
        &self,
        node: &Node,
        prepared: &dyn PreparedQuery<S>,
        best: &mut Neighbour,
        computations: &mut u64,
    ) {
        // Vantage distances stay exact: their values drive the descent
        // decisions, not just the incumbent comparison.
        let d = sanitise_distance(prepared.distance_to(&self.db[node.vantage]));
        *computations += 1;
        let candidate = Neighbour {
            index: node.vantage,
            distance: d,
        };
        if candidate.better_than(best) {
            *best = candidate;
        }
        // Visit the more promising side first; prune with the triangle
        // inequality against the (possibly improved) best. The slack
        // mirrors LAESA/AESA elimination: float rounding must only ever
        // *admit* extra subtrees, never drop an exact tie.
        let (first, second) = if d <= node.radius {
            (&node.inside, &node.outside)
        } else {
            (&node.outside, &node.inside)
        };
        if let Some(child) = first {
            // The first side always intersects the best-ball when we
            // are on its side of the boundary.
            self.search(child, prepared, best, computations);
        }
        if let Some(child) = second {
            let crosses = if d <= node.radius {
                // Second = outside: reachable iff d + best >= radius.
                d + best.distance >= node.radius - crate::ELIMINATION_SLACK
            } else {
                // Second = inside: reachable iff d - best <= radius.
                d - best.distance <= node.radius + crate::ELIMINATION_SLACK
            };
            if crosses {
                self.search(child, prepared, best, computations);
            }
        }
    }

    /// The `k` nearest neighbours **within `radius`** of an
    /// already-prepared query, in canonical order. Pruning uses the
    /// running `k`-th-best distance (the admission radius while fewer
    /// than `k` are known).
    pub fn knn_prepared(
        &self,
        prepared: &dyn PreparedQuery<S>,
        k: usize,
        radius: f64,
    ) -> (Vec<Neighbour>, SearchStats) {
        let mut best: Vec<Neighbour> = Vec::with_capacity(k + 1);
        let mut computations = 0u64;
        if k > 0 {
            if let Some(root) = self.root.as_ref() {
                self.search_knn(root, prepared, k, radius, &mut best, &mut computations);
            }
        }
        (
            best,
            SearchStats {
                distance_computations: computations,
            },
        )
    }

    fn search_knn(
        &self,
        node: &Node,
        prepared: &dyn PreparedQuery<S>,
        k: usize,
        radius: f64,
        best: &mut Vec<Neighbour>,
        computations: &mut u64,
    ) {
        let kth = |best: &Vec<Neighbour>| -> f64 {
            if best.len() < k {
                radius
            } else {
                best[k - 1].distance
            }
        };
        let d = sanitise_distance(prepared.distance_to(&self.db[node.vantage]));
        *computations += 1;
        if d.is_finite() && d <= radius {
            let candidate = Neighbour {
                index: node.vantage,
                distance: d,
            };
            let pos = best
                .binary_search_by(|nb| nb.ordering(&candidate))
                .unwrap_or_else(|e| e);
            best.insert(pos, candidate);
            best.truncate(k);
        }
        let (first, second) = if d <= node.radius {
            (&node.inside, &node.outside)
        } else {
            (&node.outside, &node.inside)
        };
        if let Some(child) = first {
            self.search_knn(child, prepared, k, radius, best, computations);
        }
        if let Some(child) = second {
            let bound = kth(best);
            let crosses = if d <= node.radius {
                d + bound >= node.radius - crate::ELIMINATION_SLACK
            } else {
                d - bound <= node.radius + crate::ELIMINATION_SLACK
            };
            if crosses {
                self.search_knn(child, prepared, k, radius, best, computations);
            }
        }
    }

    /// Every element **within `radius`** (inclusive) of an
    /// already-prepared query, in canonical order. A subtree is
    /// visited only when the query ball can intersect its region:
    /// *inside* requires `d(q, vp) − radius <= node.radius`, *outside*
    /// requires `d(q, vp) + radius >= node.radius`.
    pub fn range_prepared(
        &self,
        prepared: &dyn PreparedQuery<S>,
        radius: f64,
    ) -> (Vec<Neighbour>, SearchStats) {
        let mut hits: Vec<Neighbour> = Vec::new();
        let mut computations = 0u64;
        if let Some(root) = self.root.as_ref() {
            self.search_range(root, prepared, radius, &mut hits, &mut computations);
        }
        hits.sort_by(|a, b| a.ordering(b));
        (
            hits,
            SearchStats {
                distance_computations: computations,
            },
        )
    }

    fn search_range(
        &self,
        node: &Node,
        prepared: &dyn PreparedQuery<S>,
        radius: f64,
        hits: &mut Vec<Neighbour>,
        computations: &mut u64,
    ) {
        let d = sanitise_distance(prepared.distance_to(&self.db[node.vantage]));
        *computations += 1;
        if d.is_finite() && d <= radius {
            hits.push(Neighbour {
                index: node.vantage,
                distance: d,
            });
        }
        if let Some(child) = &node.inside {
            // Anything inside is within node.radius of the vantage
            // point, so its distance to q is at least d - node.radius.
            if d - radius <= node.radius + crate::ELIMINATION_SLACK {
                self.search_range(child, prepared, radius, hits, computations);
            }
        }
        if let Some(child) = &node.outside {
            // Anything outside is beyond node.radius of the vantage
            // point, so its distance to q exceeds node.radius - d.
            if d + radius >= node.radius - crate::ELIMINATION_SLACK {
                self.search_range(child, prepared, radius, hits, computations);
            }
        }
    }
}

impl<S: Symbol> MetricIndex<S> for VpTree<S> {
    fn len(&self) -> usize {
        self.db.len()
    }

    fn backend_name(&self) -> &'static str {
        "vptree"
    }

    fn item(&self, i: usize) -> Option<&[S]> {
        self.db.get(i).map(Vec::as_slice)
    }

    fn nn(
        &self,
        query: &[S],
        dist: &dyn Distance<S>,
        opts: &QueryOptions,
    ) -> Result<(Option<Neighbour>, SearchStats), SearchError> {
        if self.db.is_empty() {
            return Err(SearchError::EmptyDatabase);
        }
        let radius = opts.checked_radius()?;
        // Prepared once per query (Myers Peq cache for d_E); every
        // vantage-point comparison during the descent reuses it.
        let prepared = dist.prepare(query);
        if self.tombstones.is_empty() {
            let (found, stats) = self.nn_prepared(&*prepared, radius);
            opts.record(stats);
            return Ok((found, stats));
        }
        // Over-fetch: at most T of the top 1+T answers can be dead.
        let want = 1 + self.tombstones.count();
        let (hits, stats) = self.knn_prepared(&*prepared, want, radius);
        let found = self.tombstones.first_live(&hits);
        opts.record(stats);
        Ok((found, stats))
    }

    fn knn(
        &self,
        query: &[S],
        dist: &dyn Distance<S>,
        opts: &QueryOptions,
    ) -> Result<(Vec<Neighbour>, SearchStats), SearchError> {
        if self.db.is_empty() {
            return Err(SearchError::EmptyDatabase);
        }
        let radius = opts.checked_radius()?;
        let prepared = dist.prepare(query);
        let want = if self.tombstones.is_empty() {
            opts.k
        } else {
            opts.k.saturating_add(self.tombstones.count())
        };
        let (mut best, stats) = self.knn_prepared(&*prepared, want, radius);
        self.tombstones.retain_live(&mut best);
        best.truncate(opts.k);
        opts.record(stats);
        Ok((best, stats))
    }

    fn range(
        &self,
        query: &[S],
        dist: &dyn Distance<S>,
        opts: &QueryOptions,
    ) -> Result<(Vec<Neighbour>, SearchStats), SearchError> {
        if self.db.is_empty() {
            return Err(SearchError::EmptyDatabase);
        }
        let radius = opts.checked_radius()?;
        let prepared = dist.prepare(query);
        let (mut hits, stats) = self.range_prepared(&*prepared, radius);
        self.tombstones.retain_live(&mut hits);
        opts.record(stats);
        Ok((hits, stats))
    }

    fn delete(&mut self, index: usize) -> Result<bool, SearchError> {
        if index >= self.db.len() {
            return Ok(false);
        }
        Ok(self.tombstones.insert(index))
    }

    fn deleted(&self) -> usize {
        self.tombstones.count()
    }

    fn is_deleted(&self, i: usize) -> bool {
        self.tombstones.contains(i)
    }
}

#[cfg(test)]
mod tests {
    // These tests pin the deprecated forwarders' behaviour (they share
    // cores with the MetricIndex path) until the legacy surface is
    // removed.
    #![allow(deprecated)]

    use super::*;
    use crate::linear::linear_nn;
    use cned_core::contextual::heuristic::ContextualHeuristic;
    use cned_core::levenshtein::Levenshtein;

    fn corpus(n: usize, len: usize, alphabet: u8, seed: u64) -> Vec<Vec<u8>> {
        let mut state = seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9)
            | 1;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        (0..n)
            .map(|_| {
                let l = 1 + (rng() % len as u64) as usize;
                (0..l)
                    .map(|_| b'a' + (rng() % alphabet as u64) as u8)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn empty_db_returns_none() {
        let t: VpTree<u8> = VpTree::build(Vec::new(), &Levenshtein);
        assert!(t.nn(b"abc", &Levenshtein).is_none());
    }

    #[test]
    fn singleton_db() {
        let t = VpTree::build(vec![b"hola".to_vec()], &Levenshtein);
        let (nn, stats) = t.nn(b"ha", &Levenshtein).unwrap();
        assert_eq!(nn.index, 0);
        assert_eq!(nn.distance, 2.0);
        assert_eq!(stats.distance_computations, 1);
    }

    #[test]
    fn matches_linear_scan_for_levenshtein() {
        let db = corpus(200, 10, 3, 71);
        let queries = corpus(50, 10, 3, 711);
        let t = VpTree::build(db.clone(), &Levenshtein);
        for q in &queries {
            let (lin, _) = linear_nn(&db, q, &Levenshtein).unwrap();
            let (nn, _) = t.nn(q, &Levenshtein).unwrap();
            assert_eq!(nn.distance, lin.distance, "query {q:?}");
        }
    }

    #[test]
    fn matches_linear_scan_for_contextual_heuristic() {
        let db = corpus(150, 9, 3, 73);
        let queries = corpus(30, 9, 3, 731);
        let t = VpTree::build(db.clone(), &ContextualHeuristic);
        for q in &queries {
            let (lin, _) = linear_nn(&db, q, &ContextualHeuristic).unwrap();
            let (nn, _) = t.nn(q, &ContextualHeuristic).unwrap();
            assert!((nn.distance - lin.distance).abs() < 1e-9, "query {q:?}");
        }
    }

    #[test]
    fn prunes_relative_to_exhaustive() {
        let db = corpus(400, 10, 3, 79);
        let queries = corpus(30, 10, 3, 791);
        let t = VpTree::build(db.clone(), &Levenshtein);
        let total: u64 = queries
            .iter()
            .map(|q| t.nn(q, &Levenshtein).unwrap().1.distance_computations)
            .sum();
        let avg = total as f64 / queries.len() as f64;
        assert!(
            avg < db.len() as f64 * 0.9,
            "VP-tree should prune: avg {avg} vs n {}",
            db.len()
        );
    }

    #[test]
    fn preprocessing_is_n_log_n_ish() {
        let db = corpus(128, 8, 3, 83);
        let t = VpTree::build(db, &Levenshtein);
        let c = t.preprocessing_computations();
        // Between n-1 (degenerate chain would be worse) and n^2/2.
        assert!(c >= 127);
        assert!(c < 128 * 64, "preprocessing {c} too close to quadratic");
    }

    #[test]
    fn member_probe_finds_itself() {
        let db = corpus(100, 8, 3, 89);
        let probe = db[33].clone();
        let t = VpTree::build(db, &Levenshtein);
        let (nn, _) = t.nn(&probe, &Levenshtein).unwrap();
        assert_eq!(nn.distance, 0.0);
    }

    #[test]
    fn knn_and_range_match_linear_oracles() {
        let db = corpus(150, 9, 3, 97);
        let queries = corpus(20, 9, 3, 971);
        let t = VpTree::build(db.clone(), &Levenshtein);
        for q in &queries {
            let prepared = cned_core::metric::Distance::<u8>::prepare(&Levenshtein, q);
            let mut all: Vec<(usize, f64)> = db
                .iter()
                .enumerate()
                .map(|(i, item)| (i, prepared.distance_to(item)))
                .collect();
            all.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            let (knn, _) = t.knn(q, &Levenshtein, &QueryOptions::new().k(5)).unwrap();
            let got: Vec<(usize, f64)> = knn.iter().map(|n| (n.index, n.distance)).collect();
            assert_eq!(got, all[..5].to_vec(), "query {q:?}");
            for radius in [0.0, 1.0, 3.0] {
                let oracle: Vec<(usize, f64)> =
                    all.iter().copied().filter(|&(_, d)| d <= radius).collect();
                let (hits, stats) = t
                    .range(q, &Levenshtein, &QueryOptions::new().radius(radius))
                    .unwrap();
                let got: Vec<(usize, f64)> = hits.iter().map(|n| (n.index, n.distance)).collect();
                assert_eq!(got, oracle, "query {q:?} radius {radius}");
                assert!(stats.distance_computations <= db.len() as u64);
            }
        }
    }

    #[test]
    fn nn_tie_breaks_to_smallest_index_with_duplicates() {
        // Duplicated strings guarantee ties; the tree's visit order is
        // structural, so agreement with the linear scan proves the
        // canonical (distance, index) tie-break, not luck.
        let mut db = corpus(60, 6, 2, 101);
        let dups: Vec<Vec<u8>> = db.iter().take(10).cloned().collect();
        db.extend(dups);
        let t = VpTree::build(db.clone(), &Levenshtein);
        for q in corpus(15, 6, 2, 1011) {
            let (lin, _) = linear_nn(&db, &q, &Levenshtein).unwrap();
            let (found, _) = MetricIndex::nn(&t, &q, &Levenshtein, &QueryOptions::new()).unwrap();
            let nn = found.unwrap();
            assert_eq!(nn.index, lin.index, "query {q:?}");
            assert_eq!(nn.distance.to_bits(), lin.distance.to_bits());
        }
    }

    #[test]
    fn radius_seed_excludes_far_neighbours() {
        let db = corpus(80, 8, 3, 103);
        let t = VpTree::build(db.clone(), &Levenshtein);
        for q in corpus(8, 8, 3, 1031) {
            let prepared = cned_core::metric::Distance::<u8>::prepare(&Levenshtein, &q);
            let (nb, _) = t.nn_prepared(&*prepared, f64::INFINITY);
            let nb = nb.unwrap();
            let (at, _) = t.nn_prepared(&*prepared, nb.distance);
            assert_eq!(at.unwrap().index, nb.index);
            if nb.distance > 0.0 {
                let (below, _) = t.nn_prepared(&*prepared, nb.distance - 0.5);
                assert!(below.is_none(), "query {q:?}");
            }
        }
    }
}
