//! The unified query surface: one object-safe trait every backend
//! implements.
//!
//! The paper's point is that *metric-space machinery is generic in the
//! metric*: AESA, LAESA, vantage-point trees and plain scans all
//! answer the same questions — nearest neighbour, k nearest, everything
//! within a radius — from the same two ingredients (a database and a
//! [`Distance`]). [`MetricIndex`] captures that contract once, so
//! classifiers, serving pipelines and the `cned::Database` facade hold
//! *an index* abstractly (`&dyn MetricIndex<S>` / `Box<dyn …>`) instead
//! of hard-coding a backend enum, and new backends plug in by
//! implementing one trait.
//!
//! Query knobs travel in a [`QueryOptions`] struct instead of
//! positional arguments, and every entry point returns
//! `Result<_, `[`SearchError`]`>` — an empty database or a NaN radius
//! is a typed error, not a panic or a silent `None`.

use crate::error::SearchError;
use crate::parallel::par_map_with;
use crate::{Neighbour, SearchStats, SearchStatsAtomic};
use cned_core::metric::Distance;
use cned_core::Symbol;
use std::sync::Arc;

/// Options shared by every [`MetricIndex`] query.
///
/// Construction is builder-style (`QueryOptions::new().radius(1.5)`);
/// the struct is `#[non_exhaustive]` so new knobs can be added without
/// breaking callers. The defaults reproduce the classic calls: an
/// unbounded nearest-neighbour search over all pivots on the calling
/// thread's default worker pool.
#[non_exhaustive]
#[derive(Debug, Clone)]
pub struct QueryOptions {
    /// Pruning-radius seed (and, for [`MetricIndex::range`], the range
    /// radius itself): only neighbours at distance `<= radius` are
    /// reported. Defaults to `f64::INFINITY` (no constraint). For NN
    /// and k-NN a finite seed acts exactly like an already-known best
    /// at that distance — it can only reject candidates, never change
    /// which in-radius neighbour wins.
    pub radius: f64,
    /// Number of neighbours for [`MetricIndex::knn`] (default 1).
    /// `k == 0` yields an empty result set.
    pub k: usize,
    /// Computation budget for pivot-table backends: only the first `n`
    /// pivots are used for lower bounds, the rest are treated as plain
    /// candidates. This replaces the old `Laesa::nn_limited` — greedy
    /// max-sum selection is incremental, so a prefix of a large pivot
    /// set behaves exactly like a dedicated smaller build. The sharded
    /// backend applies the budget to **each shard's** pivot set;
    /// backends without pivots ignore it. `None` (default) uses every
    /// pivot.
    pub pivot_budget: Option<usize>,
    /// Worker-thread override for the `*_batch` entry points (`None`
    /// defers to [`crate::parallel::num_threads`], i.e. the
    /// `CNED_THREADS`/auto default). Results are bit-identical for any
    /// worker count; this knob only caps fan-out.
    pub threads: Option<usize>,
    /// Optional sink that also receives every query's [`SearchStats`]
    /// (in addition to the per-query stats in the return value) —
    /// handy for streaming totals out of batch pipelines without
    /// materialising per-query statistics.
    pub stats_sink: Option<Arc<SearchStatsAtomic>>,
}

impl Default for QueryOptions {
    fn default() -> QueryOptions {
        QueryOptions {
            radius: f64::INFINITY,
            k: 1,
            pivot_budget: None,
            threads: None,
            stats_sink: None,
        }
    }
}

impl QueryOptions {
    /// The default options: unbounded radius, `k = 1`, all pivots,
    /// default worker pool, no stats sink.
    pub fn new() -> QueryOptions {
        QueryOptions::default()
    }

    /// Set the pruning/range radius.
    pub fn radius(mut self, radius: f64) -> QueryOptions {
        self.radius = radius;
        self
    }

    /// Set the neighbour count for k-NN queries.
    pub fn k(mut self, k: usize) -> QueryOptions {
        self.k = k;
        self
    }

    /// Limit pivot-table backends to their first `n` pivots.
    pub fn pivot_budget(mut self, n: usize) -> QueryOptions {
        self.pivot_budget = Some(n);
        self
    }

    /// Override the batch worker count.
    pub fn threads(mut self, n: usize) -> QueryOptions {
        self.threads = Some(n);
        self
    }

    /// Stream every query's statistics into `sink` as well.
    pub fn stats_sink(mut self, sink: Arc<SearchStatsAtomic>) -> QueryOptions {
        self.stats_sink = Some(sink);
        self
    }

    /// Validate the radius: `Err(InvalidRadius)` for NaN or negative
    /// values, the radius otherwise. Implementations call this before
    /// touching the database.
    pub fn checked_radius(&self) -> Result<f64, SearchError> {
        if self.radius.is_nan() || self.radius < 0.0 {
            Err(SearchError::InvalidRadius {
                radius: self.radius,
            })
        } else {
            Ok(self.radius)
        }
    }

    /// Fold one query's statistics into the sink, if one is set.
    /// Implementations call this exactly once per answered query.
    pub fn record(&self, stats: SearchStats) {
        if let Some(sink) = &self.stats_sink {
            sink.add(stats);
        }
    }
}

/// An immutable nearest-neighbour index over a database of strings,
/// queryable through any [`Distance`].
///
/// # Contract
///
/// Shared by every implementation (and pinned by the cross-backend
/// agreement suite):
///
/// * **Canonical ordering** — results are ordered (and ties broken) by
///   ascending `(distance, database index)`; see
///   [`Neighbour::ordering`]. All backends return bit-identical
///   neighbours and distances for a metric distance.
/// * **Radius admission is inclusive** — a neighbour at exactly
///   `opts.radius` is reported.
/// * **Typed errors** — an empty index yields
///   [`SearchError::EmptyDatabase`]; a NaN or negative radius yields
///   [`SearchError::InvalidRadius`]. No query entry point panics in
///   release builds.
/// * **Statistics** — `SearchStats::distance_computations` counts real
///   distance evaluations for the query (preprocessing excluded), and
///   is deterministic for a given (index, query, options).
///
/// The trait is object-safe: serving layers and classifiers consume
/// `&dyn MetricIndex<S>`, and the provided `*_batch` methods fan out
/// across worker threads behind the same vtable.
///
/// The caller supplies the distance per query; it **must** be the one
/// the index was built with (pivot rows / matrices / tree radii store
/// its values). The `cned::Database` facade pairs the two so this
/// footgun disappears at the application surface.
pub trait MetricIndex<S: Symbol>: Send + Sync {
    /// Number of items in the index.
    fn len(&self) -> usize;

    /// Whether the index holds no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Short backend label (`"linear"`, `"laesa"`, …) for reports and
    /// benchmarks.
    fn backend_name(&self) -> &'static str;

    /// The item at index `i`, or `None` when out of range. Result
    /// indices from queries address this accessor.
    fn item(&self, i: usize) -> Option<&[S]>;

    /// Nearest neighbour of `query` within `opts.radius`.
    ///
    /// `Ok((None, stats))` when the database holds nothing within the
    /// radius (only possible with a finite radius seed); statistics
    /// are returned either way.
    fn nn(
        &self,
        query: &[S],
        dist: &dyn Distance<S>,
        opts: &QueryOptions,
    ) -> Result<(Option<Neighbour>, SearchStats), SearchError>;

    /// The `opts.k` nearest neighbours of `query` within
    /// `opts.radius`, in canonical order. May return fewer than `k`
    /// entries when fewer elements lie within the radius.
    fn knn(
        &self,
        query: &[S],
        dist: &dyn Distance<S>,
        opts: &QueryOptions,
    ) -> Result<(Vec<Neighbour>, SearchStats), SearchError>;

    /// Every item within `opts.radius` of `query` (inclusive), in
    /// canonical order — the one genuinely new operation of the
    /// unified API. Pivot-table backends answer it with
    /// triangle-inequality pruning: a candidate whose lower bound
    /// exceeds the radius is never evaluated.
    fn range(
        &self,
        query: &[S],
        dist: &dyn Distance<S>,
        opts: &QueryOptions,
    ) -> Result<(Vec<Neighbour>, SearchStats), SearchError>;

    /// [`MetricIndex::nn`] for a batch of queries, parallelised across
    /// queries ([`QueryOptions::threads`] caps the fan-out). Results
    /// are in input order and bit-identical to one-by-one calls.
    fn nn_batch(
        &self,
        queries: &[Vec<S>],
        dist: &dyn Distance<S>,
        opts: &QueryOptions,
    ) -> Result<Vec<(Option<Neighbour>, SearchStats)>, SearchError> {
        if self.is_empty() {
            return Err(SearchError::EmptyDatabase);
        }
        opts.checked_radius()?;
        par_map_with(opts.threads, queries.len(), |q| {
            self.nn(&queries[q], dist, opts)
        })
        .into_iter()
        .collect()
    }

    /// [`MetricIndex::knn`] for a batch of queries, parallelised
    /// across queries.
    fn knn_batch(
        &self,
        queries: &[Vec<S>],
        dist: &dyn Distance<S>,
        opts: &QueryOptions,
    ) -> Result<Vec<(Vec<Neighbour>, SearchStats)>, SearchError> {
        if self.is_empty() {
            return Err(SearchError::EmptyDatabase);
        }
        opts.checked_radius()?;
        par_map_with(opts.threads, queries.len(), |q| {
            self.knn(&queries[q], dist, opts)
        })
        .into_iter()
        .collect()
    }

    /// Downcast to the mutable insert surface, when this backend
    /// supports incremental inserts (`None` otherwise — the default).
    ///
    /// This is what lets a serving session own *any* index as a
    /// `Box<dyn MetricIndex<S>>` and still answer `Insert` requests:
    /// insertable backends ([`crate::LinearIndex`], `cned-serve`'s
    /// `ShardedIndex`) override it with `Some(self)`, everything else
    /// reports the insert as a typed
    /// [`SearchError::UnsupportedConfig`] instead of failing to
    /// compile at the session boundary.
    fn as_insertable(&mut self) -> Option<&mut dyn InsertableIndex<S>> {
        None
    }

    /// Logically delete the item at `index` (tombstone it): it stops
    /// appearing in any query answer, but keeps its physical slot so
    /// no surviving item is renumbered. Returns `Ok(true)` when the
    /// item was alive, `Ok(false)` when it was out of range or already
    /// deleted (deletion is idempotent — replaying a delete is safe).
    ///
    /// [`MetricIndex::len`] still reports the *physical* corpus size
    /// (tombstones included) — sequence numbering, WAL replay and
    /// replica accounting all key on physical length. The live count
    /// is `len() - deleted()`. Physical removal is an explicit rebuild
    /// (`Database::vacuum` in the facade).
    ///
    /// The default refuses with [`SearchError::UnsupportedConfig`];
    /// backends with tombstone support override it.
    fn delete(&mut self, index: usize) -> Result<bool, SearchError> {
        let _ = index;
        Err(SearchError::UnsupportedConfig {
            reason: "this backend does not support deletes",
        })
    }

    /// Number of tombstoned (logically deleted) items. Zero for
    /// backends without delete support.
    fn deleted(&self) -> usize {
        0
    }

    /// Whether the item at `i` is tombstoned. `false` for live items,
    /// out-of-range indices, and backends without delete support —
    /// the question "would a query ever return `i`" is what callers
    /// (vacuum rebuilds, serving oracles) actually ask.
    fn is_deleted(&self, i: usize) -> bool {
        let _ = i;
        false
    }

    /// Downcast hook for persistence: backends whose structure
    /// `cned-store` knows how to snapshot (`LinearIndex`, `Laesa`,
    /// `ShardedIndex`) override this with `Some(self)` so
    /// `Database::save` can reach the concrete type behind a
    /// `Box<dyn MetricIndex<S>>`. The default (`None`) marks the
    /// backend as not snapshottable — save reports a typed
    /// [`SearchError::Persistence`] instead of guessing.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

/// Boxed indexes are indexes: lets generic serving code (`cned-serve`
/// sessions, `cned::Database`) hold a `Box<dyn MetricIndex<S>>` where
/// an `I: MetricIndex<S>` is expected, without re-implementing the
/// trait per call site.
impl<S: Symbol, T: MetricIndex<S> + ?Sized> MetricIndex<S> for Box<T> {
    fn len(&self) -> usize {
        (**self).len()
    }

    fn backend_name(&self) -> &'static str {
        (**self).backend_name()
    }

    fn item(&self, i: usize) -> Option<&[S]> {
        (**self).item(i)
    }

    fn nn(
        &self,
        query: &[S],
        dist: &dyn Distance<S>,
        opts: &QueryOptions,
    ) -> Result<(Option<Neighbour>, SearchStats), SearchError> {
        (**self).nn(query, dist, opts)
    }

    fn knn(
        &self,
        query: &[S],
        dist: &dyn Distance<S>,
        opts: &QueryOptions,
    ) -> Result<(Vec<Neighbour>, SearchStats), SearchError> {
        (**self).knn(query, dist, opts)
    }

    fn range(
        &self,
        query: &[S],
        dist: &dyn Distance<S>,
        opts: &QueryOptions,
    ) -> Result<(Vec<Neighbour>, SearchStats), SearchError> {
        (**self).range(query, dist, opts)
    }

    fn nn_batch(
        &self,
        queries: &[Vec<S>],
        dist: &dyn Distance<S>,
        opts: &QueryOptions,
    ) -> Result<Vec<(Option<Neighbour>, SearchStats)>, SearchError> {
        (**self).nn_batch(queries, dist, opts)
    }

    fn knn_batch(
        &self,
        queries: &[Vec<S>],
        dist: &dyn Distance<S>,
        opts: &QueryOptions,
    ) -> Result<Vec<(Vec<Neighbour>, SearchStats)>, SearchError> {
        (**self).knn_batch(queries, dist, opts)
    }

    fn delete(&mut self, index: usize) -> Result<bool, SearchError> {
        (**self).delete(index)
    }

    fn deleted(&self) -> usize {
        (**self).deleted()
    }

    fn is_deleted(&self, i: usize) -> bool {
        (**self).is_deleted(i)
    }

    fn as_insertable(&mut self) -> Option<&mut dyn InsertableIndex<S>> {
        (**self).as_insertable()
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        (**self).as_any()
    }
}

/// A [`MetricIndex`] that additionally accepts incremental inserts —
/// what a serving pipeline needs to own an index end to end.
pub trait InsertableIndex<S: Symbol>: MetricIndex<S> {
    /// Append `item`, returning its assigned index. `dist` must be the
    /// index's distance (backends may rebuild internal structure, e.g.
    /// delta-shard compaction).
    ///
    /// In-memory backends are infallible; durable wrappers
    /// (`cned-store`'s `Durable`) report a failed write-ahead-log
    /// commit as [`SearchError::Persistence`] — the item was **not**
    /// accepted and the index is unchanged.
    fn insert(&mut self, item: Vec<S>, dist: &dyn Distance<S>) -> Result<usize, SearchError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_reproduce_the_classic_call() {
        let opts = QueryOptions::new();
        assert_eq!(opts.radius, f64::INFINITY);
        assert_eq!(opts.k, 1);
        assert!(opts.pivot_budget.is_none());
        assert!(opts.threads.is_none());
        assert!(opts.stats_sink.is_none());
    }

    #[test]
    fn builder_methods_chain() {
        let sink = Arc::new(SearchStatsAtomic::new());
        let opts = QueryOptions::new()
            .radius(2.5)
            .k(7)
            .pivot_budget(3)
            .threads(2)
            .stats_sink(sink.clone());
        assert_eq!(opts.radius, 2.5);
        assert_eq!(opts.k, 7);
        assert_eq!(opts.pivot_budget, Some(3));
        assert_eq!(opts.threads, Some(2));
        opts.record(SearchStats {
            distance_computations: 5,
        });
        assert_eq!(sink.snapshot().distance_computations, 5);
    }

    #[test]
    fn radius_validation() {
        assert_eq!(QueryOptions::new().checked_radius(), Ok(f64::INFINITY));
        assert_eq!(QueryOptions::new().radius(0.0).checked_radius(), Ok(0.0));
        assert!(matches!(
            QueryOptions::new().radius(-0.5).checked_radius(),
            Err(SearchError::InvalidRadius { .. })
        ));
        assert!(matches!(
            QueryOptions::new().radius(f64::NAN).checked_radius(),
            Err(SearchError::InvalidRadius { .. })
        ));
    }

    #[test]
    fn trait_objects_are_thread_mobile() {
        fn assert_send_sync<T: Send + Sync + ?Sized>() {}
        assert_send_sync::<dyn MetricIndex<u8>>();
        assert_send_sync::<Box<dyn MetricIndex<u8>>>();
    }
}
