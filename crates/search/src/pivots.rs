//! Pivot (base-prototype) selection for LAESA.
//!
//! The classic LAESA strategy \[5\] chooses pivots greedily to be
//! *maximally separated*: the next pivot is the element maximising the
//! sum of distances to the pivots already chosen. Well-spread pivots
//! produce tight triangle-inequality lower bounds, which is what makes
//! elimination effective. A uniform-random selector is provided as the
//! ablation baseline (`ablation_pivots` bench).

use cned_core::metric::Distance;
use cned_core::Symbol;

/// Greedy maximum-sum pivot selection.
///
/// The first pivot is the element farthest from `db[seed_index]`; each
/// subsequent pivot maximises the sum of distances to the pivots
/// selected so far. Costs `O(n_pivots · |db|)` distance computations
/// (preprocessing — not counted against queries).
///
/// Each round prepares the newest pivot once and scores the whole
/// database through [`Distance::distance_batch`], so engines with lane
/// kernels sweep several elements per pass. This relies on metric
/// symmetry — the same assumption LAESA's triangle-inequality bounds
/// already make of the distance.
///
/// Returns fewer than `n_pivots` indices when the database is smaller.
pub fn select_pivots_max_sum<S: Symbol, D: Distance<S> + ?Sized>(
    db: &[Vec<S>],
    n_pivots: usize,
    seed_index: usize,
    dist: &D,
) -> Vec<usize> {
    let n = db.len();
    let n_pivots = n_pivots.min(n);
    if n_pivots == 0 {
        return Vec::new();
    }
    assert!(seed_index < n, "seed index out of range");

    let refs: Vec<&[S]> = db.iter().map(Vec::as_slice).collect();
    let mut col = vec![0.0f64; n];

    let mut chosen: Vec<usize> = Vec::with_capacity(n_pivots);
    let mut accum = vec![0.0f64; n]; // sum of distances to chosen pivots
    let mut is_chosen = vec![false; n];

    // First pivot: farthest from the seed element.
    dist.distance_batch(&db[seed_index], &refs, &mut col);
    let mut first = seed_index;
    let mut best = -1.0;
    for (i, &d) in col.iter().enumerate() {
        if d > best {
            best = d;
            first = i;
        }
    }
    chosen.push(first);
    is_chosen[first] = true;

    while chosen.len() < n_pivots {
        let last = *chosen.last().expect("non-empty");
        dist.distance_batch(&db[last], &refs, &mut col);
        let mut next = None;
        let mut next_sum = -1.0;
        for (i, &d) in col.iter().enumerate() {
            if is_chosen[i] {
                continue;
            }
            accum[i] += d;
            if accum[i] > next_sum {
                next_sum = accum[i];
                next = Some(i);
            }
        }
        match next {
            Some(i) => {
                chosen.push(i);
                is_chosen[i] = true;
            }
            None => break,
        }
    }
    chosen
}

/// Uniform-random pivot selection (ablation baseline).
///
/// Deterministic given `seed` — a tiny xorshift keeps this crate free
/// of a `rand` dependency.
pub fn select_pivots_random(db_len: usize, n_pivots: usize, seed: u64) -> Vec<usize> {
    let n_pivots = n_pivots.min(db_len);
    // Splitmix-style scramble so adjacent seeds diverge (plain
    // `seed | 1` would make 42 and 43 identical).
    let mut state = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9)
        | 1;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut chosen = Vec::with_capacity(n_pivots);
    let mut taken = vec![false; db_len];
    while chosen.len() < n_pivots {
        let i = (rng() % db_len as u64) as usize;
        if !taken[i] {
            taken[i] = true;
            chosen.push(i);
        }
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use cned_core::levenshtein::Levenshtein;

    fn db() -> Vec<Vec<u8>> {
        [
            &b"aaaa"[..],
            b"aaab",
            b"aabb",
            b"abbb",
            b"bbbb",
            b"cccc",
            b"accc",
        ]
        .iter()
        .map(|w| w.to_vec())
        .collect()
    }

    #[test]
    fn returns_requested_count_of_distinct_indices() {
        let p = select_pivots_max_sum(&db(), 3, 0, &Levenshtein);
        assert_eq!(p.len(), 3);
        let mut q = p.clone();
        q.sort_unstable();
        q.dedup();
        assert_eq!(q.len(), 3, "pivots must be distinct");
    }

    #[test]
    fn caps_at_database_size() {
        let p = select_pivots_max_sum(&db(), 100, 0, &Levenshtein);
        assert_eq!(p.len(), db().len());
    }

    #[test]
    fn zero_pivots_is_empty() {
        assert!(select_pivots_max_sum(&db(), 0, 0, &Levenshtein).is_empty());
    }

    #[test]
    fn first_pivot_is_farthest_from_seed() {
        // Seed "aaaa" (index 0): both "bbbb" and "cccc" are at
        // distance 4; the scan keeps the first maximiser, "bbbb".
        let p = select_pivots_max_sum(&db(), 1, 0, &Levenshtein);
        assert_eq!(p[0], 4);
    }

    #[test]
    fn greedy_spreads_pivots() {
        // With two pivots from seed "aaaa": first "bbbb", second the
        // element with the largest distance to "bbbb" — "cccc" (4)
        // over "aaaa" (4)? Both 4; scan order keeps index 0.
        let p = select_pivots_max_sum(&db(), 2, 0, &Levenshtein);
        assert_eq!(p[0], 4);
        assert!(p[1] == 0 || p[1] == 5);
    }

    #[test]
    fn random_selection_is_deterministic_and_distinct() {
        let a = select_pivots_random(100, 10, 42);
        let b = select_pivots_random(100, 10, 42);
        assert_eq!(a, b);
        let mut s = a.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 10);
        let c = select_pivots_random(100, 10, 43);
        assert_ne!(a, c, "different seeds should differ (overwhelmingly)");
    }
}
