//! Typed errors for index construction and queries.
//!
//! Before the unified query API, misuse panicked (`Laesa::build` pivot
//! asserts) or vanished into `Option`s (`None` on an empty database).
//! Every public entry point of the [`MetricIndex`](crate::MetricIndex)
//! surface now reports failure through [`SearchError`] instead, so
//! serving layers can turn misuse into a response rather than a crash.

use core::fmt;

/// Everything that can go wrong building or querying a metric index.
///
/// Marked `#[non_exhaustive]`: new failure modes may be added without
/// a breaking release, so downstream `match`es need a wildcard arm.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq)]
pub enum SearchError {
    /// The index holds no items, so no query has a well-defined
    /// answer. Construction of classifiers also rejects this early.
    EmptyDatabase,
    /// A pivot index handed to [`Laesa::try_build`](crate::Laesa::try_build)
    /// does not address a database element.
    PivotOutOfRange {
        /// The offending pivot index.
        pivot: usize,
        /// Database size it was checked against.
        len: usize,
    },
    /// The same pivot index was supplied twice; duplicate rows would
    /// silently waste a pivot slot, so they are rejected.
    DuplicatePivot {
        /// The repeated pivot index.
        pivot: usize,
    },
    /// A query radius was NaN or negative — no result set is
    /// well-defined under such a budget.
    InvalidRadius {
        /// The offending radius.
        radius: f64,
    },
    /// A labelled classifier was given a label vector whose length
    /// does not match the index.
    LabelCount {
        /// Number of labels supplied.
        labels: usize,
        /// Number of items in the index.
        items: usize,
    },
    /// A builder was asked for a combination of knobs no backend
    /// implements (e.g. sharding a vantage-point tree).
    UnsupportedConfig {
        /// Human-readable description of the rejected combination.
        reason: &'static str,
    },
    /// A serving session's admission queue is full: the request was
    /// **not** accepted and can be retried after draining some
    /// in-flight work. This is the backpressure signal of the
    /// session/ticket serving API.
    Overloaded {
        /// The configured admission depth that was exceeded.
        depth: usize,
    },
    /// The serving session (or connection) is shutting down and no
    /// longer accepts requests; already-accepted tickets still drain.
    Shutdown,
    /// A deadline elapsed before the answer arrived: the network
    /// client's read deadline fired while requests were pending (the
    /// server may still be computing — the requests themselves were
    /// not rejected), or a server-side per-request deadline expired.
    DeadlineExceeded,
    /// Durable storage failed: a snapshot or write-ahead-log operation
    /// hit an I/O error, a corrupt or truncated file, or an
    /// unsupported on-disk version. The reason carries the detail
    /// (`cned-store` formats it); an insert reported with this error
    /// was **not** made durable and must be retried.
    Persistence {
        /// Human-readable description of the storage failure.
        reason: String,
    },
}

impl SearchError {
    /// Stable numeric code identifying the variant on the wire
    /// (`cned-serve`'s binary protocol maps errors both ways through
    /// it). Codes are append-only: existing values never change
    /// meaning across protocol versions.
    pub fn code(&self) -> u8 {
        match self {
            SearchError::EmptyDatabase => 1,
            SearchError::PivotOutOfRange { .. } => 2,
            SearchError::DuplicatePivot { .. } => 3,
            SearchError::InvalidRadius { .. } => 4,
            SearchError::LabelCount { .. } => 5,
            SearchError::UnsupportedConfig { .. } => 6,
            SearchError::Overloaded { .. } => 7,
            SearchError::Shutdown => 8,
            SearchError::DeadlineExceeded => 9,
            SearchError::Persistence { .. } => 10,
        }
    }
}

impl fmt::Display for SearchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SearchError::EmptyDatabase => write!(f, "empty database: no query has an answer"),
            SearchError::PivotOutOfRange { pivot, len } => {
                write!(
                    f,
                    "pivot index {pivot} out of range (database has {len} items)"
                )
            }
            SearchError::DuplicatePivot { pivot } => write!(f, "duplicate pivot {pivot}"),
            SearchError::InvalidRadius { radius } => {
                write!(
                    f,
                    "invalid query radius {radius} (must be non-negative, not NaN)"
                )
            }
            SearchError::LabelCount { labels, items } => {
                write!(f, "label count {labels} does not match index size {items}")
            }
            SearchError::UnsupportedConfig { reason } => {
                write!(f, "unsupported configuration: {reason}")
            }
            SearchError::Overloaded { depth } => {
                write!(
                    f,
                    "serving session overloaded (admission queue depth {depth} reached); retry later"
                )
            }
            SearchError::Shutdown => write!(f, "serving session is shutting down"),
            SearchError::DeadlineExceeded => {
                write!(f, "deadline elapsed before the response arrived")
            }
            SearchError::Persistence { reason } => {
                write!(f, "durable storage failure: {reason}")
            }
        }
    }
}

impl std::error::Error for SearchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_the_witness_values() {
        let e = SearchError::PivotOutOfRange { pivot: 9, len: 4 };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('4'));
        assert!(SearchError::DuplicatePivot { pivot: 3 }
            .to_string()
            .contains("duplicate pivot 3"));
        let e = SearchError::InvalidRadius { radius: -1.0 };
        assert!(e.to_string().contains("-1"));
    }

    #[test]
    fn is_a_std_error() {
        fn takes_error<E: std::error::Error>(_: E) {}
        takes_error(SearchError::EmptyDatabase);
    }

    #[test]
    fn wire_codes_are_stable_and_distinct() {
        // The numeric codes are a wire-protocol contract: changing an
        // existing value breaks deployed client/server pairs.
        let variants = [
            (SearchError::EmptyDatabase, 1u8),
            (SearchError::PivotOutOfRange { pivot: 0, len: 0 }, 2),
            (SearchError::DuplicatePivot { pivot: 0 }, 3),
            (SearchError::InvalidRadius { radius: 0.0 }, 4),
            (
                SearchError::LabelCount {
                    labels: 0,
                    items: 0,
                },
                5,
            ),
            (SearchError::UnsupportedConfig { reason: "" }, 6),
            (SearchError::Overloaded { depth: 0 }, 7),
            (SearchError::Shutdown, 8),
            (SearchError::DeadlineExceeded, 9),
            (
                SearchError::Persistence {
                    reason: String::new(),
                },
                10,
            ),
        ];
        let mut seen = std::collections::HashSet::new();
        for (e, expected) in variants {
            assert_eq!(e.code(), expected, "{e}");
            assert!(seen.insert(e.code()), "duplicate code {}", e.code());
        }
    }
}
