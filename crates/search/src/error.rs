//! Typed errors for index construction and queries.
//!
//! Before the unified query API, misuse panicked (`Laesa::build` pivot
//! asserts) or vanished into `Option`s (`None` on an empty database).
//! Every public entry point of the [`MetricIndex`](crate::MetricIndex)
//! surface now reports failure through [`SearchError`] instead, so
//! serving layers can turn misuse into a response rather than a crash.

use core::fmt;

/// Everything that can go wrong building or querying a metric index.
///
/// Marked `#[non_exhaustive]`: new failure modes may be added without
/// a breaking release, so downstream `match`es need a wildcard arm.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq)]
pub enum SearchError {
    /// The index holds no items, so no query has a well-defined
    /// answer. Construction of classifiers also rejects this early.
    EmptyDatabase,
    /// A pivot index handed to [`Laesa::try_build`](crate::Laesa::try_build)
    /// does not address a database element.
    PivotOutOfRange {
        /// The offending pivot index.
        pivot: usize,
        /// Database size it was checked against.
        len: usize,
    },
    /// The same pivot index was supplied twice; duplicate rows would
    /// silently waste a pivot slot, so they are rejected.
    DuplicatePivot {
        /// The repeated pivot index.
        pivot: usize,
    },
    /// A query radius was NaN or negative — no result set is
    /// well-defined under such a budget.
    InvalidRadius {
        /// The offending radius.
        radius: f64,
    },
    /// A labelled classifier was given a label vector whose length
    /// does not match the index.
    LabelCount {
        /// Number of labels supplied.
        labels: usize,
        /// Number of items in the index.
        items: usize,
    },
    /// A builder was asked for a combination of knobs no backend
    /// implements (e.g. sharding a vantage-point tree).
    UnsupportedConfig {
        /// Human-readable description of the rejected combination.
        reason: &'static str,
    },
}

impl fmt::Display for SearchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SearchError::EmptyDatabase => write!(f, "empty database: no query has an answer"),
            SearchError::PivotOutOfRange { pivot, len } => {
                write!(
                    f,
                    "pivot index {pivot} out of range (database has {len} items)"
                )
            }
            SearchError::DuplicatePivot { pivot } => write!(f, "duplicate pivot {pivot}"),
            SearchError::InvalidRadius { radius } => {
                write!(
                    f,
                    "invalid query radius {radius} (must be non-negative, not NaN)"
                )
            }
            SearchError::LabelCount { labels, items } => {
                write!(f, "label count {labels} does not match index size {items}")
            }
            SearchError::UnsupportedConfig { reason } => {
                write!(f, "unsupported configuration: {reason}")
            }
        }
    }
}

impl std::error::Error for SearchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_the_witness_values() {
        let e = SearchError::PivotOutOfRange { pivot: 9, len: 4 };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('4'));
        assert!(SearchError::DuplicatePivot { pivot: 3 }
            .to_string()
            .contains("duplicate pivot 3"));
        let e = SearchError::InvalidRadius { radius: -1.0 };
        assert!(e.to_string().contains("-1"));
    }

    #[test]
    fn is_a_std_error() {
        fn takes_error<E: std::error::Error>(_: E) {}
        takes_error(SearchError::EmptyDatabase);
    }
}
