//! LAESA — Linear AESA (Micó, Oncina & Vidal 1994, ref \[5\]).
//!
//! Preprocessing stores the distances from a small set of **pivots**
//! (base prototypes) to every database element: `O(p·n)` distance
//! computations, `O(p·n)` memory — *linear* in `n` for fixed `p`,
//! which is LAESA's improvement over AESA's quadratic matrix.
//!
//! At query time the algorithm interleaves two activities:
//!
//! 1. compute the real distance from the query to a selected element
//!    (pivots first, in order of their current lower bound);
//! 2. after each computed *pivot* distance `d(q, p)`, tighten every
//!    alive candidate's lower bound
//!    `G[u] ← max(G[u], |d(q, p) − d(p, u)|)` using the precomputed
//!    row, then **eliminate** candidates whose bound exceeds the best
//!    distance found so far.
//!
//! With a metric distance the triangle inequality guarantees
//! `G[u] ≤ d(q, u)`, so elimination never discards the true nearest
//! neighbour. With a non-metric (e.g. `d_max`) the bound is merely a
//! heuristic and the answer may be approximate — exactly the effect
//! visible in Table 2 of the paper.

use crate::error::SearchError;
use crate::index::{MetricIndex, QueryOptions};
use crate::parallel::par_map;
use crate::tombstone::TombstoneSet;
use crate::{sanitise_distance, Neighbour, SearchStats};
use cned_core::lanes::LANES;
use cned_core::metric::{Distance, PreparedQuery};
use cned_core::Symbol;
use core::cmp::Reverse;
use std::collections::BinaryHeap;

/// A LAESA index over an owned database of strings.
#[derive(Debug)]
pub struct Laesa<S: Symbol> {
    db: Vec<Vec<S>>,
    /// Indices (into `db`) of the pivot elements.
    pivots: Vec<usize>,
    /// `rows[r][u]` = distance from pivot `pivots[r]` to `db[u]`.
    rows: Vec<Vec<f64>>,
    /// For pivot elements, their row number; `usize::MAX` otherwise.
    pivot_row: Vec<usize>,
    /// Distance computations spent during preprocessing.
    preprocessing_computations: u64,
    /// Logically deleted indices; the pivot table keeps its physical
    /// layout and the dead are filtered at answer emission.
    tombstones: TombstoneSet,
}

impl<S: Symbol> Laesa<S> {
    /// Build the index: store the pivot-to-everything distance rows.
    ///
    /// The `p·n` distance computations are fanned out across cores
    /// (see [`crate::parallel`]); each worker prepares its pivot once
    /// and streams it against its share of the database.
    ///
    /// `pivots` are indices into `db` (typically from
    /// [`crate::pivots::select_pivots_max_sum`]); an out-of-range or
    /// repeated pivot is a typed error
    /// ([`SearchError::PivotOutOfRange`] /
    /// [`SearchError::DuplicatePivot`]), not a panic.
    pub fn try_build<D: Distance<S> + ?Sized>(
        db: Vec<Vec<S>>,
        pivots: Vec<usize>,
        dist: &D,
    ) -> Result<Laesa<S>, SearchError> {
        let n = db.len();
        let mut pivot_row = vec![usize::MAX; n];
        for (r, &p) in pivots.iter().enumerate() {
            if p >= n {
                return Err(SearchError::PivotOutOfRange { pivot: p, len: n });
            }
            if pivot_row[p] != usize::MAX {
                return Err(SearchError::DuplicatePivot { pivot: p });
            }
            pivot_row[p] = r;
        }
        let refs: Vec<&[S]> = db.iter().map(Vec::as_slice).collect();
        let rows: Vec<Vec<f64>> = par_map(pivots.len(), |r| {
            let prepared = dist.prepare(&db[pivots[r]]);
            let mut row = vec![0.0f64; n];
            prepared.distance_to_batch(&refs, &mut row);
            // NaN rows would silently disable elimination for the
            // affected candidates; reject them at build time.
            for d in row.iter_mut() {
                *d = sanitise_distance(*d);
            }
            row
        });
        let preprocessing_computations = (pivots.len() * n) as u64;
        Ok(Laesa {
            db,
            pivots,
            rows,
            pivot_row,
            preprocessing_computations,
            tombstones: TombstoneSet::new(),
        })
    }

    /// Panicking variant of [`Laesa::try_build`].
    ///
    /// # Panics
    /// Panics if a pivot index is out of range or repeated.
    #[deprecated(
        since = "0.2.0",
        note = "use `Laesa::try_build`, which reports a typed error"
    )]
    pub fn build<D: Distance<S> + ?Sized>(
        db: Vec<Vec<S>>,
        pivots: Vec<usize>,
        dist: &D,
    ) -> Laesa<S> {
        match Laesa::try_build(db, pivots, dist) {
            Ok(index) => index,
            Err(e) => panic!("{e}"),
        }
    }

    /// The database the index was built over.
    pub fn database(&self) -> &[Vec<S>] {
        &self.db
    }

    /// Unwrap the index back into its database (dropping the pivot
    /// rows) — e.g. for rebuilding merged shards during rebalancing.
    pub fn into_database(self) -> Vec<Vec<S>> {
        self.db
    }

    /// Pivot indices.
    pub fn pivots(&self) -> &[usize] {
        &self.pivots
    }

    /// Distance computations spent building the index.
    pub fn preprocessing_computations(&self) -> u64 {
        self.preprocessing_computations
    }

    /// The pivot distance table: `rows[r][u]` is the distance from
    /// pivot `pivots()[r]` to `database()[u]`. This is the expensive
    /// `O(p·n)` state a snapshot exists to preserve (`cned-store`
    /// serialises it and feeds it back through [`Laesa::from_parts`]).
    pub fn pivot_rows(&self) -> &[Vec<f64>] {
        &self.rows
    }

    /// Reassemble an index from previously exported state — the
    /// snapshot-restore path, skipping the `p·n` distance
    /// computations of [`Laesa::try_build`] entirely.
    ///
    /// `rows` must be the table a build over `(db, pivots)` would have
    /// produced (shape-checked here; values are trusted — a checksum
    /// guards them at the storage layer). `preprocessing` is the
    /// original build's computation count, preserved so a restored
    /// index reports identical statistics.
    pub fn from_parts(
        db: Vec<Vec<S>>,
        pivots: Vec<usize>,
        rows: Vec<Vec<f64>>,
        preprocessing: u64,
    ) -> Result<Laesa<S>, SearchError> {
        let n = db.len();
        let mut pivot_row = vec![usize::MAX; n];
        for (r, &p) in pivots.iter().enumerate() {
            if p >= n {
                return Err(SearchError::PivotOutOfRange { pivot: p, len: n });
            }
            if pivot_row[p] != usize::MAX {
                return Err(SearchError::DuplicatePivot { pivot: p });
            }
            pivot_row[p] = r;
        }
        if rows.len() != pivots.len() || rows.iter().any(|row| row.len() != n) {
            return Err(SearchError::Persistence {
                reason: format!(
                    "pivot table shape {}x{} does not match {} pivots over {} items",
                    rows.len(),
                    rows.first().map_or(0, Vec::len),
                    pivots.len(),
                    n
                ),
            });
        }
        Ok(Laesa {
            db,
            pivots,
            rows,
            pivot_row,
            preprocessing_computations: preprocessing,
            tombstones: TombstoneSet::new(),
        })
    }

    /// The tombstone set (for snapshot encoding).
    pub fn tombstones(&self) -> &TombstoneSet {
        &self.tombstones
    }

    /// Restore a tombstone set (snapshot decode / replica sync).
    pub fn set_tombstones(&mut self, tombstones: TombstoneSet) {
        self.tombstones = tombstones;
    }

    /// Nearest neighbour of `query`, counting real distance
    /// evaluations. Returns `None` on an empty database.
    #[deprecated(
        since = "0.2.0",
        note = "use `MetricIndex::nn` with `QueryOptions` (or the `cned::Database` facade)"
    )]
    pub fn nn<D: Distance<S> + ?Sized>(
        &self,
        query: &[S],
        dist: &D,
    ) -> Option<(Neighbour, SearchStats)> {
        if self.db.is_empty() {
            return None;
        }
        let prepared = dist.prepare(query);
        let (best, stats) = self.nn_core(&*prepared, self.pivots.len(), f64::INFINITY);
        best.map(|nb| (nb, stats))
    }

    /// [`MetricIndex::nn`] restricted to the first `limit` pivots.
    ///
    /// Because greedy max-sum selection is incremental, the first `p`
    /// pivots of an index built with `P ≥ p` pivots are exactly the
    /// selection a `p`-pivot build would produce — so a pivot-count
    /// sweep (Figures 3–4) can reuse one index instead of rebuilding
    /// per point. Pivots beyond `limit` are treated as ordinary
    /// candidates.
    #[deprecated(
        since = "0.2.0",
        note = "use `MetricIndex::nn` with `QueryOptions::pivot_budget`"
    )]
    pub fn nn_limited<D: Distance<S> + ?Sized>(
        &self,
        query: &[S],
        dist: &D,
        limit: usize,
    ) -> Option<(Neighbour, SearchStats)> {
        if self.db.is_empty() {
            return None;
        }
        // Prepared once per query; for d_E this caches the Myers Peq
        // bitmaps reused by every comparison below.
        let prepared = dist.prepare(query);
        let (best, stats) = self.nn_core(&*prepared, limit, f64::INFINITY);
        best.map(|nb| (nb, stats))
    }

    /// Nearest neighbour **within `radius`** of an already-prepared
    /// query: `Some(nb)` with `nb.distance <= radius` (ties towards
    /// the smallest index), or `None` when no element lies within the
    /// radius. The statistics are returned either way.
    ///
    /// This is the sharded serving layer's entry point
    /// (`cned-serve`): the caller prepares the query **once** — so the
    /// per-query caches (Myers `Peq` bitmaps, contextual DP scratch)
    /// are reused across the whole pivot set of *every* shard — and
    /// seeds each later shard with the best distance found so far,
    /// which acts exactly like an already-known best: it bounds the
    /// non-pivot candidate evaluations *and* feeds candidate
    /// elimination from the first pivot onwards. Pivot distances are
    /// still computed exactly even when they exceed the radius,
    /// because their exact values are what make the triangle-
    /// inequality lower bounds (and therefore the answer) correct.
    pub fn nn_prepared(
        &self,
        prepared: &dyn PreparedQuery<S>,
        radius: f64,
    ) -> (Option<Neighbour>, SearchStats) {
        self.nn_core(prepared, self.pivots.len(), radius)
    }

    /// [`Laesa::nn_prepared`] restricted to the first `limit` pivots
    /// (the [`crate::QueryOptions::pivot_budget`] knob for callers
    /// that manage prepared queries themselves, e.g. the sharded
    /// serving layer applying a per-shard budget).
    pub fn nn_prepared_limited(
        &self,
        prepared: &dyn PreparedQuery<S>,
        radius: f64,
        limit: usize,
    ) -> (Option<Neighbour>, SearchStats) {
        self.nn_core(prepared, limit, radius)
    }

    /// Shared pivot phase of the NN and k-NN cores.
    ///
    /// Evaluates active pivots exactly — the first in build order, then
    /// always the live pivot with the minimal (lower bound, index) —
    /// feeding each exact distance to `admit`, which records the
    /// candidate and returns the updated pruning budget (the incumbent
    /// or `k`-th-best distance). After every pivot the candidate and
    /// pivot live lists are tightened with the pivot's precomputed row
    /// and **compacted** against that budget, so per-round cost tracks
    /// the surviving set instead of rescanning all `n` elements every
    /// round (the `laesa`-slower-than-`linear` fix).
    ///
    /// On return `cands` holds the still-live plain candidates (their
    /// bounds now frozen: no unevaluated active pivot remains that
    /// could tighten them) and `lower` the final bounds.
    fn pivot_phase(
        &self,
        prepared: &dyn PreparedQuery<S>,
        limit: usize,
        lower: &mut [f64],
        cands: &mut Vec<usize>,
        computations: &mut u64,
        mut admit: impl FnMut(usize, f64) -> f64,
    ) {
        let n = self.db.len();
        // Live plain candidates: everything that is not an active
        // pivot, ascending index (the canonical tie-break order).
        cands.clear();
        cands.extend((0..n).filter(|&u| self.pivot_row[u] >= limit));
        // Live active pivots, ascending index for the same tie-break
        // the old full-array sweep had.
        let mut live_pivots: Vec<usize> = self.pivots[..limit].to_vec();
        live_pivots.sort_unstable();

        // First selection is the first *built* pivot (build order, not
        // index order); afterwards the live pivot with minimal bound.
        let mut selected = (limit > 0).then(|| self.pivots[0]);
        while let Some(s) = selected.take() {
            let pos = live_pivots
                .iter()
                .position(|&u| u == s)
                .expect("live pivot");
            live_pivots.remove(pos);
            // Pivot distances feed the lower-bound updates, so they
            // are computed exactly (never bounded).
            let d = sanitise_distance(prepared.distance_to(&self.db[s]));
            *computations += 1;
            let slack = admit(s, d) + crate::ELIMINATION_SLACK;

            // Tighten every live bound with the pivot's row and drop
            // eliminated entries in the same pass.
            let row = &self.rows[self.pivot_row[s]];
            let keep = |u: &usize, lower: &mut [f64]| {
                let g = (d - row[*u]).abs();
                if g > lower[*u] {
                    lower[*u] = g;
                }
                lower[*u] <= slack
            };
            cands.retain(|u| keep(u, lower));
            live_pivots.retain(|u| keep(u, lower));

            // Next pivot: minimal (bound, index) — ascending order plus
            // strict `<` keeps the first (smallest-index) minimum.
            let mut next: Option<(usize, f64)> = None;
            for &u in &live_pivots {
                if next.is_none_or(|(_, bg)| lower[u] < bg) {
                    next = Some((u, lower[u]));
                }
            }
            selected = next.map(|(u, _)| u);
        }
    }

    /// Lazy bound-ordered candidate feed for the Phase-2 sweeps.
    ///
    /// Replaces the former sort-then-sweep: building the heap is
    /// `O(n)` (vs `O(n log n)` for a full sort) and only the visited
    /// prefix pays `log n` per pop — on low-dimensional corpora the
    /// shrinking budget stops the sweep after a handful of chunks, so
    /// almost none of the eliminated tail is ever ordered.
    ///
    /// Pops arrive in exactly the frozen `(lower bound, index)` order
    /// the sort produced: bounds are built from `abs()` of sanitised
    /// distances, so they are non-negative and never NaN, which makes
    /// `f64::to_bits` order coincide with numeric (`total_cmp`) order
    /// — bit-identical visit sequence, chunk boundaries and budget
    /// snapshots, pinned by the stats-exact tests below.
    fn heap_of_frozen_bounds(cands: &[usize], lower: &[f64]) -> BinaryHeap<Reverse<(u64, usize)>> {
        cands
            .iter()
            .map(|&u| Reverse((lower[u].to_bits(), u)))
            .collect()
    }

    /// Pop the next lane-width chunk of candidates whose frozen bound
    /// is `<= slack`, in (bound, index) order. Returns the number of
    /// candidates written to `out`; `0` ends the sweep (the heap's
    /// minimum already exceeds the budget, so every remaining
    /// candidate is eliminated).
    fn pop_chunk(
        heap: &mut BinaryHeap<Reverse<(u64, usize)>>,
        slack: f64,
        out: &mut [usize; LANES],
    ) -> usize {
        let mut take = 0;
        while take < LANES {
            let Some(&Reverse((bits, u))) = heap.peek() else {
                break;
            };
            if f64::from_bits(bits) > slack {
                break;
            }
            heap.pop();
            out[take] = u;
            take += 1;
        }
        take
    }

    fn nn_core(
        &self,
        prepared: &dyn PreparedQuery<S>,
        limit: usize,
        radius: f64,
    ) -> (Option<Neighbour>, SearchStats) {
        let limit = limit.min(self.pivots.len());
        let n = self.db.len();
        if n == 0 {
            return (None, SearchStats::default());
        }

        let mut lower = vec![0.0f64; n]; // G[u]
        let mut computations = 0u64;
        // The search radius doubles as a virtual incumbent: any real
        // candidate at d <= radius beats it (usize::MAX loses every
        // index tie-break).
        let mut best = Neighbour {
            index: usize::MAX,
            distance: radius,
        };

        // Phase 1: pivots — exact distances, bound tightening,
        // incremental elimination over compacted live lists.
        let mut cands: Vec<usize> = Vec::new();
        self.pivot_phase(
            prepared,
            limit,
            &mut lower,
            &mut cands,
            &mut computations,
            |s, d| {
                let candidate = Neighbour {
                    index: s,
                    distance: d,
                };
                if candidate.better_than(&best) {
                    best = candidate;
                }
                best.distance
            },
        );

        // Phase 2: surviving candidates, visited in frozen
        // (bound, index) order via a lazy bound-ordered heap and
        // scored through the lane-batched bounded path. The budget is
        // refreshed at every chunk boundary; a stale budget only
        // admits a superset of what the one-at-a-time sweep would, and
        // `better_than` keeps the final incumbent identical.
        let mut heap = Self::heap_of_frozen_bounds(&cands, &lower);
        let mut chunk = [0usize; LANES];
        let mut targets: [&[S]; LANES] = [&[]; LANES];
        let mut results: [Option<f64>; LANES] = [None; LANES];
        loop {
            let slack = best.distance + crate::ELIMINATION_SLACK;
            let take = Self::pop_chunk(&mut heap, slack, &mut chunk);
            if take == 0 {
                // The heap's minimum exceeds the budget: every
                // remaining candidate is eliminated too.
                break;
            }
            for (t, &u) in chunk[..take].iter().enumerate() {
                targets[t] = &self.db[u];
            }
            prepared.distance_to_batch_bounded(
                &targets[..take],
                best.distance,
                &mut results[..take],
            );
            computations += take as u64;
            for (i, d) in results[..take].iter().enumerate() {
                let Some(d) = *d else { continue };
                let candidate = Neighbour {
                    index: chunk[i],
                    distance: d,
                };
                if candidate.better_than(&best) {
                    best = candidate;
                }
            }
        }

        let found = (best.index != usize::MAX).then_some(best);
        (
            found,
            SearchStats {
                distance_computations: computations,
            },
        )
    }

    /// The `k` nearest neighbours, sorted by increasing distance.
    ///
    /// Same machinery as nearest-neighbour search but elimination uses
    /// the current `k`-th best distance, so fewer candidates are
    /// pruned.
    #[deprecated(
        since = "0.2.0",
        note = "use `MetricIndex::knn` with `QueryOptions` (or the `cned::Database` facade)"
    )]
    pub fn knn<D: Distance<S> + ?Sized>(
        &self,
        query: &[S],
        dist: &D,
        k: usize,
    ) -> (Vec<Neighbour>, SearchStats) {
        let prepared = dist.prepare(query);
        self.knn_prepared(&*prepared, k, f64::INFINITY)
    }

    /// The `k` nearest neighbours **within `radius`** of an
    /// already-prepared query, sorted by the canonical
    /// (distance, index) ordering. May return fewer than `k` entries
    /// when fewer elements lie within the radius.
    ///
    /// The sharded k-NN counterpart of [`Laesa::nn_prepared`]: the
    /// serving layer seeds each later shard with the running global
    /// `k`-th-best distance, which bounds candidate evaluations and
    /// elimination from the first pivot onwards, while pivot distances
    /// stay exact (their values feed the lower-bound updates).
    pub fn knn_prepared(
        &self,
        prepared: &dyn PreparedQuery<S>,
        k: usize,
        radius: f64,
    ) -> (Vec<Neighbour>, SearchStats) {
        self.knn_core(prepared, k, radius, self.pivots.len())
    }

    /// [`Laesa::knn_prepared`] restricted to the first `limit` pivots.
    pub fn knn_prepared_limited(
        &self,
        prepared: &dyn PreparedQuery<S>,
        k: usize,
        radius: f64,
        limit: usize,
    ) -> (Vec<Neighbour>, SearchStats) {
        self.knn_core(prepared, k, radius, limit)
    }

    fn knn_core(
        &self,
        prepared: &dyn PreparedQuery<S>,
        k: usize,
        radius: f64,
        limit: usize,
    ) -> (Vec<Neighbour>, SearchStats) {
        let limit = limit.min(self.pivots.len());
        let n = self.db.len();
        if n == 0 || k == 0 {
            return (Vec::new(), SearchStats::default());
        }

        let mut lower = vec![0.0f64; n];
        let mut computations = 0u64;
        // Current k best, kept sorted by (distance, index); the radius
        // caps the admission budget until k closer elements displace
        // it.
        let mut best: Vec<Neighbour> = Vec::with_capacity(k + 1);
        fn kth(best: &[Neighbour], k: usize, radius: f64) -> f64 {
            if best.len() < k {
                radius
            } else {
                best[k - 1].distance
            }
        }
        // A rejected bounded evaluation surfaces as +inf and must never
        // enter the result set, even at an infinite radius.
        fn admit_knn(best: &mut Vec<Neighbour>, k: usize, radius: f64, index: usize, d: f64) {
            if d.is_finite() && d <= radius {
                let candidate = Neighbour { index, distance: d };
                let pos = best
                    .binary_search_by(|nb| nb.ordering(&candidate))
                    .unwrap_or_else(|e| e);
                best.insert(pos, candidate);
                best.truncate(k);
            }
        }

        // Phase 1: pivots — exact distances (even beyond the radius:
        // their values make the lower bounds correct), elimination
        // against the running k-th-best distance.
        let mut cands: Vec<usize> = Vec::new();
        self.pivot_phase(
            prepared,
            limit,
            &mut lower,
            &mut cands,
            &mut computations,
            |s, d| {
                admit_knn(&mut best, k, radius, s, d);
                kth(&best, k, radius)
            },
        );

        // Phase 2: survivors in frozen (bound, index) order via the
        // lazy bound-ordered heap, batched through the bounded lane
        // path with the k-th distance as the budget. Stale chunk
        // budgets only admit a superset; the sorted insert + truncate
        // keeps the final k identical.
        let mut heap = Self::heap_of_frozen_bounds(&cands, &lower);
        let mut chunk = [0usize; LANES];
        let mut targets: [&[S]; LANES] = [&[]; LANES];
        let mut results: [Option<f64>; LANES] = [None; LANES];
        loop {
            let budget = kth(&best, k, radius);
            let slack = budget + crate::ELIMINATION_SLACK;
            let take = Self::pop_chunk(&mut heap, slack, &mut chunk);
            if take == 0 {
                break;
            }
            for (t, &u) in chunk[..take].iter().enumerate() {
                targets[t] = &self.db[u];
            }
            prepared.distance_to_batch_bounded(&targets[..take], budget, &mut results[..take]);
            computations += take as u64;
            for (i, d) in results[..take].iter().enumerate() {
                let Some(d) = *d else { continue };
                admit_knn(&mut best, k, radius, chunk[i], d);
            }
        }

        (
            best,
            SearchStats {
                distance_computations: computations,
            },
        )
    }

    /// Every element **within `radius`** (inclusive) of an
    /// already-prepared query, in the canonical (distance, index)
    /// order.
    ///
    /// Unlike NN/k-NN the pruning radius never shrinks, so the
    /// algorithm is a straight two-phase sweep: every active pivot is
    /// computed exactly (its value both answers its own membership and
    /// tightens every candidate's triangle-inequality lower bound
    /// `G[u] = max_p |d(q,p) − d(p,u)|`), candidates whose bound
    /// exceeds `radius` (plus [`crate::ELIMINATION_SLACK`]) are
    /// eliminated unevaluated, and the survivors are evaluated with
    /// `radius` as their early-exit budget.
    pub fn range_prepared(
        &self,
        prepared: &dyn PreparedQuery<S>,
        radius: f64,
    ) -> (Vec<Neighbour>, SearchStats) {
        self.range_core(prepared, radius, self.pivots.len())
    }

    /// [`Laesa::range_prepared`] restricted to the first `limit`
    /// pivots.
    pub fn range_prepared_limited(
        &self,
        prepared: &dyn PreparedQuery<S>,
        radius: f64,
        limit: usize,
    ) -> (Vec<Neighbour>, SearchStats) {
        self.range_core(prepared, radius, limit)
    }

    fn range_core(
        &self,
        prepared: &dyn PreparedQuery<S>,
        radius: f64,
        limit: usize,
    ) -> (Vec<Neighbour>, SearchStats) {
        let limit = limit.min(self.pivots.len());
        let n = self.db.len();
        let mut alive = vec![true; n];
        let mut lower = vec![0.0f64; n];
        let mut computations = 0u64;
        let mut hits: Vec<Neighbour> = Vec::new();

        // The fixed radius means every active pivot is evaluated
        // unconditionally, so all pivot distances can be scored in one
        // lane-batched pass up front; the row sweeps then run in the
        // same order as before.
        let pivot_refs: Vec<&[S]> = self.pivots[..limit]
            .iter()
            .map(|&p| self.db[p].as_slice())
            .collect();
        let mut pivot_d = vec![0.0f64; limit];
        prepared.distance_to_batch(&pivot_refs, &mut pivot_d);
        computations += limit as u64;
        for r in 0..limit {
            let p = self.pivots[r];
            let d = sanitise_distance(pivot_d[r]);
            alive[p] = false;
            if d.is_finite() && d <= radius {
                hits.push(Neighbour {
                    index: p,
                    distance: d,
                });
            }
            let row = &self.rows[r];
            for u in 0..n {
                if !alive[u] {
                    continue;
                }
                let g = (d - row[u]).abs();
                if g > lower[u] {
                    lower[u] = g;
                }
                if lower[u] > radius + crate::ELIMINATION_SLACK {
                    alive[u] = false;
                }
            }
        }
        // Survivors all share the same fixed budget, so the whole set
        // batches cleanly in lane-width chunks.
        let survivors: Vec<usize> = (0..n).filter(|&u| alive[u]).collect();
        computations += survivors.len() as u64;
        let mut results: [Option<f64>; LANES] = [None; LANES];
        let mut targets: [&[S]; LANES] = [&[]; LANES];
        for chunk in survivors.chunks(LANES) {
            for (i, &u) in chunk.iter().enumerate() {
                targets[i] = &self.db[u];
            }
            prepared.distance_to_batch_bounded(
                &targets[..chunk.len()],
                radius,
                &mut results[..chunk.len()],
            );
            for (i, d) in results[..chunk.len()].iter().enumerate() {
                let Some(d) = *d else { continue };
                if d.is_finite() {
                    hits.push(Neighbour {
                        index: chunk[i],
                        distance: d,
                    });
                }
            }
        }
        hits.sort_by(|a, b| a.ordering(b));
        (
            hits,
            SearchStats {
                distance_computations: computations,
            },
        )
    }

    /// `nn` for a batch of queries, parallelised across queries (each
    /// worker prepares its query once). Returns `None` on an empty
    /// database, mirroring the single-query API.
    #[deprecated(
        since = "0.2.0",
        note = "use `MetricIndex::nn_batch` with `QueryOptions` (or the `cned::Database` facade)"
    )]
    pub fn nn_batch<D: Distance<S> + ?Sized>(
        &self,
        queries: &[Vec<S>],
        dist: &D,
    ) -> Option<Vec<(Neighbour, SearchStats)>> {
        if self.db.is_empty() {
            return None;
        }
        Some(crate::parallel::par_map(queries.len(), |q| {
            let prepared = dist.prepare(&queries[q]);
            let (best, stats) = self.nn_core(&*prepared, self.pivots.len(), f64::INFINITY);
            (best.expect("database checked non-empty"), stats)
        }))
    }

    /// `knn` for a batch of queries, parallelised across queries.
    #[deprecated(
        since = "0.2.0",
        note = "use `MetricIndex::knn_batch` with `QueryOptions` (or the `cned::Database` facade)"
    )]
    pub fn knn_batch<D: Distance<S> + ?Sized>(
        &self,
        queries: &[Vec<S>],
        dist: &D,
        k: usize,
    ) -> Vec<(Vec<Neighbour>, SearchStats)> {
        crate::parallel::par_map(queries.len(), |q| {
            let prepared = dist.prepare(&queries[q]);
            self.knn_prepared(&*prepared, k, f64::INFINITY)
        })
    }
}

impl<S: Symbol> MetricIndex<S> for Laesa<S> {
    fn len(&self) -> usize {
        self.db.len()
    }

    fn backend_name(&self) -> &'static str {
        "laesa"
    }

    fn item(&self, i: usize) -> Option<&[S]> {
        self.db.get(i).map(Vec::as_slice)
    }

    fn nn(
        &self,
        query: &[S],
        dist: &dyn Distance<S>,
        opts: &QueryOptions,
    ) -> Result<(Option<Neighbour>, SearchStats), SearchError> {
        if self.db.is_empty() {
            return Err(SearchError::EmptyDatabase);
        }
        let radius = opts.checked_radius()?;
        let limit = opts.pivot_budget.unwrap_or(self.pivots.len());
        let prepared = dist.prepare(query);
        if self.tombstones.is_empty() {
            let (found, stats) = self.nn_core(&*prepared, limit, radius);
            opts.record(stats);
            return Ok((found, stats));
        }
        // Over-fetch: at most T of the top 1+T answers can be dead,
        // so the first survivor is the true live NN.
        let want = 1 + self.tombstones.count();
        let (hits, stats) = self.knn_core(&*prepared, want, radius, limit);
        let found = self.tombstones.first_live(&hits);
        opts.record(stats);
        Ok((found, stats))
    }

    fn knn(
        &self,
        query: &[S],
        dist: &dyn Distance<S>,
        opts: &QueryOptions,
    ) -> Result<(Vec<Neighbour>, SearchStats), SearchError> {
        if self.db.is_empty() {
            return Err(SearchError::EmptyDatabase);
        }
        let radius = opts.checked_radius()?;
        let limit = opts.pivot_budget.unwrap_or(self.pivots.len());
        let prepared = dist.prepare(query);
        let want = if self.tombstones.is_empty() {
            opts.k
        } else {
            opts.k.saturating_add(self.tombstones.count())
        };
        let (mut best, stats) = self.knn_core(&*prepared, want, radius, limit);
        self.tombstones.retain_live(&mut best);
        best.truncate(opts.k);
        opts.record(stats);
        Ok((best, stats))
    }

    fn range(
        &self,
        query: &[S],
        dist: &dyn Distance<S>,
        opts: &QueryOptions,
    ) -> Result<(Vec<Neighbour>, SearchStats), SearchError> {
        if self.db.is_empty() {
            return Err(SearchError::EmptyDatabase);
        }
        let radius = opts.checked_radius()?;
        let limit = opts.pivot_budget.unwrap_or(self.pivots.len());
        let prepared = dist.prepare(query);
        let (mut hits, stats) = self.range_core(&*prepared, radius, limit);
        self.tombstones.retain_live(&mut hits);
        opts.record(stats);
        Ok((hits, stats))
    }

    fn delete(&mut self, index: usize) -> Result<bool, SearchError> {
        if index >= self.db.len() {
            return Ok(false);
        }
        Ok(self.tombstones.insert(index))
    }

    fn deleted(&self) -> usize {
        self.tombstones.count()
    }

    fn is_deleted(&self, i: usize) -> bool {
        self.tombstones.contains(i)
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    // These tests pin the deprecated forwarders' behaviour (they share
    // cores with the MetricIndex path, so coverage is common) until
    // the legacy surface is removed.
    #![allow(deprecated)]

    use super::*;
    use crate::linear::{linear_knn, linear_nn};
    use crate::pivots::select_pivots_max_sum;
    use cned_core::contextual::heuristic::ContextualHeuristic;
    use cned_core::levenshtein::Levenshtein;
    use cned_core::normalized::yujian_bo::YujianBo;

    /// Deterministic pseudo-random word corpus.
    fn corpus(n: usize, len: usize, alphabet: u8, seed: u64) -> Vec<Vec<u8>> {
        let mut state = seed | 1;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        (0..n)
            .map(|_| {
                let l = 1 + (rng() % len as u64) as usize;
                (0..l)
                    .map(|_| b'a' + (rng() % alphabet as u64) as u8)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn empty_db_returns_none() {
        let idx: Laesa<u8> = Laesa::build(Vec::new(), Vec::new(), &Levenshtein);
        assert!(idx.nn(b"abc", &Levenshtein).is_none());
    }

    #[test]
    fn finds_exact_member() {
        let db = corpus(50, 8, 3, 7);
        let pivots = select_pivots_max_sum(&db, 5, 0, &Levenshtein);
        let probe = db[17].clone();
        let idx = Laesa::build(db, pivots, &Levenshtein);
        let (nn, _) = idx.nn(&probe, &Levenshtein).unwrap();
        assert_eq!(nn.distance, 0.0);
        assert_eq!(idx.database()[nn.index], probe);
    }

    #[test]
    fn agrees_with_linear_scan_for_levenshtein() {
        let db = corpus(120, 10, 3, 11);
        let queries = corpus(40, 10, 3, 99);
        let pivots = select_pivots_max_sum(&db, 8, 0, &Levenshtein);
        let idx = Laesa::build(db.clone(), pivots, &Levenshtein);
        for q in &queries {
            let (l_nn, _) = linear_nn(&db, q, &Levenshtein).unwrap();
            let (a_nn, _) = idx.nn(q, &Levenshtein).unwrap();
            assert_eq!(a_nn.distance, l_nn.distance, "query {q:?}");
        }
    }

    #[test]
    fn agrees_with_linear_scan_for_yujian_bo() {
        let db = corpus(100, 9, 3, 5);
        let queries = corpus(30, 9, 3, 123);
        let pivots = select_pivots_max_sum(&db, 10, 0, &YujianBo);
        let idx = Laesa::build(db.clone(), pivots, &YujianBo);
        for q in &queries {
            let (l_nn, _) = linear_nn(&db, q, &YujianBo).unwrap();
            let (a_nn, _) = idx.nn(q, &YujianBo).unwrap();
            assert!((a_nn.distance - l_nn.distance).abs() < 1e-12, "query {q:?}");
        }
    }

    #[test]
    fn agrees_with_linear_scan_for_contextual_heuristic() {
        // d_C,h is not formally a metric, but in practice (and in the
        // paper's Table 2) LAESA over it returns the linear-scan result
        // on natural data. If this ever flakes the assertion below
        // should be relaxed — with this fixed corpus it holds.
        let db = corpus(100, 9, 3, 21);
        let queries = corpus(30, 9, 3, 77);
        let pivots = select_pivots_max_sum(&db, 10, 0, &ContextualHeuristic);
        let idx = Laesa::build(db.clone(), pivots, &ContextualHeuristic);
        for q in &queries {
            let (l_nn, _) = linear_nn(&db, q, &ContextualHeuristic).unwrap();
            let (a_nn, _) = idx.nn(q, &ContextualHeuristic).unwrap();
            assert!((a_nn.distance - l_nn.distance).abs() < 1e-9, "query {q:?}");
        }
    }

    #[test]
    fn agrees_with_linear_scan_for_exact_contextual_and_gates_fire() {
        // d_C is a metric, so LAESA must reproduce the linear-scan
        // neighbour; along the way the bounded engine's cheap gates
        // (not the cubic DP) should be absorbing most of the budgeted
        // comparisons. The gate counter is process-global and can only
        // grow concurrently, so `>` is race-safe.
        use cned_core::contextual::bounded::gate_rejections;
        use cned_core::contextual::exact::Contextual;
        let db = corpus(80, 9, 3, 29);
        let queries = corpus(15, 9, 3, 291);
        let pivots = select_pivots_max_sum(&db, 8, 0, &Contextual);
        let idx = Laesa::build(db.clone(), pivots, &Contextual);
        let gates_before = gate_rejections();
        for q in &queries {
            let (l_nn, _) = linear_nn(&db, q, &Contextual).unwrap();
            let (a_nn, _) = idx.nn(q, &Contextual).unwrap();
            assert!((a_nn.distance - l_nn.distance).abs() < 1e-12, "query {q:?}");
        }
        assert!(
            gate_rejections() > gates_before,
            "searching d_C should reject candidates through the bounded gates"
        );
    }

    #[test]
    fn uses_fewer_computations_than_linear_scan() {
        let db = corpus(300, 10, 3, 31);
        let queries = corpus(20, 10, 3, 301);
        let pivots = select_pivots_max_sum(&db, 24, 0, &Levenshtein);
        let idx = Laesa::build(db.clone(), pivots, &Levenshtein);
        let mut total = 0u64;
        for q in &queries {
            let (_, stats) = idx.nn(q, &Levenshtein).unwrap();
            total += stats.distance_computations;
        }
        let avg = total as f64 / queries.len() as f64;
        assert!(
            avg < db.len() as f64 * 0.8,
            "LAESA should beat exhaustive scan on average: avg {avg} vs n {}",
            db.len()
        );
    }

    #[test]
    fn computation_count_never_exceeds_db_size() {
        let db = corpus(80, 8, 2, 13);
        let pivots = select_pivots_max_sum(&db, 6, 0, &Levenshtein);
        let idx = Laesa::build(db.clone(), pivots, &Levenshtein);
        for q in corpus(20, 8, 2, 44) {
            let (_, stats) = idx.nn(&q, &Levenshtein).unwrap();
            assert!(stats.distance_computations <= db.len() as u64);
        }
    }

    #[test]
    fn knn_matches_linear_scan_distances() {
        let db = corpus(150, 9, 3, 17);
        let queries = corpus(15, 9, 3, 171);
        let pivots = select_pivots_max_sum(&db, 12, 0, &Levenshtein);
        let idx = Laesa::build(db.clone(), pivots, &Levenshtein);
        for q in &queries {
            let (l_knn, _) = linear_knn(&db, q, &Levenshtein, 5);
            let (a_knn, _) = idx.knn(q, &Levenshtein, 5);
            assert_eq!(a_knn.len(), 5);
            let ld: Vec<f64> = l_knn.iter().map(|n| n.distance).collect();
            let ad: Vec<f64> = a_knn.iter().map(|n| n.distance).collect();
            assert_eq!(ld, ad, "query {q:?}");
        }
    }

    #[test]
    fn zero_pivots_degenerates_to_near_exhaustive_but_stays_correct() {
        let db = corpus(60, 8, 3, 23);
        let idx = Laesa::build(db.clone(), Vec::new(), &Levenshtein);
        for q in corpus(10, 8, 3, 67) {
            let (l_nn, _) = linear_nn(&db, &q, &Levenshtein).unwrap();
            let (a_nn, stats) = idx.nn(&q, &Levenshtein).unwrap();
            assert_eq!(a_nn.distance, l_nn.distance);
            // Without pivots there are no lower bounds: every element
            // must be computed.
            assert_eq!(stats.distance_computations, db.len() as u64);
        }
    }

    #[test]
    fn preprocessing_count_is_pivots_times_n() {
        let db = corpus(40, 8, 3, 3);
        let pivots = select_pivots_max_sum(&db, 4, 0, &Levenshtein);
        let idx = Laesa::build(db, pivots, &Levenshtein);
        assert_eq!(idx.preprocessing_computations(), 4 * 40);
    }

    #[test]
    fn nn_limited_matches_dedicated_builds() {
        // A prefix-limited query over a 20-pivot index must return the
        // same neighbour (and computation count) as an index built
        // with only the prefix, because greedy selection is
        // incremental.
        let db = corpus(150, 9, 3, 53);
        let queries = corpus(10, 9, 3, 531);
        let pivots20 = select_pivots_max_sum(&db, 20, 0, &Levenshtein);
        let big = Laesa::build(db.clone(), pivots20.clone(), &Levenshtein);
        for p in [0usize, 3, 8, 20] {
            let small = Laesa::build(db.clone(), pivots20[..p].to_vec(), &Levenshtein);
            for q in &queries {
                let (nn_a, st_a) = big.nn_limited(q, &Levenshtein, p).unwrap();
                let (nn_b, st_b) = small.nn(q, &Levenshtein).unwrap();
                assert_eq!(nn_a.distance, nn_b.distance, "p={p} q={q:?}");
                assert_eq!(
                    st_a.distance_computations, st_b.distance_computations,
                    "p={p} q={q:?}"
                );
            }
        }
    }

    #[test]
    fn more_pivots_monotonically_reduce_computations_on_average() {
        let db = corpus(250, 10, 3, 61);
        let queries = corpus(30, 10, 3, 611);
        let pivots = select_pivots_max_sum(&db, 64, 0, &Levenshtein);
        let idx = Laesa::build(db, pivots, &Levenshtein);
        let avg = |p: usize| -> f64 {
            let total: u64 = queries
                .iter()
                .map(|q| {
                    idx.nn_limited(q, &Levenshtein, p)
                        .unwrap()
                        .1
                        .distance_computations
                })
                .sum();
            total as f64 / queries.len() as f64
        };
        // Not strictly monotone in general, but the large steps are:
        let (a0, a8, a64) = (avg(0), avg(8), avg(64));
        assert!(a8 < a0, "8 pivots ({a8}) should beat none ({a0})");
        assert!(a64 < a0, "64 pivots ({a64}) should beat none ({a0})");
    }

    #[test]
    #[should_panic(expected = "duplicate pivot")]
    fn duplicate_pivots_still_panic_through_deprecated_build() {
        let db = corpus(10, 5, 2, 1);
        Laesa::build(db, vec![1, 1], &Levenshtein);
    }

    #[test]
    fn bad_pivots_are_typed_errors() {
        let db = corpus(10, 5, 2, 1);
        assert_eq!(
            Laesa::try_build(db.clone(), vec![1, 1], &Levenshtein).unwrap_err(),
            SearchError::DuplicatePivot { pivot: 1 }
        );
        assert_eq!(
            Laesa::try_build(db, vec![10], &Levenshtein).unwrap_err(),
            SearchError::PivotOutOfRange { pivot: 10, len: 10 }
        );
    }

    #[test]
    fn range_matches_linear_scan_filter() {
        let db = corpus(120, 9, 3, 91);
        let queries = corpus(20, 9, 3, 911);
        let pivots = select_pivots_max_sum(&db, 10, 0, &Levenshtein);
        let idx = Laesa::try_build(db.clone(), pivots, &Levenshtein).unwrap();
        for q in &queries {
            for radius in [0.0, 1.0, 2.0, 4.0] {
                let opts = QueryOptions::new().radius(radius);
                let (hits, stats) = MetricIndex::range(&idx, q, &Levenshtein, &opts).unwrap();
                // Oracle: full scan + filter + canonical sort.
                let prepared = cned_core::metric::Distance::<u8>::prepare(&Levenshtein, q);
                let mut oracle: Vec<(usize, f64)> = db
                    .iter()
                    .enumerate()
                    .map(|(i, item)| (i, prepared.distance_to(item)))
                    .filter(|&(_, d)| d <= radius)
                    .collect();
                oracle.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
                let oracle: Vec<(usize, u64)> =
                    oracle.into_iter().map(|(i, d)| (i, d.to_bits())).collect();
                let got: Vec<(usize, u64)> = hits
                    .iter()
                    .map(|n| (n.index, n.distance.to_bits()))
                    .collect();
                assert_eq!(got, oracle, "query {q:?} radius {radius}");
                assert!(stats.distance_computations <= db.len() as u64);
            }
        }
    }

    #[test]
    fn range_pruning_saves_computations_at_small_radii() {
        let db = corpus(300, 10, 3, 93);
        let queries = corpus(15, 10, 3, 931);
        let pivots = select_pivots_max_sum(&db, 24, 0, &Levenshtein);
        let idx = Laesa::try_build(db.clone(), pivots, &Levenshtein).unwrap();
        let opts = QueryOptions::new().radius(1.0);
        let total: u64 = queries
            .iter()
            .map(|q| {
                MetricIndex::range(&idx, q, &Levenshtein, &opts)
                    .unwrap()
                    .1
                    .distance_computations
            })
            .sum();
        let avg = total as f64 / queries.len() as f64;
        assert!(
            avg < db.len() as f64 * 0.8,
            "triangle pruning should skip most of the database: avg {avg} vs n {}",
            db.len()
        );
    }

    #[test]
    fn trait_path_matches_legacy_inherent_path() {
        let db = corpus(100, 9, 3, 95);
        let queries = corpus(15, 9, 3, 951);
        let pivots = select_pivots_max_sum(&db, 8, 0, &Levenshtein);
        let idx = Laesa::try_build(db, pivots, &Levenshtein).unwrap();
        let dyn_idx: &dyn MetricIndex<u8> = &idx;
        for q in &queries {
            let (legacy, lstats) = idx.nn(q, &Levenshtein).unwrap();
            let (nb, stats) = dyn_idx.nn(q, &Levenshtein, &QueryOptions::new()).unwrap();
            let nb = nb.unwrap();
            assert_eq!(
                (nb.index, nb.distance.to_bits()),
                (legacy.index, legacy.distance.to_bits())
            );
            assert_eq!(stats, lstats, "query {q:?}");
            // pivot_budget reproduces nn_limited.
            for limit in [0usize, 3, 8] {
                let (legacy, lstats) = idx.nn_limited(q, &Levenshtein, limit).unwrap();
                let opts = QueryOptions::new().pivot_budget(limit);
                let (nb, stats) = dyn_idx.nn(q, &Levenshtein, &opts).unwrap();
                let nb = nb.unwrap();
                assert_eq!(nb.distance.to_bits(), legacy.distance.to_bits());
                assert_eq!(stats, lstats, "query {q:?} limit {limit}");
            }
            let (lknn, lkstats) = idx.knn(q, &Levenshtein, 4);
            let (knn, kstats) = dyn_idx
                .knn(q, &Levenshtein, &QueryOptions::new().k(4))
                .unwrap();
            let key = |ns: &[Neighbour]| -> Vec<(usize, u64)> {
                ns.iter().map(|n| (n.index, n.distance.to_bits())).collect()
            };
            assert_eq!(key(&knn), key(&lknn), "query {q:?}");
            assert_eq!(kstats, lkstats);
        }
    }

    #[test]
    fn batch_queries_match_single_queries() {
        let db = corpus(120, 10, 3, 57);
        let queries = corpus(25, 10, 3, 571);
        let pivots = select_pivots_max_sum(&db, 10, 0, &Levenshtein);
        let idx = Laesa::build(db, pivots, &Levenshtein);
        let batch = idx.nn_batch(&queries, &Levenshtein).unwrap();
        assert_eq!(batch.len(), queries.len());
        for (q, (nn, stats)) in queries.iter().zip(&batch) {
            let (snn, sstats) = idx.nn(q, &Levenshtein).unwrap();
            assert_eq!(nn.distance, snn.distance, "query {q:?}");
            assert_eq!(stats.distance_computations, sstats.distance_computations);
        }
        let kbatch = idx.knn_batch(&queries, &Levenshtein, 4);
        for (q, (nns, _)) in queries.iter().zip(&kbatch) {
            let (snns, _) = idx.knn(q, &Levenshtein, 4);
            let bd: Vec<f64> = nns.iter().map(|n| n.distance).collect();
            let sd: Vec<f64> = snns.iter().map(|n| n.distance).collect();
            assert_eq!(bd, sd, "query {q:?}");
        }
    }

    #[test]
    fn ties_resolve_to_ascending_index_with_duplicate_strings() {
        // Seed the corpus with duplicated strings so equal distances
        // are guaranteed; the LAESA visit order (pivot-driven) differs
        // from the linear scan's index order, so agreement here proves
        // the tie-break is by database index, not by visit order.
        let mut db = corpus(60, 6, 2, 41);
        let dups: Vec<Vec<u8>> = db.iter().take(10).cloned().collect();
        db.extend(dups);
        let queries = corpus(20, 6, 2, 411);
        let pivots = select_pivots_max_sum(&db, 6, 0, &Levenshtein);
        let idx = Laesa::build(db.clone(), pivots, &Levenshtein);
        for q in &queries {
            let (l_nn, _) = linear_nn(&db, q, &Levenshtein).unwrap();
            let (a_nn, _) = idx.nn(q, &Levenshtein).unwrap();
            assert_eq!(a_nn.index, l_nn.index, "nn index mismatch on {q:?}");
            assert_eq!(a_nn.distance, l_nn.distance);
            let (l_knn, _) = linear_knn(&db, q, &Levenshtein, 5);
            let (a_knn, _) = idx.knn(q, &Levenshtein, 5);
            let li: Vec<(usize, u64)> = l_knn
                .iter()
                .map(|n| (n.index, n.distance.to_bits()))
                .collect();
            let ai: Vec<(usize, u64)> = a_knn
                .iter()
                .map(|n| (n.index, n.distance.to_bits()))
                .collect();
            assert_eq!(ai, li, "knn mismatch on {q:?}");
        }
    }

    #[test]
    fn prepared_radius_queries_match_plain_queries() {
        // nn_prepared at an infinite radius is nn; at the exact best
        // distance it still finds the neighbour (<= admission); just
        // below it finds nothing.
        let db = corpus(80, 8, 3, 47);
        let queries = corpus(10, 8, 3, 471);
        let pivots = select_pivots_max_sum(&db, 8, 0, &Levenshtein);
        let idx = Laesa::build(db.clone(), pivots, &Levenshtein);
        for q in &queries {
            let (nn, stats) = idx.nn(q, &Levenshtein).unwrap();
            let prepared = cned_core::metric::Distance::<u8>::prepare(&Levenshtein, q);
            let (p_nn, p_stats) = idx.nn_prepared(&*prepared, f64::INFINITY);
            let p_nn = p_nn.unwrap();
            assert_eq!((p_nn.index, p_nn.distance), (nn.index, nn.distance));
            assert_eq!(p_stats, stats);
            let (at, _) = idx.nn_prepared(&*prepared, nn.distance);
            let at = at.unwrap();
            assert_eq!((at.index, at.distance), (nn.index, nn.distance));
            if nn.distance > 0.0 {
                let (below, _) = idx.nn_prepared(&*prepared, nn.distance - 0.5);
                assert!(below.is_none(), "query {q:?}");
            }
            // knn via the prepared radius path agrees with plain knn.
            let (knns, _) = idx.knn(q, &Levenshtein, 4);
            let (p_knns, _) = idx.knn_prepared(&*prepared, 4, f64::INFINITY);
            let a: Vec<(usize, u64)> = knns
                .iter()
                .map(|n| (n.index, n.distance.to_bits()))
                .collect();
            let b: Vec<(usize, u64)> = p_knns
                .iter()
                .map(|n| (n.index, n.distance.to_bits()))
                .collect();
            assert_eq!(a, b, "query {q:?}");
        }
    }

    #[test]
    fn parallel_build_matches_sequential_build() {
        // Force a multi-threaded build even on a single-core box and
        // check the index is bit-identical to the sequential one.
        let db = corpus(90, 9, 3, 63);
        let pivots = select_pivots_max_sum(&db, 8, 0, &Levenshtein);
        let _guard = crate::TEST_ENV_LOCK.lock().unwrap();
        crate::parallel::set_thread_override(Some(4));
        let parallel = Laesa::build(db.clone(), pivots.clone(), &Levenshtein);
        crate::parallel::set_thread_override(Some(1));
        let sequential = Laesa::build(db.clone(), pivots, &Levenshtein);
        crate::parallel::set_thread_override(None);
        assert_eq!(parallel.rows, sequential.rows);
        assert_eq!(
            parallel.preprocessing_computations(),
            sequential.preprocessing_computations()
        );
        for q in corpus(10, 9, 3, 631) {
            let (a, _) = parallel.nn(&q, &Levenshtein).unwrap();
            let (b, _) = sequential.nn(&q, &Levenshtein).unwrap();
            assert_eq!(a.distance, b.distance);
            assert_eq!(a.index, b.index);
        }
    }
}
