//! AESA — Approximating and Eliminating Search Algorithm.
//!
//! The quadratic-memory ancestor of LAESA: preprocessing stores the
//! **full pairwise distance matrix** of the database (`O(n²)` time and
//! memory), and at query time *every* computed element acts as a
//! pivot, tightening the lower bound of all remaining candidates. AESA
//! famously achieves an (empirically) constant number of distance
//! computations per query — at a preprocessing price that is
//! prohibitive for large `n`, which is exactly the gap LAESA \[5\]
//! closes. Included as the reference point discussed with \[6\]
//! (Rico-Juan & Micó compare AESA and LAESA with string edit
//! distances).

use crate::parallel::par_map;
use crate::{sanitise_distance, Neighbour, SearchStats};
use cned_core::metric::Distance;
use cned_core::Symbol;

/// An AESA index: the full pairwise distance matrix.
pub struct Aesa<S: Symbol> {
    db: Vec<Vec<S>>,
    /// Row-major `n × n` matrix; `matrix[i*n + j] = d(db[i], db[j])`.
    matrix: Vec<f64>,
    preprocessing_computations: u64,
}

impl<S: Symbol> Aesa<S> {
    /// Build the full matrix: `n·(n−1)/2` distance computations,
    /// fanned out across cores (see [`crate::parallel`]; the strided
    /// work split balances the triangle's shrinking rows). Each worker
    /// prepares row `i`'s element once and streams it against
    /// `j > i`, so for `d_E` the Myers `Peq` cache is built `n` times
    /// instead of `n²/2`.
    pub fn build<D: Distance<S> + ?Sized>(db: Vec<Vec<S>>, dist: &D) -> Aesa<S> {
        let n = db.len();
        let upper_rows: Vec<Vec<f64>> = par_map(n, |i| {
            let prepared = dist.prepare(&db[i]);
            ((i + 1)..n).map(|j| prepared.distance_to(&db[j])).collect()
        });
        let mut matrix = vec![0.0f64; n * n];
        for (i, row) in upper_rows.iter().enumerate() {
            for (off, &d) in row.iter().enumerate() {
                let j = i + 1 + off;
                matrix[i * n + j] = d;
                matrix[j * n + i] = d;
            }
        }
        Aesa {
            db,
            matrix,
            preprocessing_computations: (n * n.saturating_sub(1) / 2) as u64,
        }
    }

    /// The database the index was built over.
    pub fn database(&self) -> &[Vec<S>] {
        &self.db
    }

    /// Distance computations spent building the matrix.
    pub fn preprocessing_computations(&self) -> u64 {
        self.preprocessing_computations
    }

    /// Nearest neighbour of `query`; every computed element updates
    /// every candidate's lower bound.
    pub fn nn<D: Distance<S> + ?Sized>(
        &self,
        query: &[S],
        dist: &D,
    ) -> Option<(Neighbour, SearchStats)> {
        let n = self.db.len();
        if n == 0 {
            return None;
        }
        // Prepared once per query (Myers Peq cache for d_E). Every
        // computed element is a pivot in AESA — its exact distance
        // tightens all remaining lower bounds — so unlike LAESA there
        // is no bounded-evaluation shortcut to take here.
        let prepared = dist.prepare(query);
        let mut alive = vec![true; n];
        let mut lower = vec![0.0f64; n];
        let mut n_alive = n;
        let mut computations = 0u64;
        let mut best = Neighbour {
            index: usize::MAX,
            distance: f64::INFINITY,
        };
        let mut selected = Some(0usize);

        while let Some(s) = selected.take() {
            let d = sanitise_distance(prepared.distance_to(&self.db[s]));
            computations += 1;
            let candidate = Neighbour {
                index: s,
                distance: d,
            };
            // Canonical tie-break: equal distances resolve to the
            // smallest index, matching linear/LAESA/sharded paths.
            if candidate.better_than(&best) {
                best = candidate;
            }
            alive[s] = false;
            n_alive -= 1;

            // Every computed element is a pivot in AESA.
            let row = &self.matrix[s * n..(s + 1) * n];
            let mut next: Option<(usize, f64)> = None;
            for u in 0..n {
                if !alive[u] {
                    continue;
                }
                let g = (d - row[u]).abs();
                if g > lower[u] {
                    lower[u] = g;
                }
                if lower[u] > best.distance + crate::ELIMINATION_SLACK {
                    alive[u] = false;
                    n_alive -= 1;
                } else if next.is_none_or(|(_, bg)| lower[u] < bg) {
                    next = Some((u, lower[u]));
                }
            }
            if n_alive == 0 {
                break;
            }
            // `next` may have been eliminated later in the same sweep
            // or missed (eliminated candidates skipped) — re-scan only
            // if needed.
            selected = match next {
                Some((u, _)) if alive[u] => Some(u),
                _ => {
                    let mut fallback: Option<(usize, f64)> = None;
                    for u in 0..n {
                        if alive[u] && fallback.is_none_or(|(_, bg)| lower[u] < bg) {
                            fallback = Some((u, lower[u]));
                        }
                    }
                    fallback.map(|(u, _)| u)
                }
            };
        }

        Some((
            best,
            SearchStats {
                distance_computations: computations,
            },
        ))
    }

    /// [`Aesa::nn`] for a batch of queries, parallelised across
    /// queries (each worker prepares its query once). Returns `None`
    /// on an empty database, mirroring the single-query API.
    pub fn nn_batch<D: Distance<S> + ?Sized>(
        &self,
        queries: &[Vec<S>],
        dist: &D,
    ) -> Option<Vec<(Neighbour, SearchStats)>> {
        if self.db.is_empty() {
            return None;
        }
        Some(par_map(queries.len(), |q| {
            self.nn(&queries[q], dist)
                .expect("database checked non-empty")
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laesa::Laesa;
    use crate::linear::linear_nn;
    use crate::pivots::select_pivots_max_sum;
    use cned_core::levenshtein::Levenshtein;

    fn corpus(n: usize, len: usize, alphabet: u8, seed: u64) -> Vec<Vec<u8>> {
        let mut state = seed | 1;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        (0..n)
            .map(|_| {
                let l = 1 + (rng() % len as u64) as usize;
                (0..l)
                    .map(|_| b'a' + (rng() % alphabet as u64) as u8)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn empty_db_returns_none() {
        let idx: Aesa<u8> = Aesa::build(Vec::new(), &Levenshtein);
        assert!(idx.nn(b"x", &Levenshtein).is_none());
    }

    #[test]
    fn matrix_preprocessing_count() {
        let db = corpus(20, 6, 3, 9);
        let idx = Aesa::build(db, &Levenshtein);
        assert_eq!(idx.preprocessing_computations(), 20 * 19 / 2);
    }

    #[test]
    fn agrees_with_linear_scan() {
        let db = corpus(100, 9, 3, 19);
        let queries = corpus(30, 9, 3, 191);
        let idx = Aesa::build(db.clone(), &Levenshtein);
        for q in &queries {
            let (l_nn, _) = linear_nn(&db, q, &Levenshtein).unwrap();
            let (a_nn, _) = idx.nn(q, &Levenshtein).unwrap();
            assert_eq!(a_nn.distance, l_nn.distance, "query {q:?}");
        }
    }

    #[test]
    fn aesa_uses_no_more_computations_than_laesa_on_average() {
        let db = corpus(200, 10, 3, 29);
        let queries = corpus(25, 10, 3, 291);
        let aesa = Aesa::build(db.clone(), &Levenshtein);
        let pivots = select_pivots_max_sum(&db, 12, 0, &Levenshtein);
        let laesa = Laesa::build(db, pivots, &Levenshtein);
        let (mut a_total, mut l_total) = (0u64, 0u64);
        for q in &queries {
            a_total += aesa.nn(q, &Levenshtein).unwrap().1.distance_computations;
            l_total += laesa.nn(q, &Levenshtein).unwrap().1.distance_computations;
        }
        assert!(
            a_total <= l_total,
            "AESA ({a_total}) should not exceed LAESA ({l_total}) in total computations"
        );
    }

    #[test]
    fn finds_exact_member_with_few_computations() {
        let db = corpus(150, 8, 3, 41);
        let probe = db[42].clone();
        let idx = Aesa::build(db, &Levenshtein);
        let (nn, stats) = idx.nn(&probe, &Levenshtein).unwrap();
        assert_eq!(nn.distance, 0.0);
        assert!(stats.distance_computations < 150);
    }

    #[test]
    fn batch_matches_single_queries() {
        let db = corpus(80, 9, 3, 47);
        let queries = corpus(15, 9, 3, 471);
        let idx = Aesa::build(db, &Levenshtein);
        let batch = idx.nn_batch(&queries, &Levenshtein).unwrap();
        for (q, (nn, stats)) in queries.iter().zip(&batch) {
            let (snn, sstats) = idx.nn(q, &Levenshtein).unwrap();
            assert_eq!(nn.distance, snn.distance, "query {q:?}");
            assert_eq!(stats.distance_computations, sstats.distance_computations);
        }
        let empty: Aesa<u8> = Aesa::build(Vec::new(), &Levenshtein);
        assert!(empty.nn_batch(&queries, &Levenshtein).is_none());
    }

    #[test]
    fn parallel_build_matches_sequential_build() {
        let db = corpus(60, 8, 3, 51);
        let _guard = crate::TEST_ENV_LOCK.lock().unwrap();
        crate::parallel::set_thread_override(Some(4));
        let parallel = Aesa::build(db.clone(), &Levenshtein);
        crate::parallel::set_thread_override(Some(1));
        let sequential = Aesa::build(db, &Levenshtein);
        crate::parallel::set_thread_override(None);
        assert_eq!(parallel.matrix, sequential.matrix);
        assert_eq!(
            parallel.preprocessing_computations(),
            sequential.preprocessing_computations()
        );
    }
}
