//! AESA — Approximating and Eliminating Search Algorithm.
//!
//! The quadratic-memory ancestor of LAESA: preprocessing stores the
//! **full pairwise distance matrix** of the database (`O(n²)` time and
//! memory), and at query time *every* computed element acts as a
//! pivot, tightening the lower bound of all remaining candidates. AESA
//! famously achieves an (empirically) constant number of distance
//! computations per query — at a preprocessing price that is
//! prohibitive for large `n`, which is exactly the gap LAESA \[5\]
//! closes. Included as the reference point discussed with \[6\]
//! (Rico-Juan & Micó compare AESA and LAESA with string edit
//! distances).

use crate::{Neighbour, SearchStats};
use cned_core::metric::Distance;
use cned_core::Symbol;

/// An AESA index: the full pairwise distance matrix.
pub struct Aesa<S: Symbol> {
    db: Vec<Vec<S>>,
    /// Row-major `n × n` matrix; `matrix[i*n + j] = d(db[i], db[j])`.
    matrix: Vec<f64>,
    preprocessing_computations: u64,
}

impl<S: Symbol> Aesa<S> {
    /// Build the full matrix: `n·(n−1)/2` distance computations.
    pub fn build<D: Distance<S> + ?Sized>(db: Vec<Vec<S>>, dist: &D) -> Aesa<S> {
        let n = db.len();
        let mut matrix = vec![0.0f64; n * n];
        let mut computations = 0u64;
        for i in 0..n {
            for j in (i + 1)..n {
                let d = dist.distance(&db[i], &db[j]);
                computations += 1;
                matrix[i * n + j] = d;
                matrix[j * n + i] = d;
            }
        }
        Aesa {
            db,
            matrix,
            preprocessing_computations: computations,
        }
    }

    /// The database the index was built over.
    pub fn database(&self) -> &[Vec<S>] {
        &self.db
    }

    /// Distance computations spent building the matrix.
    pub fn preprocessing_computations(&self) -> u64 {
        self.preprocessing_computations
    }

    /// Nearest neighbour of `query`; every computed element updates
    /// every candidate's lower bound.
    pub fn nn<D: Distance<S> + ?Sized>(
        &self,
        query: &[S],
        dist: &D,
    ) -> Option<(Neighbour, SearchStats)> {
        let n = self.db.len();
        if n == 0 {
            return None;
        }
        let mut alive = vec![true; n];
        let mut lower = vec![0.0f64; n];
        let mut n_alive = n;
        let mut computations = 0u64;
        let mut best = Neighbour {
            index: usize::MAX,
            distance: f64::INFINITY,
        };
        let mut selected = Some(0usize);

        while let Some(s) = selected.take() {
            let d = dist.distance(&self.db[s], query);
            computations += 1;
            if d < best.distance {
                best = Neighbour { index: s, distance: d };
            }
            alive[s] = false;
            n_alive -= 1;

            // Every computed element is a pivot in AESA.
            let row = &self.matrix[s * n..(s + 1) * n];
            let mut next: Option<(usize, f64)> = None;
            for u in 0..n {
                if !alive[u] {
                    continue;
                }
                let g = (d - row[u]).abs();
                if g > lower[u] {
                    lower[u] = g;
                }
                if lower[u] > best.distance {
                    alive[u] = false;
                    n_alive -= 1;
                } else if next.is_none_or(|(_, bg)| lower[u] < bg) {
                    next = Some((u, lower[u]));
                }
            }
            if n_alive == 0 {
                break;
            }
            // `next` may have been eliminated later in the same sweep
            // or missed (eliminated candidates skipped) — re-scan only
            // if needed.
            selected = match next {
                Some((u, _)) if alive[u] => Some(u),
                _ => {
                    let mut fallback: Option<(usize, f64)> = None;
                    for u in 0..n {
                        if alive[u] && fallback.is_none_or(|(_, bg)| lower[u] < bg) {
                            fallback = Some((u, lower[u]));
                        }
                    }
                    fallback.map(|(u, _)| u)
                }
            };
        }

        Some((
            best,
            SearchStats {
                distance_computations: computations,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laesa::Laesa;
    use crate::linear::linear_nn;
    use crate::pivots::select_pivots_max_sum;
    use cned_core::levenshtein::Levenshtein;

    fn corpus(n: usize, len: usize, alphabet: u8, seed: u64) -> Vec<Vec<u8>> {
        let mut state = seed | 1;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        (0..n)
            .map(|_| {
                let l = 1 + (rng() % len as u64) as usize;
                (0..l).map(|_| b'a' + (rng() % alphabet as u64) as u8).collect()
            })
            .collect()
    }

    #[test]
    fn empty_db_returns_none() {
        let idx: Aesa<u8> = Aesa::build(Vec::new(), &Levenshtein);
        assert!(idx.nn(b"x", &Levenshtein).is_none());
    }

    #[test]
    fn matrix_preprocessing_count() {
        let db = corpus(20, 6, 3, 9);
        let idx = Aesa::build(db, &Levenshtein);
        assert_eq!(idx.preprocessing_computations(), 20 * 19 / 2);
    }

    #[test]
    fn agrees_with_linear_scan() {
        let db = corpus(100, 9, 3, 19);
        let queries = corpus(30, 9, 3, 191);
        let idx = Aesa::build(db.clone(), &Levenshtein);
        for q in &queries {
            let (l_nn, _) = linear_nn(&db, q, &Levenshtein).unwrap();
            let (a_nn, _) = idx.nn(q, &Levenshtein).unwrap();
            assert_eq!(a_nn.distance, l_nn.distance, "query {q:?}");
        }
    }

    #[test]
    fn aesa_uses_no_more_computations_than_laesa_on_average() {
        let db = corpus(200, 10, 3, 29);
        let queries = corpus(25, 10, 3, 291);
        let aesa = Aesa::build(db.clone(), &Levenshtein);
        let pivots = select_pivots_max_sum(&db, 12, 0, &Levenshtein);
        let laesa = Laesa::build(db, pivots, &Levenshtein);
        let (mut a_total, mut l_total) = (0u64, 0u64);
        for q in &queries {
            a_total += aesa.nn(q, &Levenshtein).unwrap().1.distance_computations;
            l_total += laesa.nn(q, &Levenshtein).unwrap().1.distance_computations;
        }
        assert!(
            a_total <= l_total,
            "AESA ({a_total}) should not exceed LAESA ({l_total}) in total computations"
        );
    }

    #[test]
    fn finds_exact_member_with_few_computations() {
        let db = corpus(150, 8, 3, 41);
        let probe = db[42].clone();
        let idx = Aesa::build(db, &Levenshtein);
        let (nn, stats) = idx.nn(&probe, &Levenshtein).unwrap();
        assert_eq!(nn.distance, 0.0);
        assert!(stats.distance_computations < 150);
    }
}
