//! AESA — Approximating and Eliminating Search Algorithm.
//!
//! The quadratic-memory ancestor of LAESA: preprocessing stores the
//! **full pairwise distance matrix** of the database (`O(n²)` time and
//! memory), and at query time *every* computed element acts as a
//! pivot, tightening the lower bound of all remaining candidates. AESA
//! famously achieves an (empirically) constant number of distance
//! computations per query — at a preprocessing price that is
//! prohibitive for large `n`, which is exactly the gap LAESA \[5\]
//! closes. Included as the reference point discussed with \[6\]
//! (Rico-Juan & Micó compare AESA and LAESA with string edit
//! distances).

use crate::error::SearchError;
use crate::index::{MetricIndex, QueryOptions};
use crate::parallel::par_map;
use crate::tombstone::TombstoneSet;
use crate::{sanitise_distance, Neighbour, SearchStats};
use cned_core::metric::{Distance, PreparedQuery};
use cned_core::Symbol;

/// An AESA index: the full pairwise distance matrix.
pub struct Aesa<S: Symbol> {
    db: Vec<Vec<S>>,
    /// Row-major `n × n` matrix; `matrix[i*n + j] = d(db[i], db[j])`.
    matrix: Vec<f64>,
    preprocessing_computations: u64,
    tombstones: TombstoneSet,
}

impl<S: Symbol> Aesa<S> {
    /// Build the full matrix: `n·(n−1)/2` distance computations,
    /// fanned out across cores (see [`crate::parallel`]; the strided
    /// work split balances the triangle's shrinking rows). Each worker
    /// prepares row `i`'s element once and streams it against
    /// `j > i`, so for `d_E` the Myers `Peq` cache is built `n` times
    /// instead of `n²/2`.
    pub fn build<D: Distance<S> + ?Sized>(db: Vec<Vec<S>>, dist: &D) -> Aesa<S> {
        let n = db.len();
        let upper_rows: Vec<Vec<f64>> = par_map(n, |i| {
            let prepared = dist.prepare(&db[i]);
            ((i + 1)..n).map(|j| prepared.distance_to(&db[j])).collect()
        });
        let mut matrix = vec![0.0f64; n * n];
        for (i, row) in upper_rows.iter().enumerate() {
            for (off, &d) in row.iter().enumerate() {
                let j = i + 1 + off;
                matrix[i * n + j] = d;
                matrix[j * n + i] = d;
            }
        }
        Aesa {
            db,
            matrix,
            preprocessing_computations: (n * n.saturating_sub(1) / 2) as u64,
            tombstones: TombstoneSet::new(),
        }
    }

    /// The database the index was built over.
    pub fn database(&self) -> &[Vec<S>] {
        &self.db
    }

    /// Distance computations spent building the matrix.
    pub fn preprocessing_computations(&self) -> u64 {
        self.preprocessing_computations
    }

    /// Nearest neighbour of `query`; every computed element updates
    /// every candidate's lower bound.
    #[deprecated(
        since = "0.2.0",
        note = "use `MetricIndex::nn` with `QueryOptions` (or the `cned::Database` facade)"
    )]
    pub fn nn<D: Distance<S> + ?Sized>(
        &self,
        query: &[S],
        dist: &D,
    ) -> Option<(Neighbour, SearchStats)> {
        if self.db.is_empty() {
            return None;
        }
        let prepared = dist.prepare(query);
        let (best, stats) = self.nn_prepared(&*prepared, f64::INFINITY);
        best.map(|nb| (nb, stats))
    }

    /// Nearest neighbour **within `radius`** of an already-prepared
    /// query: `Some(nb)` with `nb.distance <= radius` (ties towards
    /// the smallest index), or `None` when no element lies within the
    /// radius. The statistics are returned either way.
    ///
    /// Every computed element is a pivot in AESA — its exact distance
    /// tightens all remaining lower bounds — so unlike LAESA there is
    /// no bounded-evaluation shortcut to take here; the radius seed
    /// still pays off through earlier candidate elimination.
    pub fn nn_prepared(
        &self,
        prepared: &dyn PreparedQuery<S>,
        radius: f64,
    ) -> (Option<Neighbour>, SearchStats) {
        let n = self.db.len();
        if n == 0 {
            return (None, SearchStats::default());
        }
        let mut alive = vec![true; n];
        let mut lower = vec![0.0f64; n];
        let mut n_alive = n;
        let mut computations = 0u64;
        // The radius doubles as a virtual incumbent (usize::MAX loses
        // every index tie-break; an infinite distance never wins one).
        let mut best = Neighbour {
            index: usize::MAX,
            distance: radius,
        };
        let mut selected = Some(0usize);

        while let Some(s) = selected.take() {
            let d = sanitise_distance(prepared.distance_to(&self.db[s]));
            computations += 1;
            let candidate = Neighbour {
                index: s,
                distance: d,
            };
            // Canonical tie-break: equal distances resolve to the
            // smallest index, matching linear/LAESA/sharded paths.
            if candidate.better_than(&best) {
                best = candidate;
            }
            alive[s] = false;
            n_alive -= 1;

            // Every computed element is a pivot in AESA.
            let row = &self.matrix[s * n..(s + 1) * n];
            let mut next: Option<(usize, f64)> = None;
            for u in 0..n {
                if !alive[u] {
                    continue;
                }
                let g = (d - row[u]).abs();
                if g > lower[u] {
                    lower[u] = g;
                }
                if lower[u] > best.distance + crate::ELIMINATION_SLACK {
                    alive[u] = false;
                    n_alive -= 1;
                } else if next.is_none_or(|(_, bg)| lower[u] < bg) {
                    next = Some((u, lower[u]));
                }
            }
            if n_alive == 0 {
                break;
            }
            // `next` may have been eliminated later in the same sweep
            // or missed (eliminated candidates skipped) — re-scan only
            // if needed.
            selected = match next {
                Some((u, _)) if alive[u] => Some(u),
                _ => {
                    let mut fallback: Option<(usize, f64)> = None;
                    for u in 0..n {
                        if alive[u] && fallback.is_none_or(|(_, bg)| lower[u] < bg) {
                            fallback = Some((u, lower[u]));
                        }
                    }
                    fallback.map(|(u, _)| u)
                }
            };
        }

        let found = (best.index != usize::MAX).then_some(best);
        (
            found,
            SearchStats {
                distance_computations: computations,
            },
        )
    }

    /// The `k` nearest neighbours **within `radius`** of an
    /// already-prepared query, in the canonical (distance, index)
    /// order. Same machinery as [`Aesa::nn_prepared`] but elimination
    /// uses the running `k`-th-best distance.
    pub fn knn_prepared(
        &self,
        prepared: &dyn PreparedQuery<S>,
        k: usize,
        radius: f64,
    ) -> (Vec<Neighbour>, SearchStats) {
        let n = self.db.len();
        if n == 0 || k == 0 {
            return (Vec::new(), SearchStats::default());
        }
        let mut alive = vec![true; n];
        let mut lower = vec![0.0f64; n];
        let mut n_alive = n;
        let mut computations = 0u64;
        let mut best: Vec<Neighbour> = Vec::with_capacity(k + 1);
        let kth = |best: &Vec<Neighbour>| -> f64 {
            if best.len() < k {
                radius
            } else {
                best[k - 1].distance
            }
        };
        let mut selected = Some(0usize);

        while let Some(s) = selected.take() {
            let d = sanitise_distance(prepared.distance_to(&self.db[s]));
            computations += 1;
            if d.is_finite() && d <= radius {
                let candidate = Neighbour {
                    index: s,
                    distance: d,
                };
                let pos = best
                    .binary_search_by(|nb| nb.ordering(&candidate))
                    .unwrap_or_else(|e| e);
                best.insert(pos, candidate);
                best.truncate(k);
            }
            alive[s] = false;
            n_alive -= 1;

            let bound = kth(&best);
            let row = &self.matrix[s * n..(s + 1) * n];
            let mut next: Option<(usize, f64)> = None;
            for u in 0..n {
                if !alive[u] {
                    continue;
                }
                let g = (d - row[u]).abs();
                if g > lower[u] {
                    lower[u] = g;
                }
                if lower[u] > bound + crate::ELIMINATION_SLACK {
                    alive[u] = false;
                    n_alive -= 1;
                } else if next.is_none_or(|(_, bg)| lower[u] < bg) {
                    next = Some((u, lower[u]));
                }
            }
            if n_alive == 0 {
                break;
            }
            selected = match next {
                Some((u, _)) if alive[u] => Some(u),
                _ => {
                    let mut fallback: Option<(usize, f64)> = None;
                    for u in 0..n {
                        if alive[u] && fallback.is_none_or(|(_, bg)| lower[u] < bg) {
                            fallback = Some((u, lower[u]));
                        }
                    }
                    fallback.map(|(u, _)| u)
                }
            };
        }

        (
            best,
            SearchStats {
                distance_computations: computations,
            },
        )
    }

    /// Every element **within `radius`** (inclusive) of an
    /// already-prepared query, in canonical order. The radius never
    /// shrinks, so elimination is against a fixed bound: each computed
    /// element's exact distance answers its own membership and
    /// tightens every survivor's lower bound.
    pub fn range_prepared(
        &self,
        prepared: &dyn PreparedQuery<S>,
        radius: f64,
    ) -> (Vec<Neighbour>, SearchStats) {
        let n = self.db.len();
        let mut alive = vec![true; n];
        let mut lower = vec![0.0f64; n];
        let mut n_alive = n;
        let mut computations = 0u64;
        let mut hits: Vec<Neighbour> = Vec::new();
        let mut selected = (n > 0).then_some(0usize);

        while let Some(s) = selected.take() {
            let d = sanitise_distance(prepared.distance_to(&self.db[s]));
            computations += 1;
            if d.is_finite() && d <= radius {
                hits.push(Neighbour {
                    index: s,
                    distance: d,
                });
            }
            alive[s] = false;
            n_alive -= 1;

            let row = &self.matrix[s * n..(s + 1) * n];
            let mut next: Option<(usize, f64)> = None;
            for u in 0..n {
                if !alive[u] {
                    continue;
                }
                let g = (d - row[u]).abs();
                if g > lower[u] {
                    lower[u] = g;
                }
                if lower[u] > radius + crate::ELIMINATION_SLACK {
                    alive[u] = false;
                    n_alive -= 1;
                } else if next.is_none_or(|(_, bg)| lower[u] < bg) {
                    next = Some((u, lower[u]));
                }
            }
            if n_alive == 0 {
                break;
            }
            selected = match next {
                Some((u, _)) if alive[u] => Some(u),
                _ => {
                    let mut fallback: Option<(usize, f64)> = None;
                    for u in 0..n {
                        if alive[u] && fallback.is_none_or(|(_, bg)| lower[u] < bg) {
                            fallback = Some((u, lower[u]));
                        }
                    }
                    fallback.map(|(u, _)| u)
                }
            };
        }

        hits.sort_by(|a, b| a.ordering(b));
        (
            hits,
            SearchStats {
                distance_computations: computations,
            },
        )
    }

    /// `nn` for a batch of queries, parallelised across queries (each
    /// worker prepares its query once). Returns `None` on an empty
    /// database, mirroring the single-query API.
    #[deprecated(
        since = "0.2.0",
        note = "use `MetricIndex::nn_batch` with `QueryOptions` (or the `cned::Database` facade)"
    )]
    pub fn nn_batch<D: Distance<S> + ?Sized>(
        &self,
        queries: &[Vec<S>],
        dist: &D,
    ) -> Option<Vec<(Neighbour, SearchStats)>> {
        if self.db.is_empty() {
            return None;
        }
        Some(par_map(queries.len(), |q| {
            let prepared = dist.prepare(&queries[q]);
            let (best, stats) = self.nn_prepared(&*prepared, f64::INFINITY);
            (best.expect("database checked non-empty"), stats)
        }))
    }
}

impl<S: Symbol> MetricIndex<S> for Aesa<S> {
    fn len(&self) -> usize {
        self.db.len()
    }

    fn backend_name(&self) -> &'static str {
        "aesa"
    }

    fn item(&self, i: usize) -> Option<&[S]> {
        self.db.get(i).map(Vec::as_slice)
    }

    fn nn(
        &self,
        query: &[S],
        dist: &dyn Distance<S>,
        opts: &QueryOptions,
    ) -> Result<(Option<Neighbour>, SearchStats), SearchError> {
        if self.db.is_empty() {
            return Err(SearchError::EmptyDatabase);
        }
        let radius = opts.checked_radius()?;
        let prepared = dist.prepare(query);
        if self.tombstones.is_empty() {
            let (found, stats) = self.nn_prepared(&*prepared, radius);
            opts.record(stats);
            return Ok((found, stats));
        }
        // Over-fetch: at most T of the top 1+T answers can be dead.
        let want = 1 + self.tombstones.count();
        let (hits, stats) = self.knn_prepared(&*prepared, want, radius);
        let found = self.tombstones.first_live(&hits);
        opts.record(stats);
        Ok((found, stats))
    }

    fn knn(
        &self,
        query: &[S],
        dist: &dyn Distance<S>,
        opts: &QueryOptions,
    ) -> Result<(Vec<Neighbour>, SearchStats), SearchError> {
        if self.db.is_empty() {
            return Err(SearchError::EmptyDatabase);
        }
        let radius = opts.checked_radius()?;
        let prepared = dist.prepare(query);
        let want = if self.tombstones.is_empty() {
            opts.k
        } else {
            opts.k.saturating_add(self.tombstones.count())
        };
        let (mut best, stats) = self.knn_prepared(&*prepared, want, radius);
        self.tombstones.retain_live(&mut best);
        best.truncate(opts.k);
        opts.record(stats);
        Ok((best, stats))
    }

    fn range(
        &self,
        query: &[S],
        dist: &dyn Distance<S>,
        opts: &QueryOptions,
    ) -> Result<(Vec<Neighbour>, SearchStats), SearchError> {
        if self.db.is_empty() {
            return Err(SearchError::EmptyDatabase);
        }
        let radius = opts.checked_radius()?;
        let prepared = dist.prepare(query);
        let (mut hits, stats) = self.range_prepared(&*prepared, radius);
        self.tombstones.retain_live(&mut hits);
        opts.record(stats);
        Ok((hits, stats))
    }

    fn delete(&mut self, index: usize) -> Result<bool, SearchError> {
        if index >= self.db.len() {
            return Ok(false);
        }
        Ok(self.tombstones.insert(index))
    }

    fn deleted(&self) -> usize {
        self.tombstones.count()
    }

    fn is_deleted(&self, i: usize) -> bool {
        self.tombstones.contains(i)
    }
}

#[cfg(test)]
mod tests {
    // These tests pin the deprecated forwarders' behaviour (they share
    // cores with the MetricIndex path) until the legacy surface is
    // removed.
    #![allow(deprecated)]

    use super::*;
    use crate::laesa::Laesa;
    use crate::linear::linear_nn;
    use crate::pivots::select_pivots_max_sum;
    use cned_core::levenshtein::Levenshtein;

    fn corpus(n: usize, len: usize, alphabet: u8, seed: u64) -> Vec<Vec<u8>> {
        let mut state = seed | 1;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        (0..n)
            .map(|_| {
                let l = 1 + (rng() % len as u64) as usize;
                (0..l)
                    .map(|_| b'a' + (rng() % alphabet as u64) as u8)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn empty_db_returns_none() {
        let idx: Aesa<u8> = Aesa::build(Vec::new(), &Levenshtein);
        assert!(idx.nn(b"x", &Levenshtein).is_none());
    }

    #[test]
    fn matrix_preprocessing_count() {
        let db = corpus(20, 6, 3, 9);
        let idx = Aesa::build(db, &Levenshtein);
        assert_eq!(idx.preprocessing_computations(), 20 * 19 / 2);
    }

    #[test]
    fn agrees_with_linear_scan() {
        let db = corpus(100, 9, 3, 19);
        let queries = corpus(30, 9, 3, 191);
        let idx = Aesa::build(db.clone(), &Levenshtein);
        for q in &queries {
            let (l_nn, _) = linear_nn(&db, q, &Levenshtein).unwrap();
            let (a_nn, _) = idx.nn(q, &Levenshtein).unwrap();
            assert_eq!(a_nn.distance, l_nn.distance, "query {q:?}");
        }
    }

    #[test]
    fn aesa_uses_no_more_computations_than_laesa_on_average() {
        let db = corpus(200, 10, 3, 29);
        let queries = corpus(25, 10, 3, 291);
        let aesa = Aesa::build(db.clone(), &Levenshtein);
        let pivots = select_pivots_max_sum(&db, 12, 0, &Levenshtein);
        let laesa = Laesa::build(db, pivots, &Levenshtein);
        let (mut a_total, mut l_total) = (0u64, 0u64);
        for q in &queries {
            a_total += aesa.nn(q, &Levenshtein).unwrap().1.distance_computations;
            l_total += laesa.nn(q, &Levenshtein).unwrap().1.distance_computations;
        }
        assert!(
            a_total <= l_total,
            "AESA ({a_total}) should not exceed LAESA ({l_total}) in total computations"
        );
    }

    #[test]
    fn finds_exact_member_with_few_computations() {
        let db = corpus(150, 8, 3, 41);
        let probe = db[42].clone();
        let idx = Aesa::build(db, &Levenshtein);
        let (nn, stats) = idx.nn(&probe, &Levenshtein).unwrap();
        assert_eq!(nn.distance, 0.0);
        assert!(stats.distance_computations < 150);
    }

    #[test]
    fn batch_matches_single_queries() {
        let db = corpus(80, 9, 3, 47);
        let queries = corpus(15, 9, 3, 471);
        let idx = Aesa::build(db, &Levenshtein);
        let batch = idx.nn_batch(&queries, &Levenshtein).unwrap();
        for (q, (nn, stats)) in queries.iter().zip(&batch) {
            let (snn, sstats) = idx.nn(q, &Levenshtein).unwrap();
            assert_eq!(nn.distance, snn.distance, "query {q:?}");
            assert_eq!(stats.distance_computations, sstats.distance_computations);
        }
        let empty: Aesa<u8> = Aesa::build(Vec::new(), &Levenshtein);
        assert!(empty.nn_batch(&queries, &Levenshtein).is_none());
    }

    #[test]
    fn knn_and_range_match_linear_oracles() {
        use crate::index::{MetricIndex, QueryOptions};
        let db = corpus(90, 9, 3, 61);
        let queries = corpus(15, 9, 3, 611);
        let idx = Aesa::build(db.clone(), &Levenshtein);
        for q in &queries {
            let prepared = cned_core::metric::Distance::<u8>::prepare(&Levenshtein, q);
            let all: Vec<(usize, f64)> = db
                .iter()
                .enumerate()
                .map(|(i, item)| (i, prepared.distance_to(item)))
                .collect();
            // k-NN oracle: sort-and-truncate under the canonical order.
            let mut sorted = all.clone();
            sorted.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            let (knn, _) = idx.knn(q, &Levenshtein, &QueryOptions::new().k(5)).unwrap();
            let got: Vec<(usize, f64)> = knn.iter().map(|n| (n.index, n.distance)).collect();
            assert_eq!(got, sorted[..5].to_vec(), "query {q:?}");
            // Range oracle: filter at each radius.
            for radius in [0.0, 1.0, 3.0] {
                let oracle: Vec<(usize, f64)> = sorted
                    .iter()
                    .copied()
                    .filter(|&(_, d)| d <= radius)
                    .collect();
                let (hits, stats) = idx
                    .range(q, &Levenshtein, &QueryOptions::new().radius(radius))
                    .unwrap();
                let got: Vec<(usize, f64)> = hits.iter().map(|n| (n.index, n.distance)).collect();
                assert_eq!(got, oracle, "query {q:?} radius {radius}");
                assert!(stats.distance_computations <= db.len() as u64);
            }
        }
    }

    #[test]
    fn radius_seeded_nn_prunes_and_excludes() {
        let db = corpus(60, 8, 3, 67);
        let idx = Aesa::build(db.clone(), &Levenshtein);
        for q in corpus(8, 8, 3, 671) {
            let prepared = cned_core::metric::Distance::<u8>::prepare(&Levenshtein, &q);
            let (nb, _) = idx.nn_prepared(&*prepared, f64::INFINITY);
            let nb = nb.unwrap();
            let (at, _) = idx.nn_prepared(&*prepared, nb.distance);
            let at = at.unwrap();
            assert_eq!((at.index, at.distance), (nb.index, nb.distance));
            if nb.distance > 0.0 {
                let (below, _) = idx.nn_prepared(&*prepared, nb.distance - 0.5);
                assert!(below.is_none(), "query {q:?}");
            }
        }
    }

    #[test]
    fn parallel_build_matches_sequential_build() {
        let db = corpus(60, 8, 3, 51);
        let _guard = crate::TEST_ENV_LOCK.lock().unwrap();
        crate::parallel::set_thread_override(Some(4));
        let parallel = Aesa::build(db.clone(), &Levenshtein);
        crate::parallel::set_thread_override(Some(1));
        let sequential = Aesa::build(db, &Levenshtein);
        crate::parallel::set_thread_override(None);
        assert_eq!(parallel.matrix, sequential.matrix);
        assert_eq!(
            parallel.preprocessing_computations(),
            sequential.preprocessing_computations()
        );
    }
}
