//! Exhaustive (linear-scan) nearest-neighbour search.
//!
//! Computes the distance from the query to *every* database element —
//! `n` distance computations, no preprocessing, correct for any
//! distance function (metric or not). This is the "Exhaustive search"
//! column of Table 2 and the correctness oracle for LAESA/AESA tests.

use crate::{Neighbour, SearchStats};
use cned_core::metric::Distance;
use cned_core::Symbol;

/// Nearest neighbour of `query` in `db` by exhaustive scan.
///
/// Ties are broken towards the smallest index. Returns `None` on an
/// empty database.
pub fn linear_nn<S: Symbol, D: Distance<S> + ?Sized>(
    db: &[Vec<S>],
    query: &[S],
    dist: &D,
) -> Option<(Neighbour, SearchStats)> {
    let mut best: Option<Neighbour> = None;
    for (i, item) in db.iter().enumerate() {
        let d = dist.distance(item, query);
        if best.is_none_or(|b| d < b.distance) {
            best = Some(Neighbour { index: i, distance: d });
        }
    }
    best.map(|b| {
        (
            b,
            SearchStats {
                distance_computations: db.len() as u64,
            },
        )
    })
}

/// The `k` nearest neighbours of `query` in `db`, sorted by increasing
/// distance (ties towards smaller index). Returns fewer than `k`
/// entries when the database is smaller than `k`.
pub fn linear_knn<S: Symbol, D: Distance<S> + ?Sized>(
    db: &[Vec<S>],
    query: &[S],
    dist: &D,
    k: usize,
) -> (Vec<Neighbour>, SearchStats) {
    let stats = SearchStats {
        distance_computations: db.len() as u64,
    };
    if k == 0 {
        return (Vec::new(), stats);
    }
    let mut all: Vec<Neighbour> = db
        .iter()
        .enumerate()
        .map(|(i, item)| Neighbour {
            index: i,
            distance: dist.distance(item, query),
        })
        .collect();
    all.sort_by(|a, b| {
        a.distance
            .partial_cmp(&b.distance)
            .expect("distances must not be NaN")
            .then(a.index.cmp(&b.index))
    });
    all.truncate(k);
    (all, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cned_core::levenshtein::Levenshtein;

    fn db() -> Vec<Vec<u8>> {
        [&b"casa"[..], b"cosa", b"masa", b"taza", b"cesta"]
            .iter()
            .map(|w| w.to_vec())
            .collect()
    }

    #[test]
    fn finds_the_obvious_neighbour() {
        let (nn, stats) = linear_nn(&db(), b"casa", &Levenshtein).unwrap();
        assert_eq!(nn.index, 0);
        assert_eq!(nn.distance, 0.0);
        assert_eq!(stats.distance_computations, 5);
    }

    #[test]
    fn empty_db_returns_none() {
        let db: Vec<Vec<u8>> = Vec::new();
        assert!(linear_nn(&db, b"x", &Levenshtein).is_none());
    }

    #[test]
    fn tie_breaks_to_first_index() {
        // "casa" and "cosa" are both at distance 1 from "cysa"... make
        // a clean tie: query "c?sa" pattern equidistant from both.
        let db: Vec<Vec<u8>> = vec![b"aa".to_vec(), b"bb".to_vec()];
        let (nn, _) = linear_nn(&db, b"ab", &Levenshtein).unwrap();
        assert_eq!(nn.index, 0);
    }

    #[test]
    fn knn_sorted_and_truncated() {
        let (nns, stats) = linear_knn(&db(), b"casa", &Levenshtein, 3);
        assert_eq!(nns.len(), 3);
        assert!(nns.windows(2).all(|w| w[0].distance <= w[1].distance));
        assert_eq!(nns[0].index, 0);
        assert_eq!(stats.distance_computations, 5);
    }

    #[test]
    fn knn_with_k_larger_than_db() {
        let (nns, _) = linear_knn(&db(), b"casa", &Levenshtein, 100);
        assert_eq!(nns.len(), 5);
    }

    #[test]
    fn knn_zero_is_empty() {
        let (nns, _) = linear_knn(&db(), b"casa", &Levenshtein, 0);
        assert!(nns.is_empty());
    }
}
