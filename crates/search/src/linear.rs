//! Exhaustive (linear-scan) nearest-neighbour search.
//!
//! Computes the distance from the query to *every* database element —
//! `n` distance computations, no preprocessing, correct for any
//! distance function (metric or not). This is the "Exhaustive search"
//! column of Table 2 and the correctness oracle for LAESA/AESA tests.
//!
//! Even the exhaustive scan benefits from the throughput machinery:
//! the query is [prepared](cned_core::metric::Distance::prepare) once
//! (for `d_E` that caches the Myers `Peq` bitmaps), each comparison is
//! requested with the current best as an early-exit budget, and the
//! `_batch` variants fan out across queries on all cores.

use crate::parallel::par_map;
use crate::{Neighbour, SearchStats};
use cned_core::metric::Distance;
use cned_core::Symbol;

/// Nearest neighbour of `query` in `db` by exhaustive scan.
///
/// Ties are broken towards the smallest index. Returns `None` on an
/// empty database.
pub fn linear_nn<S: Symbol, D: Distance<S> + ?Sized>(
    db: &[Vec<S>],
    query: &[S],
    dist: &D,
) -> Option<(Neighbour, SearchStats)> {
    let prepared = dist.prepare(query);
    let mut best: Option<Neighbour> = None;
    for (i, item) in db.iter().enumerate() {
        match best {
            None => {
                let d = prepared.distance_to(item);
                best = Some(Neighbour {
                    index: i,
                    distance: d,
                });
            }
            Some(b) => {
                // Early-exit budget: anything at or above the current
                // best cannot replace it (ties keep the smaller index).
                if let Some(d) = prepared.distance_to_bounded(item, b.distance) {
                    if d < b.distance {
                        best = Some(Neighbour {
                            index: i,
                            distance: d,
                        });
                    }
                }
            }
        }
    }
    best.map(|b| {
        (
            b,
            SearchStats {
                distance_computations: db.len() as u64,
            },
        )
    })
}

/// The `k` nearest neighbours of `query` in `db`, sorted by increasing
/// distance (ties towards smaller index). Returns fewer than `k`
/// entries when the database is smaller than `k`.
///
/// Each comparison is budgeted at the current `k`-th-best distance,
/// so engines with early exit abandon items that cannot enter the
/// result; output is identical to a full sort-and-truncate.
pub fn linear_knn<S: Symbol, D: Distance<S> + ?Sized>(
    db: &[Vec<S>],
    query: &[S],
    dist: &D,
    k: usize,
) -> (Vec<Neighbour>, SearchStats) {
    let stats = SearchStats {
        distance_computations: db.len() as u64,
    };
    if k == 0 {
        return (Vec::new(), stats);
    }
    let prepared = dist.prepare(query);
    // Current k best, sorted ascending; scanning in index order keeps
    // equal-distance ties on the smaller index (equal keys insert
    // after their peers, and the k-th boundary admits d == kth only
    // to be truncated away — exactly the sort-and-truncate outcome).
    let mut best: Vec<Neighbour> = Vec::with_capacity(k + 1);
    for (i, item) in db.iter().enumerate() {
        let budget = if best.len() < k {
            f64::INFINITY
        } else {
            best[k - 1].distance
        };
        let Some(d) = prepared.distance_to_bounded(item, budget) else {
            continue;
        };
        let pos = best
            .binary_search_by(|nb| {
                nb.distance
                    .partial_cmp(&d)
                    .expect("distances must not be NaN")
                    .then(core::cmp::Ordering::Less)
            })
            .unwrap_or_else(|e| e);
        best.insert(
            pos,
            Neighbour {
                index: i,
                distance: d,
            },
        );
        best.truncate(k);
    }
    (best, stats)
}

/// [`linear_nn`] for a batch of queries, parallelised across queries;
/// each worker prepares its query once. Returns `None` on an empty
/// database (mirroring the single-query API).
pub fn linear_nn_batch<S: Symbol, D: Distance<S> + ?Sized>(
    db: &[Vec<S>],
    queries: &[Vec<S>],
    dist: &D,
) -> Option<Vec<(Neighbour, SearchStats)>> {
    if db.is_empty() {
        return None;
    }
    Some(par_map(queries.len(), |q| {
        linear_nn(db, &queries[q], dist).expect("database checked non-empty")
    }))
}

/// [`linear_knn`] for a batch of queries, parallelised across queries.
pub fn linear_knn_batch<S: Symbol, D: Distance<S> + ?Sized>(
    db: &[Vec<S>],
    queries: &[Vec<S>],
    dist: &D,
    k: usize,
) -> Vec<(Vec<Neighbour>, SearchStats)> {
    par_map(queries.len(), |q| linear_knn(db, &queries[q], dist, k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cned_core::levenshtein::Levenshtein;

    fn db() -> Vec<Vec<u8>> {
        [&b"casa"[..], b"cosa", b"masa", b"taza", b"cesta"]
            .iter()
            .map(|w| w.to_vec())
            .collect()
    }

    #[test]
    fn finds_the_obvious_neighbour() {
        let (nn, stats) = linear_nn(&db(), b"casa", &Levenshtein).unwrap();
        assert_eq!(nn.index, 0);
        assert_eq!(nn.distance, 0.0);
        assert_eq!(stats.distance_computations, 5);
    }

    #[test]
    fn empty_db_returns_none() {
        let db: Vec<Vec<u8>> = Vec::new();
        assert!(linear_nn(&db, b"x", &Levenshtein).is_none());
        assert!(linear_nn_batch(&db, &[b"x".to_vec()], &Levenshtein).is_none());
    }

    #[test]
    fn tie_breaks_to_first_index() {
        // "casa" and "cosa" are both at distance 1 from "cysa"... make
        // a clean tie: query "c?sa" pattern equidistant from both.
        let db: Vec<Vec<u8>> = vec![b"aa".to_vec(), b"bb".to_vec()];
        let (nn, _) = linear_nn(&db, b"ab", &Levenshtein).unwrap();
        assert_eq!(nn.index, 0);
    }

    #[test]
    fn knn_sorted_and_truncated() {
        let (nns, stats) = linear_knn(&db(), b"casa", &Levenshtein, 3);
        assert_eq!(nns.len(), 3);
        assert!(nns.windows(2).all(|w| w[0].distance <= w[1].distance));
        assert_eq!(nns[0].index, 0);
        assert_eq!(stats.distance_computations, 5);
    }

    #[test]
    fn knn_with_k_larger_than_db() {
        let (nns, _) = linear_knn(&db(), b"casa", &Levenshtein, 100);
        assert_eq!(nns.len(), 5);
    }

    #[test]
    fn knn_zero_is_empty() {
        let (nns, _) = linear_knn(&db(), b"casa", &Levenshtein, 0);
        assert!(nns.is_empty());
    }

    #[test]
    fn batch_matches_single_queries() {
        let db = db();
        let queries: Vec<Vec<u8>> = vec![
            b"casa".to_vec(),
            b"tazas".to_vec(),
            b"".to_vec(),
            b"mesa".to_vec(),
        ];
        let batch = linear_nn_batch(&db, &queries, &Levenshtein).unwrap();
        assert_eq!(batch.len(), queries.len());
        for (q, (nn, stats)) in queries.iter().zip(&batch) {
            let (snn, sstats) = linear_nn(&db, q, &Levenshtein).unwrap();
            assert_eq!(nn.index, snn.index, "query {q:?}");
            assert_eq!(nn.distance, snn.distance);
            assert_eq!(stats.distance_computations, sstats.distance_computations);
        }
        let kbatch = linear_knn_batch(&db, &queries, &Levenshtein, 2);
        for (q, (nns, _)) in queries.iter().zip(&kbatch) {
            let (snns, _) = linear_knn(&db, q, &Levenshtein, 2);
            let bd: Vec<(usize, f64)> = nns.iter().map(|n| (n.index, n.distance)).collect();
            let sd: Vec<(usize, f64)> = snns.iter().map(|n| (n.index, n.distance)).collect();
            assert_eq!(bd, sd, "query {q:?}");
        }
    }
}
