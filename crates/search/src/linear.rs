//! Exhaustive (linear-scan) nearest-neighbour search.
//!
//! Computes the distance from the query to *every* database element —
//! `n` distance computations, no preprocessing, correct for any
//! distance function (metric or not). This is the "Exhaustive search"
//! column of Table 2 and the correctness oracle for LAESA/AESA tests.
//!
//! Even the exhaustive scan benefits from the throughput machinery:
//! the query is [prepared](cned_core::metric::Distance::prepare) once
//! (for `d_E` that caches the Myers `Peq` bitmaps), each comparison is
//! requested with the current best as an early-exit budget, and the
//! `_batch` variants fan out across queries on all cores.

use crate::parallel::par_map;
use crate::{sanitise_distance, Neighbour, SearchStats};
use cned_core::metric::Distance;
use cned_core::Symbol;

/// Nearest neighbour of `query` in `db` by exhaustive scan.
///
/// Ties are broken towards the smallest database index (the canonical
/// ordering of [`Neighbour::better_than`], shared with the LAESA and
/// sharded paths). Returns `None` on an empty database. NaN distances
/// are rejected via [`sanitise_distance`] so a broken distance cannot
/// poison the running best.
pub fn linear_nn<S: Symbol, D: Distance<S> + ?Sized>(
    db: &[Vec<S>],
    query: &[S],
    dist: &D,
) -> Option<(Neighbour, SearchStats)> {
    let prepared = dist.prepare(query);
    let mut best: Option<Neighbour> = None;
    for (i, item) in db.iter().enumerate() {
        match best {
            None => {
                let d = sanitise_distance(prepared.distance_to(item));
                best = Some(Neighbour {
                    index: i,
                    distance: d,
                });
            }
            Some(b) => {
                // Early-exit budget: anything at or above the current
                // best cannot replace it (ties keep the smaller index).
                if let Some(d) = prepared.distance_to_bounded(item, b.distance) {
                    if d < b.distance {
                        best = Some(Neighbour {
                            index: i,
                            distance: d,
                        });
                    }
                }
            }
        }
    }
    best.map(|b| {
        (
            b,
            SearchStats {
                distance_computations: db.len() as u64,
            },
        )
    })
}

/// The `k` nearest neighbours of `query` in `db`, sorted by increasing
/// distance (ties towards smaller index). Returns fewer than `k`
/// entries when the database is smaller than `k`.
///
/// Each comparison is budgeted at the current `k`-th-best distance,
/// so engines with early exit abandon items that cannot enter the
/// result; output is identical to a full sort-and-truncate.
pub fn linear_knn<S: Symbol, D: Distance<S> + ?Sized>(
    db: &[Vec<S>],
    query: &[S],
    dist: &D,
    k: usize,
) -> (Vec<Neighbour>, SearchStats) {
    let stats = SearchStats {
        distance_computations: db.len() as u64,
    };
    if k == 0 {
        return (Vec::new(), stats);
    }
    let prepared = dist.prepare(query);
    // Current k best, kept sorted by the canonical (distance, index)
    // ordering — the same rule every other search path uses, so equal-
    // distance ties always resolve to the smallest database index and
    // the k-th boundary admits d == kth only to be truncated away:
    // exactly the sort-and-truncate outcome, independent of visit
    // order.
    let mut best: Vec<Neighbour> = Vec::with_capacity(k + 1);
    for (i, item) in db.iter().enumerate() {
        let budget = if best.len() < k {
            f64::INFINITY
        } else {
            best[k - 1].distance
        };
        let Some(d) = prepared.distance_to_bounded(item, budget) else {
            continue;
        };
        let candidate = Neighbour {
            index: i,
            distance: d,
        };
        let pos = best
            .binary_search_by(|nb| nb.ordering(&candidate))
            .unwrap_or_else(|e| e);
        best.insert(pos, candidate);
        best.truncate(k);
    }
    (best, stats)
}

/// [`linear_nn`] for a batch of queries, parallelised across queries;
/// each worker prepares its query once. Returns `None` on an empty
/// database (mirroring the single-query API).
pub fn linear_nn_batch<S: Symbol, D: Distance<S> + ?Sized>(
    db: &[Vec<S>],
    queries: &[Vec<S>],
    dist: &D,
) -> Option<Vec<(Neighbour, SearchStats)>> {
    if db.is_empty() {
        return None;
    }
    Some(par_map(queries.len(), |q| {
        linear_nn(db, &queries[q], dist).expect("database checked non-empty")
    }))
}

/// [`linear_knn`] for a batch of queries, parallelised across queries.
pub fn linear_knn_batch<S: Symbol, D: Distance<S> + ?Sized>(
    db: &[Vec<S>],
    queries: &[Vec<S>],
    dist: &D,
    k: usize,
) -> Vec<(Vec<Neighbour>, SearchStats)> {
    par_map(queries.len(), |q| linear_knn(db, &queries[q], dist, k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cned_core::levenshtein::Levenshtein;

    fn db() -> Vec<Vec<u8>> {
        [&b"casa"[..], b"cosa", b"masa", b"taza", b"cesta"]
            .iter()
            .map(|w| w.to_vec())
            .collect()
    }

    #[test]
    fn finds_the_obvious_neighbour() {
        let (nn, stats) = linear_nn(&db(), b"casa", &Levenshtein).unwrap();
        assert_eq!(nn.index, 0);
        assert_eq!(nn.distance, 0.0);
        assert_eq!(stats.distance_computations, 5);
    }

    #[test]
    fn empty_db_returns_none() {
        let db: Vec<Vec<u8>> = Vec::new();
        assert!(linear_nn(&db, b"x", &Levenshtein).is_none());
        assert!(linear_nn_batch(&db, &[b"x".to_vec()], &Levenshtein).is_none());
    }

    #[test]
    fn tie_breaks_to_first_index() {
        // "casa" and "cosa" are both at distance 1 from "cysa"... make
        // a clean tie: query "c?sa" pattern equidistant from both.
        let db: Vec<Vec<u8>> = vec![b"aa".to_vec(), b"bb".to_vec()];
        let (nn, _) = linear_nn(&db, b"ab", &Levenshtein).unwrap();
        assert_eq!(nn.index, 0);
    }

    /// A generalised edit distance over a deliberately broken cost
    /// table whose weights are all NaN: `d(x, x) = 0` (the pure
    /// diagonal path never touches a weight) but every other pair
    /// evaluates to NaN.
    struct BrokenCostTable;
    impl cned_core::metric::Distance<u8> for BrokenCostTable {
        fn distance(&self, a: &[u8], b: &[u8]) -> f64 {
            struct NanCosts;
            impl cned_core::generalized::CostModel<u8> for NanCosts {
                fn substitute(&self, a: u8, b: u8) -> f64 {
                    if a == b {
                        0.0
                    } else {
                        f64::NAN
                    }
                }
                fn insert(&self, _: u8) -> f64 {
                    f64::NAN
                }
                fn delete(&self, _: u8) -> f64 {
                    f64::NAN
                }
            }
            cned_core::generalized::generalized_edit_distance(a, b, &NanCosts)
        }
        fn name(&self) -> &'static str {
            "broken"
        }
        fn is_metric(&self) -> bool {
            false
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "NaN")]
    fn nan_distance_asserts_in_debug() {
        // NaN at the first scanned element: caught by the unbounded
        // call site's sanitise_distance guard.
        let db: Vec<Vec<u8>> = vec![b"ab".to_vec(), b"zz".to_vec()];
        let _ = linear_nn(&db, b"zz", &BrokenCostTable);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "NaN")]
    fn nan_distance_asserts_in_debug_on_bounded_path() {
        // NaN away from position 0 flows through distance_to_bounded;
        // the default Distance::distance_bounded impl asserts there.
        let db: Vec<Vec<u8>> = vec![b"zz".to_vec(), b"ab".to_vec()];
        let _ = linear_nn(&db, b"zz", &BrokenCostTable);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn nan_distance_never_wins_in_release() {
        // The documented total_cmp fallback: NaN orders after +inf, so
        // the poisoned comparison is treated as infinitely far and the
        // genuine zero-distance match still wins.
        let db: Vec<Vec<u8>> = vec![b"ab".to_vec(), b"zz".to_vec()];
        let (nn, _) = linear_nn(&db, b"zz", &BrokenCostTable).unwrap();
        assert_eq!(nn.index, 1);
        assert_eq!(nn.distance, 0.0);
        // k-NN: the NaN candidate is rejected by the admission budget,
        // not inserted with a scrambled sort order.
        let (nns, _) = linear_knn(&db, b"zz", &BrokenCostTable, 2);
        assert_eq!(nns.len(), 1);
        assert_eq!(nns[0].index, 1);
    }

    #[test]
    fn knn_ties_resolve_to_ascending_index() {
        // Three identical strings: every ordering-sensitive path must
        // report them in ascending index order.
        let db: Vec<Vec<u8>> = vec![
            b"dup".to_vec(),
            b"far".to_vec(),
            b"dup".to_vec(),
            b"dup".to_vec(),
        ];
        let (nns, _) = linear_knn(&db, b"dup", &Levenshtein, 3);
        let idx: Vec<usize> = nns.iter().map(|n| n.index).collect();
        assert_eq!(idx, vec![0, 2, 3]);
    }

    #[test]
    fn knn_sorted_and_truncated() {
        let (nns, stats) = linear_knn(&db(), b"casa", &Levenshtein, 3);
        assert_eq!(nns.len(), 3);
        assert!(nns.windows(2).all(|w| w[0].distance <= w[1].distance));
        assert_eq!(nns[0].index, 0);
        assert_eq!(stats.distance_computations, 5);
    }

    #[test]
    fn knn_with_k_larger_than_db() {
        let (nns, _) = linear_knn(&db(), b"casa", &Levenshtein, 100);
        assert_eq!(nns.len(), 5);
    }

    #[test]
    fn knn_zero_is_empty() {
        let (nns, _) = linear_knn(&db(), b"casa", &Levenshtein, 0);
        assert!(nns.is_empty());
    }

    #[test]
    fn batch_matches_single_queries() {
        let db = db();
        let queries: Vec<Vec<u8>> = vec![
            b"casa".to_vec(),
            b"tazas".to_vec(),
            b"".to_vec(),
            b"mesa".to_vec(),
        ];
        let batch = linear_nn_batch(&db, &queries, &Levenshtein).unwrap();
        assert_eq!(batch.len(), queries.len());
        for (q, (nn, stats)) in queries.iter().zip(&batch) {
            let (snn, sstats) = linear_nn(&db, q, &Levenshtein).unwrap();
            assert_eq!(nn.index, snn.index, "query {q:?}");
            assert_eq!(nn.distance, snn.distance);
            assert_eq!(stats.distance_computations, sstats.distance_computations);
        }
        let kbatch = linear_knn_batch(&db, &queries, &Levenshtein, 2);
        for (q, (nns, _)) in queries.iter().zip(&kbatch) {
            let (snns, _) = linear_knn(&db, q, &Levenshtein, 2);
            let bd: Vec<(usize, f64)> = nns.iter().map(|n| (n.index, n.distance)).collect();
            let sd: Vec<(usize, f64)> = snns.iter().map(|n| (n.index, n.distance)).collect();
            assert_eq!(bd, sd, "query {q:?}");
        }
    }
}
