//! Exhaustive (linear-scan) nearest-neighbour search.
//!
//! Computes the distance from the query to *every* database element —
//! `n` distance computations, no preprocessing, correct for any
//! distance function (metric or not). This is the "Exhaustive search"
//! column of Table 2 and the correctness oracle for the other
//! backends' tests.
//!
//! The public surface is [`LinearIndex`], the simplest
//! [`MetricIndex`] implementation; the free
//! functions (`linear_nn`, …) are the pre-trait API, kept as
//! deprecated forwarders for one release.
//!
//! Even the exhaustive scan benefits from the throughput machinery:
//! the query is [prepared](cned_core::metric::Distance::prepare) once
//! (for `d_E` that caches the Myers `Peq` bitmaps), each comparison is
//! requested with the current best as an early-exit budget, and the
//! batch entry points fan out across queries on all cores.

use crate::error::SearchError;
use crate::index::{InsertableIndex, MetricIndex, QueryOptions};
use crate::parallel::par_map;
use crate::tombstone::TombstoneSet;
use crate::{Neighbour, SearchStats};
use cned_core::lanes::LANES;
use cned_core::metric::{Distance, PreparedQuery};
use cned_core::Symbol;

/// Advance a running nearest-neighbour incumbent over `db` in
/// lane-sized bounded batches (database indices offset by `base`).
///
/// Each batch of up to [`LANES`] candidates is scored through
/// [`PreparedQuery::distance_to_batch_bounded`] with the incumbent at
/// the batch boundary as the shared budget. The budget is only ever
/// *looser* than the serial per-candidate budget, so the admitted set
/// is a superset of the serial one — and since admission into `best`
/// still goes through [`Neighbour::better_than`], the final incumbent
/// (index and distance bits) is identical to the one-at-a-time scan.
///
/// Shared by [`LinearIndex`], the LAESA candidate phase and the
/// sharded serving layer's delta-shard scans, so every exhaustive
/// sweep in the workspace rides the lane kernels.
pub fn nn_scan_into<S: Symbol>(
    db: &[Vec<S>],
    prepared: &dyn PreparedQuery<S>,
    base: usize,
    best: &mut Neighbour,
) {
    let mut out = [None; LANES];
    let mut refs: [&[S]; LANES] = [&[]; LANES];
    for (c, chunk) in db.chunks(LANES).enumerate() {
        for (i, item) in chunk.iter().enumerate() {
            refs[i] = item;
        }
        prepared.distance_to_batch_bounded(
            &refs[..chunk.len()],
            best.distance,
            &mut out[..chunk.len()],
        );
        for (i, d) in out[..chunk.len()].iter().enumerate() {
            if let Some(d) = *d {
                let candidate = Neighbour {
                    index: base + c * LANES + i,
                    distance: d,
                };
                if candidate.better_than(best) {
                    *best = candidate;
                }
            }
        }
    }
}

/// Advance a sorted top-`k` list over `db` in lane-sized bounded
/// batches (indices offset by `base`); `best` stays in canonical
/// (distance, index) order and never exceeds `k` entries.
///
/// Batch-boundary budgets admit a superset of the serial scan (see
/// [`nn_scan_into`]); sorted insertion + truncation keeps the final
/// list identical to it.
pub fn knn_scan_into<S: Symbol>(
    db: &[Vec<S>],
    prepared: &dyn PreparedQuery<S>,
    k: usize,
    radius: f64,
    base: usize,
    best: &mut Vec<Neighbour>,
) {
    if k == 0 {
        return;
    }
    let mut out = [None; LANES];
    let mut refs: [&[S]; LANES] = [&[]; LANES];
    for (c, chunk) in db.chunks(LANES).enumerate() {
        // Until k in-radius elements are known, the admission budget
        // is the radius itself; afterwards the current k-th distance.
        let budget = if best.len() < k {
            radius
        } else {
            best[k - 1].distance
        };
        for (i, item) in chunk.iter().enumerate() {
            refs[i] = item;
        }
        prepared.distance_to_batch_bounded(&refs[..chunk.len()], budget, &mut out[..chunk.len()]);
        for (i, d) in out[..chunk.len()].iter().enumerate() {
            let Some(d) = *d else {
                continue;
            };
            // A rejected bounded evaluation can surface as +inf; it
            // must never enter the result set, even at an infinite
            // radius.
            if !d.is_finite() {
                continue;
            }
            let candidate = Neighbour {
                index: base + c * LANES + i,
                distance: d,
            };
            let pos = best
                .binary_search_by(|nb| nb.ordering(&candidate))
                .unwrap_or_else(|e| e);
            best.insert(pos, candidate);
            best.truncate(k);
        }
    }
}

/// Append every element of `db` within `radius` (inclusive) to `hits`
/// in lane-sized batches (indices offset by `base`). The caller sorts;
/// the fixed radius means batching cannot change the admitted set at
/// all.
pub fn range_scan_into<S: Symbol>(
    db: &[Vec<S>],
    prepared: &dyn PreparedQuery<S>,
    radius: f64,
    base: usize,
    hits: &mut Vec<Neighbour>,
) {
    let mut out = [None; LANES];
    let mut refs: [&[S]; LANES] = [&[]; LANES];
    for (c, chunk) in db.chunks(LANES).enumerate() {
        for (i, item) in chunk.iter().enumerate() {
            refs[i] = item;
        }
        prepared.distance_to_batch_bounded(&refs[..chunk.len()], radius, &mut out[..chunk.len()]);
        for (i, d) in out[..chunk.len()].iter().enumerate() {
            if let Some(d) = *d {
                if d.is_finite() {
                    hits.push(Neighbour {
                        index: base + c * LANES + i,
                        distance: d,
                    });
                }
            }
        }
    }
}

/// Nearest neighbour of a prepared query within `radius` by
/// exhaustive scan: `(None, stats)` when nothing lies within the
/// radius. Shared by [`LinearIndex`] and the deprecated free
/// functions.
pub(crate) fn nn_scan<S: Symbol>(
    db: &[Vec<S>],
    prepared: &dyn PreparedQuery<S>,
    radius: f64,
) -> (Option<Neighbour>, SearchStats) {
    // The radius doubles as a virtual incumbent: any real candidate at
    // d <= radius beats it (usize::MAX loses every index tie-break,
    // and an infinite distance never wins a tie).
    let mut best = Neighbour {
        index: usize::MAX,
        distance: radius,
    };
    nn_scan_into(db, prepared, 0, &mut best);
    let found = (best.index != usize::MAX).then_some(best);
    (
        found,
        SearchStats {
            distance_computations: db.len() as u64,
        },
    )
}

/// The `k` nearest neighbours of a prepared query within `radius`, in
/// canonical (distance, index) order.
pub(crate) fn knn_scan<S: Symbol>(
    db: &[Vec<S>],
    prepared: &dyn PreparedQuery<S>,
    k: usize,
    radius: f64,
) -> (Vec<Neighbour>, SearchStats) {
    let stats = SearchStats {
        distance_computations: db.len() as u64,
    };
    // Current k best, kept sorted by the canonical (distance, index)
    // ordering — the same rule every other search path uses, so equal-
    // distance ties always resolve to the smallest database index and
    // the k-th boundary admits d == kth only to be truncated away:
    // exactly the sort-and-truncate outcome, independent of visit
    // order.
    let mut best: Vec<Neighbour> = Vec::with_capacity(k.min(db.len()) + 1);
    knn_scan_into(db, prepared, k, radius, 0, &mut best);
    (best, stats)
}

/// Every element within `radius` (inclusive) of a prepared query, in
/// canonical order.
pub(crate) fn range_scan<S: Symbol>(
    db: &[Vec<S>],
    prepared: &dyn PreparedQuery<S>,
    radius: f64,
) -> (Vec<Neighbour>, SearchStats) {
    let mut hits: Vec<Neighbour> = Vec::new();
    range_scan_into(db, prepared, radius, 0, &mut hits);
    hits.sort_by(|a, b| a.ordering(b));
    (
        hits,
        SearchStats {
            distance_computations: db.len() as u64,
        },
    )
}

/// The exhaustive-scan [`MetricIndex`]: no preprocessing, `n` distance
/// computations per query, correct for any distance (metric or not).
/// The correctness oracle every other backend is tested against.
pub struct LinearIndex<S: Symbol> {
    db: Vec<Vec<S>>,
    tombstones: TombstoneSet,
}

impl<S: Symbol> LinearIndex<S> {
    /// Wrap a database for exhaustive scanning (no preprocessing).
    pub fn new(db: Vec<Vec<S>>) -> LinearIndex<S> {
        LinearIndex {
            db,
            tombstones: TombstoneSet::new(),
        }
    }

    /// The database the index scans (physical corpus; tombstoned slots
    /// included).
    pub fn database(&self) -> &[Vec<S>] {
        &self.db
    }

    /// Unwrap back into the database.
    pub fn into_database(self) -> Vec<Vec<S>> {
        self.db
    }

    /// The tombstone set (for snapshot encoding).
    pub fn tombstones(&self) -> &TombstoneSet {
        &self.tombstones
    }

    /// Restore a tombstone set (snapshot decode / replica sync).
    pub fn set_tombstones(&mut self, tombstones: TombstoneSet) {
        self.tombstones = tombstones;
    }
}

impl<S: Symbol> MetricIndex<S> for LinearIndex<S> {
    fn len(&self) -> usize {
        self.db.len()
    }

    fn backend_name(&self) -> &'static str {
        "linear"
    }

    fn item(&self, i: usize) -> Option<&[S]> {
        self.db.get(i).map(Vec::as_slice)
    }

    fn nn(
        &self,
        query: &[S],
        dist: &dyn Distance<S>,
        opts: &QueryOptions,
    ) -> Result<(Option<Neighbour>, SearchStats), SearchError> {
        if self.db.is_empty() {
            return Err(SearchError::EmptyDatabase);
        }
        let radius = opts.checked_radius()?;
        let prepared = dist.prepare(query);
        if self.tombstones.is_empty() {
            let (found, stats) = nn_scan(&self.db, &*prepared, radius);
            opts.record(stats);
            return Ok((found, stats));
        }
        // Over-fetch: with T tombstones, at most T of the top 1+T
        // answers can be dead, so the first survivor is the true NN.
        let (hits, stats) = knn_scan(&self.db, &*prepared, 1 + self.tombstones.count(), radius);
        let found = self.tombstones.first_live(&hits);
        opts.record(stats);
        Ok((found, stats))
    }

    fn knn(
        &self,
        query: &[S],
        dist: &dyn Distance<S>,
        opts: &QueryOptions,
    ) -> Result<(Vec<Neighbour>, SearchStats), SearchError> {
        if self.db.is_empty() {
            return Err(SearchError::EmptyDatabase);
        }
        let radius = opts.checked_radius()?;
        let prepared = dist.prepare(query);
        if self.tombstones.is_empty() {
            let (best, stats) = knn_scan(&self.db, &*prepared, opts.k, radius);
            opts.record(stats);
            return Ok((best, stats));
        }
        // Over-fetch k + T answers, filter the dead, truncate to k.
        let want = opts.k.saturating_add(self.tombstones.count());
        let (mut best, stats) = knn_scan(&self.db, &*prepared, want, radius);
        self.tombstones.retain_live(&mut best);
        best.truncate(opts.k);
        opts.record(stats);
        Ok((best, stats))
    }

    fn range(
        &self,
        query: &[S],
        dist: &dyn Distance<S>,
        opts: &QueryOptions,
    ) -> Result<(Vec<Neighbour>, SearchStats), SearchError> {
        if self.db.is_empty() {
            return Err(SearchError::EmptyDatabase);
        }
        let radius = opts.checked_radius()?;
        let prepared = dist.prepare(query);
        let (mut hits, stats) = range_scan(&self.db, &*prepared, radius);
        self.tombstones.retain_live(&mut hits);
        opts.record(stats);
        Ok((hits, stats))
    }

    fn delete(&mut self, index: usize) -> Result<bool, SearchError> {
        if index >= self.db.len() {
            return Ok(false);
        }
        Ok(self.tombstones.insert(index))
    }

    fn deleted(&self) -> usize {
        self.tombstones.count()
    }

    fn is_deleted(&self, i: usize) -> bool {
        self.tombstones.contains(i)
    }

    fn as_insertable(&mut self) -> Option<&mut dyn InsertableIndex<S>> {
        Some(self)
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

impl<S: Symbol> InsertableIndex<S> for LinearIndex<S> {
    fn insert(&mut self, item: Vec<S>, _dist: &dyn Distance<S>) -> Result<usize, SearchError> {
        self.db.push(item);
        Ok(self.db.len() - 1)
    }
}

/// Nearest neighbour of `query` in `db` by exhaustive scan.
///
/// Ties are broken towards the smallest database index (the canonical
/// ordering of [`Neighbour::better_than`], shared with all backends).
/// Returns `None` on an empty database.
#[deprecated(
    since = "0.2.0",
    note = "use `LinearIndex::new(db)` with `MetricIndex::nn` (or the `cned::Database` facade)"
)]
pub fn linear_nn<S: Symbol, D: Distance<S> + ?Sized>(
    db: &[Vec<S>],
    query: &[S],
    dist: &D,
) -> Option<(Neighbour, SearchStats)> {
    if db.is_empty() {
        return None;
    }
    let prepared = dist.prepare(query);
    let (found, stats) = nn_scan(db, &*prepared, f64::INFINITY);
    found.map(|nb| (nb, stats))
}

/// The `k` nearest neighbours of `query` in `db`, sorted by increasing
/// distance (ties towards smaller index). Returns fewer than `k`
/// entries when the database is smaller than `k`.
#[deprecated(
    since = "0.2.0",
    note = "use `LinearIndex::new(db)` with `MetricIndex::knn` (or the `cned::Database` facade)"
)]
pub fn linear_knn<S: Symbol, D: Distance<S> + ?Sized>(
    db: &[Vec<S>],
    query: &[S],
    dist: &D,
    k: usize,
) -> (Vec<Neighbour>, SearchStats) {
    let prepared = dist.prepare(query);
    knn_scan(db, &*prepared, k, f64::INFINITY)
}

/// `linear_nn` for a batch of queries, parallelised across queries;
/// each worker prepares its query once. Returns `None` on an empty
/// database (mirroring the single-query API).
#[deprecated(
    since = "0.2.0",
    note = "use `LinearIndex::new(db)` with `MetricIndex::nn_batch` (or the `cned::Database` facade)"
)]
pub fn linear_nn_batch<S: Symbol, D: Distance<S> + ?Sized>(
    db: &[Vec<S>],
    queries: &[Vec<S>],
    dist: &D,
) -> Option<Vec<(Neighbour, SearchStats)>> {
    if db.is_empty() {
        return None;
    }
    Some(par_map(queries.len(), |q| {
        let prepared = dist.prepare(&queries[q]);
        let (found, stats) = nn_scan(db, &*prepared, f64::INFINITY);
        (found.expect("database checked non-empty"), stats)
    }))
}

/// `linear_knn` for a batch of queries, parallelised across queries.
#[deprecated(
    since = "0.2.0",
    note = "use `LinearIndex::new(db)` with `MetricIndex::knn_batch` (or the `cned::Database` facade)"
)]
pub fn linear_knn_batch<S: Symbol, D: Distance<S> + ?Sized>(
    db: &[Vec<S>],
    queries: &[Vec<S>],
    dist: &D,
    k: usize,
) -> Vec<(Vec<Neighbour>, SearchStats)> {
    par_map(queries.len(), |q| {
        let prepared = dist.prepare(&queries[q]);
        knn_scan(db, &*prepared, k, f64::INFINITY)
    })
}

#[cfg(test)]
mod tests {
    // The deprecated free functions stay pinned by these tests until
    // the forwarders are removed; they share their cores with
    // `LinearIndex`, so this also covers the trait path's scan logic.
    #![allow(deprecated)]

    use super::*;
    use cned_core::levenshtein::Levenshtein;

    fn db() -> Vec<Vec<u8>> {
        [&b"casa"[..], b"cosa", b"masa", b"taza", b"cesta"]
            .iter()
            .map(|w| w.to_vec())
            .collect()
    }

    #[test]
    fn finds_the_obvious_neighbour() {
        let (nn, stats) = linear_nn(&db(), b"casa", &Levenshtein).unwrap();
        assert_eq!(nn.index, 0);
        assert_eq!(nn.distance, 0.0);
        assert_eq!(stats.distance_computations, 5);
    }

    #[test]
    fn empty_db_returns_none() {
        let db: Vec<Vec<u8>> = Vec::new();
        assert!(linear_nn(&db, b"x", &Levenshtein).is_none());
        assert!(linear_nn_batch(&db, &[b"x".to_vec()], &Levenshtein).is_none());
    }

    #[test]
    fn empty_db_is_a_typed_error_through_the_trait() {
        let idx: LinearIndex<u8> = LinearIndex::new(Vec::new());
        let opts = QueryOptions::new();
        assert_eq!(
            idx.nn(b"x", &Levenshtein, &opts).unwrap_err(),
            SearchError::EmptyDatabase
        );
        assert_eq!(
            idx.knn(b"x", &Levenshtein, &opts).unwrap_err(),
            SearchError::EmptyDatabase
        );
        assert_eq!(
            idx.range(b"x", &Levenshtein, &opts).unwrap_err(),
            SearchError::EmptyDatabase
        );
        assert_eq!(
            idx.nn_batch(&[b"x".to_vec()], &Levenshtein, &opts)
                .unwrap_err(),
            SearchError::EmptyDatabase
        );
    }

    #[test]
    fn invalid_radius_is_rejected() {
        let idx = LinearIndex::new(db());
        for r in [f64::NAN, -1.0] {
            let opts = QueryOptions::new().radius(r);
            assert!(matches!(
                idx.nn(b"casa", &Levenshtein, &opts),
                Err(SearchError::InvalidRadius { .. })
            ));
            assert!(matches!(
                idx.range(b"casa", &Levenshtein, &opts),
                Err(SearchError::InvalidRadius { .. })
            ));
        }
    }

    #[test]
    fn trait_nn_matches_free_function() {
        let idx = LinearIndex::new(db());
        let opts = QueryOptions::new();
        for q in [&b"casa"[..], b"tazas", b"", b"mesa"] {
            let (legacy, lstats) = linear_nn(idx.database(), q, &Levenshtein).unwrap();
            let (nb, stats) = idx.nn(q, &Levenshtein, &opts).unwrap();
            let nb = nb.unwrap();
            assert_eq!(
                (nb.index, nb.distance.to_bits()),
                (legacy.index, legacy.distance.to_bits())
            );
            assert_eq!(stats, lstats);
        }
    }

    #[test]
    fn radius_seed_prunes_and_excludes() {
        let idx = LinearIndex::new(db());
        // "cesa" is at distance 1 from both "casa" and "cosa" and from
        // "cesta"; radius 0.5 excludes everything.
        let (none, stats) = idx
            .nn(b"cesa", &Levenshtein, &QueryOptions::new().radius(0.5))
            .unwrap();
        assert!(none.is_none());
        assert_eq!(stats.distance_computations, 5);
        // Radius exactly at the best distance still admits (inclusive).
        let (at, _) = idx
            .nn(b"cesa", &Levenshtein, &QueryOptions::new().radius(1.0))
            .unwrap();
        assert_eq!(at.unwrap().index, 0);
    }

    #[test]
    fn range_returns_all_members_within_radius() {
        let idx = LinearIndex::new(db());
        let (hits, stats) = idx
            .range(b"casa", &Levenshtein, &QueryOptions::new().radius(1.0))
            .unwrap();
        // casa (0), cosa (1), masa (2) at d<=1; taza d=2, cesta d=2.
        let got: Vec<(usize, f64)> = hits.iter().map(|n| (n.index, n.distance)).collect();
        assert_eq!(got, vec![(0, 0.0), (1, 1.0), (2, 1.0)]);
        assert_eq!(stats.distance_computations, 5);
        // Radius 0: exact matches only.
        let (exact, _) = idx
            .range(b"casa", &Levenshtein, &QueryOptions::new().radius(0.0))
            .unwrap();
        assert_eq!(exact.len(), 1);
        assert_eq!(exact[0].index, 0);
        // Infinite radius: the whole database, canonically ordered.
        let (all, _) = idx
            .range(b"casa", &Levenshtein, &QueryOptions::new())
            .unwrap();
        assert_eq!(all.len(), 5);
        assert!(all.windows(2).all(|w| w[0].ordering(&w[1]).is_le()));
    }

    #[test]
    fn tie_breaks_to_first_index() {
        let db: Vec<Vec<u8>> = vec![b"aa".to_vec(), b"bb".to_vec()];
        let (nn, _) = linear_nn(&db, b"ab", &Levenshtein).unwrap();
        assert_eq!(nn.index, 0);
    }

    /// A generalised edit distance over a deliberately broken cost
    /// table whose weights are all NaN: `d(x, x) = 0` (the pure
    /// diagonal path never touches a weight) but every other pair
    /// evaluates to NaN.
    struct BrokenCostTable;
    impl cned_core::metric::Distance<u8> for BrokenCostTable {
        fn distance(&self, a: &[u8], b: &[u8]) -> f64 {
            struct NanCosts;
            impl cned_core::generalized::CostModel<u8> for NanCosts {
                fn substitute(&self, a: u8, b: u8) -> f64 {
                    if a == b {
                        0.0
                    } else {
                        f64::NAN
                    }
                }
                fn insert(&self, _: u8) -> f64 {
                    f64::NAN
                }
                fn delete(&self, _: u8) -> f64 {
                    f64::NAN
                }
            }
            cned_core::generalized::generalized_edit_distance(a, b, &NanCosts)
        }
        fn name(&self) -> &'static str {
            "broken"
        }
        fn is_metric(&self) -> bool {
            false
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "NaN")]
    fn nan_distance_asserts_in_debug() {
        // NaN flows through distance_to_bounded; the default
        // Distance::distance_bounded impl asserts there.
        let db: Vec<Vec<u8>> = vec![b"ab".to_vec(), b"zz".to_vec()];
        let _ = linear_nn(&db, b"zz", &BrokenCostTable);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn nan_distance_never_wins_in_release() {
        // The NaN comparison fails the bounded admission (NaN <= bound
        // is false), so the poisoned candidate is simply skipped and
        // the genuine zero-distance match still wins.
        let db: Vec<Vec<u8>> = vec![b"ab".to_vec(), b"zz".to_vec()];
        let (nn, _) = linear_nn(&db, b"zz", &BrokenCostTable).unwrap();
        assert_eq!(nn.index, 1);
        assert_eq!(nn.distance, 0.0);
        // k-NN: the NaN candidate is rejected by the admission budget,
        // not inserted with a scrambled sort order.
        let (nns, _) = linear_knn(&db, b"zz", &BrokenCostTable, 2);
        assert_eq!(nns.len(), 1);
        assert_eq!(nns[0].index, 1);
    }

    #[test]
    fn knn_ties_resolve_to_ascending_index() {
        // Three identical strings: every ordering-sensitive path must
        // report them in ascending index order.
        let db: Vec<Vec<u8>> = vec![
            b"dup".to_vec(),
            b"far".to_vec(),
            b"dup".to_vec(),
            b"dup".to_vec(),
        ];
        let (nns, _) = linear_knn(&db, b"dup", &Levenshtein, 3);
        let idx: Vec<usize> = nns.iter().map(|n| n.index).collect();
        assert_eq!(idx, vec![0, 2, 3]);
    }

    #[test]
    fn knn_sorted_and_truncated() {
        let (nns, stats) = linear_knn(&db(), b"casa", &Levenshtein, 3);
        assert_eq!(nns.len(), 3);
        assert!(nns.windows(2).all(|w| w[0].distance <= w[1].distance));
        assert_eq!(nns[0].index, 0);
        assert_eq!(stats.distance_computations, 5);
    }

    #[test]
    fn knn_with_k_larger_than_db() {
        let (nns, _) = linear_knn(&db(), b"casa", &Levenshtein, 100);
        assert_eq!(nns.len(), 5);
    }

    #[test]
    fn knn_zero_is_empty() {
        let (nns, _) = linear_knn(&db(), b"casa", &Levenshtein, 0);
        assert!(nns.is_empty());
        let idx = LinearIndex::new(db());
        let (nns, _) = idx
            .knn(b"casa", &Levenshtein, &QueryOptions::new().k(0))
            .unwrap();
        assert!(nns.is_empty());
    }

    #[test]
    fn insert_extends_the_scan() {
        let mut idx = LinearIndex::new(db());
        let at = InsertableIndex::insert(&mut idx, b"mesa".to_vec(), &Levenshtein);
        assert_eq!(at, Ok(5));
        let (nb, _) = idx.nn(b"mesa", &Levenshtein, &QueryOptions::new()).unwrap();
        let nb = nb.unwrap();
        assert_eq!((nb.index, nb.distance), (5, 0.0));
        assert_eq!(idx.item(5), Some(&b"mesa"[..]));
        assert_eq!(idx.item(6), None);
    }

    #[test]
    fn batch_matches_single_queries() {
        let db = db();
        let idx = LinearIndex::new(db.clone());
        let opts = QueryOptions::new().threads(3);
        let queries: Vec<Vec<u8>> = vec![
            b"casa".to_vec(),
            b"tazas".to_vec(),
            b"".to_vec(),
            b"mesa".to_vec(),
        ];
        let batch = idx.nn_batch(&queries, &Levenshtein, &opts).unwrap();
        assert_eq!(batch.len(), queries.len());
        for (q, (nn, stats)) in queries.iter().zip(&batch) {
            let (snn, sstats) = idx.nn(q, &Levenshtein, &opts).unwrap();
            let (nn, snn) = (nn.unwrap(), snn.unwrap());
            assert_eq!(nn.index, snn.index, "query {q:?}");
            assert_eq!(nn.distance, snn.distance);
            assert_eq!(stats.distance_computations, sstats.distance_computations);
        }
        let kbatch = idx
            .knn_batch(&queries, &Levenshtein, &QueryOptions::new().k(2))
            .unwrap();
        for (q, (nns, _)) in queries.iter().zip(&kbatch) {
            let (snns, _) = linear_knn(&db, q, &Levenshtein, 2);
            let bd: Vec<(usize, f64)> = nns.iter().map(|n| (n.index, n.distance)).collect();
            let sd: Vec<(usize, f64)> = snns.iter().map(|n| (n.index, n.distance)).collect();
            assert_eq!(bd, sd, "query {q:?}");
        }
    }

    #[test]
    fn stats_sink_accumulates_across_a_batch() {
        use crate::SearchStatsAtomic;
        use std::sync::Arc;
        let idx = LinearIndex::new(db());
        let sink = Arc::new(SearchStatsAtomic::new());
        let opts = QueryOptions::new().stats_sink(sink.clone());
        let queries: Vec<Vec<u8>> = vec![b"casa".to_vec(), b"mesa".to_vec()];
        idx.nn_batch(&queries, &Levenshtein, &opts).unwrap();
        assert_eq!(sink.snapshot().distance_computations, 10);
    }
}
