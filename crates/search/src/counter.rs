//! Distance-evaluation counting.
//!
//! Figures 3–4 of the paper plot "number of distance computations" —
//! the honest currency of metric-space search, independent of machine
//! speed. [`CountingDistance`] wraps any distance and counts every
//! real evaluation through an atomic, so the same wrapper works from
//! the multi-threaded experiment drivers.

use cned_core::metric::{Distance, PreparedQuery};
use cned_core::Symbol;
use std::sync::atomic::{AtomicU64, Ordering};

/// A [`Distance`] decorator that counts evaluations.
///
/// ```
/// use cned_core::levenshtein::Levenshtein;
/// use cned_core::metric::Distance;
/// use cned_search::counter::CountingDistance;
///
/// let d = CountingDistance::new(Levenshtein);
/// let _ = d.distance(b"ab", b"ba");
/// let _ = d.distance(b"ab", b"ab");
/// assert_eq!(d.count(), 2);
/// d.reset();
/// assert_eq!(d.count(), 0);
/// ```
pub struct CountingDistance<D> {
    inner: D,
    count: AtomicU64,
}

impl<D> CountingDistance<D> {
    /// Wrap `inner`, starting the counter at zero.
    pub fn new(inner: D) -> CountingDistance<D> {
        CountingDistance {
            inner,
            count: AtomicU64::new(0),
        }
    }

    /// Number of distance evaluations since construction or the last
    /// [`CountingDistance::reset`].
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Reset the counter to zero.
    pub fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
    }

    /// Take the current count and reset — convenient for per-query
    /// accounting in loops.
    pub fn take(&self) -> u64 {
        self.count.swap(0, Ordering::Relaxed)
    }

    /// Access the wrapped distance.
    pub fn inner(&self) -> &D {
        &self.inner
    }
}

impl<S: Symbol, D: Distance<S>> Distance<S> for CountingDistance<D> {
    fn distance(&self, a: &[S], b: &[S]) -> f64 {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.inner.distance(a, b)
    }

    fn distance_bounded(&self, a: &[S], b: &[S], bound: f64) -> Option<f64> {
        // A bounded evaluation that abandons early still did real
        // work: it counts like any other evaluation.
        self.count.fetch_add(1, Ordering::Relaxed);
        self.inner.distance_bounded(a, b, bound)
    }

    fn prepare<'q>(&'q self, query: &'q [S]) -> Box<dyn PreparedQuery<S> + 'q> {
        Box::new(CountingPrepared {
            inner: self.inner.prepare(query),
            count: &self.count,
        })
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn is_metric(&self) -> bool {
        self.inner.is_metric()
    }
}

/// [`PreparedQuery`] wrapper that counts evaluations through the
/// parent [`CountingDistance`]'s counter.
struct CountingPrepared<'q, S: Symbol> {
    inner: Box<dyn PreparedQuery<S> + 'q>,
    count: &'q AtomicU64,
}

impl<S: Symbol> PreparedQuery<S> for CountingPrepared<'_, S> {
    fn distance_to(&self, target: &[S]) -> f64 {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.inner.distance_to(target)
    }

    fn distance_to_bounded(&self, target: &[S], bound: f64) -> Option<f64> {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.inner.distance_to_bounded(target, bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cned_core::levenshtein::Levenshtein;

    #[test]
    fn counts_every_evaluation() {
        let d = CountingDistance::new(Levenshtein);
        for _ in 0..5 {
            let _ = d.distance(b"abc", b"abd");
        }
        assert_eq!(d.count(), 5);
    }

    #[test]
    fn take_resets() {
        let d = CountingDistance::new(Levenshtein);
        let _ = d.distance(b"a", b"b");
        assert_eq!(d.take(), 1);
        assert_eq!(d.count(), 0);
    }

    #[test]
    fn forwards_name_and_metric_flag() {
        let d = CountingDistance::new(Levenshtein);
        assert_eq!(Distance::<u8>::name(&d), "d_E");
        assert!(Distance::<u8>::is_metric(&d));
    }

    #[test]
    fn counting_is_thread_safe() {
        let d = std::sync::Arc::new(CountingDistance::new(Levenshtein));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let d = d.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    let _ = d.distance(b"abc", b"abd");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(d.count(), 400);
    }
}
