//! Tombstone sets: logical deletion for immutable-layout indexes.
//!
//! Every backend keeps its candidate arrays, pivot tables and shard
//! tilings keyed by *physical* database index, and those indices are
//! the identity that clients, snapshots and replicas all share — so
//! deletion must not renumber anything. A [`TombstoneSet`] marks
//! indices dead without moving survivors: queries run over the full
//! physical corpus exactly as before and the dead are filtered out of
//! the answer at emission time (see the over-fetch wrappers in each
//! backend's `MetricIndex` impl). Physical removal happens only in an
//! explicit vacuum/rebuild, which re-derives the set from survivors.
//!
//! The representation is a dense `Vec<bool>` plus a count — no hash
//! containers, so iteration order questions never arise (the lint
//! determinism pass bans iterated hash maps on the answer path) and
//! [`TombstoneSet::indices`] is sorted by construction, which is what
//! the snapshot codec persists.

/// A set of logically deleted database indices.
///
/// `O(1)` membership and insertion; memory is one byte per physical
/// slot touched (the vector grows lazily to the highest dead index).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TombstoneSet {
    dead: Vec<bool>,
    count: usize,
}

impl TombstoneSet {
    /// An empty set.
    pub fn new() -> TombstoneSet {
        TombstoneSet::default()
    }

    /// Rebuild a set from a list of dead indices (snapshot decode,
    /// replica sync). Duplicates are tolerated and counted once.
    pub fn from_indices(indices: &[u64]) -> TombstoneSet {
        let mut set = TombstoneSet::new();
        for &i in indices {
            set.insert(i as usize);
        }
        set
    }

    /// Number of dead indices.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Whether no index is dead. The hot-path gate: every query
    /// wrapper checks this first and takes the historical zero-cost
    /// path when it holds.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Is `index` dead?
    #[inline]
    pub fn contains(&self, index: usize) -> bool {
        self.dead.get(index).copied().unwrap_or(false)
    }

    /// Mark `index` dead. Returns `true` if it was alive before.
    pub fn insert(&mut self, index: usize) -> bool {
        if index >= self.dead.len() {
            self.dead.resize(index + 1, false);
        }
        if self.dead[index] {
            return false;
        }
        self.dead[index] = true;
        self.count += 1;
        true
    }

    /// The dead indices, ascending. This is the canonical persisted
    /// form (snapshot `TOMBSTONES` record, replica catch-up).
    pub fn indices(&self) -> Vec<u64> {
        self.dead
            .iter()
            .enumerate()
            .filter(|(_, &d)| d)
            .map(|(i, _)| i as u64)
            .collect()
    }

    /// Drop dead entries from an answer list in place, preserving
    /// order. Used by the over-fetch wrappers after a widened query.
    pub fn retain_live(&self, hits: &mut Vec<crate::Neighbour>) {
        if self.is_empty() {
            return;
        }
        hits.retain(|n| !self.contains(n.index));
    }

    /// First live entry of an (ordered) answer list, for NN queries
    /// answered by an over-fetched k-NN.
    pub fn first_live(&self, hits: &[crate::Neighbour]) -> Option<crate::Neighbour> {
        hits.iter().find(|n| !self.contains(n.index)).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Neighbour;

    #[test]
    fn insert_contains_count() {
        let mut t = TombstoneSet::new();
        assert!(t.is_empty());
        assert!(!t.contains(3));
        assert!(t.insert(3));
        assert!(!t.insert(3), "second insert is a no-op");
        assert!(t.insert(0));
        assert!(t.contains(3));
        assert!(t.contains(0));
        assert!(!t.contains(1));
        assert!(!t.contains(100), "beyond the vector is alive");
        assert_eq!(t.count(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn indices_sorted_roundtrip() {
        let mut t = TombstoneSet::new();
        for i in [7usize, 2, 9, 2, 0] {
            t.insert(i);
        }
        let idx = t.indices();
        assert_eq!(idx, vec![0, 2, 7, 9]);
        let back = TombstoneSet::from_indices(&idx);
        assert_eq!(back, t);
    }

    #[test]
    fn retain_and_first_live() {
        let mut t = TombstoneSet::new();
        t.insert(1);
        let hits = vec![
            Neighbour {
                index: 1,
                distance: 0.5,
            },
            Neighbour {
                index: 4,
                distance: 0.7,
            },
            Neighbour {
                index: 2,
                distance: 0.9,
            },
        ];
        assert_eq!(t.first_live(&hits).map(|n| n.index), Some(4));
        let mut filtered = hits.clone();
        t.retain_live(&mut filtered);
        assert_eq!(
            filtered.iter().map(|n| n.index).collect::<Vec<_>>(),
            vec![4, 2]
        );
    }
}
