//! # cned-search
//!
//! Nearest-neighbour search over arbitrary [`cned_core::metric::Distance`]s,
//! implementing the machinery of the paper's Section 4.3:
//!
//! * [`laesa`] — **LAESA** (Micó, Oncina & Vidal 1994, ref \[5\]):
//!   linear preprocessing time and memory; at query time, distances to
//!   a fixed set of *pivots* (base prototypes) give triangle-inequality
//!   lower bounds that eliminate most candidates, so only a handful of
//!   real distance computations remain. This is the engine behind
//!   Figures 3–4 and the "LAESA" column of Table 2.
//! * [`aesa`] — AESA (ref \[6\] context): the quadratic-memory variant
//!   that stores the full pairwise matrix and uses *every* computed
//!   distance as a pivot; fewest computations, largest preprocessing.
//! * [`linear`] — exhaustive scan: the "Exhaustive search" column of
//!   Table 2 and the correctness oracle for the tests.
//! * [`pivots`] — greedy maximum-sum pivot selection (the classic
//!   LAESA strategy) and a random baseline for the ablation bench.
//! * [`vptree`] — a vantage-point tree, backing the paper's remark
//!   that its results "apply in similar cases" for other
//!   metric-property-based methods.
//! * [`counter`] — a `Distance` wrapper counting real distance
//!   evaluations, the y-axis of Figures 3–4.
//!
//! Elimination via lower bounds is only *sound* when the distance is a
//! metric — with a non-metric (e.g. `d_max`) LAESA may return a
//! non-optimal neighbour. The paper exploits exactly this contrast
//! (Table 2 shows `d_max` LAESA ≠ exhaustive); these implementations
//! accept non-metrics and reproduce that behaviour.

pub mod aesa;
pub mod counter;
pub mod laesa;
pub mod linear;
pub mod pivots;
pub mod vptree;

pub use aesa::Aesa;
pub use counter::CountingDistance;
pub use laesa::Laesa;
pub use linear::{linear_knn, linear_nn};
pub use pivots::{select_pivots_max_sum, select_pivots_random};
pub use vptree::VpTree;

/// The outcome of a nearest-neighbour query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbour {
    /// Index of the neighbour in the database.
    pub index: usize,
    /// Its distance to the query.
    pub distance: f64,
}

/// Search statistics reported alongside results.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Number of real distance evaluations performed for the query
    /// (excluding preprocessing).
    pub distance_computations: u64,
}
