//! # cned-search
//!
//! Nearest-neighbour search over arbitrary [`cned_core::metric::Distance`]s,
//! implementing the machinery of the paper's Section 4.3:
//!
//! * [`laesa`] — **LAESA** (Micó, Oncina & Vidal 1994, ref \[5\]):
//!   linear preprocessing time and memory; at query time, distances to
//!   a fixed set of *pivots* (base prototypes) give triangle-inequality
//!   lower bounds that eliminate most candidates, so only a handful of
//!   real distance computations remain. This is the engine behind
//!   Figures 3–4 and the "LAESA" column of Table 2.
//! * [`aesa`] — AESA (ref \[6\] context): the quadratic-memory variant
//!   that stores the full pairwise matrix and uses *every* computed
//!   distance as a pivot; fewest computations, largest preprocessing.
//! * [`linear`] — exhaustive scan: the "Exhaustive search" column of
//!   Table 2 and the correctness oracle for the tests.
//! * [`pivots`] — greedy maximum-sum pivot selection (the classic
//!   LAESA strategy) and a random baseline for the ablation bench.
//! * [`vptree`] — a vantage-point tree, backing the paper's remark
//!   that its results "apply in similar cases" for other
//!   metric-property-based methods.
//! * [`counter`] — a `Distance` wrapper counting real distance
//!   evaluations, the y-axis of Figures 3–4.
//!
//! Elimination via lower bounds is only *sound* when the distance is a
//! metric — with a non-metric (e.g. `d_max`) LAESA may return a
//! non-optimal neighbour. The paper exploits exactly this contrast
//! (Table 2 shows `d_max` LAESA ≠ exhaustive); these implementations
//! accept non-metrics and reproduce that behaviour.

//! ## Throughput machinery
//!
//! Beyond the paper's algorithms, this crate provides the plumbing
//! that makes them fast on real hardware:
//!
//! * **parallel preprocessing** — [`Aesa::build`] and [`Laesa::build`]
//!   fan their `n·(n−1)/2` / `p·n` distance loops across cores
//!   ([`parallel`]);
//! * **batch queries** — `nn_batch`/`knn_batch` on linear scan, LAESA
//!   and AESA parallelise across queries and reuse each query's
//!   prepared form ([`cned_core::metric::Distance::prepare`], the
//!   Myers `Peq` bitmap cache for `d_E`) across the whole database;
//! * **bounded evaluation** — comparisons whose exact value is only
//!   needed when it beats the running best (linear nn/k-NN scans,
//!   LAESA non-pivot candidates) are requested through
//!   [`cned_core::metric::Distance::distance_bounded`] with that best
//!   as the budget, so engines with early exit (bit-parallel `d_E`)
//!   abandon hopeless comparisons. Pivot distances, AESA elements and
//!   vp-tree vantage points stay exact — their values feed
//!   lower-bound updates and traversal decisions. This is distance-
//!   agnostic: the same call sites that abandon `d_E` comparisons via
//!   the bit-parallel engine drive `d_C` through its band-pruned
//!   bounded engine (`cned_core::contextual::bounded`), whose cheap
//!   lower-bound gates reject most over-budget candidates before the
//!   cubic DP runs at all;
//! * **thread-safe statistics** — [`SearchStatsAtomic`] accumulates
//!   [`SearchStats`] across worker threads.

pub mod aesa;
pub mod counter;
pub mod laesa;
pub mod linear;
pub mod parallel;
pub mod pivots;
pub mod vptree;

pub use aesa::Aesa;
pub use counter::CountingDistance;
pub use laesa::Laesa;
pub use linear::{linear_knn, linear_knn_batch, linear_nn, linear_nn_batch};
pub use parallel::{num_threads, par_map};
pub use pivots::{select_pivots_max_sum, select_pivots_random};
pub use vptree::VpTree;

use std::sync::atomic::{AtomicU64, Ordering};

/// Serialises tests that set the process-global worker-count override
/// ([`parallel::set_thread_override`]).
#[cfg(test)]
pub(crate) static TEST_ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// The outcome of a nearest-neighbour query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbour {
    /// Index of the neighbour in the database.
    pub index: usize,
    /// Its distance to the query.
    pub distance: f64,
}

/// Search statistics reported alongside results.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Number of real distance evaluations performed for the query
    /// (excluding preprocessing).
    pub distance_computations: u64,
}

/// Thread-safe accumulator for [`SearchStats`], for batch pipelines
/// that tally across worker threads (e.g. `cned-classify`'s parallel
/// test-set evaluation, which streams totals instead of materialising
/// per-query statistics).
///
/// ```
/// use cned_search::{SearchStats, SearchStatsAtomic};
///
/// let total = SearchStatsAtomic::default();
/// std::thread::scope(|s| {
///     for _ in 0..4 {
///         s.spawn(|| total.add(SearchStats { distance_computations: 10 }));
///     }
/// });
/// assert_eq!(total.snapshot().distance_computations, 40);
/// ```
#[derive(Debug, Default)]
pub struct SearchStatsAtomic {
    distance_computations: AtomicU64,
}

impl SearchStatsAtomic {
    /// A zeroed accumulator.
    pub fn new() -> SearchStatsAtomic {
        SearchStatsAtomic::default()
    }

    /// Fold one query's statistics into the running total.
    pub fn add(&self, stats: SearchStats) {
        self.distance_computations
            .fetch_add(stats.distance_computations, Ordering::Relaxed);
    }

    /// Current totals as a plain [`SearchStats`].
    pub fn snapshot(&self) -> SearchStats {
        SearchStats {
            distance_computations: self.distance_computations.load(Ordering::Relaxed),
        }
    }

    /// Reset to zero, returning the totals accumulated so far.
    pub fn take(&self) -> SearchStats {
        SearchStats {
            distance_computations: self.distance_computations.swap(0, Ordering::Relaxed),
        }
    }
}
